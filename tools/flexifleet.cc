/**
 * @file
 * Fleet lifecycle command-line driver.
 *
 *   flexifleet run    [--isa fc4|fc8] [--seed N] [--dies N]
 *                     [--epochs N] [--kernel NAME] [--program NAME]
 *                     [--work N] [--transients R] [--flips R]
 *                     [--lockstep] [--no-crc] [--no-watchdog]
 *                     [--no-recovery] [--retries N] [--no-restart]
 *                     [--max-repages N] [--vdd V] [--min-kernels N]
 *                     [--threads N] [--batch-lanes N]
 *                     [--checkpoint FILE] [--stop-after N]
 *                     [--json FILE]
 *   flexifleet resume --checkpoint FILE [--stop-after N]
 *                     [--threads N] [--batch-lanes N] [--json FILE]
 *   flexifleet report --checkpoint FILE [--json FILE]
 *
 * run: draw a deployed population from the wafer model's binned
 * supply and drive it through the configured number of field epochs,
 * checkpointing after each when --checkpoint is given; --stop-after
 * N stops once N epochs are done (deterministically equivalent to
 * killing the process there). resume: continue a checkpointed
 * campaign to completion — bit-identical to a run that was never
 * stopped, at any thread count. report: summarize a checkpoint
 * without running anything.
 *
 * Exit codes follow the flexilint contract: 0 = success, 1 =
 * runtime/data error (unreadable or corrupt checkpoint, engine
 * failure), 2 = usage error (unknown command, malformed or
 * out-of-range option value, missing required option).
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "fleet/checkpoint.hh"
#include "fleet/fleet.hh"
#include "kernels/fc8_programs.hh"

using namespace flexi;

namespace
{

const char *gProgName = "flexifleet";

[[noreturn]] void
usageError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "%s: ", gProgName);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
    std::exit(2);
}

struct Args
{
    int argc;
    char **argv;

    /** Consume "--name <value>"; nullptr when not present. */
    const char *
    option(const char *name) const
    {
        for (int i = 2; i + 1 < argc; ++i)
            if (!std::strcmp(argv[i], name))
                return argv[i + 1];
        return nullptr;
    }

    bool
    flag(const char *name) const
    {
        for (int i = 2; i < argc; ++i)
            if (!std::strcmp(argv[i], name))
                return true;
        return false;
    }

    /** Strict unsigned option: all-numeric and within range, else
     *  usage error (exit 2). Rejects negatives outright. */
    uint64_t
    number(const char *name, uint64_t fallback, uint64_t min = 0,
           uint64_t max = UINT64_MAX) const
    {
        const char *v = option(name);
        if (!v)
            return fallback;
        char *end = nullptr;
        unsigned long long n = std::strtoull(v, &end, 0);
        if (*v == '-' || *v == '\0' || end == v || *end != '\0' ||
            n < min || n > max)
            usageError("%s: expected an integer in %llu..%llu, got "
                       "'%s'", name, (unsigned long long)min,
                       (unsigned long long)max, v);
        return n;
    }

    double
    real(const char *name, double fallback) const
    {
        const char *v = option(name);
        if (!v)
            return fallback;
        char *end = nullptr;
        double x = std::strtod(v, &end);
        if (end == v || *end != '\0' || !(x >= 0.0))
            usageError("%s: expected a non-negative number, got "
                       "'%s'", name, v);
        return x;
    }
};

IsaKind
parseIsa(const char *name)
{
    if (!std::strcmp(name, "fc4"))
        return IsaKind::FlexiCore4;
    if (!std::strcmp(name, "fc8"))
        return IsaKind::FlexiCore8;
    usageError("unknown ISA '%s' (fleet campaigns deploy the "
               "fabricated cores: fc4|fc8)", name);
}

KernelId
parseKernel(const char *name)
{
    for (KernelId id : allKernels())
        if (!std::strcmp(name, kernelName(id)))
            return id;
    usageError("unknown kernel '%s'", name);
}

unsigned
parseFc8Program(const char *name)
{
    for (size_t p = 0; p < kNumFc8Programs; ++p)
        if (!std::strcmp(name, fc8ProgramName(
                                   static_cast<Fc8Program>(p))))
            return static_cast<unsigned>(p);
    usageError("unknown FlexiCore8 program '%s'", name);
}

FleetConfig
configFromArgs(const Args &args)
{
    FleetConfig cfg;
    if (const char *isa = args.option("--isa"))
        cfg.isa = parseIsa(isa);
    cfg.seed = args.number("--seed", 42);
    cfg.numDies = static_cast<uint32_t>(
        args.number("--dies", 512, 1, UINT32_MAX));
    cfg.epochs = static_cast<uint32_t>(
        args.number("--epochs", 4, 1, (1u << 20) - 1));
    if (const char *k = args.option("--kernel"))
        cfg.kernel = parseKernel(k);
    if (const char *p = args.option("--program"))
        cfg.fc8Program = parseFc8Program(p);
    cfg.workUnits = args.number("--work", 2, 1);
    cfg.transientsPerEpoch = args.real("--transients", 0.25);
    cfg.flipsPerEpoch = args.real("--flips", 0.05);
    if (args.flag("--lockstep"))
        cfg.detectors.lockstep = true;
    if (args.flag("--no-crc"))
        cfg.detectors.outputCrc = false;
    if (args.flag("--no-watchdog"))
        cfg.detectors.watchdog = false;
    if (args.flag("--no-recovery"))
        cfg.recovery.enabled = false;
    cfg.recovery.maxRetries = static_cast<unsigned>(
        args.number("--retries", cfg.recovery.maxRetries, 0, 64));
    if (args.flag("--no-restart"))
        cfg.recovery.allowRestart = false;
    cfg.maxRepages = static_cast<unsigned>(
        args.number("--max-repages", 1, 0, 1u << 20));
    if (const char *vdd = args.option("--vdd")) {
        char *end = nullptr;
        cfg.vdd = std::strtod(vdd, &end);
        if (end == vdd || *end != '\0' || cfg.vdd <= 0)
            usageError("--vdd: expected a positive voltage, got "
                       "'%s'", vdd);
    }
    cfg.minKernels = static_cast<unsigned>(
        args.number("--min-kernels", 1, 1, 32));
    cfg.threads =
        static_cast<unsigned>(args.number("--threads", 0));
    cfg.batchLanes = static_cast<unsigned>(
        args.number("--batch-lanes", LaneGroup::kMaxLanes, 1,
                    LaneGroup::kMaxLanes));
    return cfg;
}

void
printSummary(const FleetState &state)
{
    const FleetConfig &cfg = state.config;
    std::printf("%s fleet: %u dies, epoch %u/%u, seed %llu\n",
                isaName(cfg.isa), cfg.numDies, state.epochsDone,
                cfg.epochs, (unsigned long long)cfg.seed);
    std::printf("  alive %llu, pulled %llu, digest %016llx\n",
                (unsigned long long)state.aliveDies(),
                (unsigned long long)state.deaths,
                (unsigned long long)fleetDigest(state));
    for (uint32_t e = 0; e < state.epochsDone; ++e) {
        const auto &row = state.epochOutcomes[e];
        std::printf("  epoch %3u: availability %.4f, sdc %.4f  [", e,
                    state.availability(e), state.sdcRate(e));
        for (size_t o = 0; o < kNumFaultOutcomes; ++o)
            std::printf("%s%s %llu", o ? ", " : "",
                        faultOutcomeName(static_cast<FaultOutcome>(o)),
                        (unsigned long long)row[o]);
        std::printf("]\n");
    }
    static const char *binNames[2] = {"functional", "salvaged"};
    for (size_t b = 0; b < 2; ++b) {
        std::printf("  %-10s [", binNames[b]);
        for (size_t o = 0; o < kNumFaultOutcomes; ++o)
            std::printf("%s%s %llu", o ? ", " : "",
                        faultOutcomeName(static_cast<FaultOutcome>(o)),
                        (unsigned long long)state.binOutcomes[b][o]);
        std::printf("]\n");
    }
}

void
writeJson(const FleetState &state, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f)
        fatal("cannot write '%s'", path);
    const FleetConfig &cfg = state.config;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"isa\": \"%s\",\n", isaName(cfg.isa));
    std::fprintf(f, "  \"seed\": %llu,\n",
                 (unsigned long long)cfg.seed);
    std::fprintf(f, "  \"dies\": %u,\n", cfg.numDies);
    std::fprintf(f, "  \"epochs\": %u,\n", cfg.epochs);
    std::fprintf(f, "  \"epochs_done\": %u,\n", state.epochsDone);
    std::fprintf(f, "  \"alive\": %llu,\n",
                 (unsigned long long)state.aliveDies());
    std::fprintf(f, "  \"pulled\": %llu,\n",
                 (unsigned long long)state.deaths);
    std::fprintf(f, "  \"digest\": \"%016llx\",\n",
                 (unsigned long long)fleetDigest(state));
    std::fprintf(f, "  \"epoch_stats\": [\n");
    for (uint32_t e = 0; e < state.epochsDone; ++e) {
        std::fprintf(f,
                     "    {\"epoch\": %u, \"availability\": %.6f, "
                     "\"sdc_rate\": %.6f, \"outcomes\": [", e,
                     state.availability(e), state.sdcRate(e));
        for (size_t o = 0; o < kNumFaultOutcomes; ++o)
            std::fprintf(f, "%s%llu", o ? ", " : "",
                         (unsigned long long)
                             state.epochOutcomes[e][o]);
        std::fprintf(f, "]}%s\n",
                     e + 1 < state.epochsDone ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    static const char *binNames[2] = {"functional", "salvaged"};
    std::fprintf(f, "  \"bin_outcomes\": {\n");
    for (size_t b = 0; b < 2; ++b) {
        std::fprintf(f, "    \"%s\": [", binNames[b]);
        for (size_t o = 0; o < kNumFaultOutcomes; ++o)
            std::fprintf(f, "%s%llu", o ? ", " : "",
                         (unsigned long long)state.binOutcomes[b][o]);
        std::fprintf(f, "]%s\n", b == 0 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

int
cmdRun(const Args &args)
{
    FleetConfig cfg = configFromArgs(args);
    const char *checkpoint = args.option("--checkpoint");
    uint32_t stopAfter = static_cast<uint32_t>(
        args.number("--stop-after", 0, 0, UINT32_MAX));

    FleetEngine engine(cfg);
    FleetState state = engine.init();
    engine.run(state, stopAfter,
               checkpoint ? std::string(checkpoint)
                          : std::string());
    printSummary(state);
    if (const char *json = args.option("--json"))
        writeJson(state, json);
    return 0;
}

int
cmdResume(const Args &args, bool runEpochs)
{
    const char *checkpoint = args.option("--checkpoint");
    if (!checkpoint)
        usageError("%s needs --checkpoint FILE",
                   runEpochs ? "resume" : "report");

    FleetState state = loadFleetCheckpoint(checkpoint);
    if (runEpochs) {
        // Execution knobs may change across a resume; everything
        // semantic comes from the checkpoint.
        state.config.threads = static_cast<unsigned>(
            args.number("--threads", state.config.threads));
        state.config.batchLanes = static_cast<unsigned>(
            args.number("--batch-lanes", state.config.batchLanes, 1,
                        LaneGroup::kMaxLanes));
        uint32_t stopAfter = static_cast<uint32_t>(
            args.number("--stop-after", 0, 0, UINT32_MAX));
        FleetEngine engine(state.config);
        engine.run(state, stopAfter, checkpoint);
    }
    printSummary(state);
    if (const char *json = args.option("--json"))
        writeJson(state, json);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 1 && argv[0])
        gProgName = argv[0];
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <run|resume|report> [options]\n",
                     argv[0]);
        return 2;
    }
    Args args{argc, argv};
    try {
        if (!std::strcmp(argv[1], "run"))
            return cmdRun(args);
        if (!std::strcmp(argv[1], "resume"))
            return cmdResume(args, true);
        if (!std::strcmp(argv[1], "report"))
            return cmdResume(args, false);
        std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
        return 2;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
