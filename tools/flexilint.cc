/**
 * @file
 * flexilint: static analysis over the shipped netlists and over
 * assembled programs, for CI and for bring-up of new kernels.
 *
 * Usage:
 *   flexilint [options] [--netlist fc4|fc8|ext|ls]...
 *             [--program <isa> <file.s>]... [--kernels]
 *
 * With no subjects, lints everything built in: all four netlists
 * plus every benchmark kernel on every ISA that supports it.
 *
 * Options:
 *   --json          machine-readable output (one JSON array)
 *   --werror        treat warnings as errors for the exit code
 *   --equiv         formally verify each netlist subject: plan vs
 *                   gate-level reference, and netlist vs behavioral
 *                   ISA spec (SAT-based CEC)
 *   --timing        path-level static timing on each netlist subject
 *   --dataflow      fixed-point ternary dataflow analysis on each
 *                   netlist subject (dead-gate, x-after-reset,
 *                   constant-output)
 *   --prune         SAT-certified prune of each netlist subject;
 *                   reports removed logic and the certification
 *   --seq-prune     sequential prune (BMC/induction-certified merge
 *                   of state-correlated logic the ternary engine
 *                   cannot see) of each netlist subject; reports
 *                   the improvement over --prune's baseline
 *   --hash          canonical structural hash of each netlist
 *                   subject (the DSE sweep's cache key)
 *   --bmc <K>       bounded model checking to depth K on each
 *                   netlist subject (property catalog below)
 *   --induct <K>    k-induction proof attempt up to k = K, with BMC
 *                   fallback for falsification
 *   --prop <spec>   property to check (repeatable; see
 *                   src/analysis/mc/property.hh for the grammar:
 *                   assert:<net>=<0|1>, bound:<bus>/<w>/<limit>,
 *                   watchdog[:N], mmu-page, xfree[:K]). Without
 *                   --prop, the default catalog runs.
 *   --mc-program <isa> <file.s>
 *                   close the sequential model over this program
 *                   for matching netlist subjects (enables the
 *                   watchdog / mmu-page properties)
 *   --trace-vcd <path>
 *                   dump the first confirmed counterexample trace
 *                   as a VCD file
 *   --vdd <volts>   supply for --timing slack (default nominal 4.5)
 *   --paths <k>     top-K critical paths for --timing (default 8)
 *   --suppress <rule[,rule...]>
 *                   drop findings for the named rules before
 *                   rendering and before the exit-code count
 *
 * Exit codes (pinned; tests/CMakeLists.txt asserts them end to
 * end): 0 = clean (notes/warnings allowed unless --werror), 1 =
 * findings at error severity (or warnings under --werror) — this
 * includes falsified properties (prop-cex) and failed prune
 * certifications, 2 = usage error (unknown flag, malformed
 * --prop spec, unreadable file, assembly failure).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow/dataflow.hh"
#include "analysis/dataflow/prune.hh"
#include "analysis/dataflow/struct_hash.hh"
#include "analysis/equiv.hh"
#include "analysis/mc/mc_lint.hh"
#include "analysis/mc/property.hh"
#include "analysis/mc/seq_prune.hh"
#include "analysis/netlist_lint.hh"
#include "analysis/program_lint.hh"
#include "analysis/timing.hh"
#include "tech/technology.hh"
#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "kernels/fc8_programs.hh"
#include "kernels/kernels.hh"
#include "netlist/flexicore_netlist.hh"

using namespace flexi;

namespace
{

struct IsaAlias
{
    const char *name;
    IsaKind isa;
};

constexpr IsaAlias kIsaAliases[] = {
    {"fc4", IsaKind::FlexiCore4},
    {"fc8", IsaKind::FlexiCore8},
    {"ext", IsaKind::ExtAcc4},
    {"ls", IsaKind::LoadStore4},
};

bool
parseIsa(const char *name, IsaKind &out)
{
    for (const auto &a : kIsaAliases) {
        if (std::strcmp(name, a.name) == 0) {
            out = a.isa;
            return true;
        }
    }
    return false;
}

std::unique_ptr<Netlist>
buildNetlist(IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4: return buildFlexiCore4Netlist();
      case IsaKind::FlexiCore8: return buildFlexiCore8Netlist();
      case IsaKind::ExtAcc4: return buildExtAcc4Netlist();
      case IsaKind::LoadStore4: return buildLoadStore4Netlist();
    }
    fatal("bad IsaKind");
}

int
usage()
{
    std::fprintf(stderr,
        "usage: flexilint [--json] [--werror] [--equiv] [--timing]\n"
        "                 [--dataflow] [--prune] [--seq-prune]\n"
        "                 [--hash] [--bmc <K>] [--induct <K>]\n"
        "                 [--prop <spec>]...\n"
        "                 [--mc-program fc4|fc8|ext|ls <file.s>]...\n"
        "                 [--trace-vcd <path>]\n"
        "                 [--vdd <volts>] [--paths <k>]\n"
        "                 [--suppress <rule[,rule...]>]\n"
        "                 [--netlist fc4|fc8|ext|ls]...\n"
        "                 [--program fc4|fc8|ext|ls <file.s>]...\n"
        "                 [--kernels]\n"
        "with no subjects, lints all netlists and all kernels\n"
        "exit codes: 0 clean, 1 errors (or warnings under\n"
        "--werror), 2 usage error\n");
    return 2;
}

/** One linted subject: its name and its report. */
struct Result
{
    std::string subject;
    LintReport report;
};

/** Split a comma-separated rule list. */
std::vector<std::string>
splitRules(const std::string &arg)
{
    std::vector<std::string> rules;
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                rules.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        rules.push_back(cur);
    return rules;
}

/** A copy of @p report without the suppressed rules. */
LintReport
filterReport(const LintReport &report,
             const std::vector<std::string> &suppressed)
{
    LintReport out;
    for (const Diagnostic &d : report.diagnostics()) {
        bool drop = false;
        for (const std::string &rule : suppressed)
            if (d.rule == rule)
                drop = true;
        if (!drop)
            out.add(d);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool werror = false;
    bool kernels = false;
    bool equiv = false;
    bool timing = false;
    bool dataflow = false;
    bool do_prune = false;
    bool do_seq_prune = false;
    bool do_hash = false;
    unsigned bmc_depth = 0;
    unsigned induct_depth = 0;
    std::vector<std::string> prop_specs;
    std::vector<std::pair<IsaKind, std::string>> mc_programs;
    std::string vcd_path;
    double vdd = kVddNominal;
    size_t top_paths = 8;
    std::vector<std::string> suppressed;
    std::vector<IsaKind> netlists;
    std::vector<std::pair<IsaKind, std::string>> programs;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--kernels") {
            kernels = true;
        } else if (arg == "--equiv") {
            equiv = true;
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--dataflow") {
            dataflow = true;
        } else if (arg == "--prune") {
            do_prune = true;
        } else if (arg == "--seq-prune") {
            do_seq_prune = true;
        } else if (arg == "--hash") {
            do_hash = true;
        } else if (arg == "--bmc") {
            if (++i >= argc)
                return usage();
            bmc_depth = static_cast<unsigned>(std::atoi(argv[i]));
            if (bmc_depth == 0)
                return usage();
        } else if (arg == "--induct") {
            if (++i >= argc)
                return usage();
            induct_depth =
                static_cast<unsigned>(std::atoi(argv[i]));
            if (induct_depth == 0)
                return usage();
        } else if (arg == "--prop") {
            if (++i >= argc)
                return usage();
            // Malformed specs are usage errors, caught before any
            // solving starts; netlist-dependent validation (names
            // resolve, model is closed) stays a prop-invalid
            // diagnostic per subject.
            McProperty parsed;
            std::string err;
            if (!parsePropertySpec(argv[i], parsed, &err)) {
                std::fprintf(stderr, "flexilint: bad --prop %s: %s\n",
                             argv[i], err.c_str());
                return usage();
            }
            prop_specs.push_back(argv[i]);
        } else if (arg == "--mc-program") {
            IsaKind isa;
            if (i + 2 >= argc || !parseIsa(argv[i + 1], isa))
                return usage();
            mc_programs.emplace_back(isa, argv[i + 2]);
            i += 2;
        } else if (arg == "--trace-vcd") {
            if (++i >= argc)
                return usage();
            vcd_path = argv[i];
        } else if (arg == "--vdd") {
            if (++i >= argc)
                return usage();
            vdd = std::atof(argv[i]);
            if (vdd <= 0.0)
                return usage();
        } else if (arg == "--paths") {
            if (++i >= argc)
                return usage();
            top_paths = static_cast<size_t>(std::atoi(argv[i]));
            if (top_paths == 0)
                return usage();
        } else if (arg == "--suppress") {
            if (++i >= argc)
                return usage();
            for (std::string &rule : splitRules(argv[i]))
                suppressed.push_back(std::move(rule));
        } else if (arg == "--netlist") {
            IsaKind isa;
            if (++i >= argc || !parseIsa(argv[i], isa))
                return usage();
            netlists.push_back(isa);
        } else if (arg == "--program") {
            IsaKind isa;
            if (i + 2 >= argc || !parseIsa(argv[i + 1], isa))
                return usage();
            programs.emplace_back(isa, argv[i + 2]);
            i += 2;
        } else {
            return usage();
        }
    }

    // Default: everything built in.
    if (netlists.empty() && programs.empty() && !kernels) {
        for (const auto &a : kIsaAliases)
            netlists.push_back(a.isa);
        kernels = true;
    }

    bool model_check =
        bmc_depth > 0 || induct_depth > 0 || !prop_specs.empty();
    bool vcd_written = false;

    std::vector<Result> results;

    try {
        for (IsaKind isa : netlists) {
            auto nl = buildNetlist(isa);
            LintReport report = lintNetlist(*nl);
            if (equiv)
                report.append(equivLint(*nl, isa));
            if (timing) {
                Technology tech;
                report.append(
                    timingLint(*nl, tech, vdd, top_paths));
            }
            if (dataflow)
                report.append(dataflowLint(*nl));
            if (do_hash) {
                Diagnostic d;
                d.severity = Severity::Note;
                d.rule = "netlist-hash";
                d.module = "core";
                d.message = strfmt(
                    "canonical structural hash %s",
                    canonicalNetlistHashHex(*nl).c_str());
                report.add(std::move(d));
            }
            if (do_prune) {
                PruneResult pr = prune(*nl);
                if (!pr.ok) {
                    Diagnostic d;
                    d.severity = Severity::Error;
                    d.rule = "prune-failed";
                    d.module = "core";
                    d.message = pr.detail;
                    report.add(std::move(d));
                } else {
                    Diagnostic d;
                    d.severity = Severity::Note;
                    d.rule = "prune-summary";
                    d.module = "core";
                    d.message = strfmt(
                        "%zu -> %zu cells, %zu -> %zu state bits, "
                        "%.1f NAND2-equivalents saved "
                        "(%zu dead, %zu const, %zu const state)",
                        pr.stats.cellsBefore, pr.stats.cellsAfter,
                        pr.stats.dffsBefore, pr.stats.dffsAfter,
                        pr.stats.nand2AreaSaved(),
                        pr.stats.deadCells, pr.stats.constCells,
                        pr.stats.constDffs);
                    report.add(std::move(d));
                    Diagnostic c;
                    c.module = "core";
                    if (pr.certified) {
                        c.severity = Severity::Note;
                        c.rule = "prune-certified";
                        c.message = strfmt(
                            "SAT-certified equivalent on all "
                            "observable cones (%zu solver calls)",
                            static_cast<size_t>(
                                pr.certification.solves));
                    } else {
                        c.severity = Severity::Error;
                        c.rule = "prune-uncertified";
                        c.message = pr.certification.detail.empty()
                                        ? "certification failed"
                                        : pr.certification.detail;
                    }
                    report.add(std::move(c));
                }
            }
            if (do_seq_prune) {
                SeqPruneResult sp = seqPrune(*nl);
                if (!sp.ok) {
                    Diagnostic d;
                    d.severity = Severity::Error;
                    d.rule = "seq-prune-failed";
                    d.module = "mc";
                    d.message = sp.detail;
                    report.add(std::move(d));
                } else {
                    Diagnostic d;
                    d.severity = Severity::Note;
                    d.rule = "seq-prune-summary";
                    d.module = "mc";
                    d.message = strfmt(
                        "%zu -> %zu cells (ternary prune alone "
                        "%zu), %zu -> %zu state bits, %.1f NAND2-"
                        "equivalents saved (%.1f beyond ternary: "
                        "%zu merged drivers, %zu INV rewrites, "
                        "%zu const DFFs, %zu pair DFFs)",
                        sp.stats.cellsBefore, sp.stats.cellsAfter,
                        sp.baseline.cellsAfter,
                        sp.stats.dffsBefore, sp.stats.dffsAfter,
                        sp.stats.nand2AreaSaved(),
                        sp.stats.nand2AreaSaved() -
                            sp.baseline.nand2AreaSaved(),
                        sp.seq.mergedNets, sp.seq.invDrivers,
                        sp.seq.constDffs, sp.seq.pairDffs);
                    report.add(std::move(d));
                    Diagnostic c;
                    c.module = "mc";
                    if (sp.certified) {
                        c.severity = Severity::Note;
                        c.rule = "seq-prune-certified";
                        c.message = strfmt(
                            "SAT-certified: invariants proved by "
                            "induction, observable cones "
                            "equivalent (%zu solver calls)",
                            static_cast<size_t>(
                                sp.certification.solves));
                    } else {
                        c.severity = Severity::Error;
                        c.rule = "seq-prune-uncertified";
                        c.message =
                            sp.certification.detail.empty()
                                ? "certification failed"
                                : sp.certification.detail;
                    }
                    report.add(std::move(c));
                }
            }
            if (model_check) {
                McLintOptions mo;
                if (bmc_depth > 0)
                    mo.bmcDepth = bmc_depth;
                mo.inductDepth = induct_depth;
                mo.props = prop_specs;
                Program mc_prog(isa);
                for (const auto &[pisa, path] : mc_programs) {
                    if (pisa != isa)
                        continue;
                    std::ifstream in(path);
                    if (!in)
                        fatal("cannot open %s", path.c_str());
                    std::ostringstream src;
                    src << in.rdbuf();
                    mc_prog = assemble(isa, src.str());
                    mo.model.program = &mc_prog;
                    break;
                }
                McLintOutcome out = mcLint(*nl, mo);
                report.append(out.report);
                if (!vcd_path.empty() && !vcd_written &&
                    !out.traces.empty()) {
                    std::ofstream vf(vcd_path);
                    if (!vf)
                        fatal("cannot write %s", vcd_path.c_str());
                    vf << out.traces.front().vcd();
                    vcd_written = true;
                }
            }
            results.push_back({nl->name(), std::move(report)});
        }
        if (kernels) {
            for (KernelId id : allKernels()) {
                for (IsaKind isa : {IsaKind::FlexiCore4,
                                    IsaKind::ExtAcc4,
                                    IsaKind::LoadStore4}) {
                    Program prog =
                        assemble(isa, kernelSource(id, isa));
                    results.push_back(
                        {strfmt("%s/%s", kernelName(id),
                                isaName(isa)),
                         lintProgram(prog)});
                }
            }
            for (size_t i = 0; i < kNumFc8Programs; ++i) {
                auto id = static_cast<Fc8Program>(i);
                Program prog = assemble(IsaKind::FlexiCore8,
                                        fc8ProgramSource(id));
                results.push_back(
                    {strfmt("%s/%s", fc8ProgramName(id),
                            isaName(IsaKind::FlexiCore8)),
                     lintProgram(prog)});
            }
        }
        for (const auto &[isa, path] : programs) {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "flexilint: cannot open %s\n",
                             path.c_str());
                return 2;
            }
            std::ostringstream src;
            src << in.rdbuf();
            Program prog = assemble(isa, src.str());
            results.push_back({path, lintProgram(prog)});
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "flexilint: %s\n", err.what());
        return 2;
    }

    if (!suppressed.empty())
        for (auto &res : results)
            res.report = filterReport(res.report, suppressed);

    // Byte-stable output: canonical order, duplicates dropped.
    for (auto &res : results)
        res.report.normalize();

    size_t num_errors = 0, num_warnings = 0;
    if (json)
        std::printf("[");
    bool first = true;
    for (const auto &res : results) {
        num_errors += res.report.errors();
        num_warnings += res.report.warnings();
        if (json) {
            // Flatten all subjects into one array: re-emit each
            // report's array contents without its brackets.
            std::string body = res.report.json(res.subject);
            size_t open = body.find('[');
            size_t close = body.rfind(']');
            std::string inner =
                body.substr(open + 1, close - open - 1);
            // Trim trailing whitespace/newlines.
            while (!inner.empty() &&
                   (inner.back() == '\n' || inner.back() == ' '))
                inner.pop_back();
            if (inner.empty())
                continue;
            if (!first)
                std::printf(",");
            std::printf("%s", inner.c_str());
            first = false;
        } else {
            std::fputs(res.report.text(res.subject).c_str(), stdout);
        }
    }
    if (json) {
        std::printf("\n]\n");
    } else {
        std::printf("flexilint: %zu subject(s), %zu error(s), "
                    "%zu warning(s)\n",
                    results.size(), num_errors, num_warnings);
    }

    bool fail = num_errors > 0 || (werror && num_warnings > 0);
    return fail ? 1 : 0;
}
