/**
 * @file
 * Calibration audit: prints every quantity the models are calibrated
 * against next to the paper's published value, in one place. Run
 * after touching the cell library, technology constants, netlist
 * generators or the die model.
 */

#include <cstdio>

#include "dse/area_model.hh"
#include "netlist/flexicore_netlist.hh"
#include "tech/technology.hh"
#include "yield/wafer.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

int
main()
{
    std::printf("calibration audit (ours vs paper)\n");
    std::printf("---------------------------------\n");

    WaferMap wafer;
    std::printf("wafer: %zu dies (123), %zu inclusion-zone\n",
                wafer.numDies(), wafer.numInclusionDies());

    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8}) {
        auto nl = isa == IsaKind::FlexiCore4
            ? buildFlexiCore4Netlist() : buildFlexiCore8Netlist();
        Technology tech(isa == IsaKind::FlexiCore8);
        double crit = nl->criticalPathDelayUnits();
        std::printf("\n%s:\n", nl->name().c_str());
        std::printf("  cells %zu (336/366), devices %u (2104/2335), "
                    "area %.2f mm^2 (5.56/6.05)\n", nl->numCells(),
                    nl->totalDevices(),
                    tech.areaMm2(nl->totalNand2Area()));
        std::printf("  crit path %.1f gate delays -> %.1f us @4.5 V, "
                    "%.1f us @3 V (clock period 80 us)\n", crit,
                    crit * tech.unitDelay(4.5) * 1e6,
                    crit * tech.unitDelay(3.0) * 1e6);
        std::printf("  current %.2f mA @4.5 V (1.1/0.75), "
                    "%.2f mA @3 V (0.73/0.65)\n",
                    tech.staticCurrent(nl->totalStaticCurrentUa(),
                                       4.5) * 1e3,
                    tech.staticCurrent(nl->totalStaticCurrentUa(),
                                       3.0) * 1e3);

        double y45 = 0, y3 = 0;
        RunningStat rsd;
        constexpr int kWafers = 20;
        for (int s = 0; s < kWafers; ++s) {
            WaferStudyConfig cfg;
            cfg.isa = isa;
            cfg.seed = 900 + s;
            cfg.gateLevelErrors = false;
            auto res = runWaferStudy(cfg);
            y45 += res.yield(4.5, true);
            y3 += res.yield(3.0, true);
            rsd.add(res.currentStats(4.5).rsd());
        }
        std::printf("  incl-zone yield %.0f%% @4.5 V (81/57), "
                    "%.0f%% @3 V (55/6); current RSD %.1f%% "
                    "(15.3/21.5)\n", 100 * y45 / kWafers,
                    100 * y3 / kWafers, 100 * rsd.mean());
    }

    std::printf("\nDSE base point: area %.0f NAND2-eq (netlist "
                "%.0f), power %.2f mW (4.9), fmax %.1f kHz\n",
                baseCoreArea(),
                buildFlexiCore4Netlist()->totalNand2Area(),
                staticPowerOf(DesignPoint{
                    OperandModel::Accumulator, MicroArch::SingleCycle,
                    BusWidth::Wide, IsaFeatures::none()}) * 1e3,
                fmaxOf(DesignPoint{
                    OperandModel::Accumulator, MicroArch::SingleCycle,
                    BusWidth::Wide, IsaFeatures::none()}) / 1e3);
    return 0;
}
