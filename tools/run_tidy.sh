#!/bin/sh
# Run clang-tidy over the first-party sources using the checks in
# .clang-tidy. Degrades gracefully (exit 0 with a notice) when
# clang-tidy is not installed, so the script is safe to call from
# environments without LLVM; CI installs clang-tidy explicitly.
#
# Usage: tools/run_tidy.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-tidy"}

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "run_tidy.sh: clang-tidy not found; skipping (install LLVM" \
         "to enable)"
    exit 0
fi

cmake -B "$build" -S "$repo" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

# First-party translation units only; generated and third-party code
# is excluded by construction (everything lives under src/ + tools/).
files=$(find "$repo/src" "$repo/tools" -name '*.cc' | sort)

status=0
for f in $files; do
    clang-tidy -p "$build" --quiet "$f" || status=1
done

exit $status
