/**
 * @file
 * Resilience command-line driver.
 *
 *   flexifault campaign [--isa fc4|fc8|ext|ls] [--seed N]
 *                       [--injections N] [--work N] [--threads N]
 *                       [--no-detectors] [--no-recovery] [--lockstep]
 *                       [--batch-lanes N]
 *   flexifault salvage  [--isa fc4|fc8] [--seed N] [--cycles N]
 *                       [--vdd V] [--min-kernels N] [--threads N]
 *   flexifault atpg     [--isa fc4|fc8] [--seed N] [--max-faults N]
 *                       [--cycles N] [--threads N]
 *
 * campaign: inject in-field faults while a kernel runs and classify
 * each as masked / recovered / detected / SDC / hang. salvage: run
 * the Table 5 wafer study, then re-bin failed dies that still
 * complete benchmark kernels under the detect-and-recover runtime.
 * atpg: stuck-at coverage of the wafer-test vector suite with SAT
 * triage of the escapes (test hole vs provably redundant).
 *
 * Exit codes follow the flexilint contract: 0 = success, 1 =
 * runtime error (a failed baseline run), 2 = usage error (unknown
 * command or ISA, malformed or out-of-range option value — a
 * negative seed, --batch-lanes 0).
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/atpg.hh"
#include "common/logging.hh"
#include "resilience/fault_campaign.hh"
#include "resilience/salvage.hh"
#include "yield/test_program.hh"

using namespace flexi;

namespace
{

/** Usage errors exit 2, per the flexilint exit-code contract. */
[[noreturn]] void
usageError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
    std::exit(2);
}

IsaKind
parseIsa(const char *name)
{
    if (!std::strcmp(name, "fc4"))
        return IsaKind::FlexiCore4;
    if (!std::strcmp(name, "fc8"))
        return IsaKind::FlexiCore8;
    if (!std::strcmp(name, "ext"))
        return IsaKind::ExtAcc4;
    if (!std::strcmp(name, "ls"))
        return IsaKind::LoadStore4;
    usageError("unknown ISA '%s' (expected fc4|fc8|ext|ls)", name);
}

struct Args
{
    int argc;
    char **argv;
    int pos = 2;

    /** Consume "--name <value>"; returns nullptr when not present. */
    const char *
    option(const char *name)
    {
        for (int i = pos; i + 1 < argc; ++i) {
            if (!std::strcmp(argv[i], name))
                return argv[i + 1];
        }
        return nullptr;
    }

    bool
    flag(const char *name) const
    {
        for (int i = pos; i < argc; ++i)
            if (!std::strcmp(argv[i], name))
                return true;
        return false;
    }

    /** Strictly numeric and non-negative, else usage error. */
    uint64_t
    number(const char *name, uint64_t fallback)
    {
        const char *v = option(name);
        if (!v)
            return fallback;
        char *end = nullptr;
        unsigned long long n = std::strtoull(v, &end, 0);
        if (*v == '-' || *v == '\0' || end == v || *end != '\0')
            usageError("%s: expected a non-negative integer, got "
                       "'%s'", name, v);
        return n;
    }

    /**
     * Consume "--name <value>" as a lane count: strictly numeric,
     * at least 1, at most @p max (the compiled group maximum).
     * Anything else is a usage error (exit 2).
     */
    unsigned
    laneCount(const char *name, unsigned fallback, unsigned max)
    {
        const char *v = option(name);
        if (!v)
            return fallback;
        char *end = nullptr;
        unsigned long long n = std::strtoull(v, &end, 0);
        if (*v == '-' || end == v || *end != '\0' || n == 0 ||
            n > max)
            usageError("%s: expected a lane count in 1..%u, got "
                       "'%s'", name, max, v);
        return static_cast<unsigned>(n);
    }
};

int
cmdCampaign(Args &args)
{
    CampaignConfig cfg;
    if (const char *isa = args.option("--isa"))
        cfg.isa = parseIsa(isa);
    cfg.seed = args.number("--seed", 1);
    cfg.injections =
        static_cast<unsigned>(args.number("--injections", 96));
    cfg.workUnits = args.number("--work", 6);
    cfg.threads = static_cast<unsigned>(args.number("--threads", 0));
    // 512 = full wide-lane prescreen, 1 = scalar lane-by-lane
    // (debuggable); outcomes are bit-identical for any value.
    cfg.batchLanes = args.laneCount("--batch-lanes", 512,
                                    LaneGroup::kMaxLanes);
    if (args.flag("--no-detectors"))
        cfg.detectors = DetectorConfig{false, false, false,
                                       cfg.detectors.watchdogCycles};
    if (args.flag("--lockstep"))
        cfg.detectors.lockstep = true;
    if (args.flag("--no-recovery"))
        cfg.recovery.enabled = false;

    CampaignResult res = runFaultCampaign(cfg);
    CampaignCounts c = res.counts();
    std::printf("%s: %u injections, seed %llu (baseline %llu cycles, "
                "%s)\n",
                isaName(cfg.isa), cfg.injections,
                (unsigned long long)cfg.seed,
                (unsigned long long)res.baselineCycles,
                res.baselineCorrect ? "clean" : "BASELINE FAILED");
    for (size_t o = 0; o < kNumFaultOutcomes; ++o)
        std::printf("  %-10s %llu\n",
                    faultOutcomeName(static_cast<FaultOutcome>(o)),
                    (unsigned long long)c.n[o]);
    return res.baselineCorrect ? 0 : 1;
}

int
cmdSalvage(Args &args)
{
    SalvageConfig cfg;
    if (const char *isa = args.option("--isa"))
        cfg.study.isa = parseIsa(isa);
    cfg.study.seed = args.number("--seed", 42);
    cfg.study.testCycles = args.number("--cycles", 500);
    cfg.threads = static_cast<unsigned>(args.number("--threads", 0));
    cfg.minKernels =
        static_cast<unsigned>(args.number("--min-kernels", 1));
    if (const char *vdd = args.option("--vdd")) {
        char *end = nullptr;
        cfg.vdd = std::strtod(vdd, &end);
        if (end == vdd || *end != '\0' || cfg.vdd <= 0)
            usageError("--vdd: expected a positive voltage, got "
                       "'%s'", vdd);
    }

    SalvageReport rep = runSalvageStudy(cfg);
    std::printf("%s wafer, seed %llu, binned at %.1f V (inclusion "
                "zone):\n",
                rep.study.spec.name.c_str(),
                (unsigned long long)cfg.study.seed, cfg.vdd);
    std::printf("  raw yield        %.4f\n", rep.rawYield(true));
    std::printf("  effective yield  %.4f\n",
                rep.effectiveYield(true));
    std::printf("  functional %zu, salvaged %zu, dead %zu\n",
                rep.binCount(DieBin::Functional, true),
                rep.binCount(DieBin::Salvaged, true),
                rep.binCount(DieBin::Dead, true));
    for (const DieSalvage &v : rep.dies) {
        if (v.bin != DieBin::Salvaged)
            continue;
        const DieResult &die = rep.study.dies[v.dieIndex];
        if (!die.site.inInclusionZone)
            continue;
        std::printf("  die %3zu: %u/%u kernels (mask 0x%02x), %u "
                    "detections, %u retries, %u restarts\n",
                    v.dieIndex, v.kernelsPassed, v.kernelsTotal,
                    v.passedMask, v.detections, v.retries,
                    v.restarts);
    }
    return 0;
}

int
cmdAtpg(Args &args)
{
    AtpgConfig cfg;
    if (const char *isa = args.option("--isa"))
        cfg.isa = parseIsa(isa);
    uint64_t seed = args.number("--seed", 11);
    cfg.simCycles = args.number("--cycles", 1500);
    cfg.maxFaults = args.number("--max-faults", 0);
    cfg.threads = static_cast<unsigned>(args.number("--threads", 0));

    Program prog = makeTestProgram(cfg.isa, seed);
    auto inputs = makeTestInputs(cfg.isa, 256, seed);
    AtpgReport rep = runAtpg(cfg, prog, inputs);
    std::printf("%s: %zu stuck-at faults, %zu sim-detected "
                "(%.1f%%)\n",
                isaName(cfg.isa), rep.faults, rep.simDetected,
                100.0 * rep.simCoverage());
    std::printf("escapes: %zu testable (ATPG pattern exists), %zu "
                "provably redundant\n",
                rep.testable, rep.redundant);
    std::printf("testable-fault coverage %.1f%% (%llu solver calls, "
                "%llu conflicts)\n",
                100.0 * rep.testableCoverage(),
                (unsigned long long)rep.solves,
                (unsigned long long)rep.conflicts);
    for (const AtpgFault &f : rep.escapes)
        if (f.testable)
            std::printf("  hole: %s stuck-at-%d [%s]\n    %s\n",
                        f.net.c_str(), f.fault.value ? 1 : 0,
                        f.module.c_str(), f.pattern.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <campaign|salvage|atpg> [options]\n",
                     argv[0]);
        return 2;
    }
    Args args{argc, argv};
    try {
        if (!std::strcmp(argv[1], "campaign"))
            return cmdCampaign(args);
        if (!std::strcmp(argv[1], "salvage"))
            return cmdSalvage(args);
        if (!std::strcmp(argv[1], "atpg"))
            return cmdAtpg(args);
        std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
        return 2;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
