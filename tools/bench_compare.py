#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots for regressions.

Usage:
    bench_compare.py BASELINE.json NEW.json [--threshold R]
                     [--metric real_time|cpu_time] [--allow-debug]
                     [--require NAME]...

Every benchmark present in BASELINE is looked up in NEW by name and
the chosen per-iteration metric is compared; a benchmark whose
NEW/BASELINE ratio exceeds the threshold is a regression and makes
the script exit non-zero, as does a baseline benchmark missing from
NEW (a silently deleted benchmark is how throughput numbers rot).
Benchmarks only present in NEW are reported but never fail.

Benchmarks that report items_per_second (the throughput benchmarks
count simulated die-cycles as items) additionally get a per-item
cost column: ns/item = 1e9 / items_per_second for both snapshots,
with the same ratio test applied. Per-item cost is the number that
tracks simulator efficiency independent of how many die-cycles a
benchmark happens to run, so its regression is flagged even when
wall time moved for an innocent reason (e.g. the workload shrank).

--require NAME (repeatable) asserts that a benchmark whose name
starts with NAME exists in BOTH snapshots; use it in CI to pin the
benchmarks the thresholds are meant to guard, so renaming one away
cannot silently drop it from the comparison.

A snapshot recorded from a debug build (context flexi_build_type ==
"debug", the field bench_sim_throughput emits itself) fails the
comparison outright unless --allow-debug is given: debug numbers are
meaningless and must never be compared or committed.

The threshold is deliberately configurable: on the machine that
produced the baseline a tight bound (say 1.3) is right, while CI
comparing against a snapshot recorded elsewhere needs a loose bound
that still catches order-of-magnitude regressions.
"""

import argparse
import json
import sys


def load(path, label):
    """Parse a snapshot, exiting with a clear message (not a
    traceback) when the file is absent or not benchmark JSON."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as err:
        sys.exit(f"bench_compare: cannot read {label} snapshot "
                 f"{path}: {err.strerror or err}")
    except json.JSONDecodeError as err:
        sys.exit(f"bench_compare: {label} snapshot {path} is not "
                 f"valid JSON: {err}")
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        sys.exit(f"bench_compare: {label} snapshot {path} has no "
                 f"'benchmarks' array — is it really a "
                 f"google-benchmark --benchmark_out file?")
    return doc


def build_type(doc):
    return doc.get("context", {}).get("flexi_build_type", "unknown")


def by_name(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions);
        # compare plain iterations only.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def per_item_ns(bench):
    """Per-item cost in ns (1e9 / items_per_second), or None when
    the benchmark does not report a throughput counter."""
    ips = bench.get("items_per_second")
    if not isinstance(ips, (int, float)) or ips <= 0:
        return None
    return 1e9 / ips


def main():
    ap = argparse.ArgumentParser(
        description="diff two google-benchmark JSON snapshots")
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=1.3,
                    help="fail when new/baseline exceeds this ratio "
                         "(default 1.3)")
    ap.add_argument("--metric", default="real_time",
                    choices=["real_time", "cpu_time"])
    ap.add_argument("--allow-debug", action="store_true",
                    help="permit snapshots recorded from debug builds")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless a benchmark whose name starts "
                         "with NAME is present in both snapshots "
                         "(repeatable)")
    args = ap.parse_args()

    base_doc = load(args.baseline, "baseline")
    new_doc = load(args.new, "new")

    status = 0
    for label, doc in (("baseline", base_doc), ("new", new_doc)):
        bt = build_type(doc)
        if bt == "debug" and not args.allow_debug:
            print(f"FAIL: {label} snapshot was recorded from a debug "
                  f"build", file=sys.stderr)
            status = 1
    if status:
        return status

    base = by_name(base_doc)
    new = by_name(new_doc)

    for prefix in args.require:
        for label, names in (("baseline", base), ("new", new)):
            if not any(n.startswith(prefix) for n in names):
                print(f"FAIL: required benchmark '{prefix}*' missing "
                      f"from {label} snapshot", file=sys.stderr)
                status = 1
    if status:
        return status

    width = max((len(n) for n in base), default=0)
    for name, b in sorted(base.items()):
        if name not in new:
            print(f"FAIL: {name}: missing from new snapshot",
                  file=sys.stderr)
            status = 1
            continue
        if args.metric not in b or args.metric not in new[name]:
            print(f"FAIL: {name}: snapshot lacks the "
                  f"'{args.metric}' metric", file=sys.stderr)
            status = 1
            continue
        old_t = b[args.metric]
        new_t = new[name][args.metric]
        if old_t <= 0:
            continue
        ratio = new_t / old_t
        unit = b.get("time_unit", "ns")
        line = (f"{name:<{width}}  {old_t:12.3f} -> {new_t:12.3f} "
                f"{unit}  ({ratio:5.2f}x)")
        old_ni = per_item_ns(b)
        new_ni = per_item_ns(new[name])
        item_ratio = None
        if old_ni is not None and new_ni is not None:
            item_ratio = new_ni / old_ni
            line += (f"  |  {old_ni:9.2f} -> {new_ni:9.2f} ns/item "
                     f"({item_ratio:5.2f}x)")
        if ratio > args.threshold:
            print(f"FAIL: {line}  exceeds {args.threshold:.2f}x",
                  file=sys.stderr)
            status = 1
        elif item_ratio is not None and item_ratio > args.threshold:
            print(f"FAIL: {line}  per-item cost exceeds "
                  f"{args.threshold:.2f}x", file=sys.stderr)
            status = 1
        else:
            print(f"  ok: {line}")

    for name in sorted(set(new) - set(base)):
        print(f" new: {name} (no baseline)")

    return status


if __name__ == "__main__":
    sys.exit(main())
