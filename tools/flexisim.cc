/**
 * @file
 * Command-line simulator.
 *
 *   flexi_sim [-t] [--max-cycles N] <isa> <source.s> [inputs...]
 *
 * Assembles and runs the program on the corresponding core (with the
 * off-chip MMU for multi-page programs), feeding the given input
 * values, until the program halts (taken branch to itself) or the
 * instruction budget runs out. Prints outputs, statistics, runtime
 * and energy.
 *
 * --max-cycles arms a watchdog: a program still running after N core
 * cycles is aborted with a clean timeout message and exit status 3,
 * instead of spinning against the (huge) instruction budget. Tests
 * and scripts driving flexisim on untrusted programs should always
 * pass it.
 *
 * Exit codes follow the flexilint contract, plus the watchdog: 0 =
 * ran to completion, 1 = runtime error (assembly errors), 2 = usage
 * error (unknown ISA, malformed option or input value, unreadable
 * source file), 3 = cycle-watchdog timeout.
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "dse/design_point.hh"
#include "sys/flexichip.hh"

using namespace flexi;

namespace
{

/** Usage errors exit 2, per the flexilint exit-code contract. */
[[noreturn]] void
usageError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
    std::exit(2);
}

std::unique_ptr<FlexiChip>
makeChip(const char *name)
{
    if (!std::strcmp(name, "fc4"))
        return std::make_unique<FlexiChip>(IsaKind::FlexiCore4);
    if (!std::strcmp(name, "fc8"))
        return std::make_unique<FlexiChip>(IsaKind::FlexiCore8);
    DesignPoint p;
    if (!std::strcmp(name, "ext")) {
        p.operands = OperandModel::Accumulator;
        return std::make_unique<FlexiChip>(p);
    }
    if (!std::strcmp(name, "ls")) {
        p.operands = OperandModel::LoadStore;
        return std::make_unique<FlexiChip>(p);
    }
    usageError("unknown ISA '%s' (expected fc4|fc8|ext|ls)", name);
}

/** Strict unsigned argument value: all-numeric, in [0, max]. */
uint64_t
parseNumber(const char *what, const char *v, uint64_t max)
{
    char *end = nullptr;
    unsigned long long n = std::strtoull(v, &end, 0);
    if (*v == '-' || *v == '\0' || end == v || *end != '\0' ||
        n > max)
        usageError("%s: expected an integer in 0..%llu, got '%s'",
                   what, (unsigned long long)max, v);
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    bool trace = false;
    uint64_t max_cycles = 0;
    int base = 1;
    for (; base < argc; ++base) {
        if (!std::strcmp(argv[base], "-t")) {
            trace = true;
        } else if (!std::strcmp(argv[base], "--max-cycles") &&
                   base + 1 < argc) {
            max_cycles = parseNumber("--max-cycles", argv[++base],
                                     UINT64_MAX);
        } else {
            break;
        }
    }
    if (argc < base + 2) {
        std::fprintf(stderr,
                     "usage: %s [-t] [--max-cycles N] "
                     "<fc4|fc8|ext|ls> <source.s> [inputs...]\n",
                     argv[0]);
        return 2;
    }
    try {
        auto chip = makeChip(argv[base]);
        std::ifstream in(argv[base + 1]);
        if (!in)
            usageError("cannot open '%s'", argv[base + 1]);
        std::ostringstream src;
        src << in.rdbuf();
        chip->loadProgram(src.str());

        IsaKind isa = chip->isa();
        if (trace) {
            chip->setTraceSink([isa](const TraceRecord &rec) {
                std::printf("%s\n", formatTrace(isa, rec).c_str());
            });
        }

        for (int i = base + 2; i < argc; ++i)
            chip->pushInput(static_cast<uint8_t>(
                parseNumber("input", argv[i], 255)));

        // The cycle watchdog runs the chip in slices so a spinning
        // program is cut off near (not exactly at) the cycle limit —
        // a timeout, not a cycle-accurate breakpoint.
        StopReason reason;
        bool timed_out = false;
        if (max_cycles) {
            do {
                reason = chip->run(chip->stats().instructions + 4096);
            } while (reason == StopReason::Budget &&
                     chip->stats().cycles < max_cycles);
            timed_out = reason == StopReason::Budget &&
                        chip->stats().cycles >= max_cycles;
        } else {
            reason = chip->run(1000000);
        }
        if (timed_out) {
            std::fprintf(stderr,
                         "timeout: program still running after %lu "
                         "cycles (%lu instructions); use --max-cycles "
                         "to adjust the watchdog\n",
                         static_cast<unsigned long>(
                             chip->stats().cycles),
                         static_cast<unsigned long>(
                             chip->stats().instructions));
            return 3;
        }
        std::printf("stopped: %s\n",
                    reason == StopReason::Halted ? "halted"
                                                 : "budget");
        std::printf("outputs:");
        for (uint8_t v : chip->outputs())
            std::printf(" 0x%x", v);
        std::printf("\n");
        const SimStats &s = chip->stats();
        std::printf("instructions %lu, cycles %lu (CPI %.2f), "
                    "branches %lu taken %lu\n",
                    static_cast<unsigned long>(s.instructions),
                    static_cast<unsigned long>(s.cycles), s.cpi(),
                    static_cast<unsigned long>(s.branches),
                    static_cast<unsigned long>(s.takenBranches));
        std::printf("time %.3f ms, energy %.2f uJ\n\n%s",
                    chip->elapsedSeconds() * 1e3,
                    chip->energyJoules() * 1e6,
                    chip->physicalReport().c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
