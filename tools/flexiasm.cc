/**
 * @file
 * Command-line assembler.
 *
 *   flexi_asm <isa> <source.s>
 *
 * isa: fc4 | fc8 | ext | ls. Prints a hex dump per page, the symbol
 * table and code-size statistics; exits non-zero on assembly errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "isa/disassembler.hh"
#include "isa/encoding.hh"

using namespace flexi;

namespace
{

IsaKind
parseIsa(const char *name)
{
    if (!std::strcmp(name, "fc4"))
        return IsaKind::FlexiCore4;
    if (!std::strcmp(name, "fc8"))
        return IsaKind::FlexiCore8;
    if (!std::strcmp(name, "ext"))
        return IsaKind::ExtAcc4;
    if (!std::strcmp(name, "ls"))
        return IsaKind::LoadStore4;
    fatal("unknown ISA '%s' (expected fc4|fc8|ext|ls)", name);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr, "usage: %s <fc4|fc8|ext|ls> <source.s>\n",
                     argv[0]);
        return 2;
    }
    try {
        IsaKind isa = parseIsa(argv[1]);
        std::ifstream in(argv[2]);
        if (!in)
            fatal("cannot open '%s'", argv[2]);
        std::ostringstream src;
        src << in.rdbuf();

        Program prog = assemble(isa, src.str());
        for (unsigned p = 0; p < prog.numPages(); ++p) {
            const auto &img = prog.page(p);
            if (img.empty())
                continue;
            std::printf("; page %u (%zu bytes)\n", p, img.size());
            for (size_t i = 0; i < img.size(); i += 16) {
                std::printf("%04zx:", i);
                for (size_t j = i; j < i + 16 && j < img.size(); ++j)
                    std::printf(" %02x", img[j]);
                std::printf("\n");
            }
            std::printf("; listing\n%s",
                        disassembleImage(isa, img).c_str());
        }
        std::printf("; symbols\n");
        for (const auto &[name, loc] : prog.symbols())
            std::printf(";   %-16s page %u addr %u\n", name.c_str(),
                        loc.page, loc.addr);
        std::printf("; %zu instructions, %zu bits (%zu bytes), "
                    "%u page(s)\n", prog.staticInstructions(),
                    prog.codeSizeBits(), prog.codeSizeBytes(),
                    prog.numPages());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
