; ExtAcc4 model-checking fixture. br.nzp is unconditional, so the
; self-branch needs no condition guard; the leading AND keeps the
; image from being a single instruction (the checker should prove
; the invariant across a real fall-through, not a trivial one).
; The two-byte branch encoding is the interesting part here: the
; induction has to rule out PCs resting mid-instruction.
andi 0
done: br.nzp done
