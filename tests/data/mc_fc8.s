; FlexiCore8 model-checking fixture — same shape as mc_fc4.s on the
; 8-bit datapath: guard NAND forces ACC = 0xFF (negative), so the
; final self-branch always retakes and the PC never walks past the
; image (mmu-page closes at k=3 on this core).
nandi 0
store r1
nandi 0
done: br done
