; Deliberately broken FlexiCore4 fixture: the branch target lies far
; outside the assembled image, so the PC escapes the page three
; cycles after power-on. BMC must falsify mmu-page on this program
; with a replayable multi-cycle counterexample (guard cycle, branch
; cycle, escape cycle).
nandi 0         ; ACC = 0xF: force the branch condition
br 0x40         ; taken branch to empty program memory
