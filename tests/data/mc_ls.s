; LoadStore4 model-checking fixture: one register move, then an
; unconditional self-branch. The PC counts 16-bit words on this
; core, so the unroller's ROM closure fetches instruction bytes at
; pc*2 — this fixture pins that addressing down (mmu-page closes at
; k=1).
mov r2, r0
done: br.nzp done
