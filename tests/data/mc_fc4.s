; FlexiCore4 model-checking fixture: emit one nibble, then halt on a
; taken self-branch. The NAND immediately before the final branch
; forces ACC negative, which is what makes the page invariant
; k-inductive (the fall-through at the last image address is
; unreachable once the branch condition is pinned).
nandi 0         ; ACC = ~(ACC & 0) = 0xF (negative)
store r1        ; write the output port
nandi 0         ; re-force the branch condition
done: br done   ; taken branch to itself = halt
