; Deliberately non-terminating FlexiCore4 program: two taken
; branches ping-pong forever, so the halt condition (taken branch to
; itself) never fires. Used by the flexisim --max-cycles watchdog
; test; a simulator run without the watchdog would burn the whole
; million-instruction budget.
ping: nandi 0
br pong
pong: nandi 0
br ping
