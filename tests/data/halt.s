; Minimal terminating FlexiCore4 program: emit one output nibble and
; halt (taken branch to itself). Companion to spin.s in the flexisim
; watchdog tests — proves --max-cycles does not disturb a program
; that finishes on its own.
nandi 0
xori 0xA        ; ACC = 0xF ^ 0xA = 0x5
store r1        ; write 0x5 to the output bus
nandi 0         ; force ACC negative so the branch is taken
done: br done   ; taken branch to itself = halt
