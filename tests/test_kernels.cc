/**
 * @file
 * Kernel-suite tests: golden models, input generators, and the
 * central integration property — every kernel's assembly on every
 * ISA reproduces the golden model output for output.
 */

#include <gtest/gtest.h>

#include <set>

#include "assembler/assembler.hh"
#include "kernels/golden.hh"
#include "kernels/inputs.hh"
#include "kernels/kernels.hh"
#include "kernels/runner.hh"

namespace flexi
{
namespace
{

// ---------------------------------------------------------------
// Golden models
// ---------------------------------------------------------------

TEST(Golden, CalculatorAdd)
{
    EXPECT_EQ(goldenCalculator(CalcOp::Add, 9, 8),
              (std::vector<uint8_t>{1, 1}));
    EXPECT_EQ(goldenCalculator(CalcOp::Add, 3, 4),
              (std::vector<uint8_t>{7, 0}));
}

TEST(Golden, CalculatorSub)
{
    EXPECT_EQ(goldenCalculator(CalcOp::Sub, 5, 9),
              (std::vector<uint8_t>{(5 - 9) & 0xF, 1}));
    EXPECT_EQ(goldenCalculator(CalcOp::Sub, 9, 5),
              (std::vector<uint8_t>{4, 0}));
}

TEST(Golden, CalculatorMul)
{
    EXPECT_EQ(goldenCalculator(CalcOp::Mul, 15, 15),
              (std::vector<uint8_t>{0x1, 0xE}));   // 225 = 0xE1
    EXPECT_EQ(goldenCalculator(CalcOp::Mul, 3, 5),
              (std::vector<uint8_t>{0xF, 0x0}));
}

TEST(Golden, CalculatorDiv)
{
    EXPECT_EQ(goldenCalculator(CalcOp::Div, 13, 4),
              (std::vector<uint8_t>{3, 1}));
    EXPECT_EQ(goldenCalculator(CalcOp::Div, 7, 9),
              (std::vector<uint8_t>{0, 7}));
    EXPECT_EQ(goldenCalculator(CalcOp::Div, 7, 0),
              (std::vector<uint8_t>{0xF, 0xF}));
}

TEST(Golden, FirHighPassShape)
{
    // Constant input -> alternating-coefficient FIR settles to 0.
    auto out = goldenFir({5, 5, 5, 5, 5, 5});
    EXPECT_EQ(out[4], 0);
    EXPECT_EQ(out[5], 0);
}

TEST(Golden, IntAvgConverges)
{
    // Constant input x: fixed point of y' = ((x+y)&0xF)>>1 is ~x.
    std::vector<uint8_t> xs(12, 6);
    auto out = goldenIntAvg(xs);
    EXPECT_NEAR(out.back(), 5, 1);   // converges just below x
}

TEST(Golden, ThresholdSemantics)
{
    auto out = goldenThreshold({0, 5, 6, 7, 13});
    EXPECT_EQ(out, (std::vector<uint8_t>{0, 0, 6, 7, 13}));
}

TEST(Golden, ParityMatchesBitCount)
{
    // 0xB4 = 0b10110100 has 4 set bits -> even parity.
    EXPECT_EQ(goldenParity({0x4, 0xB}), (std::vector<uint8_t>{0}));
    // 0x01 -> odd.
    EXPECT_EQ(goldenParity({0x1, 0x0}), (std::vector<uint8_t>{1}));
}

TEST(Golden, XorShiftFullPeriod)
{
    // The (7,5,3) triple has full period 255 over nonzero bytes.
    uint8_t s = 1;
    std::set<uint8_t> seen;
    for (int i = 0; i < 255; ++i) {
        s = xorShiftStep(s);
        EXPECT_NE(s, 0);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 255u);
    EXPECT_EQ(s, 1);   // back to the seed
}

TEST(Golden, TreeClassifierDeterministic)
{
    const DecisionTree &t = benchmarkTree();
    uint8_t c1 = t.classify({3, 5, 1});
    uint8_t c2 = t.classify({3, 5, 1});
    EXPECT_EQ(c1, c2);
    EXPECT_LE(c1, 7);
}

TEST(Golden, TreeWalksAllLeaves)
{
    // Exhaustive feature sweep must reach a reasonable spread of
    // leaves (sanity that the walk logic indexes correctly).
    const DecisionTree &t = benchmarkTree();
    std::set<uint8_t> classes;
    for (uint8_t a = 0; a < 8; ++a)
        for (uint8_t b = 0; b < 8; ++b)
            for (uint8_t c = 0; c < 8; ++c)
                classes.insert(t.classify({a, b, c}));
    EXPECT_GE(classes.size(), 2u);
    for (uint8_t c : classes)
        EXPECT_LE(c, 7);
}

// ---------------------------------------------------------------
// Input generators
// ---------------------------------------------------------------

TEST(Inputs, SizesMatchWorkUnits)
{
    for (KernelId id : allKernels()) {
        auto in = kernelInputs(id, 5, 42);
        EXPECT_EQ(in.size(), 5u * kernelInputsPerWork(id))
            << kernelName(id);
    }
}

TEST(Inputs, Deterministic)
{
    for (KernelId id : allKernels())
        EXPECT_EQ(kernelInputs(id, 7, 9), kernelInputs(id, 7, 9));
}

TEST(Inputs, CalculatorAvoidsReservedPrefix)
{
    auto in = kernelInputs(KernelId::Calculator, 200, 1);
    auto out = goldenOutputs(KernelId::Calculator, in);
    for (size_t i = 0; i + 1 < out.size(); ++i)
        EXPECT_FALSE(out[i] == 0xA && out[i + 1] == 0x5) << i;
}

TEST(Inputs, CalculatorDivisorsNonZero)
{
    auto in = kernelInputs(KernelId::Calculator, 300, 7);
    for (size_t i = 0; i < in.size(); i += 3)
        if (in[i] == 3)
            EXPECT_NE(in[i + 2], 0);
}

TEST(Inputs, ExhaustiveCalculatorCoversSpace)
{
    auto in = exhaustiveCalculatorInputs(0);
    // 256 (a,b) pairs minus any skipped for the reserved prefix.
    EXPECT_GT(in.size(), 3 * 240u);
    EXPECT_EQ(in.size() % 3, 0u);
}

// ---------------------------------------------------------------
// Assembly sources
// ---------------------------------------------------------------

/** Every kernel assembles on every supported ISA. */
class KernelAssembly
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(KernelAssembly, Assembles)
{
    auto id = static_cast<KernelId>(std::get<0>(GetParam()));
    auto isa = static_cast<IsaKind>(std::get<1>(GetParam()));
    Program p = assemble(isa, kernelSource(id, isa));
    EXPECT_GT(p.staticInstructions(), 4u);
    EXPECT_GT(p.codeSizeBits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsIsas, KernelAssembly,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(kNumKernels)),
        ::testing::Values(static_cast<int>(IsaKind::FlexiCore4),
                          static_cast<int>(IsaKind::ExtAcc4),
                          static_cast<int>(IsaKind::LoadStore4))));

TEST(KernelAssembly, MultiPageKernelsUseTheMmu)
{
    // Calculator and Decision Tree exceed one 128-entry page
    // (Section 5.1); the rest fit in one page.
    for (KernelId id : allKernels()) {
        Program p = assemble(IsaKind::FlexiCore4,
                             kernelSource(id, IsaKind::FlexiCore4));
        bool multi = id == KernelId::Calculator ||
                     id == KernelId::DecisionTree;
        EXPECT_EQ(p.numPages() > 1, multi) << kernelName(id);
    }
}

TEST(KernelAssembly, ExtensionsShrinkCode)
{
    // Figure 10's headline: the revised ISA slashes code size; the
    // shift-heavy kernels shrink the most.
    for (KernelId id : {KernelId::IntAvg, KernelId::XorShift8,
                        KernelId::ParityCheck}) {
        Program base = assemble(IsaKind::FlexiCore4,
                                kernelSource(id, IsaKind::FlexiCore4));
        Program ext = assemble(IsaKind::ExtAcc4,
                               kernelSource(id, IsaKind::ExtAcc4));
        EXPECT_LT(ext.staticInstructions(),
                  base.staticInstructions() / 2)
            << kernelName(id);
    }
}

// ---------------------------------------------------------------
// Asm-vs-golden integration (the heart of the suite)
// ---------------------------------------------------------------

class KernelVsGolden
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(KernelVsGolden, OutputsMatch)
{
    auto id = static_cast<KernelId>(std::get<0>(GetParam()));
    auto isa = static_cast<IsaKind>(std::get<1>(GetParam()));
    uint64_t seed = static_cast<uint64_t>(std::get<2>(GetParam()));

    TimingConfig cfg;
    cfg.isa = isa;
    auto inputs = kernelInputs(id, 20, seed);
    KernelRun run = runKernelOnInputs(id, cfg, inputs);
    EXPECT_EQ(run.stop, StopReason::OutputTarget)
        << kernelName(id) << " on " << isaName(isa);
    EXPECT_EQ(run.outputs, goldenOutputs(id, inputs))
        << kernelName(id) << " on " << isaName(isa) << " seed "
        << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsIsasSeeds, KernelVsGolden,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(kNumKernels)),
        ::testing::Values(static_cast<int>(IsaKind::FlexiCore4),
                          static_cast<int>(IsaKind::ExtAcc4),
                          static_cast<int>(IsaKind::LoadStore4)),
        ::testing::Values(11, 22, 33)));

/** Exhaustive calculator sweep per op on the base ISA. */
class CalculatorExhaustive : public ::testing::TestWithParam<int>
{
};

TEST_P(CalculatorExhaustive, AllOperandPairs)
{
    auto inputs = exhaustiveCalculatorInputs(
        static_cast<uint8_t>(GetParam()));
    TimingConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    KernelRun run = runKernelOnInputs(KernelId::Calculator, cfg,
                                      inputs, 30000000);
    EXPECT_EQ(run.outputs, goldenOutputs(KernelId::Calculator, inputs));
}

INSTANTIATE_TEST_SUITE_P(Ops, CalculatorExhaustive,
                         ::testing::Values(0, 1, 2, 3));

/** Exhaustive decision-tree sweep over the whole feature space. */
TEST(KernelVsGoldenExhaustive, DecisionTreeFeatureSpace)
{
    std::vector<uint8_t> inputs;
    for (uint8_t a = 0; a < 8; ++a)
        for (uint8_t b = 0; b < 8; ++b)
            for (uint8_t c = 0; c < 8; ++c) {
                inputs.push_back(a);
                inputs.push_back(b);
                inputs.push_back(c);
            }
    TimingConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    KernelRun run = runKernelOnInputs(KernelId::DecisionTree, cfg,
                                      inputs, 10000000);
    EXPECT_EQ(run.outputs, goldenOutputs(KernelId::DecisionTree,
                                         inputs));
}

/** XorShift chained through the core must walk the full period. */
TEST(KernelVsGoldenExhaustive, XorShiftFullPeriodOnCore)
{
    // Feed each state back in: 255 queries starting from seed 1.
    std::vector<uint8_t> inputs;
    uint8_t s = 1;
    for (int i = 0; i < 255; ++i) {
        inputs.push_back(s & 0xF);
        inputs.push_back(s >> 4);
        s = xorShiftStep(s);
    }
    TimingConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    KernelRun run = runKernelOnInputs(KernelId::XorShift8, cfg,
                                      inputs, 10000000);
    ASSERT_EQ(run.outputs.size(), 510u);
    // The chained outputs must traverse all 255 nonzero states.
    std::set<uint8_t> states;
    for (size_t i = 0; i < run.outputs.size(); i += 2)
        states.insert(static_cast<uint8_t>(run.outputs[i] |
                                           (run.outputs[i + 1] << 4)));
    EXPECT_EQ(states.size(), 255u);
}

/**
 * Property: architectural outputs are invariant under the
 * microarchitecture and bus width — pipelining and multicycle
 * sequencing change cycle counts, never results.
 */
TEST(KernelVsGolden, OutputsInvariantUnderMicroarchitecture)
{
    for (KernelId id :
         {KernelId::IntAvg, KernelId::ParityCheck,
          KernelId::Calculator}) {
        for (IsaKind isa : {IsaKind::ExtAcc4, IsaKind::LoadStore4}) {
            auto inputs = kernelInputs(id, 10, 17);
            auto expected = goldenOutputs(id, inputs);
            uint64_t sc_cycles = 0;
            for (MicroArch ua : {MicroArch::SingleCycle,
                                 MicroArch::Pipelined2,
                                 MicroArch::MultiCycle}) {
                for (BusWidth bus :
                     {BusWidth::Wide, BusWidth::Narrow8}) {
                    TimingConfig cfg{isa, ua, bus};
                    if (isa == IsaKind::LoadStore4 &&
                        bus == BusWidth::Narrow8 &&
                        ua != MicroArch::MultiCycle)
                        continue;   // infeasible (Section 6.2)
                    KernelRun run =
                        runKernelOnInputs(id, cfg, inputs);
                    EXPECT_EQ(run.outputs, expected)
                        << kernelName(id) << " " << isaName(isa)
                        << " " << microArchName(ua);
                    if (ua == MicroArch::SingleCycle &&
                        bus == BusWidth::Wide)
                        sc_cycles = run.stats.cycles;
                    else
                        EXPECT_GE(run.stats.cycles, sc_cycles);
                }
            }
        }
    }
}

/** Timing sanity: DSE cores beat the base core on dynamic count. */
TEST(KernelPerformance, ExtReducesDynamicInstructions)
{
    for (KernelId id : {KernelId::IntAvg, KernelId::XorShift8}) {
        TimingConfig base{IsaKind::FlexiCore4,
                          MicroArch::SingleCycle, BusWidth::Wide};
        TimingConfig ext{IsaKind::ExtAcc4, MicroArch::SingleCycle,
                         BusWidth::Wide};
        KernelRun b = runKernel(id, base, 10, 5);
        KernelRun e = runKernel(id, ext, 10, 5);
        EXPECT_LT(e.stats.instructions, b.stats.instructions / 2)
            << kernelName(id);
    }
}

} // namespace
} // namespace flexi
