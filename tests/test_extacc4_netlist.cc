/**
 * @file
 * Gate-level validation of the single-cycle ExtAcc4 netlist (the
 * Section 6.1 revised op set / FlexiCore4+ die family): lockstep
 * equivalence against the architectural simulator on directed,
 * random, and real-kernel programs, plus area-model cross-checks.
 */

#include <gtest/gtest.h>

#include "analysis/netlist_lint.hh"
#include "assembler/assembler.hh"
#include "common/rng.hh"
#include "dse/area_model.hh"
#include "kernels/golden.hh"
#include "kernels/inputs.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"

namespace flexi
{
namespace
{

TEST(ExtNetlist, LintsClean)
{
    auto nl = buildExtAcc4Netlist();
    LintReport rep = lintNetlist(*nl);
    EXPECT_TRUE(rep.clean()) << rep.text(nl->name());
}

TEST(ExtNetlist, BuildsWithWideBusInterface)
{
    auto nl = buildExtAcc4Netlist();
    EXPECT_GT(nl->numCells(), 200u);
    EXPECT_NO_THROW(nl->setBus("instr", 16, 0xABCD));
    EXPECT_NO_THROW(nl->bus("pc", 7));
}

TEST(ExtNetlist, BiggerThanBaseButBounded)
{
    // The revised-op-set core is bigger than the base FlexiCore4 but
    // in the same class. (This structural netlist is an unoptimized
    // functional reference — roughly RTL before logic sharing; the
    // paper's synthesized overhead is 9-37 %, our analytical model
    // sits at ~22 %, and this flat netlist lands higher.)
    auto base = buildFlexiCore4Netlist();
    auto ext = buildExtAcc4Netlist();
    double rel = ext->totalNand2Area() / base->totalNand2Area();
    EXPECT_GT(rel, 1.05);
    EXPECT_LT(rel, 1.85);
}

TEST(ExtNetlist, AreaModelBelowUnoptimizedNetlist)
{
    // The analytical (post-synthesis) area model must come in below
    // the flat structural netlist but within a logic-sharing factor
    // of it.
    auto ext = buildExtAcc4Netlist();
    DesignPoint p;   // defaults: Acc SC wide, revised features
    double ratio = areaOf(p).total() / ext->totalNand2Area();
    EXPECT_GT(ratio, 0.65);
    EXPECT_LE(ratio, 1.05);
}

TEST(ExtNetlist, DirectedArithmetic)
{
    Program p = assemble(IsaKind::ExtAcc4, R"(
        li 7
        addi 3          ; 10
        store r2
        li 6
        add r2          ; 0 carry 1
        adci 0          ; 1
        store r3
        li 3
        sub r3          ; 2, no borrow
        store r1
        li 0
        sub r3          ; 0 - 1 borrows
        li 0
        adci 0          ; carry -> 0
        store r1
        end: br.nzp end
    )");
    auto nl = buildExtAcc4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::ExtAcc4, p, {}, 200);
    EXPECT_EQ(res.errors, 0u);
    ASSERT_EQ(res.outputs.size(), 2u);
    EXPECT_EQ(res.outputs[0], 2);
    EXPECT_EQ(res.outputs[1], 0);
}

TEST(ExtNetlist, DirectedShifterAndFlags)
{
    Program p = assemble(IsaKind::ExtAcc4, R"(
        li 7
        addi 2          ; 9 = 0b1001
        store r2
        lsri 1          ; 0b0100
        store r1
        load r2
        asri 1          ; 0b1100 (sign fill)
        store r1
        load r2
        asri 2          ; 0b1110
        store r1
        li 0
        br.z zt
        li 1
        zt: li 5
        br.p pt
        li 2
        pt: xch r2      ; acc=9, r2=5
        store r1
        load r2
        store r1
        call sr
        li 3
        store r1
        end: br.nzp end
        sr: lsr         ; shift-by-one form
        store r1
        ret
    )");
    auto nl = buildExtAcc4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::ExtAcc4, p, {}, 400);
    EXPECT_EQ(res.errors, 0u);
    ASSERT_EQ(res.outputs.size(), 7u);
    EXPECT_EQ(res.outputs[0], 0b0100);
    EXPECT_EQ(res.outputs[1], 0b1100);
    EXPECT_EQ(res.outputs[2], 0b1110);
    EXPECT_EQ(res.outputs[3], 9);       // xch result in ACC
    EXPECT_EQ(res.outputs[4], 5);       // exchanged memory
    EXPECT_EQ(res.outputs[5], 0b0010);  // 5 >> 1 inside subroutine
    EXPECT_EQ(res.outputs[6], 3);       // after ret
}

/** Random instruction streams: every byte pair is defined. */
class ExtRandomLockstep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ExtRandomLockstep, MatchesSimulator)
{
    Rng rng(GetParam() * 104729 + 7);
    Program p(IsaKind::ExtAcc4);
    std::vector<uint8_t> bytes;
    for (int i = 0; i < 127; ++i)
        bytes.push_back(static_cast<uint8_t>(rng.below(256)));
    p.appendBytes(0, bytes);
    std::vector<uint8_t> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(static_cast<uint8_t>(rng.below(16)));

    auto nl = buildExtAcc4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::ExtAcc4, p, inputs, 3000);
    EXPECT_EQ(res.errors, 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtRandomLockstep,
                         ::testing::Range<uint64_t>(1, 13));

/** The real single-page kernels run on the gates and match golden. */
class ExtKernelOnGates : public ::testing::TestWithParam<int>
{
};

TEST_P(ExtKernelOnGates, KernelMatchesGolden)
{
    auto id = static_cast<KernelId>(GetParam());
    Program p = assemble(IsaKind::ExtAcc4,
                         kernelSource(id, IsaKind::ExtAcc4));
    ASSERT_EQ(p.numPages(), 1u);

    auto inputs = kernelInputs(id, 8, 3);
    auto nl = buildExtAcc4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::ExtAcc4, p, inputs, 30000);
    EXPECT_EQ(res.errors, 0u) << kernelName(id);

    auto expected = goldenOutputs(id, inputs);
    ASSERT_GE(res.outputs.size(), expected.size()) << kernelName(id);
    res.outputs.resize(expected.size());
    EXPECT_EQ(res.outputs, expected) << kernelName(id);
}

INSTANTIATE_TEST_SUITE_P(
    SinglePageKernels, ExtKernelOnGates,
    ::testing::Values(static_cast<int>(KernelId::FirFilter),
                      static_cast<int>(KernelId::IntAvg),
                      static_cast<int>(KernelId::Thresholding),
                      static_cast<int>(KernelId::ParityCheck),
                      static_cast<int>(KernelId::XorShift8)));

TEST(ExtNetlist, FaultInjectionCaught)
{
    Program p = assemble(IsaKind::ExtAcc4,
                         kernelSource(KernelId::ParityCheck,
                                      IsaKind::ExtAcc4));
    auto inputs = kernelInputs(KernelId::ParityCheck, 16, 5);
    auto nl = buildExtAcc4Netlist();
    // Fault a propagate XOR in the adder — the parity kernel's xor
    // traffic must expose it.
    NetId victim = kNoNet;
    for (const auto &cell : nl->cells()) {
        if (cell.module == "alu" && cell.type == CellType::XOR2) {
            victim = cell.output;
            break;
        }
    }
    ASSERT_NE(victim, kNoNet);
    nl->injectFault({victim, true});
    LockstepResult res =
        runLockstep(*nl, IsaKind::ExtAcc4, p, inputs, 5000);
    EXPECT_GT(res.errors, 0u);
}

} // namespace
} // namespace flexi
