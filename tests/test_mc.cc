/**
 * @file
 * Sequential model-checker tests: the property spec language, BMC
 * falsification with replayable multi-cycle counterexamples
 * (replayed through both the scalar interpreter and the LaneGroup
 * wide backend), k-induction proofs of the watchdog and MMU page
 * invariants on all four shipped cores, the sequential reset-
 * coverage refinement, and the certified sequential prune with its
 * tamper check.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/mc/bmc.hh"
#include "analysis/mc/mc_lint.hh"
#include "analysis/mc/property.hh"
#include "analysis/mc/seq_prune.hh"
#include "assembler/assembler.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/netlist.hh"

namespace flexi
{
namespace
{

std::string
fixtureSource(const std::string &file)
{
    std::ifstream in(std::string(FLEXI_TEST_DATA_DIR) + "/" + file);
    EXPECT_TRUE(in.good()) << file;
    std::ostringstream src;
    src << in.rdbuf();
    return src.str();
}

// ---------------------------------------------------------------
// The property spec language.

TEST(McProperty, ParseAllKinds)
{
    McProperty p;
    ASSERT_TRUE(parsePropertySpec("assert:acc0=1", p));
    EXPECT_EQ(p.kind, McProperty::Kind::NetAssert);
    EXPECT_EQ(p.net, "acc0");
    EXPECT_TRUE(p.value);
    EXPECT_EQ(p.window(), 1u);

    ASSERT_TRUE(parsePropertySpec("bound:pc/7/100", p));
    EXPECT_EQ(p.kind, McProperty::Kind::BusBound);
    EXPECT_EQ(p.bus, "pc");
    EXPECT_EQ(p.width, 7u);
    EXPECT_EQ(p.limit, 100u);

    ASSERT_TRUE(parsePropertySpec("watchdog:3", p));
    EXPECT_EQ(p.kind, McProperty::Kind::Watchdog);
    EXPECT_EQ(p.param, 3u);
    EXPECT_EQ(p.window(), 5u);   // N stuck cycles + the next edge

    ASSERT_TRUE(parsePropertySpec("mmu-page", p));
    EXPECT_EQ(p.kind, McProperty::Kind::MmuPage);

    ASSERT_TRUE(parsePropertySpec("xfree:4", p));
    EXPECT_EQ(p.kind, McProperty::Kind::XFree);
    EXPECT_EQ(p.param, 4u);
}

TEST(McProperty, MalformedSpecsRejectedWithReason)
{
    McProperty p;
    std::string err;
    EXPECT_FALSE(parsePropertySpec("bogus:x", p, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parsePropertySpec("assert:acc0", p, &err));
    EXPECT_FALSE(parsePropertySpec("assert:acc0=2", p, &err));
    EXPECT_FALSE(parsePropertySpec("bound:pc/7", p, &err));
    EXPECT_FALSE(parsePropertySpec("bound:pc/0/1", p, &err));
    EXPECT_FALSE(parsePropertySpec("watchdog:0", p, &err));
    EXPECT_FALSE(parsePropertySpec("", p, &err));
}

TEST(McProperty, ValidationResolvesModelParameters)
{
    auto nl = buildFlexiCore4Netlist();
    McModel model;
    McProperty p;

    // Names must resolve against the netlist.
    ASSERT_TRUE(parsePropertySpec("assert:no_such_net=0", p));
    EXPECT_FALSE(validateProperty(*nl, model, p).empty());

    // mmu-page is a program property: without a ROM-closed model it
    // is invalid; with one, the limit resolves to the page fill.
    ASSERT_TRUE(parsePropertySpec("mmu-page", p));
    EXPECT_FALSE(validateProperty(*nl, model, p).empty());

    Program prog =
        assemble(IsaKind::FlexiCore4, fixtureSource("mc_fc4.s"));
    model.program = &prog;
    ASSERT_TRUE(parsePropertySpec("mmu-page", p));
    EXPECT_TRUE(validateProperty(*nl, model, p).empty());
    EXPECT_GT(p.limit, 0u);
}

// ---------------------------------------------------------------
// BMC: clean bounds and replayable counterexamples.

TEST(Bmc, CleanWithinBound)
{
    auto nl = buildFlexiCore4Netlist();
    McModel model;
    McProperty p;
    ASSERT_TRUE(parsePropertySpec("bound:pc/7/128", p));
    ASSERT_TRUE(validateProperty(*nl, model, p).empty());
    McResult r = checkBmc(*nl, model, p, 4);
    EXPECT_EQ(r.status, McStatus::Clean);
    EXPECT_EQ(r.depth, 4u);
    EXPECT_GT(r.solves, 0u);
}

TEST(Bmc, EscapeFixtureYieldsReplayableMultiCycleCex)
{
    // mc_escape.s branches to empty program memory: the PC leaves
    // the page two cycles after power-on. The counterexample must
    // be multi-cycle, and both simulators must reproduce it.
    auto nl = buildFlexiCore4Netlist();
    Program prog =
        assemble(IsaKind::FlexiCore4, fixtureSource("mc_escape.s"));
    McModel model;
    model.program = &prog;
    McProperty p;
    ASSERT_TRUE(parsePropertySpec("mmu-page", p));
    ASSERT_TRUE(validateProperty(*nl, model, p).empty());

    McResult r = checkBmc(*nl, model, p, 8);
    ASSERT_EQ(r.status, McStatus::Falsified) << r.detail;
    EXPECT_GE(r.trace.violationStep, 2u);
    ASSERT_GE(r.trace.frames.size(), 3u);
    EXPECT_EQ(r.trace.property, p.spec);

    // The rendered trace is part of the diagnostic contract.
    std::string text = r.trace.text();
    EXPECT_NE(text.find("cycle 0:"), std::string::npos);
    EXPECT_NE(text.find("violated"), std::string::npos);
    EXPECT_NE(r.trace.vcd().find("$timescale"), std::string::npos);

    std::string what;
    EXPECT_TRUE(replayMcTrace(*nl, p, r.trace, &what)) << what;
    EXPECT_TRUE(replayMcTraceWide(*nl, p, r.trace, &what)) << what;

    // A tampered trace must not replay: the check is not vacuous.
    McTrace bad = r.trace;
    ASSERT_FALSE(bad.frames.back().state.empty());
    bad.frames.back().state.front().second =
        !bad.frames.back().state.front().second;
    EXPECT_FALSE(replayMcTrace(*nl, p, bad, nullptr));
    EXPECT_FALSE(replayMcTraceWide(*nl, p, bad, nullptr));
}

// ---------------------------------------------------------------
// k-induction across the shipped cores (the acceptance bar).

struct CoreFixture
{
    IsaKind isa;
    const char *program;
    unsigned maxK;
};

TEST(Induction, ProvesWatchdogAndMmuPageOnAllFourCores)
{
    const CoreFixture cores[] = {
        {IsaKind::FlexiCore4, "mc_fc4.s", 4},
        {IsaKind::FlexiCore8, "mc_fc8.s", 4},
        {IsaKind::ExtAcc4, "mc_ext.s", 4},
        {IsaKind::LoadStore4, "mc_ls.s", 4},
    };
    for (const CoreFixture &c : cores) {
        std::unique_ptr<Netlist> nl;
        switch (c.isa) {
          case IsaKind::FlexiCore4: nl = buildFlexiCore4Netlist(); break;
          case IsaKind::FlexiCore8: nl = buildFlexiCore8Netlist(); break;
          case IsaKind::ExtAcc4: nl = buildExtAcc4Netlist(); break;
          case IsaKind::LoadStore4: nl = buildLoadStore4Netlist(); break;
        }
        Program prog = assemble(c.isa, fixtureSource(c.program));
        McModel model;
        model.program = &prog;
        for (const char *spec : {"watchdog", "mmu-page"}) {
            McProperty p;
            ASSERT_TRUE(parsePropertySpec(spec, p));
            ASSERT_TRUE(validateProperty(*nl, model, p).empty())
                << nl->name() << " " << spec;
            McResult r = checkInduction(*nl, model, p, c.maxK);
            EXPECT_EQ(r.status, McStatus::Proved)
                << nl->name() << " " << spec << ": " << r.detail;
            EXPECT_GE(r.depth, 1u);
            EXPECT_LE(r.depth, c.maxK);
        }
    }
}

TEST(Induction, BaseCaseFailurePassesTheTraceThrough)
{
    // On the escape fixture the induction step may well close, but
    // the BMC base case must catch the real violation and return it
    // as Falsified, trace included.
    auto nl = buildFlexiCore4Netlist();
    Program prog =
        assemble(IsaKind::FlexiCore4, fixtureSource("mc_escape.s"));
    McModel model;
    model.program = &prog;
    McProperty p;
    ASSERT_TRUE(parsePropertySpec("mmu-page", p));
    ASSERT_TRUE(validateProperty(*nl, model, p).empty());
    McResult r = checkInduction(*nl, model, p, 6);
    ASSERT_EQ(r.status, McStatus::Falsified) << r.detail;
    EXPECT_TRUE(replayMcTrace(*nl, p, r.trace, nullptr));
}

// ---------------------------------------------------------------
// Sequential reset coverage (the xfree refinement).

TEST(SeqResetCoverage, SeparatesSelfInitializingFromHoldingState)
{
    // dff_a reloads from an input every cycle: covered after one
    // cycle regardless of power-on. dff_b holds itself forever:
    // never covered. The ternary rule cannot tell these apart when
    // inits are unknown; the two-copy sequential check can.
    Netlist nl("t");
    NetId in = nl.addInput("in");
    NetId qa = nl.addDff(in, "m");
    NetId qb = nl.addDff(in, "m");
    nl.setDffInput(qb, qb);
    Builder b(nl, "m");
    nl.addOutput("y", b.nand2(qa, qb));
    nl.elaborate();

    McModel model;
    SeqResetCoverageResult cov = seqResetCoverage(nl, model, 2);
    EXPECT_FALSE(cov.ok);
    ASSERT_EQ(cov.covered.size(), 2u);
    EXPECT_TRUE(cov.covered[0]);
    EXPECT_FALSE(cov.covered[1]);
}

// ---------------------------------------------------------------
// The lint layer.

TEST(McLint, ProvedCatalogRendersNotes)
{
    auto nl = buildFlexiCore4Netlist();
    Program prog =
        assemble(IsaKind::FlexiCore4, fixtureSource("mc_fc4.s"));
    McLintOptions opts;
    opts.inductDepth = 4;
    opts.props = {"watchdog", "mmu-page"};
    opts.model.program = &prog;
    McLintOutcome out = mcLint(*nl, opts);
    EXPECT_TRUE(out.report.clean());
    EXPECT_TRUE(out.report.fires("prop-proved"));
    EXPECT_FALSE(out.report.fires("prop-cex"));
    EXPECT_TRUE(out.traces.empty());
}

TEST(McLint, CounterexampleIsAnErrorWithTrace)
{
    auto nl = buildFlexiCore4Netlist();
    Program prog =
        assemble(IsaKind::FlexiCore4, fixtureSource("mc_escape.s"));
    McLintOptions opts;
    opts.bmcDepth = 8;
    opts.props = {"mmu-page"};
    opts.model.program = &prog;
    McLintOutcome out = mcLint(*nl, opts);
    EXPECT_FALSE(out.report.clean());
    EXPECT_TRUE(out.report.fires("prop-cex"));
    EXPECT_FALSE(out.report.fires("prop-replay-diverged"));
    ASSERT_EQ(out.traces.size(), 1u);
    EXPECT_GE(out.traces[0].frames.size(), 3u);
}

TEST(McLint, InvalidSpecIsReportedNotFatal)
{
    auto nl = buildFlexiCore4Netlist();
    McLintOptions opts;
    opts.bmcDepth = 2;
    opts.props = {"assert:no_such_net=1"};
    McLintOutcome out = mcLint(*nl, opts);
    EXPECT_FALSE(out.report.clean());
    EXPECT_TRUE(out.report.fires("prop-invalid"));
}

// ---------------------------------------------------------------
// The certified sequential prune.

/**
 * A netlist the ternary engine can do nothing with, but seqPrune
 * folds: a DFF fed by NAND(x, ~x) (combinationally constant 1 but
 * ternary-X), and a register pair whose D cones read their *own* Qs
 * (equal in every reachable state, never combinationally equal).
 */
std::unique_ptr<Netlist>
buildSeqRedundantFixture()
{
    auto nl = std::make_unique<Netlist>("seqfix");
    Builder b(*nl, "m");
    NetId x = nl->addInput("x");
    NetId in = nl->addInput("in");

    NetId always1 = b.nand2(x, b.inv(x));
    NetId qc = nl->addDff(always1, "m", true);

    NetId q1 = nl->addDff(nl->zero(), "m");
    NetId q2 = nl->addDff(nl->zero(), "m");
    nl->setDffInput(q1, b.nand2(in, q1));
    nl->setDffInput(q2, b.nand2(in, q2));

    nl->addOutput("y", b.nand2(qc, b.nand2(q1, q2)));
    nl->elaborate();
    return nl;
}

TEST(SeqPrune, FoldsConstAndPairStateTheTernaryEngineCannot)
{
    auto nl = buildSeqRedundantFixture();
    SeqPruneResult sp = seqPrune(*nl);
    ASSERT_TRUE(sp.ok) << sp.detail;
    EXPECT_TRUE(sp.certified) << sp.certification.detail;

    // The constant DFF folds to a rail, one pair half is deleted.
    EXPECT_GE(sp.seq.constDffs + sp.seq.pairDffs, 2u);
    EXPECT_LT(sp.stats.dffsAfter, sp.stats.dffsBefore);
    // Strictly beyond what ternary pruning alone managed.
    EXPECT_LT(sp.stats.cellsAfter, sp.baseline.cellsAfter);

    // The survivor still computes the same function.
    ASSERT_NE(sp.netlist, nullptr);
    EXPECT_TRUE(sp.netlist->elaborated());
}

TEST(SeqPrune, StrictlyImprovesShippedCoresCertified)
{
    // The acceptance bar: on at least two shipped cores the
    // sequential stage must beat the PR-6 ternary baseline, with
    // every removal SAT-certified.
    for (auto build :
         {buildFlexiCore4Netlist, buildFlexiCore8Netlist}) {
        auto nl = build();
        SeqPruneResult sp = seqPrune(*nl);
        ASSERT_TRUE(sp.ok) << nl->name() << ": " << sp.detail;
        EXPECT_TRUE(sp.certified)
            << nl->name() << ": " << sp.certification.detail;
        EXPECT_LT(sp.stats.cellsAfter, sp.baseline.cellsAfter)
            << nl->name();
        EXPECT_GT(sp.stats.nand2AreaSaved(),
                  sp.baseline.nand2AreaSaved())
            << nl->name();
        EXPECT_GT(sp.seq.mergedNets, 0u) << nl->name();
    }
}

TEST(SeqPrune, TamperedInvariantsFailCertification)
{
    auto nl = buildSeqRedundantFixture();
    SeqPruneResult sp = seqPrune(*nl);
    ASSERT_TRUE(sp.ok) << sp.detail;
    ASSERT_TRUE(sp.certified);
    ASSERT_FALSE(sp.invariants.pairs.empty());

    // The untampered arguments re-certify standalone.
    EquivResult good =
        certifySeqPrune(*nl, *sp.netlist, sp.invariants, sp.dffMap,
                        sp.netMap, sp.netInv);
    EXPECT_TRUE(good.proven) << good.detail;

    // Claiming a register constant when it can change must be
    // refuted by the induction-step proof: the pair keeper reloads
    // from NAND(in, q), which leaves 0 the moment `in` drops.
    SeqInvariants overclaim = sp.invariants;
    size_t keeper = sp.invariants.pairs[0].keep;
    overclaim.consts.push_back({keeper, nl->dffs()[keeper].init});
    EquivResult step =
        certifySeqPrune(*nl, *sp.netlist, overclaim, sp.dffMap,
                        sp.netMap, sp.netInv);
    EXPECT_FALSE(step.proven);

    // A pair claimed with the wrong polarity already contradicts
    // the power-on values: the base case must refuse it.
    SeqInvariants flipped = sp.invariants;
    flipped.pairs[0].inverted = !flipped.pairs[0].inverted;
    EquivResult base =
        certifySeqPrune(*nl, *sp.netlist, flipped, sp.dffMap,
                        sp.netMap, sp.netInv);
    EXPECT_FALSE(base.proven);
    EXPECT_FALSE(base.detail.empty());
}

} // namespace
} // namespace flexi
