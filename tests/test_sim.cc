/**
 * @file
 * Unit tests for the instruction-level simulator: per-op semantics,
 * IO mapping, branching, MMU paging, timing models.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/core_sim.hh"
#include "sim/mmu.hh"

namespace flexi
{
namespace
{

/** Assemble + run on a default single-cycle core, return the sim. */
struct Rig
{
    Rig(IsaKind isa, const std::string &src,
        std::vector<uint8_t> inputs = {},
        MicroArch uarch = MicroArch::SingleCycle,
        BusWidth bus = BusWidth::Wide)
        : prog(assemble(isa, src))
    {
        env.pushInputs(inputs);
        TimingConfig cfg{isa, uarch, bus};
        sim = std::make_unique<CoreSim>(cfg, prog, env);
    }

    Program prog;
    FifoEnvironment env;
    std::unique_ptr<CoreSim> sim;
};

// ---------------------------------------------------------------
// FlexiCore4 semantics
// ---------------------------------------------------------------

TEST(Fc4Sim, AddImmediate)
{
    Rig rig(IsaKind::FlexiCore4, "addi 5\naddi 7\n");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), (5 + 7) & 0xF);
}

TEST(Fc4Sim, AdditionWrapsAtFourBits)
{
    Rig rig(IsaKind::FlexiCore4, "addi 0xF\naddi 0x2\n");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 0x1);
}

TEST(Fc4Sim, NandImmediate)
{
    // nandi 0 always yields 0xF (used as "set all ones" idiom).
    Rig rig(IsaKind::FlexiCore4, "addi 9\nnandi 0\n");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 0xF);
}

TEST(Fc4Sim, XorImmediate)
{
    Rig rig(IsaKind::FlexiCore4, "addi 0b1010\nxori 0b0110\n");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 0b1100);
}

TEST(Fc4Sim, LoadStoreMemory)
{
    Rig rig(IsaKind::FlexiCore4,
            "addi 9\nstore r5\naddi 3\nload r5\n");
    rig.sim->run(4);
    EXPECT_EQ(rig.sim->acc(), 9);
    EXPECT_EQ(rig.sim->mem(5), 9);
}

TEST(Fc4Sim, MemoryOperandAlu)
{
    Rig rig(IsaKind::FlexiCore4,
            "addi 6\nstore r2\naddi -6\naddi 3\nadd r2\n");
    rig.sim->run(5);
    EXPECT_EQ(rig.sim->acc(), 9);
}

TEST(Fc4Sim, BranchTakenOnNegativeAcc)
{
    // ACC = 0x8 (MSB set) -> branch taken.
    Rig rig(IsaKind::FlexiCore4, R"(
        addi 0x8
        br over
        addi 1      ; skipped
        over: addi 2
    )");
    rig.sim->run(3);
    EXPECT_EQ(rig.sim->acc(), 0xA);
    EXPECT_EQ(rig.sim->stats().takenBranches, 1u);
}

TEST(Fc4Sim, BranchNotTakenOnPositiveAcc)
{
    Rig rig(IsaKind::FlexiCore4, R"(
        addi 0x1
        br over
        addi 1
        over: addi 2
    )");
    rig.sim->run(4);
    EXPECT_EQ(rig.sim->acc(), 4);
    EXPECT_EQ(rig.sim->stats().takenBranches, 0u);
}

TEST(Fc4Sim, HaltIdiom)
{
    Rig rig(IsaKind::FlexiCore4, "nandi 0\nend: br end\n");
    StopReason r = rig.sim->run(100);
    EXPECT_EQ(r, StopReason::Halted);
    EXPECT_TRUE(rig.sim->halted());
    EXPECT_EQ(rig.sim->stats().instructions, 2u);
}

TEST(Fc4Sim, InputPortMappedAtZero)
{
    Rig rig(IsaKind::FlexiCore4, "load r0\nstore r2\nload r0\n",
            {0x3, 0x9});
    rig.sim->run(3);
    EXPECT_EQ(rig.sim->mem(2), 0x3);
    EXPECT_EQ(rig.sim->acc(), 0x9);
    EXPECT_EQ(rig.sim->stats().ioReads, 2u);
}

TEST(Fc4Sim, InputHeldAfterFifoDrains)
{
    Rig rig(IsaKind::FlexiCore4, "load r0\nload r0\n", {0x7});
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 0x7);
}

TEST(Fc4Sim, OutputPortMappedAtOne)
{
    Rig rig(IsaKind::FlexiCore4, "addi 0xC\nstore r1\naddi 1\n"
                                 "store r1\n");
    rig.sim->run(4);
    ASSERT_EQ(rig.env.outputs().size(), 2u);
    EXPECT_EQ(rig.env.outputs()[0], 0xC);
    EXPECT_EQ(rig.env.outputs()[1], 0xD);
    EXPECT_EQ(rig.sim->outputLatch(), 0xD);
}

TEST(Fc4Sim, OutputLatchReadable)
{
    Rig rig(IsaKind::FlexiCore4,
            "addi 5\nstore r1\naddi 1\nload r1\n");
    rig.sim->run(4);
    EXPECT_EQ(rig.sim->acc(), 5);
}

TEST(Fc4Sim, StoreToInputAddressIgnored)
{
    Rig rig(IsaKind::FlexiCore4, "addi 5\nstore r0\nload r0\n", {0xA});
    rig.sim->run(3);
    EXPECT_EQ(rig.sim->acc(), 0xA);
}

TEST(Fc4Sim, AluFromInputPort)
{
    Rig rig(IsaKind::FlexiCore4, "addi 2\nadd r0\n", {0x5});
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 7);
}

/** Listing 2's unconditional-branch idiom must work. */
TEST(Fc4Sim, UnconditionalBranchIdiom)
{
    Rig rig(IsaKind::FlexiCore4, R"(
        addi 3          ; ACC positive
        xori 0x8        ; force MSB
        br tgt
        pre: addi 15    ; never reached
        tgt: xori 0x8   ; restore ACC
        end: nandi 0
        spin: br spin
    )");
    rig.sim->run(100);
    // After restore, ACC is 3 again (before the nandi).
    EXPECT_EQ(rig.sim->stats().takenBranches, 2u);
}

// ---------------------------------------------------------------
// FlexiCore8 semantics
// ---------------------------------------------------------------

TEST(Fc8Sim, LoadByteFullOctet)
{
    Rig rig(IsaKind::FlexiCore8, "ldb 0xC3\n");
    rig.sim->run(1);
    EXPECT_EQ(rig.sim->acc(), 0xC3);
    EXPECT_EQ(rig.sim->stats().cycles, 2u);   // two-cycle instruction
    EXPECT_EQ(rig.sim->pc(), 2u);
}

TEST(Fc8Sim, ImmediatesSignExtend)
{
    Rig rig(IsaKind::FlexiCore8, "addi -1\n");
    rig.sim->run(1);
    EXPECT_EQ(rig.sim->acc(), 0xFF);
}

TEST(Fc8Sim, BranchOnBitSeven)
{
    Rig rig(IsaKind::FlexiCore8, R"(
        ldb 0x80
        br over
        addi 1
        over: addi 0
    )");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->stats().takenBranches, 1u);
}

TEST(Fc8Sim, FourWordMemory)
{
    Rig rig(IsaKind::FlexiCore8,
            "ldb 0x5A\nstore r2\nldb 0xA5\nstore r3\nload r2\n");
    rig.sim->run(5);
    EXPECT_EQ(rig.sim->acc(), 0x5A);
    EXPECT_EQ(rig.sim->mem(3), 0xA5);
}

TEST(Fc8Sim, EightBitIo)
{
    Rig rig(IsaKind::FlexiCore8, "load r0\nstore r1\n", {0xEE});
    rig.sim->run(2);
    ASSERT_EQ(rig.env.outputs().size(), 1u);
    EXPECT_EQ(rig.env.outputs()[0], 0xEE);
}

// ---------------------------------------------------------------
// ExtAcc4 semantics
// ---------------------------------------------------------------

TEST(ExtSim, CarryChainAddAdc)
{
    // 7+3+3+3 = 16 -> ACC 0 with carry out; adc propagates it.
    // (ExtAcc4 add immediates are signed 3-bit: range -4..3.)
    Rig rig(IsaKind::ExtAcc4, R"(
        li 7
        addi 3      ; 10
        addi 3      ; 13
        addi 3      ; 16 -> 0, carry 1
        li 0
        adci 0      ; carry in -> 1
    )");
    rig.sim->run(6);
    EXPECT_EQ(rig.sim->acc(), 1);
    EXPECT_FALSE(rig.sim->carry());
}

TEST(ExtSim, SubAndBorrow)
{
    Rig rig(IsaKind::ExtAcc4, R"(
        li 3
        store r2
        li 7
        sub r2      ; 7 - 3 = 4, no borrow (carry set)
    )");
    rig.sim->run(4);
    EXPECT_EQ(rig.sim->acc(), 4);
    EXPECT_TRUE(rig.sim->carry());
}

TEST(ExtSim, SubBorrowClearsCarry)
{
    Rig rig(IsaKind::ExtAcc4, R"(
        li 7
        store r2
        li 3
        sub r2      ; 3 - 7 borrows
    )");
    rig.sim->run(4);
    EXPECT_EQ(rig.sim->acc(), (3 - 7) & 0xF);
    EXPECT_FALSE(rig.sim->carry());
}

TEST(ExtSim, LogicalOps)
{
    Rig rig(IsaKind::ExtAcc4, R"(
        li 0b0110
        store r2
        li 0b0101
        and r2
    )");
    rig.sim->run(4);
    EXPECT_EQ(rig.sim->acc(), 0b0100);
}

TEST(ExtSim, OrImmediate)
{
    Rig rig(IsaKind::ExtAcc4, "li 1\nori 6\n");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 7);
}

TEST(ExtSim, ShiftRightLogical)
{
    Rig rig(IsaKind::ExtAcc4, "li 5\nori 0\naddi 3\nlsri 2\n");
    rig.sim->run(4);
    // (5|0)+3 = 8 -> lsr 2 -> 2
    EXPECT_EQ(rig.sim->acc(), 2);
}

TEST(ExtSim, ShiftRightArithmeticKeepsSign)
{
    // ACC = 0b1000 (negative); asr keeps the sign bit.
    Rig rig(IsaKind::ExtAcc4, "li 7\naddi 1\nasri 1\n");
    rig.sim->run(3);
    EXPECT_EQ(rig.sim->acc(), 0b1100);
}

TEST(ExtSim, ShiftByOneForms)
{
    Rig rig(IsaKind::ExtAcc4, "li 6\nlsr\n");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 3);
}

TEST(ExtSim, NegTwosComplement)
{
    Rig rig(IsaKind::ExtAcc4, "li 3\nneg\n");
    rig.sim->run(2);
    EXPECT_EQ(rig.sim->acc(), 0xD);
}

TEST(ExtSim, ExchangeAccumulatorWithMemory)
{
    Rig rig(IsaKind::ExtAcc4, "li 2\nstore r3\nli 7\nxch r3\n");
    rig.sim->run(4);
    EXPECT_EQ(rig.sim->acc(), 2);
    EXPECT_EQ(rig.sim->mem(3), 7);
}

TEST(ExtSim, NzpBranches)
{
    Rig rig(IsaKind::ExtAcc4, R"(
        li 0
        br.z iszero
        li 1
        iszero: li 5
        br.p ispos
        li 2
        ispos: li 3
        br.n bad        ; not taken: 3 is positive
        li 4
        end: br.nzp end
        bad: li 2
        br.nzp end
    )");
    rig.sim->run(100);
    EXPECT_EQ(rig.sim->acc(), 4);
    EXPECT_EQ(rig.sim->stats().takenBranches, 3u);
}

TEST(ExtSim, CallRet)
{
    Rig rig(IsaKind::ExtAcc4, R"(
        li 1
        call sr
        li 7            ; runs after return
        end: br.nzp end
        sr: addi 1
        ret
    )");
    rig.sim->run(100);
    EXPECT_EQ(rig.sim->acc(), 7);
    EXPECT_TRUE(rig.sim->halted());
}

// ---------------------------------------------------------------
// LoadStore4 semantics
// ---------------------------------------------------------------

TEST(LsSim, TwoAddressAlu)
{
    Rig rig(IsaKind::LoadStore4, R"(
        movi r2, 5
        movi r3, 4
        add r2, r3
        end: br.nzp end
    )");
    rig.sim->run(100);
    EXPECT_EQ(rig.sim->mem(2), 9);
    EXPECT_EQ(rig.sim->mem(3), 4);
}

TEST(LsSim, MovRegister)
{
    Rig rig(IsaKind::LoadStore4, R"(
        movi r2, 9
        mov r4, r2
        end: br.nzp end
    )");
    rig.sim->run(100);
    EXPECT_EQ(rig.sim->mem(4), 9);
}

TEST(LsSim, FlagsFollowLastWrite)
{
    Rig rig(IsaKind::LoadStore4, R"(
        movi r2, 0
        br.z zero
        movi r3, 1
        zero: movi r3, 2
        end: br.nzp end
    )");
    rig.sim->run(100);
    EXPECT_EQ(rig.sim->mem(3), 2);
}

TEST(LsSim, IoThroughRegistersZeroAndOne)
{
    Rig rig(IsaKind::LoadStore4, R"(
        mov r2, r0      ; sample input
        addi r2, 1
        mov r1, r2      ; drive output
        end: br.nzp end
    )", {0x6});
    rig.sim->run(100);
    ASSERT_EQ(rig.env.outputs().size(), 1u);
    EXPECT_EQ(rig.env.outputs()[0], 0x7);
}

TEST(LsSim, SubWithRegisters)
{
    Rig rig(IsaKind::LoadStore4, R"(
        movi r2, 9
        movi r3, 4
        sub r2, r3
        end: br.nzp end
    )");
    rig.sim->run(100);
    EXPECT_EQ(rig.sim->mem(2), 5);
}

// ---------------------------------------------------------------
// Timing models
// ---------------------------------------------------------------

TEST(Timing, SingleCycleCpiIsOne)
{
    Rig rig(IsaKind::FlexiCore4, "addi 1\naddi 1\naddi 1\n");
    rig.sim->run(3);
    EXPECT_EQ(rig.sim->stats().cycles, 3u);
    EXPECT_DOUBLE_EQ(rig.sim->stats().cpi(), 1.0);
}

TEST(Timing, PipelineBubblesOnTakenBranch)
{
    std::string src = "nandi 0\nx: br x\n";
    Rig sc(IsaKind::FlexiCore4, src);
    Rig p2(IsaKind::FlexiCore4, src, {}, MicroArch::Pipelined2);
    sc.sim->run(10);
    p2.sim->run(10);
    EXPECT_EQ(sc.sim->stats().cycles, 2u);
    EXPECT_EQ(p2.sim->stats().cycles, 3u);   // +1 bubble
}

TEST(Timing, MultiCycleDoublesCpi)
{
    // Section 3.4: a multicycle FlexiCore4 doubles CPI.
    Rig mc(IsaKind::FlexiCore4, "addi 1\naddi 2\naddi 3\n", {},
           MicroArch::MultiCycle);
    mc.sim->run(3);
    EXPECT_DOUBLE_EQ(mc.sim->stats().cpi(), 2.0);
}

TEST(Timing, NarrowBusPenalizesTwoByteInstructions)
{
    Rig wide(IsaKind::ExtAcc4, "x: br.nzp x\n");
    Rig narrow(IsaKind::ExtAcc4, "x: br.nzp x\n", {},
               MicroArch::SingleCycle, BusWidth::Narrow8);
    wide.sim->run(1);
    narrow.sim->run(1);
    EXPECT_EQ(wide.sim->stats().cycles, 1u);
    EXPECT_EQ(narrow.sim->stats().cycles, 2u);
}

TEST(Timing, NarrowBusSingleCycleLoadStoreImpossible)
{
    // Section 6.2: with an 8-bit bus, only the multicycle load-store
    // machine exists.
    Program p = assemble(IsaKind::LoadStore4, "x: br.nzp x\n");
    FifoEnvironment env;
    TimingConfig cfg{IsaKind::LoadStore4, MicroArch::SingleCycle,
                     BusWidth::Narrow8};
    EXPECT_THROW(CoreSim(cfg, p, env), FatalError);
    cfg.uarch = MicroArch::Pipelined2;
    EXPECT_THROW(CoreSim(cfg, p, env), FatalError);
    cfg.uarch = MicroArch::MultiCycle;
    EXPECT_NO_THROW(CoreSim(cfg, p, env));
}

TEST(Timing, ProgramIsaMustMatchCore)
{
    Program p = assemble(IsaKind::FlexiCore4, "addi 1\n");
    FifoEnvironment env;
    TimingConfig cfg{IsaKind::FlexiCore8, MicroArch::SingleCycle,
                     BusWidth::Wide};
    EXPECT_THROW(CoreSim(cfg, p, env), FatalError);
}

// ---------------------------------------------------------------
// MMU paging
// ---------------------------------------------------------------

TEST(Mmu, EscapeTripleSwitchesPage)
{
    Mmu mmu;
    EXPECT_EQ(mmu.onOutput(kMmuEscape0).size(), 0u);
    EXPECT_EQ(mmu.onOutput(kMmuEscape1).size(), 0u);
    EXPECT_EQ(mmu.onOutput(3).size(), 0u);
    EXPECT_TRUE(mmu.pending());
    EXPECT_EQ(mmu.takePendingPage(), 3);
    EXPECT_EQ(mmu.currentPage(), 3u);
    EXPECT_FALSE(mmu.pending());
}

TEST(Mmu, NonEscapeTrafficPassesThrough)
{
    Mmu mmu;
    EXPECT_EQ(mmu.onOutput(0x7), std::vector<uint8_t>{0x7});
    EXPECT_FALSE(mmu.pending());
}

TEST(Mmu, BrokenEscapeFlushes)
{
    Mmu mmu;
    EXPECT_EQ(mmu.onOutput(kMmuEscape0).size(), 0u);
    auto flushed = mmu.onOutput(0x2);
    ASSERT_EQ(flushed.size(), 2u);
    EXPECT_EQ(flushed[0], kMmuEscape0);
    EXPECT_EQ(flushed[1], 0x2);
    EXPECT_FALSE(mmu.pending());
}

TEST(Mmu, RepeatedEscapeZeroReArms)
{
    Mmu mmu;
    mmu.onOutput(kMmuEscape0);
    auto flushed = mmu.onOutput(kMmuEscape0);   // flush one, re-arm
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0], kMmuEscape0);
    mmu.onOutput(kMmuEscape1);
    mmu.onOutput(1);
    EXPECT_TRUE(mmu.pending());
}

TEST(Mmu, MultiPageProgramRuns)
{
    // Page 0 signals a switch to page 1 and branches; page 1 outputs
    // a value and halts.
    Program p = assemble(IsaKind::FlexiCore4, R"(
        addi 0xA
        store r1        ; escape 0
        addi -5
        store r1        ; escape 1 (0x5)
        addi -4
        store r1        ; page number (0x1)
        nandi 0         ; make ACC negative
        br @entry
        .page 1
        entry: addi 0
        xori 0x9
        store r1
        end: nandi 0
        spin: br spin
    )");
    FifoEnvironment io;
    PagedEnvironment paged(io);
    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, paged);
    StopReason r = sim.run(100);
    EXPECT_EQ(r, StopReason::Halted);
    ASSERT_EQ(io.outputs().size(), 1u);
    // ACC after branch: 0xF (nandi 0); addi 0 keeps it; xori 9 -> 6.
    EXPECT_EQ(io.outputs()[0], 0x6);
}

// ---------------------------------------------------------------
// MMU FST robustness: fuzz against an independent reference
// ---------------------------------------------------------------

/**
 * Reference de-escaper, written straight from the longest-match FST
 * spec in mmu.hh, independent of the production code: the held
 * prefix is modeled as an explicit byte buffer. Returns forwarded
 * bytes; sets @p page when a triple completes.
 */
struct RefDeEscaper
{
    std::vector<uint8_t> held;

    std::vector<uint8_t>
    feed(uint8_t v, int &page)
    {
        page = -1;
        if (held.empty()) {
            if (v == kMmuEscape0) {
                held = {v};
                return {};
            }
            return {v};
        }
        if (held.size() == 1) {
            if (v == kMmuEscape1) {
                held = {kMmuEscape0, kMmuEscape1};
                return {};
            }
            if (v == kMmuEscape0)
                // Longest match: flush one 0xA, stay armed.
                return {kMmuEscape0};
            held.clear();
            return {kMmuEscape0, v};
        }
        held.clear();
        page = v & 0xF;
        return {};
    }
};

TEST(MmuFuzz, RandomStreamsMatchReference)
{
    // Random byte streams — heavily biased toward escape bytes so
    // truncated and overlapping triples (0xA 0xA 0x5 p, 0xA 0x3,
    // 0xA 0x5 0xA 0x5 p, ...) occur constantly — must forward
    // exactly the bytes the reference de-escaper forwards and
    // complete exactly the page selections it completes. pending()
    // is consumed after every byte, so a stuck or spurious pending
    // flag fails immediately.
    Rng rng(0xE5CA9Eull);
    for (int round = 0; round < 64; ++round) {
        Mmu mmu;
        RefDeEscaper ref;
        size_t len = 1 + rng.below(200);
        for (size_t i = 0; i < len; ++i) {
            uint8_t v;
            switch (rng.below(4)) {
              case 0: v = kMmuEscape0; break;
              case 1: v = kMmuEscape1; break;
              case 2: v = static_cast<uint8_t>(rng.below(16)); break;
              default: v = static_cast<uint8_t>(rng.below(256));
            }
            int want_page = -1;
            auto want = ref.feed(v, want_page);
            auto got = mmu.onOutput(v);
            ASSERT_EQ(got, want)
                << "round " << round << " byte " << i;
            ASSERT_EQ(mmu.pending(), want_page >= 0)
                << "round " << round << " byte " << i;
            if (want_page >= 0)
                EXPECT_EQ(mmu.takePendingPage(), want_page);
            else
                EXPECT_EQ(mmu.takePendingPage(), -1);
        }
    }
}

TEST(MmuFuzz, FlushThroughNeverDesyncs)
{
    // Whatever garbage the FST has seen, two zero bytes drive it
    // back to Idle (zero can neither start nor extend an escape), a
    // fresh triple must then arm the expected page, and pending()
    // must not be stuck from the garbage phase. This is the recovery
    // property the checked runner's restart path relies on.
    Rng rng(0xF1055ull);
    for (int round = 0; round < 64; ++round) {
        Mmu mmu;
        size_t len = rng.below(64);
        for (size_t i = 0; i < len; ++i)
            mmu.onOutput(static_cast<uint8_t>(
                rng.chance(0.5) ? rng.below(16) : rng.below(256)));
        // A garbage stream may legitimately have completed a triple;
        // consume it so the next selection is unambiguous.
        mmu.takePendingPage();
        mmu.onOutput(0);
        mmu.onOutput(0);
        mmu.takePendingPage(); // flush byte may have closed a triple
        EXPECT_FALSE(mmu.pending()) << "round " << round;
        unsigned page = 1 + rng.below(15);
        mmu.onOutput(kMmuEscape0);
        mmu.onOutput(kMmuEscape1);
        auto out = mmu.onOutput(static_cast<uint8_t>(page));
        EXPECT_TRUE(out.empty());
        ASSERT_TRUE(mmu.pending()) << "round " << round;
        EXPECT_EQ(mmu.takePendingPage(), static_cast<int>(page));
        EXPECT_FALSE(mmu.pending());
    }
}

} // namespace
} // namespace flexi
