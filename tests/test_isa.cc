/**
 * @file
 * Unit and property tests for instruction encodings.
 *
 * The central properties: every encoder/decoder pair round-trips, and
 * the FlexiCore4/8 decoders are *total* (every byte value decodes to
 * defined hardware behaviour, since the dies have no illegal-opcode
 * trap).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/disassembler.hh"
#include "isa/encoding.hh"

namespace flexi
{
namespace
{

TEST(IsaMeta, Names)
{
    EXPECT_STREQ(isaName(IsaKind::FlexiCore4), "FlexiCore4");
    EXPECT_STREQ(isaName(IsaKind::LoadStore4), "LoadStore4");
}

TEST(IsaMeta, DataWidths)
{
    EXPECT_EQ(isaDataWidth(IsaKind::FlexiCore4), 4u);
    EXPECT_EQ(isaDataWidth(IsaKind::FlexiCore8), 8u);
    EXPECT_EQ(isaDataWidth(IsaKind::ExtAcc4), 4u);
    EXPECT_EQ(isaDataWidth(IsaKind::LoadStore4), 4u);
}

TEST(IsaMeta, MemWords)
{
    // FC4: eight 4-bit words; FC8 halves the word count (Section 3.3).
    EXPECT_EQ(isaMemWords(IsaKind::FlexiCore4), 8u);
    EXPECT_EQ(isaMemWords(IsaKind::FlexiCore8), 4u);
}

// ---------------------------------------------------------------
// FlexiCore4 (Figure 2a)
// ---------------------------------------------------------------

TEST(Fc4Encoding, FigureTwoExamples)
{
    Instruction br;
    br.op = Op::Br;
    br.target = 0x12;
    EXPECT_EQ(encodeFc4(br), 0x92);

    Instruction addi;
    addi.op = Op::Add;
    addi.mode = Mode::Imm;
    addi.operand = 0x5;
    EXPECT_EQ(encodeFc4(addi), 0x45);

    Instruction nand_m;
    nand_m.op = Op::Nand;
    nand_m.mode = Mode::Mem;
    nand_m.operand = 3;
    EXPECT_EQ(encodeFc4(nand_m), 0x13);

    Instruction load;
    load.op = Op::Load;
    load.mode = Mode::Mem;
    load.operand = 2;
    EXPECT_EQ(encodeFc4(load), 0x32);

    Instruction store;
    store.op = Op::Store;
    store.mode = Mode::Mem;
    store.operand = 7;
    EXPECT_EQ(encodeFc4(store), 0x3F);
}

TEST(Fc4Encoding, DecodeIsTotal)
{
    for (unsigned b = 0; b < 256; ++b) {
        DecodeResult dec = decodeFc4(static_cast<uint8_t>(b));
        EXPECT_TRUE(dec.inst.valid()) << "byte " << b;
        EXPECT_EQ(dec.bytes, 1u);
    }
}

TEST(Fc4Encoding, ReservedIFormIsLi)
{
    DecodeResult dec = decodeFc4(0x7A);
    EXPECT_EQ(dec.inst.op, Op::Li);
    EXPECT_EQ(dec.inst.operand, 0xA);
}

TEST(Fc4Encoding, MFormIgnoresBitThree)
{
    // 0x0B = add with bit3 set: hardware ignores bit 3.
    DecodeResult a = decodeFc4(0x0B);
    DecodeResult b = decodeFc4(0x03);
    EXPECT_EQ(a.inst.op, Op::Add);
    EXPECT_EQ(a.inst.operand, b.inst.operand);
}

TEST(Fc4Encoding, RangeChecks)
{
    Instruction inst;
    inst.op = Op::Load;
    inst.mode = Mode::Mem;
    inst.operand = 8;
    EXPECT_THROW(encodeFc4(inst), FatalError);

    inst.op = Op::Add;
    inst.mode = Mode::Imm;
    inst.operand = 16;
    EXPECT_THROW(encodeFc4(inst), FatalError);

    inst = Instruction{};
    inst.op = Op::Adc;   // not in the 9-instruction ISA
    EXPECT_THROW(encodeFc4(inst), FatalError);
}

/** Property: encode(decode(b)) == b for every canonical byte. */
TEST(Fc4Encoding, RoundTripCanonicalBytes)
{
    for (unsigned b = 0; b < 256; ++b) {
        DecodeResult dec = decodeFc4(static_cast<uint8_t>(b));
        if (dec.inst.op == Op::Li)
            continue;   // unofficial alias; encoder rejects Li
        // Canonical bytes have M-form bit 3 clear.
        bool mform = (b & 0xC0) == 0 && ((b >> 4) & 3) != 3;
        if (mform && (b & 0x08))
            continue;
        EXPECT_EQ(encodeFc4(dec.inst), b) << "byte " << b;
    }
}

// ---------------------------------------------------------------
// FlexiCore8 (Figure 2b)
// ---------------------------------------------------------------

TEST(Fc8Encoding, LoadBytePrefix)
{
    Instruction ldb;
    ldb.op = Op::Ldb;
    ldb.mode = Mode::Imm;
    ldb.operand = 0xC3;
    auto bytes = encodeFc8(ldb);
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 0x08);
    EXPECT_EQ(bytes[1], 0xC3);

    DecodeResult dec = decodeFc8(0x08, 0xC3);
    EXPECT_EQ(dec.inst.op, Op::Ldb);
    EXPECT_EQ(dec.inst.operand, 0xC3);
    EXPECT_EQ(dec.bytes, 2u);
    EXPECT_EQ(dec.inst.sizeBits, 16u);
}

TEST(Fc8Encoding, TwoBitAddresses)
{
    Instruction st;
    st.op = Op::Store;
    st.mode = Mode::Mem;
    st.operand = 3;
    EXPECT_EQ(encodeFc8(st)[0], 0x3B);
    st.operand = 4;
    EXPECT_THROW(encodeFc8(st), FatalError);
}

TEST(Fc8Encoding, DecodeIsTotal)
{
    for (unsigned b = 0; b < 256; ++b) {
        DecodeResult dec = decodeFc8(static_cast<uint8_t>(b), 0x55);
        EXPECT_TRUE(dec.inst.valid()) << "byte " << b;
    }
}

TEST(Fc8Encoding, BranchMatchesFc4)
{
    for (unsigned t = 0; t < kPageSize; ++t) {
        DecodeResult dec =
            decodeFc8(static_cast<uint8_t>(0x80 | t), 0);
        EXPECT_EQ(dec.inst.op, Op::Br);
        EXPECT_EQ(dec.inst.target, t);
    }
}

// ---------------------------------------------------------------
// ExtAcc4
// ---------------------------------------------------------------

/** Every ExtAcc4 op in the revised set round-trips. */
TEST(ExtEncoding, RoundTripAllForms)
{
    std::vector<Instruction> cases;
    for (Op op : {Op::Add, Op::Adc, Op::Sub, Op::Swb, Op::And, Op::Or,
                  Op::Xor, Op::Xch}) {
        for (uint8_t a = 0; a < 8; ++a) {
            Instruction i;
            i.op = op;
            i.mode = Mode::Mem;
            i.operand = a;
            cases.push_back(i);
        }
    }
    for (Op op : {Op::Add, Op::Adc, Op::And, Op::Or, Op::Xor, Op::Asr,
                  Op::Lsr, Op::Li}) {
        for (uint8_t v = 0; v < 8; ++v) {
            Instruction i;
            i.op = op;
            i.mode = Mode::Imm;
            i.operand = v;
            cases.push_back(i);
        }
    }
    for (Op op : {Op::Load, Op::Store}) {
        for (uint8_t a = 0; a < 8; ++a) {
            Instruction i;
            i.op = op;
            i.mode = Mode::Mem;
            i.operand = a;
            cases.push_back(i);
        }
    }
    {
        Instruction i;
        i.op = Op::Neg;
        cases.push_back(i);
        i.op = Op::Ret;
        cases.push_back(i);
    }
    for (uint8_t nzp = 1; nzp < 8; ++nzp) {
        Instruction i;
        i.op = Op::Br;
        i.cond = nzp;
        i.target = 0x55;
        cases.push_back(i);
    }
    {
        Instruction i;
        i.op = Op::Call;
        i.target = 0x7F;
        cases.push_back(i);
    }

    for (const Instruction &inst : cases) {
        auto bytes = encodeExt(inst);
        DecodeResult dec =
            decodeExt(bytes[0], bytes.size() > 1 ? bytes[1] : 0);
        EXPECT_EQ(dec.inst.op, inst.op)
            << disassemble(IsaKind::ExtAcc4, inst);
        if (inst.op != Op::Br && inst.op != Op::Call &&
            inst.op != Op::Ret && inst.op != Op::Neg) {
            EXPECT_EQ(dec.inst.operand, inst.operand)
                << disassemble(IsaKind::ExtAcc4, inst);
        }
        if (inst.op == Op::Br) {
            EXPECT_EQ(dec.inst.cond, inst.cond);
            EXPECT_EQ(dec.inst.target, inst.target);
        }
        EXPECT_EQ(dec.bytes, bytes.size());
    }
}

TEST(ExtEncoding, BranchAndCallAreTwoBytes)
{
    Instruction br;
    br.op = Op::Br;
    br.cond = kCondZ;
    br.target = 9;
    EXPECT_EQ(encodeExt(br).size(), 2u);

    Instruction call;
    call.op = Op::Call;
    call.target = 9;
    EXPECT_EQ(encodeExt(call).size(), 2u);

    Instruction add;
    add.op = Op::Add;
    add.mode = Mode::Mem;
    add.operand = 2;
    EXPECT_EQ(encodeExt(add).size(), 1u);
}

TEST(ExtEncoding, NoImmediateSubtract)
{
    // Section 6.1 lists Sub/Swb without immediate forms.
    Instruction i;
    i.op = Op::Sub;
    i.mode = Mode::Imm;
    i.operand = 1;
    EXPECT_THROW(encodeExt(i), FatalError);
}

// ---------------------------------------------------------------
// LoadStore4
// ---------------------------------------------------------------

TEST(LsEncoding, RoundTripAluOps)
{
    for (Op op : {Op::Add, Op::Adc, Op::Sub, Op::Swb, Op::And, Op::Or,
                  Op::Xor, Op::Mov}) {
        for (uint8_t rd = 0; rd < 8; ++rd) {
            Instruction i;
            i.op = op;
            i.mode = Mode::Mem;
            i.rd = rd;
            i.operand = static_cast<uint8_t>(7 - rd);
            uint16_t w = encodeLs(i);
            DecodeResult dec = decodeLs(w);
            EXPECT_EQ(dec.inst.op, op);
            EXPECT_EQ(dec.inst.rd, rd);
            EXPECT_EQ(dec.inst.operand, 7 - rd);
            EXPECT_EQ(dec.inst.sizeBits, 16u);
        }
    }
}

TEST(LsEncoding, RoundTripImmediates)
{
    for (Op op : {Op::Add, Op::Adc, Op::And, Op::Or, Op::Xor, Op::Mov,
                  Op::Asr, Op::Lsr}) {
        Instruction i;
        i.op = op;
        i.mode = Mode::Imm;
        i.rd = 5;
        i.operand = 0xB;
        DecodeResult dec = decodeLs(encodeLs(i));
        EXPECT_EQ(dec.inst.op, op);
        EXPECT_EQ(dec.inst.mode, Mode::Imm);
        EXPECT_EQ(dec.inst.operand, 0xB);
    }
}

TEST(LsEncoding, BranchCarriesNzpAndTarget)
{
    Instruction i;
    i.op = Op::Br;
    i.cond = kCondN | kCondP;
    i.target = 0x44;
    DecodeResult dec = decodeLs(encodeLs(i));
    EXPECT_EQ(dec.inst.op, Op::Br);
    EXPECT_EQ(dec.inst.cond, kCondN | kCondP);
    EXPECT_EQ(dec.inst.target, 0x44);
}

TEST(LsEncoding, CallRet)
{
    Instruction c;
    c.op = Op::Call;
    c.target = 3;
    EXPECT_EQ(decodeLs(encodeLs(c)).inst.op, Op::Call);

    Instruction r;
    r.op = Op::Ret;
    EXPECT_EQ(decodeLs(encodeLs(r)).inst.op, Op::Ret);
}

TEST(LsEncoding, ReservedDecodesInvalid)
{
    // op5 = 31 is unused.
    DecodeResult dec = decodeLs(static_cast<uint16_t>(31u << 11));
    EXPECT_FALSE(dec.inst.valid());
}

// ---------------------------------------------------------------
// Unified dispatch + disassembler
// ---------------------------------------------------------------

TEST(UnifiedEncode, DispatchesPerIsa)
{
    Instruction add;
    add.op = Op::Add;
    add.mode = Mode::Imm;
    add.operand = 1;
    EXPECT_EQ(encode(IsaKind::FlexiCore4, add).size(), 1u);
    EXPECT_EQ(encode(IsaKind::LoadStore4, add).size(), 2u);
}

TEST(UnifiedDecode, OutOfRangeFetchReadsZero)
{
    std::vector<uint8_t> mem = {0x45};
    DecodeResult dec = decodeAt(IsaKind::FlexiCore4, mem, 10);
    // Byte 0 decodes as add r0.
    EXPECT_EQ(dec.inst.op, Op::Add);
    EXPECT_EQ(dec.inst.mode, Mode::Mem);
    EXPECT_EQ(dec.inst.operand, 0);
}

TEST(Disassembler, BaseSyntax)
{
    EXPECT_EQ(disassemble(IsaKind::FlexiCore4, decodeFc4(0x45).inst),
              "addi 5");
    EXPECT_EQ(disassemble(IsaKind::FlexiCore4, decodeFc4(0x13).inst),
              "nand r3");
    EXPECT_EQ(disassemble(IsaKind::FlexiCore4, decodeFc4(0x92).inst),
              "br 18");
    EXPECT_EQ(disassemble(IsaKind::FlexiCore4, decodeFc4(0x32).inst),
              "load r2");
}

TEST(Disassembler, ExtCondSuffix)
{
    Instruction br;
    br.op = Op::Br;
    br.cond = kCondZ | kCondP;
    br.target = 4;
    EXPECT_EQ(disassemble(IsaKind::ExtAcc4, br), "br.zp 4");
}

TEST(Disassembler, LoadStoreTwoOperand)
{
    Instruction mov;
    mov.op = Op::Mov;
    mov.mode = Mode::Mem;
    mov.rd = 2;
    mov.operand = 3;
    EXPECT_EQ(disassemble(IsaKind::LoadStore4, mov), "mov r2, r3");
}

TEST(Disassembler, ImageListing)
{
    std::vector<uint8_t> image = {0x45, 0x92};
    std::string listing = disassembleImage(IsaKind::FlexiCore4, image);
    EXPECT_NE(listing.find("0: addi 5"), std::string::npos);
    EXPECT_NE(listing.find("1: br 18"), std::string::npos);
}

} // namespace
} // namespace flexi
