/**
 * @file
 * Tests for the resilience subsystem: netlist-level in-field fault
 * hooks, the checked (detect-and-recover) runner, fault-injection
 * campaigns and their determinism contract, die-salvage binning, and
 * the SAT-guided ATPG triage.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/atpg.hh"
#include "assembler/assembler.hh"
#include "kernels/fc8_programs.hh"
#include "kernels/inputs.hh"
#include "kernels/kernels.hh"
#include "netlist/flexicore_netlist.hh"
#include "resilience/checked_run.hh"
#include "resilience/fault_campaign.hh"
#include "resilience/salvage.hh"
#include "yield/test_program.hh"

namespace flexi
{
namespace
{

std::unique_ptr<Netlist>
buildCore(IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4: return buildFlexiCore4Netlist();
      case IsaKind::FlexiCore8: return buildFlexiCore8Netlist();
      case IsaKind::ExtAcc4: return buildExtAcc4Netlist();
      case IsaKind::LoadStore4: return buildLoadStore4Netlist();
    }
    return nullptr;
}

unsigned
popcount32(uint32_t v)
{
    unsigned n = 0;
    for (; v; v &= v - 1)
        ++n;
    return n;
}

// ---------------------------------------------------------------
// Netlist in-field fault hooks
// ---------------------------------------------------------------

TEST(NetlistFaults, CycleCounterIsMonotonicAcrossReset)
{
    auto nl = buildFlexiCore4Netlist();
    EXPECT_EQ(nl->cycle(), 0u);
    for (int i = 0; i < 5; ++i) {
        nl->evaluate();
        nl->clockEdge();
    }
    EXPECT_EQ(nl->cycle(), 5u);
    // reset() is a power cycle of the state, not of wall-clock time:
    // transient windows must not re-arm on rollback/restart.
    nl->reset();
    EXPECT_EQ(nl->cycle(), 5u);
}

TEST(NetlistFaults, TransientForcesOnlyInsideItsWindow)
{
    auto nl = buildFlexiCore4Netlist();
    nl->reset();
    NetId net = nl->cells()[0].output;

    // Learn the natural (fault-free) trajectory of the net first.
    std::vector<bool> natural;
    {
        auto ref = nl->clone();
        for (int c = 0; c < 3; ++c) {
            ref->evaluate();
            natural.push_back(ref->netValue(net));
            ref->clockEdge();
        }
    }

    // Window [2, 3): forced on cycle 2 only; cycles before it follow
    // the natural trajectory.
    nl->injectTransient({net, !natural[2], 2, 3});
    ASSERT_EQ(nl->transients().size(), 1u);
    for (int c = 0; c < 3; ++c) {
        nl->evaluate();
        EXPECT_EQ(nl->netValue(net),
                  c == 2 ? !natural[c] : natural[c])
            << "cycle " << c;
        nl->clockEdge();
    }

    // Release: past the window the evaluator must behave exactly
    // like a transient-free netlist carrying the same (possibly
    // corrupted) DFF state — compare against a cleared twin.
    auto twin = nl->clone();
    twin->clearTransients();
    for (int c = 3; c < 6; ++c) {
        nl->evaluate();
        twin->evaluate();
        EXPECT_EQ(nl->netValue(net), twin->netValue(net))
            << "cycle " << c;
        nl->clockEdge();
        twin->clockEdge();
    }
}

TEST(NetlistFaults, ClearTransientsReleasesTheForce)
{
    auto nl = buildFlexiCore4Netlist();
    auto ref = nl->clone();
    nl->reset();
    ref->reset();
    NetId net = nl->cells()[0].output;
    nl->injectTransient({net, true, 0, 100});
    nl->clearTransients();
    EXPECT_TRUE(nl->transients().empty());
    nl->evaluate();
    ref->evaluate();
    EXPECT_EQ(nl->netValue(net), ref->netValue(net));
}

TEST(NetlistFaults, TransientDoesNotDisturbStuckAtFault)
{
    // Stuck-at faults (manufacturing defects) must survive the
    // release of an overlapping transient on another net.
    auto nl = buildFlexiCore4Netlist();
    nl->reset();
    NetId stuck = nl->cells()[0].output;
    nl->injectFault({stuck, true});
    nl->injectTransient({nl->cells()[1].output, true, 0, 1});
    nl->evaluate();
    nl->clockEdge();
    nl->clearTransients();
    nl->evaluate();
    EXPECT_TRUE(nl->netValue(stuck));
}

TEST(NetlistFaults, DffFlipAndStateRoundtrip)
{
    auto nl = buildFlexiCore4Netlist();
    nl->reset();
    for (int i = 0; i < 8; ++i) {
        nl->evaluate();
        nl->clockEdge();
    }
    ASSERT_GT(nl->numDffs(), 4u);

    std::vector<uint8_t> saved = nl->saveDffState();
    bool v = nl->dffValue(3);
    nl->flipDff(3);
    EXPECT_EQ(nl->dffValue(3), !v);
    nl->restoreDffState(saved);
    EXPECT_EQ(nl->dffValue(3), v);
    EXPECT_EQ(nl->saveDffState(), saved);
}

TEST(ChecksumTest, Crc8MatchesCheckValue)
{
    // CRC-8 poly 0x07, init 0, no reflection: the standard check
    // value over "123456789" is 0xF4.
    uint8_t crc = 0;
    for (char c : std::string("123456789"))
        crc = crc8(crc, static_cast<uint8_t>(c));
    EXPECT_EQ(crc, 0xF4);
}

// ---------------------------------------------------------------
// Checked runner
// ---------------------------------------------------------------

struct CheckedRig
{
    explicit CheckedRig(IsaKind isa)
        : golden(buildCore(isa)),
          prog(isa == IsaKind::FlexiCore8
                   ? assemble(isa, fc8ProgramSource(Fc8Program(0)))
                   : assemble(isa, kernelSource(
                                       KernelId::Thresholding, isa)))
    {
        cfg.isa = isa;
        if (isa == IsaKind::FlexiCore8) {
            inputs = fc8ProgramInputs(Fc8Program(0), 4, 1);
            cfg.targetOutputs = 4;
        } else {
            inputs = kernelInputs(KernelId::Thresholding, 4, 1);
            cfg.targetOutputs =
                4 * kernelOutputsPerWork(KernelId::Thresholding);
        }
    }

    std::unique_ptr<Netlist> golden;
    Program prog;
    std::vector<uint8_t> inputs;
    CheckedRunConfig cfg;
};

TEST(CheckedRun, CleanRunCompletesOnEveryCore)
{
    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8,
                        IsaKind::ExtAcc4, IsaKind::LoadStore4}) {
        CheckedRig rig(isa);
        auto die = rig.golden->clone();
        CheckedRunResult run =
            runChecked(*die, rig.prog, rig.inputs, rig.cfg);
        EXPECT_EQ(run.outcome, CheckedOutcome::Completed)
            << isaName(isa);
        EXPECT_TRUE(run.outputsCorrect) << isaName(isa);
        EXPECT_EQ(run.detections, 0u) << isaName(isa);
        EXPECT_EQ(run.retries, 0u) << isaName(isa);
        EXPECT_EQ(run.restarts, 0u) << isaName(isa);
        EXPECT_EQ(run.padMismatches, 0u) << isaName(isa);
        EXPECT_EQ(run.dieOutputs, run.goldenOutputs) << isaName(isa);
        EXPECT_EQ(run.dieOutputs.size(), rig.cfg.targetOutputs)
            << isaName(isa);
    }
}

TEST(CheckedRun, CrcDetectorNeverCompletesSilentlyWrong)
{
    // The final-compare contract: with the output CRC armed, a run
    // may end with wrong outputs only if a detector fired or the die
    // was declared degraded — never silently. Exercised over the
    // first stuck-at faults that corrupt an unprotected run.
    CheckedRig rig(IsaKind::FlexiCore4);
    unsigned corrupting = 0;
    for (size_t c = 0; c < rig.golden->cells().size() && corrupting < 6;
         ++c) {
        StuckFault fault{rig.golden->cells()[c].output, true};

        CheckedRunConfig bare = rig.cfg;
        bare.detectors = DetectorConfig{false, false, false, 192};
        bare.recovery.enabled = false;
        auto unprotected = rig.golden->clone();
        unprotected->injectFault(fault);
        CheckedRunResult naked =
            runChecked(*unprotected, rig.prog, rig.inputs, bare);
        if (naked.outcome == CheckedOutcome::Completed &&
            naked.outputsCorrect)
            continue;   // masked fault, nothing to detect
        ++corrupting;

        auto die = rig.golden->clone();
        die->injectFault(fault);
        CheckedRunResult run =
            runChecked(*die, rig.prog, rig.inputs, rig.cfg);
        EXPECT_TRUE(run.outputsCorrect || run.detections > 0 ||
                    run.outcome == CheckedOutcome::Degraded)
            << "cell " << c;
    }
    EXPECT_GT(corrupting, 0u);
}

TEST(CheckedRun, DetectOnlyModeRecordsButDoesNotAct)
{
    // With recovery disabled the runner is a fail-stop monitor: it
    // must never roll back or restart, whatever it detects.
    CheckedRig rig(IsaKind::FlexiCore4);
    rig.cfg.recovery.enabled = false;
    for (size_t c = 0; c < 8; ++c) {
        auto die = rig.golden->clone();
        die->injectFault({rig.golden->cells()[c].output, true});
        CheckedRunResult run =
            runChecked(*die, rig.prog, rig.inputs, rig.cfg);
        EXPECT_EQ(run.retries, 0u);
        EXPECT_EQ(run.restarts, 0u);
        EXPECT_NE(run.outcome, CheckedOutcome::Degraded);
    }
}

// ---------------------------------------------------------------
// Fault campaigns
// ---------------------------------------------------------------

TEST(FaultCampaign, RecoveryConvertsSilentFailuresOnEveryCore)
{
    // The acceptance bar of the resilience PR: on all four cores,
    // arming the runtime converts every silent failure class of the
    // unprotected campaign into Recovered (or at worst Detected) —
    // and because fault schedules are independent of the protection
    // settings, the masked count is provably comparable.
    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8,
                        IsaKind::ExtAcc4, IsaKind::LoadStore4}) {
        CampaignConfig off;
        off.isa = isa;
        off.seed = 7;
        off.injections = 48;
        off.detectors = DetectorConfig{false, false, false, 192};
        off.recovery.enabled = false;
        CampaignResult unprot = runFaultCampaign(off);
        ASSERT_TRUE(unprot.baselineCorrect) << isaName(isa);
        CampaignCounts u = unprot.counts();
        ASSERT_GT(u[FaultOutcome::Sdc] + u[FaultOutcome::Hang], 0u)
            << isaName(isa);
        EXPECT_EQ(u[FaultOutcome::Recovered], 0u) << isaName(isa);

        CampaignConfig on = off;
        on.detectors = DetectorConfig{};
        on.recovery = RecoveryPolicy{};
        CampaignResult prot = runFaultCampaign(on);
        CampaignCounts p = prot.counts();
        EXPECT_EQ(p.total(), u.total());
        EXPECT_EQ(p[FaultOutcome::Masked], u[FaultOutcome::Masked])
            << isaName(isa);
        EXPECT_EQ(p[FaultOutcome::Sdc], 0u) << isaName(isa);
        EXPECT_EQ(p[FaultOutcome::Hang], 0u) << isaName(isa);
        EXPECT_GT(p[FaultOutcome::Recovered], 0u) << isaName(isa);
    }
}

TEST(FaultCampaign, ThreadCountDoesNotChangeResults)
{
    // Same contract as WaferStudy.ThreadCountDoesNotChangeResults:
    // per-injection results are bit-identical between a serial and a
    // threaded campaign over the same seed.
    CampaignConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 3;
    cfg.injections = 32;
    cfg.threads = 1;
    CampaignResult serial = runFaultCampaign(cfg);
    cfg.threads = 4;
    CampaignResult threaded = runFaultCampaign(cfg);

    EXPECT_EQ(serial.baselineCycles, threaded.baselineCycles);
    ASSERT_EQ(serial.injections.size(), threaded.injections.size());
    for (size_t i = 0; i < serial.injections.size(); ++i) {
        const InjectionResult &a = serial.injections[i];
        const InjectionResult &b = threaded.injections[i];
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.outcome, b.outcome) << i;
        EXPECT_EQ(a.runOutcome, b.runOutcome) << i;
        EXPECT_EQ(a.outputsCorrect, b.outputsCorrect) << i;
        EXPECT_EQ(a.detections, b.detections) << i;
        EXPECT_EQ(a.retries, b.retries) << i;
        EXPECT_EQ(a.restarts, b.restarts) << i;
        EXPECT_EQ(a.cycles, b.cycles) << i;
        EXPECT_EQ(a.firstDetector, b.firstDetector) << i;
    }
}

TEST(FaultCampaign, BatchLanesBitIdenticalToScalar)
{
    // The word-parallel prescreen only settles injections it can
    // prove masked; everything else falls through to the scalar
    // checked runtime. Net effect: per-injection results are
    // bit-identical between a fully scalar campaign (batchLanes=1)
    // and any batched one, across all result fields.
    CampaignConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 9;
    cfg.injections = 40;
    cfg.threads = 1;
    cfg.batchLanes = 1;
    CampaignResult scalar = runFaultCampaign(cfg);
    cfg.batchLanes = 64;
    CampaignResult batched = runFaultCampaign(cfg);
    cfg.batchLanes = 5;   // ragged batches
    cfg.threads = 4;
    CampaignResult ragged = runFaultCampaign(cfg);
    cfg.batchLanes = 512;   // wide 8-word groups (the default)
    cfg.threads = 1;
    CampaignResult wide = runFaultCampaign(cfg);

    EXPECT_EQ(scalar.baselineCycles, batched.baselineCycles);
    ASSERT_EQ(scalar.injections.size(), batched.injections.size());
    ASSERT_EQ(scalar.injections.size(), ragged.injections.size());
    ASSERT_EQ(scalar.injections.size(), wide.injections.size());
    for (size_t i = 0; i < scalar.injections.size(); ++i) {
        const InjectionResult &a = scalar.injections[i];
        for (const InjectionResult *b :
             {&batched.injections[i], &ragged.injections[i],
              &wide.injections[i]}) {
            EXPECT_EQ(a.kind, b->kind) << i;
            EXPECT_EQ(a.outcome, b->outcome) << i;
            EXPECT_EQ(a.runOutcome, b->runOutcome) << i;
            EXPECT_EQ(a.outputsCorrect, b->outputsCorrect) << i;
            EXPECT_EQ(a.detections, b->detections) << i;
            EXPECT_EQ(a.retries, b->retries) << i;
            EXPECT_EQ(a.restarts, b->restarts) << i;
            EXPECT_EQ(a.cycles, b->cycles) << i;
            EXPECT_EQ(a.firstDetector, b->firstDetector) << i;
        }
    }
    // The prescreen must actually be doing work on this seed, not
    // vacuously agreeing because nothing screened clean.
    CampaignCounts c = scalar.counts();
    EXPECT_GT(c[FaultOutcome::Masked], 0u);
}

TEST(FaultCampaign, ExercisesAllFaultKinds)
{
    CampaignConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 1;
    cfg.injections = 48;
    CampaignResult res = runFaultCampaign(cfg);
    unsigned kinds[3] = {};
    for (const InjectionResult &inj : res.injections)
        ++kinds[static_cast<size_t>(inj.kind)];
    EXPECT_GT(kinds[0], 0u);   // TransientNet
    EXPECT_GT(kinds[1], 0u);   // DffFlip
    EXPECT_GT(kinds[2], 0u);   // TimingGlitch
}

// ---------------------------------------------------------------
// Die salvage
// ---------------------------------------------------------------

TEST(Salvage, EffectiveYieldUpliftWithRawYieldUntouched)
{
    // Pinned against WaferStudy.PinnedSeedRegression: salvage must
    // report the identical raw Table 5 yields (fault recording may
    // not perturb the per-die RNG streams) while binning at least
    // one probe-failed die back into service.
    SalvageConfig cfg;
    cfg.study.isa = IsaKind::FlexiCore4;
    cfg.study.seed = 42;
    cfg.study.testCycles = 500;
    SalvageReport rep = runSalvageStudy(cfg);

    EXPECT_DOUBLE_EQ(rep.rawYield(true), 76.0 / 88.0);
    EXPECT_DOUBLE_EQ(rep.rawYield(false), 86.0 / 120.0);
    EXPECT_DOUBLE_EQ(rep.study.yield(3.0, true), 47.0 / 88.0);
    EXPECT_DOUBLE_EQ(rep.study.yield(3.0, false), 51.0 / 120.0);

    size_t functional = rep.binCount(DieBin::Functional, true);
    size_t salvaged = rep.binCount(DieBin::Salvaged, true);
    size_t dead = rep.binCount(DieBin::Dead, true);
    EXPECT_EQ(functional, 76u);
    EXPECT_EQ(functional + salvaged + dead, 88u);
    EXPECT_GT(salvaged, 0u);
    EXPECT_DOUBLE_EQ(rep.effectiveYield(true),
                     static_cast<double>(functional + salvaged) / 88.0);
    EXPECT_GE(rep.effectiveYield(true), rep.rawYield(true));
    EXPECT_GE(rep.effectiveYield(false), rep.rawYield(false));
}

TEST(Salvage, VerdictsAreInternallyConsistent)
{
    SalvageConfig cfg;
    cfg.study.isa = IsaKind::FlexiCore4;
    cfg.study.seed = 7;
    cfg.study.testCycles = 400;
    SalvageReport rep = runSalvageStudy(cfg);

    ASSERT_EQ(rep.dies.size(), rep.study.dies.size());
    for (size_t i = 0; i < rep.dies.size(); ++i) {
        const DieSalvage &v = rep.dies[i];
        const DieResult &die = rep.study.dies[i];
        EXPECT_EQ(v.dieIndex, i);
        EXPECT_EQ(v.kernelsPassed, popcount32(v.passedMask));
        bool probe_ok = die.at45V.functional();
        if (probe_ok) {
            EXPECT_EQ(v.bin, DieBin::Functional);
        } else {
            EXPECT_NE(v.bin, DieBin::Functional);
            EXPECT_EQ(v.bin, v.kernelsPassed >= cfg.minKernels
                                 ? DieBin::Salvaged
                                 : DieBin::Dead);
            EXPECT_GT(v.kernelsTotal, 0u);
        }
    }
}

TEST(Salvage, ThreadCountDoesNotChangeVerdicts)
{
    SalvageConfig cfg;
    cfg.study.isa = IsaKind::FlexiCore4;
    cfg.study.seed = 7;
    cfg.study.testCycles = 400;
    cfg.threads = 1;
    cfg.study.threads = 1;
    SalvageReport serial = runSalvageStudy(cfg);
    cfg.threads = 4;
    cfg.study.threads = 4;
    SalvageReport threaded = runSalvageStudy(cfg);

    ASSERT_EQ(serial.dies.size(), threaded.dies.size());
    for (size_t i = 0; i < serial.dies.size(); ++i) {
        const DieSalvage &a = serial.dies[i];
        const DieSalvage &b = threaded.dies[i];
        EXPECT_EQ(a.bin, b.bin) << i;
        EXPECT_EQ(a.passedMask, b.passedMask) << i;
        EXPECT_EQ(a.detections, b.detections) << i;
        EXPECT_EQ(a.retries, b.retries) << i;
        EXPECT_EQ(a.restarts, b.restarts) << i;
    }
}

// ---------------------------------------------------------------
// SAT-guided ATPG
// ---------------------------------------------------------------

TEST(Atpg, SampledRunTriagesEveryEscape)
{
    AtpgConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.simCycles = 600;
    cfg.maxFaults = 40;
    Program prog = makeTestProgram(cfg.isa, 11);
    auto inputs = makeTestInputs(cfg.isa, 256, 11);
    AtpgReport rep = runAtpg(cfg, prog, inputs);

    EXPECT_EQ(rep.faults, 40u);
    EXPECT_GT(rep.simDetected, 0u);
    EXPECT_EQ(rep.simDetected + rep.escapes.size(), rep.faults);
    // Every escape gets a verdict: a generated pattern or a proof.
    EXPECT_EQ(rep.testable + rep.redundant, rep.escapes.size());
    for (const AtpgFault &f : rep.escapes) {
        EXPECT_NE(f.testable, f.redundant);
        if (f.testable) {
            EXPECT_FALSE(f.pattern.empty());
        }
    }
    EXPECT_GE(rep.testableCoverage(), rep.simCoverage());
    EXPECT_LE(rep.simCoverage(), 1.0);
}

} // namespace
} // namespace flexi
