/**
 * @file
 * Tests for the wafer geometry, die outcome model, test-vector
 * generation, and the Monte-Carlo wafer study (Section 4).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"
#include "yield/die_model.hh"
#include "yield/test_program.hh"
#include "yield/wafer.hh"
#include "yield/wafer_study.hh"

namespace flexi
{
namespace
{

// ---------------------------------------------------------------
// Wafer geometry
// ---------------------------------------------------------------

TEST(Wafer, DieCountNearPaper)
{
    // Figure 4 shows 123 dies on the 200 mm wafer; the square grid
    // model yields 120 (DESIGN.md records the deviation).
    WaferMap wafer;
    EXPECT_GE(wafer.numDies(), 115u);
    EXPECT_LE(wafer.numDies(), 125u);
}

TEST(Wafer, InclusionZoneIsStrictSubset)
{
    WaferMap wafer;
    EXPECT_LT(wafer.numInclusionDies(), wafer.numDies());
    EXPECT_GT(wafer.numInclusionDies(), wafer.numDies() / 2);
}

TEST(Wafer, AllDiesOnWafer)
{
    WaferMap wafer;
    for (const auto &site : wafer.sites()) {
        EXPECT_LE(site.radiusMm, wafer.diameterMm() / 2.0);
        EXPECT_EQ(site.inInclusionZone,
                  site.radiusMm <= wafer.inclusionRadiusMm());
    }
}

TEST(Wafer, SmallerPitchMoreDies)
{
    WaferMap coarse(200.0, 16.0, 16.0);
    WaferMap fine(200.0, 8.0, 16.0);
    EXPECT_GT(fine.numDies(), 3 * coarse.numDies());
}

TEST(Wafer, RejectsBadGeometry)
{
    EXPECT_THROW(WaferMap(0.0, 16.0, 16.0), FatalError);
    EXPECT_THROW(WaferMap(200.0, -1.0, 16.0), FatalError);
}

// ---------------------------------------------------------------
// Die model properties
// ---------------------------------------------------------------

class DieModelTest : public ::testing::Test
{
  protected:
    DieModelTest()
        : spec(designSpecFor(IsaKind::FlexiCore4)), model(spec)
    {}

    DesignSpec spec;
    DieModel model;
    WaferMap wafer;
};

TEST_F(DieModelTest, NominalDieWorksAtBothVoltages)
{
    DieSample nominal;   // defaults: no defects, mean Vth, factor 1
    EXPECT_TRUE(model.functional(nominal, kVddNominal));
    EXPECT_TRUE(model.functional(nominal, kVddLow));
}

TEST_F(DieModelTest, DefectiveDieNeverFunctional)
{
    DieSample die;
    die.defects = 1;
    EXPECT_FALSE(model.functional(die, kVddNominal));
}

TEST_F(DieModelTest, SlowDieFailsLowVoltageFirst)
{
    // Push the speed factor until 3 V fails; 4.5 V must still pass
    // at that point (the Table 5 voltage ordering).
    DieSample die;
    for (double sf = 1.0; sf < 2.0; sf += 0.01) {
        die.speedFactor = sf;
        if (!model.meetsTiming(die, kVddLow)) {
            EXPECT_TRUE(model.meetsTiming(die, kVddNominal))
                << "sf=" << sf;
            return;
        }
    }
    FAIL() << "3 V timing never failed";
}

TEST_F(DieModelTest, HighVthSlowsDie)
{
    DieSample fast, slow;
    fast.vth = kVthMean - 0.2;
    slow.vth = kVthMean + 0.2;
    EXPECT_GT(model.critPathDelay(slow, kVddLow),
              model.critPathDelay(fast, kVddLow));
}

TEST_F(DieModelTest, CurrentScalesWithFactorAndVoltage)
{
    DieSample die;
    die.currentFactor = 1.2;
    DieSample base;
    EXPECT_NEAR(model.currentDraw(die, kVddNominal),
                1.2 * model.currentDraw(base, kVddNominal), 1e-12);
    EXPECT_GT(model.currentDraw(base, kVddNominal),
              model.currentDraw(base, kVddLow));
}

TEST_F(DieModelTest, EdgeDiesDefectProne)
{
    Rng rng(7);
    double edge_defects = 0, center_defects = 0;
    unsigned edge_n = 0, center_n = 0;
    for (int rep = 0; rep < 200; ++rep) {
        for (const auto &site : wafer.sites()) {
            DieSample die = model.sample(site, wafer, rng);
            if (site.inInclusionZone) {
                center_defects += die.defects;
                ++center_n;
            } else {
                edge_defects += die.defects;
                ++edge_n;
            }
        }
    }
    EXPECT_GT(edge_defects / edge_n, 2.0 * center_defects / center_n);
}

TEST_F(DieModelTest, TimingErrorsGrowWithShortfall)
{
    DieSample marginal, hopeless;
    marginal.speedFactor = 1.2;
    hopeless.speedFactor = 2.0;
    double e_m = model.expectedTimingErrors(marginal, kVddLow, 1000);
    double e_h = model.expectedTimingErrors(hopeless, kVddLow, 1000);
    if (e_m > 0)
        EXPECT_GT(e_h, e_m);
    DieSample nominal;
    EXPECT_EQ(model.expectedTimingErrors(nominal, kVddNominal, 1000),
              0.0);
}

TEST(DesignSpecTest, Fc8HasMoreDevicesAndLongerPath)
{
    DesignSpec fc4 = designSpecFor(IsaKind::FlexiCore4);
    DesignSpec fc8 = designSpecFor(IsaKind::FlexiCore8);
    EXPECT_GT(fc8.devices, fc4.devices);
    EXPECT_GT(fc8.critDelayUnits, fc4.critDelayUnits);
    EXPECT_TRUE(fc8.pullUpRefined);
    EXPECT_FALSE(fc4.pullUpRefined);
}

TEST(DesignSpecTest, IncompleteSpecRejected)
{
    DesignSpec bad;
    bad.name = "empty";
    EXPECT_THROW(DieModel{bad}, FatalError);
}

// ---------------------------------------------------------------
// Test program
// ---------------------------------------------------------------

class TestProgramTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TestProgramTest, FillsOnePage)
{
    auto isa = static_cast<IsaKind>(GetParam());
    Program p = makeTestProgram(isa, 1);
    EXPECT_EQ(p.numPages(), 1u);
    EXPECT_EQ(p.page(0).size(), kPageSize);
}

TEST_P(TestProgramTest, FaultFreeDiePassesCleanly)
{
    auto isa = static_cast<IsaKind>(GetParam());
    Program p = makeTestProgram(isa, 2);
    auto inputs = makeTestInputs(isa, 128, 2);
    auto nl = isa == IsaKind::FlexiCore4 ? buildFlexiCore4Netlist()
                                         : buildFlexiCore8Netlist();
    LockstepResult res = runLockstep(*nl, isa, p, inputs, 3000);
    EXPECT_EQ(res.errors, 0u);
    EXPECT_GE(res.cycles, 3000u);   // wraps forever, never halts
}

TEST_P(TestProgramTest, VectorsToggleEveryGate)
{
    // Section 4.1: "all gates toggle at least once".
    auto isa = static_cast<IsaKind>(GetParam());
    Program p = makeTestProgram(isa, 3);
    auto inputs = makeTestInputs(isa, 256, 3);
    auto nl = isa == IsaKind::FlexiCore4 ? buildFlexiCore4Netlist()
                                         : buildFlexiCore8Netlist();
    nl->resetToggles();
    runLockstep(*nl, isa, p, inputs, 4000);
    EXPECT_GT(nl->minCellToggles(), 0u);
    EXPECT_GT(nl->meanCellToggles(), 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    BothCores, TestProgramTest,
    ::testing::Values(static_cast<int>(IsaKind::FlexiCore4),
                      static_cast<int>(IsaKind::FlexiCore8)));

TEST(TestProgramTest2, RejectsDseIsas)
{
    EXPECT_THROW(makeTestProgram(IsaKind::ExtAcc4, 1), FatalError);
}

// ---------------------------------------------------------------
// Wafer study
// ---------------------------------------------------------------

TEST(WaferStudy, Table5Shape)
{
    // One seeded wafer per design; assert the Table 5 orderings and
    // broad bands (exact values are Monte-Carlo noisy per wafer).
    WaferStudyConfig cfg4;
    cfg4.isa = IsaKind::FlexiCore4;
    cfg4.seed = 11;
    cfg4.gateLevelErrors = false;
    auto fc4 = runWaferStudy(cfg4);

    WaferStudyConfig cfg8 = cfg4;
    cfg8.isa = IsaKind::FlexiCore8;
    auto fc8 = runWaferStudy(cfg8);

    // Inclusion-zone yield beats full-wafer yield.
    EXPECT_GT(fc4.yield(4.5, true), fc4.yield(4.5, false));
    // 4.5 V beats 3 V.
    EXPECT_GT(fc4.yield(4.5, true), fc4.yield(3.0, true));
    EXPECT_GT(fc8.yield(4.5, true), fc8.yield(3.0, true));
    // FlexiCore4 out-yields FlexiCore8 (more devices, longer adder).
    EXPECT_GT(fc4.yield(4.5, true), fc8.yield(4.5, true));
    // FlexiCore8 falls off a cliff at 3 V (Table 5: 6 %).
    EXPECT_LT(fc8.yield(3.0, true), 0.25);
    // Bands around the paper's numbers.
    EXPECT_GT(fc4.yield(4.5, true), 0.65);
    EXPECT_LT(fc4.yield(4.5, true), 0.97);
}

TEST(WaferStudy, FunctionalMeansZeroErrors)
{
    WaferStudyConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 3;
    cfg.gateLevelErrors = false;
    auto res = runWaferStudy(cfg);
    for (const auto &die : res.dies) {
        EXPECT_EQ(die.at45V.functional(), die.at45V.errors == 0);
        EXPECT_GT(die.at45V.currentA, 0.0);
    }
}

TEST(WaferStudy, GateLevelFaultSimFindsDefects)
{
    WaferStudyConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 5;
    cfg.testCycles = 600;
    cfg.gateLevelErrors = true;
    auto res = runWaferStudy(cfg);
    unsigned defective = 0, caught = 0;
    for (const auto &die : res.dies) {
        if (!die.sample.hasDefects())
            continue;
        ++defective;
        caught += die.at45V.errors > 0;
    }
    ASSERT_GT(defective, 0u);
    // The vector suite catches the overwhelming majority of stuck-at
    // defects (a few may be logically masked — real test escapes).
    EXPECT_GT(static_cast<double>(caught) / defective, 0.6);
}

TEST(WaferStudy, CurrentRsdMatchesMeasurement)
{
    // Section 4.2: RSD 15.3 % (FC4) / 21.5 % (FC8) at 4.5 V.
    // Average over wafers to beat Monte-Carlo noise.
    for (auto [isa, target] :
         {std::pair{IsaKind::FlexiCore4, 0.153},
          std::pair{IsaKind::FlexiCore8, 0.215}}) {
        RunningStat rsd;
        for (uint64_t seed = 1; seed <= 10; ++seed) {
            WaferStudyConfig cfg;
            cfg.isa = isa;
            cfg.seed = seed;
            cfg.gateLevelErrors = false;
            auto res = runWaferStudy(cfg);
            rsd.add(res.currentStats(4.5).rsd());
        }
        EXPECT_NEAR(rsd.mean(), target, 0.05) << isaName(isa);
    }
}

TEST(WaferStudy, PinnedSeedRegression)
{
    // Exact regression pin for one seeded gate-level wafer. These
    // numbers are a contract: the per-die RNG streams are derived
    // from (seed, site.index), so no refactor of the probing loop —
    // reordering, batching, threading — may change them. Regenerate
    // only for an intentional change to the sampling scheme itself.
    WaferStudyConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 42;
    cfg.testCycles = 500;
    cfg.gateLevelErrors = true;
    cfg.threads = 1;
    auto res = runWaferStudy(cfg);

    ASSERT_EQ(res.dies.size(), 120u);
    EXPECT_DOUBLE_EQ(res.yield(4.5, true), 76.0 / 88.0);
    EXPECT_DOUBLE_EQ(res.yield(4.5, false), 86.0 / 120.0);
    EXPECT_DOUBLE_EQ(res.yield(3.0, true), 47.0 / 88.0);
    EXPECT_DOUBLE_EQ(res.yield(3.0, false), 51.0 / 120.0);

    uint64_t err45 = 0, err3 = 0;
    for (const auto &die : res.dies) {
        err45 += die.at45V.errors;
        err3 += die.at3V.errors;
    }
    EXPECT_EQ(err45, 13636u);
    EXPECT_EQ(err3, 14963u);
}

TEST(WaferStudy, TimingMarginalPinnedSeed)
{
    // Pins the intermittent timing-error path of probeDie(): a die
    // with zero defects can still fail when the Monte-Carlo Vth /
    // speed sample erodes its timing margin, in which case the probe
    // adds 1 + E * (0.5 + U) errors from the die's own RNG stream.
    // For defect-free dies those draws are the *only* source of
    // errors, so the counts below pin exactly that path.
    WaferStudyConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 5;
    cfg.testCycles = 500;
    cfg.gateLevelErrors = true;
    cfg.threads = 1;
    auto res = runWaferStudy(cfg);

    DieModel model(res.spec, cfg.params);
    size_t marginal = 0;
    uint64_t errors = 0;
    for (const auto &die : res.dies) {
        if (die.sample.hasDefects())
            continue;
        double e3 = model.expectedTimingErrors(die.sample, kVddLow,
                                               cfg.testCycles);
        double e45 = model.expectedTimingErrors(
            die.sample, kVddNominal, cfg.testCycles);
        if (e3 > 0) {
            ++marginal;
            errors += die.at3V.errors;
            // "At least one error once the margin is gone."
            EXPECT_GE(die.at3V.errors, 1u);
        } else {
            EXPECT_EQ(die.at3V.errors, 0u);
        }
        if (e45 <= 0)
            EXPECT_EQ(die.at45V.errors, 0u);
    }
    // Exact regression pin, same contract as PinnedSeedRegression:
    // regenerate only for an intentional sampling-scheme change.
    EXPECT_EQ(marginal, 27u);
    EXPECT_EQ(errors, 585u);
}

TEST(WaferStudy, ThreadCountDoesNotChangeResults)
{
    // The acceptance bar for the parallel die loop: a threaded run
    // is bit-identical to a single-threaded one, per die.
    WaferStudyConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 7;
    cfg.testCycles = 400;
    cfg.gateLevelErrors = true;
    cfg.threads = 1;
    auto serial = runWaferStudy(cfg);
    cfg.threads = 4;
    auto threaded = runWaferStudy(cfg);

    ASSERT_EQ(serial.dies.size(), threaded.dies.size());
    for (size_t i = 0; i < serial.dies.size(); ++i) {
        const DieResult &a = serial.dies[i];
        const DieResult &b = threaded.dies[i];
        EXPECT_EQ(a.site.index, b.site.index);
        EXPECT_EQ(a.sample.defects, b.sample.defects);
        EXPECT_EQ(a.sample.vth, b.sample.vth);
        EXPECT_EQ(a.at45V.errors, b.at45V.errors);
        EXPECT_EQ(a.at3V.errors, b.at3V.errors);
        EXPECT_EQ(a.at45V.currentA, b.at45V.currentA);
        EXPECT_EQ(a.at3V.currentA, b.at3V.currentA);
    }
}

TEST(WaferStudy, BatchedLanesBitIdenticalToScalar)
{
    // The acceptance bar for the 64-lane bit-parallel probe loop:
    // packing defective dies into word lanes is a pure execution
    // strategy — per-die defect draws, error counts and currents are
    // bit-identical to the scalar clone-per-die path, for any lane
    // width and thread count.
    WaferStudyConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 11;
    cfg.testCycles = 400;
    cfg.gateLevelErrors = true;
    cfg.threads = 1;
    cfg.batchLanes = 1;
    auto scalar = runWaferStudy(cfg);
    cfg.batchLanes = 64;
    auto batched = runWaferStudy(cfg);
    cfg.batchLanes = 7;   // ragged batches
    cfg.threads = 4;
    auto ragged = runWaferStudy(cfg);
    cfg.batchLanes = 256;   // 4-word groups
    auto wide4 = runWaferStudy(cfg);
    cfg.batchLanes = 512;   // 8-word groups (the default)
    cfg.threads = 1;
    auto wide8 = runWaferStudy(cfg);

    ASSERT_EQ(scalar.dies.size(), batched.dies.size());
    ASSERT_EQ(scalar.dies.size(), ragged.dies.size());
    ASSERT_EQ(scalar.dies.size(), wide4.dies.size());
    ASSERT_EQ(scalar.dies.size(), wide8.dies.size());
    for (size_t i = 0; i < scalar.dies.size(); ++i) {
        const DieResult &a = scalar.dies[i];
        for (const DieResult *b :
             {&batched.dies[i], &ragged.dies[i], &wide4.dies[i],
              &wide8.dies[i]}) {
            EXPECT_EQ(a.site.index, b->site.index) << i;
            EXPECT_EQ(a.sample.defects, b->sample.defects) << i;
            EXPECT_EQ(a.at45V.errors, b->at45V.errors) << i;
            EXPECT_EQ(a.at3V.errors, b->at3V.errors) << i;
            EXPECT_EQ(a.at45V.currentA, b->at45V.currentA) << i;
            EXPECT_EQ(a.at3V.currentA, b->at3V.currentA) << i;
        }
    }
}

TEST(WaferStudy, ProbesDoNotAccumulateToggles)
{
    // Each probe of a die must start from clean toggle counters —
    // the 4.5 V probe's activity used to leak into the 3 V probe's
    // statistics. The contract, at the netlist level: an earlier run
    // followed by resetToggles() leaves counts identical to a fresh
    // instance running only the second workload.
    auto nl = buildFlexiCore4Netlist();
    Program p = makeTestProgram(IsaKind::FlexiCore4, 2);
    auto inputs = makeTestInputs(IsaKind::FlexiCore4, 128, 2);

    auto probed_twice = nl->clone();
    runLockstep(*probed_twice, IsaKind::FlexiCore4, p, inputs, 700);
    probed_twice->reset();
    probed_twice->resetToggles();
    runLockstep(*probed_twice, IsaKind::FlexiCore4, p, inputs, 300);

    auto probed_once = nl->clone();
    runLockstep(*probed_once, IsaKind::FlexiCore4, p, inputs, 300);

    EXPECT_EQ(probed_twice->toggleCounts(),
              probed_once->toggleCounts());
}

TEST(WaferStudy, Deterministic)
{
    WaferStudyConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 9;
    cfg.gateLevelErrors = false;
    auto a = runWaferStudy(cfg);
    auto b = runWaferStudy(cfg);
    ASSERT_EQ(a.dies.size(), b.dies.size());
    for (size_t i = 0; i < a.dies.size(); ++i) {
        EXPECT_EQ(a.dies[i].at45V.errors, b.dies[i].at45V.errors);
        EXPECT_EQ(a.dies[i].at3V.errors, b.dies[i].at3V.errors);
    }
}

} // namespace
} // namespace flexi
