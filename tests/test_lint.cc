/**
 * @file
 * Tests for the static-analysis subsystem: every netlist and program
 * lint rule gets a deliberately broken fixture that must fire it and
 * a clean fixture that must not, plus the blanket property that every
 * shipped netlist and benchmark kernel lints clean (zero errors).
 */

#include <gtest/gtest.h>

#include "analysis/netlist_lint.hh"
#include "analysis/program_lint.hh"
#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "kernels/fc8_programs.hh"
#include "kernels/kernels.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{
namespace
{

bool
fires(const LintReport &rep, const std::string &rule)
{
    return !rep.byRule(rule).empty();
}

// ---------------------------------------------------------------
// Netlist lint: broken fixtures, one per rule
// ---------------------------------------------------------------

TEST(NetlistLint, UnconnectedInputFires)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y = b.nand2(a, a);
    nl.addOutput("y", y);
    nl.rewireCellInput(0, 1, kNoNet);

    LintReport rep = lintNetlist(nl);
    EXPECT_TRUE(fires(rep, "unconnected-input"));
    EXPECT_GT(rep.errors(), 0u);
}

TEST(NetlistLint, UndrivenNetFires)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId floating = nl.newNet();
    nl.addOutput("y", b.nand2(a, floating));

    LintReport rep = lintNetlist(nl);
    ASSERT_TRUE(fires(rep, "undriven-net"));
    // The finding names the floating net and its consumer.
    EXPECT_NE(rep.byRule("undriven-net")[0].message.find("NAND2"),
              std::string::npos);
}

TEST(NetlistLint, MultipleDriversFires)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y0 = b.inv(a);
    b.inv(y0);
    nl.addOutput("y", y0);
    nl.rewireCellOutput(1, y0);   // short both INV outputs together

    LintReport rep = lintNetlist(nl);
    EXPECT_TRUE(fires(rep, "multiple-drivers"));
}

TEST(NetlistLint, CombLoopFires)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y0 = b.inv(a);
    NetId y1 = b.inv(y0);
    nl.addOutput("y", y1);
    nl.rewireCellInput(0, 0, y1);   // close the INV-INV ring

    LintReport rep = lintNetlist(nl);
    ASSERT_TRUE(fires(rep, "comb-loop"));
    // The report shows the actual cycle path.
    EXPECT_NE(rep.byRule("comb-loop")[0].message.find("->"),
              std::string::npos);
}

TEST(NetlistLint, FanoutLimitFires)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y = b.nand2(a, a);   // NAND2 drive limit is 8 loads
    std::vector<NetId> sinks;
    for (int i = 0; i < 9; ++i)
        sinks.push_back(b.inv(y));
    nl.addOutput("y", b.orReduce(sinks));

    LintReport rep = lintNetlist(nl);
    ASSERT_TRUE(fires(rep, "fanout-limit"));
    EXPECT_NE(rep.byRule("fanout-limit")[0].message.find("9 loads"),
              std::string::npos);
}

TEST(NetlistLint, DeadLogicFires)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    nl.addOutput("y", b.inv(a));
    b.nand2(a, a);   // output feeds nothing

    LintReport rep = lintNetlist(nl);
    EXPECT_TRUE(fires(rep, "dead-logic"));
    EXPECT_EQ(rep.errors(), 0u);   // a smell, not an error
}

TEST(NetlistLint, ConstOutputFires)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    // NAND with a constant-0 input is constant-1 whatever `a` is.
    nl.addOutput("y", b.nand2(a, nl.zero()));

    LintReport rep = lintNetlist(nl);
    ASSERT_TRUE(fires(rep, "const-output"));
    EXPECT_NE(rep.byRule("const-output")[0].message.find("outputs 1"),
              std::string::npos);
}

TEST(NetlistLint, CleanFixtureIsClean)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId c = nl.addInput("b");
    NetId q = nl.addDff(b.xor2(a, c), "m");
    nl.addOutput("y", b.nand2(q, a));

    LintReport rep = lintNetlist(nl);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.diagnostics().size(), 0u);
}

// ---------------------------------------------------------------
// elaborate() failure diagnostics (the old bare cell-count panic)
// ---------------------------------------------------------------

TEST(NetlistLint, ElaborateNamesCombCycle)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y0 = b.inv(a);
    NetId y1 = b.inv(y0);
    nl.addOutput("y", y1);
    nl.rewireCellInput(0, 0, y1);

    try {
        nl.elaborate();
        FAIL() << "elaborate() accepted a combinational loop";
    } catch (const PanicError &err) {
        std::string msg = err.what();
        EXPECT_NE(msg.find("combinational loop"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("INV_X1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("->"), std::string::npos) << msg;
    }
}

TEST(NetlistLint, ElaborateNamesUndrivenNets)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    nl.addOutput("y", b.nand2(a, nl.newNet()));

    try {
        nl.elaborate();
        FAIL() << "elaborate() accepted an undriven input";
    } catch (const PanicError &err) {
        std::string msg = err.what();
        EXPECT_NE(msg.find("never driven"), std::string::npos)
            << msg;
    }
}

// ---------------------------------------------------------------
// Program lint: broken fixtures, one per rule
// ---------------------------------------------------------------

LintReport
lintSrc(IsaKind isa, const std::string &src)
{
    return lintProgram(assemble(isa, src));
}

TEST(ProgramLint, TargetBeyondCodeFires)
{
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "load r0\n"
                             "br 100\n");
    EXPECT_TRUE(fires(rep, "target-beyond-code"));
    EXPECT_GT(rep.errors(), 0u);
}

TEST(ProgramLint, FallOffCodeFires)
{
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "load r0\n"
                             "store r1\n");
    EXPECT_TRUE(fires(rep, "fall-off-code"));
}

TEST(ProgramLint, MisalignedTargetFires)
{
    // The branch may jump into the middle of the two-byte ldb.
    LintReport rep = lintSrc(IsaKind::FlexiCore8,
                             "ldb 5\n"
                             "load r0\n"
                             "br 1\n"
                             "nandi 0\n"
                             "halt: br halt\n");
    EXPECT_TRUE(fires(rep, "misaligned-target"));
}

TEST(ProgramLint, WriteToInputPortFires)
{
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "load r0\n"
                             "store r0\n"
                             "nandi 0\n"
                             "halt: br halt\n");
    EXPECT_TRUE(fires(rep, "write-to-input-port"));
    EXPECT_GT(rep.errors(), 0u);
}

TEST(ProgramLint, RetWithoutCallFires)
{
    LintReport rep = lintSrc(IsaKind::ExtAcc4, "ret\n");
    EXPECT_TRUE(fires(rep, "ret-without-call"));
    EXPECT_GT(rep.errors(), 0u);
}

TEST(ProgramLint, NestedCallFires)
{
    LintReport rep = lintSrc(IsaKind::ExtAcc4,
                             "call f\n"
                             "halt: br.nzp halt\n"
                             "f: call g\n"
                             "ret\n"
                             "g: ret\n");
    EXPECT_TRUE(fires(rep, "nested-call"));
}

TEST(ProgramLint, PageIndeterminateFires)
{
    // Emits 0xA, 0x5, then an input-dependent value: the pending MMU
    // page is statically unknown at the branch.
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "loop: nandi 0\nxori 5\n"   // ACC = 0xA
                             "store r1\n"
                             "nandi 0\nxori 10\n"        // ACC = 0x5
                             "store r1\n"
                             "load r0\n"
                             "store r1\n"
                             "nandi 0\n"
                             "br loop\n");
    EXPECT_TRUE(fires(rep, "page-indeterminate"));
}

TEST(ProgramLint, UnreachableCodeFires)
{
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "nandi 0\n"
                             "halt: br halt\n"
                             "load r0\n"
                             "store r1\n");
    ASSERT_TRUE(fires(rep, "unreachable-code"));
    EXPECT_NE(rep.byRule("unreachable-code")[0].message.find("2..3"),
              std::string::npos);
}

TEST(ProgramLint, UninitAccReadFires)
{
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "store r1\n"
                             "nandi 0\n"
                             "halt: br halt\n");
    EXPECT_TRUE(fires(rep, "uninit-acc-read"));
    EXPECT_EQ(rep.errors(), 0u);   // a smell, not an error
}

TEST(ProgramLint, UninitMemReadFires)
{
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "load r2\n"
                             "store r1\n"
                             "nandi 0\n"
                             "halt: br halt\n");
    EXPECT_TRUE(fires(rep, "uninit-mem-read"));
}

TEST(ProgramLint, InvalidOpcodeFires)
{
    // 0b10110000: ExtAcc4 T-form with reserved sss = 6.
    LintReport rep = lintSrc(IsaKind::ExtAcc4,
                             ".byte 0xB0\n"
                             "halt: br.nzp halt\n");
    EXPECT_TRUE(fires(rep, "invalid-opcode"));
}

TEST(ProgramLint, EmptyProgramFires)
{
    LintReport rep = lintSrc(IsaKind::FlexiCore4, "\n");
    EXPECT_TRUE(fires(rep, "empty-program"));
}

// ---------------------------------------------------------------
// Program lint: precision properties
// ---------------------------------------------------------------

TEST(ProgramLint, UbrIdiomDrawsNoUninitWarning)
{
    // `nandi 0` forces ACC = 0xF regardless of the unknown ACC: the
    // canonical unconditional-branch idiom must not warn and must
    // prune the fall-through edge.
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "loop: load r0\n"
                             "store r1\n"
                             "nandi 0\n"
                             "br loop\n");
    EXPECT_EQ(rep.diagnostics().size(), 0u) << rep.text("t");
}

TEST(ProgramLint, FollowsMmuPageSwitch)
{
    // Constant page escape: the analysis must follow execution onto
    // page 1 and not report page 1 unreachable (nor the branch
    // page-indeterminate).
    LintReport rep = lintSrc(IsaKind::FlexiCore4,
                             "nandi 0\nxori 5\n"    // ACC = 0xA
                             "store r1\n"
                             "nandi 0\nxori 10\n"   // ACC = 0x5
                             "store r1\n"
                             "nandi 0\nxori 14\n"   // ACC = 1 (page)
                             "store r1\n"
                             "nandi 0\n"
                             "br @next\n"
                             ".page 1\n"
                             "next: load r0\n"
                             "store r1\n"
                             "nandi 0\n"
                             "halt: br halt\n");
    EXPECT_FALSE(fires(rep, "unreachable-code")) << rep.text("t");
    EXPECT_FALSE(fires(rep, "page-indeterminate")) << rep.text("t");
    EXPECT_TRUE(rep.clean()) << rep.text("t");
}

TEST(ProgramLint, CallRetRoundTripIsClean)
{
    LintReport rep = lintSrc(IsaKind::ExtAcc4,
                             "loop: call get\n"
                             "store r1\n"
                             "br.nzp loop\n"
                             "get: load r0\n"
                             "ret\n");
    EXPECT_TRUE(rep.clean()) << rep.text("t");
    EXPECT_FALSE(fires(rep, "unreachable-code")) << rep.text("t");
}

// ---------------------------------------------------------------
// Everything we ship lints clean (zero errors)
// ---------------------------------------------------------------

TEST(ShippedDesigns, AllNetlistsLintClean)
{
    for (auto build : {buildFlexiCore4Netlist, buildFlexiCore8Netlist,
                       buildExtAcc4Netlist, buildLoadStore4Netlist}) {
        auto nl = build();
        LintReport rep = lintNetlist(*nl);
        EXPECT_TRUE(rep.clean())
            << nl->name() << ":\n" << rep.text(nl->name());
    }
}

TEST(ShippedDesigns, AllKernelsLintClean)
{
    for (KernelId id : allKernels()) {
        for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::ExtAcc4,
                            IsaKind::LoadStore4}) {
            Program prog = assemble(isa, kernelSource(id, isa));
            LintReport rep = lintProgram(prog);
            std::string subject =
                strfmt("%s/%s", kernelName(id), isaName(isa));
            EXPECT_TRUE(rep.clean())
                << subject << ":\n" << rep.text(subject);
        }
    }
}

TEST(ShippedDesigns, AllFc8ProgramsLintClean)
{
    for (size_t i = 0; i < kNumFc8Programs; ++i) {
        auto id = static_cast<Fc8Program>(i);
        Program prog = assemble(IsaKind::FlexiCore8,
                                fc8ProgramSource(id));
        LintReport rep = lintProgram(prog);
        EXPECT_TRUE(rep.clean())
            << fc8ProgramName(id) << ":\n"
            << rep.text(fc8ProgramName(id));
    }
}

// ---------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------

TEST(LintReport, TextAndJsonRenderings)
{
    LintReport rep;
    rep.add({Severity::Error, "test-rule", "mod", {3}, 1, 7,
             "quote \" and newline\n"});
    std::string text = rep.text("subj");
    EXPECT_NE(text.find("subj: error[test-rule] mod"),
              std::string::npos);
    EXPECT_NE(text.find("page 1 addr 7"), std::string::npos);

    std::string json = rep.json("subj");
    EXPECT_NE(json.find("\"rule\": \"test-rule\""),
              std::string::npos);
    EXPECT_NE(json.find("\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_EQ(rep.errors(), 1u);
    EXPECT_FALSE(rep.clean());
}

TEST(LintReport, JsonRendersStableNetNames)
{
    // Findings on a shipped netlist must name nets through the
    // name table — "acc0", not a bare NetId integer that changes
    // with re-elaboration.
    auto nl = buildFlexiCore4Netlist();
    NetId acc0 = nl->findNet("acc0");
    ASSERT_NE(acc0, kNoNet);

    LintReport rep;
    rep.add({Severity::Warning, "test-rule", "acc", {acc0}, -1, -1,
             "synthetic finding"});
    rep.resolveNetNames(*nl);

    ASSERT_EQ(rep.diagnostics().size(), 1u);
    ASSERT_EQ(rep.diagnostics()[0].netNames.size(), 1u);
    EXPECT_EQ(rep.diagnostics()[0].netNames[0], "acc0");

    std::string json = rep.json("FlexiCore4");
    EXPECT_NE(json.find("\"acc0\""), std::string::npos);

    // The real lint pass resolves names for its own findings too.
    LintReport shipped = lintNetlist(*nl);
    for (const Diagnostic &d : shipped.diagnostics())
        EXPECT_EQ(d.netNames.size(), d.nets.size());
}

} // namespace
} // namespace flexi
