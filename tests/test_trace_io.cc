/**
 * @file
 * Tests for the execution tracer and the binary program-image
 * container.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "assembler/assembler.hh"
#include "assembler/program_io.hh"
#include "common/logging.hh"
#include "kernels/kernels.hh"
#include "sim/core_sim.hh"
#include "sys/flexichip.hh"

namespace flexi
{
namespace
{

// ---------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------

TEST(Trace, RecordsEveryInstruction)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         "addi 5\nstore r2\nnandi 0\nx: br x\n");
    FifoEnvironment env;
    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    TraceBuffer buf;
    sim.setTraceSink(buf.sink());
    sim.run(100);

    ASSERT_EQ(buf.records().size(), 4u);
    const auto &r0 = buf.records()[0];
    EXPECT_EQ(r0.pc, 0u);
    EXPECT_EQ(r0.inst.op, Op::Add);
    EXPECT_EQ(r0.accBefore, 0);
    EXPECT_EQ(r0.accAfter, 5);
    EXPECT_FALSE(r0.taken);
    const auto &r3 = buf.records()[3];
    EXPECT_EQ(r3.inst.op, Op::Br);
    EXPECT_TRUE(r3.taken);
    EXPECT_EQ(r3.cycle, 4u);
}

TEST(Trace, FormatIsStable)
{
    TraceRecord rec;
    rec.page = 0;
    rec.pc = 7;
    rec.inst.op = Op::Add;
    rec.inst.mode = Mode::Imm;
    rec.inst.operand = 3;
    rec.accBefore = 2;
    rec.accAfter = 5;
    rec.cycle = 9;
    std::string s = formatTrace(IsaKind::FlexiCore4, rec);
    EXPECT_NE(s.find("addi 3"), std::string::npos);
    EXPECT_NE(s.find("acc 2->5"), std::string::npos);
    EXPECT_NE(s.find("cyc=9"), std::string::npos);
}

TEST(Trace, TracksPageSwitches)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    chip.loadProgram(kernelSource(KernelId::Calculator,
                                  IsaKind::FlexiCore4));
    TraceBuffer buf;
    chip.setTraceSink(buf.sink());
    chip.pushInputs({2, 3, 5, 0});   // mul 3*5 -> page 1
    chip.runUntilOutputs(2, 100000);

    bool saw_page1 = false;
    for (const auto &rec : buf.records())
        saw_page1 |= rec.page == 1;
    EXPECT_TRUE(saw_page1);
}

TEST(Trace, SinkBeforeProgramFails)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    EXPECT_THROW(chip.setTraceSink(TraceBuffer().sink()), FatalError);
}

// ---------------------------------------------------------------
// Program images
// ---------------------------------------------------------------

TEST(ProgramIo, RoundTripSinglePage)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         "load r0\naddi 3\nstore r1\nx: nandi 0\n"
                         "br x\n");
    std::stringstream buf;
    saveProgram(p, buf);
    Program q = loadProgram(buf);
    EXPECT_EQ(q.isa(), IsaKind::FlexiCore4);
    ASSERT_EQ(q.numPages(), 1u);
    EXPECT_EQ(q.page(0), p.page(0));
    EXPECT_EQ(q.staticInstructions(), p.staticInstructions());
    EXPECT_EQ(q.codeSizeBits(), p.codeSizeBits());
}

TEST(ProgramIo, RoundTripMultiPage)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         kernelSource(KernelId::Calculator,
                                      IsaKind::FlexiCore4));
    std::stringstream buf;
    saveProgram(p, buf);
    Program q = loadProgram(buf);
    ASSERT_EQ(q.numPages(), p.numPages());
    for (unsigned i = 0; i < p.numPages(); ++i)
        EXPECT_EQ(q.page(i), p.page(i)) << "page " << i;
}

TEST(ProgramIo, RoundTripAllIsas)
{
    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::ExtAcc4,
                        IsaKind::LoadStore4}) {
        Program p = assemble(isa, kernelSource(KernelId::IntAvg, isa));
        std::stringstream buf;
        saveProgram(p, buf);
        Program q = loadProgram(buf);
        EXPECT_EQ(q.isa(), isa);
        EXPECT_EQ(q.page(0), p.page(0));
    }
}

TEST(ProgramIo, LoadedProgramRuns)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         "loop: load r0\naddi 1\nstore r1\n"
                         "nandi 0\nbr loop\n");
    std::stringstream buf;
    saveProgram(p, buf);

    FlexiChip chip(IsaKind::FlexiCore4);
    chip.loadProgram(loadProgram(buf));
    chip.pushInputs({7});
    chip.runUntilOutputs(1);
    EXPECT_EQ(chip.outputs().front(), 8);
}

TEST(ProgramIo, RejectsBadMagic)
{
    std::stringstream buf("NOPE....");
    EXPECT_THROW(loadProgram(buf), FatalError);
}

TEST(ProgramIo, RejectsTruncatedImage)
{
    Program p = assemble(IsaKind::FlexiCore4, "addi 1\naddi 2\n");
    std::stringstream buf;
    saveProgram(p, buf);
    std::string data = buf.str();
    std::stringstream cut(data.substr(0, data.size() - 1));
    EXPECT_THROW(loadProgram(cut), FatalError);
}

TEST(ProgramIo, RejectsBadIsaByte)
{
    std::string data = "FLXC";
    data += '\x01';   // version
    data += '\x09';   // bad isa
    data += '\x00';   // pages
    std::stringstream buf(data);
    EXPECT_THROW(loadProgram(buf), FatalError);
}

TEST(ProgramIo, FileRoundTrip)
{
    Program p = assemble(IsaKind::LoadStore4,
                         "movi r2, 5\nx: br.nzp x\n");
    std::string path = "/tmp/flexi_test_prog.bin";
    saveProgramFile(p, path);
    Program q = loadProgramFile(path);
    EXPECT_EQ(q.isa(), IsaKind::LoadStore4);
    EXPECT_EQ(q.page(0), p.page(0));
    EXPECT_THROW(loadProgramFile("/nonexistent/x.bin"), FatalError);
}

} // namespace
} // namespace flexi
