/**
 * @file
 * Unit tests for the IGZO technology model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/timing.hh"
#include "common/logging.hh"
#include "netlist/flexicore_netlist.hh"
#include "tech/cell_library.hh"
#include "tech/technology.hh"

namespace flexi
{
namespace
{

TEST(CellLibrary, HasThirteenCells)
{
    // Figure 1: a thirteen-cell standard cell library.
    EXPECT_EQ(kNumCellTypes, 13u);
}

TEST(CellLibrary, LookupByName)
{
    EXPECT_EQ(cellTypeByName("NAND2"), CellType::NAND2);
    EXPECT_EQ(cellTypeByName("DFF_X2"), CellType::DFF_X2);
    EXPECT_THROW(cellTypeByName("AOI22"), FatalError);
}

TEST(CellLibrary, Nand2IsUnitArea)
{
    EXPECT_DOUBLE_EQ(cellInfo(CellType::NAND2).nand2Area, 1.0);
}

TEST(CellLibrary, SequentialClassification)
{
    EXPECT_TRUE(isSequential(CellType::DFF_X1));
    EXPECT_TRUE(isSequential(CellType::DFF_X2));
    EXPECT_FALSE(isSequential(CellType::MUX2));
    EXPECT_FALSE(isSequential(CellType::XOR2));
}

TEST(CellLibrary, AttributesAreSane)
{
    for (const auto &info : cellLibrary()) {
        EXPECT_GT(info.deviceCount, 0u) << info.name;
        EXPECT_GT(info.nand2Area, 0.0) << info.name;
        EXPECT_GT(info.staticCurrentUa, 0.0) << info.name;
        EXPECT_GT(info.delayUnits, 0.0) << info.name;
        EXPECT_GE(info.numInputs, 1u) << info.name;
        EXPECT_EQ(cellInfo(info.type).name, info.name);
    }
}

TEST(CellLibrary, DffIsLargestCell)
{
    // The master-slave flop dominates every combinational cell.
    double dff = cellInfo(CellType::DFF_X1).nand2Area;
    for (const auto &info : cellLibrary()) {
        if (!isSequential(info.type))
            EXPECT_LT(info.nand2Area, dff) << info.name;
    }
}

TEST(Technology, AreaCalibration)
{
    // Our FlexiCore4 netlist's 570 NAND2-equivalents correspond to
    // the fabricated core's 5.56 mm^2.
    Technology tech;
    EXPECT_NEAR(tech.areaMm2(570), 5.56, 1e-9);
}

TEST(Technology, DelayIncreasesAtLowVoltage)
{
    Technology tech;
    EXPECT_GT(tech.unitDelay(kVddLow), tech.unitDelay(kVddNominal));
}

TEST(Technology, DelayIncreasesWithVth)
{
    Technology tech;
    EXPECT_GT(tech.unitDelay(4.5, 1.6), tech.unitDelay(4.5, 1.0));
}

TEST(Technology, DelayDefinedNearCutoff)
{
    // A die whose Vth approaches the supply must read as "very slow",
    // not NaN/inf.
    Technology tech;
    double d = tech.unitDelay(3.0, 2.99);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GT(d, tech.unitDelay(3.0, kVthMean));
}

TEST(Technology, CurrentScalesWithVoltage)
{
    // Measured FC4: 1.1 mA @4.5 V vs 0.73 mA @3 V — ratio ~Vdd ratio.
    Technology tech;
    double i45 = tech.staticCurrent(1000.0, 4.5);
    double i30 = tech.staticCurrent(1000.0, 3.0);
    EXPECT_NEAR(i45 / i30, 4.5 / 3.0, 1e-9);
}

TEST(Technology, PullUpRefinementCutsCurrent)
{
    // Table 4: +50 % pull-up resistance => 2/3 the current.
    Technology before(false), after(true);
    double i_b = before.staticCurrent(1000.0, 4.5);
    double i_a = after.staticCurrent(1000.0, 4.5);
    EXPECT_NEAR(i_a / i_b, 2.0 / 3.0, 1e-9);
}

TEST(Technology, PowerIsCurrentTimesVoltage)
{
    Technology tech;
    EXPECT_NEAR(tech.staticPower(1000.0, 4.5),
                tech.staticCurrent(1000.0, 4.5) * 4.5, 1e-15);
}

TEST(Technology, EnergyIsPowerTimesTime)
{
    // 4.95 mW for 12500 cycles at 12.5 kHz = 4.95 mJ.
    double e = Technology::energy(4.95e-3, 12500, kClockHz);
    EXPECT_NEAR(e, 4.95e-3, 1e-12);
}

TEST(Technology, EnergyRejectsBadClock)
{
    EXPECT_THROW(Technology::energy(1.0, 1.0, 0.0), PanicError);
}

TEST(Technology, NegativeCurrentPanics)
{
    Technology tech;
    EXPECT_THROW(tech.staticCurrent(-1.0, 4.5), PanicError);
}

TEST(StaticTiming, WorstPathMatchesCriticalPathOnAllCores)
{
    // The path-level STA must agree *exactly* (same traversal, same
    // floating-point arithmetic) with the netlist's scalar critical
    // path on every shipped core.
    std::unique_ptr<Netlist> cores[] = {
        buildFlexiCore4Netlist(), buildFlexiCore8Netlist(),
        buildExtAcc4Netlist(), buildLoadStore4Netlist()};
    for (const auto &nl : cores)
        EXPECT_EQ(analyzeTiming(*nl, 1).worstDelayUnits(),
                  nl->criticalPathDelayUnits())
            << nl->name();
}

TEST(StaticTiming, Fc8IsSlowerThanFc4)
{
    // The structural root of the Section 4.1 yield cliff: the 8-bit
    // core's worst register-to-register path is strictly longer.
    auto fc4 = buildFlexiCore4Netlist();
    auto fc8 = buildFlexiCore8Netlist();
    EXPECT_GT(analyzeTiming(*fc8, 1).worstDelayUnits(),
              analyzeTiming(*fc4, 1).worstDelayUnits());
}

TEST(StaticTiming, SlackSignTracksSupplyVoltage)
{
    // FC8 meets the 80 us period at 4.5 V but not at 3 V.
    Technology tech(true);
    auto fc8 = buildFlexiCore8Netlist();
    double units = analyzeTiming(*fc8, 1).worstDelayUnits();
    double period = 1.0 / kClockHz;
    EXPECT_GT(period - units * tech.unitDelay(kVddNominal), 0.0);
    EXPECT_LT(period - units * tech.unitDelay(kVddLow), 0.0);
}

} // namespace
} // namespace flexi
