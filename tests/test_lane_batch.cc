/**
 * @file
 * Differential tests for the 64-lane bit-parallel evaluator.
 *
 * The contract under test: every lane of a LaneBatch is bit-identical
 * to a scalar Netlist instance carrying the same fault state and
 * stimulus — against both the compiled evaluation plan (evaluate())
 * and the cell-by-cell interpreter (evaluateReference()) — on all
 * four fabricated cores, for full and partially-filled batches, down
 * to per-lane toggle counts. The batched lockstep harness must
 * likewise reproduce runLockstep() per lane.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lane_batch.hh"
#include "netlist/lockstep.hh"
#include "netlist/netlist.hh"
#include "yield/test_program.hh"

namespace flexi
{
namespace
{

struct Design
{
    const char *name;
    std::unique_ptr<Netlist> (*build)();
};

const Design kDesigns[] = {
    {"fc4", &buildFlexiCore4Netlist},
    {"fc8", &buildFlexiCore8Netlist},
    {"extacc4", &buildExtAcc4Netlist},
    {"loadstore4", &buildLoadStore4Netlist},
};

/**
 * Drive a @p width lane batch and @p width scalar mirrors with the
 * same random stimulus and per-lane fault schedule for @p cycles
 * cycles, asserting every net of every lane matches after each
 * evaluate. Scalar mirrors run the compiled plan; a sample of lanes
 * additionally carries an evaluateReference() mirror so the word
 * evaluator is pitted against both scalar oracles at once.
 */
void
runDifferential(const Design &design, unsigned width, int cycles,
                uint64_t seed)
{
    auto golden = design.build();
    LaneBatch batch(*golden, width);
    ASSERT_EQ(batch.lanes(), width);
    batch.enableToggles(true);

    // Per-lane scalar mirrors of the compiled plan, plus reference
    // (interpreter) mirrors on the first, middle and last lanes.
    std::vector<std::unique_ptr<Netlist>> mirrors(width);
    std::vector<std::unique_ptr<Netlist>> refs(width);
    for (unsigned lane = 0; lane < width; ++lane) {
        mirrors[lane] = golden->clone();
        if (lane == 0 || lane == width / 2 || lane == width - 1)
            refs[lane] = golden->clone();
    }

    std::vector<std::string> input_names;
    for (const auto &[in_name, net] : golden->primaryInputs())
        input_names.push_back(in_name);
    size_t nets = golden->numNets();
    size_t dffs = golden->numDffs() ? golden->numDffs() : 1;

    Rng rng(deriveSeed(seed, width));
    for (int cycle = 0; cycle < cycles; ++cycle) {
        // Independent random stimulus per lane on every input.
        for (const auto &in_name : input_names) {
            uint64_t bits = rng.next();
            batch.setInputLanes(in_name, bits);
            for (unsigned lane = 0; lane < width; ++lane) {
                bool v = (bits >> lane) & 1ull;
                mirrors[lane]->setInput(in_name, v);
                if (refs[lane])
                    refs[lane]->setInput(in_name, v);
            }
        }

        // Per-lane fault traffic: stuck-ats land on random lanes
        // early, transients open short absolute-cycle windows
        // mid-run, latch upsets flip, then everything is cleared so
        // the post-clear state is compared too.
        if (cycle % 6 == 2 && cycle < cycles / 2) {
            for (unsigned lane = 0; lane < width; ++lane) {
                if (!rng.chance(0.4))
                    continue;
                StuckFault f;
                f.net = static_cast<NetId>(rng.below(nets));
                f.value = rng.chance(0.5);
                batch.injectFault(lane, f);
                mirrors[lane]->injectFault(f);
                if (refs[lane])
                    refs[lane]->injectFault(f);
            }
        }
        if (cycle % 9 == 4) {
            for (unsigned lane = 0; lane < width; ++lane) {
                if (!rng.chance(0.4))
                    continue;
                TransientFault t;
                t.net = static_cast<NetId>(rng.below(nets));
                t.value = rng.chance(0.5);
                t.fromCycle = batch.cycle() + rng.below(3);
                t.untilCycle = t.fromCycle + 1 + rng.below(3);
                batch.injectTransient(lane, t);
                mirrors[lane]->injectTransient(t);
                if (refs[lane])
                    refs[lane]->injectTransient(t);
            }
        }
        if (cycle % 11 == 7) {
            for (unsigned lane = 0; lane < width; ++lane) {
                if (!rng.chance(0.3))
                    continue;
                size_t d = rng.below(dffs);
                batch.flipDff(lane, d);
                mirrors[lane]->flipDff(d);
                if (refs[lane])
                    refs[lane]->flipDff(d);
            }
        }
        if (cycle == (2 * cycles) / 3) {
            batch.clearFaults();
            batch.clearTransients();
            for (unsigned lane = 0; lane < width; ++lane) {
                mirrors[lane]->clearFaults();
                mirrors[lane]->clearTransients();
                if (refs[lane]) {
                    refs[lane]->clearFaults();
                    refs[lane]->clearTransients();
                }
            }
        }

        batch.evaluate();
        batch.clockEdge();
        batch.evaluate();
        for (unsigned lane = 0; lane < width; ++lane) {
            mirrors[lane]->evaluate();
            mirrors[lane]->clockEdge();
            mirrors[lane]->evaluate();
            if (refs[lane]) {
                refs[lane]->evaluateReference();
                refs[lane]->clockEdge();
                refs[lane]->evaluateReference();
            }
        }
        ASSERT_EQ(batch.cycle(), mirrors[0]->cycle());

        for (unsigned lane = 0; lane < width; ++lane) {
            for (NetId n = 0; n < static_cast<NetId>(nets); ++n) {
                bool b = batch.netValue(n, lane);
                if (b != mirrors[lane]->netValue(n)) {
                    FAIL() << design.name << " width " << width
                           << " cycle " << cycle << " lane " << lane
                           << " net " << n << ": batch " << b
                           << " vs scalar plan";
                }
                if (refs[lane] && b != refs[lane]->netValue(n)) {
                    FAIL() << design.name << " width " << width
                           << " cycle " << cycle << " lane " << lane
                           << " net " << n << ": batch " << b
                           << " vs reference";
                }
            }
        }
    }

    // Per-lane toggle counts, accumulated over the whole faulted
    // run, against both oracles.
    for (unsigned lane = 0; lane < width; ++lane) {
        ASSERT_EQ(batch.toggleCounts(lane),
                  mirrors[lane]->toggleCounts())
            << design.name << " width " << width << " lane " << lane;
        if (refs[lane])
            ASSERT_EQ(batch.toggleCounts(lane),
                      refs[lane]->toggleCounts())
                << design.name << " width " << width << " lane "
                << lane << " (reference)";
    }
}

TEST(LaneBatch, FullBatchMatchesScalarAndReferenceAllCores)
{
    for (const auto &design : kDesigns) {
        SCOPED_TRACE(design.name);
        runDifferential(design, LaneBatch::kMaxLanes, 36, 0xB17Au);
    }
}

TEST(LaneBatch, PartialBatchWidths)
{
    // A one-lane batch is the degenerate scalar case; 63 lanes
    // leaves a dead top lane whose word bits must never leak into
    // live lanes (fault words, toggle masks, bus gathers).
    const Design &fc4 = kDesigns[0];
    runDifferential(fc4, 1, 40, 0x1AB0u);
    runDifferential(fc4, 63, 40, 0x63AB0u);
}

TEST(LaneBatch, UniformBusDriveMatchesScalar)
{
    // setBus (same value on every lane) against scalar setBus, with
    // a per-lane fault so lanes still diverge internally.
    auto golden = buildFlexiCore4Netlist();
    BusHandle instr = golden->inputBus("instr", 8);
    LaneBatch batch(*golden, 8);
    std::vector<std::unique_ptr<Netlist>> mirrors(8);
    for (unsigned lane = 0; lane < 8; ++lane) {
        mirrors[lane] = golden->clone();
        StuckFault f;
        f.net = static_cast<NetId>(3 + 5 * lane);
        f.value = (lane & 1) != 0;
        batch.injectFault(lane, f);
        mirrors[lane]->injectFault(f);
    }
    BusHandle pc = golden->outputBus("pc", 7);
    for (unsigned v = 0; v < 32; ++v) {
        batch.setBus(instr, v * 37 % 256);
        batch.evaluate();
        batch.clockEdge();
        batch.evaluate();
        for (unsigned lane = 0; lane < 8; ++lane) {
            mirrors[lane]->setBus(instr, v * 37 % 256);
            mirrors[lane]->evaluate();
            mirrors[lane]->clockEdge();
            mirrors[lane]->evaluate();
            ASSERT_EQ(batch.bus(pc, lane), mirrors[lane]->bus(pc))
                << "value " << v << " lane " << lane;
        }
    }
}

TEST(LaneBatch, ResetRestoresPowerOnState)
{
    auto golden = buildFlexiCore4Netlist();
    LaneBatch batch(*golden, 4);
    StuckFault f{static_cast<NetId>(7), true};
    batch.injectFault(2, f);
    for (int i = 0; i < 10; ++i) {
        batch.evaluate();
        batch.clockEdge();
    }
    uint64_t before = batch.cycle();
    batch.reset();
    EXPECT_EQ(batch.cycle(), before)
        << "cycle() is monotonic across reset, as on the scalar";

    // A freshly-built scalar with the same fault must agree from the
    // first post-reset cycle.
    auto mirror = golden->clone();
    mirror->injectFault(f);
    mirror->reset();
    batch.evaluate();
    mirror->evaluate();
    for (NetId n = 0; n < static_cast<NetId>(golden->numNets()); ++n)
        ASSERT_EQ(batch.netValue(n, 2), mirror->netValue(n))
            << "net " << n;
}

TEST(LaneBatch, LockstepBatchMatchesScalarLockstep)
{
    // The wafer-study inner loop: per-lane error totals from one
    // batched lockstep pass equal 64 scalar runLockstep() runs with
    // the same per-die fault sets (early_exit=false => exact totals).
    auto golden = buildFlexiCore4Netlist();
    Program prog = makeTestProgram(IsaKind::FlexiCore4, 3);
    auto inputs = makeTestInputs(IsaKind::FlexiCore4, 128, 3);
    const uint64_t kBudget = 300;

    Rng rng(0xD1E5EEDull);
    unsigned width = 24;
    LaneBatch batch(*golden, width);
    std::vector<std::vector<StuckFault>> faults(width);
    for (unsigned lane = 0; lane < width; ++lane) {
        // Lane 0 stays fault-free; others get 1-3 stuck-ats.
        unsigned n = lane ? 1 + static_cast<unsigned>(rng.below(3))
                          : 0;
        for (unsigned k = 0; k < n; ++k) {
            StuckFault f;
            f.net =
                static_cast<NetId>(rng.below(golden->numNets()));
            f.value = rng.chance(0.5);
            faults[lane].push_back(f);
            batch.injectFault(lane, f);
        }
    }

    LockstepBatchResult res = runLockstepBatch(
        batch, *golden, IsaKind::FlexiCore4, prog, inputs, kBudget,
        /*early_exit=*/false);

    for (unsigned lane = 0; lane < width; ++lane) {
        auto die = golden->clone();
        for (const StuckFault &f : faults[lane])
            die->injectFault(f);
        LockstepResult scalar = runLockstep(
            *die, IsaKind::FlexiCore4, prog, inputs, kBudget);
        EXPECT_EQ(res.errors[lane], scalar.errors) << "lane " << lane;
        EXPECT_EQ(((res.activeMask >> lane) & 1ull) != 0,
                  scalar.errors == 0)
            << "lane " << lane;
    }
    EXPECT_TRUE(res.activeMask & 1ull)
        << "fault-free lane 0 must stay clean";

    // Early exit must not change which lanes are clean, only how
    // much error counting the dirty lanes receive.
    LaneBatch batch2(*golden, width);
    for (unsigned lane = 0; lane < width; ++lane)
        for (const StuckFault &f : faults[lane])
            batch2.injectFault(lane, f);
    LockstepBatchResult fast = runLockstepBatch(
        batch2, *golden, IsaKind::FlexiCore4, prog, inputs, kBudget,
        /*early_exit=*/true);
    EXPECT_EQ(fast.activeMask, res.activeMask);
    for (unsigned lane = 0; lane < width; ++lane) {
        EXPECT_LE(fast.errors[lane], res.errors[lane]) << lane;
        if ((res.activeMask >> lane) & 1ull)
            EXPECT_EQ(fast.errors[lane], 0u) << lane;
    }
}

} // namespace
} // namespace flexi
