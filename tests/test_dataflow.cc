/**
 * @file
 * Tests for the netlist dataflow framework: the ternary fixed-point
 * engine (constant propagation, reset coverage, cone-of-influence
 * liveness), the canonical structural hash (invariance + pinned
 * digests for the four cores), the SAT-certified prune pass
 * (including differential fuzz of pruned netlists across all three
 * evaluators and the counterexample replay on a tampered "prune"),
 * the bespoke-core derivation, the DSE sweep cache, and the
 * LintReport normalization that keeps flexilint --json byte-stable.
 */

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dataflow/bespoke.hh"
#include "analysis/dataflow/dataflow.hh"
#include "analysis/dataflow/prune.hh"
#include "analysis/dataflow/struct_hash.hh"
#include "analysis/program_lint.hh"
#include "assembler/assembler.hh"
#include "dse/bespoke_report.hh"
#include "dse/sweep.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lane_batch.hh"
#include "netlist/netlist.hh"

namespace flexi
{
namespace
{

/** xorshift PRNG so the differential fuzz is reproducible. */
uint32_t
nextRand(uint32_t &state)
{
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
}

// ---------------------------------------------------------------
// Ternary evaluation
// ---------------------------------------------------------------

TEST(Ternary, JoinLattice)
{
    EXPECT_EQ(ternaryJoin(Ternary::Zero, Ternary::Zero),
              Ternary::Zero);
    EXPECT_EQ(ternaryJoin(Ternary::One, Ternary::One), Ternary::One);
    EXPECT_EQ(ternaryJoin(Ternary::Zero, Ternary::One), Ternary::X);
    EXPECT_EQ(ternaryJoin(Ternary::X, Ternary::Zero), Ternary::X);
}

TEST(Ternary, ControllingValuesDominateX)
{
    // NAND(0, X) = 1 regardless of the unknown input.
    EXPECT_EQ(ternaryEval(CellType::NAND2, Ternary::Zero, Ternary::X,
                          Ternary::X),
              Ternary::One);
    EXPECT_EQ(ternaryEval(CellType::NAND2, Ternary::One, Ternary::X,
                          Ternary::X),
              Ternary::X);
    // NOR(1, X) = 0.
    EXPECT_EQ(ternaryEval(CellType::NOR2, Ternary::One, Ternary::X,
                          Ternary::X),
              Ternary::Zero);
    // NAND3 with any controlling 0.
    EXPECT_EQ(ternaryEval(CellType::NAND3, Ternary::X, Ternary::Zero,
                          Ternary::X),
              Ternary::One);
}

TEST(Ternary, NonControllingXStaysX)
{
    EXPECT_EQ(ternaryEval(CellType::INV_X1, Ternary::X, Ternary::Zero,
                          Ternary::Zero),
              Ternary::X);
    EXPECT_EQ(ternaryEval(CellType::INV_X1, Ternary::Zero,
                          Ternary::Zero, Ternary::Zero),
              Ternary::One);
    EXPECT_EQ(ternaryEval(CellType::XOR2, Ternary::X, Ternary::Zero,
                          Ternary::Zero),
              Ternary::X);
    EXPECT_EQ(ternaryEval(CellType::XNOR2, Ternary::One, Ternary::One,
                          Ternary::Zero),
              Ternary::One);
}

TEST(Ternary, MuxAgreeingBranchesResolveUnknownSelect)
{
    // MUX2 inputs are {a, b, sel}: both branches equal, select X.
    EXPECT_EQ(ternaryEval(CellType::MUX2, Ternary::Zero, Ternary::Zero,
                          Ternary::X),
              Ternary::Zero);
    EXPECT_EQ(ternaryEval(CellType::MUX2, Ternary::One, Ternary::One,
                          Ternary::X),
              Ternary::One);
    EXPECT_EQ(ternaryEval(CellType::MUX2, Ternary::Zero, Ternary::One,
                          Ternary::X),
              Ternary::X);
}

TEST(Ternary, TruthTableExportRejectsSequential)
{
    EXPECT_EQ(cellTruthTable(CellType::INV_X1), 0x55u);
    EXPECT_THROW(cellTruthTable(CellType::DFF_X1), std::logic_error);
}

// ---------------------------------------------------------------
// Fixed-point analysis on small fixtures
// ---------------------------------------------------------------

TEST(Dataflow, TiedPadPropagatesThroughLogic)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId t = nl.addInput("t");
    NetId a = nl.addInput("a");
    NetId y = b.nand2(t, a);
    nl.addOutput("y", y);
    nl.elaborate();

    // Open analysis: y unknown.
    DataflowResult open = analyzeDataflow(nl);
    ASSERT_TRUE(open.ok);
    EXPECT_FALSE(open.netConst(y));

    // t tied low: NAND(0, a) = 1 in every reachable state.
    DataflowOptions opts;
    opts.ties.push_back({"t", false});
    DataflowResult tied = analyzeDataflow(nl, opts);
    ASSERT_TRUE(tied.ok);
    ASSERT_TRUE(tied.netConst(y));
    EXPECT_TRUE(tied.netConstValue(y));
}

TEST(Dataflow, ConstantStateBitFoundInductively)
{
    // q starts 0 and recirculates AND(q, a): provably 0 forever,
    // even though a is free.
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId q = nl.addDff(nl.zero(), "m", false);
    NetId d = b.and2(q, a);
    nl.setDffInput(q, d);
    nl.addOutput("y", b.or2(q, a));
    nl.elaborate();

    DataflowResult df = analyzeDataflow(nl);
    ASSERT_TRUE(df.ok);
    ASSERT_TRUE(df.netConst(q));
    EXPECT_FALSE(df.netConstValue(q));
}

TEST(Dataflow, ResetCoverageSeparatesSelfInitFromPowerOn)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    // self_init: next state is constant 0 -> recovers from any
    // power-on value in one cycle.
    NetId q0 = nl.addDff(nl.zero(), "m", false);
    // hold: recirculates itself -> relies on the power-on value.
    NetId q1 = nl.addDff(nl.zero(), "m", false);
    nl.setDffInput(q1, b.buf(q1));
    nl.addOutput("y", b.nand3(q0, q1, a));
    nl.elaborate();

    DataflowResult df = analyzeDataflow(nl);
    ASSERT_TRUE(df.ok);
    ASSERT_EQ(df.resetVal.size(), 2u);
    EXPECT_EQ(df.resetVal[0], Ternary::Zero);
    EXPECT_EQ(df.resetVal[1], Ternary::X);
    EXPECT_EQ(df.numUninitDffs(), 1u);

    LintReport rep = dataflowLint(nl);
    EXPECT_TRUE(rep.fires("x-after-reset"));
    ASSERT_EQ(rep.byRule("x-after-reset").size(), 1u);
}

TEST(Dataflow, DeadConeDetected)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId c = nl.addInput("b");
    NetId y = b.nand2(a, c);
    NetId dead = b.xor2(a, c);   // feeds nothing observable
    (void)dead;
    nl.addOutput("y", y);
    nl.elaborate();

    DataflowResult df = analyzeDataflow(nl);
    ASSERT_TRUE(df.ok);
    EXPECT_EQ(df.numDeadCells(), 1u);

    LintReport rep = dataflowLint(nl);
    EXPECT_TRUE(rep.fires("dead-gate"));
}

// ---------------------------------------------------------------
// Canonical structural hash
// ---------------------------------------------------------------

/** Two-output fixture; @p swapped reverses construction order. */
std::unique_ptr<Netlist>
buildHashFixture(bool swapped, const char *module = "m")
{
    auto nl = std::make_unique<Netlist>("t");
    Builder b(*nl, module);
    NetId a = nl->addInput("a");
    NetId c = nl->addInput("b");
    NetId y, z;
    if (swapped) {
        z = b.xor2(a, c);
        y = b.nand2(a, c);
    } else {
        y = b.nand2(a, c);
        z = b.xor2(a, c);
    }
    nl->addOutput("y", y);
    nl->addOutput("z", z);
    nl->elaborate();
    return nl;
}

TEST(StructHash, InvariantUnderConstructionOrderAndModuleTags)
{
    uint64_t h = canonicalNetlistHash(*buildHashFixture(false));
    EXPECT_EQ(h, canonicalNetlistHash(*buildHashFixture(true)));
    EXPECT_EQ(h, canonicalNetlistHash(*buildHashFixture(false, "q")));
}

TEST(StructHash, InvariantUnderClone)
{
    auto nl = buildFlexiCore4Netlist();
    auto copy = nl->clone();
    EXPECT_EQ(canonicalNetlistHash(*nl), canonicalNetlistHash(*copy));
}

TEST(StructHash, SensitiveToFunctionAndInit)
{
    uint64_t h = canonicalNetlistHash(*buildHashFixture(false));

    {
        // Same shape, one gate function changed.
        Netlist nl("t");
        Builder b(nl, "m");
        NetId a = nl.addInput("a");
        NetId c = nl.addInput("b");
        nl.addOutput("y", b.nor2(a, c));
        nl.addOutput("z", b.xor2(a, c));
        nl.elaborate();
        EXPECT_NE(canonicalNetlistHash(nl), h);
    }
    {
        // DFF init value must be visible to the digest.
        auto mk = [](bool init) {
            auto nl = std::make_unique<Netlist>("t");
            NetId d = nl->addInput("d");
            NetId q = nl->addDff(d, "m", init);
            nl->addOutput("q", q);
            nl->elaborate();
            return nl;
        };
        EXPECT_NE(canonicalNetlistHash(*mk(false)),
                  canonicalNetlistHash(*mk(true)));
    }
}

TEST(StructHash, PinnedDigestsForTheFourCores)
{
    // The digests are pinned: the sweep cache treats them as the
    // identity of the generated structure, so an unintentional
    // change to a core generator (or to the hash itself) must show
    // up as a test failure, not as silent cache misses.
    EXPECT_EQ(canonicalNetlistHashHex(*buildFlexiCore4Netlist()),
              "d05b5907e382d41e");
    EXPECT_EQ(canonicalNetlistHashHex(*buildFlexiCore8Netlist()),
              "9a844e16cb0e098d");
    EXPECT_EQ(canonicalNetlistHashHex(*buildExtAcc4Netlist()),
              "54798922a191dd4a");
    EXPECT_EQ(canonicalNetlistHashHex(*buildLoadStore4Netlist()),
              "ba973c2b35c7ee34");
}

// ---------------------------------------------------------------
// SAT-certified prune
// ---------------------------------------------------------------

TEST(Prune, FoldsConstantsAndRemovesDeadLogicCertified)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId t = nl.addInput("t");
    NetId a = nl.addInput("a");
    NetId y = b.nand2(t, a);        // const 1 under the tie
    NetId dead = b.xor2(t, a);      // observable by nothing
    (void)dead;
    NetId q = nl.addDff(nl.zero(), "m", false);
    nl.setDffInput(q, b.and2(q, a));   // provably 0 forever
    nl.addOutput("y", y);
    nl.addOutput("z", b.or2(q, a));
    nl.elaborate();

    DataflowOptions opts;
    opts.ties.push_back({"t", false});
    PruneResult pr = prune(nl, opts);
    ASSERT_TRUE(pr.ok) << pr.detail;
    EXPECT_TRUE(pr.certified) << pr.certification.detail;
    EXPECT_EQ(pr.stats.constDffs, 1u);
    EXPECT_EQ(pr.stats.dffsAfter, 0u);
    EXPECT_GE(pr.stats.deadCells + pr.stats.constCells, 2u);
    EXPECT_LT(pr.stats.cellsAfter, pr.stats.cellsBefore);
    EXPECT_GT(pr.stats.nand2AreaSaved(), 0.0);

    // Pad interface intact, and y is now hardwired high.
    ASSERT_EQ(pr.netlist->primaryOutputs().size(), 2u);
    pr.netlist->setInput("t", false);
    pr.netlist->setInput("a", false);
    pr.netlist->evaluate();
    EXPECT_TRUE(pr.netlist->output("y"));
}

TEST(Prune, AllFourCoresCertify)
{
    for (auto build :
         {buildFlexiCore4Netlist, buildFlexiCore8Netlist,
          buildExtAcc4Netlist, buildLoadStore4Netlist}) {
        auto nl = build();
        PruneResult pr = prune(*nl);
        ASSERT_TRUE(pr.ok) << nl->name() << ": " << pr.detail;
        EXPECT_TRUE(pr.certified)
            << nl->name() << ": " << pr.certification.detail
            << (pr.certification.hasCex
                    ? " cex " + pr.certification.cex.text()
                    : "");
        EXPECT_LT(pr.stats.cellsAfter, pr.stats.cellsBefore)
            << nl->name();
        // Pad interface is preserved exactly.
        EXPECT_EQ(pr.netlist->primaryInputs().size(),
                  nl->primaryInputs().size());
        EXPECT_EQ(pr.netlist->primaryOutputs().size(),
                  nl->primaryOutputs().size());
    }
}

TEST(Prune, DifferentialFuzzAcrossAllEvaluators)
{
    // Drive the original and the pruned FlexiCore4 with the same
    // random input stream and insist on identical observable
    // behavior from the scalar plan evaluator, the gate-by-gate
    // reference evaluator, and the 64-lane batch evaluator.
    auto orig = buildFlexiCore4Netlist();
    PruneResult pr = prune(*orig);
    ASSERT_TRUE(pr.ok && pr.certified);
    Netlist &pruned = *pr.netlist;

    auto ref = pruned.clone();   // evaluateReference instance
    constexpr unsigned kLanes = 8;
    LaneBatch batch(pruned, kLanes);

    std::vector<std::string> ins, outs;
    for (const auto &[name, net] : orig->primaryInputs())
        ins.push_back(name);
    for (const auto &[name, net] : orig->primaryOutputs())
        outs.push_back(name);

    uint32_t rng = 0xdf10u;
    for (int cycle = 0; cycle < 128; ++cycle) {
        for (const std::string &name : ins) {
            bool v = nextRand(rng) & 1u;
            orig->setInput(name, v);
            pruned.setInput(name, v);
            ref->setInput(name, v);
            batch.setInputLanes(name, v ? ~uint64_t{0} : 0);
        }
        orig->evaluate();
        pruned.evaluate();
        ref->evaluateReference();
        batch.evaluate();
        for (const std::string &name : outs) {
            bool want = orig->output(name);
            ASSERT_EQ(pruned.output(name), want)
                << "plan eval diverged on " << name << " at cycle "
                << cycle;
            ASSERT_EQ(ref->output(name), want)
                << "reference eval diverged on " << name
                << " at cycle " << cycle;
            NetId net = pruned.primaryOutputs().at(name);
            for (unsigned lane = 0; lane < kLanes; ++lane)
                ASSERT_EQ(batch.netValue(net, lane), want)
                    << "lane " << lane << " diverged on " << name
                    << " at cycle " << cycle;
        }
        orig->clockEdge();
        pruned.clockEdge();
        ref->clockEdge();
        batch.clockEdge();
    }
}

TEST(Prune, TamperedResultYieldsReplayableCounterexample)
{
    // A "prune" that actually changed the function must be caught,
    // and its counterexample must reproduce in plain simulation.
    Netlist orig("t");
    {
        Builder b(orig, "m");
        NetId a = orig.addInput("a");
        NetId c = orig.addInput("b");
        orig.addOutput("y", b.xor2(a, c));
        orig.elaborate();
    }
    Netlist wrong("t");
    {
        Builder b(wrong, "m");
        NetId a = wrong.addInput("a");
        NetId c = wrong.addInput("b");
        wrong.addOutput("y", b.or2(a, c));
        wrong.elaborate();
    }

    DataflowResult df = analyzeDataflow(orig);
    ASSERT_TRUE(df.ok);
    EquivResult res = certifyPrune(orig, wrong, df, {}, {});
    EXPECT_FALSE(res.proven);
    ASSERT_TRUE(res.hasCex);

    std::string what;
    EXPECT_TRUE(replayPruneCex(orig, wrong, {}, res.cex, &what));
    EXPECT_NE(what.find("y"), std::string::npos) << what;
}

// ---------------------------------------------------------------
// Bespoke-core derivation
// ---------------------------------------------------------------

TEST(Bespoke, SpecializesCoreToKernelEncodings)
{
    // Encodings 0x50, 0x51, 0x82: bus bits 2, 3 and 5 are zero in
    // every reachable word, so the derivation has pins to tie.
    const char *src =
        "nandi 0\n"          // ACC negative: the branch always takes
        "nandi 1\n"
        "done: br done\n";
    Program prog = assemble(IsaKind::FlexiCore4, src);
    ASSERT_TRUE(lintProgram(prog).clean());

    auto core = buildFlexiCore4Netlist();
    BespokeResult res =
        bespokePrune(*core, IsaKind::FlexiCore4, {prog});
    ASSERT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.facts.busWidth, 8u);
    EXPECT_GT(res.facts.words, 0u);
    EXPECT_GT(res.facts.numTiedBits(), 0u);
    EXPECT_EQ(res.ties.size(), res.facts.numTiedBits());
    ASSERT_TRUE(res.prune.ok) << res.prune.detail;
    EXPECT_TRUE(res.prune.certified)
        << res.prune.certification.detail;
    // Specialization must beat the open-netlist prune.
    PruneResult open = prune(*core);
    ASSERT_TRUE(open.ok);
    EXPECT_LT(res.prune.stats.cellsAfter, open.stats.cellsAfter);

    BespokeAreaReport report = bespokeAreaReport(res.prune.stats);
    EXPECT_GT(report.nand2Saved, 0.0);
    EXPECT_GT(report.fractionSaved, 0.0);
    EXPECT_LT(report.fractionSaved, 1.0);
    EXPECT_GT(report.fractionOfBaseline, 0.0);
    EXPECT_FALSE(report.text().empty());
}

TEST(Bespoke, RefusesProgramsWithLintErrors)
{
    // A program that falls off the end of its page has a broken CFG:
    // its reachable set cannot license a specialization.
    Program prog = assemble(IsaKind::FlexiCore4, "nandi 0\n");
    ASSERT_FALSE(lintProgram(prog).clean());

    auto core = buildFlexiCore4Netlist();
    BespokeResult res =
        bespokePrune(*core, IsaKind::FlexiCore4, {prog});
    EXPECT_FALSE(res.ok);
}

// ---------------------------------------------------------------
// Sweep cache
// ---------------------------------------------------------------

TEST(SweepCache, SecondRunHitsEverythingBitIdentical)
{
    SweepCache cache;
    SweepConfig cfg;
    cfg.workUnits = 2;
    cfg.threads = 1;
    cfg.cache = &cache;

    SweepResult first = runSweep(cfg);
    ASSERT_FALSE(first.candidates.empty());
    EXPECT_EQ(cache.hits, 0u);
    EXPECT_EQ(cache.misses, first.candidates.size());

    SweepResult second = runSweep(cfg);
    EXPECT_EQ(cache.misses, first.candidates.size());
    EXPECT_EQ(cache.hits, first.candidates.size());

    ASSERT_EQ(second.candidates.size(), first.candidates.size());
    for (size_t i = 0; i < first.candidates.size(); ++i) {
        EXPECT_EQ(second.candidates[i].area,
                  first.candidates[i].area);
        EXPECT_EQ(second.candidates[i].codeRel,
                  first.candidates[i].codeRel);
        EXPECT_EQ(second.candidates[i].energyRel,
                  first.candidates[i].energyRel);
        EXPECT_EQ(second.candidates[i].pareto,
                  first.candidates[i].pareto);
    }
}

TEST(SweepCache, KeyDependsOnEvaluationInputs)
{
    SweepConfig cfg;
    cfg.workUnits = 2;
    DesignPoint a;
    DesignPoint b = a;
    uint64_t base = sweepPointKey(a, cfg);
    EXPECT_EQ(base, sweepPointKey(b, cfg));

    SweepConfig other = cfg;
    other.workUnits = 3;
    EXPECT_NE(sweepPointKey(a, other), base);
    other = cfg;
    other.seed = cfg.seed + 1;
    EXPECT_NE(sweepPointKey(a, other), base);
    // Threads and operating voltage never key the cache: they do
    // not change any point's metrics.
    other = cfg;
    other.threads = 7;
    other.vddOperating = 3.0;
    EXPECT_EQ(sweepPointKey(a, other), base);
}

// ---------------------------------------------------------------
// Report normalization (byte-stable flexilint --json)
// ---------------------------------------------------------------

TEST(LintReportNormalize, SortsAndDeduplicates)
{
    Diagnostic b;
    b.severity = Severity::Warning;
    b.rule = "b-rule";
    b.module = "m";
    b.message = "later";
    Diagnostic a;
    a.severity = Severity::Warning;
    a.rule = "a-rule";
    a.module = "m";
    a.message = "earlier";

    LintReport rep;
    rep.add(b);
    rep.add(a);
    rep.add(b);   // exact duplicate
    rep.normalize();

    ASSERT_EQ(rep.diagnostics().size(), 2u);
    EXPECT_EQ(rep.diagnostics()[0].rule, "a-rule");
    EXPECT_EQ(rep.diagnostics()[1].rule, "b-rule");

    // Same key at different severity is NOT a duplicate.
    Diagnostic b2 = b;
    b2.severity = Severity::Error;
    rep.add(b2);
    rep.normalize();
    EXPECT_EQ(rep.diagnostics().size(), 3u);
}

} // namespace
} // namespace flexi
