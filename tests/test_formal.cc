/**
 * @file
 * Formal engine tests: the CDCL SAT solver (unit + differential
 * against brute force), the plan-vs-reference equivalence sweep on
 * all four cores, counterexample extraction on a deliberately broken
 * netlist (replayed in simulation to prove the cex is real), the
 * clone/fault identity checks, and the per-instruction ISA proofs.
 */

#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "analysis/cnf_encoder.hh"
#include "analysis/equiv.hh"
#include "analysis/sat.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/netlist.hh"

namespace flexi
{
namespace
{

using Result = SatSolver::Result;

// ---------------------------------------------------------------
// SAT solver unit tests.

TEST(Sat, TrivialSatAndModel)
{
    SatSolver s;
    SatVar a = s.newVar();
    SatVar b = s.newVar();
    ASSERT_TRUE(s.addClause({SatLit::make(a), SatLit::make(b)}));
    ASSERT_TRUE(s.addClause({SatLit::make(a, true)}));
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_FALSE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(b));
}

TEST(Sat, EmptyClauseIsUnsat)
{
    SatSolver s;
    SatVar a = s.newVar();
    (void)a;
    EXPECT_FALSE(s.addClause({}));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, ContradictoryUnitsAreUnsat)
{
    SatSolver s;
    SatVar a = s.newVar();
    ASSERT_TRUE(s.addClause({SatLit::make(a)}));
    EXPECT_FALSE(s.addClause({SatLit::make(a, true)}));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, PigeonholeThreeIntoTwoIsUnsat)
{
    // 3 pigeons, 2 holes: classic small UNSAT instance that needs
    // real conflict analysis, not just propagation.
    SatSolver s;
    SatLit p[3][2];
    for (auto &pigeon : p)
        for (auto &lit : pigeon)
            lit = SatLit::make(s.newVar());
    for (auto &pigeon : p)
        ASSERT_TRUE(s.addClause({pigeon[0], pigeon[1]}));
    for (int h = 0; h < 2; ++h)
        for (int i = 0; i < 3; ++i)
            for (int j = i + 1; j < 3; ++j)
                ASSERT_TRUE(s.addClause({~p[i][h], ~p[j][h]}));
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, AssumptionsDoNotPoisonLaterSolves)
{
    SatSolver s;
    SatVar a = s.newVar();
    SatVar b = s.newVar();
    ASSERT_TRUE(s.addClause({SatLit::make(a), SatLit::make(b)}));
    // a=0, b=0 assumed: Unsat under assumptions only.
    EXPECT_EQ(s.solve({SatLit::make(a, true), SatLit::make(b, true)}),
              Result::Unsat);
    // The formula itself is still satisfiable.
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_EQ(s.solve({SatLit::make(a, true)}), Result::Sat);
    EXPECT_TRUE(s.modelValue(b));
}

TEST(Sat, ContradictoryAssumptionsRejectedCleanly)
{
    // {a, ~a} in one assumption list is Unsat on its face; the
    // solver must notice when placing the second pseudo-decision
    // and must not mark the formula itself unsatisfiable.
    SatSolver s;
    SatVar a = s.newVar();
    SatVar b = s.newVar();
    ASSERT_TRUE(s.addClause({SatLit::make(a), SatLit::make(b)}));
    EXPECT_EQ(s.solve({SatLit::make(a), SatLit::make(a, true)}),
              Result::Unsat);
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_EQ(s.solve({SatLit::make(a)}), Result::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

/** Pigeonhole instance with every clause guarded by ~sel, so the
 *  contradiction only activates under the `sel` assumption. */
void
addGuardedPigeonhole(SatSolver &s, int pigeons, int holes,
                     SatLit sel)
{
    std::vector<std::vector<SatLit>> p(pigeons);
    for (auto &pigeon : p)
        for (int h = 0; h < holes; ++h)
            pigeon.push_back(SatLit::make(s.newVar()));
    for (auto &pigeon : p) {
        std::vector<SatLit> cl = pigeon;
        cl.push_back(~sel);
        ASSERT_TRUE(s.addClause(cl));
    }
    for (int h = 0; h < holes; ++h)
        for (int i = 0; i < pigeons; ++i)
            for (int j = i + 1; j < pigeons; ++j)
                ASSERT_TRUE(
                    s.addClause({~p[i][h], ~p[j][h], ~sel}));
}

TEST(Sat, IncrementalAssumptionReuseKeepsLearnedClauses)
{
    // The miter loop solves the same CNF under one activation
    // assumption per query. Clauses learned refuting the first
    // query must carry over: re-solving under the same assumption
    // may not redo the full search.
    SatSolver s;
    SatLit sel = SatLit::make(s.newVar());
    addGuardedPigeonhole(s, 4, 3, sel);

    ASSERT_EQ(s.solve({sel}), Result::Unsat);
    uint64_t first = s.stats().conflicts;
    EXPECT_GT(first, 0u);

    ASSERT_EQ(s.solve({sel}), Result::Unsat);
    uint64_t extra = s.stats().conflicts - first;
    EXPECT_LT(extra, first);

    // Deactivated, the instance is satisfiable — the learned
    // clauses (all implied) must not over-constrain it.
    EXPECT_EQ(s.solve({~sel}), Result::Sat);
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, RestartPathIsExercised)
{
    // A pigeonhole instance big enough to outlive the first Luby
    // budget: the Unsat proof must survive restarts (and the
    // learned clauses that persist across them).
    SatSolver s;
    SatLit p[7][6];
    for (auto &pigeon : p)
        for (auto &lit : pigeon)
            lit = SatLit::make(s.newVar());
    for (auto &pigeon : p) {
        std::vector<SatLit> cl(pigeon, pigeon + 6);
        ASSERT_TRUE(s.addClause(cl));
    }
    for (int h = 0; h < 6; ++h)
        for (int i = 0; i < 7; ++i)
            for (int j = i + 1; j < 7; ++j)
                ASSERT_TRUE(s.addClause({~p[i][h], ~p[j][h]}));
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_GT(s.stats().restarts, 0u);
    EXPECT_GT(s.stats().conflicts, 100u);
}

TEST(Sat, TriviallyTrueCnf)
{
    // No clauses at all: every assignment is a model.
    SatSolver empty;
    empty.newVar();
    EXPECT_EQ(empty.solve(), Result::Sat);

    // Tautologies and root-satisfied clauses are absorbed without
    // being stored; the formula stays equivalent to the remaining
    // unit.
    SatSolver s;
    SatVar x = s.newVar();
    SatVar y = s.newVar();
    ASSERT_TRUE(s.addClause({SatLit::make(x), SatLit::make(x, true)}));
    ASSERT_TRUE(s.addClause({SatLit::make(y)}));
    ASSERT_TRUE(s.addClause({SatLit::make(y), SatLit::make(x)}));
    ASSERT_TRUE(s.addClause({SatLit::make(y), SatLit::make(y)}));
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.modelValue(y));
    EXPECT_EQ(s.solve({SatLit::make(x, true)}), Result::Sat);
    EXPECT_FALSE(s.modelValue(x));
    EXPECT_TRUE(s.modelValue(y));
}

/** xorshift PRNG so the differential test is reproducible. */
uint32_t
nextRand(uint32_t &state)
{
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
}

TEST(Sat, DifferentialAgainstBruteForce)
{
    // Random 3-CNF instances near the phase transition, checked
    // against exhaustive enumeration: same Sat/Unsat verdict, and
    // every returned model actually satisfies the formula.
    uint32_t rng = 0xf1ec5u;
    for (int iter = 0; iter < 200; ++iter) {
        int num_vars = 4 + static_cast<int>(nextRand(rng) % 7);
        int num_clauses =
            static_cast<int>(nextRand(rng) % (4 * num_vars + 1));
        std::vector<std::vector<SatLit>> clauses;
        for (int c = 0; c < num_clauses; ++c) {
            std::vector<SatLit> cl;
            int width = 1 + static_cast<int>(nextRand(rng) % 3);
            for (int k = 0; k < width; ++k)
                cl.push_back(SatLit::make(
                    static_cast<int>(nextRand(rng) % num_vars),
                    (nextRand(rng) & 1) != 0));
            clauses.push_back(cl);
        }

        bool brute_sat = false;
        for (uint32_t m = 0; m < (1u << num_vars) && !brute_sat;
             ++m) {
            bool ok = true;
            for (const auto &cl : clauses) {
                bool any = false;
                for (SatLit l : cl)
                    any |= ((m >> l.var()) & 1u) !=
                           (l.negated() ? 1u : 0u);
                ok &= any;
            }
            brute_sat = ok;
        }

        SatSolver s;
        for (int v = 0; v < num_vars; ++v)
            s.newVar();
        bool trivially_unsat = false;
        for (auto &cl : clauses)
            trivially_unsat |= !s.addClause(cl);
        Result r = s.solve();
        ASSERT_EQ(r == Result::Sat, brute_sat)
            << "iter " << iter << " vars " << num_vars << " clauses "
            << num_clauses;
        if (trivially_unsat)
            ASSERT_EQ(r, Result::Unsat);
        if (r == Result::Sat) {
            for (const auto &cl : clauses) {
                bool any = false;
                for (SatLit l : cl)
                    any |= s.modelValue(l);
                ASSERT_TRUE(any) << "model violates a clause";
            }
        }
    }
}

// ---------------------------------------------------------------
// CNF builder sanity.

TEST(CnfBuilder, AdderMatchesArithmetic)
{
    SatSolver s;
    CnfBuilder cnf(s);
    CnfBuilder::Word a = cnf.freshWord(4);
    CnfBuilder::Word b = cnf.freshWord(4);
    SatLit cout;
    CnfBuilder::Word sum = cnf.add(a, b, cnf.constFalse(), &cout);
    for (unsigned x = 0; x < 16; ++x) {
        for (unsigned y = 0; y < 16; ++y) {
            std::vector<SatLit> assume;
            for (unsigned i = 0; i < 4; ++i) {
                assume.push_back(((x >> i) & 1) != 0 ? a[i] : ~a[i]);
                assume.push_back(((y >> i) & 1) != 0 ? b[i] : ~b[i]);
            }
            ASSERT_EQ(s.solve(assume), Result::Sat);
            unsigned got = static_cast<unsigned>(cnf.modelWord(sum)) |
                           (s.modelValue(cout) ? 16u : 0u);
            ASSERT_EQ(got, x + y);
        }
    }
}

// ---------------------------------------------------------------
// Plan-vs-reference equivalence (tentpole claim (a)).

std::unique_ptr<Netlist>
buildCore(int which)
{
    switch (which) {
      case 0: return buildFlexiCore4Netlist();
      case 1: return buildFlexiCore8Netlist();
      case 2: return buildExtAcc4Netlist();
      default: return buildLoadStore4Netlist();
    }
}

TEST(PlanEquiv, AllFourCoresProvenEqual)
{
    for (int which = 0; which < 4; ++which) {
        auto nl = buildCore(which);
        EquivResult res = checkPlanEquivalence(*nl);
        EXPECT_TRUE(res.proven)
            << nl->name() << ": "
            << (res.hasCex ? res.cex.text() : res.detail);
        EXPECT_GT(res.solves, 0u) << nl->name();
    }
}

TEST(PlanEquiv, FaultedInstanceStillSelfConsistent)
{
    // evaluate() and evaluateReference() must agree on a faulted die
    // too (both apply the same force masks); the plan proof covers
    // the faulted semantics.
    auto nl = buildFlexiCore4Netlist();
    nl->injectFault({nl->findNet("acc2"), true});
    EquivResult res = checkPlanEquivalence(*nl);
    EXPECT_TRUE(res.proven)
        << (res.hasCex ? res.cex.text() : res.detail);
}

// ---------------------------------------------------------------
// A deliberately broken netlist must yield a concrete, replayable
// counterexample (acceptance requirement).

TEST(NetlistEquiv, BrokenTwinYieldsReplayableCounterexample)
{
    auto a = buildFlexiCore4Netlist();
    auto b = a->clone();

    // Break the clone: stuck-at-1 on an accumulator bit.
    NetId acc1 = b->findNet("acc1");
    ASSERT_NE(acc1, kNoNet);
    b->injectFault({acc1, true});

    EquivResult res = checkNetlistEquivalence(*a, *b);
    ASSERT_FALSE(res.proven);
    ASSERT_TRUE(res.hasCex) << res.detail;
    ASSERT_FALSE(res.cex.mismatched.empty());
    ASSERT_FALSE(res.cex.assignment.empty());
    // The rendering is a concrete input assignment.
    EXPECT_NE(res.cex.text().find("instr="), std::string::npos)
        << res.cex.text();

    // Replay the counterexample in simulation: force the state bits
    // of each instance to the assignment (state forces ride on the
    // fault machinery; the genuinely faulted net keeps its fault),
    // drive the inputs, evaluate, and observe a real difference in
    // the outputs or the effective captured next-state.
    auto drive = [&](Netlist &nl) {
        for (const auto &[name, value] : res.cex.assignment) {
            NetId net = nl.findNet(name);
            ASSERT_NE(net, kNoNet) << name;
            if (nl.primaryInputs().count(name)) {
                nl.setInput(name, value);
                continue;
            }
            bool already_faulted = false;
            for (const StuckFault &f : nl.faults())
                already_faulted |= f.net == net;
            if (!already_faulted)
                nl.injectFault({net, value});
        }
        nl.evaluate();
    };
    auto a_run = a->clone();
    auto b_run = b->clone();   // carries the acc1 stuck-at-1 fault
    // Genuine defects (as opposed to the state forces drive() adds).
    auto a_defects = a_run->faults();
    auto b_defects = b_run->faults();
    drive(*a_run);
    drive(*b_run);

    // Effective captured value: the D cone, unless a *genuine* fault
    // forces Q (the state forces only model "the state currently
    // holds this value"; they do not persist across the edge).
    auto captured = [](const Netlist &nl,
                       const std::vector<StuckFault> &defects,
                       const Netlist::DffInfo &d) {
        for (const StuckFault &f : defects)
            if (f.net == d.q)
                return f.value;
        return nl.netValue(d.d);
    };
    bool differs = false;
    for (const auto &[name, net] : a_run->primaryOutputs())
        differs |= a_run->output(name) != b_run->output(name);
    auto a_dffs = a_run->dffs();
    auto b_dffs = b_run->dffs();
    ASSERT_EQ(a_dffs.size(), b_dffs.size());
    for (size_t i = 0; i < a_dffs.size(); ++i)
        differs |= captured(*a_run, a_defects, a_dffs[i]) !=
                   captured(*b_run, b_defects, b_dffs[i]);
    EXPECT_TRUE(differs)
        << "counterexample did not reproduce in simulation: "
        << res.cex.text();
}

TEST(NetlistEquiv, RewiredGateIsCaught)
{
    // Two builds of the same toy state machine, one with a mux
    // select rewired to constant 1 before elaboration; the checker
    // must find a separating input.
    auto make = [](bool broken) {
        Netlist nl("toy");
        NetId a = nl.addInput("a");
        NetId b = nl.addInput("b");
        NetId c = nl.addInput("c");
        size_t mux = nl.numCells();
        NetId x = nl.addCell(CellType::MUX2, {a, b, c}, "m");
        if (broken)
            nl.rewireCellInput(mux, 2, nl.one());
        nl.addOutput("y", x);
        NetId q = nl.addDff(x, "state");
        nl.nameNet(q, "s0");
        nl.elaborate();
        return nl;
    };
    Netlist good = make(false);
    Netlist bad = make(true);

    EquivResult res = checkNetlistEquivalence(good, bad);
    ASSERT_FALSE(res.proven);
    ASSERT_TRUE(res.hasCex) << res.detail;
    // Separating input: sel=0 and a != b.
    bool a_val = false;
    bool b_val = false;
    bool c_val = true;
    for (const auto &[name, v] : res.cex.assignment) {
        if (name == "a")
            a_val = v;
        else if (name == "b")
            b_val = v;
        else if (name == "c")
            c_val = v;
    }
    EXPECT_FALSE(c_val);
    EXPECT_NE(a_val, b_val);
}

// ---------------------------------------------------------------
// Clone / fault identity (satellite: cloned fault-free die is
// formally identical to its template).

TEST(NetlistEquiv, CloneIsFormallyIdenticalToTemplate)
{
    for (int which = 0; which < 4; ++which) {
        auto nl = buildCore(which);
        auto die = nl->clone();
        EquivResult res = checkNetlistEquivalence(*nl, *die);
        EXPECT_TRUE(res.proven)
            << nl->name() << ": "
            << (res.hasCex ? res.cex.text() : res.detail);
    }
}

TEST(NetlistEquiv, FaultyDieIsNotIdenticalButClearedDieIs)
{
    auto nl = buildFlexiCore8Netlist();
    auto die = nl->clone();
    die->injectFault({die->findNet("acc5"), false});
    EXPECT_FALSE(checkNetlistEquivalence(*nl, *die).proven);
    die->clearFaults();
    EXPECT_TRUE(checkNetlistEquivalence(*nl, *die).proven);
}

// ---------------------------------------------------------------
// ISA equivalence (tentpole claim (b)).

class IsaEquiv : public ::testing::TestWithParam<int>
{
};

TEST_P(IsaEquiv, NetlistImplementsBehavioralSpec)
{
    static const IsaKind kinds[] = {
        IsaKind::FlexiCore4, IsaKind::FlexiCore8, IsaKind::ExtAcc4,
        IsaKind::LoadStore4};
    int which = GetParam();
    auto nl = buildCore(which);
    IsaEquivResult res = checkIsaEquivalence(*nl, kinds[which]);
    ASSERT_TRUE(res.detail.empty()) << res.detail;
    for (const IsaClassCheck &chk : res.classes)
        EXPECT_TRUE(chk.proven)
            << nl->name() << " class '" << chk.name
            << "': " << chk.cex.text();
    EXPECT_TRUE(res.proven);
    // One class per named instruction plus the whole-space "*".
    EXPECT_GE(res.classes.size(), 11u);
    EXPECT_EQ(res.classes.back().name, "*");
}

INSTANTIATE_TEST_SUITE_P(AllCores, IsaEquiv,
                         ::testing::Values(0, 1, 2, 3));

TEST(IsaEquivNegative, FaultedDieBlamesTheCorruptedState)
{
    // A die with pc bit 0 stuck at 1 cannot fetch sequentially; the
    // ISA proof must fail and the counterexample must blame the PC.
    auto broken = buildFlexiCore4Netlist();
    NetId pc0 = broken->findNet("pc_q0");
    ASSERT_NE(pc0, kNoNet);
    broken->injectFault({pc0, true});

    IsaEquivResult res =
        checkIsaEquivalence(*broken, IsaKind::FlexiCore4);
    ASSERT_TRUE(res.detail.empty()) << res.detail;
    EXPECT_FALSE(res.proven);
    bool blamed_pc = false;
    for (const IsaClassCheck &chk : res.classes) {
        if (chk.proven)
            continue;
        for (const std::string &m : chk.cex.mismatched)
            blamed_pc |= m == "pc_q0";
    }
    EXPECT_TRUE(blamed_pc);
}

// ---------------------------------------------------------------
// The lint wrapper.

TEST(EquivLint, CleanCoreIsProvenAndRendered)
{
    auto nl = buildExtAcc4Netlist();
    LintReport rep = equivLint(*nl, IsaKind::ExtAcc4);
    EXPECT_TRUE(rep.clean());
    EXPECT_TRUE(rep.fires("equiv-proven"));
    EXPECT_FALSE(rep.fires("equiv-mismatch"));
}

TEST(EquivLint, FaultedCoreReportsError)
{
    auto nl = buildFlexiCore4Netlist();
    nl->injectFault({nl->findNet("acc0"), false});
    LintReport rep = equivLint(*nl, IsaKind::FlexiCore4);
    EXPECT_FALSE(rep.clean());
    EXPECT_TRUE(rep.fires("equiv-mismatch"));
}

} // namespace
} // namespace flexi
