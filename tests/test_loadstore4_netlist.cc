/**
 * @file
 * Gate-level validation of the single-cycle LoadStore4 netlist:
 * lockstep equivalence on directed, random and real-kernel programs,
 * plus the structural two-port claim.
 */

#include <gtest/gtest.h>

#include "analysis/netlist_lint.hh"
#include "assembler/assembler.hh"
#include "common/rng.hh"
#include "kernels/golden.hh"
#include "kernels/inputs.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"

namespace flexi
{
namespace
{

TEST(LsNetlist, LintsClean)
{
    auto nl = buildLoadStore4Netlist();
    LintReport rep = lintNetlist(*nl);
    EXPECT_TRUE(rep.clean()) << rep.text(nl->name());
}

TEST(LsNetlist, BuildsWithWordInterface)
{
    auto nl = buildLoadStore4Netlist();
    EXPECT_GT(nl->numCells(), 250u);
    EXPECT_NO_THROW(nl->setBus("instr", 16, 0x1234));
}

TEST(LsNetlist, SecondPortShowsInMemoryModule)
{
    // The load-store register file carries two read muxes; its mem
    // module must be visibly larger than the accumulator cores'.
    auto acc = buildExtAcc4Netlist();
    auto ls = buildLoadStore4Netlist();
    double acc_mem = acc->moduleBreakdown().at("mem").nand2Area;
    double ls_mem = ls->moduleBreakdown().at("mem").nand2Area;
    EXPECT_GT(ls_mem, acc_mem * 1.10);
}

TEST(LsNetlist, DirectedTwoAddressProgram)
{
    Program p = assemble(IsaKind::LoadStore4, R"(
        movi r2, 9
        movi r3, 4
        add r2, r3      ; 13
        mov r1, r2
        sub r2, r3      ; 9
        mov r1, r2
        movi r4, 0
        adci r4, 0      ; carry from sub (no borrow) -> 1
        mov r1, r4
        neg r3          ; -4 = 12
        mov r1, r3
        asri r3, 2      ; 0b1111
        mov r1, r3
        mov r5, r0      ; input
        xor r5, r2
        mov r1, r5
        e: br.nzp e
    )");
    auto nl = buildLoadStore4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::LoadStore4, p, {0x6}, 200);
    EXPECT_EQ(res.errors, 0u);
    ASSERT_EQ(res.outputs.size(), 6u);
    EXPECT_EQ(res.outputs[0], 13);
    EXPECT_EQ(res.outputs[1], 9);
    EXPECT_EQ(res.outputs[2], 1);
    EXPECT_EQ(res.outputs[3], 12);
    EXPECT_EQ(res.outputs[4], 0xF);
    EXPECT_EQ(res.outputs[5], 0x6 ^ 9);
}

TEST(LsNetlist, DirectedCallRetAndFlags)
{
    Program p = assemble(IsaKind::LoadStore4, R"(
        movi r2, 0
        br.z sk
        movi r1, 15     ; must be skipped
        sk: movi r3, 5
        br.p pos
        movi r1, 14
        pos: call sr
        movi r1, 9
        e: br.nzp e
        sr: movi r1, 3
        ret
    )");
    auto nl = buildLoadStore4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::LoadStore4, p, {}, 200);
    EXPECT_EQ(res.errors, 0u);
    ASSERT_EQ(res.outputs.size(), 2u);
    EXPECT_EQ(res.outputs[0], 3);
    EXPECT_EQ(res.outputs[1], 9);
}

/** Random 16-bit instruction words: every encoding is defined. */
class LsRandomLockstep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LsRandomLockstep, MatchesSimulator)
{
    Rng rng(GetParam() * 65537 + 3);
    Program p(IsaKind::LoadStore4);
    std::vector<uint8_t> bytes;
    for (int i = 0; i < 254; ++i)   // 127 words
        bytes.push_back(static_cast<uint8_t>(rng.below(256)));
    p.appendBytes(0, bytes);
    std::vector<uint8_t> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(static_cast<uint8_t>(rng.below(16)));

    auto nl = buildLoadStore4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::LoadStore4, p, inputs, 3000);
    EXPECT_EQ(res.errors, 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsRandomLockstep,
                         ::testing::Range<uint64_t>(1, 13));

/** The real single-page LS kernels run on the gates. */
class LsKernelOnGates : public ::testing::TestWithParam<int>
{
};

TEST_P(LsKernelOnGates, KernelMatchesGolden)
{
    auto id = static_cast<KernelId>(GetParam());
    Program p = assemble(IsaKind::LoadStore4,
                         kernelSource(id, IsaKind::LoadStore4));
    ASSERT_EQ(p.numPages(), 1u);

    auto inputs = kernelInputs(id, 8, 5);
    auto nl = buildLoadStore4Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::LoadStore4, p, inputs, 30000);
    EXPECT_EQ(res.errors, 0u) << kernelName(id);

    auto expected = goldenOutputs(id, inputs);
    ASSERT_GE(res.outputs.size(), expected.size()) << kernelName(id);
    res.outputs.resize(expected.size());
    EXPECT_EQ(res.outputs, expected) << kernelName(id);
}

INSTANTIATE_TEST_SUITE_P(
    SinglePageKernels, LsKernelOnGates,
    ::testing::Values(static_cast<int>(KernelId::FirFilter),
                      static_cast<int>(KernelId::IntAvg),
                      static_cast<int>(KernelId::Thresholding),
                      static_cast<int>(KernelId::ParityCheck),
                      static_cast<int>(KernelId::XorShift8)));

} // namespace
} // namespace flexi
