/**
 * @file
 * Tests for the FlexiChip top-level API.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "kernels/golden.hh"
#include "kernels/inputs.hh"
#include "kernels/kernels.hh"
#include "sys/flexichip.hh"

namespace flexi
{
namespace
{

TEST(FlexiChip, QuickstartFlow)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    chip.loadProgram(
        "loop: load r0\n addi 3\n store r1\n nandi 0\n br loop\n");
    chip.pushInputs({1, 2, 3});
    StopReason r = chip.runUntilOutputs(3);
    EXPECT_EQ(r, StopReason::OutputTarget);
    EXPECT_EQ(chip.outputs(), (std::vector<uint8_t>{4, 5, 6}));
}

TEST(FlexiChip, RejectsDseIsaInFabricatedConstructor)
{
    EXPECT_THROW(FlexiChip(IsaKind::ExtAcc4), FatalError);
}

TEST(FlexiChip, RejectsMismatchedProgram)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    Program p(IsaKind::FlexiCore8);
    EXPECT_THROW(chip.loadProgram(std::move(p)), FatalError);
}

TEST(FlexiChip, RunWithoutProgramFails)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    EXPECT_THROW(chip.run(), FatalError);
    EXPECT_FALSE(chip.halted());
}

TEST(FlexiChip, PhysicalNumbersMatchPaperTable4)
{
    FlexiChip fc4(IsaKind::FlexiCore4);
    ChipPhysical phys = fc4.physical();
    EXPECT_NEAR(phys.areaMm2, 5.56, 0.01);          // calibrated
    EXPECT_NEAR(phys.fmaxHz, 12500.0, 1e-6);        // IO-limited
    EXPECT_NEAR(phys.staticPowerW * 1e3, 4.9, 1.0); // ~4.9 mW
    // ~360 nJ per instruction (Section 5.2).
    EXPECT_NEAR(phys.energyPerInstructionJ * 1e9, 360.0, 80.0);

    FlexiChip fc8(IsaKind::FlexiCore8);
    ChipPhysical p8 = fc8.physical();
    EXPECT_GT(p8.areaMm2, phys.areaMm2);            // Table 4
    EXPECT_LT(p8.staticPowerW, phys.staticPowerW);  // refined pull-up
}

TEST(FlexiChip, EnergyAccountingMatchesStats)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    chip.loadProgram("addi 1\n addi 1\n nandi 0\n x: br x\n");
    chip.run();
    EXPECT_TRUE(chip.halted());
    EXPECT_EQ(chip.stats().instructions, 4u);
    double t = chip.elapsedSeconds();
    EXPECT_NEAR(t, 4.0 / 12500.0, 1e-9);
    EXPECT_NEAR(chip.energyJoules(),
                chip.physical().staticPowerW * t, 1e-15);
}

TEST(FlexiChip, MultiPageKernelRunsThroughMmu)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    chip.loadProgram(kernelSource(KernelId::Calculator,
                                  IsaKind::FlexiCore4));
    auto inputs = kernelInputs(KernelId::Calculator, 5, 77);
    chip.pushInputs(inputs);
    StopReason r = chip.runUntilOutputs(10);
    EXPECT_EQ(r, StopReason::OutputTarget);
    EXPECT_EQ(chip.outputs(),
              goldenOutputs(KernelId::Calculator, inputs));
}

TEST(FlexiChip, DsePointConstructorRunsExtIsa)
{
    DesignPoint p;
    p.operands = OperandModel::Accumulator;
    p.uarch = MicroArch::Pipelined2;
    FlexiChip chip(p);
    EXPECT_EQ(chip.isa(), IsaKind::ExtAcc4);
    chip.loadProgram("loop: load r0\n addi 1\n store r1\n"
                     " br.nzp loop\n");
    chip.pushInputs({5});
    chip.runUntilOutputs(1);
    EXPECT_EQ(chip.outputs().front(), 6);
    // DSE cores run at their SP&R f_max, above the IO-limited rate.
    EXPECT_GT(chip.physical().fmaxHz, 12500.0);
}

TEST(FlexiChip, InfeasibleDsePointRejected)
{
    DesignPoint p;
    p.operands = OperandModel::LoadStore;
    p.uarch = MicroArch::SingleCycle;
    p.bus = BusWidth::Narrow8;
    EXPECT_THROW(FlexiChip{p}, FatalError);
}

TEST(FlexiChip, PhysicalReportMentionsKeyNumbers)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    std::string report = chip.physicalReport();
    EXPECT_NE(report.find("FlexiCore4"), std::string::npos);
    EXPECT_NE(report.find("mm^2"), std::string::npos);
    EXPECT_NE(report.find("static power"), std::string::npos);
}

TEST(FlexiChip, ClearOutputsBetweenBatches)
{
    FlexiChip chip(IsaKind::FlexiCore4);
    chip.loadProgram("loop: load r0\n store r1\n nandi 0\n br loop\n");
    chip.pushInputs({1, 2});
    chip.runUntilOutputs(1);
    chip.clearOutputs();
    chip.runUntilOutputs(1);
    EXPECT_EQ(chip.outputs(), (std::vector<uint8_t>{2}));
}

} // namespace
} // namespace flexi
