/**
 * @file
 * Unit tests for the two-pass assembler.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "isa/disassembler.hh"
#include "isa/encoding.hh"

namespace flexi
{
namespace
{

TEST(Assembler, SimpleProgram)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        ; set ACC to 0xF and spin
        nandi 0
        end: br end
    )");
    ASSERT_EQ(p.numPages(), 1u);
    const auto &img = p.page(0);
    ASSERT_EQ(img.size(), 2u);
    EXPECT_EQ(img[0], 0x50);          // nandi 0
    EXPECT_EQ(img[1], 0x81);          // br 1
    EXPECT_EQ(p.staticInstructions(), 2u);
    EXPECT_EQ(p.codeSizeBits(), 16u);
}

TEST(Assembler, LabelsResolveForward)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        br skip
        addi 1
        skip: addi 2
    )");
    EXPECT_EQ(p.page(0)[0], 0x82);    // br 2
    EXPECT_EQ(p.symbol("skip").addr, 2u);
}

TEST(Assembler, CommentStyles)
{
    Program p = assemble(IsaKind::FlexiCore4,
        "addi 1 ; semicolon\naddi 2 # hash\naddi 3 // slashes\n");
    EXPECT_EQ(p.staticInstructions(), 3u);
}

TEST(Assembler, NegativeImmediatesMask)
{
    Program p = assemble(IsaKind::FlexiCore4, "addi -3\n");
    EXPECT_EQ(p.page(0)[0], 0x4D);    // -3 -> 0b1101
}

TEST(Assembler, HexAndBinaryLiterals)
{
    Program p = assemble(IsaKind::FlexiCore4, "addi 0xA\nxori 0b101\n");
    EXPECT_EQ(p.page(0)[0], 0x4A);
    EXPECT_EQ(p.page(0)[1], 0x65);
}

TEST(Assembler, RegisterOperands)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         "load r2\nstore r7\nadd r3\n");
    EXPECT_EQ(p.page(0)[0], 0x32);
    EXPECT_EQ(p.page(0)[1], 0x3F);
    EXPECT_EQ(p.page(0)[2], 0x03);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble(IsaKind::FlexiCore4, "addi 1\nbogus 2\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(Assembler, UndefinedLabelFails)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, "br nowhere\n"),
                 FatalError);
}

TEST(Assembler, DuplicateLabelFails)
{
    EXPECT_THROW(
        assemble(IsaKind::FlexiCore4, "a: addi 1\na: addi 2\n"),
        FatalError);
}

TEST(Assembler, ImmediateRangeChecked)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, "addi 16\n"),
                 FatalError);
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, "addi -9\n"),
                 FatalError);
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, "load r8\n"),
                 FatalError);
}

TEST(Assembler, PageOverflowDetected)
{
    std::string src;
    for (int i = 0; i < 129; ++i)
        src += "addi 1\n";
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, src), FatalError);
}

TEST(Assembler, MultiPagePrograms)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        addi 1
        .page 1
        entry: addi 2
        br entry
    )");
    EXPECT_EQ(p.numPages(), 2u);
    EXPECT_EQ(p.page(0).size(), 1u);
    EXPECT_EQ(p.page(1).size(), 2u);
    EXPECT_EQ(p.symbol("entry").page, 1u);
    EXPECT_EQ(p.symbol("entry").addr, 0u);
}

TEST(Assembler, CrossPageBranchRejected)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, R"(
        tgt: addi 1
        .page 1
        br tgt
    )"), FatalError);
}

TEST(Assembler, OrgPadsWithZeros)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        addi 1
        .org 4
        dest: addi 2
        br dest
    )");
    EXPECT_EQ(p.page(0).size(), 6u);
    EXPECT_EQ(p.page(0)[2], 0x00);
    EXPECT_EQ(p.symbol("dest").addr, 4u);
    EXPECT_EQ(p.page(0)[5], 0x84);
}

TEST(Assembler, ByteDirective)
{
    Program p = assemble(IsaKind::FlexiCore4, ".byte 0xAB 0x12\n");
    EXPECT_EQ(p.page(0)[0], 0xAB);
    EXPECT_EQ(p.page(0)[1], 0x12);
}

TEST(Assembler, Fc8LoadByte)
{
    Program p = assemble(IsaKind::FlexiCore8, "ldb 0xC3\naddi -1\n");
    ASSERT_EQ(p.page(0).size(), 3u);
    EXPECT_EQ(p.page(0)[0], 0x08);
    EXPECT_EQ(p.page(0)[1], 0xC3);
    EXPECT_EQ(p.staticInstructions(), 2u);
    EXPECT_EQ(p.codeSizeBits(), 24u);
}

TEST(Assembler, Fc8RejectsWideAddress)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore8, "load r4\n"),
                 FatalError);
}

TEST(Assembler, ExtAccConditionCodes)
{
    Program p = assemble(IsaKind::ExtAcc4, R"(
        top: sub r2
        br.z top
        br.nzp top
        call top
        ret
    )");
    EXPECT_EQ(p.staticInstructions(), 5u);
    // sub(1) + br(2) + br(2) + call(2) + ret(1) bytes.
    EXPECT_EQ(p.page(0).size(), 8u);
}

TEST(Assembler, ExtAccUnconditionalBranchViaNzp)
{
    Program p = assemble(IsaKind::ExtAcc4, "loop: br.nzp loop\n");
    DecodeResult dec = decodeAt(IsaKind::ExtAcc4, p.page(0), 0);
    EXPECT_EQ(dec.inst.cond, kCondAlways);
}

TEST(Assembler, BaseIsaRejectsConditionCodes)
{
    EXPECT_THROW(
        assemble(IsaKind::FlexiCore4, "x: br.z x\n"), FatalError);
}

TEST(Assembler, ExtAccRejectsNand)
{
    // The revised op set replaces NAND with AND/OR (Section 6.1).
    EXPECT_THROW(assemble(IsaKind::ExtAcc4, "nandi 0\n"), FatalError);
}

TEST(Assembler, LoadStoreTwoOperands)
{
    Program p = assemble(IsaKind::LoadStore4, R"(
        movi r2, 5
        add r2, r3
        loop: br.nzp loop
    )");
    EXPECT_EQ(p.staticInstructions(), 3u);
    EXPECT_EQ(p.page(0).size(), 6u);   // 3 x 16-bit
    DecodeResult dec = decodeAt(IsaKind::LoadStore4, p.page(0), 1);
    EXPECT_EQ(dec.inst.op, Op::Add);
    EXPECT_EQ(dec.inst.rd, 2u);
    EXPECT_EQ(dec.inst.operand, 3u);
}

TEST(Assembler, LoadStoreRejectsAccumulatorOnlyOps)
{
    EXPECT_THROW(assemble(IsaKind::LoadStore4, "load r2\n"),
                 FatalError);
}

TEST(Assembler, EquConstants)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        .equ THRESHOLD 5
        .equ NEG_STEP -3
        addi THRESHOLD
        addi NEG_STEP
        .equ TARGET 2
        nandi 0
        br TARGET
    )");
    EXPECT_EQ(p.page(0)[0], 0x45);     // addi 5
    EXPECT_EQ(p.page(0)[1], 0x4D);     // addi -3
    EXPECT_EQ(p.page(0)[3], 0x82);     // br 2
}

TEST(Assembler, EquUndefinedNameFails)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, "addi NOPE\n"),
                 FatalError);
}

TEST(Assembler, EquNeedsNameAndValue)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, ".equ ONLYNAME\n"),
                 FatalError);
}

/** Round-trip: disassemble a page and reassemble it identically. */
TEST(Assembler, DisassembleRoundTrip)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        load r2
        addi 7
        nand r3
        xori 0xF
        store r4
        x: br x
    )");
    std::string listing;
    for (size_t pc = 0; pc < p.page(0).size(); ++pc) {
        DecodeResult dec = decodeAt(IsaKind::FlexiCore4, p.page(0),
                                    static_cast<unsigned>(pc));
        listing += disassemble(IsaKind::FlexiCore4, dec.inst) + "\n";
    }
    Program q = assemble(IsaKind::FlexiCore4, listing);
    EXPECT_EQ(p.page(0), q.page(0));
}

} // namespace
} // namespace flexi
