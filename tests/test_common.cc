/**
 * @file
 * Unit tests for the common utilities (logging, bitops, RNG, stats).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace flexi
{
namespace
{

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error %s", "x"), FatalError);
}

TEST(Logging, MessagesAreFormatted)
{
    try {
        fatal("value=%d name=%s", 7, "core");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value=7 name=core");
    }
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%04x", 0xAB), "00ab");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Bitops, Bits)
{
    EXPECT_EQ(bits(0b11011010u, 7, 4), 0b1101u);
    EXPECT_EQ(bits(0b11011010u, 3, 0), 0b1010u);
    EXPECT_EQ(bits(0xFFFFFFFFu, 31, 0), 0xFFFFFFFFu);
}

TEST(Bitops, Bit)
{
    EXPECT_TRUE(bit(0b1000u, 3));
    EXPECT_FALSE(bit(0b1000u, 2));
}

TEST(Bitops, MaskBits)
{
    EXPECT_EQ(maskBits(0xFFu, 4), 0xFu);
    EXPECT_EQ(maskBits(0x12345678u, 32), 0x12345678u);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0xF, 4), -1);
    EXPECT_EQ(signExtend(0x7, 4), 7);
    EXPECT_EQ(signExtend(0x8, 4), -8);
    EXPECT_EQ(signExtend(0b101, 3), -3);
    EXPECT_EQ(signExtend(0b011, 3), 3);
}

TEST(Bitops, PopcountAndParity)
{
    EXPECT_EQ(popcount(0xFF, 8), 8u);
    EXPECT_EQ(popcount(0b1011, 4), 3u);
    EXPECT_EQ(parity(0b1011, 4), 1u);
    EXPECT_EQ(parity(0b1001, 4), 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 300; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(42);
    RunningStat st;
    for (int i = 0; i < 20000; ++i)
        st.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(st.mean(), 10.0, 0.1);
    EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(42);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, PoissonMomentsAndDeterminism)
{
    // Same seed, same draws — the fleet engine's counter-keyed fault
    // streams depend on this.
    Rng a(7), b(7);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(a.poisson(0.4), b.poisson(0.4));

    // Degenerate means draw nothing and consume no entropy beyond
    // the guard.
    Rng z(3);
    EXPECT_EQ(z.poisson(0.0), 0u);
    EXPECT_EQ(z.poisson(-1.5), 0u);

    // Sample mean and variance both approach lambda (self-relative
    // tolerance — never pin absolute draw values, libm exp() may
    // differ across platforms).
    for (double mean : {0.25, 2.0, 100.0}) {
        Rng rng(42);
        RunningStat st;
        for (int i = 0; i < 20000; ++i)
            st.add(static_cast<double>(rng.poisson(mean)));
        EXPECT_NEAR(st.mean(), mean, 0.05 * mean + 0.05);
        double var = st.stddev() * st.stddev();
        EXPECT_NEAR(var, mean, 0.15 * mean + 0.1);
    }
}

TEST(RunningStat, Empty)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_EQ(st.mean(), 0.0);
    EXPECT_EQ(st.stddev(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat st;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.add(v);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    // Sample stddev of this classic set is sqrt(32/7).
    EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(st.min(), 2.0);
    EXPECT_EQ(st.max(), 9.0);
}

TEST(RunningStat, Rsd)
{
    RunningStat st;
    st.add(90.0);
    st.add(110.0);
    EXPECT_NEAR(st.rsd(), st.stddev() / 100.0, 1e-12);
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, RejectsBadWidth)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(FmtDouble, Digits)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

// ---------------------------------------------------------------
// RNG stream derivation
// ---------------------------------------------------------------

TEST(DeriveSeed, StreamsAreDistinctAndStable)
{
    // The derived seed must be a pure function of (seed, stream) —
    // this is what makes Monte-Carlo results independent of work
    // order and thread count.
    EXPECT_EQ(deriveSeed(1, 0), deriveSeed(1, 0));
    std::set<uint64_t> seen;
    for (uint64_t seed : {0ull, 1ull, 42ull, ~0ull})
        for (uint64_t stream = 0; stream < 64; ++stream)
            seen.insert(deriveSeed(seed, stream));
    EXPECT_EQ(seen.size(), 4u * 64u);
}

TEST(DeriveSeed, AdjacentStreamsDecorrelated)
{
    // Consecutive stream indices (die 17, die 18, ...) must yield
    // unrelated draws, not shifted copies of one sequence.
    Rng a(deriveSeed(5, 17));
    Rng b(deriveSeed(5, 18));
    unsigned agree = 0;
    for (int i = 0; i < 1000; ++i)
        agree += a.chance(0.5) == b.chance(0.5);
    EXPECT_GT(agree, 400u);
    EXPECT_LT(agree, 600u);
}

// ---------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(10000);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::vector<int> order;
    pool.parallelFor(5, [&](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ExceptionsPropagateToCaller)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](size_t i) {
                                      if (i == 57)
                                          fatal("bad unit");
                                  }),
                 FatalError);
    // The pool survives a failed job and runs the next one.
    std::atomic<int> n{0};
    pool.parallelFor(8, [&](size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, FreeFunctionNestsInline)
{
    // A parallelFor issued from inside a parallelFor worker must not
    // deadlock on the shared global pool; nested calls degrade to
    // inline execution.
    std::atomic<int> n{0};
    parallelFor(4, 2, [&](size_t) {
        parallelFor(4, 2, [&](size_t) { n.fetch_add(1); });
    });
    EXPECT_EQ(n.load(), 16);
}

TEST(ThreadPool, ZeroItemsIsANoop)
{
    std::atomic<int> n{0};
    parallelFor(0, 3, [&](size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 0);
}

} // namespace
} // namespace flexi
