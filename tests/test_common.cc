/**
 * @file
 * Unit tests for the common utilities (logging, bitops, RNG, stats).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace flexi
{
namespace
{

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error %s", "x"), FatalError);
}

TEST(Logging, MessagesAreFormatted)
{
    try {
        fatal("value=%d name=%s", 7, "core");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value=7 name=core");
    }
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%04x", 0xAB), "00ab");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Bitops, Bits)
{
    EXPECT_EQ(bits(0b11011010u, 7, 4), 0b1101u);
    EXPECT_EQ(bits(0b11011010u, 3, 0), 0b1010u);
    EXPECT_EQ(bits(0xFFFFFFFFu, 31, 0), 0xFFFFFFFFu);
}

TEST(Bitops, Bit)
{
    EXPECT_TRUE(bit(0b1000u, 3));
    EXPECT_FALSE(bit(0b1000u, 2));
}

TEST(Bitops, MaskBits)
{
    EXPECT_EQ(maskBits(0xFFu, 4), 0xFu);
    EXPECT_EQ(maskBits(0x12345678u, 32), 0x12345678u);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0xF, 4), -1);
    EXPECT_EQ(signExtend(0x7, 4), 7);
    EXPECT_EQ(signExtend(0x8, 4), -8);
    EXPECT_EQ(signExtend(0b101, 3), -3);
    EXPECT_EQ(signExtend(0b011, 3), 3);
}

TEST(Bitops, PopcountAndParity)
{
    EXPECT_EQ(popcount(0xFF, 8), 8u);
    EXPECT_EQ(popcount(0b1011, 4), 3u);
    EXPECT_EQ(parity(0b1011, 4), 1u);
    EXPECT_EQ(parity(0b1001, 4), 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 300; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(42);
    RunningStat st;
    for (int i = 0; i < 20000; ++i)
        st.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(st.mean(), 10.0, 0.1);
    EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(42);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RunningStat, Empty)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_EQ(st.mean(), 0.0);
    EXPECT_EQ(st.stddev(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat st;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.add(v);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    // Sample stddev of this classic set is sqrt(32/7).
    EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(st.min(), 2.0);
    EXPECT_EQ(st.max(), 9.0);
}

TEST(RunningStat, Rsd)
{
    RunningStat st;
    st.add(90.0);
    st.add(110.0);
    EXPECT_NEAR(st.rsd(), st.stddev() / 100.0, 1e-12);
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, RejectsBadWidth)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(FmtDouble, Digits)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

} // namespace
} // namespace flexi
