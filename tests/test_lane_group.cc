/**
 * @file
 * Differential tests for the wide-lane compiled evaluator.
 *
 * The contract under test: every lane of a LaneGroup is bit-identical
 * to a scalar Netlist instance carrying the same fault state and
 * stimulus — against the compiled evaluation plan (evaluate()), the
 * cell-by-cell interpreter (evaluateReference()), and the 64-lane
 * LaneBatch — on all four fabricated cores, at every group width
 * (1 word / 4 words / 8 words) and at the word-boundary lane counts
 * (1, 63, 64, 65, 255, 256, 512), down to per-lane toggle counts.
 * The group lockstep harness must likewise reproduce runLockstep()
 * per lane, including its pad-cone exposeState() shortcut.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lane_batch.hh"
#include "netlist/lane_group.hh"
#include "netlist/lockstep.hh"
#include "netlist/netlist.hh"
#include "yield/test_program.hh"

namespace flexi
{
namespace
{

struct Design
{
    const char *name;
    std::unique_ptr<Netlist> (*build)();
};

const Design kDesigns[] = {
    {"fc4", &buildFlexiCore4Netlist},
    {"fc8", &buildFlexiCore8Netlist},
    {"extacc4", &buildExtAcc4Netlist},
    {"loadstore4", &buildLoadStore4Netlist},
};

/**
 * Drive a @p width lane group and @p width scalar mirrors with the
 * same random stimulus and per-lane fault schedule for @p cycles
 * cycles, asserting every net of every lane matches after each
 * evaluate. Scalar mirrors run the compiled plan; a sample of lanes
 * additionally carries an evaluateReference() mirror so the word
 * evaluator is pitted against both scalar oracles at once.
 */
void
runDifferential(const Design &design, unsigned width, int cycles,
                uint64_t seed)
{
    auto golden = design.build();
    LaneGroup group(*golden, width);
    ASSERT_EQ(group.lanes(), width);
    ASSERT_EQ(group.words(), LaneGroup::wordsFor(width));
    group.enableToggles(true);

    // Per-lane scalar mirrors of the compiled plan, plus reference
    // (interpreter) mirrors on the first, middle and last lanes.
    std::vector<std::unique_ptr<Netlist>> mirrors(width);
    std::vector<std::unique_ptr<Netlist>> refs(width);
    for (unsigned lane = 0; lane < width; ++lane) {
        mirrors[lane] = golden->clone();
        if (lane == 0 || lane == width / 2 || lane == width - 1)
            refs[lane] = golden->clone();
    }

    std::vector<std::string> input_names;
    for (const auto &[in_name, net] : golden->primaryInputs())
        input_names.push_back(in_name);
    size_t nets = golden->numNets();
    size_t dffs = golden->numDffs() ? golden->numDffs() : 1;
    unsigned words = group.words();

    Rng rng(deriveSeed(seed, width));
    std::array<uint64_t, LaneGroup::kMaxWords> bits{};
    for (int cycle = 0; cycle < cycles; ++cycle) {
        // Independent random stimulus per lane on every input.
        for (const auto &in_name : input_names) {
            for (unsigned w = 0; w < words; ++w)
                bits[w] = rng.next();
            group.setInputLanes(in_name, bits.data());
            for (unsigned lane = 0; lane < width; ++lane) {
                bool v = (bits[lane / 64] >> (lane % 64)) & 1ull;
                mirrors[lane]->setInput(in_name, v);
                if (refs[lane])
                    refs[lane]->setInput(in_name, v);
            }
        }

        // Per-lane fault traffic: stuck-ats land on random lanes
        // early, transients open short absolute-cycle windows
        // mid-run, latch upsets flip, then everything is cleared so
        // the post-clear state is compared too.
        if (cycle % 6 == 2 && cycle < cycles / 2) {
            for (unsigned lane = 0; lane < width; ++lane) {
                if (!rng.chance(0.4))
                    continue;
                StuckFault f;
                f.net = static_cast<NetId>(rng.below(nets));
                f.value = rng.chance(0.5);
                group.injectFault(lane, f);
                mirrors[lane]->injectFault(f);
                if (refs[lane])
                    refs[lane]->injectFault(f);
            }
        }
        if (cycle % 9 == 4) {
            for (unsigned lane = 0; lane < width; ++lane) {
                if (!rng.chance(0.4))
                    continue;
                TransientFault t;
                t.net = static_cast<NetId>(rng.below(nets));
                t.value = rng.chance(0.5);
                t.fromCycle = group.cycle() + rng.below(3);
                t.untilCycle = t.fromCycle + 1 + rng.below(3);
                group.injectTransient(lane, t);
                mirrors[lane]->injectTransient(t);
                if (refs[lane])
                    refs[lane]->injectTransient(t);
            }
        }
        if (cycle % 11 == 7) {
            for (unsigned lane = 0; lane < width; ++lane) {
                if (!rng.chance(0.3))
                    continue;
                size_t d = rng.below(dffs);
                group.flipDff(lane, d);
                mirrors[lane]->flipDff(d);
                if (refs[lane])
                    refs[lane]->flipDff(d);
            }
        }
        if (cycle == (2 * cycles) / 3) {
            group.clearFaults();
            group.clearTransients();
            for (unsigned lane = 0; lane < width; ++lane) {
                mirrors[lane]->clearFaults();
                mirrors[lane]->clearTransients();
                if (refs[lane]) {
                    refs[lane]->clearFaults();
                    refs[lane]->clearTransients();
                }
            }
        }

        group.evaluate();
        group.clockEdge();
        group.evaluate();
        for (unsigned lane = 0; lane < width; ++lane) {
            mirrors[lane]->evaluate();
            mirrors[lane]->clockEdge();
            mirrors[lane]->evaluate();
            if (refs[lane]) {
                refs[lane]->evaluateReference();
                refs[lane]->clockEdge();
                refs[lane]->evaluateReference();
            }
        }
        ASSERT_EQ(group.cycle(), mirrors[0]->cycle());

        for (unsigned lane = 0; lane < width; ++lane) {
            for (NetId n = 0; n < static_cast<NetId>(nets); ++n) {
                bool b = group.netValue(n, lane);
                if (b != mirrors[lane]->netValue(n)) {
                    FAIL() << design.name << " width " << width
                           << " cycle " << cycle << " lane " << lane
                           << " net " << n << ": group " << b
                           << " vs scalar plan";
                }
                if (refs[lane] && b != refs[lane]->netValue(n)) {
                    FAIL() << design.name << " width " << width
                           << " cycle " << cycle << " lane " << lane
                           << " net " << n << ": group " << b
                           << " vs reference";
                }
            }
        }
    }

    // Per-lane toggle counts, accumulated over the whole faulted
    // run, against both oracles.
    for (unsigned lane = 0; lane < width; ++lane) {
        ASSERT_EQ(group.toggleCounts(lane),
                  mirrors[lane]->toggleCounts())
            << design.name << " width " << width << " lane " << lane;
        if (refs[lane])
            ASSERT_EQ(group.toggleCounts(lane),
                      refs[lane]->toggleCounts())
                << design.name << " width " << width << " lane "
                << lane << " (reference)";
    }
}

TEST(LaneGroup, OneWordWidthsMatchScalarAndReferenceAllCores)
{
    // W=1: the LaneBatch-equivalent group widths, plus the scalar
    // degenerate case and the dead-top-lane boundary.
    for (const auto &design : kDesigns) {
        SCOPED_TRACE(design.name);
        runDifferential(design, 1, 30, 0x6AB1u);
        runDifferential(design, 63, 30, 0x6AB63u);
        runDifferential(design, 64, 30, 0x6AB64u);
    }
}

TEST(LaneGroup, FourWordWidthsMatchScalarAndReferenceAllCores)
{
    // W=4: one lane past a word boundary (65 -> three dead words
    // and a nearly-dead second word) and the full/partial 256-lane
    // group. Dead-word bits must never leak into live lanes.
    for (const auto &design : kDesigns) {
        SCOPED_TRACE(design.name);
        runDifferential(design, 65, 20, 0x6AB65u);
        runDifferential(design, 255, 14, 0x6AB255u);
        runDifferential(design, 256, 14, 0x6AB256u);
    }
}

TEST(LaneGroup, EightWordFullWidthMatchesScalarAndReferenceAllCores)
{
    // W=8: the full 512-lane group the drivers default to.
    for (const auto &design : kDesigns) {
        SCOPED_TRACE(design.name);
        runDifferential(design, 512, 10, 0x6AB512u);
    }
}

TEST(LaneGroup, MatchesLaneBatchBitForBit)
{
    // The 64-lane word evaluator is the proven PR-5 oracle: a W=1
    // group fed the same stimulus and faults must match it on every
    // net and every toggle counter, cycle by cycle.
    auto golden = buildFlexiCore4Netlist();
    unsigned width = 64;
    LaneGroup group(*golden, width);
    LaneBatch batch(*golden, width);
    group.enableToggles(true);
    batch.enableToggles(true);

    std::vector<std::string> input_names;
    for (const auto &[in_name, net] : golden->primaryInputs())
        input_names.push_back(in_name);
    size_t nets = golden->numNets();
    size_t dffs = golden->numDffs();

    Rng rng(0xBA7C4u);
    for (int cycle = 0; cycle < 40; ++cycle) {
        for (const auto &in_name : input_names) {
            uint64_t bits = rng.next();
            group.setInputLanes(in_name, &bits);
            batch.setInputLanes(in_name, bits);
        }
        if (cycle == 3) {
            for (unsigned lane = 0; lane < width; lane += 3) {
                StuckFault f;
                f.net = static_cast<NetId>(rng.below(nets));
                f.value = rng.chance(0.5);
                group.injectFault(lane, f);
                batch.injectFault(lane, f);
            }
        }
        if (cycle == 9) {
            for (unsigned lane = 1; lane < width; lane += 5) {
                TransientFault t;
                t.net = static_cast<NetId>(rng.below(nets));
                t.value = rng.chance(0.5);
                t.fromCycle = group.cycle() + 1;
                t.untilCycle = t.fromCycle + 2;
                group.injectTransient(lane, t);
                batch.injectTransient(lane, t);
            }
        }
        if (cycle == 15) {
            for (unsigned lane = 2; lane < width; lane += 7) {
                size_t d = rng.below(dffs);
                group.flipDff(lane, d);
                batch.flipDff(lane, d);
            }
        }

        group.evaluate();
        group.clockEdge();
        group.evaluate();
        batch.evaluate();
        batch.clockEdge();
        batch.evaluate();

        for (unsigned lane = 0; lane < width; ++lane)
            for (NetId n = 0; n < static_cast<NetId>(nets); ++n)
                if (group.netValue(n, lane) !=
                    batch.netValue(n, lane))
                    FAIL() << "cycle " << cycle << " lane " << lane
                           << " net " << n;
    }
    for (unsigned lane = 0; lane < width; ++lane)
        ASSERT_EQ(group.toggleCounts(lane), batch.toggleCounts(lane))
            << "lane " << lane;
}

TEST(LaneGroup, ResetRestoresPowerOnState)
{
    auto golden = buildFlexiCore4Netlist();
    LaneGroup group(*golden, 130);
    StuckFault f{static_cast<NetId>(7), true};
    group.injectFault(129, f);
    for (int i = 0; i < 10; ++i) {
        group.evaluate();
        group.clockEdge();
    }
    uint64_t before = group.cycle();
    group.reset();
    EXPECT_EQ(group.cycle(), before)
        << "cycle() is monotonic across reset, as on the scalar";

    // A freshly-built scalar with the same fault must agree from the
    // first post-reset cycle.
    auto mirror = golden->clone();
    mirror->injectFault(f);
    mirror->reset();
    group.evaluate();
    mirror->evaluate();
    for (NetId n = 0; n < static_cast<NetId>(golden->numNets()); ++n)
        ASSERT_EQ(group.netValue(n, 129), mirror->netValue(n))
            << "net " << n;
}

TEST(LaneGroup, ExposeStateMatchesFullEvaluateOnPads)
{
    // exposeState(padCone) must read back exactly what a full
    // evaluate() would on the cone's pads, on every core, with
    // per-lane faults in play.
    for (const auto &design : kDesigns) {
        SCOPED_TRACE(design.name);
        auto golden = design.build();
        BusHandle pc = golden->outputBus("pc", 7);
        unsigned data_w = 0;
        while (golden->findNet("oport" + std::to_string(data_w)) !=
               kNoNet)
            ++data_w;
        BusHandle oport = golden->outputBus("oport", data_w);

        unsigned width = 70;
        LaneGroup a(*golden, width);
        LaneGroup b(*golden, width);
        LaneGroup::PadCone cone = a.padCone({&pc, &oport});
        ASSERT_FALSE(cone.steps.empty());

        std::vector<std::string> input_names;
        for (const auto &[in_name, net] : golden->primaryInputs())
            input_names.push_back(in_name);

        Rng rng(0xC0DEu);
        std::array<uint64_t, LaneGroup::kMaxWords> bits{};
        for (int cycle = 0; cycle < 25; ++cycle) {
            if (cycle == 2) {
                for (unsigned lane = 0; lane < width; lane += 4) {
                    StuckFault f;
                    f.net = static_cast<NetId>(
                        rng.below(golden->numNets()));
                    f.value = rng.chance(0.5);
                    a.injectFault(lane, f);
                    b.injectFault(lane, f);
                }
            }
            for (const auto &in_name : input_names) {
                for (unsigned k = 0; k < a.words(); ++k)
                    bits[k] = rng.next();
                a.setInputLanes(in_name, bits.data());
                b.setInputLanes(in_name, bits.data());
            }
            a.evaluate();
            a.clockEdge();
            a.evaluate();   // full post-edge evaluate
            b.evaluate();
            b.clockEdge();
            b.exposeState(cone);   // narrowed post-edge evaluate
            for (unsigned lane = 0; lane < width; ++lane) {
                ASSERT_EQ(a.bus(pc, lane), b.bus(pc, lane))
                    << "cycle " << cycle << " lane " << lane;
                ASSERT_EQ(a.bus(oport, lane), b.bus(oport, lane))
                    << "cycle " << cycle << " lane " << lane;
            }
        }
    }
}

TEST(LaneGroup, LockstepGroupMatchesScalarLockstep)
{
    // The wafer-study inner loop at a width crossing the word
    // boundary: per-lane error totals from one group lockstep pass
    // (pad-cone exposeState shortcut and all) equal scalar
    // runLockstep() runs with the same per-die fault sets.
    auto golden = buildFlexiCore4Netlist();
    Program prog = makeTestProgram(IsaKind::FlexiCore4, 3);
    auto inputs = makeTestInputs(IsaKind::FlexiCore4, 128, 3);
    const uint64_t kBudget = 300;

    Rng rng(0xD1E5EEDull);
    unsigned width = 96;
    LaneGroup group(*golden, width);
    std::vector<std::vector<StuckFault>> faults(width);
    for (unsigned lane = 0; lane < width; ++lane) {
        // Lane 0 stays fault-free; others get 1-3 stuck-ats.
        unsigned n = lane ? 1 + static_cast<unsigned>(rng.below(3))
                          : 0;
        for (unsigned k = 0; k < n; ++k) {
            StuckFault f;
            f.net =
                static_cast<NetId>(rng.below(golden->numNets()));
            f.value = rng.chance(0.5);
            faults[lane].push_back(f);
            group.injectFault(lane, f);
        }
    }

    LockstepGroupResult res = runLockstepGroup(
        group, *golden, IsaKind::FlexiCore4, prog, inputs, kBudget,
        /*early_exit=*/false);

    for (unsigned lane = 0; lane < width; ++lane) {
        auto die = golden->clone();
        for (const StuckFault &f : faults[lane])
            die->injectFault(f);
        LockstepResult scalar = runLockstep(
            *die, IsaKind::FlexiCore4, prog, inputs, kBudget);
        EXPECT_EQ(res.errors[lane], scalar.errors) << "lane " << lane;
        EXPECT_EQ(res.laneClean(lane), scalar.errors == 0)
            << "lane " << lane;
    }
    EXPECT_TRUE(res.laneClean(0))
        << "fault-free lane 0 must stay clean";

    // Early exit must not change which lanes are clean, only how
    // much error counting the dirty lanes receive.
    LaneGroup group2(*golden, width);
    for (unsigned lane = 0; lane < width; ++lane)
        for (const StuckFault &f : faults[lane])
            group2.injectFault(lane, f);
    LockstepGroupResult fast = runLockstepGroup(
        group2, *golden, IsaKind::FlexiCore4, prog, inputs, kBudget,
        /*early_exit=*/true);
    EXPECT_EQ(fast.activeMask, res.activeMask);
    for (unsigned lane = 0; lane < width; ++lane) {
        EXPECT_LE(fast.errors[lane], res.errors[lane]) << lane;
        if (res.laneClean(lane))
            EXPECT_EQ(fast.errors[lane], 0u) << lane;
    }
}

TEST(LaneGroup, ByteBusPathsMatchGenericPaths)
{
    // The lockstep fast paths — setBusLanesBytes, gatherBusBytes,
    // busMismatch, and the fused driveBusFromTable fetch — must be
    // indistinguishable from the generic setBusLanes / gatherBus /
    // per-lane bus() routes, across group widths and with per-lane
    // faults in play.
    auto golden = buildFlexiCore4Netlist();
    BusHandle instr = golden->inputBus("instr", 8);
    BusHandle iport = golden->inputBus("iport", 4);
    BusHandle pc = golden->outputBus("pc", 7);

    // Fetch table padded to the full 1 << addr_width contract.
    Rng table_rng(0xF00Du);
    std::vector<uint8_t> table(size_t(1) << pc.width());
    for (auto &entry : table)
        entry = static_cast<uint8_t>(table_rng.next());

    for (unsigned width : {46u, 64u, 255u, 512u}) {
        SCOPED_TRACE(width);
        LaneGroup a(*golden, width);   // generic paths
        LaneGroup b(*golden, width);   // byte / fused paths
        Rng rng(0xBEEF00ull + width);
        for (unsigned lane = 0; lane < width; lane += 5) {
            StuckFault f;
            f.net = static_cast<NetId>(rng.below(golden->numNets()));
            f.value = rng.chance(0.5);
            a.injectFault(lane, f);
            b.injectFault(lane, f);
        }

        std::vector<uint32_t> vals32(LaneGroup::kMaxLanes);
        std::vector<uint8_t> vals8(LaneGroup::kMaxLanes);
        std::vector<uint32_t> pc32(LaneGroup::kMaxLanes);
        std::array<uint8_t, LaneGroup::kMaxLanes> pc_a{}, pc_b{};
        for (int cycle = 0; cycle < 12; ++cycle) {
            for (unsigned lane = 0; lane < width; ++lane) {
                vals8[lane] = static_cast<uint8_t>(rng.next());
                vals32[lane] = vals8[lane];
            }
            a.setBusLanes(instr, vals32.data());
            b.setBusLanesBytes(instr, vals8.data());
            a.setBus(iport, cycle & 0xF);
            b.setBus(iport, cycle & 0xF);
            a.evaluate();
            a.clockEdge();
            a.evaluate();
            b.evaluate();
            b.clockEdge();
            b.evaluate();

            // gatherBusBytes == gatherBus == per-lane bus().
            a.gatherBus(pc, pc32.data());
            a.gatherBusBytes(pc, pc_a.data());
            b.gatherBusBytes(pc, pc_b.data());
            for (unsigned lane = 0; lane < width; ++lane) {
                ASSERT_EQ(pc32[lane], uint32_t(pc_a[lane]))
                    << "cycle " << cycle << " lane " << lane;
                ASSERT_EQ(pc_a[lane], pc_b[lane])
                    << "cycle " << cycle << " lane " << lane;
                ASSERT_EQ(a.bus(pc, lane), unsigned(pc_a[lane]))
                    << "cycle " << cycle << " lane " << lane;
            }

            // busMismatch == per-lane compare; a value the bus
            // cannot represent mismatches in every live lane.
            unsigned probe =
                static_cast<unsigned>(rng.below(table.size()));
            std::array<uint64_t, LaneGroup::kMaxWords> diff{};
            std::array<uint64_t, LaneGroup::kMaxWords> over{};
            a.busMismatch(pc, probe, diff.data());
            a.busMismatch(pc, probe | (1u << pc.width()),
                          over.data());
            for (unsigned lane = 0; lane < width; ++lane) {
                bool bit = (diff[lane / 64] >> (lane % 64)) & 1;
                ASSERT_EQ(bit, a.bus(pc, lane) != probe)
                    << "cycle " << cycle << " lane " << lane;
                ASSERT_TRUE((over[lane / 64] >> (lane % 64)) & 1)
                    << "cycle " << cycle << " lane " << lane;
            }

            // driveBusFromTable == gather + table lookup + scatter.
            for (unsigned lane = 0; lane < width; ++lane)
                vals8[lane] = table[pc_a[lane]];
            a.setBusLanesBytes(instr, vals8.data());
            b.driveBusFromTable(pc, instr, table.data());
            a.evaluate();
            a.clockEdge();
            b.evaluate();
            b.clockEdge();
            for (NetId n = 0;
                 n < static_cast<NetId>(golden->numNets()); ++n)
                for (unsigned lane = 0; lane < width; lane += 3)
                    ASSERT_EQ(a.netValue(n, lane),
                              b.netValue(n, lane))
                        << "cycle " << cycle << " net " << n
                        << " lane " << lane;
        }
    }
}

/**
 * Round-trip fuzz for the per-lane DFF snapshot API across every
 * backend: states harvested from a live faulted scalar run —
 * including saves taken while a transient window is open and forcing
 * nets — restored into arbitrary lanes of LaneBatch and LaneGroup
 * words of every width must read back bit-identically, without
 * perturbing neighbouring lanes, and regardless of any fault traffic
 * the destination lane itself carries.
 */
TEST(LaneGroup, DffStateRoundTripAcrossWidthsAndMidTransient)
{
    const unsigned kWidths[] = {1, 63, 64, 256, 512};
    for (const auto &design : kDesigns) {
        SCOPED_TRACE(design.name);
        auto golden = design.build();
        size_t nets = golden->numNets();
        size_t dffs = golden->numDffs();
        std::vector<std::string> input_names;
        for (const auto &[in_name, net] : golden->primaryInputs())
            input_names.push_back(in_name);

        // Harvest snapshots from a live faulted run: every third
        // cycle runs under an open transient window, so half the
        // saves are genuinely mid-window.
        Rng rng(0xD77F57A7Eull ^ nets);
        std::unique_ptr<Netlist> die = golden->clone();
        std::vector<std::vector<uint8_t>> snaps;
        for (int cycle = 0; cycle < 24; ++cycle) {
            if (cycle % 3 == 0) {
                TransientFault t;
                t.net = static_cast<NetId>(rng.below(nets));
                t.value = rng.chance(0.5);
                t.fromCycle = die->cycle();
                t.untilCycle = die->cycle() + 4;
                die->injectTransient(t);
            }
            for (const auto &in_name : input_names)
                die->setInput(in_name, rng.chance(0.5));
            die->evaluate();
            die->clockEdge();
            if (cycle % 11 == 7)
                die->flipDff(rng.below(dffs ? dffs : 1));
            snaps.push_back(die->saveDffState());
        }
        // Plus pure fuzz states, beyond what the core can reach.
        for (int i = 0; i < 8; ++i) {
            std::vector<uint8_t> s(dffs);
            for (auto &b : s)
                b = rng.chance(0.5);
            snaps.push_back(std::move(s));
        }

        for (unsigned width : kWidths) {
            SCOPED_TRACE(width);
            LaneGroup group(*golden, width);
            LaneBatch batch(*golden, std::min(width, 64u));
            // Fault traffic on the destination does not bleed into
            // the snapshot path.
            StuckFault f{static_cast<NetId>(rng.below(nets)),
                         rng.chance(0.5)};
            group.injectFault(rng.below(width), f);
            TransientFault t;
            t.net = static_cast<NetId>(rng.below(nets));
            t.value = true;
            t.fromCycle = 0;
            t.untilCycle = 1000;
            group.injectTransient(rng.below(width), t);

            // Fill every lane with a known state, then spot-check
            // that restores read back exactly and neighbours kept
            // their own bits.
            std::vector<unsigned> laneSnap(width);
            for (unsigned lane = 0; lane < width; ++lane) {
                laneSnap[lane] =
                    static_cast<unsigned>(rng.below(snaps.size()));
                group.restoreDffState(lane, snaps[laneSnap[lane]]);
                unsigned blane = lane % batch.lanes();
                batch.restoreDffState(blane, snaps[laneSnap[lane]]);
                ASSERT_EQ(batch.saveDffState(blane),
                          snaps[laneSnap[lane]]);
            }
            for (unsigned lane = 0; lane < width; ++lane)
                ASSERT_EQ(group.saveDffState(lane),
                          snaps[laneSnap[lane]])
                    << "lane " << lane;

            // A restored lane evolves exactly like a scalar die
            // restored from the same snapshot (no fault traffic on
            // the compared lane).
            LaneGroup clean(*golden, width);
            unsigned lane = width / 2;
            const auto &snap = snaps[snaps.size() / 2];
            clean.restoreDffState(lane, snap);
            std::unique_ptr<Netlist> mirror = golden->clone();
            mirror->restoreDffState(snap);
            for (int cycle = 0; cycle < 4; ++cycle) {
                for (const auto &in_name : input_names) {
                    bool v = rng.chance(0.5);
                    std::array<uint64_t, LaneGroup::kMaxWords>
                        bits{};
                    if (v)
                        bits.fill(~0ull);
                    clean.setInputLanes(in_name, bits.data());
                    mirror->setInput(in_name, v);
                }
                clean.evaluate();
                clean.clockEdge();
                mirror->evaluate();
                mirror->clockEdge();
            }
            ASSERT_EQ(clean.saveDffState(lane),
                      mirror->saveDffState());
        }
    }
}

} // namespace
} // namespace flexi
