/**
 * @file
 * Edge-case and property tests cutting across modules: PC wrap,
 * IO corner semantics, MMU protocol corners, assembler limits,
 * exhaustive cell truth tables, and simulator determinism.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/inputs.hh"
#include "kernels/kernels.hh"
#include "kernels/runner.hh"
#include "netlist/builder.hh"
#include "netlist/netlist.hh"
#include "sim/core_sim.hh"
#include "sim/mmu.hh"

namespace flexi
{
namespace
{

// ---------------------------------------------------------------
// Simulator corner semantics
// ---------------------------------------------------------------

TEST(SimEdge, PcWrapsAtPageBoundary)
{
    // Fill a page so execution runs off the end: the 7-bit PC wraps
    // to 0 (and the fetch beyond the image reads idle-bus zeros,
    // which decode as add r0).
    Program p(IsaKind::FlexiCore4);
    std::vector<uint8_t> image(kPageSize, 0x41);   // addi 1
    p.appendBytes(0, image);
    FifoEnvironment env;
    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.run(kPageSize + 3);
    EXPECT_EQ(sim.pc(), 3u);
    EXPECT_FALSE(sim.halted());
}

TEST(SimEdge, Fc8LdbStraddlingEndReadsZero)
{
    // An ldb prefix as the last byte fetches its immediate from the
    // idle bus (0).
    Program p(IsaKind::FlexiCore8);
    p.appendBytes(0, {0x41, 0x08});   // addi 1 | ldb <beyond image>
    FifoEnvironment env;
    TimingConfig cfg{IsaKind::FlexiCore8, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.run(2);
    EXPECT_EQ(sim.acc(), 0);
    EXPECT_EQ(sim.pc(), 3u);
}

TEST(SimEdge, ConditionalSelfBranchOnlyHaltsWhenTaken)
{
    // A self-branch that is NOT taken must fall through, not halt.
    Program p = assemble(IsaKind::FlexiCore4,
                         "addi 1\nx: br x\naddi 2\nnandi 0\n"
                         "y: br y\n");
    FifoEnvironment env;
    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    StopReason r = sim.run(100);
    EXPECT_EQ(r, StopReason::Halted);
    EXPECT_EQ(sim.acc(), 0xF);   // reached the nandi before halting
    EXPECT_EQ(sim.stats().instructions, 5u);
}

TEST(SimEdge, ExtXchWithInputPort)
{
    // xch r0: ACC <- input bus; the write back is dropped (the input
    // register is not writeable).
    Program p = assemble(IsaKind::ExtAcc4,
                         "li 5\nxch r0\nstore r2\nxch r0\nstore r3\n"
                         "e: br.nzp e\n");
    FifoEnvironment env;
    env.pushInputs({0x9, 0x3});
    TimingConfig cfg{IsaKind::ExtAcc4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.run(100);
    EXPECT_EQ(sim.mem(2), 0x9);
    EXPECT_EQ(sim.mem(3), 0x3);
}

TEST(SimEdge, CallOverwritesReturnRegister)
{
    // The single return register (Section 6.1: 8 flip-flops) means
    // a second call clobbers the first return address.
    Program p = assemble(IsaKind::ExtAcc4, R"(
        call a
        li 1            ; never reached: ret returns into b's caller
        e: br.nzp e
        a: call b
        li 2
        store r2
        e2: br.nzp e2
        b: ret          ; returns to just after `call b`
    )");
    FifoEnvironment env;
    TimingConfig cfg{IsaKind::ExtAcc4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.run(100);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.mem(2), 2);
}

TEST(SimEdge, LoadStoreWriteToInputRegisterDropped)
{
    Program p = assemble(IsaKind::LoadStore4,
                         "movi r0, 7\nmov r2, r0\ne: br.nzp e\n");
    FifoEnvironment env;
    env.pushInputs({0x4});
    TimingConfig cfg{IsaKind::LoadStore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.run(100);
    // r0 reads sample the bus, not the attempted write.
    EXPECT_EQ(sim.mem(2), 0x4);
}

TEST(SimEdge, DeterministicAcrossRuns)
{
    for (KernelId id : allKernels()) {
        TimingConfig cfg{IsaKind::FlexiCore4,
                         MicroArch::SingleCycle, BusWidth::Wide};
        KernelRun a = runKernel(id, cfg, 12, 99);
        KernelRun b = runKernel(id, cfg, 12, 99);
        EXPECT_EQ(a.outputs, b.outputs) << kernelName(id);
        EXPECT_EQ(a.stats.cycles, b.stats.cycles) << kernelName(id);
    }
}

// ---------------------------------------------------------------
// MMU protocol corners
// ---------------------------------------------------------------

TEST(MmuEdge, PendingSwitchOverwritten)
{
    // Arming twice before a branch: the later page wins (the 4-bit
    // register is simply rewritten).
    Mmu mmu;
    mmu.onOutput(kMmuEscape0);
    mmu.onOutput(kMmuEscape1);
    mmu.onOutput(2);
    mmu.onOutput(kMmuEscape0);
    mmu.onOutput(kMmuEscape1);
    mmu.onOutput(5);
    EXPECT_EQ(mmu.takePendingPage(), 5);
}

TEST(MmuEdge, PageValueMaskedToFourBits)
{
    Mmu mmu;
    mmu.onOutput(kMmuEscape0);
    mmu.onOutput(kMmuEscape1);
    mmu.onOutput(0xF);
    EXPECT_EQ(mmu.takePendingPage(), 15);
}

TEST(MmuEdge, EscapeAfterDataEscapeZero)
{
    // Data 0xA then a real escape: the data byte flushes through and
    // the escape still arms (longest-match re-arm).
    Mmu mmu;
    EXPECT_TRUE(mmu.onOutput(0x7).size() == 1);
    EXPECT_TRUE(mmu.onOutput(kMmuEscape0).empty());
    auto flushed = mmu.onOutput(kMmuEscape0);   // re-arm, flush one
    ASSERT_EQ(flushed.size(), 1u);
    mmu.onOutput(kMmuEscape1);
    mmu.onOutput(3);
    EXPECT_TRUE(mmu.pending());
}

TEST(MmuEdge, SwitchToEmptyPageExecutesIdleBus)
{
    // Software can select a page with no content; fetches read zero
    // (add r0) — defined, non-crashing behaviour.
    Program p = assemble(IsaKind::FlexiCore4, R"(
        addi 0xA
        store r1
        addi -5
        store r1
        addi 2          ; page 7 (empty)
        store r1
        nandi 0
        br 0
    )");
    FifoEnvironment io;
    PagedEnvironment paged(io);
    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, paged);
    StopReason r = sim.run(500);
    EXPECT_EQ(r, StopReason::Budget);   // spins on add r0 forever
    EXPECT_EQ(sim.page(), 7u);
}

// ---------------------------------------------------------------
// Assembler limits
// ---------------------------------------------------------------

TEST(AsmEdge, ExactlyFullPageAssembles)
{
    std::string src;
    for (unsigned i = 0; i < kPageSize; ++i)
        src += "addi 1\n";
    Program p = assemble(IsaKind::FlexiCore4, src);
    EXPECT_EQ(p.page(0).size(), kPageSize);
}

TEST(AsmEdge, TwoByteInstructionAtPageEndRejected)
{
    // 127 one-byte instructions + one two-byte branch = 129 entries.
    std::string src;
    for (unsigned i = 0; i < kPageSize - 1; ++i)
        src += "li 1\n";
    src += "x: br.nzp x\n";
    EXPECT_THROW(assemble(IsaKind::ExtAcc4, src), FatalError);
}

TEST(AsmEdge, PageDirectiveRange)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, ".page 16\n"),
                 FatalError);
    EXPECT_THROW(assemble(IsaKind::FlexiCore4, ".page -1\n"),
                 FatalError);
    EXPECT_NO_THROW(assemble(IsaKind::FlexiCore4,
                             ".page 15\naddi 1\n"));
}

TEST(AsmEdge, RevisitingPagesAppends)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        addi 1
        .page 1
        addi 2
        .page 0
        addi 3
    )");
    EXPECT_EQ(p.page(0).size(), 2u);
    EXPECT_EQ(p.page(1).size(), 1u);
    EXPECT_EQ(p.page(0)[1], 0x43);
}

TEST(AsmEdge, CrossPageTargetViaAtSign)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        nandi 0
        br @entry
        .page 1
        .org 5
        entry: addi 1
    )");
    EXPECT_EQ(p.page(0)[1], 0x85);   // br 5 (address bits only)
}

TEST(AsmEdge, LabelsMayContainDigitsAndUnderscores)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         "loop_2x: addi 1\nnandi 0\nbr loop_2x\n");
    EXPECT_TRUE(p.hasSymbol("loop_2x"));
}

TEST(AsmEdge, OrgBackwardsRejected)
{
    EXPECT_THROW(assemble(IsaKind::FlexiCore4,
                          "addi 1\naddi 2\n.org 1\n"),
                 FatalError);
}

// ---------------------------------------------------------------
// Exhaustive cell truth tables (all 13 library cells)
// ---------------------------------------------------------------

TEST(CellTruth, AllCombinationalCellsExhaustive)
{
    for (const CellInfo &info : cellLibrary()) {
        if (isSequential(info.type))
            continue;
        Netlist nl("truth");
        std::vector<NetId> ins;
        for (unsigned i = 0; i < info.numInputs; ++i)
            ins.push_back(nl.addInput("i" + std::to_string(i)));
        NetId y = nl.addCell(info.type, ins, "m");
        nl.addOutput("y", y);
        nl.elaborate();

        for (unsigned v = 0; v < (1u << info.numInputs); ++v) {
            nl.setBus("i", info.numInputs, v);
            nl.evaluate();
            bool a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
            bool expect = false;
            switch (info.type) {
              case CellType::INV_X1:
              case CellType::INV_X2: expect = !a; break;
              case CellType::BUF_X1:
              case CellType::BUF_X2: expect = a; break;
              case CellType::NAND2: expect = !(a && b); break;
              case CellType::NAND3: expect = !(a && b && c); break;
              case CellType::NOR2: expect = !(a || b); break;
              case CellType::NOR3: expect = !(a || b || c); break;
              case CellType::XOR2: expect = a != b; break;
              case CellType::XNOR2: expect = a == b; break;
              case CellType::MUX2: expect = c ? b : a; break;
              default: FAIL();
            }
            EXPECT_EQ(nl.output("y"), expect)
                << info.name << " input " << v;
        }
    }
}

/** Property: the shared or-reduce / and-reduce trees match C++. */
TEST(CellTruth, ReduceTreesMatchReference)
{
    for (unsigned width : {1u, 2u, 3u, 5u, 8u, 11u}) {
        Netlist nl("reduce");
        Builder b(nl, "m");
        std::vector<NetId> ins;
        for (unsigned i = 0; i < width; ++i)
            ins.push_back(nl.addInput("i" + std::to_string(i)));
        nl.addOutput("and", b.andReduce(ins));
        nl.addOutput("or", b.orReduce(ins));
        nl.elaborate();
        Rng rng(width);
        for (int rep = 0; rep < 64; ++rep) {
            unsigned v = static_cast<unsigned>(
                rng.below(1ull << width));
            nl.setBus("i", width, v);
            nl.evaluate();
            EXPECT_EQ(nl.output("and"),
                      v == (1u << width) - 1u);
            EXPECT_EQ(nl.output("or"), v != 0);
        }
    }
}

} // namespace
} // namespace flexi
