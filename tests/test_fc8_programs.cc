/**
 * @file
 * FlexiCore8 application programs: golden-model equivalence on the
 * architectural simulator AND on the gate-level netlist (lockstep),
 * exercising LOAD BYTE, sign-extended immediates and the 2-register
 * data memory.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "kernels/fc8_programs.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"
#include "sim/core_sim.hh"

namespace flexi
{
namespace
{

std::vector<Fc8Program>
allPrograms()
{
    return {Fc8Program::Thresholding, Fc8Program::Parity,
            Fc8Program::Checksum, Fc8Program::IntAvg};
}

TEST(Fc8Programs, AllAssembleToOnePage)
{
    for (Fc8Program id : allPrograms()) {
        Program p = assemble(IsaKind::FlexiCore8,
                             fc8ProgramSource(id));
        EXPECT_EQ(p.numPages(), 1u) << fc8ProgramName(id);
        EXPECT_GT(p.staticInstructions(), 4u);
    }
}

TEST(Fc8Programs, GoldenThresholdSemantics)
{
    auto out = fc8GoldenOutputs(Fc8Program::Thresholding,
                                {0, 100, 101, 200, 255});
    EXPECT_EQ(out, (std::vector<uint8_t>{0, 0, 101, 200, 255}));
}

TEST(Fc8Programs, GoldenParityKnownValues)
{
    auto out = fc8GoldenOutputs(Fc8Program::Parity,
                                {0x00, 0x01, 0xFF, 0xB4});
    EXPECT_EQ(out, (std::vector<uint8_t>{0, 1, 0, 0}));
}

TEST(Fc8Programs, GoldenChecksumWraps)
{
    auto out = fc8GoldenOutputs(Fc8Program::Checksum, {200, 100});
    EXPECT_EQ(out, (std::vector<uint8_t>{200, 44}));
}

class Fc8ProgramVsGolden : public ::testing::TestWithParam<int>
{
};

TEST_P(Fc8ProgramVsGolden, SimulatorMatchesGolden)
{
    auto id = static_cast<Fc8Program>(GetParam());
    Program p = assemble(IsaKind::FlexiCore8, fc8ProgramSource(id));
    auto inputs = fc8ProgramInputs(id, 40, 11);

    FifoEnvironment env;
    env.pushInputs(inputs);
    TimingConfig cfg{IsaKind::FlexiCore8, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.runUntilOutputs([&] { return env.outputs().size(); },
                        inputs.size(), 300000);
    EXPECT_EQ(env.outputs(), fc8GoldenOutputs(id, inputs))
        << fc8ProgramName(id);
}

TEST_P(Fc8ProgramVsGolden, GateLevelMatchesGolden)
{
    auto id = static_cast<Fc8Program>(GetParam());
    Program p = assemble(IsaKind::FlexiCore8, fc8ProgramSource(id));
    auto inputs = fc8ProgramInputs(id, 8, 23);

    auto nl = buildFlexiCore8Netlist();
    LockstepResult res =
        runLockstep(*nl, IsaKind::FlexiCore8, p, inputs, 20000);
    EXPECT_EQ(res.errors, 0u) << fc8ProgramName(id);

    auto expected = fc8GoldenOutputs(id, inputs);
    ASSERT_GE(res.outputs.size(), expected.size());
    res.outputs.resize(expected.size());
    EXPECT_EQ(res.outputs, expected) << fc8ProgramName(id);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, Fc8ProgramVsGolden,
    ::testing::Range(0, static_cast<int>(kNumFc8Programs)));

/** Exhaustive parity sweep over the whole input byte space. */
TEST(Fc8Programs, ParityExhaustive)
{
    Program p = assemble(IsaKind::FlexiCore8,
                         fc8ProgramSource(Fc8Program::Parity));
    std::vector<uint8_t> inputs(256);
    for (unsigned i = 0; i < 256; ++i)
        inputs[i] = static_cast<uint8_t>(i);

    FifoEnvironment env;
    env.pushInputs(inputs);
    TimingConfig cfg{IsaKind::FlexiCore8, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.runUntilOutputs([&] { return env.outputs().size(); }, 256,
                        300000);
    EXPECT_EQ(env.outputs(),
              fc8GoldenOutputs(Fc8Program::Parity, inputs));
}

/** Exhaustive thresholding sweep over the whole input byte space. */
TEST(Fc8Programs, ThresholdingExhaustive)
{
    Program p = assemble(IsaKind::FlexiCore8,
                         fc8ProgramSource(Fc8Program::Thresholding));
    std::vector<uint8_t> inputs(256);
    for (unsigned i = 0; i < 256; ++i)
        inputs[i] = static_cast<uint8_t>(i);

    FifoEnvironment env;
    env.pushInputs(inputs);
    TimingConfig cfg{IsaKind::FlexiCore8, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    sim.runUntilOutputs([&] { return env.outputs().size(); }, 256,
                        300000);
    EXPECT_EQ(env.outputs(),
              fc8GoldenOutputs(Fc8Program::Thresholding, inputs));
}

} // namespace
} // namespace flexi
