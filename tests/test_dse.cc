/**
 * @file
 * Tests for the design-space exploration models (Section 6):
 * area/timing/power, code-size measurement and estimation, and the
 * kernel-level performance/energy evaluation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dse/area_model.hh"
#include "dse/code_size.hh"
#include "dse/perf_model.hh"
#include "dse/sweep.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{
namespace
{

DesignPoint
basePoint()
{
    DesignPoint p;
    p.features = IsaFeatures::none();
    return p;
}

DesignPoint
point(OperandModel om, MicroArch ua,
      BusWidth bus = BusWidth::Wide,
      IsaFeatures f = IsaFeatures::revised())
{
    DesignPoint p;
    p.operands = om;
    p.uarch = ua;
    p.bus = bus;
    p.features = f;
    return p;
}

// ---------------------------------------------------------------
// Design points
// ---------------------------------------------------------------

TEST(DesignPoint, RevisedFeatureSet)
{
    // Section 6.1's final op set: coalescing, shifter, flags, xch,
    // subroutines — no multiplier, no doubled memory.
    IsaFeatures f = IsaFeatures::revised();
    EXPECT_TRUE(f.coalescing);
    EXPECT_TRUE(f.barrelShifter);
    EXPECT_TRUE(f.branchFlags);
    EXPECT_TRUE(f.exchange);
    EXPECT_TRUE(f.subroutines);
    EXPECT_FALSE(f.multiplier);
    EXPECT_FALSE(f.doubleMemory);
}

TEST(DesignPoint, Names)
{
    EXPECT_EQ(point(OperandModel::Accumulator,
                    MicroArch::SingleCycle).name(), "Acc SC");
    EXPECT_EQ(point(OperandModel::LoadStore,
                    MicroArch::Pipelined2).name(), "LS P");
    EXPECT_EQ(point(OperandModel::LoadStore, MicroArch::MultiCycle,
                    BusWidth::Narrow8).name(), "LS MC (8b bus)");
}

TEST(DesignPoint, BusFeasibility)
{
    // Section 6.2: with an 8-bit bus only the multicycle load-store
    // machine can exist.
    EXPECT_FALSE(point(OperandModel::LoadStore,
                       MicroArch::SingleCycle,
                       BusWidth::Narrow8).feasible());
    EXPECT_FALSE(point(OperandModel::LoadStore,
                       MicroArch::Pipelined2,
                       BusWidth::Narrow8).feasible());
    EXPECT_TRUE(point(OperandModel::LoadStore, MicroArch::MultiCycle,
                      BusWidth::Narrow8).feasible());
    EXPECT_TRUE(point(OperandModel::Accumulator,
                      MicroArch::SingleCycle,
                      BusWidth::Narrow8).feasible());
}

TEST(DesignPoint, SixDseCores)
{
    auto cores = dseCores();
    EXPECT_EQ(cores.size(), 6u);
    for (const auto &c : cores)
        EXPECT_TRUE(c.feasible());
}

// ---------------------------------------------------------------
// Area model
// ---------------------------------------------------------------

TEST(AreaModel, BaseMatchesNetlist)
{
    // The analytical base point must track the structural netlist.
    auto nl = buildFlexiCore4Netlist();
    double model = baseCoreArea();
    double netlist = nl->totalNand2Area();
    EXPECT_NEAR(model / netlist, 1.0, 0.10);
}

TEST(AreaModel, MemoryDominatesBaseCore)
{
    // Table 2: the data memory is the largest module.
    AreaBreakdown a = areaOf(basePoint());
    EXPECT_GT(a.memory, a.alu);
    EXPECT_GT(a.memory, a.pc);
    EXPECT_GT(a.memory, a.acc);
    EXPECT_GT(a.memory, a.decoder);
    EXPECT_GT(a.memory / a.total(), 0.40);
}

TEST(AreaModel, SecondPortCostsTens0fPercent)
{
    // Section 3.5: +39 % (8 words) / +25 % (4 words) — the model
    // reproduces the tens-of-percent magnitude and the word-count
    // ordering (more words => second port relatively pricier).
    double one8 = memoryArea(8, 4, 1);
    double two8 = memoryArea(8, 4, 2);
    double one4 = memoryArea(4, 8, 1);
    double two4 = memoryArea(4, 8, 2);
    double rel8 = two8 / one8 - 1.0;
    double rel4 = two4 / one4 - 1.0;
    EXPECT_GT(rel8, 0.15);
    EXPECT_LT(rel8, 0.45);
    EXPECT_GT(rel8, rel4);
}

TEST(AreaModel, ExtensionCostsMatchFigure9)
{
    double base = baseCoreArea();
    auto rel = [&](IsaFeatures f) {
        DesignPoint p = basePoint();
        p.features = f;
        return areaOf(p).total() / base;
    };

    IsaFeatures adc, shift, flags, mul, xch, mem2;
    adc.coalescing = true;
    shift.barrelShifter = true;
    flags.branchFlags = true;
    mul.multiplier = true;
    xch.exchange = true;
    mem2.doubleMemory = true;

    // "modest (< 10%) increase in area associated with the
    // coalescing instructions, barrel shifter, and condition codes"
    EXPECT_LT(rel(adc), 1.10);
    EXPECT_LT(rel(shift), 1.10);
    EXPECT_LT(rel(flags), 1.10);
    EXPECT_LT(rel(xch), 1.05);
    // "high gate count overhead for the multiplier"
    EXPECT_GT(rel(mul), 1.15);
    // "the larger register file is not a viable change ... due to
    // its high (> 70%) area cost"
    EXPECT_GT(rel(mem2), 1.60);
}

TEST(AreaModel, RevisedCoreWithinPaperBand)
{
    // "an area overhead of 9-37 %" for the DSE cores.
    double base = baseCoreArea();
    for (const auto &p : dseCores()) {
        double rel = areaOf(p).total() / base;
        EXPECT_GT(rel, 1.05) << p.name();
        EXPECT_LT(rel, 1.60) << p.name();
    }
}

TEST(AreaModel, Figure12Orderings)
{
    auto area = [&](OperandModel om, MicroArch ua) {
        return areaOf(point(om, ua)).total();
    };
    using enum OperandModel;
    using enum MicroArch;
    // The single-cycle accumulator machine is the smallest.
    EXPECT_LT(area(Accumulator, SingleCycle),
              area(Accumulator, Pipelined2));
    EXPECT_LT(area(Accumulator, SingleCycle),
              area(LoadStore, SingleCycle));
    // Acc + pipeline stage still beats the single-cycle load-store.
    EXPECT_LT(area(Accumulator, Pipelined2),
              area(LoadStore, SingleCycle));
    // Multicycle is the largest accumulator design.
    EXPECT_GT(area(Accumulator, MultiCycle),
              area(Accumulator, Pipelined2));
    // On load-store, multicycle drops the second port and wins.
    EXPECT_LT(area(LoadStore, MultiCycle),
              area(LoadStore, Pipelined2));
    EXPECT_LT(area(LoadStore, MultiCycle),
              area(LoadStore, SingleCycle));
}

TEST(AreaModel, CellCountScalesWithArea)
{
    EXPECT_GT(cellCountOf(point(OperandModel::LoadStore,
                                MicroArch::Pipelined2)),
              cellCountOf(basePoint()));
}

// ---------------------------------------------------------------
// Timing / power models
// ---------------------------------------------------------------

TEST(TimingModel, PipeliningShortensCycle)
{
    using enum OperandModel;
    using enum MicroArch;
    EXPECT_GT(fmaxOf(point(Accumulator, Pipelined2)),
              fmaxOf(point(Accumulator, SingleCycle)));
    EXPECT_GT(fmaxOf(point(Accumulator, MultiCycle)),
              fmaxOf(point(Accumulator, SingleCycle)));
}

TEST(TimingModel, LoadStoreSlightlySlowerCycle)
{
    using enum MicroArch;
    EXPECT_LT(fmaxOf(point(OperandModel::LoadStore, SingleCycle)),
              fmaxOf(point(OperandModel::Accumulator, SingleCycle)));
}

TEST(TimingModel, BaseFmaxAboveTestClock)
{
    // The fabricated parts are IO-limited to 12.5 kHz; the silicon
    // itself closes timing above that at 4.5 V.
    EXPECT_GT(fmaxOf(basePoint()), 12500.0);
}

TEST(PowerModel, PowerTracksArea)
{
    double p_base = staticPowerOf(basePoint());
    double p_ls = staticPowerOf(point(OperandModel::LoadStore,
                                      MicroArch::Pipelined2));
    double a_base = areaOf(basePoint()).total();
    double a_ls = areaOf(point(OperandModel::LoadStore,
                               MicroArch::Pipelined2)).total();
    EXPECT_NEAR(p_ls / p_base, a_ls / a_base, 1e-9);
}

TEST(PowerModel, BaseNearFlexiCore4Measurement)
{
    // FC4 measured ~4.9 mW at 4.5 V (Table 4).
    EXPECT_NEAR(staticPowerOf(basePoint()) * 1e3, 4.9, 1.0);
}

// ---------------------------------------------------------------
// Code-size models
// ---------------------------------------------------------------

TEST(CodeSize, MeasuredBaseMatchesAssembler)
{
    CodeSize cs = measuredCodeSize(KernelId::Thresholding,
                                   IsaKind::FlexiCore4);
    EXPECT_GT(cs.instructions, 8u);
    EXPECT_EQ(cs.bits, cs.instructions * 8);
}

TEST(CodeSize, IdiomCensusFindsKnownPatterns)
{
    // XorShift8 contains the shared right-shift dispatch; IntAvg
    // contains one HALVE block; Calculator has compares + zero test.
    IdiomStats xs = analyzeBaseKernel(KernelId::XorShift8);
    EXPECT_GE(xs.halveBlocks, 1u);
    EXPECT_EQ(xs.sharedDispatch, 1u);

    IdiomStats avg = analyzeBaseKernel(KernelId::IntAvg);
    EXPECT_EQ(avg.halveBlocks, 1u);

    IdiomStats calc = analyzeBaseKernel(KernelId::Calculator);
    EXPECT_GE(calc.compares, 3u);
    EXPECT_GE(calc.zeroTests, 1u);
    EXPECT_TRUE(calc.hasMulLoop);

    IdiomStats thr = analyzeBaseKernel(KernelId::Thresholding);
    EXPECT_GE(thr.ubrs, 2u);
    EXPECT_EQ(thr.halveBlocks, 0u);
}

TEST(CodeSize, EstimatesNeverGrowCode)
{
    for (KernelId id : allKernels()) {
        CodeSize base = measuredCodeSize(id, IsaKind::FlexiCore4);
        CodeSize est = estimatedCodeSize(id, IsaFeatures::revised());
        EXPECT_LE(est.instructions, base.instructions)
            << kernelName(id);
        EXPECT_GE(est.instructions, 4u);
    }
}

TEST(CodeSize, ShifterHelpsShiftHeavyKernelsMost)
{
    IsaFeatures shift;
    shift.barrelShifter = true;
    auto saving = [&](KernelId id) {
        CodeSize base = measuredCodeSize(id, IsaKind::FlexiCore4);
        CodeSize est = estimatedCodeSize(id, shift);
        return 1.0 - static_cast<double>(est.instructions) /
                         base.instructions;
    };
    // Figure 10: XorShift8 / IntAvg gain most from right shifts.
    EXPECT_GT(saving(KernelId::IntAvg), saving(KernelId::FirFilter));
    EXPECT_GT(saving(KernelId::XorShift8),
              saving(KernelId::Thresholding));
}

TEST(CodeSize, DoubleMemoryLeavesCodeAlone)
{
    // Figure 9: "Increasing the size of data-memory does not effect
    // test code size."
    IsaFeatures mem2;
    mem2.doubleMemory = true;
    EXPECT_DOUBLE_EQ(relativeSuiteCodeSize(mem2), 1.0);
}

TEST(CodeSize, RevisedEstimateAgreesWithMeasuredExt)
{
    // The per-idiom estimate for the full revised set must land in
    // the neighborhood of the real ExtAcc4 measurements.
    size_t base = 0, ext = 0;
    for (KernelId id : allKernels()) {
        base += measuredCodeSize(id, IsaKind::FlexiCore4).instructions;
        ext += measuredCodeSize(id, IsaKind::ExtAcc4).instructions;
    }
    double measured = static_cast<double>(ext) / base;
    double estimated = relativeSuiteCodeSize(IsaFeatures::revised());
    EXPECT_NEAR(estimated, measured, 0.20);
}

TEST(CodeSize, LoadStoreDensestInInstructions)
{
    // Figure 12: the load-store ISA has the best instruction-count
    // density (extra expressivity of the second operand), though its
    // instructions are twice as wide.
    size_t ext = 0, ls = 0, ls_bits = 0, ext_bits = 0;
    for (KernelId id : allKernels()) {
        ext += measuredCodeSize(id, IsaKind::ExtAcc4).instructions;
        ls += measuredCodeSize(id, IsaKind::LoadStore4).instructions;
        ext_bits += measuredCodeSize(id, IsaKind::ExtAcc4).bits;
        ls_bits += measuredCodeSize(id, IsaKind::LoadStore4).bits;
    }
    EXPECT_LT(ls, ext);
    EXPECT_GT(ls_bits, ext_bits / 2);   // but not in bits
}

// ---------------------------------------------------------------
// Perf / energy evaluation
// ---------------------------------------------------------------

TEST(PerfModel, DseCoresBeatBaselineOnShiftKernels)
{
    auto base = evalFlexiCore4Baseline(KernelId::IntAvg, 10, 7);
    auto acc_p = evalDsePoint(KernelId::IntAvg,
                              point(OperandModel::Accumulator,
                                    MicroArch::Pipelined2), 10, 7);
    EXPECT_LT(acc_p.timeS, base.timeS / 2);
    EXPECT_LT(acc_p.energyJ, base.energyJ * 0.6);
}

TEST(PerfModel, MultiCycleWorstEnergyPerOperandModel)
{
    // Figure 13: within each operand model the multicycle core has
    // the worst energy.
    for (OperandModel om :
         {OperandModel::Accumulator, OperandModel::LoadStore}) {
        auto sc = evalDsePoint(KernelId::Thresholding,
                               point(om, MicroArch::SingleCycle), 10,
                               3);
        auto mc = evalDsePoint(KernelId::Thresholding,
                               point(om, MicroArch::MultiCycle), 10,
                               3);
        EXPECT_GT(mc.energyJ, sc.energyJ);
    }
}

TEST(PerfModel, NarrowBusPenalizesAccumulatorOnlyMildly)
{
    // Figure 13: with the 8-bit bus the accumulator cores survive
    // (only br/call pay an extra beat).
    auto wide = evalDsePoint(KernelId::FirFilter,
                             point(OperandModel::Accumulator,
                                   MicroArch::Pipelined2), 10, 3);
    auto narrow = evalDsePoint(
        KernelId::FirFilter,
        point(OperandModel::Accumulator, MicroArch::Pipelined2,
              BusWidth::Narrow8), 10, 3);
    EXPECT_GE(narrow.cycles, wide.cycles);
    EXPECT_LT(narrow.cycles, wide.cycles * 3 / 2);
}

TEST(PerfModel, InfeasiblePointRejected)
{
    EXPECT_THROW(
        evalDsePoint(KernelId::IntAvg,
                     point(OperandModel::LoadStore,
                           MicroArch::SingleCycle, BusWidth::Narrow8),
                     5, 1),
        FatalError);
}

TEST(PerfModel, BaselineEnergyPerInstructionNearPaper)
{
    // ~360 nJ per instruction at 4.5 V (Section 5.2) — our baseline
    // runs at its SP&R f_max, so energy/instr is the same order.
    auto base = evalFlexiCore4Baseline(KernelId::Thresholding, 10, 1);
    double nj_per_instr =
        base.energyJ / static_cast<double>(base.instructions) * 1e9;
    EXPECT_GT(nj_per_instr, 100.0);
    EXPECT_LT(nj_per_instr, 600.0);
}

// ---------------------------------------------------------------
// Design-space sweep
// ---------------------------------------------------------------

TEST(Sweep, BaselinePointIsUnity)
{
    SweepConfig cfg;
    cfg.workUnits = 2;
    cfg.threads = 1;
    auto all = sweepDesignSpace(cfg);
    ASSERT_FALSE(all.empty());

    // The FlexiCore4 point (no features, accumulator, single-cycle)
    // is the normalization anchor: all ratios exactly 1.
    bool found = false;
    for (const auto &c : all) {
        if (c.point.features == IsaFeatures::none() &&
            c.point.operands == OperandModel::Accumulator &&
            c.point.uarch == MicroArch::SingleCycle) {
            found = true;
            EXPECT_DOUBLE_EQ(c.area, 1.0);
            EXPECT_DOUBLE_EQ(c.codeRel, 1.0);
            EXPECT_DOUBLE_EQ(c.energyRel, 1.0);
        }
    }
    EXPECT_TRUE(found);
    // At least one point is Pareto-optimal, and a dominated point is
    // never marked.
    unsigned pareto = 0;
    for (const auto &c : all) {
        pareto += c.pareto;
        for (const auto &other : all)
            if (other.dominates(c))
                EXPECT_FALSE(c.pareto);
    }
    EXPECT_GT(pareto, 0u);
}

TEST(Sweep, ThreadCountDoesNotChangeResults)
{
    SweepConfig cfg;
    cfg.workUnits = 2;
    cfg.threads = 1;
    auto serial = sweepDesignSpace(cfg);
    cfg.threads = 4;
    auto threaded = sweepDesignSpace(cfg);

    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].point.name(), threaded[i].point.name());
        EXPECT_EQ(serial[i].point.features.tag(),
                  threaded[i].point.features.tag());
        EXPECT_EQ(serial[i].area, threaded[i].area);
        EXPECT_EQ(serial[i].codeRel, threaded[i].codeRel);
        EXPECT_EQ(serial[i].energyRel, threaded[i].energyRel);
        EXPECT_EQ(serial[i].pareto, threaded[i].pareto);
    }
}

TEST(Sweep, NominalVoltageRejectsNothing)
{
    SweepConfig cfg;
    cfg.workUnits = 2;
    cfg.threads = 1;
    SweepResult result = runSweep(cfg);
    EXPECT_TRUE(result.rejected.empty());
    EXPECT_FALSE(result.candidates.empty());
    for (const auto &c : result.candidates) {
        StaticTimingCheck t =
            checkDesignPointTiming(c.point, cfg.vddOperating);
        EXPECT_TRUE(t.feasible) << c.point.name();
        EXPECT_GE(t.slackS, 0.0);
    }
}

TEST(Sweep, LowVoltageStaticallyRejectsSlowPoints)
{
    SweepConfig cfg;
    cfg.workUnits = 2;
    cfg.threads = 1;
    cfg.vddOperating = kVddLow;
    SweepResult result = runSweep(cfg);

    // The timing gate must reject at least one design point at 3 V:
    // the slow single-cycle machines blow the 80 us period once the
    // unit delay stretches, exactly like the FlexiCore8 3 V cliff.
    ASSERT_FALSE(result.rejected.empty());
    for (const auto &r : result.rejected) {
        EXPECT_FALSE(r.timing.feasible);
        EXPECT_LT(r.timing.slackS, 0.0);
        EXPECT_GT(r.timing.delayUnits, 0.0);
        // Netlist-backed rejections carry a named worst path.
        if (std::string(r.timing.source) == "netlist")
            EXPECT_FALSE(r.timing.worstPath.empty());
    }

    // Points backed by real netlists report STA-derived paths; the
    // base FlexiCore4 itself still closes timing at 3 V.
    for (const auto &c : result.candidates) {
        if (c.point.features == IsaFeatures::none() &&
            c.point.operands == OperandModel::Accumulator &&
            c.point.uarch == MicroArch::SingleCycle) {
            StaticTimingCheck t =
                checkDesignPointTiming(c.point, kVddLow);
            EXPECT_STREQ(t.source, "netlist");
            EXPECT_TRUE(t.feasible);
        }
    }

    // Nothing is both rejected and evaluated.
    for (const auto &r : result.rejected)
        for (const auto &c : result.candidates)
            EXPECT_FALSE(c.point.name() == r.point.name() &&
                         c.point.features.tag() ==
                             r.point.features.tag());
}

TEST(Sweep, PropertyGateRejectsFalsifiedPoints)
{
    // bound:pc/7/1 demands the PC never leave 0 — false on every
    // core the moment an instruction retires, so the property gate
    // must reject every point before simulation, next to (and
    // distinguishable from) the timing gate.
    SweepConfig cfg;
    cfg.workUnits = 2;
    cfg.threads = 1;
    cfg.properties = {"bound:pc/7/1"};
    cfg.propertyDepth = 3;
    SweepResult result = runSweep(cfg);
    EXPECT_TRUE(result.candidates.empty());
    ASSERT_FALSE(result.rejected.empty());
    for (const auto &r : result.rejected) {
        EXPECT_FALSE(r.property.empty()) << r.point.name();
        EXPECT_NE(r.property.find("bound:pc/7/1"), std::string::npos)
            << r.property;
    }
}

TEST(Sweep, PropertyGatePassesProvablePoints)
{
    // A 7-bit PC is always below 128: k-induction closes at k=1 and
    // the sweep runs exactly as if no property were configured.
    SweepConfig cfg;
    cfg.workUnits = 2;
    cfg.threads = 1;
    cfg.properties = {"bound:pc/7/128"};
    cfg.propertyDepth = 2;
    SweepResult gated = runSweep(cfg);
    EXPECT_TRUE(gated.rejected.empty());

    cfg.properties.clear();
    SweepResult plain = runSweep(cfg);
    ASSERT_EQ(gated.candidates.size(), plain.candidates.size());
    for (size_t i = 0; i < plain.candidates.size(); ++i) {
        EXPECT_EQ(gated.candidates[i].point.name(),
                  plain.candidates[i].point.name());
        EXPECT_DOUBLE_EQ(gated.candidates[i].energyRel,
                         plain.candidates[i].energyRel);
    }
}

} // namespace
} // namespace flexi
