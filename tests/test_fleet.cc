/**
 * @file
 * Unit tests for the field-fleet lifecycle engine and its
 * checkpoint format: thread/batch-lane determinism, kill/resume
 * bit-identity, fail-closed decoding, and the fleet invariants
 * (histogram row sums, escalation-ladder accounting, salvaged-part
 * deployment).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "fleet/checkpoint.hh"
#include "fleet/fleet.hh"

namespace flexi
{
namespace
{

/** Small, fast campaign shared by most tests. */
FleetConfig
smallConfig()
{
    FleetConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 7;
    cfg.numDies = 48;
    cfg.epochs = 3;
    cfg.workUnits = 1;
    cfg.transientsPerEpoch = 0.6;
    cfg.flipsPerEpoch = 0.2;
    return cfg;
}

void
expectDieEq(const FleetDie &a, const FleetDie &b, size_t d)
{
    EXPECT_EQ(a.poolIndex, b.poolIndex) << "die " << d;
    EXPECT_EQ(a.bin, b.bin) << "die " << d;
    EXPECT_EQ(a.alive, b.alive) << "die " << d;
    EXPECT_EQ(a.repages, b.repages) << "die " << d;
    EXPECT_EQ(a.epochsRun, b.epochsRun) << "die " << d;
    EXPECT_EQ(a.outcomes, b.outcomes) << "die " << d;
    EXPECT_EQ(a.lifeCycles, b.lifeCycles) << "die " << d;
    EXPECT_EQ(a.digest, b.digest) << "die " << d;
    EXPECT_EQ(a.dffCount, b.dffCount) << "die " << d;
    EXPECT_EQ(a.dffBits, b.dffBits) << "die " << d;
}

void
expectStateEq(const FleetState &a, const FleetState &b)
{
    EXPECT_EQ(a.epochsDone, b.epochsDone);
    EXPECT_EQ(a.deaths, b.deaths);
    ASSERT_EQ(a.dies.size(), b.dies.size());
    for (size_t d = 0; d < a.dies.size(); ++d)
        expectDieEq(a.dies[d], b.dies[d], d);
    EXPECT_EQ(a.epochOutcomes, b.epochOutcomes);
    EXPECT_EQ(a.binOutcomes, b.binOutcomes);
    EXPECT_EQ(fleetDigest(a), fleetDigest(b));
}

/** The structural invariants every finished campaign must satisfy. */
void
checkInvariants(const FleetState &st)
{
    const FleetConfig &cfg = st.config;
    ASSERT_EQ(st.epochOutcomes.size(), st.epochsDone);

    uint64_t dead = 0;
    std::array<uint64_t, kNumFaultOutcomes> total{};
    for (const FleetDie &die : st.dies) {
        if (!die.alive) {
            ++dead;
            // A die is only pulled once its re-page budget is blown
            // (a pull during the final epoch still ran every epoch).
            EXPECT_GT(die.repages, cfg.maxRepages);
            EXPECT_LE(die.epochsRun, cfg.epochs);
        } else {
            EXPECT_LE(die.repages, cfg.maxRepages);
            EXPECT_EQ(die.epochsRun, st.epochsDone);
        }
        uint64_t missions = 0;
        for (size_t o = 0; o < kNumFaultOutcomes; ++o) {
            missions += die.outcomes[o];
            total[o] += die.outcomes[o];
        }
        EXPECT_EQ(missions, die.epochsRun);
        if (die.epochsRun) {
            EXPECT_GT(die.dffCount, 0u);
            EXPECT_EQ(die.dffBits.size(), (die.dffCount + 7) / 8);
            EXPECT_GT(die.lifeCycles, 0u);
        }
    }
    EXPECT_EQ(st.deaths, dead);
    EXPECT_EQ(st.aliveDies(), st.dies.size() - dead);

    // Epoch rows sum to the dies that ran that epoch (monotonically
    // non-increasing: pulled dies stop contributing), and the rows
    // together account for every mission.
    uint64_t prevRan = st.dies.size();
    std::array<uint64_t, kNumFaultOutcomes> rowTotal{};
    for (const auto &row : st.epochOutcomes) {
        uint64_t ran = 0;
        for (size_t o = 0; o < kNumFaultOutcomes; ++o) {
            ran += row[o];
            rowTotal[o] += row[o];
        }
        EXPECT_LE(ran, prevRan);
        prevRan = ran;
    }
    EXPECT_EQ(rowTotal, total);

    // Bin histograms partition the same missions.
    std::array<uint64_t, kNumFaultOutcomes> binTotal{};
    for (const auto &row : st.binOutcomes)
        for (size_t o = 0; o < kNumFaultOutcomes; ++o)
            binTotal[o] += row[o];
    EXPECT_EQ(binTotal, total);

    for (uint32_t e = 0; e < st.epochsDone; ++e) {
        EXPECT_GE(st.availability(e), 0.0);
        EXPECT_LE(st.availability(e), 1.0);
        EXPECT_GE(st.sdcRate(e), 0.0);
    }
}

TEST(Fleet, ThreadCountAndBatchLanesDoNotChangeAnything)
{
    FleetConfig cfg = smallConfig();
    FleetEngine engine(cfg);
    FleetState ref = engine.init();
    engine.run(ref);
    checkInvariants(ref);

    struct Knobs { unsigned threads, batchLanes; };
    for (Knobs k : {Knobs{1, 512}, Knobs{3, 512}, Knobs{0, 1},
                    Knobs{2, 17}, Knobs{1, 63}}) {
        FleetConfig c = cfg;
        c.threads = k.threads;
        c.batchLanes = k.batchLanes;
        FleetEngine eng(c);
        FleetState st = eng.init();
        eng.run(st);
        expectStateEq(ref, st);
    }
}

TEST(Fleet, PopulationDeploysSalvagedParts)
{
    // The economics argument needs salvaged parts in the field: the
    // seed-7 wafer bins salvaged dies that qualify for the deployed
    // kernel, and the with-replacement draw picks them up.
    FleetConfig cfg = smallConfig();
    FleetEngine engine(cfg);
    const SalvageReport &rep = engine.salvage();
    EXPECT_GT(rep.binCount(DieBin::Salvaged, true), 0u);

    FleetState st = engine.init();
    size_t salvaged = 0;
    for (const FleetDie &die : st.dies)
        salvaged += die.bin == DieBin::Salvaged;
    EXPECT_GT(salvaged, 0u);
    EXPECT_LT(salvaged, st.dies.size());

    engine.run(st);
    uint64_t salvagedMissions = 0;
    for (uint64_t n : st.binOutcomes[1])
        salvagedMissions += n;
    EXPECT_GT(salvagedMissions, 0u);
}

TEST(Fleet, EscalationLadderPullsDies)
{
    // Saturating fault pressure against a zero re-page budget: the
    // ladder must actually retire dies, and the accounting must hold.
    FleetConfig cfg = smallConfig();
    cfg.numDies = 32;
    cfg.transientsPerEpoch = 8.0;
    cfg.flipsPerEpoch = 2.0;
    cfg.recovery.maxRetries = 1;
    cfg.recovery.allowRestart = false;
    cfg.maxRepages = 0;
    FleetEngine engine(cfg);
    FleetState st = engine.init();
    engine.run(st);
    checkInvariants(st);
    EXPECT_GT(st.deaths, 0u);
    EXPECT_LT(st.availability(cfg.epochs - 1),
              st.availability(0) + 1e-12);
}

TEST(Fleet, CheckpointRoundTripIsExact)
{
    FleetConfig cfg = smallConfig();
    FleetEngine engine(cfg);
    FleetState st = engine.init();
    engine.run(st, 2);

    std::vector<uint8_t> bytes = encodeFleetState(st);
    FleetState back = decodeFleetState(bytes);
    expectStateEq(st, back);

    // Re-encoding the decoded state is byte-identical (canonical
    // serialization).
    EXPECT_EQ(bytes, encodeFleetState(back));
}

TEST(Fleet, KillAndResumeIsBitIdentical)
{
    FleetConfig cfg = smallConfig();
    FleetEngine engine(cfg);
    FleetState full = engine.init();
    engine.run(full);

    // Stop after epoch 1, serialize, forget everything, rebuild the
    // engine from the stored config, run the rest.
    FleetState part = engine.init();
    engine.run(part, 1);
    EXPECT_EQ(part.epochsDone, 1u);
    std::vector<uint8_t> bytes = encodeFleetState(part);

    FleetState resumed = decodeFleetState(bytes);
    FleetEngine fresh(resumed.config);
    // Execution knobs may change across the resume boundary.
    resumed.config.threads = 1;
    resumed.config.batchLanes = 17;
    fresh.run(resumed);
    expectStateEq(full, resumed);
}

TEST(Fleet, CheckpointFailsClosed)
{
    FleetConfig cfg = smallConfig();
    cfg.numDies = 8;
    cfg.epochs = 2;
    FleetEngine engine(cfg);
    FleetState st = engine.init();
    engine.run(st, 1);
    std::vector<uint8_t> bytes = encodeFleetState(st);

    // Any single corrupted byte trips the CRC (or an earlier
    // structural check) — sample positions across the image.
    for (size_t pos : {size_t(0), size_t(5), bytes.size() / 2,
                       bytes.size() - 3}) {
        std::vector<uint8_t> bad = bytes;
        bad[pos] ^= 0x40;
        EXPECT_THROW(decodeFleetState(bad), FatalError)
            << "corrupt byte at " << pos;
    }

    // Truncation at every interesting boundary.
    for (size_t n : {size_t(0), size_t(3), size_t(7),
                     bytes.size() / 3, bytes.size() - 1}) {
        std::vector<uint8_t> bad(bytes.begin(), bytes.begin() + n);
        EXPECT_THROW(decodeFleetState(bad), FatalError)
            << "truncated to " << n;
    }

    // Trailing garbage is not ignored.
    std::vector<uint8_t> bad = bytes;
    bad.push_back(0);
    EXPECT_THROW(decodeFleetState(bad), FatalError);

    // An unreadable path fails loudly, never a fresh state.
    EXPECT_THROW(loadFleetCheckpoint("/nonexistent/fleet.ckpt"),
                 FatalError);
}

TEST(Fleet, CheckpointFileRoundTrip)
{
    FleetConfig cfg = smallConfig();
    cfg.numDies = 8;
    cfg.epochs = 2;
    FleetEngine engine(cfg);
    FleetState st = engine.init();
    engine.run(st, 1);

    std::string path = testing::TempDir() + "fleet_rt.ckpt";
    saveFleetCheckpoint(st, path);
    FleetState back = loadFleetCheckpoint(path);
    expectStateEq(st, back);
    std::remove(path.c_str());
}

TEST(Fleet, Fc8FleetRunsAndIsDeterministic)
{
    FleetConfig cfg;
    cfg.isa = IsaKind::FlexiCore8;
    cfg.seed = 9;
    cfg.numDies = 16;
    cfg.epochs = 2;
    cfg.fc8Program = 0;
    cfg.workUnits = 1;
    FleetEngine engine(cfg);
    FleetState a = engine.init();
    engine.run(a);
    checkInvariants(a);

    FleetConfig c2 = cfg;
    c2.threads = 1;
    c2.batchLanes = 1;
    FleetEngine e2(c2);
    FleetState b = e2.init();
    e2.run(b);
    expectStateEq(a, b);
}

} // namespace
} // namespace flexi
