/**
 * @file
 * Path-level STA tests: exact agreement with the netlist's scalar
 * critical-path number, named top-K paths, slack sign per supply
 * voltage (the FC8 3 V yield cliff), and the unconstrained-path and
 * timing-violation diagnostics.
 */

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "analysis/timing.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/netlist.hh"
#include "tech/technology.hh"

namespace flexi
{
namespace
{

std::unique_ptr<Netlist>
buildCore(int which)
{
    switch (which) {
      case 0: return buildFlexiCore4Netlist();
      case 1: return buildFlexiCore8Netlist();
      case 2: return buildExtAcc4Netlist();
      default: return buildLoadStore4Netlist();
    }
}

TEST(Timing, WorstPathEqualsScalarCriticalPathOnAllCores)
{
    for (int which = 0; which < 4; ++which) {
        auto nl = buildCore(which);
        TimingReport tr = analyzeTiming(*nl, 8);
        // Exact double equality: same traversal, same arithmetic.
        EXPECT_EQ(tr.worstDelayUnits(), nl->criticalPathDelayUnits())
            << nl->name();
        ASSERT_FALSE(tr.paths.empty());
        EXPECT_EQ(tr.paths.size(), 8u);
        // Worst-first ordering.
        for (size_t i = 1; i < tr.paths.size(); ++i)
            EXPECT_LE(tr.paths[i].delayUnits,
                      tr.paths[i - 1].delayUnits);
    }
}

TEST(Timing, PathsCarryNamedNetsAndConsistentArithmetic)
{
    auto nl = buildFlexiCore8Netlist();
    TimingReport tr = analyzeTiming(*nl, 4);
    ASSERT_FALSE(tr.paths.empty());
    const TimingPath &worst = tr.paths.front();
    EXPECT_FALSE(worst.startName.empty());
    EXPECT_FALSE(worst.endName.empty());
    ASSERT_FALSE(worst.steps.empty());
    // The per-cell contributions must add up to the path delay.
    double sum = 0.0;
    for (const TimingStep &s : worst.steps) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_GT(s.cellDelay, 0.0);
        sum += s.cellDelay;
    }
    EXPECT_NEAR(sum, worst.delayUnits, 1e-9);
    // Arrival is monotone along the path.
    for (size_t i = 1; i < worst.steps.size(); ++i)
        EXPECT_GE(worst.steps[i].arrival,
                  worst.steps[i - 1].arrival);
    // Register-to-register on a core: capture at a DFF.
    EXPECT_EQ(worst.endpoint, EndpointKind::DffSetup);
    // The rendering names the endpoints.
    EXPECT_NE(worst.text().find(worst.endName), std::string::npos);
}

TEST(Timing, Fc8WorstPathLongerThanFc4)
{
    auto fc4 = buildFlexiCore4Netlist();
    auto fc8 = buildFlexiCore8Netlist();
    EXPECT_GT(analyzeTiming(*fc8, 1).worstDelayUnits(),
              analyzeTiming(*fc4, 1).worstDelayUnits());
}

TEST(Timing, Fc8YieldCliffAtLowVoltage)
{
    // The paper's Section 4.1 observation, reproduced structurally:
    // every top path of FC8 meets timing at 4.5 V, but its worst
    // paths blow through the 80 us period at 3 V. FC4 stays feasible
    // at both voltages.
    Technology tech(true);
    auto fc8 = buildFlexiCore8Netlist();
    LintReport nominal = timingLint(*fc8, tech, kVddNominal);
    EXPECT_FALSE(nominal.fires("timing-violation"))
        << nominal.text("fc8@4.5V");
    EXPECT_TRUE(nominal.fires("critical-path"));

    LintReport low = timingLint(*fc8, tech, kVddLow);
    EXPECT_TRUE(low.fires("timing-violation"))
        << low.text("fc8@3V");

    Technology tech_fc4(false);
    auto fc4 = buildFlexiCore4Netlist();
    EXPECT_FALSE(timingLint(*fc4, tech_fc4, kVddNominal)
                     .fires("timing-violation"));
    EXPECT_FALSE(timingLint(*fc4, tech_fc4, kVddLow)
                     .fires("timing-violation"));
}

TEST(Timing, ViolationDiagnosticExplainsThePath)
{
    Technology tech(true);
    auto fc8 = buildFlexiCore8Netlist();
    LintReport low = timingLint(*fc8, tech, kVddLow);
    auto violations = low.byRule("timing-violation");
    ASSERT_FALSE(violations.empty());
    const Diagnostic &d = violations.front();
    // Structural explanation: named nets along the path, negative
    // slack called out, severity is an error.
    EXPECT_EQ(d.severity, Severity::Error);
    EXPECT_FALSE(d.nets.empty());
    EXPECT_EQ(d.netNames.size(), d.nets.size());
    EXPECT_NE(d.message.find("slack -"), std::string::npos)
        << d.message;
    EXPECT_NE(d.message.find("->"), std::string::npos);
}

TEST(Timing, UnconstrainedPathFlagged)
{
    // A cone that drives nothing: XOR chain left floating.
    Netlist nl("floating");
    NetId a = nl.addInput("a");
    NetId b = nl.addInput("b");
    NetId x = nl.addCell(CellType::XOR2, {a, b}, "keep");
    nl.addOutput("y", x);
    NetId f1 = nl.addCell(CellType::XOR2, {a, x}, "loose");
    NetId f2 = nl.addCell(CellType::XOR2, {b, f1}, "loose");
    (void)nl.addCell(CellType::XOR2, {f1, f2}, "loose");
    nl.elaborate();

    TimingReport tr = analyzeTiming(nl, 8);
    bool floating = false;
    for (const TimingPath &p : tr.paths)
        floating |= p.endpoint == EndpointKind::Floating;
    EXPECT_TRUE(floating);

    Technology tech;
    LintReport rep = timingLint(nl, tech, kVddNominal);
    EXPECT_TRUE(rep.fires("unconstrained-path"));
    // Unconstrained is a warning, not an error.
    EXPECT_TRUE(rep.clean());
}

TEST(Timing, WorstPathIsAlwaysARegisterCapture)
{
    // The binding constraint on every core is register-to-register:
    // the single worst path captures at a DFF, not at a pad or a
    // floating cone. (Floating cones do appear further down the
    // list — they are the ripple-carry tails the dead-logic lint
    // already flags — and surface as unconstrained-path warnings.)
    for (int which = 0; which < 4; ++which) {
        auto nl = buildCore(which);
        TimingReport tr = analyzeTiming(*nl, 8);
        ASSERT_FALSE(tr.paths.empty());
        EXPECT_EQ(tr.paths.front().endpoint, EndpointKind::DffSetup)
            << nl->name() << ": " << tr.paths.front().text();
    }
}

TEST(Timing, TopKRespectsRequestAndDedupesEndpoints)
{
    auto nl = buildFlexiCore4Netlist();
    TimingReport tr = analyzeTiming(*nl, 3);
    EXPECT_EQ(tr.paths.size(), 3u);
    // One path per endpoint: no endpoint repeats.
    std::set<std::string> ends;
    for (const TimingPath &p : tr.paths)
        ends.insert(p.endName);
    EXPECT_EQ(ends.size(), tr.paths.size());
}

} // namespace
} // namespace flexi
