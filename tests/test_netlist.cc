/**
 * @file
 * Unit tests for the gate-level netlist infrastructure and the
 * structural FlexiCore models, including the central integration
 * property: the netlists track the architectural simulator
 * cycle-for-cycle (the paper's RTL-vs-die test methodology).
 */

#include <gtest/gtest.h>

#include "analysis/netlist_lint.hh"
#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"
#include "netlist/netlist.hh"

namespace flexi
{
namespace
{

// ---------------------------------------------------------------
// Netlist core mechanics
// ---------------------------------------------------------------

TEST(Netlist, CombinationalGateEval)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId c = nl.addInput("b");
    NetId y = b.nand2(a, c);
    nl.addOutput("y", y);
    nl.elaborate();

    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            nl.setInput("a", av);
            nl.setInput("b", bv);
            nl.evaluate();
            EXPECT_EQ(nl.output("y"), !(av && bv));
        }
    }
}

TEST(Netlist, DffCapturesOnClockEdge)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId d = nl.addInput("d");
    NetId q = nl.addDff(d, "m");
    nl.addOutput("q", q);
    nl.elaborate();

    nl.setInput("d", true);
    nl.evaluate();
    EXPECT_FALSE(nl.output("q"));   // not yet clocked
    nl.clockEdge();
    nl.evaluate();
    EXPECT_TRUE(nl.output("q"));
}

TEST(Netlist, CombinationalLoopDetected)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    // Build u = nand(a, v), v = nand(a, u) by hand.
    NetId u = nl.addCell(CellType::NAND2, {a, a}, "m");
    NetId v = nl.addCell(CellType::NAND2, {a, u}, "m");
    // Rewire first cell's input to form the loop via a DFF-free path:
    // not directly supported by the API, so emulate with setDffInput
    // misuse being rejected. Instead check a self-feeding cell.
    (void)v;
    NetId w = nl.addCell(CellType::NAND2, {a, a}, "m");
    // Reach into the structure: make the cell consume its own output.
    // The public API cannot do this, so we simulate a loop by making
    // a buffer chain and verifying elaborate() *succeeds* (sanity),
    // since true loops are unconstructible through Builder.
    (void)w;
    EXPECT_NO_THROW(nl.elaborate());
}

TEST(Netlist, BusHelpers)
{
    Netlist nl("t");
    Builder b(nl, "m");
    Word in;
    for (int i = 0; i < 4; ++i)
        in.push_back(nl.addInput("in" + std::to_string(i)));
    Word out = b.invWord(in);
    for (int i = 0; i < 4; ++i)
        nl.addOutput("out" + std::to_string(i), out[i]);
    nl.elaborate();
    nl.setBus("in", 4, 0b1010);
    nl.evaluate();
    EXPECT_EQ(nl.bus("out", 4), 0b0101u);
}

TEST(Netlist, StuckFaultForcesNet)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y = b.inv(a);
    nl.addOutput("y", y);
    nl.elaborate();

    nl.setInput("a", false);
    nl.evaluate();
    EXPECT_TRUE(nl.output("y"));

    nl.injectFault({y, false});     // stuck-at-0 on the output
    nl.evaluate();
    EXPECT_FALSE(nl.output("y"));

    nl.clearFaults();
    nl.evaluate();
    EXPECT_TRUE(nl.output("y"));
}

TEST(Netlist, ToggleCounting)
{
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y = b.inv(a);
    nl.addOutput("y", y);
    nl.elaborate();

    nl.setInput("a", false);
    nl.evaluate();
    nl.resetToggles();
    for (int i = 0; i < 10; ++i) {
        nl.setInput("a", i % 2 == 0);
        nl.evaluate();
    }
    EXPECT_EQ(nl.toggleCounts()[0], 10u);
}

TEST(Netlist, ModuleBreakdownRollsUp)
{
    Netlist nl("t");
    Builder b(nl, "alpha");
    Builder c = b.scoped("beta");
    NetId a = nl.addInput("a");
    b.inv(a);
    c.nand2(a, a);
    c.xor2(a, a);
    auto breakdown = nl.moduleBreakdown();
    EXPECT_EQ(breakdown.at("alpha").cells, 1u);
    EXPECT_EQ(breakdown.at("beta").cells, 2u);
    EXPECT_GT(breakdown.at("beta").nand2Area,
              breakdown.at("alpha").nand2Area);
}

// ---------------------------------------------------------------
// Builder word-level components (exhaustive truth tables)
// ---------------------------------------------------------------

class AdderTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AdderTest, ExhaustiveFourBit)
{
    int width = GetParam();
    Netlist nl("adder");
    Builder b(nl, "m");
    Word a, c;
    for (int i = 0; i < width; ++i) {
        a.push_back(nl.addInput("a" + std::to_string(i)));
        c.push_back(nl.addInput("b" + std::to_string(i)));
    }
    auto out = b.rippleAdder(a, c, nl.zero());
    for (int i = 0; i < width; ++i) {
        nl.addOutput("s" + std::to_string(i), out.sum[i]);
        nl.addOutput("p" + std::to_string(i), out.propagate[i]);
        nl.addOutput("g" + std::to_string(i), out.nandOut[i]);
    }
    nl.addOutput("cout", out.carryOut);
    nl.elaborate();

    unsigned n = 1u << width;
    unsigned mask = n - 1;
    for (unsigned x = 0; x < n; ++x) {
        for (unsigned y = 0; y < n; ++y) {
            nl.setBus("a", width, x);
            nl.setBus("b", width, y);
            nl.evaluate();
            EXPECT_EQ(nl.bus("s", width), (x + y) & mask);
            EXPECT_EQ(nl.output("cout"), ((x + y) >> width) & 1u);
            // The paper's free side effects (Section 3.4):
            EXPECT_EQ(nl.bus("p", width), x ^ y);
            EXPECT_EQ(nl.bus("g", width), (~(x & y)) & mask);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderTest, ::testing::Values(2, 4, 8));

TEST(BuilderComponents, IncrementerWraps)
{
    Netlist nl("inc");
    Builder b(nl, "m");
    Word a;
    for (int i = 0; i < 7; ++i)
        a.push_back(nl.addInput("a" + std::to_string(i)));
    Word out = b.incrementer(a);
    for (int i = 0; i < 7; ++i)
        nl.addOutput("y" + std::to_string(i), out[i]);
    nl.elaborate();
    for (unsigned v = 0; v < 128; ++v) {
        nl.setBus("a", 7, v);
        nl.evaluate();
        EXPECT_EQ(nl.bus("y", 7), (v + 1) & 0x7F);
    }
}

TEST(BuilderComponents, OneHotDecoder)
{
    Netlist nl("dec");
    Builder b(nl, "m");
    Word sel;
    for (int i = 0; i < 3; ++i)
        sel.push_back(nl.addInput("s" + std::to_string(i)));
    auto hot = b.decodeOneHot(sel);
    for (int i = 0; i < 8; ++i)
        nl.addOutput("h" + std::to_string(i), hot[i]);
    nl.elaborate();
    for (unsigned v = 0; v < 8; ++v) {
        nl.setBus("s", 3, v);
        nl.evaluate();
        EXPECT_EQ(nl.bus("h", 8), 1u << v);
    }
}

TEST(BuilderComponents, MuxTreeSelects)
{
    Netlist nl("mux");
    Builder b(nl, "m");
    std::vector<Word> words(4);
    for (int w = 0; w < 4; ++w)
        for (int i = 0; i < 4; ++i)
            words[w].push_back(nl.addInput(
                "w" + std::to_string(w) + "_" + std::to_string(i)));
    Word sel = {nl.addInput("s0"), nl.addInput("s1")};
    Word out = b.muxTree(words, sel);
    for (int i = 0; i < 4; ++i)
        nl.addOutput("y" + std::to_string(i), out[i]);
    nl.elaborate();

    for (int w = 0; w < 4; ++w)
        nl.setBus("w" + std::to_string(w) + "_", 4, 3 + w * 4);
    for (unsigned s = 0; s < 4; ++s) {
        nl.setInput("s0", s & 1);
        nl.setInput("s1", (s >> 1) & 1);
        nl.evaluate();
        EXPECT_EQ(nl.bus("y", 4), (3 + s * 4) & 0xF);
    }
}

TEST(BuilderComponents, RegisterWordHoldsWithoutEnable)
{
    Netlist nl("reg");
    Builder b(nl, "m");
    Word d;
    for (int i = 0; i < 4; ++i)
        d.push_back(nl.addInput("d" + std::to_string(i)));
    NetId we = nl.addInput("we");
    Word q = b.registerWord(d, we);
    for (int i = 0; i < 4; ++i)
        nl.addOutput("q" + std::to_string(i), q[i]);
    nl.elaborate();

    nl.setBus("d", 4, 0xA);
    nl.setInput("we", true);
    nl.evaluate();
    nl.clockEdge();
    nl.evaluate();
    EXPECT_EQ(nl.bus("q", 4), 0xAu);

    nl.setBus("d", 4, 0x5);
    nl.setInput("we", false);
    nl.evaluate();
    nl.clockEdge();
    nl.evaluate();
    EXPECT_EQ(nl.bus("q", 4), 0xAu);   // held
}

// ---------------------------------------------------------------
// Structural FlexiCore models
// ---------------------------------------------------------------

TEST(FlexiCore4Netlist, BuildsAndHasExpectedInterface)
{
    auto nl = buildFlexiCore4Netlist();
    EXPECT_GT(nl->numCells(), 100u);
    // Constraint from Section 3.3: < 800 NAND2-equivalent area
    // (plus margin: the fabricated core is 801).
    EXPECT_LT(nl->totalNand2Area(), 900.0);
    EXPECT_NO_THROW(nl->bus("pc", 7));
    EXPECT_NO_THROW(nl->bus("oport", 4));
}

TEST(FlexiCore4Netlist, ModuleBreakdownMatchesPaperShape)
{
    // Table 2: memory is the largest module, decoder the smallest.
    auto nl = buildFlexiCore4Netlist();
    auto modules = nl->moduleBreakdown();
    double mem = modules.at("mem").nand2Area;
    EXPECT_GT(mem, modules.at("pc").nand2Area);
    EXPECT_GT(mem, modules.at("alu").nand2Area);
    EXPECT_GT(mem, modules.at("acc").nand2Area);
    EXPECT_GT(modules.at("alu").nand2Area,
              modules.at("dec").nand2Area);
}

TEST(FlexiCore8Netlist, LongerCriticalPath)
{
    // The 8-bit ripple adder roughly doubles the carry chain
    // (Section 4.1 attributes FC8's 3 V yield cliff to this).
    auto fc4 = buildFlexiCore4Netlist();
    auto fc8 = buildFlexiCore8Netlist();
    EXPECT_GT(fc8->criticalPathDelayUnits(),
              1.3 * fc4->criticalPathDelayUnits());
}

TEST(FlexiCore8Netlist, MoreDevicesThanFc4)
{
    // Table 4: 2104 vs 2335 devices (~11 % more).
    auto fc4 = buildFlexiCore4Netlist();
    auto fc8 = buildFlexiCore8Netlist();
    EXPECT_GT(fc8->totalDevices(), fc4->totalDevices());
    double ratio = static_cast<double>(fc8->totalDevices()) /
                   fc4->totalDevices();
    EXPECT_LT(ratio, 1.35);
}

TEST(FlexiCore4Netlist, LintsClean)
{
    auto nl = buildFlexiCore4Netlist();
    LintReport rep = lintNetlist(*nl);
    EXPECT_TRUE(rep.clean()) << rep.text(nl->name());
}

TEST(FlexiCore8Netlist, LintsClean)
{
    auto nl = buildFlexiCore8Netlist();
    LintReport rep = lintNetlist(*nl);
    EXPECT_TRUE(rep.clean()) << rep.text(nl->name());
}

// ---------------------------------------------------------------
// Lockstep netlist-vs-simulator equivalence
// ---------------------------------------------------------------

TEST(Lockstep, Fc4DirectedProgram)
{
    Program p = assemble(IsaKind::FlexiCore4, R"(
        load r0
        store r2
        addi 3
        store r1
        nand r2
        xori 0xF
        store r1
        add r2
        store r1
        end: nandi 0
        spin: br spin
    )");
    auto nl = buildFlexiCore4Netlist();
    LockstepResult res = runLockstep(*nl, IsaKind::FlexiCore4, p,
                                     {0x6, 0x2}, 1000);
    EXPECT_EQ(res.errors, 0u);
    EXPECT_GT(res.outputs.size(), 2u);
}

TEST(Lockstep, Fc8DirectedProgramWithLoadByte)
{
    Program p = assemble(IsaKind::FlexiCore8, R"(
        ldb 0xA5
        store r2
        load r0
        add r2
        store r1
        ldb 0x80
        br over
        addi 1
        over: xori -1
        store r3
        end: ldb 0x80
        spin: br spin
    )");
    auto nl = buildFlexiCore8Netlist();
    LockstepResult res = runLockstep(*nl, IsaKind::FlexiCore8, p,
                                     {0x11}, 1000);
    EXPECT_EQ(res.errors, 0u);
}

/**
 * Property: for random instruction streams (all 256 byte values are
 * legal), netlist and simulator agree on every cycle. This is the
 * paper's randomized test-vector suite.
 */
class RandomLockstep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomLockstep, Fc4RandomProgram)
{
    Rng rng(GetParam());
    Program p(IsaKind::FlexiCore4);
    std::vector<uint8_t> bytes;
    for (int i = 0; i < 127; ++i) {
        uint8_t b = static_cast<uint8_t>(rng.below(256));
        bytes.push_back(b);
    }
    p.appendBytes(0, bytes);
    std::vector<uint8_t> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(static_cast<uint8_t>(rng.below(16)));

    auto nl = buildFlexiCore4Netlist();
    LockstepResult res = runLockstep(*nl, IsaKind::FlexiCore4, p,
                                     inputs, 3000);
    EXPECT_EQ(res.errors, 0u) << "seed " << GetParam();
}

TEST_P(RandomLockstep, Fc8RandomProgram)
{
    Rng rng(GetParam() * 7919 + 13);
    Program p(IsaKind::FlexiCore8);
    std::vector<uint8_t> bytes;
    for (int i = 0; i < 127; ++i)
        bytes.push_back(static_cast<uint8_t>(rng.below(256)));
    p.appendBytes(0, bytes);
    std::vector<uint8_t> inputs;
    for (int i = 0; i < 64; ++i)
        inputs.push_back(static_cast<uint8_t>(rng.below(256)));

    auto nl = buildFlexiCore8Netlist();
    LockstepResult res = runLockstep(*nl, IsaKind::FlexiCore8, p,
                                     inputs, 3000);
    EXPECT_EQ(res.errors, 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLockstep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/**
 * Exhaustive single-instruction sweep: every FlexiCore4 opcode byte,
 * executed from every accumulator value, with distinctive memory
 * contents — netlist and simulator must agree on the full
 * architectural trace. Systematic coverage on top of the random
 * streams.
 */
TEST(Lockstep, Fc4ExhaustiveOpcodeByAccSweep)
{
    auto nl = buildFlexiCore4Netlist();
    for (unsigned opcode = 0; opcode < 256; ++opcode) {
        for (unsigned acc = 0; acc < 16; acc += 3) {   // 6 values
            Program p(IsaKind::FlexiCore4);
            std::vector<uint8_t> image;
            // Fill memory with distinctive values: r2..r7 = 9,10,...
            for (unsigned w = 2; w < 8; ++w) {
                image.push_back(0x50);   // nandi 0
                image.push_back(
                    static_cast<uint8_t>(0x60 | ((7 + w) & 0xF)));
                image.push_back(static_cast<uint8_t>(0x38 | w));
            }
            // Set ACC, run the opcode under test, expose state.
            image.push_back(0x50);                        // nandi 0
            image.push_back(
                static_cast<uint8_t>(0x60 | (acc ^ 0xF)));// xori
            image.push_back(static_cast<uint8_t>(opcode));
            image.push_back(0x39);                        // store r1
            p.appendBytes(0, image);

            nl->clearFaults();
            LockstepResult res =
                runLockstep(*nl, IsaKind::FlexiCore4, p, {0x6, 0xB},
                            image.size() + 4);
            EXPECT_EQ(res.errors, 0u)
                << "opcode " << opcode << " acc " << acc;
        }
    }
}

TEST(Lockstep, FaultyDieProducesErrors)
{
    // Stuck-at faults on ALU nets must be caught by the vectors —
    // the basis of the yield test (Section 4.1).
    Program p = assemble(IsaKind::FlexiCore4, R"(
        load r0
        addi 3
        store r1
        xori 0xA
        store r1
        end: nandi 0
        spin: br spin
    )");
    auto nl = buildFlexiCore4Netlist();
    // Fault a mid-design net (an ALU cell output).
    NetId victim = kNoNet;
    for (const auto &cell : nl->cells()) {
        if (cell.module == "alu") {
            victim = cell.output;
            break;
        }
    }
    ASSERT_NE(victim, kNoNet);
    nl->injectFault({victim, true});
    LockstepResult res = runLockstep(*nl, IsaKind::FlexiCore4, p,
                                     {0x1}, 1000);
    EXPECT_GT(res.errors, 0u);
}

// ---------------------------------------------------------------
// Compiled evaluation plan vs the reference interpreter
// ---------------------------------------------------------------

/**
 * Differential fuzz of the flattened evaluator against the retained
 * cell-by-cell interpreter: every processor netlist, random primary
 * inputs each cycle, random stuck-at faults injected mid-run. Both
 * paths must agree on every net value and every per-cell toggle
 * count after every evaluation.
 */
TEST(Netlist, FlatEvaluatorMatchesReferenceUnderFaults)
{
    struct Design
    {
        const char *name;
        std::unique_ptr<Netlist> (*build)();
    };
    const Design kDesigns[] = {
        {"fc4", &buildFlexiCore4Netlist},
        {"fc8", &buildFlexiCore8Netlist},
        {"extacc4", &buildExtAcc4Netlist},
        {"loadstore4", &buildLoadStore4Netlist},
    };

    for (const auto &design : kDesigns) {
        SCOPED_TRACE(design.name);
        auto fast = design.build();
        auto ref = fast->clone();   // identical structure and state
        Rng rng(deriveSeed(0xD1FFu, fast->numNets()));

        std::vector<std::string> input_names;
        for (const auto &[in_name, net] : fast->primaryInputs())
            input_names.push_back(in_name);

        for (int cycle = 0; cycle < 60; ++cycle) {
            // Fresh random stimulus on every primary input.
            for (const auto &in_name : input_names) {
                bool v = rng.chance(0.5);
                fast->setInput(in_name, v);
                ref->setInput(in_name, v);
            }
            // Occasionally add a stuck-at fault (and once, clear
            // them all) so the force-mask path is exercised in every
            // combination with the LUT dispatch.
            if (cycle == 30) {
                fast->clearFaults();
                ref->clearFaults();
            } else if (cycle % 7 == 3) {
                StuckFault f;
                f.net = static_cast<NetId>(
                    rng.below(fast->numNets()));
                f.value = rng.chance(0.5);
                fast->injectFault(f);
                ref->injectFault(f);
            }

            fast->evaluate();
            ref->evaluateReference();
            fast->clockEdge();
            ref->clockEdge();
            fast->evaluate();
            ref->evaluateReference();

            for (NetId n = 0;
                 n < static_cast<NetId>(fast->numNets()); ++n) {
                ASSERT_EQ(fast->netValue(n), ref->netValue(n))
                    << "cycle " << cycle << " net " << n;
            }
            ASSERT_EQ(fast->toggleCounts(), ref->toggleCounts())
                << "cycle " << cycle;
        }
    }
}

// ---------------------------------------------------------------
// Cloning and bus handles
// ---------------------------------------------------------------

TEST(Netlist, CloneSharesStructureButNotState)
{
    auto nl = buildFlexiCore4Netlist();
    BusHandle instr = nl->inputBus("instr", 8);
    nl->setBus(instr, 0xA5);
    nl->evaluate();
    nl->clockEdge();

    auto copy = nl->clone();
    EXPECT_EQ(copy->numNets(), nl->numNets());
    EXPECT_EQ(copy->numCells(), nl->numCells());
    EXPECT_EQ(copy->bus("pc", 7), nl->bus("pc", 7));

    // Diverge the clone: faults and inputs on the copy must not
    // leak back into the original.
    NetId victim = nl->cells()[100].output;
    copy->injectFault({victim, true});
    copy->setBus(instr, 0x5A);
    copy->evaluate();
    EXPECT_TRUE(nl->faults().empty());
    EXPECT_EQ(nl->bus(instr), 0xA5u);

    nl->reset();
    EXPECT_EQ(copy->faults().size(), 1u);
}

TEST(Netlist, CloneOfUnelaboratedNetlistIsRejected)
{
    Netlist nl("t");
    nl.addInput("a");
    EXPECT_THROW(nl.clone(), std::logic_error);
}

TEST(Netlist, BusHandleMatchesStringLookup)
{
    auto nl = buildFlexiCore4Netlist();
    BusHandle instr = nl->inputBus("instr", 8);
    BusHandle pc = nl->outputBus("pc", 7);
    EXPECT_EQ(instr.width(), 8u);
    EXPECT_EQ(pc.width(), 7u);

    const auto &inputs = nl->primaryInputs();
    for (unsigned v : {0x00u, 0xFFu, 0xA5u, 0x3Cu}) {
        // Handle-based write, checked bit-by-bit against the named
        // nets the string API resolves.
        nl->setBus(instr, v);
        for (unsigned i = 0; i < 8; ++i) {
            NetId bit = inputs.at("instr" + std::to_string(i));
            EXPECT_EQ(nl->netValue(bit), ((v >> i) & 1u) != 0);
        }
        // String-based write, read back through the handle.
        nl->setBus("instr", 8, v ^ 0xFF);
        EXPECT_EQ(nl->bus(instr), v ^ 0xFFu);
    }
    nl->evaluate();
    EXPECT_EQ(nl->bus(pc), nl->bus("pc", 7));

    // Handles stay valid on clones: same structure, same numbering.
    auto copy = nl->clone();
    copy->setBus(instr, 0x77);
    EXPECT_EQ(copy->bus(instr), 0x77u);
    EXPECT_EQ(nl->bus(instr), 0xC3u);
}

TEST(Netlist, BusHandleDirectionIsEnforced)
{
    auto nl = buildFlexiCore4Netlist();
    EXPECT_THROW(nl->inputBus("pc", 7), std::logic_error);
    EXPECT_THROW(nl->outputBus("instr", 8), std::logic_error);
    BusHandle pc = nl->outputBus("pc", 7);
    EXPECT_THROW(nl->setBus(pc, 1), std::logic_error);
}

TEST(Netlist, FaultOnConstantNetCannotCorruptLutPadding)
{
    // Unused evaluation-plan input slots are padded with the scratch
    // net, not const0, precisely so that a stuck-at-1 fault on the
    // constant nets cannot flip the unused LUT index bits of 1- and
    // 2-input cells. An INV must still behave as INV with const0
    // stuck high.
    Netlist nl("t");
    Builder b(nl, "m");
    NetId a = nl.addInput("a");
    NetId y = b.inv(a);
    nl.addOutput("y", y);
    nl.elaborate();

    nl.injectFault({nl.zero(), true});
    nl.injectFault({nl.one(), false});
    nl.setInput("a", false);
    nl.evaluate();
    EXPECT_TRUE(nl.output("y"));
    nl.setInput("a", true);
    nl.evaluate();
    EXPECT_FALSE(nl.output("y"));
}

} // namespace
} // namespace flexi
