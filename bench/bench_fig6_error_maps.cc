/**
 * @file
 * Regenerates Figure 6: wafer maps of output-error counts for
 * FlexiCore4 and FlexiCore8 at 3 V and 4.5 V. Defective dies are
 * gate-level fault-simulated against the golden model over the
 * directed+random vector suite (Section 4.1's test methodology);
 * '.' marks a fully functional die (zero errors).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

namespace
{

void
printMap(const WaferStudyResult &res, double vdd)
{
    std::printf("\n%s at %.1f V (errors per die; '.' = functional, "
                "yield full=%s incl=%s)\n", res.spec.name.c_str(),
                vdd, pct(res.yield(vdd, false)).c_str(),
                pct(res.yield(vdd, true)).c_str());

    std::map<std::pair<int, int>, const DieResult *> grid;
    int min_c = 0, max_c = 0, min_r = 0, max_r = 0;
    for (const auto &die : res.dies) {
        grid[{die.site.row, die.site.col}] = &die;
        min_c = std::min(min_c, die.site.col);
        max_c = std::max(max_c, die.site.col);
        min_r = std::min(min_r, die.site.row);
        max_r = std::max(max_r, die.site.row);
    }
    for (int r = min_r; r <= max_r; ++r) {
        std::printf("  ");
        for (int c = min_c; c <= max_c; ++c) {
            auto it = grid.find({r, c});
            if (it == grid.end()) {
                std::printf("      ");
                continue;
            }
            const DieProbe &probe =
                vdd > 4.0 ? it->second->at45V : it->second->at3V;
            char mark =
                it->second->site.inInclusionZone ? ' ' : '*';
            if (probe.errors == 0)
                std::printf("    .%c", mark);
            else
                std::printf("%5lu%c",
                            static_cast<unsigned long>(
                                std::min<uint64_t>(probe.errors,
                                                   99999)),
                            mark);
        }
        std::printf("\n");
    }
    std::printf("  ('*' = edge-exclusion-zone die)\n");
}

} // namespace

int
main()
{
    benchHeader("Figure 6", "Output errors on test vectors per die "
                "(gate-level fault simulation)");

    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8}) {
        WaferStudyConfig cfg;
        cfg.isa = isa;
        cfg.seed = 42;
        cfg.testCycles = 1200;
        cfg.gateLevelErrors = true;
        auto res = runWaferStudy(cfg);
        printMap(res, 3.0);
        printMap(res, 4.5);
    }

    std::printf("\nPaper reference: green (zero-error) dies dominate "
                "the inclusion zone at 4.5 V for\nFlexiCore4 (81%%); "
                "FlexiCore8 at 3 V is nearly all faulty (6%%).\n");
    return 0;
}
