/**
 * @file
 * Regenerates Tables 2 and 3: per-module contribution to core area
 * and static power for FlexiCore4 and FlexiCore8, from the
 * structural netlists. In this technology static power tracks area,
 * so the power rows mirror the area rows — exactly the paper's
 * observation.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "netlist/flexicore_netlist.hh"

using namespace flexi;

namespace
{

void
breakdown(const char *table, const char *paper_note, Netlist &nl)
{
    benchHeader(table, nl.name() +
                " module contribution to core area and static power");

    auto modules = nl.moduleBreakdown();
    double total_area = nl.totalNand2Area();
    double total_cur = nl.totalStaticCurrentUa();

    TextTable t({"Module", "Area (% Non-Comb)", "Area (% Comb)",
                 "Area (% of Core)", "Static Power (% of Core)"});
    const char *order[] = {"alu", "dec", "mem", "pc", "acc", "core"};
    const char *labels[] = {"ALU", "Decoder", "Regfile/Memory", "PC",
                            "Acc.", "Pads/Other"};
    for (size_t i = 0; i < 6; ++i) {
        auto it = modules.find(order[i]);
        if (it == modules.end())
            continue;
        const ModuleStats &m = it->second;
        double seq = m.nand2Area > 0 ? m.nand2AreaSeq / m.nand2Area
                                     : 0.0;
        t.addRow({labels[i], pct(seq), pct(1.0 - seq),
                  pct(m.nand2Area / total_area, 1),
                  pct(m.staticCurrentUa / total_cur, 1)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nPaper reference (%s): %s\n", table, paper_note);
}

} // namespace

int
main()
{
    auto fc4 = buildFlexiCore4Netlist();
    breakdown("Table 2", "mem 58.3%, PC 23.4%, ALU 9%, Acc 5.4%, "
              "decoder 1%; memory is the largest module", *fc4);

    auto fc8 = buildFlexiCore8Netlist();
    breakdown("Table 3", "mem 40.9%, PC 17.9%, ALU 15.5%, Acc 10.8%, "
              "decoder 2.9%; ALU/Acc roughly double FlexiCore4's",
              *fc8);

    std::printf("\nKey structural checks:\n");
    auto m4 = fc4->moduleBreakdown();
    auto m8 = fc8->moduleBreakdown();
    std::printf("  FC8 ALU/FC4 ALU area ratio:  %.2f (paper ~2, "
                "8 vs 4 bit datapath)\n",
                m8.at("alu").nand2Area / m4.at("alu").nand2Area);
    std::printf("  FC8 Acc/FC4 Acc area ratio:  %.2f\n",
                m8.at("acc").nand2Area / m4.at("acc").nand2Area);
    std::printf("  FC8 decoder > FC4 decoder:   %s (ldb flag "
                "controller)\n",
                m8.at("dec").nand2Area > m4.at("dec").nand2Area
                    ? "yes" : "no");
    return 0;
}
