/**
 * @file
 * Stuck-at fault coverage of the wafer-test vector suite.
 *
 * Section 4.1 claims the directed+random vectors "stimulate all
 * regions of the cores" — the property that makes the zero-error
 * criterion a sound yield test. This harness measures it directly:
 * for every net in the FlexiCore4 / FlexiCore8 netlists, inject
 * stuck-at-0 and stuck-at-1 and check whether the vector suite
 * produces at least one output mismatch. Undetected faults are
 * broken down by module (test escapes concentrate in redundant
 * logic).
 */

#include <cstdio>
#include <map>

#include "analysis/atpg.hh"
#include "bench_util.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"
#include "yield/test_program.hh"

using namespace flexi;

namespace
{

void
coverageFor(IsaKind isa, uint64_t cycles)
{
    auto build = [&]() {
        return isa == IsaKind::FlexiCore4 ? buildFlexiCore4Netlist()
                                          : buildFlexiCore8Netlist();
    };

    Program prog = makeTestProgram(isa, 11);
    auto inputs = makeTestInputs(isa, 256, 11);

    auto reference = build();
    size_t faults = 0, detected = 0;
    std::map<std::string, std::pair<unsigned, unsigned>> by_module;

    auto nl = build();
    for (const CellInst &cell : nl->cells()) {
        for (bool value : {false, true}) {
            nl->clearFaults();
            nl->reset();
            nl->injectFault({cell.output, value});
            LockstepResult res =
                runLockstep(*nl, isa, prog, inputs, cycles);
            ++faults;
            ++by_module[cell.module].second;
            if (res.errors > 0) {
                ++detected;
                ++by_module[cell.module].first;
            }
        }
    }

    std::printf("\n%s: %zu cell-output stuck-at faults, %zu detected "
                "(%.1f%% coverage over %lu-cycle suite)\n",
                reference->name().c_str(), faults, detected,
                100.0 * detected / faults,
                static_cast<unsigned long>(cycles));
    TextTable t({"Module", "Detected", "Faults", "Coverage"});
    for (const auto &[module, counts] : by_module) {
        t.addRow({module, std::to_string(counts.first),
                  std::to_string(counts.second),
                  pct(static_cast<double>(counts.first) /
                      counts.second)});
    }
    std::printf("%s", t.str().c_str());

    // SAT-guided ATPG triage of the escapes: test holes (a pattern
    // exists) versus provably redundant faults (UNSAT miter), and
    // the resulting coverage over testable faults.
    AtpgConfig atpg;
    atpg.isa = isa;
    atpg.simCycles = cycles;
    AtpgReport rep = runAtpg(atpg, prog, inputs);
    std::printf("\nSAT-guided ATPG over the %zu escapes: %zu testable "
                "(pattern generated), %zu provably\nredundant; "
                "testable-fault coverage %.1f%% "
                "(%llu solver calls, %llu conflicts)\n",
                rep.escapes.size(), rep.testable, rep.redundant,
                100.0 * rep.testableCoverage(),
                static_cast<unsigned long long>(rep.solves),
                static_cast<unsigned long long>(rep.conflicts));
    for (const AtpgFault &f : rep.escapes) {
        if (f.testable)
            std::printf("  hole: %s stuck-at-%d [%s]  pattern: %s\n",
                        f.net.c_str(), f.fault.value ? 1 : 0,
                        f.module.c_str(), f.pattern.c_str());
    }
}

} // namespace

int
main()
{
    benchHeader("Fault coverage", "stuck-at detection by the "
                "Section 4.1 directed+random vector suite");

    coverageFor(IsaKind::FlexiCore4, 1500);
    coverageFor(IsaKind::FlexiCore8, 1500);

    std::printf("\nInterpretation: high coverage means a defective "
                "die almost always shows output\nerrors on the probe "
                "station, so the zero-error criterion measures true "
                "yield.\nResidual escapes sit in logic whose effect "
                "is masked (e.g. pad receivers whose\nfanout is not "
                "modeled, write-enable terms for the unwriteable "
                "input word).\n");
    return 0;
}
