/**
 * @file
 * Shared helpers for the per-table / per-figure benchmark binaries.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper and prints (a) our measured/modeled values and (b) the
 * paper's published values next to them, so EXPERIMENTS.md can be
 * audited directly from `for b in build/bench/*; do $b; done`.
 */

#ifndef FLEXI_BENCH_BENCH_UTIL_HH
#define FLEXI_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/stats.hh"

namespace flexi
{

inline void
benchHeader(const std::string &id, const std::string &title)
{
    std::printf("\n==================================================="
                "=========================\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("====================================================="
                "=======================\n");
}

inline std::string
pct(double frac, int digits = 0)
{
    return fmtDouble(frac * 100.0, digits) + "%";
}

} // namespace flexi

#endif // FLEXI_BENCH_BENCH_UTIL_HH
