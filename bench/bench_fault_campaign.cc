/**
 * @file
 * In-field fault-injection campaign summary.
 *
 * Runs a sampled, fixed-seed campaign on every core — once with all
 * protection off (the die fails silently or hangs) and once with the
 * detect-and-recover runtime armed — then the die-salvage pass on the
 * two fabricated cores' Table 5 wafer studies. This is the resilience
 * counterpart of the paper's yield story: raw yield counts dies that
 * are perfect, effective yield counts dies that still do useful work.
 *
 * With --json <path> the summary is additionally written as JSON
 * (the committed BENCH_fault_campaign.json snapshot; CI re-emits it
 * on every run).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "resilience/fault_campaign.hh"
#include "resilience/salvage.hh"

using namespace flexi;

namespace
{

constexpr uint64_t kSeed = 11;
constexpr unsigned kInjections = 96;

struct CampaignRow
{
    const char *isa;
    const char *protection;
    CampaignResult result;
};

std::string
jsonCounts(const CampaignCounts &counts)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "\"masked\": %llu, \"recovered\": %llu, "
                  "\"detected\": %llu, \"sdc\": %llu, \"hang\": %llu",
                  (unsigned long long)counts[FaultOutcome::Masked],
                  (unsigned long long)counts[FaultOutcome::Recovered],
                  (unsigned long long)counts[FaultOutcome::Detected],
                  (unsigned long long)counts[FaultOutcome::Sdc],
                  (unsigned long long)counts[FaultOutcome::Hang]);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];

    benchHeader("Fault campaigns", "in-field upsets classified with "
                "protection off and on, plus die salvage");

    std::vector<CampaignRow> rows;
    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8,
                        IsaKind::ExtAcc4, IsaKind::LoadStore4}) {
        CampaignConfig off;
        off.isa = isa;
        off.seed = kSeed;
        off.injections = kInjections;
        off.detectors = DetectorConfig{false, false, false, 192};
        off.recovery.enabled = false;
        rows.push_back({isaName(isa), "off", runFaultCampaign(off)});

        CampaignConfig on = off;
        on.detectors = DetectorConfig{};
        on.recovery = RecoveryPolicy{};
        rows.push_back({isaName(isa), "on", runFaultCampaign(on)});
    }

    TextTable t({"Core", "Protection", "Masked", "Recovered",
                 "Detected", "SDC", "Hang"});
    for (const CampaignRow &row : rows) {
        CampaignCounts c = row.result.counts();
        t.addRow({row.isa, row.protection,
                  std::to_string(c[FaultOutcome::Masked]),
                  std::to_string(c[FaultOutcome::Recovered]),
                  std::to_string(c[FaultOutcome::Detected]),
                  std::to_string(c[FaultOutcome::Sdc]),
                  std::to_string(c[FaultOutcome::Hang])});
    }
    std::printf("%u injections per campaign, seed %llu, kernel "
                "Thresholding\n%s",
                kInjections, (unsigned long long)kSeed,
                t.str().c_str());

    std::vector<SalvageReport> salvage;
    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8}) {
        SalvageConfig sc;
        sc.study.isa = isa;
        sc.study.seed = 42;
        sc.study.testCycles = 500;
        salvage.push_back(runSalvageStudy(sc));
    }

    std::printf("\nDie salvage on the Table 5 wafer study (4.5 V, "
                "inclusion zone, seed 42):\n");
    TextTable s({"Core", "Raw yield", "Effective", "Functional",
                 "Salvaged", "Dead"});
    for (const SalvageReport &rep : salvage) {
        s.addRow({rep.study.spec.name, pct(rep.rawYield(true)),
                  pct(rep.effectiveYield(true)),
                  std::to_string(
                      rep.binCount(DieBin::Functional, true)),
                  std::to_string(rep.binCount(DieBin::Salvaged, true)),
                  std::to_string(rep.binCount(DieBin::Dead, true))});
    }
    std::printf("%s", s.str().c_str());
    std::printf("\nInterpretation: the recovery runtime converts "
                "transient upsets from silent\ncorruption into "
                "retried, correct runs, and salvage binning recovers "
                "failed dies\ninto the application bins they still "
                "qualify for — effective yield can only\nexceed raw "
                "yield, at zero additional manufacturing cost.\n");

    if (json_path) {
        FILE *f = std::fopen(json_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        std::fprintf(f, "{\n  \"seed\": %llu,\n  \"injections\": %u,\n"
                     "  \"campaigns\": [\n",
                     (unsigned long long)kSeed, kInjections);
        for (size_t i = 0; i < rows.size(); ++i) {
            CampaignCounts c = rows[i].result.counts();
            std::fprintf(f,
                         "    {\"isa\": \"%s\", \"protection\": "
                         "\"%s\", \"baseline_cycles\": %llu, %s}%s\n",
                         rows[i].isa, rows[i].protection,
                         (unsigned long long)
                             rows[i].result.baselineCycles,
                         jsonCounts(c).c_str(),
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"salvage\": [\n");
        for (size_t i = 0; i < salvage.size(); ++i) {
            const SalvageReport &rep = salvage[i];
            std::fprintf(
                f,
                "    {\"isa\": \"%s\", \"raw_yield\": %.6f, "
                "\"effective_yield\": %.6f, \"functional\": %zu, "
                "\"salvaged\": %zu, \"dead\": %zu}%s\n",
                rep.study.spec.name.c_str(), rep.rawYield(true),
                rep.effectiveYield(true),
                rep.binCount(DieBin::Functional, true),
                rep.binCount(DieBin::Salvaged, true),
                rep.binCount(DieBin::Dead, true),
                i + 1 < salvage.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nWrote %s\n", json_path);
    }
    return 0;
}
