/**
 * @file
 * Table 1 application-level energy study: maps the paper's example
 * applications (sample rate, precision, duty cycle) onto the kernel
 * suite, computes per-sample energy on the fabricated FlexiCore4,
 * and reports daily energy and battery life on the 3 V / 5 mAh
 * flexible printed battery of Section 5.2 — extending the paper's
 * single battery example across the whole application table.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "kernels/runner.hh"
#include "netlist/flexicore_netlist.hh"
#include "tech/technology.hh"

using namespace flexi;

namespace
{

struct AppRow
{
    const char *application;
    double sampleRateHz;          ///< Table 1 sample rate
    KernelId kernel;              ///< processing per sample
    const char *note;
};

} // namespace

int
main()
{
    benchHeader("Table 1 applications",
                "energy & battery life on FlexiCore4 "
                "(12.5 kHz, 4.5 V, perfect power gating)");

    Technology tech(false);
    auto nl = buildFlexiCore4Netlist();
    double power = tech.staticPower(nl->totalStaticCurrentUa(), 4.5);
    constexpr double kBatteryJ = 3.0 * 5e-3 * 3600.0;   // 3 V, 5 mAh

    const AppRow apps[] = {
        {"Body Temperature Sensor", 1.0, KernelId::Thresholding,
         "threshold on smoothed input"},
        {"Heart Beat Sensor", 4.0, KernelId::Thresholding,
         "beat detection by threshold"},
        {"Light Level Sensor", 1.0, KernelId::IntAvg,
         "de-noise + report"},
        {"Food Temp. Sensor", 1.0, KernelId::IntAvg,
         "exponential smoothing"},
        {"Humidity Sensor", 10.0, KernelId::FirFilter,
         "band filtering"},
        {"Odor Sensor", 25.0, KernelId::DecisionTree,
         "classification"},
        {"Smart Bandage", 0.01, KernelId::DecisionTree,
         "wound-state classifier"},
        {"Pedometer", 25.0, KernelId::Thresholding,
         "step threshold"},
        {"Error Detection Coding", 100.0, KernelId::ParityCheck,
         "per-byte parity"},
        {"Pseudo-RNG", 1.0, KernelId::XorShift8,
         "xorshift sequence step"},
        {"POS Computation", 100.0, KernelId::Calculator,
         "arithmetic per event"},
    };

    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    constexpr size_t kWork = 48;

    TextTable t({"Application", "Rate (Hz)", "Kernel", "uJ/sample",
                 "J/day", "Battery life"});
    for (const AppRow &app : apps) {
        KernelRun run = runKernel(app.kernel, cfg, kWork, 31);
        double cycles = static_cast<double>(run.stats.cycles) / kWork;
        double e_sample = power * cycles / kClockHz;
        double j_day = e_sample * app.sampleRateHz * 86400.0;
        double days = kBatteryJ / j_day;
        std::string life =
            days > 3650.0 ? ">10 years"
            : days > 365.0 ? strfmt("%.1f years", days / 365.0)
            : days >= 2.0 ? strfmt("%.0f days", days)
            : strfmt("%.0f hours", days * 24.0);
        t.addRow({app.application, fmtDouble(app.sampleRateHz, 2),
                  kernelName(app.kernel), fmtDouble(e_sample * 1e6, 1),
                  fmtDouble(j_day, 3), life});
    }
    std::printf("%s", t.str().c_str());

    std::printf("\nDuty cycle is the lever (Section 3.2): at "
                "Table 1's relaxed sample rates most\napplications "
                "run months-to-years on a printed battery, while "
                "continuous 100 Hz\nworkloads exhaust it in days — "
                "matching the paper's 'performance matters only\nso "
                "far as it saves energy' argument.\n");
    return 0;
}
