/**
 * @file
 * Regenerates Table 5: yield for FlexiCore4 / FlexiCore8 at 3 V and
 * 4.5 V, full wafer and inclusion zone, from the Monte-Carlo wafer
 * study. Values are averaged over several simulated wafers (the
 * paper reports one physical wafer per design).
 */

#include <cstdio>

#include "bench_util.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

int
main()
{
    benchHeader("Table 5", "Yield at 3 V / 4.5 V, full wafer vs "
                "inclusion zone");

    constexpr int kWafers = 20;
    TextTable t({"", "Full 3V", "Full 4.5V", "Incl 3V", "Incl 4.5V"});

    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8}) {
        double f3 = 0, f45 = 0, i3 = 0, i45 = 0;
        for (int s = 0; s < kWafers; ++s) {
            WaferStudyConfig cfg;
            cfg.isa = isa;
            cfg.seed = 1000 + s;
            cfg.gateLevelErrors = false;
            auto res = runWaferStudy(cfg);
            f3 += res.yield(3.0, false);
            f45 += res.yield(4.5, false);
            i3 += res.yield(3.0, true);
            i45 += res.yield(4.5, true);
        }
        t.addRow({isaName(isa), pct(f3 / kWafers), pct(f45 / kWafers),
                  pct(i3 / kWafers), pct(i45 / kWafers)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nPaper reference:\n"
                "  FlexiCore4   44%%   63%%   55%%   81%%\n"
                "  FlexiCore8    5%%   42%%    6%%   57%%\n");
    std::printf("\nShape checks: inclusion > full; 4.5V > 3V; FC4 > "
                "FC8; FC8 collapses at 3V\n(the 8-bit ripple adder's "
                "critical path is ~1.4x FlexiCore4's).\n");
    return 0;
}
