/**
 * @file
 * Regenerates Figure 9: core area, cell count and suite code size
 * for each ISA extension relative to the base FlexiCore4 design.
 */

#include <cstdio>

#include "bench_util.hh"
#include "dse/area_model.hh"
#include "dse/code_size.hh"

using namespace flexi;

int
main()
{
    benchHeader("Figure 9", "Area / cells / code size per ISA "
                "extension (relative to base)");

    struct Row
    {
        const char *label;
        IsaFeatures f;
        const char *note;
    };
    std::vector<Row> rows;
    {
        IsaFeatures f;
        f.coalescing = true;
        rows.push_back({"ADC/SWB (coalescing)", f,
                        "paper: <10% area, viable"});
    }
    {
        IsaFeatures f;
        f.barrelShifter = true;
        rows.push_back({"Barrel shifter (rs)", f,
                        "paper: <10% area, viable"});
    }
    {
        IsaFeatures f;
        f.branchFlags = true;
        rows.push_back({"Branch flags (nzp)", f,
                        "paper: <10% area, viable"});
    }
    {
        IsaFeatures f;
        f.multiplier = true;
        rows.push_back({"Multiplier", f,
                        "paper: high gate count, rejected"});
    }
    {
        IsaFeatures f;
        f.exchange = true;
        rows.push_back({"Accumulator exchange", f, "added at low cost"});
    }
    {
        IsaFeatures f;
        f.subroutines = true;
        rows.push_back({"Subroutines (call/ret)", f,
                        "paper: 8 flip-flops"});
    }
    {
        IsaFeatures f;
        f.doubleMemory = true;
        rows.push_back({"2x data memory", f,
                        "paper: >70% area, rejected; no code effect"});
    }
    rows.push_back({"Revised op set", IsaFeatures::revised(),
                    "final Section 6.1 selection"});

    double base_area = baseCoreArea();
    DesignPoint base;
    base.features = IsaFeatures::none();
    unsigned base_cells = cellCountOf(base);

    TextTable t({"Extension", "Area (rel)", "Cells (rel)",
                 "Code (rel)", "Paper note"});
    for (const auto &row : rows) {
        DesignPoint p;
        p.features = row.f;
        t.addRow({row.label,
                  fmtDouble(areaOf(p).total() / base_area, 2),
                  fmtDouble(static_cast<double>(cellCountOf(p)) /
                                base_cells, 2),
                  fmtDouble(relativeSuiteCodeSize(row.f), 2),
                  row.note});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nShape: cheap extensions (<10%% area) shrink code; "
                "the multiplier and the doubled\nmemory cost too much "
                "area for their benefit — the paper's Section 6.1 "
                "conclusion.\n");
    return 0;
}
