/**
 * @file
 * Regenerates Figure 12: normalized core area vs code size (bits)
 * for the accumulator and load-store machines with single-cycle,
 * 2-stage pipelined and multicycle microarchitectures.
 */

#include <cstdio>

#include "bench_util.hh"
#include "dse/area_model.hh"
#include "dse/code_size.hh"

using namespace flexi;

int
main()
{
    benchHeader("Figure 12", "Normalized core area vs code size for "
                "the six DSE cores");

    // Code size in bits per operand model (measured over the suite).
    size_t acc_bits = 0, ls_bits = 0;
    for (KernelId id : allKernels()) {
        acc_bits += measuredCodeSize(id, IsaKind::ExtAcc4).bits;
        ls_bits += measuredCodeSize(id, IsaKind::LoadStore4).bits;
    }
    double max_bits = static_cast<double>(std::max(acc_bits, ls_bits));

    auto cores = dseCores();
    double max_area = 0;
    for (const auto &c : cores)
        max_area = std::max(max_area, areaOf(c).total());

    TextTable t({"Core", "Area (norm)", "Code bits (norm)",
                 "Code bits (abs)"});
    for (const auto &c : cores) {
        size_t bits = c.operands == OperandModel::Accumulator
            ? acc_bits : ls_bits;
        t.addRow({c.name(),
                  fmtDouble(areaOf(c).total() / max_area, 3),
                  fmtDouble(bits / max_bits, 3),
                  std::to_string(bits)});
    }
    std::printf("%s", t.str().c_str());

    std::printf("\nOrderings to check against the paper's scatter:\n");
    std::printf("  - the single-cycle accumulator machine is the "
                "smallest design;\n");
    std::printf("  - acc+pipeline is still smaller than the "
                "single-cycle load-store (2nd port);\n");
    std::printf("  - the multicycle accumulator machine is the "
                "largest accumulator design;\n");
    std::printf("  - on load-store, multicycle drops the second port "
                "and is the smallest LS;\n");
    std::printf("  - the load-store ISA is denser in instructions "
                "but its 16-bit words make the\n    bit counts "
                "comparable (paper: 'slightly higher code "
                "density').\n");
    return 0;
}
