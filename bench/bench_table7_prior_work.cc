/**
 * @file
 * Regenerates Table 7: comparison of FlexiCore4 against prior
 * flexible / low-cost processors. The prior-work rows are published
 * values transcribed from the paper (those chips cannot be rebuilt);
 * the "This Work" row is measured from our models, so the ratios the
 * paper highlights can be recomputed.
 */

#include <cstdio>

#include "bench_util.hh"
#include "netlist/flexicore_netlist.hh"
#include "tech/technology.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

int
main()
{
    benchHeader("Table 7", "FlexiCore4 vs prior flexible ICs");

    auto fc4 = buildFlexiCore4Netlist();
    Technology tech(false);
    double area = tech.areaMm2(fc4->totalNand2Area());
    double power_mw =
        tech.staticPower(fc4->totalStaticCurrentUa(), 4.5) * 1e3;

    double yield = 0;
    constexpr int kWafers = 10;
    for (int s = 0; s < kWafers; ++s) {
        WaferStudyConfig cfg;
        cfg.seed = 2000 + s;
        cfg.gateLevelErrors = false;
        yield += runWaferStudy(cfg).yield(4.5, true);
    }
    yield /= kWafers;

    TextTable t({"Design", "Devices", "Area(mm^2)", "V", "Power(mW)",
                 "Clk(kHz)", "Technology", "Prog.", "Yield", "Width"});
    t.addRow({"This work (measured)",
              std::to_string(fc4->totalDevices()), fmtDouble(area, 2),
              "4.5", fmtDouble(power_mw, 2), "12.5", "0.8um IGZO-TFT",
              "Field", pct(yield), "4"});
    t.addRow({"FlexiCore4 (paper)", "2104", "5.6", "4.5", "4.05",
              "12.5", "0.8um IGZO-TFT", "Field", "81%", "4"});
    t.addRow({"PlasticARM", "56340", "59.2", "3", "21", "29",
              "0.8um IGZO-TFT", "Mask ROM", "n/r", "32"});
    t.addRow({"Sharp Z80", "13000", "169", "5", "15", "3000",
              "3um cg-Si TFT", "Field", "n/r", "8"});
    t.addRow({"UHF RFCPU", "133000", "93.45", "1.8", "0.81", "1120",
              "0.8um poly-Si TFT", "Mask ROM", "n/r", "8"});
    t.addRow({"8bit ALU", "3504", "225.6", "6.5", "n/r", "2.1",
              "5um org+m-ox TFT", "PROM foil", "n/r", "8"});
    t.addRow({"MLIC", "3132", "5.6", "4.5", "7.2", "104",
              "0.8um IGZO-TFT", "None", "n/r", "5"});
    t.addRow({"Intel 4004", "2250", "12", "15", "1000", "1000",
              "10um Si PMOS", "Field", "comm.", "4"});
    std::printf("%s", t.str().c_str());

    std::printf("\nRecomputed headline ratios (ours vs published):\n");
    std::printf("  PlasticARM area / FlexiCore4 area:  %.1fx "
                "(paper: ~10x; ISA expressiveness costs an order of "
                "magnitude)\n", 59.2 / area);
    std::printf("  PlasticARM power / FlexiCore4:      %.1fx "
                "(paper: >5x)\n", 21.0 / power_mw);
    std::printf("  Power density (mW/mm^2):            %.3f "
                "(paper: 0.723)\n", power_mw / area);
    std::printf("  Device count reduction vs PlasticARM: %.0f%% "
                "(paper: ~95%%)\n",
                100.0 * (1.0 - fc4->totalDevices() / 56340.0));
    return 0;
}
