/**
 * @file
 * Regenerates Figure 13: relative energy of the DSE cores with a
 * program bus wide enough for a whole instruction vs a bus
 * restricted to 8 bits. With the narrow bus, single-cycle and
 * pipelined load-store machines cannot fetch their 16-bit
 * instructions and do not exist (Section 6.2).
 */

#include <cstdio>

#include "bench_util.hh"
#include "dse/perf_model.hh"

using namespace flexi;

int
main()
{
    benchHeader("Figure 13", "Relative energy: wide vs 8-bit "
                "program bus (suite average)");

    constexpr size_t kWork = 24;
    constexpr uint64_t kSeed = 7;

    // Baseline energy per kernel.
    std::vector<double> base_energy;
    for (KernelId id : allKernels())
        base_energy.push_back(
            evalFlexiCore4Baseline(id, kWork, kSeed).energyJ);

    TextTable t({"Core", "Wide bus", "8-bit bus"});
    double best_wide = 1e9, best_narrow = 1e9;
    std::string best_wide_name, best_narrow_name;

    for (auto core : dseCores()) {
        auto avg = [&](BusWidth bus) -> double {
            DesignPoint p = core;
            p.bus = bus;
            if (!p.feasible())
                return -1.0;
            double sum = 0;
            size_t k = 0;
            for (KernelId id : allKernels()) {
                auto r = evalDsePoint(id, p, kWork, kSeed);
                sum += r.energyJ / base_energy[k++];
            }
            return sum / kNumKernels;
        };
        double wide = avg(BusWidth::Wide);
        double narrow = avg(BusWidth::Narrow8);
        if (wide < best_wide) {
            best_wide = wide;
            best_wide_name = core.name();
        }
        if (narrow >= 0 && narrow < best_narrow) {
            best_narrow = narrow;
            best_narrow_name = core.name();
        }
        t.addRow({core.name(), fmtDouble(wide, 2),
                  narrow < 0 ? "impossible" : fmtDouble(narrow, 2)});
    }
    std::printf("%s", t.str().c_str());

    std::printf("\nBest core with a wide (integrated) program "
                "memory:  %s (%.2f of FlexiCore4)\n",
                best_wide_name.c_str(), best_wide);
    std::printf("Best core with the 8-bit (off-chip) program bus:    "
                "%s (%.2f of FlexiCore4)\n",
                best_narrow_name.c_str(), best_narrow);
    std::printf("\nPaper reference: with a wide bus the 2-stage "
                "load-store machine wins (<0.5x);\nwith the 8-bit bus "
                "only the multicycle LS exists, and the 2-stage "
                "accumulator\nmachine is the best choice — its "
                "single-operand instructions need fewer IOs.\n");
    return 0;
}
