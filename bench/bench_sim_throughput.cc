/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates
 * themselves: ISA-simulator instruction rate, gate-level netlist
 * cycle rate, assembler throughput, and wafer-study runtime. These
 * bound how large the Monte-Carlo experiments can be made.
 */

#include <benchmark/benchmark.h>

#include "assembler/assembler.hh"
#include "kernels/runner.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"
#include "sim/core_sim.hh"
#include "yield/test_program.hh"
#include "yield/wafer_study.hh"

namespace flexi
{
namespace
{

void
BM_CoreSimInstructionRate(benchmark::State &state)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         kernelSource(KernelId::FirFilter,
                                      IsaKind::FlexiCore4));
    FifoEnvironment env;
    for (int i = 0; i < 4096; ++i)
        env.pushInput(static_cast<uint8_t>(i & 0xF));
    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            sim.step();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoreSimInstructionRate);

void
BM_NetlistCycleRate(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    Program p = makeTestProgram(IsaKind::FlexiCore4, 1);
    const auto &image = p.page(0);
    nl->setBus("iport", 4, 0x5);
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            unsigned pc = nl->bus("pc", 7);
            nl->setBus("instr", 8,
                       pc < image.size() ? image[pc] : 0);
            nl->evaluate();
            nl->clockEdge();
            nl->evaluate();
        }
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_NetlistCycleRate);

void
BM_AssembleCalculator(benchmark::State &state)
{
    std::string src = kernelSource(KernelId::Calculator,
                                   IsaKind::FlexiCore4);
    for (auto _ : state) {
        Program p = assemble(IsaKind::FlexiCore4, src);
        benchmark::DoNotOptimize(p.numPages());
    }
}
BENCHMARK(BM_AssembleCalculator);

void
BM_LockstepDieTest(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    Program p = makeTestProgram(IsaKind::FlexiCore4, 3);
    auto inputs = makeTestInputs(IsaKind::FlexiCore4, 128, 3);
    for (auto _ : state) {
        LockstepResult res =
            runLockstep(*nl, IsaKind::FlexiCore4, p, inputs, 500);
        benchmark::DoNotOptimize(res.errors);
    }
}
BENCHMARK(BM_LockstepDieTest);

void
BM_WaferStudyStatistical(benchmark::State &state)
{
    for (auto _ : state) {
        WaferStudyConfig cfg;
        cfg.seed = 1;
        cfg.gateLevelErrors = false;
        auto res = runWaferStudy(cfg);
        benchmark::DoNotOptimize(res.yield(4.5, true));
    }
}
BENCHMARK(BM_WaferStudyStatistical);

} // namespace
} // namespace flexi

BENCHMARK_MAIN();
