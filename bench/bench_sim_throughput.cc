/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates
 * themselves: ISA-simulator instruction rate, gate-level netlist
 * cycle rate, netlist clone rate, assembler throughput, and
 * wafer-study runtime. These bound how large the Monte-Carlo
 * experiments can be made; docs/PERF.md tracks the numbers and CI
 * emits them as BENCH_sim_throughput.json every run.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "assembler/assembler.hh"
#include "kernels/runner.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lane_batch.hh"
#include "netlist/lane_group.hh"
#include "netlist/lockstep.hh"
#include "sim/core_sim.hh"
#include "yield/test_program.hh"
#include "yield/wafer_study.hh"

namespace flexi
{
namespace
{

void
BM_CoreSimInstructionRate(benchmark::State &state)
{
    Program p = assemble(IsaKind::FlexiCore4,
                         kernelSource(KernelId::FirFilter,
                                      IsaKind::FlexiCore4));
    FifoEnvironment env;
    for (int i = 0; i < 4096; ++i)
        env.pushInput(static_cast<uint8_t>(i & 0xF));
    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    CoreSim sim(cfg, p, env);
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            sim.step();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoreSimInstructionRate);

void
BM_NetlistCycleRate(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    Program p = makeTestProgram(IsaKind::FlexiCore4, 1);
    const auto &image = p.page(0);
    BusHandle pc = nl->outputBus("pc", 7);
    BusHandle instr = nl->inputBus("instr", 8);
    nl->setBus("iport", 4, 0x5);
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            unsigned die_pc = nl->bus(pc);
            nl->setBus(instr,
                       die_pc < image.size() ? image[die_pc] : 0);
            nl->evaluate();
            nl->clockEdge();
            nl->evaluate();
        }
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_NetlistCycleRate);

/** The retained cell-by-cell interpreter, as the speedup yardstick
 *  for the compiled evaluation plan. */
void
BM_NetlistCycleRateReference(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    Program p = makeTestProgram(IsaKind::FlexiCore4, 1);
    const auto &image = p.page(0);
    BusHandle pc = nl->outputBus("pc", 7);
    BusHandle instr = nl->inputBus("instr", 8);
    nl->setBus("iport", 4, 0x5);
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            unsigned die_pc = nl->bus(pc);
            nl->setBus(instr,
                       die_pc < image.size() ? image[die_pc] : 0);
            nl->evaluateReference();
            nl->clockEdge();
            nl->evaluateReference();
        }
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_NetlistCycleRateReference);

/** Cost of stamping out a per-die simulation instance. */
void
BM_NetlistClone(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    for (auto _ : state) {
        auto copy = nl->clone();
        benchmark::DoNotOptimize(copy->numNets());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetlistClone);

void
BM_AssembleCalculator(benchmark::State &state)
{
    std::string src = kernelSource(KernelId::Calculator,
                                   IsaKind::FlexiCore4);
    for (auto _ : state) {
        Program p = assemble(IsaKind::FlexiCore4, src);
        benchmark::DoNotOptimize(p.numPages());
    }
}
BENCHMARK(BM_AssembleCalculator);

void
BM_LockstepDieTest(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    Program p = makeTestProgram(IsaKind::FlexiCore4, 3);
    auto inputs = makeTestInputs(IsaKind::FlexiCore4, 128, 3);
    for (auto _ : state) {
        LockstepResult res =
            runLockstep(*nl, IsaKind::FlexiCore4, p, inputs, 500);
        benchmark::DoNotOptimize(res.errors);
    }
}
BENCHMARK(BM_LockstepDieTest);

void
BM_WaferStudyStatistical(benchmark::State &state)
{
    for (auto _ : state) {
        WaferStudyConfig cfg;
        cfg.seed = 1;
        cfg.gateLevelErrors = false;
        cfg.threads = 1;
        auto res = runWaferStudy(cfg);
        benchmark::DoNotOptimize(res.yield(4.5, true));
    }
}
BENCHMARK(BM_WaferStudyStatistical);

/** 64 dies per pass through the word-parallel compiled plan. */
void
BM_LaneBatchCycleRate(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    LaneBatch batch(*nl);
    Program p = makeTestProgram(IsaKind::FlexiCore4, 1);
    const auto &image = p.page(0);
    BusHandle pc = nl->outputBus("pc", 7);
    BusHandle instr = nl->inputBus("instr", 8);
    BusHandle iport = nl->inputBus("iport", 4);
    batch.setBus(iport, 0x5);
    uint32_t die_pc[LaneBatch::kMaxLanes] = {};
    uint32_t die_instr[LaneBatch::kMaxLanes] = {};
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            for (unsigned lane = 0; lane < batch.lanes(); ++lane)
                die_instr[lane] = die_pc[lane] < image.size()
                                      ? image[die_pc[lane]]
                                      : 0;
            batch.setBusLanes(instr, die_instr);
            batch.evaluate();
            batch.clockEdge();
            batch.evaluate();
            batch.gatherBus(pc, die_pc);
        }
    }
    // One item = one simulated die-cycle: 100 batch cycles x 64
    // lanes per iteration.
    state.SetItemsProcessed(state.iterations() * 100 *
                            LaneBatch::kMaxLanes);
}
BENCHMARK(BM_LaneBatchCycleRate);

/** Up to 512 dies per pass through the fused-run wide evaluator —
 *  the exact per-cycle work of the wafer/campaign inner loop
 *  (per-lane fetch, threaded-dispatch evaluate, DFF commit, pad-cone
 *  exposeState, PC gather). One item = one simulated die-cycle. */
void
BM_LaneGroupCycleRate(benchmark::State &state)
{
    auto nl = buildFlexiCore4Netlist();
    unsigned lanes = static_cast<unsigned>(state.range(0));
    LaneGroup group(*nl, lanes);
    Program p = makeTestProgram(IsaKind::FlexiCore4, 1);
    const auto &image = p.page(0);
    BusHandle pc = nl->outputBus("pc", 7);
    BusHandle instr = nl->inputBus("instr", 8);
    BusHandle iport = nl->inputBus("iport", 4);
    BusHandle oport = nl->outputBus("oport", 4);
    group.setBus(iport, 0x5);
    LaneGroup::PadCone cone = group.padCone({&pc, &oport});
    std::vector<uint8_t> die_pc(lanes, 0);
    std::vector<uint8_t> die_instr(lanes, 0);
    for (auto _ : state) {
        for (int i = 0; i < 100; ++i) {
            for (unsigned lane = 0; lane < lanes; ++lane)
                die_instr[lane] = die_pc[lane] < image.size()
                                      ? image[die_pc[lane]]
                                      : 0;
            group.setBusLanesBytes(instr, die_instr.data());
            group.evaluate();
            group.clockEdge();
            group.exposeState(cone);
            group.gatherBusBytes(pc, die_pc.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * 100 * lanes);
}
BENCHMARK(BM_LaneGroupCycleRate)->Arg(64)->Arg(256)->Arg(512);

/** Full gate-level fault simulation of every defective die on the
 *  scalar clone-per-die path — the speedup yardstick for the lane
 *  batching; the thread count sweeps single-threaded to auto (0). */
void
BM_WaferStudyGateLevel(benchmark::State &state)
{
    for (auto _ : state) {
        WaferStudyConfig cfg;
        cfg.seed = 5;
        cfg.gateLevelErrors = true;
        cfg.testCycles = 600;
        cfg.threads = static_cast<unsigned>(state.range(0));
        cfg.batchLanes = 1;
        auto res = runWaferStudy(cfg);
        benchmark::DoNotOptimize(res.yield(4.5, true));
    }
}
BENCHMARK(BM_WaferStudyGateLevel)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

/** The same wafer workload with defective dies packed into wide
 *  lane groups (the runWaferStudy default, up to 512 lanes);
 *  bit-identical yields and error counts to
 *  BM_WaferStudyGateLevel's scalar path. */
void
BM_WaferStudyGateLevelBatched(benchmark::State &state)
{
    for (auto _ : state) {
        WaferStudyConfig cfg;
        cfg.seed = 5;
        cfg.gateLevelErrors = true;
        cfg.testCycles = 600;
        cfg.threads = static_cast<unsigned>(state.range(0));
        cfg.batchLanes = 512;
        auto res = runWaferStudy(cfg);
        benchmark::DoNotOptimize(res.yield(4.5, true));
    }
}
BENCHMARK(BM_WaferStudyGateLevelBatched)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace flexi

namespace
{

/**
 * The build flavor the google-benchmark *library* was compiled with
 * (its NDEBUG, not ours). There is no public getter, but the
 * library's own JSONReporter prints it in the context block, so
 * render one into a string and read it back.
 */
std::string
benchmarkLibraryBuildType()
{
    benchmark::JSONReporter probe;
    std::ostringstream out;
    probe.SetOutputStream(&out);
    probe.SetErrorStream(&out);
    benchmark::BenchmarkReporter::Context ctx;
    probe.ReportContext(ctx);
    return out.str().find("library_build_type\": \"debug") !=
                   std::string::npos
               ? "debug"
               : "release";
}

} // namespace

int
main(int argc, char **argv)
{
    // The committed snapshot is only meaningful from an optimized
    // build: refuse to run from a debug (assert-enabled) build
    // unless explicitly overridden, and record the build type in the
    // JSON context either way. flexi_build_type is the authoritative
    // flavor of the measured code; library_build_type (emitted by
    // google-benchmark) describes the harness. A debug harness only
    // adds per-batch reporting overhead outside the timed loops, so
    // it is recorded and warned about rather than refused — some
    // distros only ship a debug-flavored libbenchmark.
#ifdef NDEBUG
    benchmark::AddCustomContext("flexi_build_type", "release");
#else
    if (!std::getenv("FLEXI_BENCH_ALLOW_DEBUG")) {
        std::fprintf(stderr,
                     "bench_sim_throughput: refusing to benchmark a "
                     "debug build (numbers would be meaningless); "
                     "configure with -DCMAKE_BUILD_TYPE=Release or "
                     "set FLEXI_BENCH_ALLOW_DEBUG=1 to override\n");
        return 1;
    }
    benchmark::AddCustomContext("flexi_build_type", "debug");
#endif
    if (benchmarkLibraryBuildType() == "debug")
        std::fprintf(stderr,
                     "bench_sim_throughput: warning: the "
                     "google-benchmark library is a debug build "
                     "(library_build_type=debug in the JSON "
                     "context); measured loops are unaffected, but "
                     "harness overhead is not representative\n");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
