/**
 * @file
 * Regenerates Table 6: the benchmark suite with static instruction
 * counts (base FlexiCore4 ISA), application type, and input size,
 * plus the ExtAcc4 / LoadStore4 measurements used by Section 6.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "bench_util.hh"
#include "kernels/kernels.hh"

using namespace flexi;

namespace
{

const char *
typeOf(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return "Interactive";
      case KernelId::FirFilter: return "Streaming";
      case KernelId::DecisionTree: return "Reactive";
      case KernelId::IntAvg: return "Streaming";
      case KernelId::Thresholding: return "Streaming";
      case KernelId::ParityCheck: return "Reactive";
      case KernelId::XorShift8: return "Reactive";
      default: return "?";
    }
}

const char *
inputOf(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return "Operands + Operation";
      case KernelId::FirFilter: return "Per input";
      case KernelId::DecisionTree: return "Depth 4, 3 features";
      case KernelId::IntAvg: return "Per input";
      case KernelId::Thresholding: return "Per input";
      case KernelId::ParityCheck: return "8-bit";
      case KernelId::XorShift8: return "8-bit";
      default: return "?";
    }
}

unsigned
paperStatic(KernelId id)
{
    switch (id) {
      case KernelId::Calculator: return 352;
      case KernelId::FirFilter: return 177;
      case KernelId::DecisionTree: return 210;
      case KernelId::IntAvg: return 132;
      case KernelId::Thresholding: return 102;
      case KernelId::ParityCheck: return 105;
      case KernelId::XorShift8: return 186;
      default: return 0;
    }
}

} // namespace

int
main()
{
    benchHeader("Table 6", "Benchmark applications and static "
                "instruction counts");

    TextTable t({"Kernel", "Static (ours)", "Static (paper)", "Pages",
                 "Type", "Input Size"});
    size_t total = 0;
    for (KernelId id : allKernels()) {
        Program p = assemble(IsaKind::FlexiCore4,
                             kernelSource(id, IsaKind::FlexiCore4));
        total += p.staticInstructions();
        t.addRow({kernelName(id),
                  std::to_string(p.staticInstructions()),
                  std::to_string(paperStatic(id)),
                  std::to_string(p.numPages()), typeOf(id),
                  inputOf(id)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nSuite total (base ISA): %zu static instructions\n",
                total);
    std::printf("Multi-page kernels (Calculator, Decision Tree) run "
                "through the off-chip MMU\nusing the {0xA, 0x5, page} "
                "output-port escape protocol (Section 5.1).\n");

    std::printf("\nPer-ISA static footprint (Section 6 inputs):\n");
    TextTable t2({"Kernel", "FC4 instr", "ExtAcc4 instr",
                  "LoadStore4 instr", "FC4 bits", "Ext bits",
                  "LS bits"});
    for (KernelId id : allKernels()) {
        Program b = assemble(IsaKind::FlexiCore4,
                             kernelSource(id, IsaKind::FlexiCore4));
        Program e = assemble(IsaKind::ExtAcc4,
                             kernelSource(id, IsaKind::ExtAcc4));
        Program l = assemble(IsaKind::LoadStore4,
                             kernelSource(id, IsaKind::LoadStore4));
        t2.addRow({kernelName(id),
                   std::to_string(b.staticInstructions()),
                   std::to_string(e.staticInstructions()),
                   std::to_string(l.staticInstructions()),
                   std::to_string(b.codeSizeBits()),
                   std::to_string(e.codeSizeBits()),
                   std::to_string(l.codeSizeBits())});
    }
    std::printf("%s", t2.str().c_str());
    return 0;
}
