/**
 * @file
 * Ablation: yield vs supply voltage — the knob behind Table 5's two
 * operating points. Sweeps Vdd and separates defect-limited from
 * timing-limited yield, showing FlexiCore8's cliff walking down in
 * voltage (its longer ripple-carry chain) while FlexiCore4 degrades
 * gracefully.
 */

#include <cstdio>

#include "bench_util.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

int
main()
{
    benchHeader("Ablation: yield vs supply voltage",
                "inclusion-zone yield across Vdd");

    WaferMap wafer;
    TextTable t({"Vdd (V)", "FC4 yield", "FC4 timing-ok",
                 "FC8 yield", "FC8 timing-ok"});

    DieModel fc4(designSpecFor(IsaKind::FlexiCore4));
    DieModel fc8(designSpecFor(IsaKind::FlexiCore8));

    for (double vdd = 2.5; vdd <= 5.01; vdd += 0.5) {
        double y[2] = {0, 0}, tim[2] = {0, 0};
        const DieModel *models[2] = {&fc4, &fc8};
        for (int m = 0; m < 2; ++m) {
            Rng rng(77);
            size_t total = 0, good = 0, tok = 0;
            for (int w = 0; w < 30; ++w) {
                for (const DieSite &site : wafer.sites()) {
                    if (!site.inInclusionZone)
                        continue;
                    ++total;
                    DieSample die =
                        models[m]->sample(site, wafer, rng);
                    good += models[m]->functional(die, vdd);
                    tok += models[m]->meetsTiming(die, vdd);
                }
            }
            y[m] = static_cast<double>(good) / total;
            tim[m] = static_cast<double>(tok) / total;
        }
        t.addRow({fmtDouble(vdd, 1), pct(y[0]), pct(tim[0]),
                  pct(y[1]), pct(tim[1])});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nAnchors: Table 5's points are 3.0 V and 4.5 V. "
                "Above ~4.5 V both designs are\ndefect-limited (the "
                "device-count gap); below ~3.5 V FlexiCore8 falls "
                "off its\ntiming cliff roughly one half-volt before "
                "FlexiCore4 — the 2x carry chain.\n");
    return 0;
}
