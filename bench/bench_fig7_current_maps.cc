/**
 * @file
 * Regenerates Figure 7 and the Section 4.2 process-variation study:
 * per-die current draw at 3 V and 4.5 V, with the mean / range /
 * relative standard deviation statistics the paper reports.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

namespace
{

void
printMap(const WaferStudyResult &res, double vdd)
{
    RunningStat st = res.currentStats(vdd);
    std::printf("\n%s at %.1f V (current draw, mA; functional dies "
                "only)\n", res.spec.name.c_str(), vdd);
    std::printf("  mean %.2f mA, range %.2f-%.2f mA, stddev %.3f mA, "
                "RSD %.1f%%\n", st.mean() * 1e3, st.min() * 1e3,
                st.max() * 1e3, st.stddev() * 1e3, st.rsd() * 100);

    std::map<std::pair<int, int>, const DieResult *> grid;
    int min_c = 0, max_c = 0, min_r = 0, max_r = 0;
    for (const auto &die : res.dies) {
        grid[{die.site.row, die.site.col}] = &die;
        min_c = std::min(min_c, die.site.col);
        max_c = std::max(max_c, die.site.col);
        min_r = std::min(min_r, die.site.row);
        max_r = std::max(max_r, die.site.row);
    }
    for (int r = min_r; r <= max_r; ++r) {
        std::printf("  ");
        for (int c = min_c; c <= max_c; ++c) {
            auto it = grid.find({r, c});
            if (it == grid.end()) {
                std::printf("      ");
                continue;
            }
            const DieProbe &probe =
                vdd > 4.0 ? it->second->at45V : it->second->at3V;
            if (!probe.functional())
                std::printf("    x ");
            else
                std::printf(" %4.2f ", probe.currentA * 1e3);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    benchHeader("Figure 7 / Section 4.2",
                "Current draw and process variation");

    for (IsaKind isa : {IsaKind::FlexiCore4, IsaKind::FlexiCore8}) {
        WaferStudyConfig cfg;
        cfg.isa = isa;
        cfg.seed = 42;
        cfg.gateLevelErrors = false;
        auto res = runWaferStudy(cfg);
        printMap(res, 4.5);
        printMap(res, 3.0);
    }

    std::printf("\nPaper reference (Section 4.2):\n");
    std::printf("  FlexiCore4: 1.1 mA mean @4.5 V (0.8-1.4), "
                "0.73 mA @3 V; RSD 15.3%%\n");
    std::printf("  FlexiCore8: 0.75 mA mean @4.5 V (0.60-1.4), "
                "0.65 mA @3 V; RSD 21.5%%\n");
    std::printf("  (FlexiCore8 wafer manufactured after the pull-up "
                "refinement: +50%% R => 2/3 current.)\n");
    return 0;
}
