/**
 * @file
 * Regenerates Figure 11: performance and energy of the six DSE cores
 * on every benchmark kernel, normalized against FlexiCore4. Each
 * core runs the real kernel binaries at its own SP&R f_max
 * (Section 6.2); energy is static power x runtime.
 */

#include <cstdio>

#include "bench_util.hh"
#include "dse/perf_model.hh"

using namespace flexi;

int
main()
{
    benchHeader("Figure 11", "DSE core performance & energy vs "
                "FlexiCore4 (per kernel)");

    auto cores = dseCores();
    constexpr size_t kWork = 24;
    constexpr uint64_t kSeed = 7;

    std::vector<std::string> header = {"Kernel"};
    for (const auto &c : cores)
        header.push_back(c.name());
    TextTable perf(header), energy(header);

    std::vector<double> perf_sum(cores.size(), 0.0);
    std::vector<double> energy_sum(cores.size(), 0.0);

    for (KernelId id : allKernels()) {
        auto base = evalFlexiCore4Baseline(id, kWork, kSeed);
        std::vector<std::string> prow = {kernelName(id)};
        std::vector<std::string> erow = {kernelName(id)};
        for (size_t i = 0; i < cores.size(); ++i) {
            auto r = evalDsePoint(id, cores[i], kWork, kSeed);
            double speedup = base.timeS / r.timeS;
            double erel = r.energyJ / base.energyJ;
            perf_sum[i] += speedup;
            energy_sum[i] += erel;
            prow.push_back(fmtDouble(speedup, 2));
            erow.push_back(fmtDouble(erel, 2));
        }
        perf.addRow(prow);
        energy.addRow(erow);
    }
    std::vector<std::string> pavg = {"Average"}, eavg = {"Average"};
    for (size_t i = 0; i < cores.size(); ++i) {
        pavg.push_back(fmtDouble(perf_sum[i] / kNumKernels, 2));
        eavg.push_back(fmtDouble(energy_sum[i] / kNumKernels, 2));
    }
    perf.addRow(pavg);
    energy.addRow(eavg);

    std::printf("\n(a) Speedup vs FlexiCore4 (higher is better)\n%s",
                perf.str().c_str());
    std::printf("\n(b) Energy relative to FlexiCore4 (lower is "
                "better)\n%s", energy.str().c_str());

    std::printf("\nPaper reference: single-cycle and pipelined cores "
                "outperform FlexiCore4 by\n53-115%% on average and "
                "consume 45-56%% of its energy; multicycle cores "
                "lose;\nshift-heavy kernels (XorShift8, IntAvg) gain "
                "the most; the Calculator gains\nleast on the "
                "accumulator ISA (IO-dominated).\n");
    return 0;
}
