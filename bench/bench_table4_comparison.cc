/**
 * @file
 * Regenerates Table 4 (FlexiCore4 / FlexiCore8 / FlexiCore4+
 * comparison) and the Section 3.5 openMSP430 comparison.
 *
 * FlexiCore4+ is the manufactured variant with the barrel shifter
 * and branch condition flags (Section 6.1, Figure 4c), built on the
 * refined (higher pull-up resistance) process.
 */

#include <cstdio>

#include "bench_util.hh"
#include "dse/area_model.hh"
#include "netlist/flexicore_netlist.hh"
#include "tech/technology.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

namespace
{

/**
 * Analytical openMSP430 estimate in 0.8 um IGZO, composed from the
 * same component models (16-bit datapath, 16-register dual-ported
 * file, 27-instruction decoder, multi-mode ALU). A 2.1x
 * synthesis/interconnect overhead (flat placement of a 'real' MCU
 * netlist vs our hand-structured cores) is applied and documented —
 * the paper reports 170 mm^2 / 41.2 mW for this design.
 */
double
msp430Nand2()
{
    double regfile = memoryArea(16, 16, 2);
    double alu = 6.0 * 16 * (2 * 2.5 + 3 * 1.0);   // 6 function units
    double decoder = 600.0;       // 27 instrs x 7 addressing modes
    double seq = 16 * 3 * 7.0 + 400.0;   // PC/SP/SR + state machine
    double mem_if = 500.0;
    double clock_periph = 800.0;
    return 2.1 * (regfile + alu + decoder + seq + mem_if +
                  clock_periph);
}

} // namespace

int
main()
{
    benchHeader("Table 4", "Comparison of the FlexiCore chips");

    Technology base_tech(false), refined(true);

    auto fc4 = buildFlexiCore4Netlist();
    auto fc8 = buildFlexiCore8Netlist();

    // FlexiCore4+: base accumulator core + shifter + flags, on the
    // refined process.
    DesignPoint plus;
    plus.features.barrelShifter = true;
    plus.features.branchFlags = true;
    plus.features.coalescing = false;
    plus.features.exchange = false;
    plus.features.subroutines = false;
    double plus_nand2 = areaOf(plus).total();
    double plus_devices = plus_nand2 * 3.4;
    double per_nand2_ua = fc4->totalStaticCurrentUa() /
                          fc4->totalNand2Area();

    // Average inclusion-zone yields over several wafers.
    double y4 = 0, y8 = 0;
    constexpr int kWafers = 12;
    for (int s = 0; s < kWafers; ++s) {
        WaferStudyConfig cfg;
        cfg.seed = 100 + s;
        cfg.gateLevelErrors = false;
        cfg.isa = IsaKind::FlexiCore4;
        y4 += runWaferStudy(cfg).yield(4.5, true);
        cfg.isa = IsaKind::FlexiCore8;
        y8 += runWaferStudy(cfg).yield(4.5, true);
    }
    y4 /= kWafers;
    y8 /= kWafers;

    TextTable t({"", "FlexiCore4", "FlexiCore8", "FlexiCore4+",
                 "paper (FC4/FC8/FC4+)"});
    t.addRow({"Area (mm^2)",
              fmtDouble(base_tech.areaMm2(fc4->totalNand2Area()), 2),
              fmtDouble(base_tech.areaMm2(fc8->totalNand2Area()), 2),
              fmtDouble(base_tech.areaMm2(plus_nand2), 2),
              "5.56 / 6.05 / 6.4"});
    t.addRow({"Voltage (V)", "4.5", "4.5", "4.5", "4.5"});
    t.addRow({"Mean Power (mW)",
              fmtDouble(base_tech.staticPower(
                  fc4->totalStaticCurrentUa(), 4.5) * 1e3, 1),
              fmtDouble(refined.staticPower(
                  fc8->totalStaticCurrentUa(), 4.5) * 1e3, 1),
              fmtDouble(refined.staticPower(
                  plus_nand2 * per_nand2_ua, 4.5) * 1e3, 1),
              "4.9 / 3.9 / 3.4"});
    t.addRow({"Yield (incl. zone, 4.5 V)", pct(y4), pct(y8), "n/a",
              "81% / 57% / n/a"});
    t.addRow({"Devices",
              std::to_string(fc4->totalDevices()),
              std::to_string(fc8->totalDevices()),
              std::to_string(static_cast<unsigned>(plus_devices)),
              "2104 / 2335 / 2420"});
    t.addRow({"Clock Freq (kHz)", "12.5", "12.5", "12.5", "12.5"});
    t.addRow({"Datapath (bit)", "4", "8", "4", "4 / 8 / 4"});
    std::printf("%s", t.str().c_str());

    benchHeader("Section 3.5", "openMSP430 in 0.8 um IGZO (modeled)");
    double msp = msp430Nand2();
    double fc4_area = fc4->totalNand2Area();
    std::printf("  modeled MSP430 area: %.0f mm^2 (paper: 170 mm^2)\n",
                base_tech.areaMm2(msp));
    std::printf("  area ratio vs FlexiCore4: %.1fx (paper: 30x)\n",
                msp / fc4_area);
    std::printf("  modeled MSP430 power: %.1f mW (paper: 41.2 mW)\n",
                base_tech.staticPower(msp * per_nand2_ua, 4.5) * 1e3);
    std::printf("  power ratio vs FlexiCore4: %.1fx (paper: 23x)\n",
                msp / fc4_area);
    return 0;
}
