/**
 * @file
 * google-benchmark harness for the field-fleet lifecycle engine.
 *
 * Two questions, two benchmark families:
 *
 *  - BM_FleetMillionDieLifetimes: raw campaign throughput. One
 *    iteration deploys 2^20 dies and runs each through its full
 *    2-epoch lifecycle (over 2M missions) with field-realistic fault
 *    pressure, exercising the 512-lane prescreen packing end to end.
 *    One item = one die-lifetime, so ns/item from bench_compare.py
 *    is the cost of fielding one part for the whole campaign.
 *
 *  - BM_FleetPolicyCurves/<policy>: availability and SDC curves per
 *    recovery policy and per deployment bin, emitted as benchmark
 *    counters (avail_eN and sdc_eN per epoch, avail/sdc per bin, pulled
 *    dies). The counters are the numbers EXPERIMENTS.md plots; the
 *    timing row guards the prescreen/scalar split from regressing
 *    under fault pressure.
 *
 * CI re-emits BENCH_fleet.json every run and diffs the timing
 * metrics against the committed snapshot with bench_compare.py
 * (loose threshold — see docs/PERF.md for the snapshot contract).
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include <benchmark/benchmark.h>

#include "fleet/fleet.hh"

namespace flexi
{
namespace
{

/** Field-pressure campaign shared by the policy-curve variants:
 *  small enough to sweep four policies, hot enough that every rung
 *  of the escalation ladder fires. */
FleetConfig
curveConfig()
{
    FleetConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 11;
    cfg.numDies = 4096;
    cfg.epochs = 4;
    cfg.workUnits = 1;
    cfg.transientsPerEpoch = 0.15;
    cfg.flipsPerEpoch = 0.05;
    // Hangs burn the whole budget in the scalar authoritative rerun;
    // keep it a few mission-lengths, not the CLI default.
    cfg.maxInstructions = 8000;
    return cfg;
}

void
stateCounters(benchmark::State &state, const FleetState &st)
{
    for (uint32_t e = 0; e < st.epochsDone; ++e) {
        std::string suffix = "_e" + std::to_string(e);
        state.counters["avail" + suffix] = st.availability(e);
        state.counters["sdc" + suffix] = st.sdcRate(e);
    }
    static const char *binName[2] = {"functional", "salvaged"};
    for (size_t b = 0; b < 2; ++b) {
        uint64_t missions = 0;
        for (uint64_t n : st.binOutcomes[b])
            missions += n;
        if (!missions)
            continue;
        const auto &row = st.binOutcomes[b];
        double good =
            static_cast<double>(row[size_t(FaultOutcome::Masked)] +
                                row[size_t(FaultOutcome::Recovered)]);
        double sdc =
            static_cast<double>(row[size_t(FaultOutcome::Sdc)]);
        state.counters[std::string("avail_") + binName[b]] =
            good / static_cast<double>(missions);
        state.counters[std::string("sdc_") + binName[b]] =
            sdc / static_cast<double>(missions);
    }
    state.counters["pulled"] = static_cast<double>(st.deaths);
}

/**
 * One full campaign per iteration under the given policy; one item
 * = one die-lifetime.
 */
void
BM_FleetPolicyCurves(benchmark::State &state, const FleetConfig &cfg)
{
    FleetEngine engine(cfg);
    FleetState last;
    for (auto _ : state) {
        FleetState st = engine.init();
        engine.run(st);
        benchmark::DoNotOptimize(st.deaths);
        last = std::move(st);
    }
    state.SetItemsProcessed(state.iterations() * cfg.numDies);
    stateCounters(state, last);
}

FleetConfig
policyOff()
{
    FleetConfig cfg = curveConfig();
    cfg.detectors = DetectorConfig{false, false, false,
                                   cfg.detectors.watchdogCycles};
    cfg.recovery.enabled = false;
    return cfg;
}

FleetConfig
policyDetect()
{
    FleetConfig cfg = curveConfig();
    cfg.recovery.enabled = false;
    return cfg;
}

FleetConfig
policyRecover()
{
    return curveConfig();
}

FleetConfig
policyLockstep()
{
    FleetConfig cfg = curveConfig();
    cfg.detectors.lockstep = true;
    return cfg;
}

FleetConfig
policyFc8Recover()
{
    FleetConfig cfg = curveConfig();
    cfg.isa = IsaKind::FlexiCore8;
    cfg.fc8Program = 0;
    return cfg;
}

BENCHMARK_CAPTURE(BM_FleetPolicyCurves, off, policyOff())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetPolicyCurves, detect, policyDetect())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetPolicyCurves, recover, policyRecover())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetPolicyCurves, lockstep, policyLockstep())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetPolicyCurves, fc8_recover,
                  policyFc8Recover())
    ->Unit(benchmark::kMillisecond);

/**
 * The headline scale claim: 2^20 deployed dies, each through its
 * full 2-epoch lifecycle (2M+ missions), in one perf-smoke
 * iteration. Low fault pressure keeps the word-parallel prescreen
 * authoritative for the overwhelming majority of lanes — this is
 * the regime the LaneGroup packing exists for.
 */
void
BM_FleetMillionDieLifetimes(benchmark::State &state)
{
    FleetConfig cfg;
    cfg.isa = IsaKind::FlexiCore4;
    cfg.seed = 3;
    cfg.numDies = 1u << 20;
    cfg.epochs = 2;
    cfg.workUnits = 1;
    cfg.transientsPerEpoch = 0.02;
    cfg.flipsPerEpoch = 0.01;
    cfg.maxInstructions = 8000;
    FleetEngine engine(cfg);
    FleetState last;
    for (auto _ : state) {
        FleetState st = engine.init();
        engine.run(st);
        benchmark::DoNotOptimize(st.deaths);
        last = std::move(st);
    }
    state.SetItemsProcessed(state.iterations() * cfg.numDies);
    stateCounters(state, last);
}
BENCHMARK(BM_FleetMillionDieLifetimes)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace flexi

namespace
{

/** Same probe as bench_sim_throughput: the flavor the benchmark
 *  *library* was built with, read back out of its JSONReporter. */
std::string
benchmarkLibraryBuildType()
{
    benchmark::JSONReporter probe;
    std::ostringstream out;
    probe.SetOutputStream(&out);
    probe.SetErrorStream(&out);
    benchmark::BenchmarkReporter::Context ctx;
    probe.ReportContext(ctx);
    return out.str().find("library_build_type\": \"debug") !=
                   std::string::npos
               ? "debug"
               : "release";
}

} // namespace

int
main(int argc, char **argv)
{
    // Committed snapshots must come from optimized builds; record
    // the flavor in the JSON context so bench_compare.py can refuse
    // debug numbers (same contract as bench_sim_throughput).
#ifdef NDEBUG
    benchmark::AddCustomContext("flexi_build_type", "release");
#else
    if (!std::getenv("FLEXI_BENCH_ALLOW_DEBUG")) {
        std::fprintf(stderr,
                     "bench_fleet: refusing to benchmark a debug "
                     "build (numbers would be meaningless); "
                     "configure with -DCMAKE_BUILD_TYPE=Release or "
                     "set FLEXI_BENCH_ALLOW_DEBUG=1 to override\n");
        return 1;
    }
    benchmark::AddCustomContext("flexi_build_type", "debug");
#endif
    if (benchmarkLibraryBuildType() == "debug")
        std::fprintf(stderr,
                     "bench_fleet: warning: the google-benchmark "
                     "library is a debug build; measured loops are "
                     "unaffected, but harness overhead is not "
                     "representative\n");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
