/**
 * @file
 * Regenerates Figure 10: per-kernel code size under each ISA
 * extension, relative to the base FlexiCore4 ISA. Individual
 * extensions use the idiom-census estimator; the revised set and the
 * load-store ISA are measured from the real assembled kernels.
 */

#include <cstdio>

#include "bench_util.hh"
#include "dse/code_size.hh"

using namespace flexi;

int
main()
{
    benchHeader("Figure 10", "Per-kernel code size vs ISA extension "
                "(relative to base FlexiCore4)");

    IsaFeatures adc, shift, flags, mul, xch, call;
    adc.coalescing = true;
    shift.barrelShifter = true;
    flags.branchFlags = true;
    mul.multiplier = true;
    xch.exchange = true;
    call.subroutines = true;

    TextTable t({"Kernel", "ADC", "RShift", "Flags", "Mult", "Xch",
                 "Call", "Revised(est)", "Ext(meas)", "LS(meas)"});

    double sum_ext = 0, sum_base = 0;
    for (KernelId id : allKernels()) {
        double base = static_cast<double>(
            measuredCodeSize(id, IsaKind::FlexiCore4).instructions);
        auto rel = [&](const IsaFeatures &f) {
            return fmtDouble(
                estimatedCodeSize(id, f).instructions / base, 2);
        };
        double ext = static_cast<double>(
            measuredCodeSize(id, IsaKind::ExtAcc4).instructions);
        double ls = static_cast<double>(
            measuredCodeSize(id, IsaKind::LoadStore4).instructions);
        sum_ext += ext;
        sum_base += base;
        t.addRow({kernelName(id), rel(adc), rel(shift), rel(flags),
                  rel(mul), rel(xch), rel(call),
                  fmtDouble(estimatedCodeSize(
                                id, IsaFeatures::revised())
                                    .instructions / base, 2),
                  fmtDouble(ext / base, 2), fmtDouble(ls / base, 2)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nSuite aggregate, revised ISA (measured): %.2f of "
                "base instructions\n", sum_ext / sum_base);
    std::printf("Paper shape: the right-shift extension dominates for "
                "XorShift8/IntAvg (Listing 1's\n~30-instruction shift "
                "dance collapses to one lsri); flags help every "
                "kernel's\nunconditional branches; the multiplier "
                "only helps the Calculator.\n");
    return 0;
}
