/**
 * @file
 * Ablation: volume economics of gate count — the paper's headline
 * motivation ("sub-cent cost if produced at volume", Abstract;
 * Section 1's item-level tagging argument).
 *
 * Sweeps core complexity (device count, scaling area and critical
 * path with it), runs the yield model at each point, and converts to
 * cost per functional die for a flexible wafer at volume. Shows why
 * < 800 NAND2 was the design target: cost explodes once dies stop
 * fitting the defect statistics and the wafer.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "yield/wafer_study.hh"

using namespace flexi;

namespace
{

/** Volume wafer cost assumption for a 200 mm flexible polyimide
 *  wafer on a FlexLogIC-class line (dollars). */
constexpr double kWaferCostUsd = 5.0;

} // namespace

int
main()
{
    benchHeader("Ablation: cost vs gate count",
                "yield-aware cost per functional die");

    DesignSpec fc4 = designSpecFor(IsaKind::FlexiCore4);
    WaferMap base_wafer;

    TextTable t({"Devices", "Die mm^2", "Dies/wafer", "Yield@4.5V",
                 "Good dies", "Cost/die", "Note"});

    const struct { double scale; const char *note; } points[] = {
        {0.5, "half a FlexiCore4"},
        {1.0, "FlexiCore4 (this work)"},
        {1.16, "FlexiCore8"},
        {2.0, "2x FlexiCore4"},
        {4.0, "small 8-bit MCU class"},
        {9.0, "openMSP430 class"},
        {29.0, "PlasticARM class"},
    };

    for (const auto &pt : points) {
        DesignSpec spec = fc4;
        spec.name = "sweep";
        spec.devices =
            static_cast<unsigned>(fc4.devices * pt.scale);
        // Critical path grows slowly with complexity (wider adders,
        // deeper muxing): ~cube root of device count.
        spec.critDelayUnits =
            fc4.critDelayUnits * std::cbrt(pt.scale);

        // Die area tracks device count. At volume, dies pack the
        // usable wafer densely (the paper's 123-die wafer is a
        // sparse test layout); a production 200 mm wafer inside the
        // 16 mm exclusion ring holds ~0.85 x area / die.
        double die_mm2 = 9.0 * pt.scale;   // 9 mm^2 incl. IO ring
        double r = base_wafer.inclusionRadiusMm();
        double usable = 3.14159265 * r * r * 0.85;
        double dies_per_wafer = std::floor(usable / die_mm2);

        // Yield over inclusion-zone manufacturing statistics.
        DieModel model(spec);
        Rng rng(1234);
        size_t functional = 0, total = 0;
        constexpr int kWafers = 40;
        for (int w = 0; w < kWafers; ++w) {
            for (const DieSite &site : base_wafer.sites()) {
                if (!site.inInclusionZone)
                    continue;
                ++total;
                DieSample die = model.sample(site, base_wafer, rng);
                functional += model.functional(die, kVddNominal);
            }
        }
        double yield = total ? static_cast<double>(functional) / total
                             : 0.0;
        double good_per_wafer = yield * dies_per_wafer;
        double cost = good_per_wafer >= 1
            ? kWaferCostUsd / good_per_wafer : 1e9;
        t.addRow({std::to_string(spec.devices), fmtDouble(die_mm2, 1),
                  fmtDouble(dies_per_wafer, 0),
                  pct(yield),
                  fmtDouble(good_per_wafer, 0),
                  cost < 1e6 ? strfmt("%.3f c", cost * 100)
                             : "n/a",
                  pt.note});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nAssumes a $%.0f 200 mm flexible wafer at volume, "
                "densely packed (the fabricated\n123-die wafer is a "
                "sparse test layout). A FlexiCore4-class die lands "
                "below one\ncent; PlasticARM-class complexity costs "
                "orders of magnitude more per good die\n(fewer dies "
                "x collapsing yield) — the Section 1 economics.\n",
                kWaferCostUsd);
    return 0;
}
