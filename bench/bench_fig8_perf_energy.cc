/**
 * @file
 * Regenerates Figure 8: measured latency and energy of every
 * benchmark kernel on the fabricated FlexiCore4 (12.5 kHz, 4.5 V).
 *
 * As in the paper: dynamic instruction counts depend on input
 * values, so latencies are means under uniform sampling over the
 * input space (exhaustive for the calculator ops); streaming kernels
 * (IntAvg, Thresholding, FIR) report latency and energy *per input*;
 * IO time is included. The paper's headline band: kernels take
 * 4.28-12.9 ms and 21.0-61.4 uJ at ~360 nJ per instruction.
 */

#include <cstdio>

#include "bench_util.hh"
#include "kernels/inputs.hh"
#include "kernels/runner.hh"
#include "netlist/flexicore_netlist.hh"
#include "tech/technology.hh"

using namespace flexi;

int
main()
{
    benchHeader("Figure 8", "FlexiCore4 kernel latency and energy "
                "(fabricated chip: 12.5 kHz, 4.5 V)");

    Technology tech(false);
    auto nl = buildFlexiCore4Netlist();
    double power = tech.staticPower(nl->totalStaticCurrentUa(), 4.5);
    double nj_per_cycle = power / kClockHz * 1e9;

    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};

    TextTable t({"Kernel", "dyn instr/work", "Time (ms)",
                 "Energy (uJ)"});
    constexpr size_t kWork = 64;
    double tmin = 1e9, tmax = 0;
    for (KernelId id : allKernels()) {
        KernelRun run = runKernel(id, cfg, kWork, 97);
        double cycles_per_work =
            static_cast<double>(run.stats.cycles) / kWork;
        double time_ms = cycles_per_work / kClockHz * 1e3;
        double energy_uj = power * time_ms * 1e-3 * 1e6;
        tmin = std::min(tmin, time_ms);
        tmax = std::max(tmax, time_ms);
        t.addRow({kernelName(id),
                  fmtDouble(static_cast<double>(run.stats.instructions)
                            / kWork, 1),
                  fmtDouble(time_ms, 2), fmtDouble(energy_uj, 1)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\nEnergy per instruction: %.0f nJ "
                "(paper: ~360 nJ)\n", nj_per_cycle);
    std::printf("Measured latency band: %.2f-%.1f ms "
                "(paper: 4.28-12.9 ms)\n", tmin, tmax);
    std::printf("\nBattery estimate (Section 5.2): IIR filtering + "
                "thresholding on 1 sample/s with\nperfect power "
                "gating: ");
    // IntAvg + Thresholding back to back per sample.
    KernelRun avg = runKernel(KernelId::IntAvg, cfg, 64, 5);
    KernelRun thr = runKernel(KernelId::Thresholding, cfg, 64, 5);
    double cycles = (avg.stats.cycles + thr.stats.cycles) / 64.0;
    double j_per_day = power * cycles / kClockHz * 86400.0;
    double battery_j = 3.0 * 5e-3 * 3600.0;   // 3 V, 5 mAh
    std::printf("%.2f J/day; a 3 V 5 mAh flexible battery lasts "
                "%.0f days\n(paper: 3.6 J/day, two weeks).\n",
                j_per_day, battery_j / j_per_day);
    return 0;
}
