/**
 * @file
 * Ablation: data-memory organization — the Section 3.5 argument for
 * the accumulator ISA (one memory port) and for narrow datatypes
 * (more words per area).
 *
 * Sweeps word count and port count; prints absolute area and the
 * relative cost of the second port that a load-store or
 * memory-memory architecture would need.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/logging.hh"
#include "dse/area_model.hh"

using namespace flexi;

int
main()
{
    benchHeader("Ablation: memory organization",
                "area vs words / width / ports (NAND2-eq)");

    TextTable t({"Words x Width", "1 port", "2 ports", "2nd port",
                 "Note"});
    const struct { unsigned words, width; const char *note; } cfgs[] = {
        {4, 8, "FlexiCore8's array"},
        {8, 4, "FlexiCore4's array"},
        {16, 4, "doubled memory (Fig 9: rejected)"},
        {32, 4, "4x memory"},
        {8, 8, "8 octets"},
    };
    for (const auto &c : cfgs) {
        double one = memoryArea(c.words, c.width, 1);
        double two = memoryArea(c.words, c.width, 2);
        t.addRow({strfmt("%2u x %u", c.words, c.width),
                  fmtDouble(one, 0), fmtDouble(two, 0),
                  "+" + pct(two / one - 1.0), c.note});
    }
    std::printf("%s", t.str().c_str());

    std::printf("\nPaper reference (Section 3.5): a second port "
                "would cost +39%% on FlexiCore4's\n8-word array and "
                "+25%% on FlexiCore8's 4-word array; the port cost "
                "grows with\nword count, which is why the accumulator "
                "ISA (single port) wins, and why\nnarrow 4-bit words "
                "double the capacity of the dominant module for "
                "free.\n");
    return 0;
}
