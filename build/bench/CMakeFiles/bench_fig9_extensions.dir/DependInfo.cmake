
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_extensions.cc" "bench/CMakeFiles/bench_fig9_extensions.dir/bench_fig9_extensions.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_extensions.dir/bench_fig9_extensions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dse/CMakeFiles/flexi_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/flexi_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/flexi_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/flexi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/flexi_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
