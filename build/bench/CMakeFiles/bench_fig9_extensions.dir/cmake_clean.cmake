file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_extensions.dir/bench_fig9_extensions.cc.o"
  "CMakeFiles/bench_fig9_extensions.dir/bench_fig9_extensions.cc.o.d"
  "bench_fig9_extensions"
  "bench_fig9_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
