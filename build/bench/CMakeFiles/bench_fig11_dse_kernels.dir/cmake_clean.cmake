file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dse_kernels.dir/bench_fig11_dse_kernels.cc.o"
  "CMakeFiles/bench_fig11_dse_kernels.dir/bench_fig11_dse_kernels.cc.o.d"
  "bench_fig11_dse_kernels"
  "bench_fig11_dse_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dse_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
