# Empty dependencies file for bench_fig11_dse_kernels.
# This may be replaced when dependencies are built.
