file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_applications.dir/bench_table1_applications.cc.o"
  "CMakeFiles/bench_table1_applications.dir/bench_table1_applications.cc.o.d"
  "bench_table1_applications"
  "bench_table1_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
