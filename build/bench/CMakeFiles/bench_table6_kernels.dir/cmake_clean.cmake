file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_kernels.dir/bench_table6_kernels.cc.o"
  "CMakeFiles/bench_table6_kernels.dir/bench_table6_kernels.cc.o.d"
  "bench_table6_kernels"
  "bench_table6_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
