# Empty compiler generated dependencies file for bench_fig8_perf_energy.
# This may be replaced when dependencies are built.
