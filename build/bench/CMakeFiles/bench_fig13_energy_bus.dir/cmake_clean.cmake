file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_energy_bus.dir/bench_fig13_energy_bus.cc.o"
  "CMakeFiles/bench_fig13_energy_bus.dir/bench_fig13_energy_bus.cc.o.d"
  "bench_fig13_energy_bus"
  "bench_fig13_energy_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_energy_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
