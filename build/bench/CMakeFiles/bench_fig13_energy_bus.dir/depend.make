# Empty dependencies file for bench_fig13_energy_bus.
# This may be replaced when dependencies are built.
