# Empty dependencies file for bench_table2_3_breakdown.
# This may be replaced when dependencies are built.
