# Empty compiler generated dependencies file for bench_fig12_area_codesize.
# This may be replaced when dependencies are built.
