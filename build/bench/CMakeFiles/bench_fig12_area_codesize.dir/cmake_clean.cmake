file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_area_codesize.dir/bench_fig12_area_codesize.cc.o"
  "CMakeFiles/bench_fig12_area_codesize.dir/bench_fig12_area_codesize.cc.o.d"
  "bench_fig12_area_codesize"
  "bench_fig12_area_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_area_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
