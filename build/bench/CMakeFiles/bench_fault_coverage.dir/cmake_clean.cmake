file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_coverage.dir/bench_fault_coverage.cc.o"
  "CMakeFiles/bench_fault_coverage.dir/bench_fault_coverage.cc.o.d"
  "bench_fault_coverage"
  "bench_fault_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
