# Empty compiler generated dependencies file for bench_fault_coverage.
# This may be replaced when dependencies are built.
