file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_voltage.dir/bench_ablation_voltage.cc.o"
  "CMakeFiles/bench_ablation_voltage.dir/bench_ablation_voltage.cc.o.d"
  "bench_ablation_voltage"
  "bench_ablation_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
