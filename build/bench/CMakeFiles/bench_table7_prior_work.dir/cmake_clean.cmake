file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_prior_work.dir/bench_table7_prior_work.cc.o"
  "CMakeFiles/bench_table7_prior_work.dir/bench_table7_prior_work.cc.o.d"
  "bench_table7_prior_work"
  "bench_table7_prior_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_prior_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
