# Empty dependencies file for bench_fig7_current_maps.
# This may be replaced when dependencies are built.
