file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_current_maps.dir/bench_fig7_current_maps.cc.o"
  "CMakeFiles/bench_fig7_current_maps.dir/bench_fig7_current_maps.cc.o.d"
  "bench_fig7_current_maps"
  "bench_fig7_current_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_current_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
