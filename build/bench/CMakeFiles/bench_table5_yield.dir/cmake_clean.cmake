file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_yield.dir/bench_table5_yield.cc.o"
  "CMakeFiles/bench_table5_yield.dir/bench_table5_yield.cc.o.d"
  "bench_table5_yield"
  "bench_table5_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
