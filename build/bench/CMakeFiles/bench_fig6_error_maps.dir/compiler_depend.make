# Empty compiler generated dependencies file for bench_fig6_error_maps.
# This may be replaced when dependencies are built.
