file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_error_maps.dir/bench_fig6_error_maps.cc.o"
  "CMakeFiles/bench_fig6_error_maps.dir/bench_fig6_error_maps.cc.o.d"
  "bench_fig6_error_maps"
  "bench_fig6_error_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_error_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
