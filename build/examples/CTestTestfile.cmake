# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_bandage "/root/repo/build/examples/smart_bandage")
set_tests_properties(example_smart_bandage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wafer_explorer "/root/repo/build/examples/wafer_explorer")
set_tests_properties(example_wafer_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dse_explorer "/root/repo/build/examples/dse_explorer")
set_tests_properties(example_dse_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_edc_checksum "/root/repo/build/examples/edc_checksum")
set_tests_properties(example_edc_checksum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
