file(REMOVE_RECURSE
  "CMakeFiles/wafer_explorer.dir/wafer_explorer.cc.o"
  "CMakeFiles/wafer_explorer.dir/wafer_explorer.cc.o.d"
  "wafer_explorer"
  "wafer_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
