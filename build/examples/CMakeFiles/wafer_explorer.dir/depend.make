# Empty dependencies file for wafer_explorer.
# This may be replaced when dependencies are built.
