# Empty compiler generated dependencies file for edc_checksum.
# This may be replaced when dependencies are built.
