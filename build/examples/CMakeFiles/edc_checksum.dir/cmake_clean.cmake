file(REMOVE_RECURSE
  "CMakeFiles/edc_checksum.dir/edc_checksum.cc.o"
  "CMakeFiles/edc_checksum.dir/edc_checksum.cc.o.d"
  "edc_checksum"
  "edc_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edc_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
