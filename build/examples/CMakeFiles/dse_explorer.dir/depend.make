# Empty dependencies file for dse_explorer.
# This may be replaced when dependencies are built.
