file(REMOVE_RECURSE
  "CMakeFiles/dse_explorer.dir/dse_explorer.cc.o"
  "CMakeFiles/dse_explorer.dir/dse_explorer.cc.o.d"
  "dse_explorer"
  "dse_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
