file(REMOVE_RECURSE
  "CMakeFiles/smart_bandage.dir/smart_bandage.cc.o"
  "CMakeFiles/smart_bandage.dir/smart_bandage.cc.o.d"
  "smart_bandage"
  "smart_bandage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_bandage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
