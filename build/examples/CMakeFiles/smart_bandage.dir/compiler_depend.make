# Empty compiler generated dependencies file for smart_bandage.
# This may be replaced when dependencies are built.
