file(REMOVE_RECURSE
  "CMakeFiles/test_sys.dir/test_sys.cc.o"
  "CMakeFiles/test_sys.dir/test_sys.cc.o.d"
  "test_sys"
  "test_sys.pdb"
  "test_sys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
