file(REMOVE_RECURSE
  "CMakeFiles/test_yield.dir/test_yield.cc.o"
  "CMakeFiles/test_yield.dir/test_yield.cc.o.d"
  "test_yield"
  "test_yield.pdb"
  "test_yield[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
