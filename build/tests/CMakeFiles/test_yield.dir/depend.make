# Empty dependencies file for test_yield.
# This may be replaced when dependencies are built.
