file(REMOVE_RECURSE
  "CMakeFiles/test_fc8_programs.dir/test_fc8_programs.cc.o"
  "CMakeFiles/test_fc8_programs.dir/test_fc8_programs.cc.o.d"
  "test_fc8_programs"
  "test_fc8_programs.pdb"
  "test_fc8_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fc8_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
