# Empty dependencies file for test_extacc4_netlist.
# This may be replaced when dependencies are built.
