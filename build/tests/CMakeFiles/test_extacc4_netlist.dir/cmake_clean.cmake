file(REMOVE_RECURSE
  "CMakeFiles/test_extacc4_netlist.dir/test_extacc4_netlist.cc.o"
  "CMakeFiles/test_extacc4_netlist.dir/test_extacc4_netlist.cc.o.d"
  "test_extacc4_netlist"
  "test_extacc4_netlist.pdb"
  "test_extacc4_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extacc4_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
