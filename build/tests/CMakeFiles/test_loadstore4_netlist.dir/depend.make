# Empty dependencies file for test_loadstore4_netlist.
# This may be replaced when dependencies are built.
