file(REMOVE_RECURSE
  "CMakeFiles/test_loadstore4_netlist.dir/test_loadstore4_netlist.cc.o"
  "CMakeFiles/test_loadstore4_netlist.dir/test_loadstore4_netlist.cc.o.d"
  "test_loadstore4_netlist"
  "test_loadstore4_netlist.pdb"
  "test_loadstore4_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loadstore4_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
