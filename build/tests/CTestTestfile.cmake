# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_extacc4_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_loadstore4_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_yield[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_sys[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_fc8_programs[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
