file(REMOVE_RECURSE
  "CMakeFiles/flexiasm.dir/flexiasm.cc.o"
  "CMakeFiles/flexiasm.dir/flexiasm.cc.o.d"
  "flexiasm"
  "flexiasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexiasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
