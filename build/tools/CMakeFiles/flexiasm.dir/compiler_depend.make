# Empty compiler generated dependencies file for flexiasm.
# This may be replaced when dependencies are built.
