# Empty dependencies file for flexisim.
# This may be replaced when dependencies are built.
