# Empty compiler generated dependencies file for flexisim.
# This may be replaced when dependencies are built.
