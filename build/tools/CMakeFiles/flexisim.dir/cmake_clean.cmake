file(REMOVE_RECURSE
  "CMakeFiles/flexisim.dir/flexisim.cc.o"
  "CMakeFiles/flexisim.dir/flexisim.cc.o.d"
  "flexisim"
  "flexisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
