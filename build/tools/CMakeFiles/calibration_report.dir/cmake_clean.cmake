file(REMOVE_RECURSE
  "CMakeFiles/calibration_report.dir/calibration_report.cc.o"
  "CMakeFiles/calibration_report.dir/calibration_report.cc.o.d"
  "calibration_report"
  "calibration_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
