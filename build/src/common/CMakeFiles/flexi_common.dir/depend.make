# Empty dependencies file for flexi_common.
# This may be replaced when dependencies are built.
