file(REMOVE_RECURSE
  "libflexi_common.a"
)
