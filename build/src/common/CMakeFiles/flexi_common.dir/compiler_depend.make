# Empty compiler generated dependencies file for flexi_common.
# This may be replaced when dependencies are built.
