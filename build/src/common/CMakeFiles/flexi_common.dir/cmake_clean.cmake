file(REMOVE_RECURSE
  "CMakeFiles/flexi_common.dir/logging.cc.o"
  "CMakeFiles/flexi_common.dir/logging.cc.o.d"
  "CMakeFiles/flexi_common.dir/rng.cc.o"
  "CMakeFiles/flexi_common.dir/rng.cc.o.d"
  "CMakeFiles/flexi_common.dir/stats.cc.o"
  "CMakeFiles/flexi_common.dir/stats.cc.o.d"
  "libflexi_common.a"
  "libflexi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
