file(REMOVE_RECURSE
  "CMakeFiles/flexi_sim.dir/core_sim.cc.o"
  "CMakeFiles/flexi_sim.dir/core_sim.cc.o.d"
  "CMakeFiles/flexi_sim.dir/environment.cc.o"
  "CMakeFiles/flexi_sim.dir/environment.cc.o.d"
  "CMakeFiles/flexi_sim.dir/mmu.cc.o"
  "CMakeFiles/flexi_sim.dir/mmu.cc.o.d"
  "CMakeFiles/flexi_sim.dir/timing.cc.o"
  "CMakeFiles/flexi_sim.dir/timing.cc.o.d"
  "CMakeFiles/flexi_sim.dir/trace.cc.o"
  "CMakeFiles/flexi_sim.dir/trace.cc.o.d"
  "libflexi_sim.a"
  "libflexi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
