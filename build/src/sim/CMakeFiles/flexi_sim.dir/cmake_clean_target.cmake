file(REMOVE_RECURSE
  "libflexi_sim.a"
)
