
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core_sim.cc" "src/sim/CMakeFiles/flexi_sim.dir/core_sim.cc.o" "gcc" "src/sim/CMakeFiles/flexi_sim.dir/core_sim.cc.o.d"
  "/root/repo/src/sim/environment.cc" "src/sim/CMakeFiles/flexi_sim.dir/environment.cc.o" "gcc" "src/sim/CMakeFiles/flexi_sim.dir/environment.cc.o.d"
  "/root/repo/src/sim/mmu.cc" "src/sim/CMakeFiles/flexi_sim.dir/mmu.cc.o" "gcc" "src/sim/CMakeFiles/flexi_sim.dir/mmu.cc.o.d"
  "/root/repo/src/sim/timing.cc" "src/sim/CMakeFiles/flexi_sim.dir/timing.cc.o" "gcc" "src/sim/CMakeFiles/flexi_sim.dir/timing.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/flexi_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/flexi_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assembler/CMakeFiles/flexi_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/flexi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
