# Empty dependencies file for flexi_sim.
# This may be replaced when dependencies are built.
