# Empty compiler generated dependencies file for flexi_isa.
# This may be replaced when dependencies are built.
