file(REMOVE_RECURSE
  "libflexi_isa.a"
)
