
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/disassembler.cc" "src/isa/CMakeFiles/flexi_isa.dir/disassembler.cc.o" "gcc" "src/isa/CMakeFiles/flexi_isa.dir/disassembler.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/isa/CMakeFiles/flexi_isa.dir/encoding.cc.o" "gcc" "src/isa/CMakeFiles/flexi_isa.dir/encoding.cc.o.d"
  "/root/repo/src/isa/encoding_ext.cc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_ext.cc.o" "gcc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_ext.cc.o.d"
  "/root/repo/src/isa/encoding_fc4.cc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_fc4.cc.o" "gcc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_fc4.cc.o.d"
  "/root/repo/src/isa/encoding_fc8.cc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_fc8.cc.o" "gcc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_fc8.cc.o.d"
  "/root/repo/src/isa/encoding_ls.cc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_ls.cc.o" "gcc" "src/isa/CMakeFiles/flexi_isa.dir/encoding_ls.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/isa/CMakeFiles/flexi_isa.dir/isa.cc.o" "gcc" "src/isa/CMakeFiles/flexi_isa.dir/isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
