file(REMOVE_RECURSE
  "CMakeFiles/flexi_isa.dir/disassembler.cc.o"
  "CMakeFiles/flexi_isa.dir/disassembler.cc.o.d"
  "CMakeFiles/flexi_isa.dir/encoding.cc.o"
  "CMakeFiles/flexi_isa.dir/encoding.cc.o.d"
  "CMakeFiles/flexi_isa.dir/encoding_ext.cc.o"
  "CMakeFiles/flexi_isa.dir/encoding_ext.cc.o.d"
  "CMakeFiles/flexi_isa.dir/encoding_fc4.cc.o"
  "CMakeFiles/flexi_isa.dir/encoding_fc4.cc.o.d"
  "CMakeFiles/flexi_isa.dir/encoding_fc8.cc.o"
  "CMakeFiles/flexi_isa.dir/encoding_fc8.cc.o.d"
  "CMakeFiles/flexi_isa.dir/encoding_ls.cc.o"
  "CMakeFiles/flexi_isa.dir/encoding_ls.cc.o.d"
  "CMakeFiles/flexi_isa.dir/isa.cc.o"
  "CMakeFiles/flexi_isa.dir/isa.cc.o.d"
  "libflexi_isa.a"
  "libflexi_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
