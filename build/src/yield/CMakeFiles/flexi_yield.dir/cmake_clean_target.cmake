file(REMOVE_RECURSE
  "libflexi_yield.a"
)
