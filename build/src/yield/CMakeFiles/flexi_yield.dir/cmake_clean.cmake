file(REMOVE_RECURSE
  "CMakeFiles/flexi_yield.dir/die_model.cc.o"
  "CMakeFiles/flexi_yield.dir/die_model.cc.o.d"
  "CMakeFiles/flexi_yield.dir/test_program.cc.o"
  "CMakeFiles/flexi_yield.dir/test_program.cc.o.d"
  "CMakeFiles/flexi_yield.dir/wafer.cc.o"
  "CMakeFiles/flexi_yield.dir/wafer.cc.o.d"
  "CMakeFiles/flexi_yield.dir/wafer_study.cc.o"
  "CMakeFiles/flexi_yield.dir/wafer_study.cc.o.d"
  "libflexi_yield.a"
  "libflexi_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
