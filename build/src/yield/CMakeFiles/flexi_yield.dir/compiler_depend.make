# Empty compiler generated dependencies file for flexi_yield.
# This may be replaced when dependencies are built.
