# Empty compiler generated dependencies file for flexi_netlist.
# This may be replaced when dependencies are built.
