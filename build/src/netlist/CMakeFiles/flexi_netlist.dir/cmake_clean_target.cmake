file(REMOVE_RECURSE
  "libflexi_netlist.a"
)
