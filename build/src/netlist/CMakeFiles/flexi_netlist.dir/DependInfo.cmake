
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/builder.cc" "src/netlist/CMakeFiles/flexi_netlist.dir/builder.cc.o" "gcc" "src/netlist/CMakeFiles/flexi_netlist.dir/builder.cc.o.d"
  "/root/repo/src/netlist/extacc4_netlist.cc" "src/netlist/CMakeFiles/flexi_netlist.dir/extacc4_netlist.cc.o" "gcc" "src/netlist/CMakeFiles/flexi_netlist.dir/extacc4_netlist.cc.o.d"
  "/root/repo/src/netlist/flexicore4_netlist.cc" "src/netlist/CMakeFiles/flexi_netlist.dir/flexicore4_netlist.cc.o" "gcc" "src/netlist/CMakeFiles/flexi_netlist.dir/flexicore4_netlist.cc.o.d"
  "/root/repo/src/netlist/flexicore8_netlist.cc" "src/netlist/CMakeFiles/flexi_netlist.dir/flexicore8_netlist.cc.o" "gcc" "src/netlist/CMakeFiles/flexi_netlist.dir/flexicore8_netlist.cc.o.d"
  "/root/repo/src/netlist/loadstore4_netlist.cc" "src/netlist/CMakeFiles/flexi_netlist.dir/loadstore4_netlist.cc.o" "gcc" "src/netlist/CMakeFiles/flexi_netlist.dir/loadstore4_netlist.cc.o.d"
  "/root/repo/src/netlist/lockstep.cc" "src/netlist/CMakeFiles/flexi_netlist.dir/lockstep.cc.o" "gcc" "src/netlist/CMakeFiles/flexi_netlist.dir/lockstep.cc.o.d"
  "/root/repo/src/netlist/netlist.cc" "src/netlist/CMakeFiles/flexi_netlist.dir/netlist.cc.o" "gcc" "src/netlist/CMakeFiles/flexi_netlist.dir/netlist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/flexi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/flexi_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/flexi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/flexi_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
