file(REMOVE_RECURSE
  "CMakeFiles/flexi_netlist.dir/builder.cc.o"
  "CMakeFiles/flexi_netlist.dir/builder.cc.o.d"
  "CMakeFiles/flexi_netlist.dir/extacc4_netlist.cc.o"
  "CMakeFiles/flexi_netlist.dir/extacc4_netlist.cc.o.d"
  "CMakeFiles/flexi_netlist.dir/flexicore4_netlist.cc.o"
  "CMakeFiles/flexi_netlist.dir/flexicore4_netlist.cc.o.d"
  "CMakeFiles/flexi_netlist.dir/flexicore8_netlist.cc.o"
  "CMakeFiles/flexi_netlist.dir/flexicore8_netlist.cc.o.d"
  "CMakeFiles/flexi_netlist.dir/loadstore4_netlist.cc.o"
  "CMakeFiles/flexi_netlist.dir/loadstore4_netlist.cc.o.d"
  "CMakeFiles/flexi_netlist.dir/lockstep.cc.o"
  "CMakeFiles/flexi_netlist.dir/lockstep.cc.o.d"
  "CMakeFiles/flexi_netlist.dir/netlist.cc.o"
  "CMakeFiles/flexi_netlist.dir/netlist.cc.o.d"
  "libflexi_netlist.a"
  "libflexi_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
