file(REMOVE_RECURSE
  "libflexi_tech.a"
)
