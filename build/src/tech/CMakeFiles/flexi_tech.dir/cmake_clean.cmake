file(REMOVE_RECURSE
  "CMakeFiles/flexi_tech.dir/cell_library.cc.o"
  "CMakeFiles/flexi_tech.dir/cell_library.cc.o.d"
  "CMakeFiles/flexi_tech.dir/technology.cc.o"
  "CMakeFiles/flexi_tech.dir/technology.cc.o.d"
  "libflexi_tech.a"
  "libflexi_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
