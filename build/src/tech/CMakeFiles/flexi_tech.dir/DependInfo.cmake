
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/cell_library.cc" "src/tech/CMakeFiles/flexi_tech.dir/cell_library.cc.o" "gcc" "src/tech/CMakeFiles/flexi_tech.dir/cell_library.cc.o.d"
  "/root/repo/src/tech/technology.cc" "src/tech/CMakeFiles/flexi_tech.dir/technology.cc.o" "gcc" "src/tech/CMakeFiles/flexi_tech.dir/technology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
