# Empty dependencies file for flexi_tech.
# This may be replaced when dependencies are built.
