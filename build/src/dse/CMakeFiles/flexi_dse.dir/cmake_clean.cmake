file(REMOVE_RECURSE
  "CMakeFiles/flexi_dse.dir/area_model.cc.o"
  "CMakeFiles/flexi_dse.dir/area_model.cc.o.d"
  "CMakeFiles/flexi_dse.dir/code_size.cc.o"
  "CMakeFiles/flexi_dse.dir/code_size.cc.o.d"
  "CMakeFiles/flexi_dse.dir/design_point.cc.o"
  "CMakeFiles/flexi_dse.dir/design_point.cc.o.d"
  "CMakeFiles/flexi_dse.dir/perf_model.cc.o"
  "CMakeFiles/flexi_dse.dir/perf_model.cc.o.d"
  "libflexi_dse.a"
  "libflexi_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
