file(REMOVE_RECURSE
  "libflexi_dse.a"
)
