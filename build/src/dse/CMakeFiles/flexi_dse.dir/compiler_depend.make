# Empty compiler generated dependencies file for flexi_dse.
# This may be replaced when dependencies are built.
