file(REMOVE_RECURSE
  "CMakeFiles/flexi_sys.dir/flexichip.cc.o"
  "CMakeFiles/flexi_sys.dir/flexichip.cc.o.d"
  "libflexi_sys.a"
  "libflexi_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
