file(REMOVE_RECURSE
  "libflexi_sys.a"
)
