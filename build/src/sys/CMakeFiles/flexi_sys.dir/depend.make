# Empty dependencies file for flexi_sys.
# This may be replaced when dependencies are built.
