# Empty compiler generated dependencies file for flexi_kernels.
# This may be replaced when dependencies are built.
