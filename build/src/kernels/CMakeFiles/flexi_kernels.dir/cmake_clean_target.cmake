file(REMOVE_RECURSE
  "libflexi_kernels.a"
)
