
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/fc8_programs.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/fc8_programs.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/fc8_programs.cc.o.d"
  "/root/repo/src/kernels/golden.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/golden.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/golden.cc.o.d"
  "/root/repo/src/kernels/inputs.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/inputs.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/inputs.cc.o.d"
  "/root/repo/src/kernels/kernel_source.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernel_source.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernel_source.cc.o.d"
  "/root/repo/src/kernels/kernels.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels.cc.o.d"
  "/root/repo/src/kernels/kernels_ext.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels_ext.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels_ext.cc.o.d"
  "/root/repo/src/kernels/kernels_fc4.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels_fc4.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels_fc4.cc.o.d"
  "/root/repo/src/kernels/kernels_ls.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels_ls.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/kernels_ls.cc.o.d"
  "/root/repo/src/kernels/runner.cc" "src/kernels/CMakeFiles/flexi_kernels.dir/runner.cc.o" "gcc" "src/kernels/CMakeFiles/flexi_kernels.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/flexi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/flexi_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/flexi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
