file(REMOVE_RECURSE
  "CMakeFiles/flexi_kernels.dir/fc8_programs.cc.o"
  "CMakeFiles/flexi_kernels.dir/fc8_programs.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/golden.cc.o"
  "CMakeFiles/flexi_kernels.dir/golden.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/inputs.cc.o"
  "CMakeFiles/flexi_kernels.dir/inputs.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/kernel_source.cc.o"
  "CMakeFiles/flexi_kernels.dir/kernel_source.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/kernels.cc.o"
  "CMakeFiles/flexi_kernels.dir/kernels.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/kernels_ext.cc.o"
  "CMakeFiles/flexi_kernels.dir/kernels_ext.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/kernels_fc4.cc.o"
  "CMakeFiles/flexi_kernels.dir/kernels_fc4.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/kernels_ls.cc.o"
  "CMakeFiles/flexi_kernels.dir/kernels_ls.cc.o.d"
  "CMakeFiles/flexi_kernels.dir/runner.cc.o"
  "CMakeFiles/flexi_kernels.dir/runner.cc.o.d"
  "libflexi_kernels.a"
  "libflexi_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
