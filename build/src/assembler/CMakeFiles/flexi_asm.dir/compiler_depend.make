# Empty compiler generated dependencies file for flexi_asm.
# This may be replaced when dependencies are built.
