file(REMOVE_RECURSE
  "CMakeFiles/flexi_asm.dir/assembler.cc.o"
  "CMakeFiles/flexi_asm.dir/assembler.cc.o.d"
  "CMakeFiles/flexi_asm.dir/program.cc.o"
  "CMakeFiles/flexi_asm.dir/program.cc.o.d"
  "CMakeFiles/flexi_asm.dir/program_io.cc.o"
  "CMakeFiles/flexi_asm.dir/program_io.cc.o.d"
  "libflexi_asm.a"
  "libflexi_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexi_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
