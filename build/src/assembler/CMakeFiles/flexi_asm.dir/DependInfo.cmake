
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cc" "src/assembler/CMakeFiles/flexi_asm.dir/assembler.cc.o" "gcc" "src/assembler/CMakeFiles/flexi_asm.dir/assembler.cc.o.d"
  "/root/repo/src/assembler/program.cc" "src/assembler/CMakeFiles/flexi_asm.dir/program.cc.o" "gcc" "src/assembler/CMakeFiles/flexi_asm.dir/program.cc.o.d"
  "/root/repo/src/assembler/program_io.cc" "src/assembler/CMakeFiles/flexi_asm.dir/program_io.cc.o" "gcc" "src/assembler/CMakeFiles/flexi_asm.dir/program_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/flexi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
