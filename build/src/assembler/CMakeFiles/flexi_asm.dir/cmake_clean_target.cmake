file(REMOVE_RECURSE
  "libflexi_asm.a"
)
