# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tech")
subdirs("isa")
subdirs("assembler")
subdirs("sim")
subdirs("netlist")
subdirs("kernels")
subdirs("yield")
subdirs("dse")
subdirs("sys")
