/**
 * @file
 * Wafer geometry model.
 *
 * The fabricated wafers are 200 mm polyimide with 123 FlexiCore dies
 * (Figure 4); yields are reported both for the full wafer and after
 * disregarding the 16 mm edge exclusion ring (Table 5, the red ring
 * in Figure 4). A 16 mm die pitch on a 200 mm circle reproduces the
 * 123-die count.
 */

#ifndef FLEXI_YIELD_WAFER_HH
#define FLEXI_YIELD_WAFER_HH

#include <cstddef>
#include <vector>

namespace flexi
{

/** Default geometry constants (mm). */
constexpr double kWaferDiameterMm = 200.0;
constexpr double kEdgeExclusionMm = 16.0;
constexpr double kDiePitchMm = 16.0;

/** One die location on the wafer. */
struct DieSite
{
    /** Position in WaferMap::sites() — the die's stable identity.
     *  Seeds the die's private RNG stream in the wafer study. */
    size_t index = 0;
    int col = 0;
    int row = 0;
    double xMm = 0.0;        ///< die-center X, wafer-centered
    double yMm = 0.0;
    double radiusMm = 0.0;   ///< distance from wafer center
    bool inInclusionZone = false;
};

/** The grid of dies that fit on a wafer. */
class WaferMap
{
  public:
    /**
     * @param diameter_mm wafer diameter
     * @param pitch_mm die pitch (die + scribe)
     * @param edge_exclusion_mm width of the edge exclusion ring
     */
    explicit WaferMap(double diameter_mm = kWaferDiameterMm,
                      double pitch_mm = kDiePitchMm,
                      double edge_exclusion_mm = kEdgeExclusionMm);

    const std::vector<DieSite> &sites() const { return sites_; }
    size_t numDies() const { return sites_.size(); }
    size_t numInclusionDies() const;

    double diameterMm() const { return diameter_; }
    double pitchMm() const { return pitch_; }
    /** Radius inside which dies count toward inclusion-zone yield. */
    double inclusionRadiusMm() const;

  private:
    double diameter_;
    double pitch_;
    double edgeExclusion_;
    std::vector<DieSite> sites_;
};

} // namespace flexi

#endif // FLEXI_YIELD_WAFER_HH
