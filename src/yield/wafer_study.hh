/**
 * @file
 * Monte-Carlo wafer study: the reproduction of Section 4's yield and
 * process-variation experiments (Table 5, Figures 6 and 7).
 *
 * For every die site the model samples a manufacturing outcome; the
 * die is then "probed" at 3 V and 4.5 V exactly as on the MPI probe
 * station: defective dies are gate-level fault-simulated against the
 * golden model over the directed+random vector suite, timing-
 * marginal dies produce margin-dependent intermittent errors, and a
 * die counts as fully functional only with zero output errors.
 */

#ifndef FLEXI_YIELD_WAFER_STUDY_HH
#define FLEXI_YIELD_WAFER_STUDY_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "isa/isa.hh"
#include "netlist/netlist.hh"
#include "yield/die_model.hh"
#include "yield/wafer.hh"

namespace flexi
{

/** Probe-station result for one die at one supply voltage. */
struct DieProbe
{
    uint64_t errors = 0;
    double currentA = 0.0;
    bool functional() const { return errors == 0; }
};

/** Full result for one die. */
struct DieResult
{
    DieSite site;
    DieSample sample;
    DieProbe at3V;
    DieProbe at45V;
    /**
     * The stuck-at faults injected into this die's netlist (empty
     * for defect-free dies or statistical-only runs). Recording them
     * lets downstream passes — notably salvage binning — rebuild the
     * exact faulty die without replaying the study's RNG streams.
     */
    std::vector<StuckFault> faults;
};

/** Configuration of one wafer run. */
struct WaferStudyConfig
{
    IsaKind isa = IsaKind::FlexiCore4;
    uint64_t seed = 1;
    /** Test length per die (cycles). The fab used >100k; the default
     *  keeps the gate-level fault sims of defective dies fast while
     *  preserving the pass/fail statistics. */
    uint64_t testCycles = 1500;
    /** Gate-level fault simulation for defective dies (vs. a purely
     *  statistical error count). */
    bool gateLevelErrors = true;
    /**
     * Worker threads for the die loop: 0 = auto (FLEXI_THREADS env
     * var, else hardware concurrency), 1 = single-threaded. Every
     * die draws from its own RNG stream seeded by (seed,
     * site.index), so results are bit-identical for any value.
     */
    unsigned threads = 0;
    /**
     * Bit-parallel lanes for the gate-level fault sim of defective
     * dies: dies are packed up to batchLanes to a LaneGroup (the
     * wide-lane compiled backend, up to 512 lanes) and
     * fault-simulated together; 1 forces the scalar clone-per-die
     * path. Every die still draws from its own (seed, site.index)
     * RNG stream and the lockstep error counts are lane-exact, so
     * yields, per-die error counts, and fault lists are
     * bit-identical for any value.
     */
    unsigned batchLanes = 512;
    /**
     * Retire a defective die's lane at its first pad mismatch
     * instead of counting mismatches across the whole vector suite
     * (batched gate-level path only). Yields are unchanged —
     * functional() only asks errors == 0 — but per-die error counts
     * become lower bounds; off by default to keep the probe-station
     * error statistics exact.
     */
    bool earlyExit = false;
    DieModelParams params;
};

/** Result of a wafer run. */
struct WaferStudyResult
{
    WaferStudyConfig config;
    DesignSpec spec;
    std::vector<DieResult> dies;

    /** Fraction of functional dies at @p vdd. */
    double yield(double vdd, bool inclusion_only) const;
    /** Current-draw statistics over functional dies at @p vdd. */
    RunningStat currentStats(double vdd) const;
};

/** Extract the DesignSpec of a fabricated core from its netlist. */
DesignSpec designSpecFor(IsaKind isa);

/** Run the study for one wafer. */
WaferStudyResult runWaferStudy(const WaferStudyConfig &config);

} // namespace flexi

#endif // FLEXI_YIELD_WAFER_STUDY_HH
