#include "die_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexi
{

namespace
{

/** Poisson sample via inversion (small means only). */
unsigned
poisson(double mean, Rng &rng)
{
    if (mean <= 0)
        return 0;
    double l = std::exp(-mean);
    double p = 1.0;
    unsigned k = 0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > l && k < 1000);
    return k - 1;
}

} // namespace

DieModel::DieModel(DesignSpec spec, DieModelParams params)
    : spec_(std::move(spec)), params_(params),
      tech_(spec_.pullUpRefined)
{
    if (spec_.devices == 0 || spec_.critDelayUnits <= 0)
        fatal("DesignSpec for '%s' is incomplete", spec_.name.c_str());
}

DieSample
DieModel::sample(const DieSite &site, const WaferMap &wafer,
                 Rng &rng) const
{
    DieSample die;

    // Radial aggravation beyond the inclusion ring (edge effects:
    // coating non-uniformity, handling damage).
    double incl = wafer.inclusionRadiusMm();
    double rim = wafer.diameterMm() / 2.0;
    double frac = 0.0;
    if (site.radiusMm > incl && rim > incl)
        frac = std::min(1.0, (site.radiusMm - incl) / (rim - incl));

    double defect_rate = params_.defectPerDevice *
        (1.0 + (params_.edgeDefectMultiplier - 1.0) * frac);
    die.defects = poisson(defect_rate * spec_.devices, rng);

    die.vth = rng.gaussian(kVthMean + params_.edgeVthShift * frac,
                           params_.vthSigma);
    die.speedFactor = std::exp(rng.gaussian(0.0, spec_.speedSigma));
    die.currentFactor =
        std::exp(rng.gaussian(0.0, spec_.currentSigma));
    return die;
}

double
DieModel::critPathDelay(const DieSample &die, double vdd) const
{
    return spec_.critDelayUnits * tech_.unitDelay(vdd, die.vth) *
           die.speedFactor;
}

bool
DieModel::meetsTiming(const DieSample &die, double vdd) const
{
    return critPathDelay(die, vdd) <= 1.0 / kClockHz;
}

bool
DieModel::functional(const DieSample &die, double vdd) const
{
    return !die.hasDefects() && meetsTiming(die, vdd);
}

double
DieModel::currentDraw(const DieSample &die, double vdd) const
{
    return tech_.staticCurrent(spec_.refCurrentUa, vdd) *
           die.currentFactor;
}

double
DieModel::expectedTimingErrors(const DieSample &die, double vdd,
                               uint64_t cycles) const
{
    double period = 1.0 / kClockHz;
    double delay = critPathDelay(die, vdd);
    if (delay <= period)
        return 0.0;
    // The fraction of vectors that exercise near-critical paths and
    // therefore miss the clock grows with the margin shortfall.
    double shortfall = std::min(1.0, (delay - period) / period);
    return shortfall * 0.3 * static_cast<double>(cycles);
}

double
DieModel::glitchRate(const DieSample &die, double vdd) const
{
    return expectedTimingErrors(die, vdd, 1);
}

} // namespace flexi
