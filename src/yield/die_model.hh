/**
 * @file
 * Per-die manufacturing outcome model.
 *
 * Three physical effects determine whether a die works (Section 4):
 *
 *  1. Hard defects — Poisson-distributed with the device count
 *     (FlexiCore8's ~11 % more devices is why its yield trails
 *     FlexiCore4's), aggravated toward the wafer edge (the reason
 *     for the 16 mm exclusion ring).
 *  2. Threshold-voltage variation — die-level V_th drawn around the
 *     1.29 V / 0.19 V TFT statistics (Figure 1); gate delay grows as
 *     the overdrive (Vdd - Vth) shrinks, so low supply voltage turns
 *     V_th spread into timing faults. FlexiCore8's ripple adder has
 *     roughly twice FlexiCore4's carry chain, producing the 3 V
 *     yield cliff of Table 5.
 *  3. Current-draw variation — lognormal spread around the nominal
 *     static draw (RSD 15.3 % / 21.5 % measured, Section 4.2).
 *
 * All constants live in DieModelParams; EXPERIMENTS.md records the
 * calibration against the paper's Table 5 / Figure 7 values.
 */

#ifndef FLEXI_YIELD_DIE_MODEL_HH
#define FLEXI_YIELD_DIE_MODEL_HH

#include <string>

#include "common/rng.hh"
#include "tech/technology.hh"
#include "yield/wafer.hh"

namespace flexi
{

/** Physical summary of a design, extracted from its netlist. */
struct DesignSpec
{
    std::string name;
    unsigned devices = 0;
    /** Critical path length in unit gate delays. */
    double critDelayUnits = 0.0;
    /** Sum of per-cell reference static currents (uA at 4.5 V). */
    double refCurrentUa = 0.0;
    /** Manufactured after the pull-up refinement (Table 4)? */
    bool pullUpRefined = false;
    /** Lognormal sigma of per-die current draw (Section 4.2). */
    double currentSigma = 0.153;
    /** Lognormal sigma of per-die speed (process speed spread). */
    double speedSigma = 0.16;
};

/** Calibration constants for the die outcome model. */
struct DieModelParams
{
    /** Poisson hard-defect rate per device (inclusion zone). */
    double defectPerDevice = 9.3e-5;
    /** Edge ramp: defect rate multiplier grows to this at the rim. */
    double edgeDefectMultiplier = 16.0;
    /** Additional die-level Vth sigma from across-wafer gradients. */
    double vthSigma = kVthSigma;
    /** Radial Vth shift at the rim (V) — edge devices are slower. */
    double edgeVthShift = 0.25;
};

/** Sampled manufacturing outcome for one die. */
struct DieSample
{
    unsigned defects = 0;       ///< hard stuck-at defects
    double vth = kVthMean;      ///< die-mean threshold voltage
    double speedFactor = 1.0;   ///< lognormal delay multiplier
    double currentFactor = 1.0; ///< lognormal current multiplier

    bool hasDefects() const { return defects > 0; }
};

/** Samples dies and evaluates pass/fail criteria. */
class DieModel
{
  public:
    DieModel(DesignSpec spec, DieModelParams params = {});

    const DesignSpec &spec() const { return spec_; }
    const DieModelParams &params() const { return params_; }

    /** Sample the manufacturing outcome of a die at @p site. */
    DieSample sample(const DieSite &site, const WaferMap &wafer,
                     Rng &rng) const;

    /** Critical-path delay of a die at supply @p vdd, seconds. */
    double critPathDelay(const DieSample &die, double vdd) const;

    /** Does the die meet the 12.5 kHz test clock at @p vdd? */
    bool meetsTiming(const DieSample &die, double vdd) const;

    /** Fully functional = no hard defects and meets timing. */
    bool functional(const DieSample &die, double vdd) const;

    /** Static current draw of the die at @p vdd (amps). */
    double currentDraw(const DieSample &die, double vdd) const;

    /**
     * Expected output-error count on an n-cycle test for a die that
     * fails *timing* (intermittent, margin-dependent); hard-defect
     * dies get their error counts from gate-level fault simulation
     * instead.
     */
    double expectedTimingErrors(const DieSample &die, double vdd,
                                uint64_t cycles) const;

    /**
     * Per-cycle intermittent upset probability of a timing-marginal
     * die at @p vdd — expectedTimingErrors() normalized to one
     * cycle. Salvage binning and the fleet lifecycle engine both
     * draw per-kernel / per-epoch glitch schedules at this rate; 0
     * for dies that meet timing.
     */
    double glitchRate(const DieSample &die, double vdd) const;

  private:
    DesignSpec spec_;
    DieModelParams params_;
    Technology tech_;
};

} // namespace flexi

#endif // FLEXI_YIELD_DIE_MODEL_HH
