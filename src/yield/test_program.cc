#include "test_program.hh"

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace flexi
{

Program
makeTestProgram(IsaKind isa, uint64_t seed)
{
    if (isa != IsaKind::FlexiCore4 && isa != IsaKind::FlexiCore8)
        fatal("wafer test programs target the fabricated cores");

    // Directed prologue: every instruction class, both IO ports,
    // every memory word, branch taken and not taken.
    std::string directed;
    bool fc8 = isa == IsaKind::FlexiCore8;
    unsigned words = fc8 ? 4 : 8;
    directed += "load r0\n";
    for (unsigned w = 2; w < words; ++w)
        directed += strfmt("store r%u\n", w);
    directed += "addi 5\nstore r1\n";
    directed += "nandi 3\nxori 0xF\n";
    for (unsigned w = 2; w < words; ++w) {
        directed += strfmt("add r%u\n", w);
        directed += strfmt("nand r%u\n", w);
        directed += strfmt("xor r%u\n", w);
    }
    directed += "store r1\n";
    if (fc8)
        directed += "ldb 0xA5\nstore r1\nldb 0x5A\nstore r1\n";
    // Branch not taken (ACC forced positive), then taken.
    directed += "nandi 0\nxori 0xF\nbr 0\n";   // ACC = 0: not taken
    directed += "load r0\nxor r0\nstore r1\n";

    Program skeleton = assemble(isa, directed);
    std::vector<uint8_t> image = skeleton.page(0);

    // Randomized body: branch-free random bytes so the whole page
    // executes end-to-end (a branch-free byte has bit 7 clear; the
    // FlexiCore8 ldb prefix is also excluded so program length stays
    // aligned).
    Rng rng(seed ^ 0x7E57F1E5);
    while (image.size() < kPageSize - 2) {
        uint8_t b = static_cast<uint8_t>(rng.below(128));
        if (fc8 && b == 0x08)
            continue;
        image.push_back(b);
    }
    // Wrap: force ACC negative and branch to 0.
    image.push_back(0x50);   // nandi 0
    image.push_back(0x80);   // br 0 (taken: ACC MSB set)

    Program prog(isa);
    prog.appendBytes(0, image);
    return prog;
}

const Program &
cachedTestProgram(IsaKind isa, uint64_t seed)
{
    static std::mutex mu;
    static std::map<std::pair<int, uint64_t>, std::unique_ptr<Program>>
        cache;
    std::lock_guard<std::mutex> lock(mu);
    auto key = std::make_pair(static_cast<int>(isa), seed);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache
                 .emplace(key, std::make_unique<Program>(
                                   makeTestProgram(isa, seed)))
                 .first;
    return *it->second;
}

std::vector<uint8_t>
makeTestInputs(IsaKind isa, size_t n, uint64_t seed)
{
    unsigned mask = (1u << isaDataWidth(isa)) - 1u;
    Rng rng(seed ^ 0x1AB57E57);
    std::vector<uint8_t> in;
    in.reserve(n);
    for (size_t i = 0; i < n; ++i)
        in.push_back(static_cast<uint8_t>(rng.next() & mask));
    return in;
}

} // namespace flexi
