#include "wafer_study.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"
#include "yield/test_program.hh"

namespace flexi
{

namespace
{

DesignSpec
computeDesignSpec(IsaKind isa)
{
    DesignSpec spec;
    std::unique_ptr<Netlist> nl;
    switch (isa) {
      case IsaKind::FlexiCore4:
        nl = buildFlexiCore4Netlist();
        spec.pullUpRefined = false;
        spec.currentSigma = 0.153;   // measured RSD, Section 4.2
        break;
      case IsaKind::FlexiCore8:
        nl = buildFlexiCore8Netlist();
        spec.pullUpRefined = true;   // post process-refinement wafer
        spec.currentSigma = 0.215;
        break;
      default:
        fatal("no fabricated netlist for %s", isaName(isa));
    }
    spec.name = nl->name();
    spec.devices = nl->totalDevices();
    spec.critDelayUnits = nl->criticalPathDelayUnits();
    spec.refCurrentUa = nl->totalStaticCurrentUa();
    return spec;
}

/**
 * Elaborated golden netlist of a fabricated core, built once per
 * process; per-die faulty instances are clone()d from it. Safe to
 * clone concurrently (the structure is immutable and shared).
 */
const Netlist &
templateNetlist(IsaKind isa)
{
    if (isa == IsaKind::FlexiCore4) {
        static const std::unique_ptr<Netlist> fc4 =
            buildFlexiCore4Netlist();
        return *fc4;
    }
    static const std::unique_ptr<Netlist> fc8 =
        buildFlexiCore8Netlist();
    return *fc8;
}

/** Probe one die at one voltage. */
DieProbe
probeDie(const DieModel &model, const DieSample &die, double vdd,
         const WaferStudyConfig &cfg, Netlist *faulty_netlist,
         bool gate_deferred, const Program &test_prog,
         const std::vector<uint8_t> &test_inputs, Rng &rng)
{
    DieProbe probe;
    probe.currentA = model.currentDraw(die, vdd);

    uint64_t errors = 0;
    if (die.hasDefects()) {
        if (gate_deferred) {
            // Gate-level errors are added by the batched lane phase
            // after all dies are sampled. Crucially this branch
            // consumes no RNG draws — neither does the immediate
            // gate-level branch below — so the per-die stream stays
            // aligned with the scalar path.
        } else if (cfg.gateLevelErrors && faulty_netlist) {
            // Each probe is self-contained: runLockstep re-resets
            // the DFF state, and clearing the toggle counters here
            // keeps the probes from accumulating into each other's
            // activity statistics (the 4.5 V counts used to leak
            // into the 3 V probe's).
            faulty_netlist->resetToggles();
            LockstepResult res =
                runLockstep(*faulty_netlist, cfg.isa, test_prog,
                            test_inputs, cfg.testCycles);
            errors += res.errors;
            // A defect that the vectors happen to miss still usually
            // perturbs analog margins; count the die as suspect with
            // at least one error only if the fault sim saw any.
        } else {
            // Statistical fallback: defects corrupt a sizable share
            // of cycles.
            errors += 1 + rng.below(cfg.testCycles / 2);
        }
    }

    double expected =
        model.expectedTimingErrors(die, vdd, cfg.testCycles);
    if (expected > 0) {
        // Intermittent timing faults: at least one error once the
        // margin is gone.
        errors += 1 + static_cast<uint64_t>(
            expected * (0.5 + rng.uniform()));
    }

    probe.errors = errors;
    return probe;
}

} // namespace

DesignSpec
designSpecFor(IsaKind isa)
{
    // The spec is a pure function of the (immutable) netlist; cache
    // per core so hot callers — every runWaferStudy() — stop
    // rebuilding the whole netlist just to measure it.
    if (isa == IsaKind::FlexiCore4) {
        static const DesignSpec fc4 =
            computeDesignSpec(IsaKind::FlexiCore4);
        return fc4;
    }
    if (isa == IsaKind::FlexiCore8) {
        static const DesignSpec fc8 =
            computeDesignSpec(IsaKind::FlexiCore8);
        return fc8;
    }
    return computeDesignSpec(isa);   // fatals with the right name
}

double
WaferStudyResult::yield(double vdd, bool inclusion_only) const
{
    size_t total = 0, good = 0;
    for (const auto &die : dies) {
        if (inclusion_only && !die.site.inInclusionZone)
            continue;
        ++total;
        const DieProbe &probe = vdd > 4.0 ? die.at45V : die.at3V;
        good += probe.functional();
    }
    return total ? static_cast<double>(good) / total : 0.0;
}

RunningStat
WaferStudyResult::currentStats(double vdd) const
{
    RunningStat st;
    for (const auto &die : dies) {
        const DieProbe &probe = vdd > 4.0 ? die.at45V : die.at3V;
        if (probe.functional())
            st.add(probe.currentA);
    }
    return st;
}

WaferStudyResult
runWaferStudy(const WaferStudyConfig &config)
{
    WaferMap wafer;
    DesignSpec spec = designSpecFor(config.isa);
    DieModel model(spec, config.params);

    const Program &test_prog =
        cachedTestProgram(config.isa, config.seed);
    std::vector<uint8_t> test_inputs =
        makeTestInputs(config.isa, 256, config.seed);
    const Netlist *golden =
        config.gateLevelErrors ? &templateNetlist(config.isa)
                               : nullptr;

    WaferStudyResult result;
    result.config = config;
    result.spec = spec;
    result.dies.resize(wafer.numDies());

    // Lane batching applies to the gate-level fault sim only; 1
    // forces the scalar clone-per-die path.
    unsigned lanes = std::min<unsigned>(
        config.batchLanes ? config.batchLanes : 1,
        LaneGroup::kMaxLanes);
    const bool batched = golden && lanes > 1;

    const std::vector<DieSite> &sites = wafer.sites();
    parallelFor(sites.size(), config.threads, [&](size_t i) {
        const DieSite &site = sites[i];
        // Every die owns an RNG stream derived from (seed, site
        // index): probing order, die count, and thread count cannot
        // perturb any other die's draws.
        Rng rng(deriveSeed(config.seed ^ 0x3AFE12D1E5ull,
                           site.index));

        DieResult &die = result.dies[i];
        die.site = site;
        die.sample = model.sample(site, wafer, rng);

        // Draw the die's defects (if any). The scalar path breaks a
        // clone of the golden netlist right away; the batched path
        // only records the fault list and binds it to a lane later —
        // the RNG draws are identical either way.
        std::unique_ptr<Netlist> faulty;
        if (die.sample.hasDefects() && golden) {
            if (!batched)
                faulty = golden->clone();
            for (unsigned d = 0; d < die.sample.defects; ++d) {
                NetId net = static_cast<NetId>(
                    rng.below(golden->numNets()));
                StuckFault fault{net, rng.chance(0.5)};
                if (faulty)
                    faulty->injectFault(fault);
                die.faults.push_back(fault);
            }
        }

        die.at45V = probeDie(model, die.sample, kVddNominal, config,
                             faulty.get(), batched, test_prog,
                             test_inputs, rng);
        if (faulty)
            faulty->reset();
        die.at3V = probeDie(model, die.sample, kVddLow, config,
                            faulty.get(), batched, test_prog,
                            test_inputs, rng);
    });

    if (batched) {
        // Phase 2: gate-level fault sim of the defective dies, up to
        // 512 to a wide lane group. Batch membership is a pure
        // function of die index order (thread count cannot perturb
        // it), each lane's lockstep error count is bit-identical to
        // a scalar runLockstep of the same faulted die, and both
        // voltage probes receive the same count — exactly what the
        // scalar path computes by running the identical
        // deterministic lockstep once per voltage.
        std::vector<size_t> defective;
        for (size_t i = 0; i < result.dies.size(); ++i)
            if (result.dies[i].sample.hasDefects())
                defective.push_back(i);
        size_t num_batches = (defective.size() + lanes - 1) / lanes;
        parallelFor(num_batches, config.threads, [&](size_t b) {
            size_t begin = b * lanes;
            unsigned n = static_cast<unsigned>(std::min<size_t>(
                lanes, defective.size() - begin));
            LaneGroup group(*golden, n);
            for (unsigned lane = 0; lane < n; ++lane)
                for (const StuckFault &f :
                     result.dies[defective[begin + lane]].faults)
                    group.injectFault(lane, f);
            LockstepGroupResult res = runLockstepGroup(
                group, *golden, config.isa, test_prog, test_inputs,
                config.testCycles, config.earlyExit);
            for (unsigned lane = 0; lane < n; ++lane) {
                DieResult &die =
                    result.dies[defective[begin + lane]];
                die.at45V.errors += res.errors[lane];
                die.at3V.errors += res.errors[lane];
            }
        });
    }
    return result;
}

} // namespace flexi
