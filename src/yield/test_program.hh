/**
 * @file
 * Die-test program and stimulus generation.
 *
 * Section 4.1: dies were exercised with >100,000 cycles of "random
 * and directed test vectors" that "stimulate all regions of the
 * cores", with every gate toggling at least once. The generator
 * builds a single-page program: a directed prologue covering every
 * instruction class, a randomized body (branch-free so the sweep
 * length is deterministic), and an unconditional wrap back to
 * address 0 so the pattern repeats for as many cycles as the test
 * budget allows.
 */

#ifndef FLEXI_YIELD_TEST_PROGRAM_HH
#define FLEXI_YIELD_TEST_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "assembler/program.hh"

namespace flexi
{

/** Build the wafer-test program for a fabricated ISA. */
Program makeTestProgram(IsaKind isa, uint64_t seed);

/**
 * Memoized makeTestProgram. A batched wafer study's whole gate-level
 * phase runs in a few hundred microseconds, so re-assembling the
 * same deterministic (isa, seed) program on every call — tens of
 * microseconds — is a measurable share of it; population sweeps call
 * in with the same few keys thousands of times. Thread-safe; the
 * returned reference lives for the process.
 */
const Program &cachedTestProgram(IsaKind isa, uint64_t seed);

/** Random input-bus stimulus values (masked to the data width). */
std::vector<uint8_t> makeTestInputs(IsaKind isa, size_t n,
                                    uint64_t seed);

} // namespace flexi

#endif // FLEXI_YIELD_TEST_PROGRAM_HH
