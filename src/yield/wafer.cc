#include "wafer.hh"

#include <cmath>

#include "common/logging.hh"

namespace flexi
{

WaferMap::WaferMap(double diameter_mm, double pitch_mm,
                   double edge_exclusion_mm)
    : diameter_(diameter_mm), pitch_(pitch_mm),
      edgeExclusion_(edge_exclusion_mm)
{
    if (diameter_ <= 0 || pitch_ <= 0 || edgeExclusion_ < 0)
        fatal("bad wafer geometry");

    double radius = diameter_ / 2.0;
    double incl = inclusionRadiusMm();
    int half = static_cast<int>(radius / pitch_) + 1;
    for (int row = -half; row <= half; ++row) {
        for (int col = -half; col <= half; ++col) {
            DieSite site;
            site.col = col;
            site.row = row;
            site.xMm = (col + 0.5) * pitch_;
            site.yMm = (row + 0.5) * pitch_;
            site.radiusMm = std::hypot(site.xMm, site.yMm);
            // Whole die must be on the wafer: require the die-center
            // within radius minus half a pitch diagonal margin.
            if (site.radiusMm > radius)
                continue;
            site.inInclusionZone = site.radiusMm <= incl;
            site.index = sites_.size();
            sites_.push_back(site);
        }
    }
}

size_t
WaferMap::numInclusionDies() const
{
    size_t n = 0;
    for (const auto &s : sites_)
        n += s.inInclusionZone;
    return n;
}

double
WaferMap::inclusionRadiusMm() const
{
    return diameter_ / 2.0 - edgeExclusion_;
}

} // namespace flexi
