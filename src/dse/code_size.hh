/**
 * @file
 * Code-size measurement and per-extension estimation (Figs 9/10/12).
 *
 * Two mechanisms:
 *  - *measured* sizes: assemble the real kernel sources for the
 *    base, revised-accumulator and load-store ISAs;
 *  - *estimated* sizes for individual ISA extensions: static idiom
 *    analysis of the base sources (how many unconditional-branch
 *    pairs, HALVE blocks, full-range compares, negates, ... they
 *    contain) priced with the per-idiom savings each extension
 *    delivers. First-order, but it is exactly the attribution the
 *    paper's Figure 10 visualizes.
 */

#ifndef FLEXI_DSE_CODE_SIZE_HH
#define FLEXI_DSE_CODE_SIZE_HH

#include <cstddef>

#include "dse/design_point.hh"
#include "kernels/kernels.hh"

namespace flexi
{

/** Static code size of one program. */
struct CodeSize
{
    size_t instructions = 0;
    size_t bits = 0;
};

/** Assemble the real source of @p id for @p isa and measure it. */
CodeSize measuredCodeSize(KernelId id, IsaKind isa);

/** Idiom census of a base-ISA kernel (inputs to the estimator). */
struct IdiomStats
{
    unsigned ubrs = 0;          ///< unconditional-branch idioms
    unsigned halveBlocks = 0;   ///< Listing-1-style shift dances
    unsigned compares = 0;      ///< full-range unsigned compares
    unsigned negates = 0;       ///< complement+increment pairs
    unsigned zeroTests = 0;     ///< two-branch zero tests
    unsigned movePairs = 0;     ///< adjacent load/store shuffles
    unsigned sharedDispatch = 0;///< selector-register subroutines
    bool hasMulLoop = false;    ///< software multiply loop
};

/** Count idioms in the base FlexiCore4 source of @p id. */
IdiomStats analyzeBaseKernel(KernelId id);

/**
 * Estimated static instruction count of @p id on an accumulator
 * core with feature set @p f (base encoding widths).
 */
CodeSize estimatedCodeSize(KernelId id, const IsaFeatures &f);

/**
 * Suite-aggregate code size (summed instructions over all seven
 * kernels) relative to the base ISA — the Figure 9 code-size bars.
 */
double relativeSuiteCodeSize(const IsaFeatures &f);

} // namespace flexi

#endif // FLEXI_DSE_CODE_SIZE_HH
