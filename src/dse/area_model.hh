/**
 * @file
 * Analytical area / power / timing model for DSE design points.
 *
 * The model composes the same structures the FlexiCore4 netlist
 * generator builds (ripple adder, mux trees, DFF banks), priced with
 * the 13-cell library's NAND2-equivalent areas, so the base
 * accumulator single-cycle point reproduces the structural netlist's
 * area; extensions and alternative microarchitectures then add or
 * remove components. Calibration is asserted in tests/test_dse.cc.
 */

#ifndef FLEXI_DSE_AREA_MODEL_HH
#define FLEXI_DSE_AREA_MODEL_HH

#include "dse/design_point.hh"

namespace flexi
{

/** Per-module area rollup (NAND2 equivalents). */
struct AreaBreakdown
{
    double alu = 0.0;
    double decoder = 0.0;
    double memory = 0.0;
    double pc = 0.0;
    double acc = 0.0;      ///< accumulator (acc) / flags (ls)
    double control = 0.0;  ///< pipeline / multicycle / return state
    double pads = 0.0;

    double total() const;
};

/** Area breakdown of a design point. */
AreaBreakdown areaOf(const DesignPoint &point);

/** Area of the base FlexiCore4 point (for normalization). */
double baseCoreArea();

/** Cell count estimate of a design point. */
unsigned cellCountOf(const DesignPoint &point);

/**
 * Area of the data memory with @p read_ports ports; exposes the
 * second-port cost the paper quantifies (+39 % on FlexiCore4's
 * 8-word memory, +25 % on FlexiCore8's 4-word memory, Section 3.5).
 */
double memoryArea(unsigned words, unsigned width,
                  unsigned read_ports);

/**
 * Critical-path length of a design point in unit gate delays; with
 * the technology delay model this gives the point's SP&R f_max
 * (Section 6.2: "the cores ... operate at their SP&R f_max").
 */
double critPathUnitsOf(const DesignPoint &point);

/** f_max in Hz at the nominal 4.5 V supply. */
double fmaxOf(const DesignPoint &point);

/** Static power (W) at 4.5 V, scaled from area like the technology's
 *  resistive pull-up logic (>99 % static). */
double staticPowerOf(const DesignPoint &point);

} // namespace flexi

#endif // FLEXI_DSE_AREA_MODEL_HH
