#include "perf_model.hh"

#include "common/logging.hh"
#include "dse/area_model.hh"
#include "kernels/runner.hh"

namespace flexi
{

namespace
{

KernelPerfEnergy
evalWith(KernelId id, const TimingConfig &cfg, double fmax,
         double power_w, size_t work_units, uint64_t seed)
{
    KernelRun run = runKernel(id, cfg, work_units, seed);
    if (run.stop == StopReason::Budget)
        fatal("%s did not finish its %zu work units", kernelName(id),
              work_units);
    KernelPerfEnergy out;
    out.cycles = run.stats.cycles;
    out.instructions = run.stats.instructions;
    out.fmaxHz = fmax;
    out.timeS = static_cast<double>(run.stats.cycles) / fmax;
    out.powerW = power_w;
    out.energyJ = out.powerW * out.timeS;
    return out;
}

} // namespace

KernelPerfEnergy
evalDsePoint(KernelId id, const DesignPoint &point, size_t work_units,
             uint64_t seed)
{
    if (!point.feasible())
        fatal("design point %s is infeasible (Section 6.2)",
              point.name().c_str());
    return evalWith(id, point.timing(), fmaxOf(point),
                    staticPowerOf(point), work_units, seed);
}

KernelPerfEnergy
evalFlexiCore4Baseline(KernelId id, size_t work_units, uint64_t seed)
{
    DesignPoint base;
    base.operands = OperandModel::Accumulator;
    base.uarch = MicroArch::SingleCycle;
    base.bus = BusWidth::Wide;
    base.features = IsaFeatures::none();

    TimingConfig cfg{IsaKind::FlexiCore4, MicroArch::SingleCycle,
                     BusWidth::Wide};
    return evalWith(id, cfg, fmaxOf(base), staticPowerOf(base),
                    work_units, seed);
}

} // namespace flexi
