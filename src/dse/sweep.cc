#include "sweep.hh"

#include "common/thread_pool.hh"
#include "dse/area_model.hh"
#include "dse/code_size.hh"
#include "dse/perf_model.hh"

namespace flexi
{

bool
SweepCandidate::dominates(const SweepCandidate &other) const
{
    bool no_worse = area <= other.area && codeRel <= other.codeRel &&
                    energyRel <= other.energyRel;
    bool better = area < other.area || codeRel < other.codeRel ||
                  energyRel < other.energyRel;
    return no_worse && better;
}

namespace
{

/** The paper's candidate feature subsets (Section 6.1). */
std::vector<IsaFeatures>
candidateFeatureSets()
{
    std::vector<IsaFeatures> sets;
    sets.push_back(IsaFeatures::none());
    {
        IsaFeatures f;
        f.coalescing = true;
        f.branchFlags = true;
        sets.push_back(f);
    }
    {
        IsaFeatures f;
        f.coalescing = true;
        f.barrelShifter = true;
        f.branchFlags = true;
        sets.push_back(f);
    }
    sets.push_back(IsaFeatures::revised());
    {
        IsaFeatures f = IsaFeatures::revised();
        f.multiplier = true;
        sets.push_back(f);
    }
    return sets;
}

} // namespace

SweepResult
runSweep(const SweepConfig &cfg)
{
    SweepResult result;
    // Suite-average baseline energy (the normalization denominator);
    // computed once up front, in parallel over kernels.
    std::vector<double> base_by_kernel(kNumKernels, 0.0);
    auto kernels = allKernels();
    parallelFor(kernels.size(), cfg.threads, [&](size_t k) {
        base_by_kernel[k] = evalFlexiCore4Baseline(
            kernels[k], cfg.workUnits, cfg.seed).energyJ;
    });
    double base_energy = 0.0;
    for (double e : base_by_kernel)
        base_energy += e;
    double base_area = baseCoreArea();

    // Enumerate feasible points in a fixed order (the result order
    // and the per-point work are both independent of threading).
    std::vector<SweepCandidate> all;
    for (const IsaFeatures &f : candidateFeatureSets()) {
        for (OperandModel om :
             {OperandModel::Accumulator, OperandModel::LoadStore}) {
            for (MicroArch ua : {MicroArch::SingleCycle,
                                 MicroArch::Pipelined2,
                                 MicroArch::MultiCycle}) {
                SweepCandidate c;
                c.point = {om, ua, BusWidth::Wide, f};
                if (!c.point.feasible())
                    continue;
                // The load-store ISA is only implemented with the
                // full revised feature set.
                if (om == OperandModel::LoadStore &&
                    !(f == IsaFeatures::revised()))
                    continue;
                // Static timing gate: a point whose worst path
                // cannot close the clock at the operating voltage
                // is rejected before any simulation is spent on it.
                StaticTimingCheck timing = checkDesignPointTiming(
                    c.point, cfg.vddOperating);
                if (!timing.feasible) {
                    result.rejected.push_back({c.point, timing});
                    continue;
                }
                all.push_back(c);
            }
        }
    }

    parallelFor(all.size(), cfg.threads, [&](size_t i) {
        SweepCandidate &c = all[i];
        const IsaFeatures &f = c.point.features;
        c.area = areaOf(c.point).total() / base_area;
        // Code size: measured for the revised sets, idiom estimate
        // otherwise.
        c.codeRel = relativeSuiteCodeSize(f);
        double e = 0.0;
        if (f == IsaFeatures::none() &&
            c.point.operands == OperandModel::Accumulator &&
            c.point.uarch == MicroArch::SingleCycle) {
            e = base_energy;
        } else if (f == IsaFeatures::revised()) {
            for (KernelId id : allKernels())
                e += evalDsePoint(id, c.point, cfg.workUnits,
                                  cfg.seed).energyJ;
        } else {
            // Feature subsets short of the revised set run the base
            // binaries (no custom codegen): energy scales with area
            // at unchanged cycle counts.
            e = base_energy * c.area *
                fmaxOf(DesignPoint{c.point.operands, c.point.uarch,
                                   BusWidth::Wide,
                                   IsaFeatures::none()}) /
                fmaxOf(c.point);
        }
        c.energyRel = e / base_energy;
    });

    for (auto &c : all) {
        c.pareto = true;
        for (const auto &other : all)
            if (other.dominates(c))
                c.pareto = false;
    }
    result.candidates = std::move(all);
    return result;
}

std::vector<SweepCandidate>
sweepDesignSpace(const SweepConfig &cfg)
{
    return runSweep(cfg).candidates;
}

} // namespace flexi
