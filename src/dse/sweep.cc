#include "sweep.hh"

#include "analysis/dataflow/struct_hash.hh"
#include "analysis/mc/bmc.hh"
#include "analysis/mc/property.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "dse/area_model.hh"
#include "dse/code_size.hh"
#include "dse/perf_model.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{

bool
SweepCandidate::dominates(const SweepCandidate &other) const
{
    bool no_worse = area <= other.area && codeRel <= other.codeRel &&
                    energyRel <= other.energyRel;
    bool better = area < other.area || codeRel < other.codeRel ||
                  energyRel < other.energyRel;
    return no_worse && better;
}

namespace
{

/** The paper's candidate feature subsets (Section 6.1). */
std::vector<IsaFeatures>
candidateFeatureSets()
{
    std::vector<IsaFeatures> sets;
    sets.push_back(IsaFeatures::none());
    {
        IsaFeatures f;
        f.coalescing = true;
        f.branchFlags = true;
        sets.push_back(f);
    }
    {
        IsaFeatures f;
        f.coalescing = true;
        f.barrelShifter = true;
        f.branchFlags = true;
        sets.push_back(f);
    }
    sets.push_back(IsaFeatures::revised());
    {
        IsaFeatures f = IsaFeatures::revised();
        f.multiplier = true;
        sets.push_back(f);
    }
    return sets;
}

/** splitmix64 step for composing cache-key fields. */
uint64_t
mixKey(uint64_t h, uint64_t v)
{
    uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Canonical structural hash of the base core netlist behind one
 * operand model — the "structure version" part of the cache key.
 * Computed once per process (the generators are deterministic).
 */
uint64_t
coreStructureHash(OperandModel model)
{
    static const uint64_t ext =
        canonicalNetlistHash(*buildExtAcc4Netlist());
    static const uint64_t ls =
        canonicalNetlistHash(*buildLoadStore4Netlist());
    return model == OperandModel::LoadStore ? ls : ext;
}

} // namespace

uint64_t
sweepPointKey(const DesignPoint &point, const SweepConfig &cfg)
{
    const IsaFeatures &f = point.features;
    uint64_t feature_bits =
        (f.coalescing ? 1u : 0u) | (f.barrelShifter ? 2u : 0u) |
        (f.branchFlags ? 4u : 0u) | (f.multiplier ? 8u : 0u) |
        (f.exchange ? 16u : 0u) | (f.subroutines ? 32u : 0u) |
        (f.doubleMemory ? 64u : 0u);
    uint64_t h = coreStructureHash(point.operands);
    h = mixKey(h, static_cast<uint64_t>(point.operands));
    h = mixKey(h, static_cast<uint64_t>(point.uarch));
    h = mixKey(h, static_cast<uint64_t>(point.bus));
    h = mixKey(h, feature_bits);
    h = mixKey(h, cfg.workUnits);
    h = mixKey(h, cfg.seed);
    return h;
}

SweepResult
runSweep(const SweepConfig &cfg)
{
    SweepResult result;
    double base_area = baseCoreArea();

    // Sequential property gate, next to the static timing gate: the
    // base core netlist behind each operand model must satisfy
    // every configured property. The verdict depends only on the
    // operand model, so it is computed once and shared by every
    // point that uses that core. Empty verdict = all properties
    // hold (or none configured).
    std::map<OperandModel, std::string> prop_verdicts;
    auto propertyFailure =
        [&](OperandModel om) -> const std::string & {
        auto it = prop_verdicts.find(om);
        if (it != prop_verdicts.end())
            return it->second;
        std::string fail;
        auto nl = om == OperandModel::LoadStore
                      ? buildLoadStore4Netlist()
                      : buildExtAcc4Netlist();
        McModel model;
        for (const std::string &spec : cfg.properties) {
            McProperty p;
            std::string err;
            if (!parsePropertySpec(spec, p, &err)) {
                fail = strfmt("'%s': %s", spec.c_str(),
                              err.c_str());
                break;
            }
            std::string invalid = validateProperty(*nl, model, p);
            if (!invalid.empty()) {
                fail = strfmt("'%s': %s", spec.c_str(),
                              invalid.c_str());
                break;
            }
            if (p.kind == McProperty::Kind::XFree) {
                SeqResetCoverageResult cov =
                    seqResetCoverage(*nl, model, p.param);
                if (!cov.ok) {
                    fail = strfmt("'%s': %s", spec.c_str(),
                                  cov.detail.c_str());
                    break;
                }
                continue;
            }
            McResult r = checkInduction(*nl, model, p,
                                        cfg.propertyDepth);
            if (r.status == McStatus::Unknown)
                r = checkBmc(*nl, model, p, cfg.propertyDepth);
            if (r.status == McStatus::Falsified ||
                r.status == McStatus::Invalid) {
                fail = r.detail;
                break;
            }
        }
        return prop_verdicts.emplace(om, std::move(fail))
            .first->second;
    };

    // Enumerate feasible points in a fixed order (the result order
    // and the per-point work are both independent of threading).
    std::vector<SweepCandidate> all;
    for (const IsaFeatures &f : candidateFeatureSets()) {
        for (OperandModel om :
             {OperandModel::Accumulator, OperandModel::LoadStore}) {
            for (MicroArch ua : {MicroArch::SingleCycle,
                                 MicroArch::Pipelined2,
                                 MicroArch::MultiCycle}) {
                SweepCandidate c;
                c.point = {om, ua, BusWidth::Wide, f};
                if (!c.point.feasible())
                    continue;
                // The load-store ISA is only implemented with the
                // full revised feature set.
                if (om == OperandModel::LoadStore &&
                    !(f == IsaFeatures::revised()))
                    continue;
                // Static timing gate: a point whose worst path
                // cannot close the clock at the operating voltage
                // is rejected before any simulation is spent on it.
                StaticTimingCheck timing = checkDesignPointTiming(
                    c.point, cfg.vddOperating);
                if (!timing.feasible) {
                    result.rejected.push_back(
                        {c.point, timing, {}});
                    continue;
                }
                // Property gate: a falsified sequential property on
                // the point's base core rejects it unsimulated,
                // exactly like a missed clock period.
                if (!cfg.properties.empty()) {
                    const std::string &pf = propertyFailure(om);
                    if (!pf.empty()) {
                        result.rejected.push_back(
                            {c.point, StaticTimingCheck{}, pf});
                        continue;
                    }
                }
                all.push_back(c);
            }
        }
    }

    // Cache lookup: points whose (structure, point, inputs) key is
    // already known skip evaluation entirely — including the
    // baseline-energy simulation when every point hits.
    std::vector<size_t> to_eval;
    to_eval.reserve(all.size());
    for (size_t i = 0; i < all.size(); ++i) {
        if (cfg.cache) {
            uint64_t key = sweepPointKey(all[i].point, cfg);
            auto it = cfg.cache->entries.find(key);
            if (it != cfg.cache->entries.end()) {
                all[i].area = it->second.area;
                all[i].codeRel = it->second.codeRel;
                all[i].energyRel = it->second.energyRel;
                ++cfg.cache->hits;
                continue;
            }
            ++cfg.cache->misses;
        }
        to_eval.push_back(i);
    }

    // Suite-average baseline energy (the normalization denominator);
    // computed in parallel over kernels, and only when some point
    // actually needs evaluating.
    double base_energy = 0.0;
    if (!to_eval.empty()) {
        std::vector<double> base_by_kernel(kNumKernels, 0.0);
        auto kernels = allKernels();
        parallelFor(kernels.size(), cfg.threads, [&](size_t k) {
            base_by_kernel[k] = evalFlexiCore4Baseline(
                kernels[k], cfg.workUnits, cfg.seed).energyJ;
        });
        for (double e : base_by_kernel)
            base_energy += e;
    }

    parallelFor(to_eval.size(), cfg.threads, [&](size_t n) {
        SweepCandidate &c = all[to_eval[n]];
        const IsaFeatures &f = c.point.features;
        c.area = areaOf(c.point).total() / base_area;
        // Code size: measured for the revised sets, idiom estimate
        // otherwise.
        c.codeRel = relativeSuiteCodeSize(f);
        double e = 0.0;
        if (f == IsaFeatures::none() &&
            c.point.operands == OperandModel::Accumulator &&
            c.point.uarch == MicroArch::SingleCycle) {
            e = base_energy;
        } else if (f == IsaFeatures::revised()) {
            for (KernelId id : allKernels())
                e += evalDsePoint(id, c.point, cfg.workUnits,
                                  cfg.seed).energyJ;
        } else {
            // Feature subsets short of the revised set run the base
            // binaries (no custom codegen): energy scales with area
            // at unchanged cycle counts.
            e = base_energy * c.area *
                fmaxOf(DesignPoint{c.point.operands, c.point.uarch,
                                   BusWidth::Wide,
                                   IsaFeatures::none()}) /
                fmaxOf(c.point);
        }
        c.energyRel = e / base_energy;
    });

    if (cfg.cache)
        for (size_t i : to_eval)
            cfg.cache->entries[sweepPointKey(all[i].point, cfg)] = {
                all[i].area, all[i].codeRel, all[i].energyRel};

    for (auto &c : all) {
        c.pareto = true;
        for (const auto &other : all)
            if (other.dominates(c))
                c.pareto = false;
    }
    result.candidates = std::move(all);
    return result;
}

std::vector<SweepCandidate>
sweepDesignSpace(const SweepConfig &cfg)
{
    return runSweep(cfg).candidates;
}

} // namespace flexi
