#include "code_size.hh"

#include <algorithm>
#include <string>

#include "assembler/assembler.hh"
#include "common/logging.hh"

namespace flexi
{

namespace
{

unsigned
countOccurrences(const std::string &haystack, const std::string &needle)
{
    unsigned n = 0;
    size_t pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

unsigned
countAdjacentMovePairs(const std::string &src)
{
    // "load rX\nstore rY" back-to-back — the shuffle xch collapses.
    unsigned n = 0;
    size_t pos = 0;
    while ((pos = src.find("load r", pos)) != std::string::npos) {
        size_t eol = src.find('\n', pos);
        if (eol != std::string::npos &&
            src.compare(eol + 1, 7, "store r") == 0)
            ++n;
        pos += 6;
    }
    return n;
}

} // namespace

CodeSize
measuredCodeSize(KernelId id, IsaKind isa)
{
    Program p = assemble(isa, kernelSource(id, isa));
    return {p.staticInstructions(), p.codeSizeBits()};
}

IdiomStats
analyzeBaseKernel(KernelId id)
{
    std::string src = kernelSource(id, IsaKind::FlexiCore4);
    IdiomStats s;
    s.ubrs = countOccurrences(src, "nandi 0\nbr ");
    s.halveBlocks = countOccurrences(src, "_s3:");
    s.compares = countOccurrences(src, "_ahi:");
    s.negates = countOccurrences(src, "nandi 0xF\naddi 1");
    s.zeroTests = countOccurrences(src, "_nz:");
    s.movePairs = countAdjacentMovePairs(src);
    s.sharedDispatch = countOccurrences(src, "ret0:");
    s.hasMulLoop = id == KernelId::Calculator;
    return s;
}

CodeSize
estimatedCodeSize(KernelId id, const IsaFeatures &f)
{
    CodeSize base = measuredCodeSize(id, IsaKind::FlexiCore4);
    IdiomStats s = analyzeBaseKernel(id);

    // Per-idiom savings (static instructions). Each HALVE block is
    // ~28 instructions replaced by one lsri; each full-range compare
    // (16 instructions) becomes sub + carry materialization (~3);
    // negate pairs inside compares must not be double-counted.
    double saved = 0.0;
    unsigned ubrs = s.ubrs;
    if (f.barrelShifter) {
        saved += s.halveBlocks * 27.0;
        ubrs -= std::min(ubrs, s.halveBlocks * 6);   // their UBRs
        saved += s.sharedDispatch * 10.0;            // dispatch gone
    }
    if (f.coalescing) {
        saved += s.compares * 13.0;
        unsigned free_negates =
            s.negates > 2 * s.compares ? s.negates - 2 * s.compares
                                       : 0;
        saved += free_negates * 2.0;
    }
    if (f.branchFlags) {
        saved += ubrs * 1.0;           // drop the nandi of each UBR
        saved += s.zeroTests * 3.0;    // br.z replaces the dance
    }
    if (f.multiplier && s.hasMulLoop)
        saved += 47.0;                 // shift-and-add loop -> mul
    if (f.exchange)
        saved += s.movePairs * 1.0;
    if (f.subroutines && !f.barrelShifter)
        saved += s.sharedDispatch * 6.0;
    // Doubled data memory leaves code size unchanged (Figure 9).

    double est = std::max(4.0, static_cast<double>(base.instructions)
                                   - saved);
    CodeSize out;
    out.instructions = static_cast<size_t>(est + 0.5);
    out.bits = out.instructions * 8;
    return out;
}

double
relativeSuiteCodeSize(const IsaFeatures &f)
{
    size_t base_total = 0, est_total = 0;
    for (KernelId id : allKernels()) {
        base_total += measuredCodeSize(id, IsaKind::FlexiCore4)
                          .instructions;
        est_total += estimatedCodeSize(id, f).instructions;
    }
    return base_total
        ? static_cast<double>(est_total) / base_total : 1.0;
}

} // namespace flexi
