/**
 * @file
 * Static timing feasibility gate for the design-space sweep.
 *
 * Before a design point is simulated (thousands of kernel cycles),
 * check statically whether its worst combinational path even fits
 * the clock period at the sweep's operating voltage. Points with a
 * structural netlist (the single-cycle wide-bus cores we actually
 * build) are checked with the real path-level STA; the rest fall
 * back to the calibrated analytic critical-path model.
 *
 * At the nominal 4.5 V every candidate fits with margin; at the 3 V
 * low-voltage corner the slower points (the load-store machines and
 * the single-cycle accumulator cores) blow through the 80 us period
 * and are rejected without burning any simulation time — the DSE
 * analogue of the paper's FlexiCore8 3 V yield cliff.
 */

#ifndef FLEXI_DSE_STATIC_TIMING_HH
#define FLEXI_DSE_STATIC_TIMING_HH

#include <string>

#include "dse/design_point.hh"
#include "tech/technology.hh"

namespace flexi
{

/** Outcome of the static feasibility check for one design point. */
struct StaticTimingCheck
{
    double delayUnits = 0.0;
    /** Seconds of slack against the clock period (negative = miss). */
    double slackS = 0.0;
    bool feasible = false;
    /** "netlist" (real STA) or "model" (analytic estimate). */
    const char *source = "model";
    /** Named worst path when a structural netlist backs the point. */
    std::string worstPath;
};

/**
 * Check @p point against the clock at supply @p vdd. Uses the real
 * netlist STA when the point corresponds to a structural netlist,
 * the analytic critPathUnitsOf() model otherwise.
 */
StaticTimingCheck checkDesignPointTiming(const DesignPoint &point,
                                         double vdd,
                                         double clock_hz = kClockHz);

} // namespace flexi

#endif // FLEXI_DSE_STATIC_TIMING_HH
