/**
 * @file
 * Pricing of bespoke-prune savings against the DSE area model.
 *
 * The prune pass reports what it removed in NAND2 equivalents (the
 * cell library's area unit). This helper relates those savings to
 * the analytical DSE area model so a specialization result reads in
 * the same currency as the Section 6 sweep: absolute NAND2s saved,
 * the fraction of the core, and the fraction of the base FlexiCore4
 * design point the sweep normalizes everything to.
 */

#ifndef FLEXI_DSE_BESPOKE_REPORT_HH
#define FLEXI_DSE_BESPOKE_REPORT_HH

#include <string>

#include "analysis/dataflow/prune.hh"

namespace flexi
{

struct BespokeAreaReport
{
    double nand2Before = 0.0;
    double nand2After = 0.0;
    double nand2Saved = 0.0;
    /** Fraction of the pruned core's own area removed. */
    double fractionSaved = 0.0;
    /** DSE base FlexiCore4 point area (NAND2), for normalization. */
    double baselineCoreNand2 = 0.0;
    /** Savings as a fraction of that baseline point. */
    double fractionOfBaseline = 0.0;
    size_t cellsRemoved = 0;
    size_t dffsRemoved = 0;

    /** One-line human-readable rendering. */
    std::string text() const;
};

/** Price a prune's savings in the DSE sweep's units. */
BespokeAreaReport bespokeAreaReport(const PruneStats &stats);

} // namespace flexi

#endif // FLEXI_DSE_BESPOKE_REPORT_HH
