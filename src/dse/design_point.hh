/**
 * @file
 * Design-space descriptors (Section 6).
 *
 * The paper explores two axes:
 *  - ISA extensions over the base FlexiCore4 accumulator ISA
 *    (Figure 9): data-coalescing adc/swb, a barrel shifter
 *    (right shifts), nzp branch condition flags, a hardware
 *    multiplier, an accumulator-exchange instruction, subroutine
 *    call/ret with a return register, and doubled data memory;
 *  - operand model x microarchitecture x program-bus width
 *    (Figures 11-13): {accumulator, load-store} x {single-cycle,
 *    2-stage pipelined, multicycle} x {wide, 8-bit} bus.
 */

#ifndef FLEXI_DSE_DESIGN_POINT_HH
#define FLEXI_DSE_DESIGN_POINT_HH

#include <array>
#include <string>

#include "isa/isa.hh"
#include "sim/timing.hh"

namespace flexi
{

/** ISA extensions considered in Section 6.1 / Figure 9. */
struct IsaFeatures
{
    bool coalescing = false;     ///< adc / swb (and sub)
    bool barrelShifter = false;  ///< asr(i) / lsr(i)
    bool branchFlags = false;    ///< nzp branch conditions
    bool multiplier = false;     ///< 4x4 hardware multiply
    bool exchange = false;       ///< xch (accumulator exchange)
    bool subroutines = false;    ///< call / ret + return register
    bool doubleMemory = false;   ///< 16-word data memory

    bool operator==(const IsaFeatures &other) const = default;

    /** The paper's final revised op set (Section 6.1): everything
     *  except the multiplier and the doubled register file. */
    static IsaFeatures revised();
    static IsaFeatures none() { return {}; }

    /** Short tag, e.g. "adc+shift+flags". */
    std::string tag() const;
};

/** Operand model (Section 6.2). */
enum class OperandModel : uint8_t
{
    Accumulator,
    LoadStore,
};

const char *operandModelName(OperandModel model);

/** One point in the Section 6.2 design space. */
struct DesignPoint
{
    OperandModel operands = OperandModel::Accumulator;
    MicroArch uarch = MicroArch::SingleCycle;
    BusWidth bus = BusWidth::Wide;
    IsaFeatures features = IsaFeatures::revised();

    /** The ISA this point executes (ExtAcc4 or LoadStore4). */
    IsaKind isa() const;
    /** Timing configuration for the simulator. */
    TimingConfig timing() const;
    /** "Acc SC", "LS P", ... as in Figure 11's legend. */
    std::string name() const;
    /** Points impossible under the bus constraint (Section 6.2). */
    bool feasible() const;
};

/** The six DSE cores of Figures 11/12 (wide bus). */
std::array<DesignPoint, 6> dseCores();

} // namespace flexi

#endif // FLEXI_DSE_DESIGN_POINT_HH
