#include "static_timing.hh"

#include "analysis/timing.hh"
#include "dse/area_model.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{

namespace
{

/**
 * The structural netlist backing a design point, if we build one:
 * the single-cycle wide-bus machines (the base FlexiCore4, the
 * revised accumulator core, the revised load-store core).
 */
std::unique_ptr<Netlist>
structuralNetlistOf(const DesignPoint &point)
{
    if (point.uarch != MicroArch::SingleCycle ||
        point.bus != BusWidth::Wide)
        return nullptr;
    if (point.operands == OperandModel::Accumulator) {
        if (point.features == IsaFeatures::none())
            return buildFlexiCore4Netlist();
        if (point.features == IsaFeatures::revised())
            return buildExtAcc4Netlist();
        return nullptr;
    }
    if (point.features == IsaFeatures::revised())
        return buildLoadStore4Netlist();
    return nullptr;
}

} // namespace

StaticTimingCheck
checkDesignPointTiming(const DesignPoint &point, double vdd,
                       double clock_hz)
{
    StaticTimingCheck check;
    if (auto nl = structuralNetlistOf(point)) {
        TimingReport tr = analyzeTiming(*nl, 1);
        check.delayUnits = tr.worstDelayUnits();
        check.source = "netlist";
        if (!tr.paths.empty())
            check.worstPath = tr.paths.front().text();
    } else {
        check.delayUnits = critPathUnitsOf(point);
        check.source = "model";
    }
    Technology tech;
    check.slackS = 1.0 / clock_hz -
                   check.delayUnits * tech.unitDelay(vdd);
    check.feasible = check.slackS >= 0.0;
    return check;
}

} // namespace flexi
