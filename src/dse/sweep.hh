/**
 * @file
 * Design-space sweep: enumerate the Section 6 candidate space
 * (ISA feature subsets x operand model x microarchitecture), run
 * the real kernel suite on every feasible point, and mark the
 * Pareto frontier over (area, code size, energy).
 *
 * This is the library form of what examples/dse_explorer.cc used to
 * do inline, with the evaluation fanned out over a thread pool.
 * Every design point is evaluated independently from deterministic
 * inputs, so the sweep is bit-identical for any thread count.
 */

#ifndef FLEXI_DSE_SWEEP_HH
#define FLEXI_DSE_SWEEP_HH

#include <cstdint>
#include <vector>

#include "dse/design_point.hh"
#include "dse/static_timing.hh"
#include "tech/technology.hh"

namespace flexi
{

/** One evaluated point of the design-space sweep. */
struct SweepCandidate
{
    DesignPoint point;
    /** Area / suite code size / suite energy vs FlexiCore4 (= 1). */
    double area = 0.0;
    double codeRel = 0.0;
    double energyRel = 0.0;
    /** On the Pareto frontier over (area, codeRel, energyRel)? */
    bool pareto = false;

    bool dominates(const SweepCandidate &other) const;
};

/** Configuration of one sweep. */
struct SweepConfig
{
    /** Kernel work units per evaluation. */
    size_t workUnits = 12;
    /** Kernel input-generation seed. */
    uint64_t seed = 3;
    /** Worker threads: 0 = auto, 1 = single-threaded. Results are
     *  bit-identical for any value. */
    unsigned threads = 0;
    /**
     * Supply voltage the candidates must close timing at. Points
     * whose worst path misses the clock period at this supply are
     * rejected statically (never simulated) and reported in
     * SweepResult::rejected. At the default nominal 4.5 V every
     * candidate fits; sweeping at kVddLow reproduces the paper's
     * low-voltage feasibility cliff.
     */
    double vddOperating = kVddNominal;
};

/** A design point the static timing gate refused to simulate. */
struct RejectedPoint
{
    DesignPoint point;
    StaticTimingCheck timing;
};

/** Evaluated candidates plus the statically rejected points. */
struct SweepResult
{
    std::vector<SweepCandidate> candidates;
    std::vector<RejectedPoint> rejected;
};

/**
 * Evaluate the paper's candidate feature sets across both operand
 * models and all three microarchitectures (wide bus). Candidates
 * that fail static timing at cfg.vddOperating are rejected without
 * simulation; the rest are evaluated and returned in a
 * deterministic enumeration order with the Pareto frontier marked.
 */
SweepResult runSweep(const SweepConfig &cfg);

/** runSweep() without the rejection report (legacy shape). */
std::vector<SweepCandidate> sweepDesignSpace(const SweepConfig &cfg);

} // namespace flexi

#endif // FLEXI_DSE_SWEEP_HH
