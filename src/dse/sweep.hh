/**
 * @file
 * Design-space sweep: enumerate the Section 6 candidate space
 * (ISA feature subsets x operand model x microarchitecture), run
 * the real kernel suite on every feasible point, and mark the
 * Pareto frontier over (area, code size, energy).
 *
 * This is the library form of what examples/dse_explorer.cc used to
 * do inline, with the evaluation fanned out over a thread pool.
 * Every design point is evaluated independently from deterministic
 * inputs, so the sweep is bit-identical for any thread count.
 */

#ifndef FLEXI_DSE_SWEEP_HH
#define FLEXI_DSE_SWEEP_HH

#include <cstdint>
#include <vector>

#include "dse/design_point.hh"

namespace flexi
{

/** One evaluated point of the design-space sweep. */
struct SweepCandidate
{
    DesignPoint point;
    /** Area / suite code size / suite energy vs FlexiCore4 (= 1). */
    double area = 0.0;
    double codeRel = 0.0;
    double energyRel = 0.0;
    /** On the Pareto frontier over (area, codeRel, energyRel)? */
    bool pareto = false;

    bool dominates(const SweepCandidate &other) const;
};

/** Configuration of one sweep. */
struct SweepConfig
{
    /** Kernel work units per evaluation. */
    size_t workUnits = 12;
    /** Kernel input-generation seed. */
    uint64_t seed = 3;
    /** Worker threads: 0 = auto, 1 = single-threaded. Results are
     *  bit-identical for any value. */
    unsigned threads = 0;
};

/**
 * Evaluate the paper's candidate feature sets across both operand
 * models and all three microarchitectures (wide bus). Returns the
 * feasible candidates in a deterministic enumeration order, with
 * the Pareto frontier marked.
 */
std::vector<SweepCandidate> sweepDesignSpace(const SweepConfig &cfg);

} // namespace flexi

#endif // FLEXI_DSE_SWEEP_HH
