/**
 * @file
 * Design-space sweep: enumerate the Section 6 candidate space
 * (ISA feature subsets x operand model x microarchitecture), run
 * the real kernel suite on every feasible point, and mark the
 * Pareto frontier over (area, code size, energy).
 *
 * This is the library form of what examples/dse_explorer.cc used to
 * do inline, with the evaluation fanned out over a thread pool.
 * Every design point is evaluated independently from deterministic
 * inputs, so the sweep is bit-identical for any thread count.
 */

#ifndef FLEXI_DSE_SWEEP_HH
#define FLEXI_DSE_SWEEP_HH

#include <cstdint>
#include <map>
#include <vector>

#include "dse/design_point.hh"
#include "dse/static_timing.hh"
#include "tech/technology.hh"

namespace flexi
{

/** One evaluated point of the design-space sweep. */
struct SweepCandidate
{
    DesignPoint point;
    /** Area / suite code size / suite energy vs FlexiCore4 (= 1). */
    double area = 0.0;
    double codeRel = 0.0;
    double energyRel = 0.0;
    /** On the Pareto frontier over (area, codeRel, energyRel)? */
    bool pareto = false;

    bool dominates(const SweepCandidate &other) const;
};

/**
 * Cross-sweep evaluation cache for incremental design-space
 * exploration. Entries are keyed by sweepPointKey(): a mix of the
 * *canonical structural hash* of the point's base core netlist (so
 * any change to the generated structure invalidates every entry,
 * no matter how the netlist was rebuilt), the design-point
 * descriptor, and the evaluation inputs (workUnits, seed). A
 * population-scale study re-running sweeps over unchanged
 * structures pays for each point once.
 *
 * The cache is passive data: share one across runSweep() calls to
 * reuse results, inspect hits/misses for reporting. Not
 * thread-safe against *concurrent sweeps* (a single sweep only
 * touches it from the coordinating thread).
 */
struct SweepCache
{
    struct Entry
    {
        double area = 0.0;
        double codeRel = 0.0;
        double energyRel = 0.0;
    };
    std::map<uint64_t, Entry> entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/** Configuration of one sweep. */
struct SweepConfig
{
    /** Kernel work units per evaluation. */
    size_t workUnits = 12;
    /** Kernel input-generation seed. */
    uint64_t seed = 3;
    /** Worker threads: 0 = auto, 1 = single-threaded. Results are
     *  bit-identical for any value. */
    unsigned threads = 0;
    /**
     * Supply voltage the candidates must close timing at. Points
     * whose worst path misses the clock period at this supply are
     * rejected statically (never simulated) and reported in
     * SweepResult::rejected. At the default nominal 4.5 V every
     * candidate fits; sweeping at kVddLow reproduces the paper's
     * low-voltage feasibility cliff.
     */
    double vddOperating = kVddNominal;
    /**
     * Optional evaluation cache (see SweepCache). vddOperating is
     * deliberately not part of the key: it only gates which points
     * are simulated, never their metrics.
     */
    SweepCache *cache = nullptr;
    /**
     * Sequential properties (the flexilint --prop grammar) every
     * point's base core netlist must satisfy, checked by
     * k-induction with a BMC fallback before any simulation. A
     * falsified or inapplicable property rejects the point next to
     * the static timing gate. Like vddOperating, the list is not
     * part of the cache key: it gates which points are simulated,
     * never their metrics.
     */
    std::vector<std::string> properties;
    /** Induction k / BMC bound for the property gate. */
    unsigned propertyDepth = 4;
};

/** Cache key of one design point under one configuration. */
uint64_t sweepPointKey(const DesignPoint &point,
                       const SweepConfig &cfg);

/** A design point a pre-simulation gate refused to simulate. */
struct RejectedPoint
{
    DesignPoint point;
    StaticTimingCheck timing;
    /** Set when the property gate rejected the point: the failing
     *  spec's verdict. Empty for static-timing rejections. */
    std::string property;
};

/** Evaluated candidates plus the statically rejected points. */
struct SweepResult
{
    std::vector<SweepCandidate> candidates;
    std::vector<RejectedPoint> rejected;
};

/**
 * Evaluate the paper's candidate feature sets across both operand
 * models and all three microarchitectures (wide bus). Candidates
 * that fail static timing at cfg.vddOperating are rejected without
 * simulation; the rest are evaluated and returned in a
 * deterministic enumeration order with the Pareto frontier marked.
 */
SweepResult runSweep(const SweepConfig &cfg);

/** runSweep() without the rejection report (legacy shape). */
std::vector<SweepCandidate> sweepDesignSpace(const SweepConfig &cfg);

} // namespace flexi

#endif // FLEXI_DSE_SWEEP_HH
