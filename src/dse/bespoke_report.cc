#include "bespoke_report.hh"

#include "common/logging.hh"
#include "dse/area_model.hh"

namespace flexi
{

std::string
BespokeAreaReport::text() const
{
    return strfmt(
        "bespoke prune: %.1f -> %.1f NAND2 (-%.1f, %.1f%% of the "
        "core, %.1f%% of the base FlexiCore4 point); %zu cell(s) "
        "and %zu state bit(s) removed",
        nand2Before, nand2After, nand2Saved, fractionSaved * 100.0,
        fractionOfBaseline * 100.0, cellsRemoved, dffsRemoved);
}

BespokeAreaReport
bespokeAreaReport(const PruneStats &stats)
{
    BespokeAreaReport rep;
    rep.nand2Before = stats.nand2AreaBefore;
    rep.nand2After = stats.nand2AreaAfter;
    rep.nand2Saved = stats.nand2AreaSaved();
    rep.fractionSaved = stats.nand2AreaBefore > 0.0
        ? rep.nand2Saved / stats.nand2AreaBefore : 0.0;
    rep.baselineCoreNand2 = baseCoreArea();
    rep.fractionOfBaseline = rep.baselineCoreNand2 > 0.0
        ? rep.nand2Saved / rep.baselineCoreNand2 : 0.0;
    rep.cellsRemoved = stats.cellsBefore - stats.cellsAfter;
    rep.dffsRemoved = stats.dffsBefore - stats.dffsAfter;
    return rep;
}

} // namespace flexi
