/**
 * @file
 * Performance / energy evaluation of DSE design points (Figures 11
 * and 13).
 *
 * Each point runs the real kernel binaries on the cycle-accurate
 * simulator at the point's own SP&R f_max (Section 6.2); energy is
 * static power (area-proportional in this technology) times runtime.
 */

#ifndef FLEXI_DSE_PERF_MODEL_HH
#define FLEXI_DSE_PERF_MODEL_HH

#include <cstdint>

#include "dse/design_point.hh"
#include "kernels/kernels.hh"

namespace flexi
{

/** Measured execution of one kernel on one core. */
struct KernelPerfEnergy
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    double fmaxHz = 0.0;
    double timeS = 0.0;
    double powerW = 0.0;
    double energyJ = 0.0;
};

/** Run @p work_units of kernel @p id on DSE point @p point. */
KernelPerfEnergy evalDsePoint(KernelId id, const DesignPoint &point,
                              size_t work_units, uint64_t seed);

/** Same workload on the fabricated FlexiCore4 baseline (at its own
 *  SP&R f_max, for a like-for-like Figure 11 normalization). */
KernelPerfEnergy evalFlexiCore4Baseline(KernelId id,
                                        size_t work_units,
                                        uint64_t seed);

} // namespace flexi

#endif // FLEXI_DSE_PERF_MODEL_HH
