#include "design_point.hh"

#include "common/logging.hh"

namespace flexi
{

IsaFeatures
IsaFeatures::revised()
{
    IsaFeatures f;
    f.coalescing = true;
    f.barrelShifter = true;
    f.branchFlags = true;
    f.exchange = true;
    f.subroutines = true;
    return f;
}

std::string
IsaFeatures::tag() const
{
    std::string s;
    auto add = [&](bool on, const char *name) {
        if (!on)
            return;
        if (!s.empty())
            s += '+';
        s += name;
    };
    add(coalescing, "adc");
    add(barrelShifter, "shift");
    add(branchFlags, "flags");
    add(multiplier, "mul");
    add(exchange, "xch");
    add(subroutines, "call");
    add(doubleMemory, "2xmem");
    return s.empty() ? "base" : s;
}

const char *
operandModelName(OperandModel model)
{
    switch (model) {
      case OperandModel::Accumulator: return "Acc";
      case OperandModel::LoadStore: return "LS";
    }
    panic("operandModelName: bad model");
}

IsaKind
DesignPoint::isa() const
{
    return operands == OperandModel::Accumulator ? IsaKind::ExtAcc4
                                                 : IsaKind::LoadStore4;
}

TimingConfig
DesignPoint::timing() const
{
    return {isa(), uarch, bus};
}

std::string
DesignPoint::name() const
{
    std::string s = operandModelName(operands);
    switch (uarch) {
      case MicroArch::SingleCycle: s += " SC"; break;
      case MicroArch::Pipelined2: s += " P"; break;
      case MicroArch::MultiCycle: s += " MC"; break;
    }
    if (bus == BusWidth::Narrow8)
        s += " (8b bus)";
    return s;
}

bool
DesignPoint::feasible() const
{
    return !(operands == OperandModel::LoadStore &&
             bus == BusWidth::Narrow8 &&
             uarch != MicroArch::MultiCycle);
}

std::array<DesignPoint, 6>
dseCores()
{
    std::array<DesignPoint, 6> cores;
    size_t i = 0;
    for (OperandModel om :
         {OperandModel::Accumulator, OperandModel::LoadStore}) {
        for (MicroArch ua : {MicroArch::SingleCycle,
                             MicroArch::Pipelined2,
                             MicroArch::MultiCycle}) {
            cores[i].operands = om;
            cores[i].uarch = ua;
            cores[i].bus = BusWidth::Wide;
            cores[i].features = IsaFeatures::revised();
            ++i;
        }
    }
    return cores;
}

} // namespace flexi
