#include "area_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "tech/cell_library.hh"
#include "tech/technology.hh"

namespace flexi
{

namespace
{

double
cellArea(CellType t)
{
    return cellInfo(t).nand2Area;
}

const double A_INV = cellArea(CellType::INV_X1);
const double A_BUF = cellArea(CellType::BUF_X1);
const double A_BUF2 = cellArea(CellType::BUF_X2);
const double A_NAND = cellArea(CellType::NAND2);
const double A_NAND3 = cellArea(CellType::NAND3);
const double A_XOR = cellArea(CellType::XOR2);
const double A_MUX = cellArea(CellType::MUX2);
const double A_DFF = cellArea(CellType::DFF_X1);

/** Ripple-carry adder (2 XOR + 3 NAND per bit, Figure 3b). */
double
adderArea(unsigned w)
{
    return w * (2 * A_XOR + 3 * A_NAND);
}

/** Program counter: 7 flops + incrementer + branch mux + take gate. */
double
pcArea(bool branch_flags)
{
    double a = 7 * A_DFF;
    a += A_INV + 6 * A_XOR + 5 * (A_NAND + A_INV);   // incrementer
    a += 7 * A_MUX;                                  // branch mux
    a += A_NAND + A_INV;                             // taken
    if (branch_flags) {
        // nzp evaluation: zero-detect NOR tree + 3-bit mask network.
        a += 2 * A_NAND3 + 4 * A_NAND + 2 * A_INV;
    }
    return a;
}

/** Write-port decode: one-hot AND tree per word. */
double
writeDecodeArea(unsigned words)
{
    return words * (A_NAND3 + A_INV) + 3 * A_INV;
}

} // namespace

double
AreaBreakdown::total() const
{
    return alu + decoder + memory + pc + acc + control + pads;
}

double
memoryArea(unsigned words, unsigned width, unsigned read_ports)
{
    if (words < 2 || read_ports < 1)
        fatal("memoryArea: bad configuration");
    // Word 0 is the input bus (no storage); word 1 is the output
    // latch (stored).
    double storage = (words - 1) * width * A_DFF;
    double write_mux = (words - 1) * width * A_MUX;
    double decode = writeDecodeArea(words) +
                    (words - 1) * (A_NAND + A_INV);
    // Each read port: a words:1 mux tree per bit plus address
    // drivers and word-line wiring. The wiring overhead grows with
    // the word count — "the cost of the access port increases with
    // the number of data words" (Section 3.5), which is why the
    // second port costs the 8-word FlexiCore4 array relatively more
    // (+39 %) than FlexiCore8's 4-word array (+25 %).
    double wiring = 1.0 + 0.10 * words;
    double port = (words - 1) * width * A_MUX * wiring +
                  std::log2(words) * A_BUF2 * 2.0;
    return storage + write_mux + decode + read_ports * port;
}

AreaBreakdown
areaOf(const DesignPoint &point)
{
    constexpr unsigned W = 4;
    bool ls = point.operands == OperandModel::LoadStore;
    const IsaFeatures &f = point.features;
    unsigned words = f.doubleMemory ? 16 : 8;

    AreaBreakdown a;

    // ---- ALU ----
    a.alu = adderArea(W);
    a.alu += 3 * W * A_MUX;                 // base 4:1 output mux
    unsigned extra_ops = 0;
    if (f.coalescing) {
        // Operand inverter (sub/swb), carry flop and carry-in mux.
        a.alu += W * A_XOR + A_DFF + 2 * A_MUX + 2 * A_NAND;
        ++extra_ops;
    }
    if (f.barrelShifter) {
        // log2(W) mux stages plus arithmetic sign fill.
        a.alu += 2 * W * A_MUX + 2 * A_MUX + A_NAND;
        ++extra_ops;
    }
    if (f.multiplier) {
        // W^2 partial products + (W-1) adder rows + half-select mux.
        a.alu += W * W * (A_NAND + A_INV) + (W - 1) * adderArea(W) +
                 W * A_MUX;
        ++extra_ops;
    }
    if (f.exchange)
        a.alu += 2 * A_NAND;                // write-path steering
    // Wider result mux for the added function groups.
    a.alu += extra_ops * W * A_MUX;

    // ---- Decoder ----
    a.decoder = 2 * A_INV + A_NAND3 + 2 * A_NAND;   // base (Fig. 2a)
    if (f.coalescing || f.barrelShifter || f.exchange ||
        f.subroutines) {
        a.decoder += 4 * A_NAND + 2 * A_INV;
    }
    if (ls) {
        // op5 decode: denser encoding needs a real decoder
        // (Section 3.5 anticipates exactly this trade).
        a.decoder += 7 * A_NAND3 + 4 * A_INV;
    }

    // ---- Data memory / register file ----
    unsigned read_ports;
    if (!ls) {
        read_ports = 1;
    } else {
        // rd & rs read concurrently except on the multicycle
        // machine, which serializes them (Section 6.2: the MC
        // load-store machine drops the second port).
        read_ports = point.uarch == MicroArch::MultiCycle ? 1 : 2;
    }
    a.memory = memoryArea(words, W, read_ports);

    // ---- PC and branch ----
    a.pc = pcArea(f.branchFlags || ls);

    // ---- Accumulator / flags ----
    if (!ls) {
        a.acc = W * (A_DFF + A_MUX);
    } else {
        // No accumulator, but an architectural flags register.
        a.acc = 3 * A_DFF + 2 * A_NAND3 + 2 * A_INV;
    }

    // ---- Sequencing control ----
    if (f.subroutines)
        a.control += 8 * A_DFF;    // "at the cost of 8 flip-flops"
    switch (point.uarch) {
      case MicroArch::SingleCycle:
        if (point.bus == BusWidth::Narrow8 &&
            (ls || true /* 2-byte br/call */)) {
            // Second-fetch-beat flag (the FlexiCore8-style flop).
            a.control += A_DFF + 2 * A_NAND;
        }
        break;
      case MicroArch::Pipelined2: {
        // Decoded-control register + valid bit + flush gate.
        unsigned ctrl_bits = ls ? 12 : 8;
        a.control += ctrl_bits * A_DFF + A_DFF + 3 * A_NAND;
        break;
      }
      case MicroArch::MultiCycle:
        // State flops plus one control word per execution state —
        // on the accumulator machine this buys nothing back, making
        // it the largest accumulator design (Sections 3.4, 6.2).
        a.control += 3 * A_DFF + 32 * A_NAND + 8 * A_INV +
                     (ls ? 12 : 10) * A_MUX;
        break;
    }

    // ---- Pad ring buffers (as in the structural netlists) ----
    // A wide program bus means 16 instruction pins whenever the ISA
    // has two-byte instructions (all of LoadStore4; ExtAcc4's
    // branch/call) — Section 6.3's IO-count argument.
    unsigned outputs = 7 + W;
    bool has_two_byte = ls || !(f == IsaFeatures::none());
    unsigned instr_pins =
        (point.bus == BusWidth::Narrow8 || !has_two_byte) ? 8 : 16;
    unsigned inputs = instr_pins + W;
    a.pads = outputs * A_BUF2 + inputs * A_BUF;

    return a;
}

double
baseCoreArea()
{
    DesignPoint base;
    base.operands = OperandModel::Accumulator;
    base.uarch = MicroArch::SingleCycle;
    base.bus = BusWidth::Wide;
    base.features = IsaFeatures::none();
    return areaOf(base).total();
}

unsigned
cellCountOf(const DesignPoint &point)
{
    // First-order: cells average ~2.5 NAND2 each in this library
    // (the FlexiCore4 netlist: 228 cells / 570 NAND2-eq).
    return static_cast<unsigned>(areaOf(point).total() / 2.5);
}

double
critPathUnitsOf(const DesignPoint &point)
{
    bool ls = point.operands == OperandModel::LoadStore;
    const IsaFeatures &f = point.features;

    // Execute path: operand mux/regfile read -> ALU (carry chain)
    // -> result mux -> writeback mux -> DFF. Matches the structural
    // FlexiCore4 netlist's 27.4 units for the base point.
    double operand_read = ls ? 3 * 1.8 + 1.0 : 3 * 1.8;   // mux tree
    double alu = 4 * 2.4 + 1.2;                  // carry chain + sum
    double result_mux = 2 * 1.8;
    if (f.coalescing)
        result_mux += 0.6;                       // carry-in mux
    if (f.barrelShifter || f.multiplier)
        result_mux += 1.8;                       // wider result mux
    double writeback = 1.8 + 2.8;                // hold mux + DFF
    double decode = 2.0 + (ls ? 1.5 : 0.0);
    double execute = decode + operand_read + alu + result_mux +
                     writeback;

    // Fetch path (program memory access + PC increment) — hidden by
    // pipelining, serialized in the multicycle machine.
    double fetch = 9.0;

    switch (point.uarch) {
      case MicroArch::SingleCycle:
        return fetch + execute - 4.0;   // fetch overlaps decode
      case MicroArch::Pipelined2:
        return std::max(fetch + 2.0, execute);
      case MicroArch::MultiCycle:
        return std::max(fetch + 2.0, execute - 2.0);
    }
    panic("critPathUnitsOf: bad uarch");
}

double
fmaxOf(const DesignPoint &point)
{
    Technology tech;
    return 1.0 / (critPathUnitsOf(point) * tech.unitDelay(kVddNominal));
}

double
staticPowerOf(const DesignPoint &point)
{
    // Same power density as the fabricated FlexiCore4 wafer:
    // current scales with area (resistive pull-ups).
    Technology tech;
    constexpr double kUaPerNand2 = 1033.0 / 570.0;   // netlist calib
    double ref_ua = areaOf(point).total() * kUaPerNand2;
    return tech.staticPower(ref_ua, kVddNominal);
}

} // namespace flexi
