#include "program.hh"

#include "common/logging.hh"

namespace flexi
{

Program::Program(IsaKind isa)
    : isa_(isa)
{
}

unsigned
Program::numPages() const
{
    return static_cast<unsigned>(pages_.size());
}

const std::vector<uint8_t> &
Program::page(unsigned idx) const
{
    if (idx >= pages_.size())
        fatal("program has no page %u", idx);
    return pages_[idx];
}

std::vector<uint8_t> &
Program::mutablePage(unsigned idx)
{
    if (idx >= pages_.size())
        pages_.resize(idx + 1);
    return pages_[idx];
}

unsigned
Program::pageCapacityBytes() const
{
    return isa_ == IsaKind::LoadStore4 ? kPageSize * 2 : kPageSize;
}

void
Program::appendBytes(unsigned page, const std::vector<uint8_t> &bytes)
{
    auto &img = mutablePage(page);
    if (img.size() + bytes.size() > pageCapacityBytes())
        fatal("page %u overflows its %u-byte capacity", page,
              pageCapacityBytes());
    img.insert(img.end(), bytes.begin(), bytes.end());
}

unsigned
Program::pageFill(unsigned page) const
{
    if (page >= pages_.size())
        return 0;
    unsigned bytes = static_cast<unsigned>(pages_[page].size());
    return isa_ == IsaKind::LoadStore4 ? bytes / 2 : bytes;
}

void
Program::defineSymbol(const std::string &name, SymbolLoc loc)
{
    auto [it, inserted] = symbols_.emplace(name, loc);
    if (!inserted)
        fatal("duplicate label '%s'", name.c_str());
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

SymbolLoc
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        fatal("undefined label '%s'", name.c_str());
    return it->second;
}

const std::map<std::string, SymbolLoc> &
Program::symbols() const
{
    return symbols_;
}

void
Program::noteInstruction(unsigned size_bits)
{
    ++staticInsts_;
    codeBits_ += size_bits;
}

size_t
Program::codeSizeBytes() const
{
    return (codeBits_ + 7) / 8;
}

} // namespace flexi
