#include "program_io.hh"
#include <cstring>

#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

namespace
{

constexpr char kMagic[4] = {'F', 'L', 'X', 'C'};
constexpr uint8_t kVersion = 1;

void
countInstructions(Program &prog)
{
    // Recompute the static-size statistics by walking the images.
    for (unsigned page = 0; page < prog.numPages(); ++page) {
        const auto &img = prog.page(page);
        unsigned step = prog.isa() == IsaKind::LoadStore4 ? 2 : 1;
        unsigned entries = static_cast<unsigned>(img.size()) / step;
        unsigned pc = 0;
        while (pc < entries) {
            DecodeResult dec = decodeAt(prog.isa(), img, pc);
            prog.noteInstruction(
                prog.isa() == IsaKind::LoadStore4 ? 16
                                                  : dec.bytes * 8);
            pc += prog.isa() == IsaKind::LoadStore4 ? 1 : dec.bytes;
        }
    }
}

} // namespace

void
saveProgram(const Program &prog, std::ostream &out)
{
    out.write(kMagic, 4);
    out.put(static_cast<char>(kVersion));
    out.put(static_cast<char>(prog.isa()));
    // Count non-empty pages.
    uint8_t npages = 0;
    for (unsigned p = 0; p < prog.numPages(); ++p)
        if (!prog.page(p).empty())
            ++npages;
    out.put(static_cast<char>(npages));
    for (unsigned p = 0; p < prog.numPages(); ++p) {
        const auto &img = prog.page(p);
        if (img.empty())
            continue;
        out.put(static_cast<char>(p));
        out.put(static_cast<char>(img.size() & 0xFF));
        out.put(static_cast<char>((img.size() >> 8) & 0xFF));
        out.write(reinterpret_cast<const char *>(img.data()),
                  static_cast<std::streamsize>(img.size()));
    }
    if (!out)
        fatal("program image write failed");
}

Program
loadProgram(std::istream &in)
{
    char magic[4] = {};
    in.read(magic, 4);
    if (!in || std::memcmp(magic, kMagic, 4) != 0)
        fatal("not a FlexiCore program image (bad magic)");
    int version = in.get();
    if (version != kVersion)
        fatal("unsupported program image version %d", version);
    int isa_raw = in.get();
    if (isa_raw < 0 ||
        isa_raw > static_cast<int>(IsaKind::LoadStore4))
        fatal("program image has bad ISA id %d", isa_raw);
    Program prog(static_cast<IsaKind>(isa_raw));

    int npages = in.get();
    if (npages < 0 || npages > 16)
        fatal("program image has bad page count");
    for (int i = 0; i < npages; ++i) {
        int page = in.get();
        int lo = in.get();
        int hi = in.get();
        if (page < 0 || page > 15 || lo < 0 || hi < 0)
            fatal("truncated program image header");
        size_t len = static_cast<size_t>(lo) |
                     (static_cast<size_t>(hi) << 8);
        if (len > prog.pageCapacityBytes())
            fatal("page %d exceeds capacity", page);
        std::vector<uint8_t> bytes(len);
        in.read(reinterpret_cast<char *>(bytes.data()),
                static_cast<std::streamsize>(len));
        if (!in)
            fatal("truncated program image data");
        prog.appendBytes(static_cast<unsigned>(page), bytes);
    }
    countInstructions(prog);
    return prog;
}

void
saveProgramFile(const Program &prog, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    saveProgram(prog, out);
}

Program
loadProgramFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    return loadProgram(in);
}

} // namespace flexi
