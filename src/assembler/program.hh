/**
 * @file
 * Assembled program image.
 *
 * FlexiCore programs live in off-chip memory organized as 128-entry
 * pages (7-bit PC); programs larger than one page span multiple pages
 * and switch between them through the off-chip MMU (Section 5.1).
 * A Program holds the per-page binary images plus the symbol table
 * and size metrics used by the code-size studies (Figures 9/10/12).
 */

#ifndef FLEXI_ASSEMBLER_PROGRAM_HH
#define FLEXI_ASSEMBLER_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace flexi
{

/** Location of a label: page number plus page-relative address. */
struct SymbolLoc
{
    unsigned page = 0;
    unsigned addr = 0;

    bool operator==(const SymbolLoc &other) const = default;
};

/** An assembled, possibly multi-page, program. */
class Program
{
  public:
    explicit Program(IsaKind isa);

    IsaKind isa() const { return isa_; }

    /** Number of pages with any content. */
    unsigned numPages() const;

    /** Byte image of one page (sized to content, <= page capacity). */
    const std::vector<uint8_t> &page(unsigned idx) const;
    std::vector<uint8_t> &mutablePage(unsigned idx);

    /** Page capacity in bytes (256 for LoadStore4, else 128). */
    unsigned pageCapacityBytes() const;

    /** Append raw bytes to a page; fatal on overflow. */
    void appendBytes(unsigned page, const std::vector<uint8_t> &bytes);

    /** Current fill of a page, in PC units (words for LoadStore4). */
    unsigned pageFill(unsigned page) const;

    void defineSymbol(const std::string &name, SymbolLoc loc);
    bool hasSymbol(const std::string &name) const;
    SymbolLoc symbol(const std::string &name) const;
    const std::map<std::string, SymbolLoc> &symbols() const;

    /** Bookkeeping used by the code-size studies. */
    void noteInstruction(unsigned size_bits);
    size_t staticInstructions() const { return staticInsts_; }
    size_t codeSizeBits() const { return codeBits_; }
    size_t codeSizeBytes() const;

  private:
    IsaKind isa_;
    std::vector<std::vector<uint8_t>> pages_;
    std::map<std::string, SymbolLoc> symbols_;
    size_t staticInsts_ = 0;
    size_t codeBits_ = 0;
};

} // namespace flexi

#endif // FLEXI_ASSEMBLER_PROGRAM_HH
