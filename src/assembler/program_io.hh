/**
 * @file
 * Binary program-image container.
 *
 * FlexiCore programs live in off-chip memory chips; this is the
 * simple container the tools use to ship assembled images around
 * (flexiasm -o / flexisim on a .bin):
 *
 *   "FLXC" | version u8 | isa u8 | npages u8 |
 *   npages x { page u8 | length u16 LE | bytes }
 *
 * Symbols and size statistics are assembly-time artifacts and are
 * not serialized (instruction counts are recomputed on load).
 */

#ifndef FLEXI_ASSEMBLER_PROGRAM_IO_HH
#define FLEXI_ASSEMBLER_PROGRAM_IO_HH

#include <iosfwd>
#include <string>

#include "assembler/program.hh"

namespace flexi
{

/** Serialize @p prog to a stream. */
void saveProgram(const Program &prog, std::ostream &out);

/** Parse a program image; throws FatalError on malformed input. */
Program loadProgram(std::istream &in);

/** File-path conveniences. */
void saveProgramFile(const Program &prog, const std::string &path);
Program loadProgramFile(const std::string &path);

} // namespace flexi

#endif // FLEXI_ASSEMBLER_PROGRAM_IO_HH
