#include "assembler.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

namespace
{

/** One source statement after lexing. */
struct Statement
{
    unsigned line = 0;
    std::string label;              // empty if none
    std::string mnemonic;           // empty if label/directive only
    std::vector<std::string> args;  // raw operand tokens
    bool isDirective = false;
};

struct MnemonicInfo
{
    Op op;
    Mode mode;
};

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::string
strip(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r\n");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r\n");
    return s.substr(a, b - a + 1);
}

/** Parse a numeric literal (decimal / 0x / 0b, optional minus). */
std::optional<long>
parseNumber(const std::string &tok)
{
    std::string t = tok;
    bool neg = false;
    if (!t.empty() && (t[0] == '-' || t[0] == '+')) {
        neg = t[0] == '-';
        t = t.substr(1);
    }
    if (t.empty())
        return std::nullopt;
    long value = 0;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'b' || t[1] == 'B')) {
        for (size_t i = 2; i < t.size(); ++i) {
            if (t[i] != '0' && t[i] != '1')
                return std::nullopt;
            value = value * 2 + (t[i] - '0');
        }
    } else {
        char *end = nullptr;
        value = std::strtol(t.c_str(), &end, 0);
        if (end == t.c_str() || *end != '\0')
            return std::nullopt;
    }
    return neg ? -value : value;
}

/** Parse "rN" register token. */
std::optional<unsigned>
parseReg(const std::string &tok)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        return std::nullopt;
    auto n = parseNumber(tok.substr(1));
    if (!n || *n < 0 || *n > 7)
        return std::nullopt;
    return static_cast<unsigned>(*n);
}

/** Per-ISA mnemonic tables. Condition-suffixed "br.xxx" handled on top. */
std::optional<MnemonicInfo>
lookupMnemonic(IsaKind isa, const std::string &m)
{
    auto base = [&]() -> std::optional<MnemonicInfo> {
        if (m == "add") return MnemonicInfo{Op::Add, Mode::Mem};
        if (m == "addi") return MnemonicInfo{Op::Add, Mode::Imm};
        if (m == "nand") return MnemonicInfo{Op::Nand, Mode::Mem};
        if (m == "nandi") return MnemonicInfo{Op::Nand, Mode::Imm};
        if (m == "xor") return MnemonicInfo{Op::Xor, Mode::Mem};
        if (m == "xori") return MnemonicInfo{Op::Xor, Mode::Imm};
        if (m == "load") return MnemonicInfo{Op::Load, Mode::Mem};
        if (m == "store") return MnemonicInfo{Op::Store, Mode::Mem};
        if (m == "br") return MnemonicInfo{Op::Br, Mode::None};
        return std::nullopt;
    };
    auto ext = [&]() -> std::optional<MnemonicInfo> {
        if (m == "adc") return MnemonicInfo{Op::Adc, Mode::Mem};
        if (m == "adci") return MnemonicInfo{Op::Adc, Mode::Imm};
        if (m == "sub") return MnemonicInfo{Op::Sub, Mode::Mem};
        if (m == "swb") return MnemonicInfo{Op::Swb, Mode::Mem};
        if (m == "and") return MnemonicInfo{Op::And, Mode::Mem};
        if (m == "andi") return MnemonicInfo{Op::And, Mode::Imm};
        if (m == "or") return MnemonicInfo{Op::Or, Mode::Mem};
        if (m == "ori") return MnemonicInfo{Op::Or, Mode::Imm};
        if (m == "neg") return MnemonicInfo{Op::Neg, Mode::None};
        if (m == "asr") return MnemonicInfo{Op::Asr, Mode::Mem};
        if (m == "asri") return MnemonicInfo{Op::Asr, Mode::Imm};
        if (m == "lsr") return MnemonicInfo{Op::Lsr, Mode::Mem};
        if (m == "lsri") return MnemonicInfo{Op::Lsr, Mode::Imm};
        if (m == "call") return MnemonicInfo{Op::Call, Mode::None};
        if (m == "ret") return MnemonicInfo{Op::Ret, Mode::None};
        return std::nullopt;
    };

    switch (isa) {
      case IsaKind::FlexiCore4:
        if (m == "nop")
            return MnemonicInfo{Op::Add, Mode::Imm};   // addi 0
        return base();
      case IsaKind::FlexiCore8:
        if (m == "ldb")
            return MnemonicInfo{Op::Ldb, Mode::Imm};
        if (m == "nop")
            return MnemonicInfo{Op::Add, Mode::Imm};
        return base();
      case IsaKind::ExtAcc4: {
        // No nand in the revised op set (Section 6.1).
        if (m == "nand" || m == "nandi")
            return std::nullopt;
        if (m == "xch")
            return MnemonicInfo{Op::Xch, Mode::Mem};
        if (m == "li")
            return MnemonicInfo{Op::Li, Mode::Imm};
        if (m == "nop")
            return MnemonicInfo{Op::Or, Mode::Imm};    // ori 0
        if (auto r = base(); r)
            return r;
        return ext();
      }
      case IsaKind::LoadStore4: {
        if (m == "nand" || m == "nandi" || m == "load" || m == "store")
            return std::nullopt;
        if (m == "mov")
            return MnemonicInfo{Op::Mov, Mode::Mem};
        if (m == "movi")
            return MnemonicInfo{Op::Mov, Mode::Imm};
        if (m == "nop")
            return MnemonicInfo{Op::Or, Mode::Imm};
        if (auto r = base(); r)
            return r;
        return ext();
      }
    }
    return std::nullopt;
}

/** Immediate field width for (isa, op). */
unsigned
immWidth(IsaKind isa, Op op)
{
    if (op == Op::Ldb)
        return 8;
    switch (isa) {
      case IsaKind::FlexiCore4:
      case IsaKind::FlexiCore8:
      case IsaKind::LoadStore4:
        return 4;
      case IsaKind::ExtAcc4:
        return 3;
    }
    return 4;
}

uint8_t
parseCond(const std::string &suffix, unsigned line)
{
    uint8_t cond = 0;
    for (char c : suffix) {
        switch (c) {
          case 'n': cond |= kCondN; break;
          case 'z': cond |= kCondZ; break;
          case 'p': cond |= kCondP; break;
          default:
            fatal("line %u: bad branch condition '.%s'", line,
                  suffix.c_str());
        }
    }
    if (!cond)
        fatal("line %u: empty branch condition", line);
    return cond;
}

/** Split a line into a Statement (label / mnemonic / args). */
std::optional<Statement>
lexLine(const std::string &raw, unsigned line_no)
{
    // Strip comments.
    std::string s = raw;
    for (const char *marker : {";", "#", "//"}) {
        size_t pos = s.find(marker);
        if (pos != std::string::npos)
            s = s.substr(0, pos);
    }
    s = strip(s);
    if (s.empty())
        return std::nullopt;

    Statement st;
    st.line = line_no;

    // Optional leading label.
    size_t colon = s.find(':');
    if (colon != std::string::npos) {
        std::string lbl = strip(s.substr(0, colon));
        bool ok = !lbl.empty();
        for (char c : lbl)
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_')
                ok = false;
        if (ok) {
            st.label = lbl;
            s = strip(s.substr(colon + 1));
        }
    }
    if (s.empty())
        return st;

    if (s[0] == '.') {
        st.isDirective = true;
        s = s.substr(1);
    }

    std::istringstream in(s);
    in >> st.mnemonic;
    st.mnemonic = toLower(st.mnemonic);
    std::string rest;
    std::getline(in, rest);
    rest = strip(rest);
    // Comma- or space-separated operands.
    std::string cur;
    for (char c : rest + ",") {
        if (c == ',' || c == ' ' || c == '\t') {
            cur = strip(cur);
            if (!cur.empty())
                st.args.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return st;
}

/** Size in PC units of a statement's instruction(s). */
unsigned
stmtSize(IsaKind isa, const Statement &st, const MnemonicInfo &info)
{
    (void)st;
    if (isa == IsaKind::LoadStore4)
        return 1;   // PC counts 16-bit words
    if (info.op == Op::Ldb)
        return 2;
    if (isa == IsaKind::ExtAcc4 &&
        (info.op == Op::Br || info.op == Op::Call))
        return 2;
    return 1;
}

class AssemblerPass
{
  public:
    AssemblerPass(IsaKind isa, Program &prog, bool emit)
        : isa_(isa), prog_(prog), emit_(emit)
    {}

    void run(const std::vector<Statement> &stmts);

  private:
    void directive(const Statement &st);
    void instruction(const Statement &st);
    unsigned resolveTarget(const Statement &st, const std::string &tok);
    void pad(unsigned to_units);

    /** Parse a literal or a .equ-defined name. */
    std::optional<long> resolveNumber(const std::string &tok) const;

    IsaKind isa_;
    Program &prog_;
    bool emit_;
    unsigned page_ = 0;
    unsigned pc_ = 0;   // PC units within the page
    /** Per-page fill tracked locally (pass 1 emits nothing). */
    std::vector<unsigned> pass1Fill_;
    /** .equ constants. */
    std::map<std::string, long> equs_;
};

std::optional<long>
AssemblerPass::resolveNumber(const std::string &tok) const
{
    if (auto n = parseNumber(tok))
        return n;
    auto it = equs_.find(tok);
    if (it != equs_.end())
        return it->second;
    return std::nullopt;
}

void
AssemblerPass::pad(unsigned to_units)
{
    if (to_units < pc_)
        fatal(".org backwards (from %u to %u)", pc_, to_units);
    unsigned unit_bytes = isa_ == IsaKind::LoadStore4 ? 2 : 1;
    if (emit_) {
        std::vector<uint8_t> zeros((to_units - pc_) * unit_bytes, 0);
        prog_.appendBytes(page_, zeros);
    }
    pc_ = to_units;
}

void
AssemblerPass::directive(const Statement &st)
{
    auto numArg = [&](size_t i) -> long {
        if (i >= st.args.size())
            fatal("line %u: .%s needs an argument", st.line,
                  st.mnemonic.c_str());
        auto n = resolveNumber(st.args[i]);
        if (!n)
            fatal("line %u: bad number '%s'", st.line,
                  st.args[i].c_str());
        return *n;
    };

    if (st.mnemonic == "equ") {
        // .equ NAME VALUE — a named constant usable wherever a
        // number is (immediates, targets, other directives).
        if (st.args.size() != 2)
            fatal("line %u: .equ needs a name and a value", st.line);
        long v = numArg(1);
        equs_[st.args[0]] = v;
        return;
    }

    if (st.mnemonic == "page") {
        long p = numArg(0);
        if (p < 0 || p > 15)
            fatal("line %u: page %ld out of range (0..15)", st.line, p);
        page_ = static_cast<unsigned>(p);
        pc_ = prog_.pageFill(page_);
        // (pageFill is 0 in pass 1 since nothing is emitted; pass 1
        // tracks sizes itself, so re-derive from our own records.)
        if (!emit_)
            pc_ = pass1Fill_.size() > page_ ? pass1Fill_[page_] : 0;
        if (pass1Fill_.size() <= page_)
            pass1Fill_.resize(page_ + 1, 0);
    } else if (st.mnemonic == "org") {
        long a = numArg(0);
        if (a < 0 || a >= static_cast<long>(kPageSize))
            fatal("line %u: .org %ld out of page range", st.line, a);
        pad(static_cast<unsigned>(a));
    } else if (st.mnemonic == "byte") {
        for (size_t i = 0; i < st.args.size(); ++i) {
            long v = numArg(i);
            if (v < -128 || v > 255)
                fatal("line %u: byte value %ld out of range",
                      st.line, v);
            if (emit_)
                prog_.appendBytes(
                    page_, {static_cast<uint8_t>(v & 0xFF)});
            if (isa_ == IsaKind::LoadStore4)
                fatal("line %u: .byte unsupported on LoadStore4 "
                      "(word-addressed)", st.line);
            ++pc_;
        }
    } else {
        fatal("line %u: unknown directive '.%s'", st.line,
              st.mnemonic.c_str());
    }
    if (pass1Fill_.size() <= page_)
        pass1Fill_.resize(page_ + 1, 0);
    pass1Fill_[page_] = std::max(pass1Fill_[page_], pc_);
}

unsigned
AssemblerPass::resolveTarget(const Statement &st, const std::string &tok)
{
    // '@label' allows a cross-page target: the branch only sets the
    // 7-bit PC, and the MMU escape sequence selects the page. Used
    // together with .page for programs larger than 128 instructions.
    if (!tok.empty() && tok[0] == '@') {
        if (!emit_)
            return 0;
        return prog_.symbol(tok.substr(1)).addr;
    }
    if (auto n = resolveNumber(tok)) {
        if (*n < 0 || *n >= static_cast<long>(kPageSize))
            fatal("line %u: target %ld out of 7-bit range", st.line, *n);
        return static_cast<unsigned>(*n);
    }
    if (!emit_)
        return 0;   // symbols resolve in pass 2
    SymbolLoc loc = prog_.symbol(tok);
    if (loc.page != page_)
        fatal("line %u: branch to '%s' crosses pages (%u -> %u); "
              "use an MMU page-switch sequence", st.line, tok.c_str(),
              page_, loc.page);
    return loc.addr;
}

void
AssemblerPass::instruction(const Statement &st)
{
    std::string mnem = st.mnemonic;
    uint8_t cond = 0;
    size_t dot = mnem.find('.');
    if (dot != std::string::npos && mnem.substr(0, dot) == "br") {
        if (isa_ == IsaKind::FlexiCore4 || isa_ == IsaKind::FlexiCore8)
            fatal("line %u: condition codes need the extended ISA",
                  st.line);
        cond = parseCond(mnem.substr(dot + 1), st.line);
        mnem = "br";
    }

    auto info = lookupMnemonic(isa_, mnem);
    if (!info)
        fatal("line %u: unknown mnemonic '%s' for %s", st.line,
              mnem.c_str(), isaName(isa_));

    Instruction inst;
    inst.op = info->op;
    inst.mode = info->mode;
    inst.cond = cond;

    size_t argi = 0;
    bool load_store = isa_ == IsaKind::LoadStore4;

    if (load_store && inst.op != Op::Br && inst.op != Op::Call &&
        inst.op != Op::Ret) {
        if (argi >= st.args.size())
            fatal("line %u: missing destination register", st.line);
        auto rd = parseReg(st.args[argi++]);
        if (!rd)
            fatal("line %u: bad destination register '%s'", st.line,
                  st.args[argi - 1].c_str());
        inst.rd = static_cast<uint8_t>(*rd);
    }

    if (inst.op == Op::Br || inst.op == Op::Call) {
        if (argi >= st.args.size())
            fatal("line %u: missing branch target", st.line);
        inst.target = static_cast<uint8_t>(
            resolveTarget(st, st.args[argi++]));
    } else if (inst.mode == Mode::Mem) {
        // Unary LS ops (neg/asr/lsr with no source) are allowed.
        bool unary_ok = load_store &&
            (inst.op == Op::Asr || inst.op == Op::Lsr);
        bool acc_shift = !load_store &&
            (inst.op == Op::Asr || inst.op == Op::Lsr);
        if (acc_shift) {
            // Accumulator asr/lsr take no operand (shift by one).
            inst.mode = Mode::None;
        } else if (argi < st.args.size()) {
            auto r = parseReg(st.args[argi]);
            if (!r)
                fatal("line %u: expected register, got '%s'", st.line,
                      st.args[argi].c_str());
            inst.operand = static_cast<uint8_t>(*r);
            ++argi;
        } else if (unary_ok) {
            inst.mode = Mode::Imm;
            inst.operand = 1;
        } else {
            fatal("line %u: missing operand", st.line);
        }
    } else if (inst.mode == Mode::Imm) {
        if (argi >= st.args.size())
            fatal("line %u: missing immediate", st.line);
        auto n = resolveNumber(st.args[argi++]);
        if (!n)
            fatal("line %u: bad immediate '%s'", st.line,
                  st.args[argi - 1].c_str());
        unsigned w = immWidth(isa_, inst.op);
        long lo = -(1L << (w - 1));
        long hi = (1L << w) - 1;
        if (*n < lo || *n > hi)
            fatal("line %u: immediate %ld outside %u-bit field",
                  st.line, *n, w);
        inst.operand = static_cast<uint8_t>(
            maskBits(static_cast<uint32_t>(*n), w));
    }

    if (argi < st.args.size())
        fatal("line %u: trailing operand '%s'", st.line,
              st.args[argi].c_str());

    unsigned size = stmtSize(isa_, st, *info);
    if (pc_ + size > kPageSize)
        fatal("line %u: page %u overflows 128 entries", st.line, page_);

    if (emit_) {
        prog_.appendBytes(page_, encode(isa_, inst));
        prog_.noteInstruction(
            isa_ == IsaKind::LoadStore4 ? 16 : size * 8);
    }
    pc_ += size;
    if (pass1Fill_.size() <= page_)
        pass1Fill_.resize(page_ + 1, 0);
    pass1Fill_[page_] = std::max(pass1Fill_[page_], pc_);
}

void
AssemblerPass::run(const std::vector<Statement> &stmts)
{
    for (const auto &st : stmts) {
        if (!st.label.empty() && !emit_)
            prog_.defineSymbol(st.label, {page_, pc_});
        if (st.mnemonic.empty())
            continue;
        if (st.isDirective)
            directive(st);
        else
            instruction(st);
    }
}

} // namespace

Program
assemble(IsaKind isa, const std::string &source)
{
    std::vector<Statement> stmts;
    std::istringstream in(source);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (auto st = lexLine(line, line_no))
            stmts.push_back(std::move(*st));
    }

    Program prog(isa);
    AssemblerPass pass1(isa, prog, /*emit=*/false);
    pass1.run(stmts);
    AssemblerPass pass2(isa, prog, /*emit=*/true);
    pass2.run(stmts);
    return prog;
}

} // namespace flexi
