/**
 * @file
 * Two-pass assembler for the FlexiCore family ISAs.
 *
 * The paper's programs "are written in a highly readable assembly
 * language [and] assembled into machine code binaries by a custom
 * assembler" (Section 5.1). This is that assembler, in C++, for all
 * four ISAs.
 *
 * Syntax:
 * @code
 *   ; comment (also '#' and '//')
 *   loop:  addi 3          ; label definitions end with ':'
 *          add r4          ; rN = data-memory word N (r0=in, r1=out)
 *          br loop         ; targets: label or literal address
 *          br.nz loop      ; ExtAcc4/LoadStore4 nzp condition codes
 *          mov r2, r3      ; LoadStore4 two-operand form
 *   .page 1                ; switch MMU page
 *   .org 0x10              ; advance within the page (zero-filled)
 *   .byte 0x3A             ; raw byte
 * @endcode
 *
 * Immediates accept decimal, 0x hex and 0b binary, and may be
 * negative; they are masked to the field width (e.g. `addi -3` on
 * FlexiCore4 encodes 0b1101).
 */

#ifndef FLEXI_ASSEMBLER_ASSEMBLER_HH
#define FLEXI_ASSEMBLER_ASSEMBLER_HH

#include <string>

#include "assembler/program.hh"
#include "isa/isa.hh"

namespace flexi
{

/**
 * Assemble @p source for @p isa. Throws FatalError with a line-
 * numbered message on any syntax or range error.
 */
Program assemble(IsaKind isa, const std::string &source);

} // namespace flexi

#endif // FLEXI_ASSEMBLER_ASSEMBLER_HH
