#include "technology.hh"

#include <cmath>

#include "common/logging.hh"

namespace flexi
{

namespace
{

// Delay calibration: tau(V) = kDelayK / (V - Vth)^kDelayAlpha.
// Chosen so tau(4.5 V) ~ 2.0 us and tau(3.0 V) ~ 2.9 us, which puts a
// ~25-gate-deep FlexiCore4 critical path at ~50 us against the 80 us
// clock period (comfortable at 4.5 V, marginal at 3 V), and the
// roughly 1.5x longer FlexiCore8 path marginal at 4.5 V — matching
// the voltage sensitivity the paper reports in Section 4.1.
constexpr double kDelayAlpha = 0.58;
constexpr double kDelayK = 3.78e-6;   // s * V^alpha

} // namespace

Technology::Technology(bool pull_up_refined)
    : refined_(pull_up_refined)
{
}

double
Technology::areaMm2(double nand2_equiv) const
{
    return nand2_equiv * kMm2PerNand2;
}

double
Technology::unitDelay(double vdd, double vth) const
{
    double overdrive = vdd - vth;
    if (overdrive <= 0.05) {
        // Device effectively off: represent as an enormous delay
        // rather than a division blow-up so callers see a timing
        // failure, not NaN.
        overdrive = 0.05;
    }
    return kDelayK / std::pow(overdrive, kDelayAlpha);
}

double
Technology::staticCurrent(double ref_current_ua, double vdd) const
{
    if (ref_current_ua < 0)
        panic("negative reference current");
    // Pull-up resistors conduct whenever the output is low, so the
    // static current scales ~linearly with the supply (the measured
    // FC4 draw: 1.1 mA @4.5 V vs 0.73 mA @3 V, ratio 1.51 ~ 4.5/3).
    double scale = vdd / kVddNominal;
    double refinement = refined_ ? (1.0 / 1.5) : 1.0;
    return ref_current_ua * 1e-6 * scale * refinement;
}

double
Technology::staticPower(double ref_current_ua, double vdd) const
{
    return staticCurrent(ref_current_ua, vdd) * vdd;
}

double
Technology::energy(double power_w, double cycles, double clock_hz)
{
    if (clock_hz <= 0)
        panic("non-positive clock frequency");
    return power_w * cycles / clock_hz;
}

} // namespace flexi
