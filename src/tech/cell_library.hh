/**
 * @file
 * The 13-cell 0.8 um IGZO standard-cell library.
 *
 * The paper's FlexLogIC flow synthesizes to a thirteen-cell library of
 * n-type TFTs with resistive pull-ups (Figure 1): BUF (2 variants),
 * DFF (2), INV (2), MUX, NAND2, NAND3, NOR2, NOR3, XNOR2, XOR2.
 * Each cell carries the attributes every downstream model needs:
 *
 *  - device count (TFTs + pull-up resistors) — drives the defect model,
 *  - NAND2-equivalent area — drives footprint and the <800 NAND2 limit,
 *  - static pull-up conductance — drives the (purely static) power,
 *  - intrinsic delay weight — drives critical path / f_max.
 */

#ifndef FLEXI_TECH_CELL_LIBRARY_HH
#define FLEXI_TECH_CELL_LIBRARY_HH

#include <array>
#include <cstdint>
#include <string>

namespace flexi
{

/** Identifiers for the thirteen standard cells. */
enum class CellType : uint8_t
{
    INV_X1,
    INV_X2,
    BUF_X1,
    BUF_X2,
    NAND2,
    NAND3,
    NOR2,
    NOR3,
    XOR2,
    XNOR2,
    MUX2,
    DFF_X1,
    DFF_X2,
    NumCells,
};

constexpr size_t kNumCellTypes =
    static_cast<size_t>(CellType::NumCells);

/** Static per-cell attributes. */
struct CellInfo
{
    CellType type;
    const char *name;
    /** Number of logic inputs (DFF counts D + CLK). */
    unsigned numInputs;
    /** TFTs plus pull-up resistors in the cell. */
    unsigned deviceCount;
    /** Area in NAND2 equivalents. */
    double nand2Area;
    /**
     * Static pull-up current at the 4.5 V reference supply, in uA,
     * averaged over input states (outputs are low ~half the time in
     * resistive-pull-up NMOS, during which the pull-up conducts).
     */
    double staticCurrentUa;
    /** Delay in units of the technology's unit gate delay. */
    double delayUnits;
    /**
     * Maximum fanout the cell's resistive pull-up can drive before
     * the output low level degrades past the noise margin. Limits are
     * calibrated ~1.5-2x above the worst fanout the shipped FlexiCore
     * netlists actually present, per drive strength (X2 > X1).
     */
    unsigned maxFanout;
};

/**
 * Fanout limit for nets driven by primary-input pads (the external
 * pattern instrument drives them far harder than any library cell).
 */
constexpr unsigned kPadMaxFanout = 32;

/** Look up the attribute record for a cell type. */
const CellInfo &cellInfo(CellType type);

/** Look up a cell by its library name (e.g. "NAND2"); fatal if bad. */
CellType cellTypeByName(const std::string &name);

/** True for the sequential cells (DFF variants). */
bool isSequential(CellType type);

/** The full library, in CellType order. */
const std::array<CellInfo, kNumCellTypes> &cellLibrary();

} // namespace flexi

#endif // FLEXI_TECH_CELL_LIBRARY_HH
