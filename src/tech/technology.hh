/**
 * @file
 * 0.8 um IGZO technology parameters, delay and power models.
 *
 * Calibration anchors (all from the paper):
 *  - TFT characteristics: Vth mean 1.29 V, sigma 0.19 V (Figure 1).
 *  - Both FlexiCores run at f_max = 12.5 kHz (Table 4).
 *  - >99 % of power is static (Section 3.1); power therefore scales
 *    with area/device count, not with activity.
 *  - FlexiCore4 draws 1.1 mA at 4.5 V and 0.73 mA at 3 V (Section 4.2)
 *    => static current scales roughly linearly with supply voltage.
 *  - A process refinement between the FC4 and FC8 wafers raised the
 *    pull-up resistance by 50 %, cutting current by 1/3 (Table 4).
 */

#ifndef FLEXI_TECH_TECHNOLOGY_HH
#define FLEXI_TECH_TECHNOLOGY_HH

#include <cstddef>

#include "tech/cell_library.hh"

namespace flexi
{

/** Supply-voltage operating points used for wafer test. */
constexpr double kVddNominal = 4.5;
constexpr double kVddLow = 3.0;

/** Tested clock rate (limited by the IO ring drive, Section 4.1). */
constexpr double kClockHz = 12500.0;

/** Mean and sigma of TFT threshold voltage (Figure 1). */
constexpr double kVthMean = 1.29;
constexpr double kVthSigma = 0.19;

/**
 * Area of one NAND2-equivalent in mm^2, calibrated so that the
 * structural FlexiCore4 netlist (570 NAND2-eq in this library's
 * accounting) lands on the fabricated core's 5.56 mm^2. (The paper
 * quotes 801 NAND2-eq under its own library's accounting.)
 */
constexpr double kMm2PerNand2 = 5.56 / 570.0;

/**
 * Technology model: converts netlist-level quantities (cell mix,
 * critical-path delay units, device counts) into physical area,
 * delay, current and energy.
 */
class Technology
{
  public:
    /**
     * @param pull_up_refined true for wafers manufactured after the
     *        pull-up-resistance refinement (+50 % R, 2/3 current),
     *        i.e. the FlexiCore8 and FlexiCore4+ wafers.
     */
    explicit Technology(bool pull_up_refined = false);

    bool pullUpRefined() const { return refined_; }

    /** Physical area for a total NAND2-equivalent count. */
    double areaMm2(double nand2_equiv) const;

    /**
     * Unit gate delay in seconds at supply @p vdd for a die whose
     * mean threshold voltage is @p vth. Modeled as
     * tau = K / (vdd - vth)^alpha; K and alpha are calibrated so the
     * FlexiCore4 critical path meets 12.5 kHz with margin at 4.5 V
     * and marginally at 3 V (Section 4.1's observed yield drop).
     */
    double unitDelay(double vdd, double vth = kVthMean) const;

    /**
     * Static current in amps at supply @p vdd for a cell mix whose
     * summed reference currents are @p ref_current_ua (the per-cell
     * staticCurrentUa values are quoted at 4.5 V, pre-refinement).
     */
    double staticCurrent(double ref_current_ua, double vdd) const;

    /** Static power in watts. */
    double staticPower(double ref_current_ua, double vdd) const;

    /**
     * Energy in joules to run @p cycles cycles at @p clock_hz given a
     * static power @p power_w. Since >99 % of power is static this is
     * simply power x time.
     */
    static double energy(double power_w, double cycles, double clock_hz);

  private:
    bool refined_;
};

} // namespace flexi

#endif // FLEXI_TECH_TECHNOLOGY_HH
