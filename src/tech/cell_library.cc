#include "cell_library.hh"

#include "common/logging.hh"

namespace flexi
{

namespace
{

// Device counts assume n-type logic with resistive pull-up: an
// m-input NAND is m series TFTs + 1 pull-up; XOR/XNOR are compound
// gates; the DFF is a master-slave pair of clocked latches. Static
// current is proportional to the number of pull-up resistors that
// conduct on average; areas are calibrated so that the structural
// FlexiCore4 netlist lands near the paper's 801 NAND2 equivalents.
const std::array<CellInfo, kNumCellTypes> lib = {{
    // type               name      in dev  area  uA    delay fan
    {CellType::INV_X1,   "INV_X1",  1,  2,  0.75, 1.6,  1.0,  24},
    {CellType::INV_X2,   "INV_X2",  1,  3,  1.00, 2.4,  0.8,  32},
    {CellType::BUF_X1,   "BUF_X1",  1,  4,  1.25, 3.2,  1.6,  16},
    {CellType::BUF_X2,   "BUF_X2",  1,  5,  1.50, 4.0,  1.3,  32},
    {CellType::NAND2,    "NAND2",   2,  3,  1.00, 1.6,  1.2,   8},
    {CellType::NAND3,    "NAND3",   3,  4,  1.40, 1.6,  1.5,   8},
    {CellType::NOR2,     "NOR2",    2,  3,  1.00, 1.6,  1.2,   8},
    {CellType::NOR3,     "NOR3",    3,  4,  1.40, 1.6,  1.5,   8},
    {CellType::XOR2,     "XOR2",    2,  9,  2.50, 4.8,  2.4,   8},
    {CellType::XNOR2,    "XNOR2",   2,  9,  2.50, 4.8,  2.4,   8},
    {CellType::MUX2,     "MUX2",    3,  7,  2.00, 3.2,  1.8,  12},
    {CellType::DFF_X1,   "DFF_X1",  2, 24,  7.00, 13.0, 2.8,  24},
    {CellType::DFF_X2,   "DFF_X2",  2, 26,  7.50, 14.5, 2.4,  32},
}};

} // namespace

const CellInfo &
cellInfo(CellType type)
{
    auto idx = static_cast<size_t>(type);
    if (idx >= kNumCellTypes)
        panic("cellInfo: bad cell type %zu", idx);
    return lib[idx];
}

CellType
cellTypeByName(const std::string &name)
{
    for (const auto &info : lib)
        if (name == info.name)
            return info.type;
    fatal("unknown standard cell '%s'", name.c_str());
}

bool
isSequential(CellType type)
{
    return type == CellType::DFF_X1 || type == CellType::DFF_X2;
}

const std::array<CellInfo, kNumCellTypes> &
cellLibrary()
{
    return lib;
}

} // namespace flexi
