/**
 * @file
 * FlexiCore4 instruction encoding (Figure 2a of the paper).
 */

#include <cstdint>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

namespace
{

uint8_t
aluOpField(Op op)
{
    switch (op) {
      case Op::Add: return 0;
      case Op::Nand: return 1;
      case Op::Xor: return 2;
      default:
        panic("FlexiCore4: %s is not an ALU op", opName(op));
    }
}

} // namespace

uint8_t
encodeFc4(const Instruction &inst)
{
    switch (inst.op) {
      case Op::Br:
        if (inst.target >= kPageSize)
            fatal("br target %u out of 7-bit range", inst.target);
        return 0x80 | inst.target;
      case Op::Add:
      case Op::Nand:
      case Op::Xor:
        if (inst.mode == Mode::Imm) {
            if (inst.operand > 0xF)
                fatal("immediate %u out of 4-bit range", inst.operand);
            return 0x40 | (aluOpField(inst.op) << 4) | inst.operand;
        }
        if (inst.operand > 7)
            fatal("memory address %u out of range", inst.operand);
        return (aluOpField(inst.op) << 4) | inst.operand;
      case Op::Load:
        if (inst.operand > 7)
            fatal("load address %u out of range", inst.operand);
        return 0x30 | inst.operand;
      case Op::Store:
        if (inst.operand > 7)
            fatal("store address %u out of range", inst.operand);
        return 0x38 | inst.operand;
      default:
        fatal("FlexiCore4 does not support '%s'", opName(inst.op));
    }
}

DecodeResult
decodeFc4(uint8_t byte)
{
    // The decode is *total*: the hardware has no illegal-instruction
    // trap, so every byte does something. Bits 5:4 drive the ALU
    // output mux (00 add, 01 nand, 10 xor, 11 pass-operand), bit 6
    // the operand mux, and the data-memory write-enable fires only on
    // the exact store pattern (Section 3.3). This gives the reserved
    // encodings well-defined side effects: 01 11 imm4 passes the
    // immediate straight to ACC (decoded as the unofficial `li`
    // alias), and M-form encodings with bit 3 set behave as if bit 3
    // were clear (it is ignored by the operand path).
    Instruction inst;
    inst.sizeBits = 8;

    if (bit(byte, 7)) {
        inst.op = Op::Br;
        inst.cond = kCondN;
        inst.target = byte & 0x7F;
        return {inst, 1};
    }

    unsigned op = bits(byte, 5, 4);
    if (bit(byte, 6)) {
        inst.mode = Mode::Imm;
        inst.operand = byte & 0x0F;
        inst.op = op == 0 ? Op::Add : op == 1 ? Op::Nand
                : op == 2 ? Op::Xor : Op::Li;
        return {inst, 1};
    }

    if (op == 3) {
        inst.op = bit(byte, 3) ? Op::Store : Op::Load;
        inst.mode = Mode::Mem;
        inst.operand = byte & 0x07;
        return {inst, 1};
    }

    inst.op = op == 0 ? Op::Add : op == 1 ? Op::Nand : Op::Xor;
    inst.mode = Mode::Mem;
    inst.operand = byte & 0x07;
    return {inst, 1};
}

} // namespace flexi
