/**
 * @file
 * Instruction-set definitions for all four FlexiCore-family ISAs.
 *
 * The paper defines two fabricated ISAs and two DSE ISAs:
 *
 *  - FlexiCore4 (Figure 2a): 4-bit accumulator machine, 9 instructions,
 *    fixed 8-bit encoding, 7-bit PC, 8 x 4-bit data memory with the
 *    input / output ports memory-mapped at addresses 0 / 1.
 *  - FlexiCore8 (Figure 2b): 8-bit datapath, 4 x 8-bit memory, plus a
 *    two-byte LOAD BYTE instruction (prefix 0b00001000).
 *  - ExtAcc4 (Section 6.1 "revised" op set): accumulator machine with
 *    Add(i), Adc(i), Sub, Swb, And(i), Or(i), Xor(i), Neg, Xch, Load,
 *    Store, Branch-nzp, Call, Ret, Asr(i), Lsr(i). The paper gives no
 *    binary encoding; ours keeps 8-bit instructions with two-byte
 *    branch/call (DESIGN.md Section 3).
 *  - LoadStore4 (Section 6.2): two-address load-store machine over the
 *    same 8-word memory (dual-ported), fixed 16-bit encoding.
 */

#ifndef FLEXI_ISA_ISA_HH
#define FLEXI_ISA_ISA_HH

#include <cstdint>
#include <string>

namespace flexi
{

/** The four instruction-set architectures. */
enum class IsaKind : uint8_t
{
    FlexiCore4,
    FlexiCore8,
    ExtAcc4,
    LoadStore4,
};

/** Human-readable ISA name. */
const char *isaName(IsaKind isa);

/** Datapath width in bits (4 or 8). */
unsigned isaDataWidth(IsaKind isa);

/** Number of data-memory words (incl. the two IO-mapped addresses). */
unsigned isaMemWords(IsaKind isa);

/** Program-counter width in bits (always 7: 128-entry pages). */
constexpr unsigned kPcBits = 7;
constexpr unsigned kPageSize = 1u << kPcBits;

/** Memory-mapped IO addresses (Section 3.3). */
constexpr unsigned kInputPortAddr = 0;
constexpr unsigned kOutputPortAddr = 1;

/** Unified operation enumeration across all four ISAs. */
enum class Op : uint8_t
{
    // Base FlexiCore operations.
    Add,        ///< ACC += operand
    Nand,       ///< ACC = ~(ACC & operand)
    Xor,        ///< ACC ^= operand
    Load,       ///< ACC = MEM[addr]
    Store,      ///< MEM[addr] = ACC
    Br,         ///< branch if ACC MSB set (base) / nzp mask (ext/ls)
    Ldb,        ///< FlexiCore8 only: load next program byte into ACC
    // Extended (DSE) operations.
    Adc,        ///< add with carry
    Sub,        ///< subtract
    Swb,        ///< subtract with borrow
    And,        ///< conjunction
    Or,         ///< disjunction
    Neg,        ///< two's-complement negate
    Xch,        ///< exchange ACC with MEM[addr]
    Li,         ///< load small immediate (our addition, DESIGN.md 3)
    Asr,        ///< arithmetic shift right
    Lsr,        ///< logical shift right
    Call,       ///< save PC+size to return register, jump
    Ret,        ///< jump to return register
    // Load-store only.
    Mov,        ///< rd = src
    Invalid,    ///< reserved/undefined encoding
};

/** Mnemonic for an operation. */
const char *opName(Op op);

/** Operand addressing mode. */
enum class Mode : uint8_t
{
    None,   ///< no operand (Ret, Neg on acc, ...)
    Mem,    ///< data-memory operand (register operand on LoadStore4)
    Imm,    ///< immediate operand
};

/** Branch condition mask bits (LC-3 style nzp). */
constexpr uint8_t kCondN = 0b100;
constexpr uint8_t kCondZ = 0b010;
constexpr uint8_t kCondP = 0b001;
constexpr uint8_t kCondAlways = 0b111;

/**
 * A decoded instruction, ISA-independent. Fields not used by a
 * particular (op, mode) pair are zero.
 */
struct Instruction
{
    Op op = Op::Invalid;
    Mode mode = Mode::None;
    /** Destination register (LoadStore4 only). */
    uint8_t rd = 0;
    /** Memory address / source register / raw immediate bits. */
    uint8_t operand = 0;
    /** Branch or call target (7-bit, page-relative). */
    uint8_t target = 0;
    /** nzp condition mask for Br (base ISAs always use kCondN). */
    uint8_t cond = 0;
    /** Encoded size in bits (8 or 16). */
    uint8_t sizeBits = 8;

    bool operator==(const Instruction &other) const = default;

    bool valid() const { return op != Op::Invalid; }
    unsigned sizeBytes() const { return sizeBits / 8; }
};

/**
 * Result of decoding at a program-memory location: the instruction
 * plus the number of bytes it occupies (2 for FlexiCore8 ldb,
 * ExtAcc4 br/call, and everything on LoadStore4).
 */
struct DecodeResult
{
    Instruction inst;
    unsigned bytes = 1;
};

} // namespace flexi

#endif // FLEXI_ISA_ISA_HH
