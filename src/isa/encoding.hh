/**
 * @file
 * Binary instruction encoders / decoders for the four ISAs.
 *
 * Encodings for FlexiCore4 / FlexiCore8 follow Figure 2 of the paper
 * exactly; the ExtAcc4 and LoadStore4 encodings are ours (the paper
 * specifies the op set but not the bit layout) and are documented in
 * DESIGN.md Section 3 and in the comments below.
 */

#ifndef FLEXI_ISA_ENCODING_HH
#define FLEXI_ISA_ENCODING_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace flexi
{

/**
 * @name FlexiCore4 (Figure 2a)
 * @{
 *   1ttttttt             br t       (taken iff ACC[3])
 *   01 op imm4           addi/nandi/xori   (op 00/01/10)
 *   00 op 0 src3         add/nand/xor      (op 00/01/10)
 *   00 11 0 addr3        load
 *   00 11 1 addr3        store
 * The op field (bits 5:4) is wired straight to the ALU output mux and
 * bit 6 to the operand mux, so 01 11 xxxx (I-form op=11) is reserved.
 * @}
 */
uint8_t encodeFc4(const Instruction &inst);
DecodeResult decodeFc4(uint8_t byte);

/**
 * @name FlexiCore8 (Figure 2b)
 * Same layout with a 2-bit src (4 words) and bits 3:2 = 00 in M/T
 * forms; I-form immediates are sign-extended at execution. The byte
 * 0b00001000 is the LOAD BYTE prefix; the following program byte is
 * the 8-bit immediate (a two-byte, two-cycle instruction).
 */
std::vector<uint8_t> encodeFc8(const Instruction &inst);
DecodeResult decodeFc8(uint8_t b0, uint8_t b1);

/**
 * @name ExtAcc4 (DSE accumulator ISA, our encoding)
 * @{
 *   00 ooo aaa    M-form: add adc sub swb and or xor xch   MEM[aaa]
 *   01 ooo iii    I-form: addi adci andi ori xori asri lsri li
 *   10 sss aaa    T-form: load store neg ret asr lsr (sss 0-5)
 *   110 nzp 00 , 0ttttttt   br.nzp t   (two bytes)
 *   11100000   , 0ttttttt   call t     (two bytes)
 * @}
 */
std::vector<uint8_t> encodeExt(const Instruction &inst);
DecodeResult decodeExt(uint8_t b0, uint8_t b1);

/**
 * @name LoadStore4 (DSE load-store ISA, our encoding, 16-bit)
 * @{
 *   [15:11] op5  [10:8] rd  [7:5] rs  [4:1] imm4
 *   Br:   op5=19, [10:8]=nzp, [6:0]=target
 *   Call: op5=20, [6:0]=target;  Ret: op5=21
 * @}
 */
uint16_t encodeLs(const Instruction &inst);
DecodeResult decodeLs(uint16_t word);

/** Encode for any ISA; result is 1 or 2 bytes (LS: little-endian). */
std::vector<uint8_t> encode(IsaKind isa, const Instruction &inst);

/**
 * Decode the instruction at byte offset @p pc of @p mem (for
 * LoadStore4, @p pc is a 16-bit word index). Out-of-range second
 * bytes read as zero, matching a floating bus.
 */
DecodeResult decodeAt(IsaKind isa, const std::vector<uint8_t> &mem,
                      unsigned pc);

} // namespace flexi

#endif // FLEXI_ISA_ENCODING_HH
