/**
 * @file
 * Textual disassembly of decoded instructions.
 */

#ifndef FLEXI_ISA_DISASSEMBLER_HH
#define FLEXI_ISA_DISASSEMBLER_HH

#include <string>
#include <vector>

#include "isa/isa.hh"

namespace flexi
{

/**
 * Render one instruction in the assembly syntax accepted by the
 * assembler (so disassemble -> reassemble round-trips).
 */
std::string disassemble(IsaKind isa, const Instruction &inst);

/**
 * Disassemble a whole program image, one line per instruction,
 * prefixed with the page-relative address.
 */
std::string disassembleImage(IsaKind isa,
                             const std::vector<uint8_t> &image);

} // namespace flexi

#endif // FLEXI_ISA_DISASSEMBLER_HH
