#include "isa.hh"

#include "common/logging.hh"

namespace flexi
{

const char *
isaName(IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4: return "FlexiCore4";
      case IsaKind::FlexiCore8: return "FlexiCore8";
      case IsaKind::ExtAcc4: return "ExtAcc4";
      case IsaKind::LoadStore4: return "LoadStore4";
    }
    panic("isaName: bad IsaKind");
}

unsigned
isaDataWidth(IsaKind isa)
{
    return isa == IsaKind::FlexiCore8 ? 8 : 4;
}

unsigned
isaMemWords(IsaKind isa)
{
    return isa == IsaKind::FlexiCore8 ? 4 : 8;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Add: return "add";
      case Op::Nand: return "nand";
      case Op::Xor: return "xor";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::Br: return "br";
      case Op::Ldb: return "ldb";
      case Op::Adc: return "adc";
      case Op::Sub: return "sub";
      case Op::Swb: return "swb";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Neg: return "neg";
      case Op::Xch: return "xch";
      case Op::Li: return "li";
      case Op::Asr: return "asr";
      case Op::Lsr: return "lsr";
      case Op::Call: return "call";
      case Op::Ret: return "ret";
      case Op::Mov: return "mov";
      case Op::Invalid: return "<invalid>";
    }
    panic("opName: bad Op");
}

} // namespace flexi
