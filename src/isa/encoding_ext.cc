/**
 * @file
 * ExtAcc4 (DSE accumulator) instruction encoding.
 *
 * The paper's Section 6.1 fixes the op set but not the binary layout;
 * this layout keeps single-byte instructions for everything except
 * branch and call (which carry a target byte), preserving the
 * "single-operand instructions require fewer IOs to fetch" property
 * that makes the accumulator cores preferable under an 8-bit program
 * bus (Section 6.3).
 */

#include <cstdint>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

namespace
{

constexpr Op kMOps[8] = {Op::Add, Op::Adc, Op::Sub, Op::Swb,
                         Op::And, Op::Or, Op::Xor, Op::Xch};
constexpr Op kIOps[8] = {Op::Add, Op::Adc, Op::And, Op::Or,
                         Op::Xor, Op::Asr, Op::Lsr, Op::Li};
constexpr Op kTOps[8] = {Op::Load, Op::Store, Op::Neg, Op::Ret,
                         Op::Asr, Op::Lsr, Op::Invalid, Op::Invalid};

int
findOp(const Op *table, Op op)
{
    for (int i = 0; i < 8; ++i)
        if (table[i] == op)
            return i;
    return -1;
}

} // namespace

std::vector<uint8_t>
encodeExt(const Instruction &inst)
{
    switch (inst.op) {
      case Op::Br: {
        uint8_t nzp = inst.cond ? inst.cond : kCondN;
        if (inst.target >= kPageSize)
            fatal("br target %u out of 7-bit range", inst.target);
        return {static_cast<uint8_t>(0xC0 | (nzp << 2)), inst.target};
      }
      case Op::Call:
        if (inst.target >= kPageSize)
            fatal("call target %u out of 7-bit range", inst.target);
        return {0xE0, inst.target};
      case Op::Ret:
        return {static_cast<uint8_t>(0x80 | (3 << 3))};
      case Op::Neg:
        return {static_cast<uint8_t>(0x80 | (2 << 3))};
      case Op::Load:
      case Op::Store: {
        if (inst.operand > 7)
            fatal("address %u out of range", inst.operand);
        uint8_t sss = inst.op == Op::Load ? 0 : 1;
        return {static_cast<uint8_t>(0x80 | (sss << 3) | inst.operand)};
      }
      default:
        break;
    }

    if (inst.mode == Mode::Imm) {
        int idx = findOp(kIOps, inst.op);
        if (idx < 0)
            fatal("ExtAcc4: no immediate form of '%s'",
                  opName(inst.op));
        if (inst.operand > 7)
            fatal("immediate %u out of 3-bit range (0..7)",
                  inst.operand);
        return {static_cast<uint8_t>(
            0x40 | (static_cast<uint8_t>(idx) << 3) | inst.operand)};
    }

    if (inst.op == Op::Asr || inst.op == Op::Lsr) {
        // Register (shift-by-one) form lives in the T group.
        uint8_t sss = inst.op == Op::Asr ? 4 : 5;
        return {static_cast<uint8_t>(0x80 | (sss << 3))};
    }

    int idx = findOp(kMOps, inst.op);
    if (idx < 0)
        fatal("ExtAcc4 does not support '%s'", opName(inst.op));
    if (inst.operand > 7)
        fatal("memory address %u out of range", inst.operand);
    return {static_cast<uint8_t>(
        (static_cast<uint8_t>(idx) << 3) | inst.operand)};
}

DecodeResult
decodeExt(uint8_t b0, uint8_t b1)
{
    Instruction inst;
    inst.sizeBits = 8;

    switch (bits(b0, 7, 6)) {
      case 0: {   // M-form
        inst.op = kMOps[bits(b0, 5, 3)];
        inst.mode = Mode::Mem;
        inst.operand = b0 & 0x07;
        return {inst, 1};
      }
      case 1: {   // I-form
        inst.op = kIOps[bits(b0, 5, 3)];
        inst.mode = Mode::Imm;
        inst.operand = b0 & 0x07;
        return {inst, 1};
      }
      case 2: {   // T-form
        // Hardware-faithful: the address field is a don't-care for
        // the operand-less ops (neg/ret/asr/lsr) and sss 6/7 assert
        // no write enables (an architected no-op).
        unsigned sss = bits(b0, 5, 3);
        Op op = kTOps[sss];
        if (op == Op::Invalid)
            return {inst, 1};
        inst.op = op;
        if (op == Op::Load || op == Op::Store) {
            inst.mode = Mode::Mem;
            inst.operand = b0 & 0x07;
        }
        return {inst, 1};
      }
      default: {  // branch / call group (bits 1:0 / 4:0 don't-care)
        if (!bit(b0, 5)) {
            inst.op = Op::Br;
            inst.cond = bits(b0, 4, 2);
        } else {
            inst.op = Op::Call;
        }
        inst.target = b1 & 0x7F;   // bit 7 ignored by the 7-bit PC
        inst.sizeBits = 16;
        return {inst, 2};
      }
    }
}

} // namespace flexi
