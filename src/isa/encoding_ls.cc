/**
 * @file
 * LoadStore4 (DSE load-store) instruction encoding, 16-bit.
 *
 * Two-address machine over the 8-word data memory / register file:
 * rd <- rd op (rs | imm4). Our layout (DESIGN.md Section 3):
 * [15:11] op5, [10:8] rd, [7:5] rs, [4:1] imm4.
 */

#include <cstdint>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

namespace
{

enum LsOp5 : uint16_t
{
    LS_ADD = 0, LS_ADC, LS_SUB, LS_SWB, LS_AND, LS_OR, LS_XOR,
    LS_MOV, LS_NEG, LS_ASR, LS_LSR,
    LS_ADDI, LS_ADCI, LS_ANDI, LS_ORI, LS_XORI, LS_MOVI,
    LS_ASRI, LS_LSRI,
    LS_BR, LS_CALL, LS_RET,
    LS_COUNT,
};

struct OpMap { Op op; Mode mode; LsOp5 op5; };

constexpr OpMap kMap[] = {
    {Op::Add, Mode::Mem, LS_ADD},  {Op::Add, Mode::Imm, LS_ADDI},
    {Op::Adc, Mode::Mem, LS_ADC},  {Op::Adc, Mode::Imm, LS_ADCI},
    {Op::Sub, Mode::Mem, LS_SUB},
    {Op::Swb, Mode::Mem, LS_SWB},
    {Op::And, Mode::Mem, LS_AND},  {Op::And, Mode::Imm, LS_ANDI},
    {Op::Or, Mode::Mem, LS_OR},    {Op::Or, Mode::Imm, LS_ORI},
    {Op::Xor, Mode::Mem, LS_XOR},  {Op::Xor, Mode::Imm, LS_XORI},
    {Op::Mov, Mode::Mem, LS_MOV},  {Op::Mov, Mode::Imm, LS_MOVI},
    {Op::Neg, Mode::None, LS_NEG},
    {Op::Asr, Mode::Mem, LS_ASR},  {Op::Asr, Mode::Imm, LS_ASRI},
    {Op::Lsr, Mode::Mem, LS_LSR},  {Op::Lsr, Mode::Imm, LS_LSRI},
};

} // namespace

uint16_t
encodeLs(const Instruction &inst)
{
    auto pack = [](uint16_t op5, uint16_t rd, uint16_t rs,
                   uint16_t imm) -> uint16_t {
        return static_cast<uint16_t>(
            (op5 << 11) | (rd << 8) | (rs << 5) | (imm << 1));
    };

    switch (inst.op) {
      case Op::Br: {
        uint16_t nzp = inst.cond ? inst.cond : kCondN;
        if (inst.target >= kPageSize)
            fatal("br target %u out of range", inst.target);
        return static_cast<uint16_t>(
            (LS_BR << 11) | (nzp << 8) | inst.target);
      }
      case Op::Call:
        if (inst.target >= kPageSize)
            fatal("call target %u out of range", inst.target);
        return static_cast<uint16_t>((LS_CALL << 11) | inst.target);
      case Op::Ret:
        return static_cast<uint16_t>(LS_RET << 11);
      default:
        break;
    }

    if (inst.rd > 7)
        fatal("register r%u out of range", inst.rd);
    for (const auto &m : kMap) {
        if (m.op != inst.op || m.mode != inst.mode)
            continue;
        if (inst.mode == Mode::Imm) {
            if (inst.operand > 0xF)
                fatal("immediate %u out of 4-bit range", inst.operand);
            return pack(m.op5, inst.rd, 0, inst.operand);
        }
        if (inst.mode == Mode::Mem && inst.operand > 7)
            fatal("register r%u out of range", inst.operand);
        return pack(m.op5, inst.rd, inst.operand, 0);
    }
    fatal("LoadStore4 does not support '%s' (mode %d)",
          opName(inst.op), static_cast<int>(inst.mode));
}

DecodeResult
decodeLs(uint16_t word)
{
    Instruction inst;
    inst.sizeBits = 16;
    unsigned op5 = bits(word, 15, 11);

    if (op5 == LS_BR) {
        inst.op = Op::Br;
        inst.cond = bits(word, 10, 8);
        inst.target = word & 0x7F;
        return {inst, 2};
    }
    if (op5 == LS_CALL) {
        inst.op = Op::Call;
        inst.target = word & 0x7F;
        return {inst, 2};
    }
    if (op5 == LS_RET) {
        inst.op = Op::Ret;
        return {inst, 2};
    }

    for (const auto &m : kMap) {
        if (m.op5 != static_cast<LsOp5>(op5))
            continue;
        inst.op = m.op;
        inst.mode = m.mode;
        inst.rd = bits(word, 10, 8);
        inst.operand = m.mode == Mode::Imm ? bits(word, 4, 1)
                                           : bits(word, 7, 5);
        return {inst, 2};
    }
    return {inst, 2};   // reserved op5 -> Invalid
}

} // namespace flexi
