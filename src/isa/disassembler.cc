#include "disassembler.hh"

#include <sstream>

#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

namespace
{

std::string
condSuffix(uint8_t cond)
{
    if (cond == kCondN || cond == 0)
        return "";      // base-ISA branch: plain "br"
    std::string s = ".";
    if (cond & kCondN)
        s += 'n';
    if (cond & kCondZ)
        s += 'z';
    if (cond & kCondP)
        s += 'p';
    return s;
}

} // namespace

std::string
disassemble(IsaKind isa, const Instruction &inst)
{
    std::ostringstream out;
    if (!inst.valid())
        return "<invalid>";

    bool load_store = isa == IsaKind::LoadStore4;

    switch (inst.op) {
      case Op::Br:
        out << "br" << condSuffix(inst.cond) << " "
            << unsigned{inst.target};
        return out.str();
      case Op::Call:
        out << "call " << unsigned{inst.target};
        return out.str();
      case Op::Ret:
        return "ret";
      case Op::Ldb:
        out << "ldb " << unsigned{inst.operand};
        return out.str();
      default:
        break;
    }

    out << opName(inst.op);
    if (inst.mode == Mode::Imm)
        out << "i";
    if (load_store) {
        out << " r" << unsigned{inst.rd};
        if (inst.mode == Mode::Mem)
            out << ", r" << unsigned{inst.operand};
        else if (inst.mode == Mode::Imm)
            out << ", " << unsigned{inst.operand};
        return out.str();
    }
    if (inst.mode == Mode::Mem)
        out << " r" << unsigned{inst.operand};
    else if (inst.mode == Mode::Imm)
        out << " " << unsigned{inst.operand};
    return out.str();
}

std::string
disassembleImage(IsaKind isa, const std::vector<uint8_t> &image)
{
    std::ostringstream out;
    unsigned step_words = isa == IsaKind::LoadStore4 ? 2 : 1;
    unsigned n = static_cast<unsigned>(image.size()) / step_words;
    unsigned pc = 0;
    while (pc < n) {
        DecodeResult dec = decodeAt(isa, image, pc);
        out << pc << ": " << disassemble(isa, dec.inst) << '\n';
        pc += isa == IsaKind::LoadStore4 ? 1 : dec.bytes;
    }
    return out.str();
}

} // namespace flexi
