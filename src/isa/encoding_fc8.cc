/**
 * @file
 * FlexiCore8 instruction encoding (Figure 2b of the paper).
 */

#include <cstdint>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"

namespace flexi
{

namespace
{

/** The LOAD BYTE prefix byte, 0b00001000 (Figure 2b). */
constexpr uint8_t kLdbPrefix = 0x08;

uint8_t
aluOpField(Op op)
{
    switch (op) {
      case Op::Add: return 0;
      case Op::Nand: return 1;
      case Op::Xor: return 2;
      default:
        panic("FlexiCore8: %s is not an ALU op", opName(op));
    }
}

} // namespace

std::vector<uint8_t>
encodeFc8(const Instruction &inst)
{
    switch (inst.op) {
      case Op::Br:
        if (inst.target >= kPageSize)
            fatal("br target %u out of 7-bit range", inst.target);
        return {static_cast<uint8_t>(0x80 | inst.target)};
      case Op::Ldb:
        return {kLdbPrefix, inst.operand};
      case Op::Add:
      case Op::Nand:
      case Op::Xor:
        if (inst.mode == Mode::Imm) {
            if (inst.operand > 0xF)
                fatal("immediate %u out of 4-bit range", inst.operand);
            return {static_cast<uint8_t>(
                0x40 | (aluOpField(inst.op) << 4) | inst.operand)};
        }
        if (inst.operand > 3)
            fatal("memory address %u out of range (4 words)",
                  inst.operand);
        return {static_cast<uint8_t>(
            (aluOpField(inst.op) << 4) | inst.operand)};
      case Op::Load:
        if (inst.operand > 3)
            fatal("load address %u out of range", inst.operand);
        return {static_cast<uint8_t>(0x30 | inst.operand)};
      case Op::Store:
        if (inst.operand > 3)
            fatal("store address %u out of range", inst.operand);
        return {static_cast<uint8_t>(0x38 | inst.operand)};
      default:
        fatal("FlexiCore8 does not support '%s'", opName(inst.op));
    }
}

DecodeResult
decodeFc8(uint8_t b0, uint8_t b1)
{
    Instruction inst;
    inst.sizeBits = 8;

    if (bit(b0, 7)) {
        inst.op = Op::Br;
        inst.cond = kCondN;
        inst.target = b0 & 0x7F;
        return {inst, 1};
    }

    if (b0 == kLdbPrefix) {
        inst.op = Op::Ldb;
        inst.mode = Mode::Imm;
        inst.operand = b1;
        inst.sizeBits = 16;
        return {inst, 2};
    }

    // As with FlexiCore4 the decode is total: bits 5:4 drive the ALU
    // output mux, bit 6 the operand mux, bits 3:2 are ignored by the
    // datapath (except for the exact LOAD BYTE prefix above), and
    // 01 11 imm4 passes the sign-extended immediate to ACC (`li`).
    unsigned op = bits(b0, 5, 4);
    if (bit(b0, 6)) {
        inst.mode = Mode::Imm;
        inst.operand = b0 & 0x0F;
        inst.op = op == 0 ? Op::Add : op == 1 ? Op::Nand
                : op == 2 ? Op::Xor : Op::Li;
        return {inst, 1};
    }

    if (op == 3) {
        inst.op = bit(b0, 3) ? Op::Store : Op::Load;
        inst.mode = Mode::Mem;
        inst.operand = b0 & 0x03;
        return {inst, 1};
    }

    inst.op = op == 0 ? Op::Add : op == 1 ? Op::Nand : Op::Xor;
    inst.mode = Mode::Mem;
    inst.operand = b0 & 0x03;
    return {inst, 1};
}

} // namespace flexi
