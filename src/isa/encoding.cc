/**
 * @file
 * ISA-dispatching encode/decode entry points.
 */

#include "encoding.hh"

#include "common/logging.hh"

namespace flexi
{

std::vector<uint8_t>
encode(IsaKind isa, const Instruction &inst)
{
    switch (isa) {
      case IsaKind::FlexiCore4:
        return {encodeFc4(inst)};
      case IsaKind::FlexiCore8:
        return encodeFc8(inst);
      case IsaKind::ExtAcc4:
        return encodeExt(inst);
      case IsaKind::LoadStore4: {
        uint16_t w = encodeLs(inst);
        return {static_cast<uint8_t>(w & 0xFF),
                static_cast<uint8_t>(w >> 8)};
      }
    }
    panic("encode: bad IsaKind");
}

DecodeResult
decodeAt(IsaKind isa, const std::vector<uint8_t> &mem, unsigned pc)
{
    auto byteAt = [&](size_t idx) -> uint8_t {
        return idx < mem.size() ? mem[idx] : 0;
    };

    switch (isa) {
      case IsaKind::FlexiCore4:
        return decodeFc4(byteAt(pc));
      case IsaKind::FlexiCore8:
        return decodeFc8(byteAt(pc), byteAt(pc + 1));
      case IsaKind::ExtAcc4:
        return decodeExt(byteAt(pc), byteAt(pc + 1));
      case IsaKind::LoadStore4: {
        size_t base = static_cast<size_t>(pc) * 2;
        uint16_t w = static_cast<uint16_t>(
            byteAt(base) | (byteAt(base + 1) << 8));
        return decodeLs(w);
      }
    }
    panic("decodeAt: bad IsaKind");
}

} // namespace flexi
