#include "flexichip.hh"

#include <sstream>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "dse/area_model.hh"
#include "netlist/flexicore_netlist.hh"
#include "tech/technology.hh"

namespace flexi
{

FlexiChip::FlexiChip(IsaKind isa)
    : isa_(isa)
{
    if (isa != IsaKind::FlexiCore4 && isa != IsaKind::FlexiCore8)
        fatal("use the DesignPoint constructor for DSE cores");
    timing_ = {isa_, MicroArch::SingleCycle, BusWidth::Wide};
}

FlexiChip::FlexiChip(const DesignPoint &point)
    : isa_(point.isa()), point_(point)
{
    if (!point.feasible())
        fatal("design point %s is infeasible (Section 6.2)",
              point.name().c_str());
    timing_ = point.timing();
}

FlexiChip::~FlexiChip() = default;

void
FlexiChip::loadProgram(const std::string &asm_source)
{
    loadProgram(assemble(isa_, asm_source));
}

void
FlexiChip::loadProgram(Program program)
{
    if (program.isa() != isa_)
        fatal("program assembled for %s, chip is %s",
              isaName(program.isa()), isaName(isa_));
    program_ = std::move(program);
    paged_.reset();
    Environment *env = &io_;
    if (program_->numPages() > 1) {
        paged_ = std::make_unique<PagedEnvironment>(io_);
        env = paged_.get();
    }
    sim_ = std::make_unique<CoreSim>(timing_, *program_, *env);
}

void
FlexiChip::pushInput(uint8_t value)
{
    io_.pushInput(value);
}

void
FlexiChip::pushInputs(const std::vector<uint8_t> &values)
{
    io_.pushInputs(values);
}

const std::vector<uint8_t> &
FlexiChip::outputs() const
{
    return io_.outputs();
}

void
FlexiChip::clearOutputs()
{
    io_.clearOutputs();
}

void
FlexiChip::requireProgram() const
{
    if (!sim_)
        fatal("no program loaded");
}

StopReason
FlexiChip::run(uint64_t max_instructions)
{
    requireProgram();
    return sim_->run(max_instructions);
}

StopReason
FlexiChip::runUntilOutputs(size_t n, uint64_t max_instructions)
{
    requireProgram();
    return sim_->runUntilOutputs([&] { return io_.outputs().size(); },
                                 n, max_instructions);
}

void
FlexiChip::setTraceSink(TraceSink sink)
{
    requireProgram();
    sim_->setTraceSink(std::move(sink));
}

const SimStats &
FlexiChip::stats() const
{
    requireProgram();
    return sim_->stats();
}

bool
FlexiChip::halted() const
{
    return sim_ && sim_->halted();
}

double
FlexiChip::elapsedSeconds() const
{
    requireProgram();
    double clock = physical().fmaxHz;
    return static_cast<double>(sim_->stats().cycles) / clock;
}

double
FlexiChip::energyJoules() const
{
    return physical().staticPowerW * elapsedSeconds();
}

ChipPhysical
FlexiChip::physical() const
{
    ChipPhysical phys;
    Technology tech(isa_ == IsaKind::FlexiCore8);

    if (point_) {
        phys.nand2Area = areaOf(*point_).total();
        phys.devices = static_cast<unsigned>(phys.nand2Area * 3.4);
        phys.fmaxHz = fmaxOf(*point_);
        phys.staticPowerW = staticPowerOf(*point_);
    } else {
        auto nl = isa_ == IsaKind::FlexiCore4
            ? buildFlexiCore4Netlist() : buildFlexiCore8Netlist();
        phys.nand2Area = nl->totalNand2Area();
        phys.devices = nl->totalDevices();
        // The fabricated parts are IO-limited to 12.5 kHz
        // (Section 4.1), below the intrinsic critical path rate.
        phys.fmaxHz = kClockHz;
        phys.staticPowerW =
            tech.staticPower(nl->totalStaticCurrentUa(), kVddNominal);
    }
    phys.areaMm2 = tech.areaMm2(phys.nand2Area);
    phys.energyPerInstructionJ = phys.staticPowerW / phys.fmaxHz;
    return phys;
}

std::string
FlexiChip::physicalReport() const
{
    ChipPhysical phys = physical();
    std::ostringstream out;
    out << (point_ ? point_->name() : isaName(isa_)) << ":\n";
    out << strfmt("  area          %.2f mm^2 (%.0f NAND2-eq)\n",
                  phys.areaMm2, phys.nand2Area);
    out << strfmt("  devices       %u\n", phys.devices);
    out << strfmt("  clock         %.1f kHz\n", phys.fmaxHz / 1e3);
    out << strfmt("  static power  %.2f mW @ 4.5 V\n",
                  phys.staticPowerW * 1e3);
    out << strfmt("  energy/instr  %.0f nJ\n",
                  phys.energyPerInstructionJ * 1e9);
    return out.str();
}

} // namespace flexi
