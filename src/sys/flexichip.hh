/**
 * @file
 * FlexiChip: the top-level public API of the library.
 *
 * A FlexiChip bundles a core (fabricated FlexiCore4/8 or a DSE
 * configuration), its off-chip program memory and MMU pager, and the
 * IO buses, and exposes the physical model (area, power, f_max,
 * energy) alongside execution. This is the object a downstream user
 * builds first; see examples/quickstart.cc.
 *
 * @code
 *   FlexiChip chip(IsaKind::FlexiCore4);
 *   chip.loadProgram("loop: load r0\n addi 3\n store r1\n"
 *                    " nandi 0\n br loop\n");
 *   chip.pushInputs({1, 2, 3});
 *   chip.runUntilOutputs(3);
 *   // chip.outputs() == {4, 5, 6}
 * @endcode
 */

#ifndef FLEXI_SYS_FLEXICHIP_HH
#define FLEXI_SYS_FLEXICHIP_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "dse/design_point.hh"
#include "sim/core_sim.hh"
#include "sim/mmu.hh"

namespace flexi
{

/** Physical summary of a chip configuration. */
struct ChipPhysical
{
    double nand2Area = 0.0;
    double areaMm2 = 0.0;
    unsigned devices = 0;
    double fmaxHz = 0.0;
    double staticPowerW = 0.0;   ///< at the 4.5 V test point
    double energyPerInstructionJ = 0.0;
};

/** A complete FlexiCore system: core + program memory + MMU + IO. */
class FlexiChip
{
  public:
    /** A fabricated core (FlexiCore4 / FlexiCore8). */
    explicit FlexiChip(IsaKind isa);
    /** A DSE configuration (ExtAcc4 / LoadStore4). */
    explicit FlexiChip(const DesignPoint &point);
    ~FlexiChip();

    /** Assemble and load a program (replaces any previous one). */
    void loadProgram(const std::string &asm_source);
    /** Load an already-assembled program. */
    void loadProgram(Program program);

    /** @name IO buses */
    ///@{
    void pushInput(uint8_t value);
    void pushInputs(const std::vector<uint8_t> &values);
    const std::vector<uint8_t> &outputs() const;
    void clearOutputs();
    ///@}

    /** @name Execution */
    ///@{
    StopReason run(uint64_t max_instructions = 1000000);
    StopReason runUntilOutputs(size_t n,
                               uint64_t max_instructions = 1000000);
    const SimStats &stats() const;
    bool halted() const;
    /** Wall-clock runtime so far at the chip's clock. */
    double elapsedSeconds() const;
    /** Energy consumed so far (static-power dominated). */
    double energyJoules() const;
    ///@}

    /** Install an execution trace sink (after loadProgram). */
    void setTraceSink(TraceSink sink);

    /** Physical characteristics of this configuration. */
    ChipPhysical physical() const;

    /** Multi-line human-readable physical summary. */
    std::string physicalReport() const;

    IsaKind isa() const { return isa_; }

  private:
    void requireProgram() const;

    IsaKind isa_;
    std::optional<DesignPoint> point_;   ///< DSE configs only
    std::optional<Program> program_;
    FifoEnvironment io_;
    std::unique_ptr<PagedEnvironment> paged_;
    std::unique_ptr<CoreSim> sim_;
    TimingConfig timing_;
};

} // namespace flexi

#endif // FLEXI_SYS_FLEXICHIP_HH
