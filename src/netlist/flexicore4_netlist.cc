/**
 * @file
 * Structural FlexiCore4 (Figure 3 of the paper).
 *
 * The microarchitectural tricks the paper describes are implemented
 * literally:
 *  - instruction bits 5:4 wire straight to the ALU output mux and
 *    bit 6 to the operand mux (no decoder PLA);
 *  - the ripple-carry adder's propagate terms are the XOR function
 *    and its generate-NAND terms are the NAND function, for free;
 *  - the data memory is single-ported, with the input bus at word 0
 *    and the output latch at word 1;
 *  - there is no controller state at all (Section 3.3).
 */

#include "common/logging.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{

std::unique_ptr<Netlist>
buildFlexiCore4Netlist()
{
    auto nl = std::make_unique<Netlist>("FlexiCore4");
    Builder top(*nl, "core");
    Builder dec = top.scoped("dec");
    Builder alu = top.scoped("alu");
    Builder mem = top.scoped("mem");
    Builder pcb = top.scoped("pc");
    Builder accb = top.scoped("acc");

    constexpr unsigned W = 4;     // datapath width
    constexpr unsigned NWORDS = 8;

    // Primary inputs.
    Word instr;
    for (unsigned i = 0; i < 8; ++i)
        instr.push_back(nl->addInput("instr" + std::to_string(i)));
    Word iport;
    for (unsigned i = 0; i < W; ++i)
        iport.push_back(nl->addInput("iport" + std::to_string(i)));

    // Architectural state (allocated first; next-state wired below).
    Word pc = pcb.dffWord(7);
    Word acc = accb.dffWord(W);
    Word oport = mem.dffWord(W);          // memory word 1 (output bus)
    std::vector<Word> words(NWORDS);
    words[0] = iport;                     // word 0 reads the input bus
    words[1] = oport;
    for (unsigned w = 2; w < NWORDS; ++w)
        words[w] = mem.dffWord(W);

    // ---- Decode (Section 3.3: near-zero decode logic). ----
    NetId i7n = dec.inv(instr[7]);
    NetId i6n = dec.inv(instr[6]);
    NetId op11 = dec.and2(instr[5], instr[4]);
    // T-form store: 00 11 1 addr.
    NetId tform = dec.and3(i7n, i6n, op11);
    NetId store_en = dec.and2(tform, instr[3]);
    // ACC writes on every non-branch, non-store instruction.
    NetId acc_we = dec.and2(i7n, dec.inv(store_en));
    NetId mem_we = store_en;

    // ---- Data memory read port (single port). ----
    Word addr = {instr[0], instr[1], instr[2]};
    Word rdata = mem.muxTree(words, addr);

    // ---- Operand mux: immediate vs memory (instruction bit 6). ----
    Word imm = {instr[0], instr[1], instr[2], instr[3]};
    Word operand = alu.mux2Word(rdata, imm, instr[6]);

    // ---- ALU (Figure 3b). ----
    Builder::AdderOut add = alu.rippleAdder(acc, operand, nl->zero());
    // Output mux: 00 add, 01 nand, 10 xor, 11 pass-operand.
    Word alu_out = alu.mux4Word(add.sum, add.nandOut, add.propagate,
                                operand, instr[4], instr[5]);

    // ---- Accumulator. ----
    accb.connectRegister(acc, alu_out, acc_we);

    // ---- Data memory write port. ----
    std::vector<NetId> onehot = mem.decodeOneHot(addr);
    // Word 0 (input bus) has no storage; word 1 is the output latch.
    for (unsigned w = 1; w < NWORDS; ++w) {
        NetId we = mem.and2(onehot[w], mem_we);
        mem.connectRegister(words[w], acc, we);
    }

    // ---- PC and branch logic. ----
    NetId taken = pcb.and2(instr[7], acc[W - 1]);
    Word inc = pcb.incrementer(pc);
    Word target = {instr[0], instr[1], instr[2], instr[3],
                   instr[4], instr[5], instr[6]};
    Word pc_next = pcb.mux2Word(inc, target, taken);
    pcb.connectDff(pc, pc_next);

    // Pad drivers and clock distribution (module "core": the real
    // design buffers every output pad and distributes the clock to
    // all 39 flops; these cells contribute area and static power but
    // sit outside the logic paths compared on the pads).
    Builder io = top.scoped("core");
    Word pc_pad, oport_pad;
    for (unsigned i = 0; i < 7; ++i)
        pc_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {pc[i]}, "core"));
    for (unsigned i = 0; i < W; ++i)
        oport_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {oport[i]}, "core"));
    // Pad receivers on the input ring (ESD-protected inputs have a
    // buffer stage; modeled for area/power, fanout not re-routed).
    for (NetId in : instr)
        io.buf(in);
    for (NetId in : iport)
        io.buf(in);

    // Primary outputs.
    for (unsigned i = 0; i < 7; ++i)
        nl->addOutput("pc" + std::to_string(i), pc_pad[i]);
    for (unsigned i = 0; i < W; ++i)
        nl->addOutput("oport" + std::to_string(i), oport_pad[i]);

    // Stable labels on the architectural state: the formal checker
    // keys its state correspondence on these names, and lint/timing
    // reports survive re-elaboration with them.
    auto label = [&](const Word &w, const std::string &prefix) {
        for (unsigned i = 0; i < w.size(); ++i)
            nl->nameNet(w[i], prefix + std::to_string(i));
    };
    label(pc, "pc_q");
    label(acc, "acc");
    label(oport, "oport_q");
    for (unsigned w = 2; w < NWORDS; ++w)
        label(words[w], "mem" + std::to_string(w) + "_");

    nl->elaborate();
    return nl;
}

} // namespace flexi
