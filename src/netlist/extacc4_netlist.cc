/**
 * @file
 * Structural single-cycle ExtAcc4 netlist (wide program bus).
 *
 * This is the gate-level realization of the Section 6.1 revised op
 * set — the FlexiCore4+ class of dies (Figure 4c): the FlexiCore4
 * skeleton plus operand inversion and carry chain reuse for
 * adc/sub/swb/neg, OR from the adder's propagate/generate side
 * effects, a 3-stage barrel shifter, nzp branch evaluation, and a
 * return-address register. It validates the DSE area model against
 * a real netlist and extends the lockstep equivalence checks to the
 * extended ISA.
 *
 * Pin interface: 16-bit INSTR bus (both bytes of a two-byte
 * branch/call arrive together — the 'wide bus' configuration of
 * Section 6.2), IPORT, PC and OPORT pads as on FlexiCore4.
 */

#include "common/logging.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{

std::unique_ptr<Netlist>
buildExtAcc4Netlist()
{
    auto nl = std::make_unique<Netlist>("ExtAcc4-SC");
    Builder top(*nl, "core");
    Builder dec = top.scoped("dec");
    Builder alu = top.scoped("alu");
    Builder mem = top.scoped("mem");
    Builder pcb = top.scoped("pc");
    Builder accb = top.scoped("acc");
    Builder ctl = top.scoped("ctl");

    constexpr unsigned W = 4;
    constexpr unsigned NWORDS = 8;

    Word instr;
    for (unsigned i = 0; i < 16; ++i)
        instr.push_back(nl->addInput("instr" + std::to_string(i)));
    Word iport;
    for (unsigned i = 0; i < W; ++i)
        iport.push_back(nl->addInput("iport" + std::to_string(i)));

    // Architectural state.
    Word pc = pcb.dffWord(7);
    Word acc = accb.dffWord(W);
    Word carry_q = ctl.dffWord(1);
    NetId carry = carry_q[0];
    Word ret = ctl.dffWord(7);
    Word oport = mem.dffWord(W);
    std::vector<Word> words(NWORDS);
    words[0] = iport;
    words[1] = oport;
    for (unsigned w = 2; w < NWORDS; ++w)
        words[w] = mem.dffWord(W);

    // ---- Decode. ----
    NetId i7n = dec.inv(instr[7]);
    NetId i6n = dec.inv(instr[6]);
    NetId is_m = dec.and2(i7n, i6n);
    NetId is_i = dec.and2(i7n, instr[6]);
    NetId is_t = dec.and2(instr[7], i6n);
    NetId is_bc = dec.and2(instr[7], instr[6]);
    NetId is_br = dec.and2(is_bc, dec.inv(instr[5]));
    NetId is_call = dec.and2(is_bc, instr[5]);

    Word sss = {instr[3], instr[4], instr[5]};
    std::vector<NetId> hot = dec.decodeOneHot(sss);
    auto mop = [&](unsigned k) { return dec.and2(is_m, hot[k]); };
    auto iop = [&](unsigned k) { return dec.and2(is_i, hot[k]); };
    auto top_ = [&](unsigned k) { return dec.and2(is_t, hot[k]); };

    // Named ops.
    NetId t_load = top_(0), t_store = top_(1), t_neg = top_(2);
    NetId t_ret = top_(3), t_asr = top_(4), t_lsr = top_(5);
    NetId i_asr = iop(5), i_lsr = iop(6), i_li = iop(7);
    NetId m_xch = mop(7);
    // add/adc/sub/swb (M 0-3) and add/adc (I 0-1).
    NetId m_arith = dec.and2(is_m, dec.inv(instr[5]));
    NetId i_addadc = dec.and3(is_i, dec.inv(instr[5]),
                              dec.inv(instr[4]));
    NetId arith = dec.or2(m_arith, i_addadc);
    NetId m_sub_swb = dec.and3(is_m, dec.inv(instr[5]), instr[4]);
    NetId use_carry_in = dec.or2(
        dec.and2(arith, instr[3]),              // adc / swb
        nl->zero());
    NetId force_cin = dec.or2(
        dec.and2(m_sub_swb, dec.inv(instr[3])), // sub
        t_neg);                                 // neg (0 - acc)
    NetId invert_b = dec.or2(m_sub_swb, t_neg);

    NetId is_shift = dec.or2(dec.or2(i_asr, i_lsr),
                             dec.or2(t_asr, t_lsr));
    NetId shift_arith = dec.or2(i_asr, t_asr);
    NetId is_and = dec.or2(mop(4), iop(2));
    NetId is_or = dec.or2(mop(5), iop(3));
    NetId is_xor = dec.or2(mop(6), iop(4));
    NetId is_pass = dec.or2(dec.or2(m_xch, i_li), t_load);

    // ---- Data memory read. ----
    Word addr = {instr[0], instr[1], instr[2]};
    Word rdata = mem.muxTree(words, addr);

    // ---- Operand: memory vs (sign/zero-extended) immediate. ----
    NetId imm_hi = alu.and2(instr[2], i_addadc);   // sign-extend
    Word imm = {instr[0], instr[1], instr[2], imm_hi};
    Word operand = alu.mux2Word(rdata, imm, is_i);

    // ---- Adder with operand inversion and carry-in select. ----
    // x = acc (0 for neg); y = operand, optionally inverted; for neg
    // the inverted *accumulator* is routed through the operand path.
    Word zero_w(W, nl->zero());
    Word x = alu.mux2Word(acc, zero_w, t_neg);
    Word y_src = alu.mux2Word(operand, acc, t_neg);
    Word y;
    for (unsigned i = 0; i < W; ++i)
        y.push_back(alu.mux2(y_src[i], alu.inv(y_src[i]), invert_b));
    NetId cin = alu.mux2(alu.and2(use_carry_in, carry),
                         nl->one(), force_cin);
    Builder::AdderOut add = alu.rippleAdder(x, y, cin);

    // AND / OR / XOR from the adder side effects (Section 3.4,
    // extended: or = p | (a & b)).
    Word and_w, or_w;
    for (unsigned i = 0; i < W; ++i) {
        NetId andv = alu.inv(add.nandOut[i]);
        and_w.push_back(andv);
        or_w.push_back(alu.nand2(alu.inv(add.propagate[i]),
                                 add.nandOut[i]));
    }

    // ---- Barrel shifter (3 stages; amounts 0-7 mod width). ----
    Word amt = {alu.mux2(instr[0], nl->one(), is_t),
                alu.and2(instr[1], is_i),
                alu.and2(instr[2], is_i)};
    NetId fill = alu.and2(shift_arith, acc[W - 1]);
    Word s1 = {alu.mux2(acc[0], acc[1], amt[0]),
               alu.mux2(acc[1], acc[2], amt[0]),
               alu.mux2(acc[2], acc[3], amt[0]),
               alu.mux2(acc[3], fill, amt[0])};
    Word s2 = {alu.mux2(s1[0], s1[2], amt[1]),
               alu.mux2(s1[1], s1[3], amt[1]),
               alu.mux2(s1[2], fill, amt[1]),
               alu.mux2(s1[3], fill, amt[1])};
    Word shift_w;
    for (unsigned i = 0; i < W; ++i)
        shift_w.push_back(alu.mux2(s2[i], fill, amt[2]));
    // Carry out of a shift: the last bit shifted out — acc[amt-1]
    // for amounts 1-4, the fill bit for amounts >= 5 (everything
    // real has been shifted through by then).
    NetId odd_c = alu.mux2(acc[0], acc[2], amt[1]);    // amt 1 / 3
    NetId even_c = alu.mux2(acc[1], acc[3], amt[2]);   // amt 2 / 4
    NetId sh_low = alu.mux2(even_c, odd_c, amt[0]);
    NetId ge5 = alu.and2(amt[2], alu.or2(amt[1], amt[0]));
    NetId sh_c = alu.mux2(sh_low, fill, ge5);

    // ---- Result mux tree. ----
    Word logic_or_xor = alu.mux2Word(or_w, add.propagate, is_xor);
    Word logic_w = alu.mux2Word(logic_or_xor, and_w, is_and);
    NetId use_logic = alu.or2(alu.or2(is_and, is_or), is_xor);
    Word arith_or_logic = alu.mux2Word(add.sum, logic_w, use_logic);
    Word pass_or_shift = alu.mux2Word(operand, shift_w, is_shift);
    NetId use_ps = alu.or2(is_pass, is_shift);
    Word result = alu.mux2Word(arith_or_logic, pass_or_shift, use_ps);

    // ---- Write enables. ----
    NetId addsub_any = dec.or2(arith, t_neg);
    NetId acc_we = dec.or2(
        dec.or2(is_m, is_i),
        dec.or3(t_load, t_neg, dec.or2(t_asr, t_lsr)));
    NetId mem_we = dec.or2(m_xch, t_store);
    NetId amt_nz = dec.or3(amt[0], amt[1], amt[2]);
    NetId carry_we = dec.or2(addsub_any,
                             dec.and2(is_shift, amt_nz));
    NetId carry_next = ctl.mux2(add.carryOut, sh_c, is_shift);
    ctl.connectRegister(carry_q, {carry_next}, carry_we);

    accb.connectRegister(acc, result, acc_we);

    // ---- Data memory write (din is always ACC). ----
    std::vector<NetId> onehot = mem.decodeOneHot(addr);
    for (unsigned w = 1; w < NWORDS; ++w) {
        NetId we = mem.and2(onehot[w], mem_we);
        mem.connectRegister(words[w], acc, we);
    }

    // ---- Branch / call / ret and the PC. ----
    NetId n_flag = acc[W - 1];
    NetId z_flag = pcb.andReduce(
        {pcb.inv(acc[0]), pcb.inv(acc[1]), pcb.inv(acc[2]),
         pcb.inv(acc[3])});
    NetId p_flag = pcb.and2(pcb.inv(n_flag), pcb.inv(z_flag));
    NetId cond = pcb.or3(pcb.and2(instr[4], n_flag),
                         pcb.and2(instr[3], z_flag),
                         pcb.and2(instr[2], p_flag));
    NetId br_taken = pcb.and2(is_br, cond);
    NetId redirect = pcb.or2(br_taken, is_call);

    Word inc1 = pcb.incrementer(pc);
    Word inc2 = pcb.incrementer(inc1);
    Word inc = pcb.mux2Word(inc1, inc2, is_bc);
    Word target = {instr[8], instr[9], instr[10], instr[11],
                   instr[12], instr[13], instr[14]};
    Word pc_seq = pcb.mux2Word(inc, target, redirect);
    Word pc_next = pcb.mux2Word(pc_seq, ret, t_ret);
    pcb.connectDff(pc, pc_next);

    // Return register captures the post-call PC.
    ctl.connectRegister(ret, inc2, is_call);

    // ---- Pads. ----
    Builder io = top.scoped("core");
    Word pc_pad, oport_pad;
    for (unsigned i = 0; i < 7; ++i)
        pc_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {pc[i]}, "core"));
    for (unsigned i = 0; i < W; ++i)
        oport_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {oport[i]}, "core"));
    for (NetId in : instr)
        io.buf(in);
    for (NetId in : iport)
        io.buf(in);

    for (unsigned i = 0; i < 7; ++i)
        nl->addOutput("pc" + std::to_string(i), pc_pad[i]);
    for (unsigned i = 0; i < W; ++i)
        nl->addOutput("oport" + std::to_string(i), oport_pad[i]);

    // Stable architectural-state labels (see FlexiCore4).
    auto label = [&](const Word &w, const std::string &prefix) {
        for (unsigned i = 0; i < w.size(); ++i)
            nl->nameNet(w[i], prefix + std::to_string(i));
    };
    label(pc, "pc_q");
    label(acc, "acc");
    label(oport, "oport_q");
    for (unsigned w = 2; w < NWORDS; ++w)
        label(words[w], "mem" + std::to_string(w) + "_");
    nl->nameNet(carry, "carry");
    label(ret, "ret_q");

    nl->elaborate();
    return nl;
}

} // namespace flexi
