#include "builder.hh"

#include "common/logging.hh"

namespace flexi
{

Builder
Builder::scoped(const std::string &module) const
{
    return Builder(nl_, module);
}

NetId
Builder::inv(NetId a)
{
    return nl_.addCell(CellType::INV_X1, {a}, module_);
}

NetId
Builder::buf(NetId a)
{
    return nl_.addCell(CellType::BUF_X1, {a}, module_);
}

NetId
Builder::nand2(NetId a, NetId b)
{
    return nl_.addCell(CellType::NAND2, {a, b}, module_);
}

NetId
Builder::nand3(NetId a, NetId b, NetId c)
{
    return nl_.addCell(CellType::NAND3, {a, b, c}, module_);
}

NetId
Builder::nor2(NetId a, NetId b)
{
    return nl_.addCell(CellType::NOR2, {a, b}, module_);
}

NetId
Builder::nor3(NetId a, NetId b, NetId c)
{
    return nl_.addCell(CellType::NOR3, {a, b, c}, module_);
}

NetId
Builder::and2(NetId a, NetId b)
{
    return inv(nand2(a, b));
}

NetId
Builder::and3(NetId a, NetId b, NetId c)
{
    return inv(nand3(a, b, c));
}

NetId
Builder::or2(NetId a, NetId b)
{
    return inv(nor2(a, b));
}

NetId
Builder::or3(NetId a, NetId b, NetId c)
{
    return inv(nor3(a, b, c));
}

NetId
Builder::xor2(NetId a, NetId b)
{
    return nl_.addCell(CellType::XOR2, {a, b}, module_);
}

NetId
Builder::xnor2(NetId a, NetId b)
{
    return nl_.addCell(CellType::XNOR2, {a, b}, module_);
}

NetId
Builder::mux2(NetId a, NetId b, NetId sel)
{
    return nl_.addCell(CellType::MUX2, {a, b, sel}, module_);
}

Word
Builder::invWord(const Word &a)
{
    Word out;
    out.reserve(a.size());
    for (NetId n : a)
        out.push_back(inv(n));
    return out;
}

Word
Builder::mux2Word(const Word &a, const Word &b, NetId sel)
{
    if (a.size() != b.size())
        panic("mux2Word width mismatch");
    Word out;
    out.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out.push_back(mux2(a[i], b[i], sel));
    return out;
}

Word
Builder::mux4Word(const Word &in0, const Word &in1, const Word &in2,
                  const Word &in3, NetId sel0, NetId sel1)
{
    Word lo = mux2Word(in0, in1, sel0);
    Word hi = mux2Word(in2, in3, sel0);
    return mux2Word(lo, hi, sel1);
}

NetId
Builder::andReduce(const std::vector<NetId> &nets)
{
    if (nets.empty())
        return nl_.one();
    std::vector<NetId> cur = nets;
    while (cur.size() > 1) {
        std::vector<NetId> next;
        size_t i = 0;
        for (; i + 3 <= cur.size(); i += 3)
            next.push_back(and3(cur[i], cur[i + 1], cur[i + 2]));
        if (i + 2 <= cur.size()) {
            next.push_back(and2(cur[i], cur[i + 1]));
            i += 2;
        }
        if (i < cur.size())
            next.push_back(cur[i]);
        cur = std::move(next);
    }
    return cur[0];
}

NetId
Builder::orReduce(const std::vector<NetId> &nets)
{
    if (nets.empty())
        return nl_.zero();
    std::vector<NetId> cur = nets;
    while (cur.size() > 1) {
        std::vector<NetId> next;
        size_t i = 0;
        for (; i + 3 <= cur.size(); i += 3)
            next.push_back(or3(cur[i], cur[i + 1], cur[i + 2]));
        if (i + 2 <= cur.size()) {
            next.push_back(or2(cur[i], cur[i + 1]));
            i += 2;
        }
        if (i < cur.size())
            next.push_back(cur[i]);
        cur = std::move(next);
    }
    return cur[0];
}

Builder::AdderOut
Builder::rippleAdder(const Word &a, const Word &b, NetId cin)
{
    if (a.size() != b.size())
        panic("rippleAdder width mismatch");
    AdderOut out;
    NetId carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
        NetId p = xor2(a[i], b[i]);
        NetId gn = nand2(a[i], b[i]);        // ~(a & b): NAND for free
        NetId s = xor2(p, carry);
        NetId t = nand2(p, carry);
        // cout = (a & b) | (p & cin) = NAND(gn, t)
        carry = nand2(gn, t);
        out.sum.push_back(s);
        out.propagate.push_back(p);
        out.nandOut.push_back(gn);
    }
    out.carryOut = carry;
    return out;
}

Word
Builder::incrementer(const Word &a)
{
    Word out;
    NetId carry = kNoNet;
    for (size_t i = 0; i < a.size(); ++i) {
        if (i == 0) {
            out.push_back(inv(a[0]));
            carry = a[0];
        } else {
            out.push_back(xor2(a[i], carry));
            if (i + 1 < a.size())
                carry = and2(a[i], carry);
        }
    }
    return out;
}

Word
Builder::registerWord(const Word &d, NetId we, bool x2)
{
    Word q = dffWord(d.size(), x2);
    connectRegister(q, d, we);
    return q;
}

Word
Builder::dffWord(size_t width, bool x2, unsigned init)
{
    Word q;
    q.reserve(width);
    for (size_t i = 0; i < width; ++i)
        q.push_back(nl_.addDff(kNoNet, module_, (init >> i) & 1, x2));
    return q;
}

void
Builder::connectDff(const Word &q, const Word &d)
{
    if (q.size() != d.size())
        panic("connectDff width mismatch");
    for (size_t i = 0; i < q.size(); ++i)
        nl_.setDffInput(q[i], d[i]);
}

void
Builder::connectRegister(const Word &q, const Word &d, NetId we)
{
    if (q.size() != d.size())
        panic("connectRegister width mismatch");
    for (size_t i = 0; i < q.size(); ++i)
        nl_.setDffInput(q[i], mux2(q[i], d[i], we));
}

std::vector<NetId>
Builder::decodeOneHot(const Word &sel)
{
    size_t n = size_t{1} << sel.size();
    Word inv_sel = invWord(sel);
    std::vector<NetId> out;
    out.reserve(n);
    for (size_t v = 0; v < n; ++v) {
        std::vector<NetId> terms;
        for (size_t b = 0; b < sel.size(); ++b)
            terms.push_back((v >> b) & 1 ? sel[b] : inv_sel[b]);
        out.push_back(andReduce(terms));
    }
    return out;
}

Word
Builder::muxTree(const std::vector<Word> &words, const Word &sel)
{
    if (words.size() != (size_t{1} << sel.size()))
        panic("muxTree: %zu words need %zu select bits", words.size(),
              sel.size());
    std::vector<Word> cur = words;
    for (size_t level = 0; level < sel.size(); ++level) {
        std::vector<Word> next;
        for (size_t i = 0; i + 1 < cur.size(); i += 2)
            next.push_back(mux2Word(cur[i], cur[i + 1], sel[level]));
        cur = std::move(next);
    }
    return cur[0];
}

} // namespace flexi
