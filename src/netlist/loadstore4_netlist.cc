/**
 * @file
 * Structural single-cycle LoadStore4 netlist (wide 16-bit program
 * bus) — the two-address DSE machine of Section 6.2.
 *
 * The defining structural difference from the accumulator cores is
 * visible here: the register file needs a *second read port* (rd and
 * rs are read concurrently), there is no accumulator, and branch
 * conditions come from an architectural flags-source register that
 * captures every written result. PC counts 16-bit words.
 */

#include "common/logging.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{

namespace
{

/** op5 encodings (mirrors encoding_ls.cc). */
enum : unsigned
{
    LS_ADD = 0, LS_ADC, LS_SUB, LS_SWB, LS_AND, LS_OR, LS_XOR,
    LS_MOV, LS_NEG, LS_ASR, LS_LSR,
    LS_ADDI, LS_ADCI, LS_ANDI, LS_ORI, LS_XORI, LS_MOVI,
    LS_ASRI, LS_LSRI,
    LS_BR, LS_CALL, LS_RET,
};

} // namespace

std::unique_ptr<Netlist>
buildLoadStore4Netlist()
{
    auto nl = std::make_unique<Netlist>("LoadStore4-SC");
    Builder top(*nl, "core");
    Builder dec = top.scoped("dec");
    Builder alu = top.scoped("alu");
    Builder mem = top.scoped("mem");
    Builder pcb = top.scoped("pc");
    Builder flg = top.scoped("acc");    // flags take the acc slot
    Builder ctl = top.scoped("ctl");

    constexpr unsigned W = 4;
    constexpr unsigned NWORDS = 8;

    Word instr;
    for (unsigned i = 0; i < 16; ++i)
        instr.push_back(nl->addInput("instr" + std::to_string(i)));
    Word iport;
    for (unsigned i = 0; i < W; ++i)
        iport.push_back(nl->addInput("iport" + std::to_string(i)));

    Word pc = pcb.dffWord(7);
    Word flags_val = flg.dffWord(W);    // last written result
    Word carry_q = ctl.dffWord(1);
    NetId carry = carry_q[0];
    Word ret = ctl.dffWord(7);
    Word oport = mem.dffWord(W);
    std::vector<Word> words(NWORDS);
    words[0] = iport;
    words[1] = oport;
    for (unsigned w = 2; w < NWORDS; ++w)
        words[w] = mem.dffWord(W);

    // ---- Decode: one-hot over op5. ----
    Word op5 = {instr[11], instr[12], instr[13], instr[14],
                instr[15]};
    std::vector<NetId> hot = dec.decodeOneHot(op5);
    auto any = [&](std::initializer_list<unsigned> ops) {
        std::vector<NetId> nets;
        for (unsigned o : ops)
            nets.push_back(hot[o]);
        return dec.orReduce(nets);
    };

    NetId is_imm = any({LS_ADDI, LS_ADCI, LS_ANDI, LS_ORI, LS_XORI,
                        LS_MOVI, LS_ASRI, LS_LSRI});
    NetId is_arith = any({LS_ADD, LS_ADC, LS_SUB, LS_SWB, LS_ADDI,
                          LS_ADCI});
    NetId use_cin = any({LS_ADC, LS_ADCI, LS_SWB});
    NetId is_sub_swb = any({LS_SUB, LS_SWB});
    NetId is_neg = hot[LS_NEG];
    NetId is_and = any({LS_AND, LS_ANDI});
    NetId is_or = any({LS_OR, LS_ORI});
    NetId is_xor = any({LS_XOR, LS_XORI});
    NetId is_mov = any({LS_MOV, LS_MOVI});
    NetId is_shift = any({LS_ASR, LS_LSR, LS_ASRI, LS_LSRI});
    NetId shift_arith = any({LS_ASR, LS_ASRI});
    NetId is_br = hot[LS_BR];
    NetId is_call = hot[LS_CALL];
    NetId is_ret = hot[LS_RET];
    NetId rd_we = any({LS_ADD, LS_ADC, LS_SUB, LS_SWB, LS_AND,
                       LS_OR, LS_XOR, LS_MOV, LS_NEG, LS_ASR, LS_LSR,
                       LS_ADDI, LS_ADCI, LS_ANDI, LS_ORI, LS_XORI,
                       LS_MOVI, LS_ASRI, LS_LSRI});

    // ---- Register file: two read ports (the Section 3.5 cost). ----
    Word rd_addr = {instr[8], instr[9], instr[10]};
    Word rs_addr = {instr[5], instr[6], instr[7]};
    Word rd_val = mem.muxTree(words, rd_addr);
    Word rs_val = mem.muxTree(words, rs_addr);

    Word imm = {instr[1], instr[2], instr[3], instr[4]};
    Word b_op = alu.mux2Word(rs_val, imm, is_imm);

    // ---- Adder (x = rd or 0 for neg; y optionally inverted). ----
    Word zero_w(W, nl->zero());
    Word x = alu.mux2Word(rd_val, zero_w, is_neg);
    Word y_src = alu.mux2Word(b_op, rd_val, is_neg);
    NetId invert = alu.or2(is_sub_swb, is_neg);
    Word y;
    for (unsigned i = 0; i < W; ++i)
        y.push_back(alu.mux2(y_src[i], alu.inv(y_src[i]), invert));
    NetId force_cin = alu.or2(hot[LS_SUB], is_neg);
    NetId cin = alu.mux2(alu.and2(use_cin, carry), nl->one(),
                         force_cin);
    Builder::AdderOut add = alu.rippleAdder(x, y, cin);

    Word and_w, or_w;
    for (unsigned i = 0; i < W; ++i) {
        and_w.push_back(alu.inv(add.nandOut[i]));
        or_w.push_back(alu.nand2(alu.inv(add.propagate[i]),
                                 add.nandOut[i]));
    }

    // ---- Barrel shifter on rd; amount from rs or imm. ----
    Word amt_src = alu.mux2Word(rs_val, imm, is_imm);
    Word amt = {amt_src[0], amt_src[1], amt_src[2]};
    NetId fill = alu.and2(shift_arith, rd_val[W - 1]);
    Word s1 = {alu.mux2(rd_val[0], rd_val[1], amt[0]),
               alu.mux2(rd_val[1], rd_val[2], amt[0]),
               alu.mux2(rd_val[2], rd_val[3], amt[0]),
               alu.mux2(rd_val[3], fill, amt[0])};
    Word s2 = {alu.mux2(s1[0], s1[2], amt[1]),
               alu.mux2(s1[1], s1[3], amt[1]),
               alu.mux2(s1[2], fill, amt[1]),
               alu.mux2(s1[3], fill, amt[1])};
    Word shift_w;
    for (unsigned i = 0; i < W; ++i)
        shift_w.push_back(alu.mux2(s2[i], fill, amt[2]));
    NetId odd_c = alu.mux2(rd_val[0], rd_val[2], amt[1]);
    NetId even_c = alu.mux2(rd_val[1], rd_val[3], amt[2]);
    NetId sh_low = alu.mux2(even_c, odd_c, amt[0]);
    NetId ge5 = alu.and2(amt[2], alu.or2(amt[1], amt[0]));
    NetId sh_c = alu.mux2(sh_low, fill, ge5);

    // ---- Result mux. ----
    Word logic_ox = alu.mux2Word(or_w, add.propagate, is_xor);
    Word logic_w = alu.mux2Word(logic_ox, and_w, is_and);
    NetId use_logic = alu.or3(is_and, is_or, is_xor);
    Word ar_lg = alu.mux2Word(add.sum, logic_w, use_logic);
    Word mv_sh = alu.mux2Word(b_op, shift_w, is_shift);
    NetId use_ms = alu.or2(is_mov, is_shift);
    Word result = alu.mux2Word(ar_lg, mv_sh, use_ms);

    // ---- Writes. ----
    NetId amt_nz = dec.or3(amt[0], amt[1], amt[2]);
    NetId carry_we = dec.or3(is_arith, is_neg,
                             dec.and2(is_shift, amt_nz));
    NetId carry_next = ctl.mux2(add.carryOut, sh_c, is_shift);
    ctl.connectRegister(carry_q, {carry_next}, carry_we);

    flg.connectRegister(flags_val, result, rd_we);

    std::vector<NetId> onehot = mem.decodeOneHot(rd_addr);
    for (unsigned w = 1; w < NWORDS; ++w) {
        NetId we = mem.and2(onehot[w], rd_we);
        mem.connectRegister(words[w], result, we);
    }

    // ---- Branch / call / ret; PC counts words. ----
    NetId n_flag = flags_val[W - 1];
    NetId z_flag = pcb.andReduce(
        {pcb.inv(flags_val[0]), pcb.inv(flags_val[1]),
         pcb.inv(flags_val[2]), pcb.inv(flags_val[3])});
    NetId p_flag = pcb.and2(pcb.inv(n_flag), pcb.inv(z_flag));
    // BR packs nzp into the rd field ([10:8]) and target into [6:0].
    NetId cond = pcb.or3(pcb.and2(instr[10], n_flag),
                         pcb.and2(instr[9], z_flag),
                         pcb.and2(instr[8], p_flag));
    NetId redirect = pcb.or2(pcb.and2(is_br, cond), is_call);

    Word inc = pcb.incrementer(pc);
    Word target = {instr[0], instr[1], instr[2], instr[3],
                   instr[4], instr[5], instr[6]};
    Word pc_seq = pcb.mux2Word(inc, target, redirect);
    Word pc_next = pcb.mux2Word(pc_seq, ret, is_ret);
    pcb.connectDff(pc, pc_next);
    ctl.connectRegister(ret, inc, is_call);

    // ---- Pads. ----
    Builder io = top.scoped("core");
    Word pc_pad, oport_pad;
    for (unsigned i = 0; i < 7; ++i)
        pc_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {pc[i]}, "core"));
    for (unsigned i = 0; i < W; ++i)
        oport_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {oport[i]}, "core"));
    for (NetId in : instr)
        io.buf(in);
    for (NetId in : iport)
        io.buf(in);

    for (unsigned i = 0; i < 7; ++i)
        nl->addOutput("pc" + std::to_string(i), pc_pad[i]);
    for (unsigned i = 0; i < W; ++i)
        nl->addOutput("oport" + std::to_string(i), oport_pad[i]);

    // Stable architectural-state labels (see FlexiCore4).
    auto label = [&](const Word &w, const std::string &prefix) {
        for (unsigned i = 0; i < w.size(); ++i)
            nl->nameNet(w[i], prefix + std::to_string(i));
    };
    label(pc, "pc_q");
    label(flags_val, "flags");
    label(oport, "oport_q");
    for (unsigned w = 2; w < NWORDS; ++w)
        label(words[w], "mem" + std::to_string(w) + "_");
    nl->nameNet(carry, "carry");
    label(ret, "ret_q");

    nl->elaborate();
    return nl;
}

} // namespace flexi
