/**
 * @file
 * Lockstep execution of a gate-level FlexiCore netlist against the
 * architectural simulator.
 *
 * This reproduces the paper's wafer-test methodology (Section 4.1):
 * "A test pattern derived from a Verilog simulation was translated to
 * input signals ... We count a core as fully-functional if there are
 * zero measured differences between its output and the expected
 * output as determined by RTL simulation across all test vectors."
 *
 * Here the netlist plays the part of the die, the CoreSim plays the
 * RTL golden model, and the harness plays the NI digital pattern
 * instrument: it drives the instruction bus from the netlist's own
 * PC pins (so a faulty PC fetches the wrong instruction, exactly as
 * on the probe station) and compares the PC and OPORT pads every
 * cycle.
 */

#ifndef FLEXI_NETLIST_LOCKSTEP_HH
#define FLEXI_NETLIST_LOCKSTEP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "assembler/program.hh"
#include "netlist/lane_batch.hh"
#include "netlist/lane_group.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** Result of a lockstep run. */
struct LockstepResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    /** Cycles on which PC or OPORT pads differed from golden. */
    uint64_t errors = 0;
    /** Output-port write events observed on the golden model. */
    std::vector<uint8_t> outputs;
};

/**
 * Run @p netlist in lockstep with the architectural model executing
 * @p prog (page 0 only — the probe-station tests are single-page).
 *
 * @param netlist an elaborated FlexiCore4/8 netlist (possibly with
 *        injected faults)
 * @param isa which of the two fabricated ISAs the netlist implements
 * @param prog the test program
 * @param inputs values appearing on the input bus; each architectural
 *        read of data address 0 consumes the next one (the last value
 *        is held once exhausted)
 * @param max_instructions instruction budget
 */
LockstepResult runLockstep(Netlist &netlist, IsaKind isa,
                           const Program &prog,
                           const std::vector<uint8_t> &inputs,
                           uint64_t max_instructions);

/** Result of a batched lockstep run. */
struct LockstepBatchResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    /**
     * Lanes whose PC and OPORT pads matched golden on every compared
     * instruction (bit L = lane L still clean at exit).
     */
    uint64_t activeMask = 0;
    /** Per-lane pad-mismatch count (as LockstepResult::errors). */
    std::array<uint64_t, LaneBatch::kMaxLanes> errors{};
};

/**
 * Drive all lanes of @p batch in lockstep with one shared golden
 * CoreSim run of @p prog. Each lane fetches from its *own* PC pads
 * (a faulty lane chases its own wrong-path instruction stream, as on
 * the probe station) while the input port and the expected pads are
 * shared — the harness compares every lane against the same golden
 * trajectory that runLockstep uses, so per-lane error counts are
 * bit-identical to running each faulted die through runLockstep.
 *
 * @param golden_netlist the elaborated netlist the batch was built
 *        from (or any clone sharing its structure); used only to
 *        resolve the pad buses
 * @param early_exit retire a lane at its first pad mismatch (its
 *        error count stops accumulating but stays >= 1) and stop the
 *        whole batch once every lane has diverged. Exact per-lane
 *        error totals are only preserved with early_exit = false.
 */
LockstepBatchResult runLockstepBatch(LaneBatch &batch,
                                     const Netlist &golden_netlist,
                                     IsaKind isa, const Program &prog,
                                     const std::vector<uint8_t> &inputs,
                                     uint64_t max_instructions,
                                     bool early_exit);

/** Result of a wide-lane (up to 512 lanes) lockstep run. */
struct LockstepGroupResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    /**
     * Lanes whose PC and OPORT pads matched golden on every compared
     * instruction: bit L of word w = lane w*64 + L still clean.
     */
    std::array<uint64_t, LaneGroup::kMaxWords> activeMask{};
    /** Per-lane pad-mismatch count (as LockstepResult::errors). */
    std::array<uint64_t, LaneGroup::kMaxLanes> errors{};

    bool
    laneClean(unsigned lane) const
    {
        return (activeMask[lane / 64] >> (lane % 64)) & 1ull;
    }
};

/**
 * Wide-lane runLockstepBatch: drive all lanes of @p group — up to
 * LaneGroup::kMaxLanes dies per pass through the compiled fused-run
 * plan — in lockstep with one shared golden CoreSim run. Semantics
 * match runLockstepBatch lane for lane (per-lane error counts are
 * bit-identical to scalar runLockstep of the same faulted die); the
 * only difference is capacity and speed: between clockEdge() and the
 * pad sample the runner re-evaluates only the PC/OPORT pad cones
 * (LaneGroup::exposeState), which is exact for the compared pads.
 */
LockstepGroupResult runLockstepGroup(LaneGroup &group,
                                     const Netlist &golden_netlist,
                                     IsaKind isa, const Program &prog,
                                     const std::vector<uint8_t> &inputs,
                                     uint64_t max_instructions,
                                     bool early_exit);

} // namespace flexi

#endif // FLEXI_NETLIST_LOCKSTEP_HH
