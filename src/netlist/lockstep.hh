/**
 * @file
 * Lockstep execution of a gate-level FlexiCore netlist against the
 * architectural simulator.
 *
 * This reproduces the paper's wafer-test methodology (Section 4.1):
 * "A test pattern derived from a Verilog simulation was translated to
 * input signals ... We count a core as fully-functional if there are
 * zero measured differences between its output and the expected
 * output as determined by RTL simulation across all test vectors."
 *
 * Here the netlist plays the part of the die, the CoreSim plays the
 * RTL golden model, and the harness plays the NI digital pattern
 * instrument: it drives the instruction bus from the netlist's own
 * PC pins (so a faulty PC fetches the wrong instruction, exactly as
 * on the probe station) and compares the PC and OPORT pads every
 * cycle.
 */

#ifndef FLEXI_NETLIST_LOCKSTEP_HH
#define FLEXI_NETLIST_LOCKSTEP_HH

#include <cstdint>
#include <vector>

#include "assembler/program.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** Result of a lockstep run. */
struct LockstepResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    /** Cycles on which PC or OPORT pads differed from golden. */
    uint64_t errors = 0;
    /** Output-port write events observed on the golden model. */
    std::vector<uint8_t> outputs;
};

/**
 * Run @p netlist in lockstep with the architectural model executing
 * @p prog (page 0 only — the probe-station tests are single-page).
 *
 * @param netlist an elaborated FlexiCore4/8 netlist (possibly with
 *        injected faults)
 * @param isa which of the two fabricated ISAs the netlist implements
 * @param prog the test program
 * @param inputs values appearing on the input bus; each architectural
 *        read of data address 0 consumes the next one (the last value
 *        is held once exhausted)
 * @param max_instructions instruction budget
 */
LockstepResult runLockstep(Netlist &netlist, IsaKind isa,
                           const Program &prog,
                           const std::vector<uint8_t> &inputs,
                           uint64_t max_instructions);

} // namespace flexi

#endif // FLEXI_NETLIST_LOCKSTEP_HH
