/**
 * @file
 * Word-level construction helpers over Netlist.
 *
 * These compose the 13 library cells into the structures the
 * FlexiCore microarchitecture needs: inverter-based logic ops, wide
 * multiplexers, registers, decoders, and — centrally — the ripple
 * carry adder whose per-bit propagate (XOR) and generate (NAND)
 * signals provide the XOR and NAND ALU functions as free side
 * effects (Section 3.4, Figure 3b).
 */

#ifndef FLEXI_NETLIST_BUILDER_HH
#define FLEXI_NETLIST_BUILDER_HH

#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace flexi
{

/** A little-endian bundle of nets (bit 0 first). */
using Word = std::vector<NetId>;

/** Construction facade bound to a netlist and a module tag. */
class Builder
{
  public:
    Builder(Netlist &nl, std::string module)
        : nl_(nl), module_(std::move(module))
    {}

    /** Re-scope to a different module tag. */
    Builder scoped(const std::string &module) const;

    /** @name Single-bit gates */
    ///@{
    NetId inv(NetId a);
    NetId buf(NetId a);
    NetId nand2(NetId a, NetId b);
    NetId nand3(NetId a, NetId b, NetId c);
    NetId nor2(NetId a, NetId b);
    NetId nor3(NetId a, NetId b, NetId c);
    NetId and2(NetId a, NetId b);
    NetId and3(NetId a, NetId b, NetId c);
    NetId or2(NetId a, NetId b);
    NetId or3(NetId a, NetId b, NetId c);
    NetId xor2(NetId a, NetId b);
    NetId xnor2(NetId a, NetId b);
    /** sel ? b : a */
    NetId mux2(NetId a, NetId b, NetId sel);
    ///@}

    /** @name Word-level operators */
    ///@{
    Word invWord(const Word &a);
    Word mux2Word(const Word &a, const Word &b, NetId sel);
    /** 4:1 mux from two select bits (three MUX2 per bit). */
    Word mux4Word(const Word &in0, const Word &in1, const Word &in2,
                  const Word &in3, NetId sel0, NetId sel1);
    /** Wide AND / OR reduction trees. */
    NetId andReduce(const std::vector<NetId> &nets);
    NetId orReduce(const std::vector<NetId> &nets);
    ///@}

    /** Ripple-carry adder result with the ALU side-effect words. */
    struct AdderOut
    {
        Word sum;
        Word propagate;   ///< per-bit a XOR b (the XOR function)
        Word nandOut;     ///< per-bit NAND(a, b) (the NAND function)
        NetId carryOut = kNoNet;
    };

    /**
     * Ripple-carry adder (Figure 3b): per bit two XOR2 and three
     * NAND2 cells; XOR and NAND fall out of the propagate/generate
     * terms without extra gates.
     */
    AdderOut rippleAdder(const Word &a, const Word &b, NetId cin);

    /** Incrementer for the program counter (half-adder chain). */
    Word incrementer(const Word &a);

    /** A bank of DFFs with a shared write-enable (Q = we ? d : Q). */
    Word registerWord(const Word &d, NetId we, bool x2 = false);

    /**
     * Allocate DFFs with a placeholder D input, to be wired later
     * with connectDff()/connectRegister(). Needed for state that
     * feeds its own next-value logic (PC, ACC).
     */
    Word dffWord(size_t width, bool x2 = false, unsigned init = 0);
    /** Wire Q's D input directly to d (state written every cycle). */
    void connectDff(const Word &q, const Word &d);
    /** Wire a hold loop: D = we ? d : Q. */
    void connectRegister(const Word &q, const Word &d, NetId we);

    /** n-to-2^n one-hot decoder. */
    std::vector<NetId> decodeOneHot(const Word &sel);

    /** 2^k : 1 word multiplexer (binary tree of MUX2). */
    Word muxTree(const std::vector<Word> &words, const Word &sel);

    Netlist &netlist() { return nl_; }

  private:
    Netlist &nl_;
    std::string module_;
};

} // namespace flexi

#endif // FLEXI_NETLIST_BUILDER_HH
