/**
 * @file
 * Structural FlexiCore8.
 *
 * Identical organization to FlexiCore4 with an 8-bit datapath and a
 * 4 x 8-bit data memory, plus the one piece of controller state in
 * the whole design: the LOAD BYTE flag flip-flop (Section 3.4). When
 * the exact prefix byte 0b00001000 is fetched the flag sets; on the
 * following cycle the byte on the instruction bus is captured into
 * the accumulator verbatim and all other side effects are
 * suppressed.
 */

#include "common/logging.hh"
#include "netlist/builder.hh"
#include "netlist/flexicore_netlist.hh"

namespace flexi
{

std::unique_ptr<Netlist>
buildFlexiCore8Netlist()
{
    auto nl = std::make_unique<Netlist>("FlexiCore8");
    Builder top(*nl, "core");
    Builder dec = top.scoped("dec");
    Builder alu = top.scoped("alu");
    Builder mem = top.scoped("mem");
    Builder pcb = top.scoped("pc");
    Builder accb = top.scoped("acc");

    constexpr unsigned W = 8;
    constexpr unsigned NWORDS = 4;

    Word instr;
    for (unsigned i = 0; i < 8; ++i)
        instr.push_back(nl->addInput("instr" + std::to_string(i)));
    Word iport;
    for (unsigned i = 0; i < W; ++i)
        iport.push_back(nl->addInput("iport" + std::to_string(i)));

    Word pc = pcb.dffWord(7);
    Word acc = accb.dffWord(W);
    Word oport = mem.dffWord(W);
    std::vector<Word> words(NWORDS);
    words[0] = iport;
    words[1] = oport;
    words[2] = mem.dffWord(W);
    words[3] = mem.dffWord(W);

    // ---- LOAD BYTE controller (the single flag flip-flop). ----
    Word flag_q = dec.dffWord(1);
    NetId flag = flag_q[0];
    NetId flag_n = dec.inv(flag);
    // Exact match of 0b00001000.
    NetId prefix = dec.andReduce({
        dec.inv(instr[7]), dec.inv(instr[6]), dec.inv(instr[5]),
        dec.inv(instr[4]), instr[3], dec.inv(instr[2]),
        dec.inv(instr[1]), dec.inv(instr[0])});
    // Set on prefix fetch, clear after the data byte.
    NetId flag_d = dec.and2(prefix, flag_n);
    dec.connectDff(flag_q, {flag_d});
    // The prefix cycle must not execute as an instruction either.
    NetId squash = dec.or2(flag, prefix);
    NetId squash_n = dec.inv(squash);

    // ---- Decode. ----
    NetId i7n = dec.inv(instr[7]);
    NetId i6n = dec.inv(instr[6]);
    NetId op11 = dec.and2(instr[5], instr[4]);
    NetId tform = dec.and3(i7n, i6n, op11);
    NetId store_en = dec.and3(tform, instr[3], squash_n);
    NetId acc_alu_we =
        dec.and3(i7n, dec.inv(store_en), squash_n);
    // ACC captures the raw bus on the data cycle of LOAD BYTE.
    NetId acc_we = dec.or2(acc_alu_we, flag);
    NetId mem_we = store_en;

    // ---- Data memory. ----
    Word addr = {instr[0], instr[1]};
    Word rdata = mem.muxTree(words, addr);

    // Sign-extended 4-bit immediate (wiring only).
    Word imm = {instr[0], instr[1], instr[2], instr[3],
                instr[3], instr[3], instr[3], instr[3]};
    Word operand = alu.mux2Word(rdata, imm, instr[6]);

    // ---- ALU. ----
    Builder::AdderOut add = alu.rippleAdder(acc, operand, nl->zero());
    Word alu_out = alu.mux4Word(add.sum, add.nandOut, add.propagate,
                                operand, instr[4], instr[5]);

    // ---- Accumulator: ALU result, or the raw instruction bus on a
    //      LOAD BYTE data cycle. ----
    Word acc_in = accb.mux2Word(alu_out, instr, flag);
    accb.connectRegister(acc, acc_in, acc_we);

    // ---- Memory write port. ----
    std::vector<NetId> onehot = mem.decodeOneHot(addr);
    for (unsigned w = 1; w < NWORDS; ++w) {
        NetId we = mem.and2(onehot[w], mem_we);
        mem.connectRegister(words[w], acc, we);
    }

    // ---- PC. ----
    NetId taken = pcb.and3(instr[7], acc[W - 1], squash_n);
    Word inc = pcb.incrementer(pc);
    Word target = {instr[0], instr[1], instr[2], instr[3],
                   instr[4], instr[5], instr[6]};
    Word pc_next = pcb.mux2Word(inc, target, taken);
    pcb.connectDff(pc, pc_next);

    // Pad drivers / receivers (see the FlexiCore4 generator).
    Builder io = top.scoped("core");
    Word pc_pad, oport_pad;
    for (unsigned i = 0; i < 7; ++i)
        pc_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {pc[i]}, "core"));
    for (unsigned i = 0; i < W; ++i)
        oport_pad.push_back(io.netlist().addCell(
            CellType::BUF_X2, {oport[i]}, "core"));
    for (NetId in : instr)
        io.buf(in);
    for (NetId in : iport)
        io.buf(in);

    for (unsigned i = 0; i < 7; ++i)
        nl->addOutput("pc" + std::to_string(i), pc_pad[i]);
    for (unsigned i = 0; i < W; ++i)
        nl->addOutput("oport" + std::to_string(i), oport_pad[i]);

    // Stable architectural-state labels (see FlexiCore4).
    auto label = [&](const Word &w, const std::string &prefix) {
        for (unsigned i = 0; i < w.size(); ++i)
            nl->nameNet(w[i], prefix + std::to_string(i));
    };
    label(pc, "pc_q");
    label(acc, "acc");
    label(oport, "oport_q");
    for (unsigned w = 2; w < NWORDS; ++w)
        label(words[w], "mem" + std::to_string(w) + "_");
    nl->nameNet(flag, "ldb_flag");

    nl->elaborate();
    return nl;
}

} // namespace flexi
