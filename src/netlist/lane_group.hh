/**
 * @file
 * Wide-lane compiled netlist evaluator: structure-of-arrays lane
 * groups of W uint64_t words per net (W = 1/4/8 -> 64/256/512
 * lanes) executed through the fused-run program compiled at
 * elaborate() time.
 *
 * A LaneGroup generalizes LaneBatch past the 64 lanes of a single
 * machine word. Net values become lane *groups* — W contiguous
 * uint64_t words per net, laid out `val[net * W + w]` so bit L of
 * word w is the value of net N in lane w*64 + L — and the per-step
 * inner loop strides the W words of each net at unit distance, which
 * the compiler auto-vectorizes. Force-mask blending, DFF commits,
 * and toggle counting all run over the same unit-stride groups.
 *
 * Dispatch is compiled, not interpreted: elaborate() fuses adjacent
 * same-WordOp plan steps into straight-line runs (EvalPlan::runBegin
 * / runOp), and the evaluator threads between per-op code blocks via
 * computed goto (GCC/Clang `&&label`), falling back to an
 * indirect-threaded function table on other compilers. Per-step op
 * classification — the switch LaneBatch executes 64 lanes at a time
 * — disappears entirely; the formal checker's word-plan encoding
 * (NetlistEncodeMode::WordPlan) proves the fused-run program cone-
 * equivalent to the CellInst reference semantics, so the dispatch
 * path itself is inside the SAT proof.
 *
 * State semantics mirror LaneBatch (and the scalar Netlist) exactly,
 * at bit granularity: per-lane stuck/transient force groups blended
 * with `v = (v & ~m) | (fval & m)`, DFF state committed with the
 * force-masked blend on the Q net, opt-in per-lane toggle counts
 * bit-identical to a scalar run of the same faulted instance, and a
 * trailing always-zero scratch group backing the plan's padded input
 * slots. Differential tests pit this evaluator against the scalar
 * compiled plan, evaluateReference(), and the 64-lane LaneBatch.
 *
 * Lanes above lanes() exist physically but are dead: their fault
 * state can't be set, their values are never read, and the lane
 * masks keep toggle counting away from them.
 */

#ifndef FLEXI_NETLIST_LANE_GROUP_HH
#define FLEXI_NETLIST_LANE_GROUP_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hh"

namespace flexi
{

class LaneGroup
{
  public:
    /** Lanes per uint64_t word. */
    static constexpr unsigned kWordLanes = 64;
    /** Supported group widths, in words per net. */
    static constexpr unsigned kMaxWords = 8;
    static constexpr unsigned kMaxLanes = kWordLanes * kMaxWords;

    /**
     * Words per net for a lane count: the smallest supported group
     * width (1, 4, or 8 words -> 64, 256, 512 lanes) that covers
     * @p lanes. Fatal on 0 or above kMaxLanes.
     */
    static unsigned wordsFor(unsigned lanes);

    /**
     * Build a group of @p lanes lanes (1..512) over the structure of
     * @p golden, which must be elaborated. Fault state starts empty;
     * the group is reset() to power-on values.
     */
    explicit LaneGroup(const Netlist &golden,
                       unsigned lanes = kMaxLanes);

    unsigned lanes() const { return lanes_; }
    /** Group width in words per net (1, 4, or 8). */
    unsigned words() const { return words_; }
    /** Live-lane mask of word @p w (bit L = lane w*64 + L bound). */
    uint64_t laneMaskWord(unsigned w) const { return laneMask_[w]; }
    /** Clock edges seen since construction (monotonic, as scalar). */
    uint64_t cycle() const { return cycle_; }
    size_t numNets() const { return s_->nextNet; }
    size_t numDffs() const { return s_->dffCells.size(); }

    /** @name Per-lane fault state (mirrors Netlist exactly) */
    ///@{
    void injectFault(unsigned lane, const StuckFault &fault);
    void clearFaults();
    void injectTransient(unsigned lane, const TransientFault &fault);
    void clearTransients();
    /** Flip the stored state bit of DFF @p index in one lane. */
    void flipDff(unsigned lane, size_t index);
    ///@}

    /** @name Per-lane state snapshot (mirrors Netlist exactly) */
    ///@{
    /**
     * Snapshot / restore one lane's architectural state (all DFF
     * bits) in the scalar saveDffState() layout — one byte per DFF,
     * commit order — so a lane snapshot restores into a scalar clone
     * and vice versa. restoreDffState() leaves the lane's
     * combinational nets stale (drive inputs and evaluate() before
     * sampling); faults, toggle counters, and cycle() are not part
     * of the snapshot, exactly as in the scalar API.
     */
    std::vector<uint8_t> saveDffState(unsigned lane) const;
    void restoreDffState(unsigned lane,
                         const std::vector<uint8_t> &state);
    ///@}

    /** @name Simulation */
    ///@{
    /** All lanes back to power-on state; cycle() keeps counting. */
    void reset();
    void evaluate();
    void clockEdge();
    ///@}

    /**
     * The compiled-plan fan-in cone of a set of output buses,
     * recompiled as a self-contained mini-program: the cone's steps
     * (in execution order) with their operands copied out into
     * contiguous arrays, re-fused into same-op runs, plus the DFF
     * indices whose Q nets the cone (or the pads themselves) read.
     * Pure function of the shared structure; build once per driver.
     */
    struct PadCone
    {
        /** Plan-step indices of the cone, in execution order. */
        std::vector<uint32_t> steps;
        /** @name Compiled cone program (parallel to steps) */
        ///@{
        std::vector<NetId> in;   ///< 3 slots per cone step
        std::vector<NetId> out;
        std::vector<uint8_t> lut;
        std::vector<uint32_t> runBegin;
        std::vector<uint8_t> runOp;
        ///@}
        /** DFFs whose Q net feeds a cone step or is itself a pad. */
        std::vector<uint32_t> dffs;
    };
    PadCone padCone(const std::vector<const BusHandle *> &buses) const;

    /**
     * Partial post-clock evaluate: re-expose the DFF state the cone
     * reads and recompute only the steps of @p cone, leaving every
     * other net stale. For the cone's nets this is bit-identical to a full
     * evaluate() (same force refresh, same Q-expose, same step
     * semantics in the same order) at a fraction of the cost — the
     * lockstep drivers use it between clockEdge() and the PC/OPORT
     * pad sample, where nothing else is read before the next full
     * evaluate() overwrites all combinational state anyway. Fatal
     * when toggle counting is enabled: per-lane toggle totals are
     * only defined against full evaluation passes.
     */
    void exposeState(const PadCone &cone);

    /** @name Bus drive / sample */
    ///@{
    /** Drive the same value into an input bus on every lane. */
    void setBus(const BusHandle &bus, unsigned value);
    /**
     * Drive one named primary input with a different bit per lane
     * (bit L of word w = lane w*64+L's value; @p lane_words has
     * words() entries). Name-map lookup per call — differential-test
     * convenience, not a hot path.
     */
    void setInputLanes(const std::string &name,
                       const uint64_t *lane_words);
    /**
     * Drive a different value per lane (values[0..lanes()-1]); dead
     * lanes are driven with 0.
     */
    void setBusLanes(const BusHandle &bus, const uint32_t *values);
    /**
     * Byte fast path of setBusLanes for buses at most 8 bits wide:
     * one lane value per byte, so a block of 8 lanes loads as a
     * single word and one transpose scatters it. Bits of a value at
     * or above the bus width are ignored (as in setBusLanes).
     */
    void setBusLanesBytes(const BusHandle &bus,
                          const uint8_t *values);
    /** Sample a bus in one lane. */
    unsigned bus(const BusHandle &bus, unsigned lane) const;
    /** Sample a bus across all lanes into out[0..lanes()-1]. */
    void gatherBus(const BusHandle &bus, uint32_t *out) const;
    /** Byte fast path of gatherBus for buses at most 8 bits wide. */
    void gatherBusBytes(const BusHandle &bus, uint8_t *out) const;
    /**
     * Per-lane indexed drive: set @p data_bus in every lane to
     * `table[a]` where `a` is that lane's current @p addr_bus value
     * — the instruction-fetch pattern of the lockstep drivers, fused
     * so the address gather, table lookup, and data scatter share
     * one pass over each 8-lane block instead of a gather call, a
     * per-lane loop, and a scatter call. Both buses must be at most
     * 8 bits wide and share no nets (address pads are outputs, data
     * pads inputs, so they never do); @p table must hold
     * `1 << addr_width` entries — pad the backing store up to that
     * power of two so no per-lane bounds check is needed.
     */
    void driveBusFromTable(const BusHandle &addr_bus,
                           const BusHandle &data_bus,
                           const uint8_t *table);
    /**
     * Per-word mask of live lanes whose bus value differs from
     * @p value: bit L of diff[w] is set iff lane w*64+L reads a
     * value != @p value. Writes words() entries of @p diff. The
     * bit-domain equivalent of gatherBus + a per-lane compare, at a
     * few XORs per bus bit.
     */
    void busMismatch(const BusHandle &bus, unsigned value,
                     uint64_t *diff) const;
    bool netValue(NetId net, unsigned lane) const;
    ///@}

    /** @name Per-lane toggle counting (opt-in) */
    ///@{
    /**
     * Enable/disable per-lane toggle accumulation. Off by default:
     * the population studies don't consume per-die activity, and
     * counting costs a popcount loop per toggled cell. Enabling
     * (re)zeroes the counters.
     */
    void enableToggles(bool on);
    /**
     * Toggle counts of one lane, per cell, in the same layout as
     * Netlist::toggleCounts(). Requires enableToggles(true).
     */
    std::vector<uint64_t> toggleCounts(unsigned lane) const;
    ///@}

  private:
    template <unsigned W, bool kToggles> void evaluateImpl();
    template <unsigned W, bool kToggles> void clockEdgeImpl();
    template <unsigned W> void exposeStateImpl(const PadCone &cone);
    void applyFaultForces();
    void rebuildForceIndex();
    void checkLane(unsigned lane) const;

    /** One lane's stuck-at / transient fault record. */
    struct LaneFault
    {
        unsigned lane;
        StuckFault f;
    };
    struct LaneTransient
    {
        unsigned lane;
        TransientFault f;
    };

    std::shared_ptr<const Netlist::Structure> s_;
    unsigned lanes_;
    unsigned words_;
    std::array<uint64_t, kMaxWords> laneMask_{};

    /** SoA lane groups: W words per net, `vec[net * W + w]`. */
    std::vector<uint64_t> val_;    ///< per net + trailing scratch 0s
    std::vector<uint64_t> dffState_;
    std::vector<uint64_t> mask_;   ///< lane bit set where forced
    std::vector<uint64_t> fval_;
    std::vector<LaneFault> faults_;
    std::vector<LaneTransient> transients_;

    /**
     * Sparse force index, rebuilt lazily whenever the force masks
     * change. A net is blend-covered when a plan step produces it or
     * it is a DFF Q — its forces are applied by the per-step /
     * per-commit blends, so only faults on the remaining (primary)
     * nets need the direct value writes in applyFaultForces, and
     * only DFFs with a forced Q need the Q-expose blend at all.
     */
    std::vector<uint8_t> covered_;          ///< per net
    std::vector<uint8_t> qForced_;          ///< per DFF
    std::vector<uint32_t> qForcedList_;     ///< DFFs with forced Q
    std::vector<uint32_t> qFreeList_;       ///< DFFs without
    std::vector<uint32_t> primaryFaults_;   ///< indices into faults_
    std::vector<uint32_t> primaryTransients_;
    /**
     * Force-split run program: the shared fused runs re-split so
     * that only steps whose output group carries a force bit
     * dispatch to a blending kernel; every other step runs
     * blend-free. Codes 0..kNumWordOps-1 blend, +kNumWordOps don't.
     */
    std::vector<uint32_t> fsRunBegin_;
    std::vector<uint8_t> fsRunOp_;
    /** Last seen in-window state per transient (change detector). */
    std::vector<uint8_t> transientActive_;
    bool forceDirty_ = true;

    uint64_t cycle_ = 0;
    bool countToggles_ = false;
    std::vector<uint64_t> toggles_;   ///< [cell * words()*64 + lane]
};

} // namespace flexi

#endif // FLEXI_NETLIST_LANE_GROUP_HH
