#include "lane_group.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

// Threaded (computed-goto) dispatch needs the GNU `&&label` /
// `goto *p` extension; every other compiler gets the portable
// indirect-threaded function table, which executes the identical
// per-run kernels through one indirect call per fused run.
#if defined(__GNUC__) || defined(__clang__)
#define FLEXI_THREADED_DISPATCH 1
#else
#define FLEXI_THREADED_DISPATCH 0
#endif

namespace flexi
{

namespace
{

/**
 * Native word expression per WordOp, over input words av/bv/cv.
 * Order must match the WordOp enum; Lut is handled separately (it
 * needs the per-step truth table).
 */
#define FLEXI_WORD_OPS(X)                                             \
    X(Buf, av)                                                        \
    X(Inv, ~av)                                                       \
    X(Nand2, ~(av & bv))                                              \
    X(Nand3, ~(av & bv & cv))                                         \
    X(Nor2, ~(av | bv))                                               \
    X(Nor3, ~(av | bv | cv))                                          \
    X(Xor2, av ^ bv)                                                  \
    X(Xnor2, ~(av ^ bv))                                              \
    X(Mux2, av ^ ((av ^ bv) & cv))

/** Generic fallback: minterm expansion of the step's 8-bit truth
 *  table. Padded slots read the always-zero scratch group, whose
 *  complemented literal is all-ones — exactly the scalar semantics
 *  of a padded index bit. Computes the identical function to the
 *  native expression for every op. */
inline uint64_t
lutWord(uint64_t av, uint64_t bv, uint64_t cv, uint8_t lut)
{
    uint64_t v = 0;
    for (unsigned t = 0; t < 8; ++t) {
        if (!((lut >> t) & 1))
            continue;
        v |= ((t & 1) ? av : ~av) & ((t & 2) ? bv : ~bv) &
             ((t & 4) ? cv : ~cv);
    }
    return v;
}

/** Everything a run kernel touches, gathered once per evaluate(). */
struct RunCtx
{
    const NetId *in;
    const NetId *out;
    const uint8_t *lut;
    uint64_t *val;
    const uint64_t *mask;
    const uint64_t *fval;
    uint64_t *toggles;
    const uint32_t *cell;
    const uint64_t *laneMask;
};

/**
 * Execute plan steps [begin, end) — one fused run — computing each
 * output word group with @p fn; kBlend selects whether the per-lane
 * force groups are blended in (the force-split program only
 * dispatches blending kernels for steps that actually carry a force
 * bit). The W-word inner loop is the auto-vectorization target:
 * every access strides unit distance through the SoA groups.
 */
template <unsigned W, bool kToggles, bool kBlend, class Fn>
inline void
runSteps(const RunCtx &ctx, size_t begin, size_t end, Fn fn)
{
    for (size_t i = begin; i < end; ++i) {
        const uint64_t *a = ctx.val + size_t(ctx.in[3 * i]) * W;
        const uint64_t *b = ctx.val + size_t(ctx.in[3 * i + 1]) * W;
        const uint64_t *c = ctx.val + size_t(ctx.in[3 * i + 2]) * W;
        size_t o = size_t(ctx.out[i]) * W;
        uint64_t *ov = ctx.val + o;
        const uint64_t *m = ctx.mask + o;
        const uint64_t *fv = ctx.fval + o;
        uint8_t lut = ctx.lut[i];
        if constexpr (!kToggles) {
            for (unsigned w = 0; w < W; ++w) {
                uint64_t v = fn(a[w], b[w], c[w], lut);
                if constexpr (kBlend)
                    v = (v & ~m[w]) | (fv[w] & m[w]);
                ov[w] = v;
            }
        } else {
            uint64_t *tg =
                ctx.toggles +
                size_t(ctx.cell[i]) * (W * LaneGroup::kWordLanes);
            for (unsigned w = 0; w < W; ++w) {
                uint64_t v = fn(a[w], b[w], c[w], lut);
                v = (v & ~m[w]) | (fv[w] & m[w]);
                uint64_t diff = (ov[w] ^ v) & ctx.laneMask[w];
                uint64_t *tgw = tg + size_t(w) * LaneGroup::kWordLanes;
                while (diff) {
                    ++tgw[__builtin_ctzll(diff)];
                    diff &= diff - 1;
                }
                ov[w] = v;
            }
        }
    }
}

/** Per-op run kernels and the indirect-threaded dispatch table. */
template <unsigned W, bool kToggles, bool kBlend>
struct RunKernels
{
    using Fn = void (*)(const RunCtx &, size_t, size_t);

#define FLEXI_OP_FN(name, expr)                                       \
    static void name(const RunCtx &ctx, size_t begin, size_t end)     \
    {                                                                 \
        runSteps<W, kToggles, kBlend>(                                \
            ctx, begin, end,                                          \
            [](uint64_t av, uint64_t bv, uint64_t cv, uint8_t) {      \
                (void)av;                                             \
                (void)bv;                                             \
                (void)cv;                                             \
                return static_cast<uint64_t>(expr);                   \
            });                                                       \
    }
    FLEXI_WORD_OPS(FLEXI_OP_FN)
#undef FLEXI_OP_FN

    static void
    Lut(const RunCtx &ctx, size_t begin, size_t end)
    {
        runSteps<W, kToggles, kBlend>(ctx, begin, end, lutWord);
    }

#define FLEXI_OP_ENTRY(name, expr) &RunKernels::name,
    static constexpr Fn table[] = {FLEXI_WORD_OPS(FLEXI_OP_ENTRY)
                                       &RunKernels::Lut};
#undef FLEXI_OP_ENTRY
};

} // namespace

unsigned
LaneGroup::wordsFor(unsigned lanes)
{
    if (lanes == 0 || lanes > kMaxLanes)
        panic("LaneGroup: bad lane count %u", lanes);
    if (lanes <= kWordLanes)
        return 1;
    if (lanes <= 4 * kWordLanes)
        return 4;
    return 8;
}

LaneGroup::LaneGroup(const Netlist &golden, unsigned lanes)
    : s_(golden.s_), lanes_(lanes), words_(wordsFor(lanes))
{
    if (!golden.elaborated())
        panic("LaneGroup: netlist '%s' must be elaborated",
              s_->name.c_str());
    for (unsigned w = 0; w < words_; ++w) {
        unsigned base = w * kWordLanes;
        if (lanes_ >= base + kWordLanes)
            laneMask_[w] = ~0ull;
        else if (lanes_ > base)
            laneMask_[w] = (1ull << (lanes_ - base)) - 1;
    }
    // One extra trailing group: the always-0 scratch net backing the
    // padded input slots of the plan (same layout as the scalar
    // evaluator's trailing scratch byte, W words wide).
    val_.assign(size_t(s_->nextNet + 1) * words_, 0);
    dffState_.assign(s_->dffCells.size() * words_, 0);
    mask_.assign(size_t(s_->nextNet) * words_, 0);
    fval_.assign(size_t(s_->nextNet) * words_, 0);
    covered_.assign(s_->nextNet, 0);
    for (NetId net : s_->plan.out)
        covered_[net] = 1;
    for (NetId net : s_->plan.dffQ)
        covered_[net] = 1;
    reset();
}

void
LaneGroup::rebuildForceIndex()
{
    const Netlist::EvalPlan &plan = s_->plan;
    qForced_.assign(plan.dffQ.size(), 0);
    qForcedList_.clear();
    qFreeList_.clear();
    for (size_t i = 0; i < qForced_.size(); ++i) {
        size_t q = size_t(plan.dffQ[i]) * words_;
        for (unsigned w = 0; w < words_; ++w)
            if (mask_[q + w]) {
                qForced_[i] = 1;
                break;
            }
        if (qForced_[i])
            qForcedList_.push_back(static_cast<uint32_t>(i));
        else
            qFreeList_.push_back(static_cast<uint32_t>(i));
    }
    primaryFaults_.clear();
    for (size_t k = 0; k < faults_.size(); ++k)
        if (!covered_[faults_[k].f.net])
            primaryFaults_.push_back(static_cast<uint32_t>(k));
    primaryTransients_.clear();
    for (size_t k = 0; k < transients_.size(); ++k)
        if (!covered_[transients_[k].f.net])
            primaryTransients_.push_back(static_cast<uint32_t>(k));

    // Select a kernel flavor per fused run: blending a step whose
    // output group carries no force bit is the identity, so a run
    // needs the blending kernels only when at least one of its steps
    // has a forced output. Keeping the shared run boundaries (rather
    // than re-splitting at every forced step) keeps the dispatch
    // count — and its branch-prediction footprint — independent of
    // the fault population.
    size_t nruns = plan.runOp.size();
    fsRunBegin_.assign(plan.runBegin.begin(), plan.runBegin.end());
    fsRunOp_.resize(nruns);
    for (size_t r = 0; r < nruns; ++r) {
        bool forced = false;
        for (uint32_t s = plan.runBegin[r];
             !forced && s < plan.runBegin[r + 1]; ++s) {
            size_t o = size_t(plan.out[s]) * words_;
            for (unsigned w = 0; w < words_; ++w)
                forced |= mask_[o + w] != 0;
        }
        fsRunOp_[r] =
            forced ? plan.runOp[r]
                   : static_cast<uint8_t>(plan.runOp[r] + kNumWordOps);
    }
    forceDirty_ = false;
}

void
LaneGroup::checkLane(unsigned lane) const
{
    if (lane >= lanes_)
        panic("LaneGroup: lane %u out of range (%u lanes)", lane,
              lanes_);
}

void
LaneGroup::injectFault(unsigned lane, const StuckFault &fault)
{
    checkLane(lane);
    if (fault.net >= s_->nextNet)
        panic("injectFault: bad net %u", fault.net);
    faults_.push_back({lane, fault});
    size_t idx = size_t(fault.net) * words_ + lane / kWordLanes;
    uint64_t bit = 1ull << (lane % kWordLanes);
    mask_[idx] |= bit;
    fval_[idx] = (fval_[idx] & ~bit) | (fault.value ? bit : 0);
    forceDirty_ = true;
}

void
LaneGroup::clearFaults()
{
    for (const auto &f : faults_) {
        size_t idx = size_t(f.f.net) * words_ + f.lane / kWordLanes;
        uint64_t bit = 1ull << (f.lane % kWordLanes);
        mask_[idx] &= ~bit;
        fval_[idx] &= ~bit;
    }
    faults_.clear();
    forceDirty_ = true;
}

void
LaneGroup::injectTransient(unsigned lane, const TransientFault &fault)
{
    checkLane(lane);
    if (fault.net >= s_->nextNet)
        panic("injectTransient: bad net %u", fault.net);
    if (fault.untilCycle <= fault.fromCycle)
        panic("injectTransient: empty window [%llu, %llu)",
              static_cast<unsigned long long>(fault.fromCycle),
              static_cast<unsigned long long>(fault.untilCycle));
    transients_.push_back({lane, fault});
    forceDirty_ = true;
}

void
LaneGroup::clearTransients()
{
    // Release any currently forced windows, then let the stuck-at
    // faults reassert their own force bits (mirrors the scalar
    // clearTransients at bit granularity).
    for (const auto &t : transients_) {
        size_t idx = size_t(t.f.net) * words_ + t.lane / kWordLanes;
        uint64_t bit = 1ull << (t.lane % kWordLanes);
        mask_[idx] &= ~bit;
        fval_[idx] &= ~bit;
    }
    transients_.clear();
    transientActive_.clear();
    for (const auto &f : faults_) {
        size_t idx = size_t(f.f.net) * words_ + f.lane / kWordLanes;
        uint64_t bit = 1ull << (f.lane % kWordLanes);
        mask_[idx] |= bit;
        fval_[idx] = (fval_[idx] & ~bit) | (f.f.value ? bit : 0);
    }
    forceDirty_ = true;
}

void
LaneGroup::flipDff(unsigned lane, size_t index)
{
    checkLane(lane);
    if (index >= s_->dffCells.size())
        panic("flipDff: bad DFF %zu", index);
    dffState_[index * words_ + lane / kWordLanes] ^=
        1ull << (lane % kWordLanes);
}

std::vector<uint8_t>
LaneGroup::saveDffState(unsigned lane) const
{
    checkLane(lane);
    size_t word = lane / kWordLanes;
    unsigned bit = lane % kWordLanes;
    std::vector<uint8_t> state(s_->dffCells.size());
    for (size_t i = 0; i < state.size(); ++i)
        state[i] = (dffState_[i * words_ + word] >> bit) & 1;
    return state;
}

void
LaneGroup::restoreDffState(unsigned lane,
                           const std::vector<uint8_t> &state)
{
    checkLane(lane);
    if (state.size() != s_->dffCells.size())
        panic("restoreDffState: %zu bits, netlist has %zu",
              state.size(), s_->dffCells.size());
    size_t word = lane / kWordLanes;
    uint64_t bit = 1ull << (lane % kWordLanes);
    for (size_t i = 0; i < state.size(); ++i) {
        uint64_t &v = dffState_[i * words_ + word];
        v = state[i] ? v | bit : v & ~bit;
    }
}

void
LaneGroup::reset()
{
    for (size_t i = 0; i < s_->dffCells.size(); ++i) {
        uint64_t v = s_->dffInit[i] ? ~0ull : 0;
        for (unsigned w = 0; w < words_; ++w)
            dffState_[i * words_ + w] = v;
    }
    std::fill(val_.begin(), val_.end(), 0);
    for (unsigned w = 0; w < words_; ++w)
        val_[size_t(s_->one) * words_ + w] = ~0ull;
}

void
LaneGroup::applyFaultForces()
{
    // Per-lane mirror of the scalar force rebuild: transient windows
    // open and close against the group cycle counter; stuck-at bits
    // reassert themselves once a lane's window closes. The rebuild
    // only has to run when a window actually opened or closed (or
    // the fault set itself changed) — between boundaries the masks
    // are already exact.
    bool rebuild = false;
    if (!transients_.empty()) {
        if (transientActive_.size() != transients_.size()) {
            transientActive_.assign(transients_.size(), 0xFF);
            rebuild = true;
        }
        for (size_t i = 0; i < transients_.size(); ++i) {
            const auto &t = transients_[i];
            uint8_t act = cycle_ >= t.f.fromCycle &&
                          cycle_ < t.f.untilCycle;
            if (act != transientActive_[i]) {
                transientActive_[i] = act;
                rebuild = true;
            }
        }
    }
    if (!transients_.empty() && (rebuild || forceDirty_)) {
        for (const auto &t : transients_) {
            size_t idx =
                size_t(t.f.net) * words_ + t.lane / kWordLanes;
            uint64_t bit = 1ull << (t.lane % kWordLanes);
            mask_[idx] &= ~bit;
            fval_[idx] &= ~bit;
        }
        for (const auto &f : faults_) {
            size_t idx =
                size_t(f.f.net) * words_ + f.lane / kWordLanes;
            uint64_t bit = 1ull << (f.lane % kWordLanes);
            mask_[idx] |= bit;
            fval_[idx] = (fval_[idx] & ~bit) | (f.f.value ? bit : 0);
        }
        for (const auto &t : transients_) {
            if (cycle_ >= t.f.fromCycle && cycle_ < t.f.untilCycle) {
                size_t idx =
                    size_t(t.f.net) * words_ + t.lane / kWordLanes;
                uint64_t bit = 1ull << (t.lane % kWordLanes);
                mask_[idx] |= bit;
                fval_[idx] =
                    (fval_[idx] & ~bit) | (t.f.value ? bit : 0);
            }
        }
        // Window opens/closes move force bits between nets; the
        // sparse index below must track them.
        forceDirty_ = true;
    }

    if (forceDirty_)
        rebuildForceIndex();

    // Apply fault forcing to primary/state nets. Cell outputs and
    // DFF Q nets are blend-covered — their producing step (or the
    // Q-expose) applies the force before any consumer reads them —
    // so only the handful of faults on primary nets need a value
    // write here, not the whole fault list. Toggle counting is the
    // exception: the counters difference each step against the
    // previously *stored* word, so a force window opening must land
    // in val_ before the pass for every faulted net — exactly the
    // scalar evaluator's order — or the blend would count an edge
    // the scalar run never saw.
    if (countToggles_) {
        for (const LaneFault &f : faults_) {
            size_t idx =
                size_t(f.f.net) * words_ + f.lane / kWordLanes;
            uint64_t bit = 1ull << (f.lane % kWordLanes);
            val_[idx] = (val_[idx] & ~bit) | (f.f.value ? bit : 0);
        }
        for (const LaneTransient &t : transients_) {
            if (cycle_ >= t.f.fromCycle && cycle_ < t.f.untilCycle) {
                size_t idx =
                    size_t(t.f.net) * words_ + t.lane / kWordLanes;
                uint64_t bit = 1ull << (t.lane % kWordLanes);
                val_[idx] =
                    (val_[idx] & ~bit) | (t.f.value ? bit : 0);
            }
        }
        return;
    }
    for (uint32_t k : primaryFaults_) {
        const LaneFault &f = faults_[k];
        size_t idx = size_t(f.f.net) * words_ + f.lane / kWordLanes;
        uint64_t bit = 1ull << (f.lane % kWordLanes);
        val_[idx] = (val_[idx] & ~bit) | (f.f.value ? bit : 0);
    }
    for (uint32_t k : primaryTransients_) {
        const LaneTransient &t = transients_[k];
        if (cycle_ >= t.f.fromCycle && cycle_ < t.f.untilCycle) {
            size_t idx =
                size_t(t.f.net) * words_ + t.lane / kWordLanes;
            uint64_t bit = 1ull << (t.lane % kWordLanes);
            val_[idx] = (val_[idx] & ~bit) | (t.f.value ? bit : 0);
        }
    }
}

template <unsigned W, bool kToggles>
void
LaneGroup::evaluateImpl()
{
    applyFaultForces();

    // Expose DFF state on Q nets; the force-masked blend runs only
    // for DFFs that actually carry a forced Q (the lists are fresh —
    // the force apply above rebuilt the index if anything changed).
    const Netlist::EvalPlan &plan = s_->plan;
    for (uint32_t i : qFreeList_) {
        size_t q = size_t(plan.dffQ[i]) * W;
        const uint64_t *st = dffState_.data() + size_t(i) * W;
        for (unsigned w = 0; w < W; ++w)
            val_[q + w] = st[w];
    }
    for (uint32_t i : qForcedList_) {
        size_t q = size_t(plan.dffQ[i]) * W;
        const uint64_t *st = dffState_.data() + size_t(i) * W;
        for (unsigned w = 0; w < W; ++w) {
            uint64_t m = mask_[q + w];
            val_[q + w] = (st[w] & ~m) | (fval_[q + w] & m);
        }
    }

    RunCtx ctx{plan.in.data(),
               plan.out.data(),
               plan.lut.data(),
               val_.data(),
               mask_.data(),
               fval_.data(),
               kToggles ? toggles_.data() : nullptr,
               plan.cell.data(),
               laneMask_.data()};

    // The toggle-counting path sticks to the shared always-blend
    // program (its kernels blend unconditionally anyway); the plain
    // path runs the force-split program, whose codes at or above
    // kNumWordOps select the blend-free kernel variants.
    const uint32_t *rb =
        kToggles ? plan.runBegin.data() : fsRunBegin_.data();
    const uint8_t *rop =
        kToggles ? plan.runOp.data() : fsRunOp_.data();
    size_t nruns = kToggles ? plan.runOp.size() : fsRunOp_.size();

#if FLEXI_THREADED_DISPATCH
    // Threaded code: each fused run jumps straight to its op block
    // and the block's tail dispatches the next run — no dispatch
    // loop, no per-step classification. Blend-free blocks mirror the
    // blending ones at code + kNumWordOps (under kToggles they alias
    // the blending blocks; the shared program never emits them).
#define FLEXI_OP_LABEL(name, expr) &&lbl_##name,
#define FLEXI_OP_LABEL_NB(name, expr)                                 \
    kToggles ? &&lbl_##name : &&lbl_nb_##name,
    const void *labels[] = {FLEXI_WORD_OPS(FLEXI_OP_LABEL) &&lbl_Lut,
                            FLEXI_WORD_OPS(FLEXI_OP_LABEL_NB)(
                                kToggles ? &&lbl_Lut : &&lbl_nb_Lut)};
#undef FLEXI_OP_LABEL
#undef FLEXI_OP_LABEL_NB
    size_t r = 0;
    size_t begin = 0, end = 0;
#define FLEXI_DISPATCH()                                              \
    do {                                                              \
        if (r == nruns)                                               \
            goto lbl_done;                                            \
        begin = rb[r];                                                \
        end = rb[r + 1];                                              \
        goto *labels[rop[r++]];                                       \
    } while (0)

    FLEXI_DISPATCH();
#define FLEXI_OP_CASE(name, expr)                                     \
    lbl_##name:                                                       \
    runSteps<W, kToggles, true>(                                      \
        ctx, begin, end,                                              \
        [](uint64_t av, uint64_t bv, uint64_t cv, uint8_t) {          \
            (void)av;                                                 \
            (void)bv;                                                 \
            (void)cv;                                                 \
            return static_cast<uint64_t>(expr);                       \
        });                                                           \
    FLEXI_DISPATCH();
    FLEXI_WORD_OPS(FLEXI_OP_CASE)
#undef FLEXI_OP_CASE
lbl_Lut:
    runSteps<W, kToggles, true>(ctx, begin, end, lutWord);
    FLEXI_DISPATCH();
#define FLEXI_OP_CASE_NB(name, expr)                                  \
    lbl_nb_##name:                                                    \
    runSteps<W, kToggles, false>(                                     \
        ctx, begin, end,                                              \
        [](uint64_t av, uint64_t bv, uint64_t cv, uint8_t) {          \
            (void)av;                                                 \
            (void)bv;                                                 \
            (void)cv;                                                 \
            return static_cast<uint64_t>(expr);                       \
        });                                                           \
    FLEXI_DISPATCH();
    FLEXI_WORD_OPS(FLEXI_OP_CASE_NB)
#undef FLEXI_OP_CASE_NB
lbl_nb_Lut:
    runSteps<W, kToggles, false>(ctx, begin, end, lutWord);
    FLEXI_DISPATCH();
#undef FLEXI_DISPATCH
lbl_done:;
#else
    // Portable indirect-threaded dispatch: one function-table call
    // per fused run.
    for (size_t r = 0; r < nruns; ++r) {
        uint8_t code = rop[r];
        if (code < kNumWordOps)
            RunKernels<W, kToggles, true>::table[code](ctx, rb[r],
                                                       rb[r + 1]);
        else
            RunKernels<W, kToggles, false>::table[code - kNumWordOps](
                ctx, rb[r], rb[r + 1]);
    }
#endif
}

void
LaneGroup::evaluate()
{
    switch (words_) {
      case 1:
        countToggles_ ? evaluateImpl<1, true>()
                      : evaluateImpl<1, false>();
        break;
      case 4:
        countToggles_ ? evaluateImpl<4, true>()
                      : evaluateImpl<4, false>();
        break;
      default:
        countToggles_ ? evaluateImpl<8, true>()
                      : evaluateImpl<8, false>();
        break;
    }
}

template <unsigned W, bool kToggles>
void
LaneGroup::clockEdgeImpl()
{
    if (forceDirty_)
        rebuildForceIndex();
    const Netlist::EvalPlan &plan = s_->plan;
    size_t nd = plan.dffD.size();
    for (size_t i = 0; i < nd; ++i) {
        const uint64_t *d = val_.data() + size_t(plan.dffD[i]) * W;
        size_t q = size_t(plan.dffQ[i]) * W;
        uint64_t *st = dffState_.data() + i * W;
        for (unsigned w = 0; w < W; ++w) {
            // Unconditional force blend: an unforced Q has mask 0,
            // so the blend is an identity — cheaper than a per-DFF
            // branch that mispredicts whenever forces are sparse.
            uint64_t dv = d[w];
            uint64_t m = mask_[q + w];
            dv = (dv & ~m) | (fval_[q + w] & m);
            if constexpr (kToggles) {
                uint64_t diff = (st[w] ^ dv) & laneMask_[w];
                uint64_t *tg =
                    toggles_.data() +
                    size_t(plan.dffCell[i]) * (W * kWordLanes) +
                    size_t(w) * kWordLanes;
                while (diff) {
                    ++tg[__builtin_ctzll(diff)];
                    diff &= diff - 1;
                }
            }
            st[w] = dv;
        }
    }
    ++cycle_;
}

void
LaneGroup::clockEdge()
{
    switch (words_) {
      case 1:
        countToggles_ ? clockEdgeImpl<1, true>()
                      : clockEdgeImpl<1, false>();
        break;
      case 4:
        countToggles_ ? clockEdgeImpl<4, true>()
                      : clockEdgeImpl<4, false>();
        break;
      default:
        countToggles_ ? clockEdgeImpl<8, true>()
                      : clockEdgeImpl<8, false>();
        break;
    }
}

LaneGroup::PadCone
LaneGroup::padCone(const std::vector<const BusHandle *> &buses) const
{
    const Netlist::EvalPlan &plan = s_->plan;
    // Map net -> producing plan step.
    std::vector<uint32_t> producer(s_->nextNet, ~0u);
    for (size_t i = 0; i < plan.out.size(); ++i)
        producer[plan.out[i]] = static_cast<uint32_t>(i);

    PadCone cone;
    std::vector<uint8_t> seen(plan.out.size(), 0);
    std::vector<uint32_t> stack;
    auto push = [&](NetId net) {
        if (net >= s_->nextNet)
            return;   // scratch padding
        uint32_t step = producer[net];
        if (step != ~0u && !seen[step]) {
            seen[step] = 1;
            stack.push_back(step);
        }
    };
    for (const BusHandle *bus : buses)
        for (NetId net : bus->nets_)
            push(net);
    while (!stack.empty()) {
        uint32_t step = stack.back();
        stack.pop_back();
        cone.steps.push_back(step);
        for (unsigned k = 0; k < 3; ++k)
            push(plan.in[3 * step + k]);
    }
    // Execution order == plan order.
    std::sort(cone.steps.begin(), cone.steps.end());

    // Compile the cone into its own contiguous mini-program: copy
    // each step's operands out (the cone's plan indices are sparse,
    // the kernels want dense [begin, end) ranges) and re-fuse
    // adjacent same-op steps into runs.
    std::vector<uint8_t> stepOp(plan.out.size(), 0);
    for (size_t r = 0; r + 1 < plan.runBegin.size(); ++r)
        for (uint32_t s = plan.runBegin[r]; s < plan.runBegin[r + 1];
             ++s)
            stepOp[s] = plan.runOp[r];
    for (size_t k = 0; k < cone.steps.size(); ++k) {
        uint32_t step = cone.steps[k];
        for (unsigned i = 0; i < 3; ++i)
            cone.in.push_back(plan.in[3 * step + i]);
        cone.out.push_back(plan.out[step]);
        cone.lut.push_back(plan.lut[step]);
        if (k == 0 || stepOp[step] != cone.runOp.back()) {
            cone.runBegin.push_back(static_cast<uint32_t>(k));
            cone.runOp.push_back(stepOp[step]);
        }
    }
    cone.runBegin.push_back(
        static_cast<uint32_t>(cone.steps.size()));

    // The DFFs the cone actually reads: Q nets consumed by a cone
    // step, or exposed directly as a pad bit.
    std::vector<uint8_t> needed(s_->nextNet, 0);
    for (const BusHandle *bus : buses)
        for (NetId net : bus->nets_)
            needed[net] = 1;
    for (NetId net : cone.in)
        if (net < s_->nextNet)
            needed[net] = 1;
    for (size_t i = 0; i < plan.dffQ.size(); ++i)
        if (needed[plan.dffQ[i]])
            cone.dffs.push_back(static_cast<uint32_t>(i));
    return cone;
}

template <unsigned W>
void
LaneGroup::exposeStateImpl(const PadCone &cone)
{
    const Netlist::EvalPlan &plan = s_->plan;
    for (uint32_t i : cone.dffs) {
        size_t q = size_t(plan.dffQ[i]) * W;
        const uint64_t *st = dffState_.data() + i * W;
        if (qForced_[i]) {
            for (unsigned w = 0; w < W; ++w) {
                uint64_t m = mask_[q + w];
                val_[q + w] = (st[w] & ~m) | (fval_[q + w] & m);
            }
        } else {
            for (unsigned w = 0; w < W; ++w)
                val_[q + w] = st[w];
        }
    }

    // Run the cone's compiled mini-program through the same per-op
    // kernels as the full evaluate (a cone is a handful of runs, so
    // the indirect table is dispatch enough).
    RunCtx ctx{cone.in.data(), cone.out.data(), cone.lut.data(),
               val_.data(),    mask_.data(),    fval_.data(),
               nullptr,        nullptr,         laneMask_.data()};
    for (size_t r = 0; r < cone.runOp.size(); ++r)
        RunKernels<W, false, true>::table[cone.runOp[r]](
            ctx, cone.runBegin[r], cone.runBegin[r + 1]);
}

void
LaneGroup::exposeState(const PadCone &cone)
{
    if (countToggles_)
        panic("exposeState: toggle counting needs full evaluate()");
    applyFaultForces();
    switch (words_) {
      case 1:
        exposeStateImpl<1>(cone);
        break;
      case 4:
        exposeStateImpl<4>(cone);
        break;
      default:
        exposeStateImpl<8>(cone);
        break;
    }
}

void
LaneGroup::setBus(const BusHandle &bus, unsigned value)
{
    if (!bus.input_)
        panic("setBus: handle does not name an input bus");
    for (unsigned i = 0; i < bus.nets_.size(); ++i) {
        uint64_t v = ((value >> i) & 1u) ? ~0ull : 0;
        size_t o = size_t(bus.nets_[i]) * words_;
        for (unsigned w = 0; w < words_; ++w)
            val_[o + w] = v;
    }
}

void
LaneGroup::setInputLanes(const std::string &name,
                         const uint64_t *lane_words)
{
    auto it = s_->inputs.find(name);
    if (it == s_->inputs.end())
        panic("no input named '%s'", name.c_str());
    size_t o = size_t(it->second) * words_;
    for (unsigned w = 0; w < words_; ++w)
        val_[o + w] = lane_words[w] & laneMask_[w];
}

namespace
{

/**
 * Transpose an 8x8 bit matrix held as 8 row bytes of a uint64_t
 * (bit (r, c) = bit 8r + c); an involution, so the same kernel
 * serves both the scatter and the gather direction. Hacker's
 * Delight 7-3.
 */
inline uint64_t
transpose8x8(uint64_t x)
{
    uint64_t t;
    t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
    x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
    x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
    x ^= t ^ (t << 28);
    return x;
}

} // namespace

void
LaneGroup::setBusLanes(const BusHandle &bus, const uint32_t *values)
{
    if (!bus.input_)
        panic("setBusLanes: handle does not name an input bus");
    unsigned width = bus.nets_.size();
    for (unsigned i = 0; i < width; ++i) {
        size_t o = size_t(bus.nets_[i]) * words_;
        for (unsigned w = 0; w < words_; ++w)
            val_[o + w] = 0;
    }
    // Scatter lanes in blocks of 8 via 8x8 bit-matrix transposes:
    // byte s of 8 lane values in, one byte of 8 bus-bit words out —
    // ~8x fewer shift/or steps than the per-lane per-bit loop.
    unsigned nbytes = (width + 7) / 8;
    unsigned groups = lanes_ / 8;
    for (unsigned g = 0; g < groups; ++g) {
        unsigned w = g / 8;
        unsigned sub = g % 8;
        const uint32_t *v = values + g * 8;
        for (unsigned s = 0; s < nbytes; ++s) {
            uint64_t x = 0;
            for (unsigned k = 0; k < 8; ++k)
                x |= (uint64_t((v[k] >> (8 * s)) & 0xFF)) << (8 * k);
            if (!x)
                continue;
            uint64_t y = transpose8x8(x);
            unsigned hi = std::min(width - s * 8, 8u);
            for (unsigned i = 0; i < hi; ++i) {
                uint64_t byte = (y >> (8 * i)) & 0xFF;
                if (byte)
                    val_[size_t(bus.nets_[s * 8 + i]) * words_ + w] |=
                        byte << (8 * sub);
            }
        }
    }
    for (unsigned lane = groups * 8; lane < lanes_; ++lane) {
        uint64_t bit = 1ull << (lane % kWordLanes);
        unsigned w = lane / kWordLanes;
        for (unsigned i = 0; i < width; ++i)
            if ((values[lane] >> i) & 1u)
                val_[size_t(bus.nets_[i]) * words_ + w] |= bit;
    }
}

void
LaneGroup::setBusLanesBytes(const BusHandle &bus,
                            const uint8_t *values)
{
    if (!bus.input_)
        panic("setBusLanesBytes: handle does not name an input bus");
    unsigned width = bus.nets_.size();
    if (width > 8)
        panic("setBusLanesBytes: bus is %u bits wide (max 8)", width);
    for (unsigned i = 0; i < width; ++i) {
        size_t o = size_t(bus.nets_[i]) * words_;
        for (unsigned w = 0; w < words_; ++w)
            val_[o + w] = 0;
    }
    // One byte per lane: a block of 8 lanes is a single word load,
    // and one 8x8 transpose turns it into 8 bus-bit bytes.
    unsigned groups = lanes_ / 8;
    for (unsigned g = 0; g < groups; ++g) {
        unsigned w = g / 8;
        unsigned sub = g % 8;
        uint64_t x;
        std::memcpy(&x, values + g * 8, 8);
        if (!x)
            continue;
        uint64_t y = transpose8x8(x);
        for (unsigned i = 0; i < width; ++i) {
            uint64_t byte = (y >> (8 * i)) & 0xFF;
            if (byte)
                val_[size_t(bus.nets_[i]) * words_ + w] |=
                    byte << (8 * sub);
        }
    }
    for (unsigned lane = groups * 8; lane < lanes_; ++lane) {
        uint64_t bit = 1ull << (lane % kWordLanes);
        unsigned w = lane / kWordLanes;
        for (unsigned i = 0; i < width; ++i)
            if ((values[lane] >> i) & 1u)
                val_[size_t(bus.nets_[i]) * words_ + w] |= bit;
    }
}

void
LaneGroup::gatherBusBytes(const BusHandle &bus, uint8_t *out) const
{
    unsigned width = bus.nets_.size();
    if (width > 8)
        panic("gatherBusBytes: bus is %u bits wide (max 8)", width);
    unsigned groups = lanes_ / 8;
    for (unsigned g = 0; g < groups; ++g) {
        unsigned w = g / 8;
        unsigned sub = g % 8;
        uint64_t x = 0;
        for (unsigned i = 0; i < width; ++i)
            x |= ((val_[size_t(bus.nets_[i]) * words_ + w] >>
                   (8 * sub)) &
                  0xFF)
                 << (8 * i);
        uint64_t y = transpose8x8(x);
        std::memcpy(out + g * 8, &y, 8);
    }
    for (unsigned lane = groups * 8; lane < lanes_; ++lane) {
        unsigned w = lane / kWordLanes;
        unsigned shift = lane % kWordLanes;
        uint8_t v = 0;
        for (unsigned i = 0; i < width; ++i)
            v |= static_cast<uint8_t>(
                     (val_[size_t(bus.nets_[i]) * words_ + w] >>
                      shift) &
                     1ull)
                 << i;
        out[lane] = v;
    }
}

void
LaneGroup::driveBusFromTable(const BusHandle &addr_bus,
                             const BusHandle &data_bus,
                             const uint8_t *table)
{
    if (!data_bus.input_)
        panic("driveBusFromTable: data handle does not name an input "
              "bus");
    unsigned aw = addr_bus.nets_.size();
    unsigned dw = data_bus.nets_.size();
    if (aw > 8 || dw > 8)
        panic("driveBusFromTable: buses are %u/%u bits wide (max 8)",
              aw, dw);
    // Word-outer, 8-lane-block-inner: the address words load once
    // per net word into registers and the data words accumulate in
    // registers with a single store each — the per-block
    // read-modify-write stores a naive block loop would issue form
    // store-forwarding chains on the same data words. A trailing
    // partial block runs through the same transpose machinery as a
    // full one — dead lanes read address 0 (their net bits are kept
    // zero by every drive path), and masking their fetched bytes to
    // 0 preserves that invariant — far cheaper than a per-lane
    // gather/lookup/scatter tail.
    for (unsigned w = 0; w * kWordLanes < lanes_; ++w) {
        uint64_t areg[8];
        for (unsigned i = 0; i < aw; ++i)
            areg[i] = val_[size_t(addr_bus.nets_[i]) * words_ + w];
        uint64_t dreg[8] = {};
        unsigned word_lanes = lanes_ - w * kWordLanes;
        unsigned nsubs =
            word_lanes >= kWordLanes ? 8 : (word_lanes + 7) / 8;
        for (unsigned sub = 0; sub < nsubs; ++sub) {
            uint64_t x = 0;
            for (unsigned i = 0; i < aw; ++i)
                x |= ((areg[i] >> (8 * sub)) & 0xFF) << (8 * i);
            uint64_t addrs = transpose8x8(x);
            uint64_t y = 0;
            for (unsigned k = 0; k < 8; ++k)
                y |= uint64_t(table[(addrs >> (8 * k)) & 0xFF])
                     << (8 * k);
            unsigned live = word_lanes - sub * 8;
            if (live < 8)
                y &= ~0ull >> (8 * (8 - live));
            uint64_t z = transpose8x8(y);
            // Scatter unconditionally: the fetched bytes vary per
            // lane, so a per-bit branch here is a mispredict per bus
            // bit — costlier than the OR it would sometimes skip.
            for (unsigned i = 0; i < dw; ++i)
                dreg[i] |= ((z >> (8 * i)) & 0xFF) << (8 * sub);
        }
        for (unsigned i = 0; i < dw; ++i)
            val_[size_t(data_bus.nets_[i]) * words_ + w] = dreg[i];
    }
    // Fully-dead trailing words stay all-zero.
    for (unsigned w = (lanes_ + kWordLanes - 1) / kWordLanes;
         w < words_; ++w)
        for (unsigned i = 0; i < dw; ++i)
            val_[size_t(data_bus.nets_[i]) * words_ + w] = 0;
}

void
LaneGroup::busMismatch(const BusHandle &bus, unsigned value,
                       uint64_t *diff) const
{
    unsigned width = bus.nets_.size();
    // A value the bus cannot even represent differs in every lane —
    // the same verdict a per-lane gather-and-compare would reach.
    if (width < 32 && (value >> width) != 0) {
        for (unsigned w = 0; w < words_; ++w)
            diff[w] = laneMask_[w];
        return;
    }
    for (unsigned w = 0; w < words_; ++w)
        diff[w] = 0;
    for (unsigned i = 0; i < width; ++i) {
        uint64_t expect = ((value >> i) & 1u) ? ~0ull : 0;
        size_t o = size_t(bus.nets_[i]) * words_;
        for (unsigned w = 0; w < words_; ++w)
            diff[w] |= val_[o + w] ^ expect;
    }
    for (unsigned w = 0; w < words_; ++w)
        diff[w] &= laneMask_[w];
}

unsigned
LaneGroup::bus(const BusHandle &bus, unsigned lane) const
{
    checkLane(lane);
    unsigned w = lane / kWordLanes;
    unsigned shift = lane % kWordLanes;
    unsigned v = 0;
    for (unsigned i = 0; i < bus.nets_.size(); ++i)
        v |= static_cast<unsigned>(
                 (val_[size_t(bus.nets_[i]) * words_ + w] >> shift) &
                 1ull)
             << i;
    return v;
}

void
LaneGroup::gatherBus(const BusHandle &bus, uint32_t *out) const
{
    unsigned width = bus.nets_.size();
    for (unsigned lane = 0; lane < lanes_; ++lane)
        out[lane] = 0;
    unsigned nbytes = (width + 7) / 8;
    unsigned groups = lanes_ / 8;
    for (unsigned g = 0; g < groups; ++g) {
        unsigned w = g / 8;
        unsigned sub = g % 8;
        for (unsigned s = 0; s < nbytes; ++s) {
            uint64_t x = 0;
            unsigned hi = std::min(width - s * 8, 8u);
            for (unsigned i = 0; i < hi; ++i)
                x |= ((val_[size_t(bus.nets_[s * 8 + i]) * words_ +
                            w] >>
                       (8 * sub)) &
                      0xFF)
                     << (8 * i);
            if (!x)
                continue;
            uint64_t y = transpose8x8(x);
            for (unsigned k = 0; k < 8; ++k)
                out[g * 8 + k] |=
                    static_cast<uint32_t>((y >> (8 * k)) & 0xFF)
                    << (8 * s);
        }
    }
    for (unsigned lane = groups * 8; lane < lanes_; ++lane) {
        unsigned w = lane / kWordLanes;
        unsigned shift = lane % kWordLanes;
        uint32_t v = 0;
        for (unsigned i = 0; i < width; ++i)
            v |= static_cast<uint32_t>(
                     (val_[size_t(bus.nets_[i]) * words_ + w] >>
                      shift) &
                     1ull)
                 << i;
        out[lane] = v;
    }
}

bool
LaneGroup::netValue(NetId net, unsigned lane) const
{
    checkLane(lane);
    if (net >= s_->nextNet)
        panic("netValue: bad net %u", net);
    return (val_[size_t(net) * words_ + lane / kWordLanes] >>
            (lane % kWordLanes)) &
           1ull;
}

void
LaneGroup::enableToggles(bool on)
{
    countToggles_ = on;
    toggles_.assign(
        on ? s_->cells.size() * size_t(words_) * kWordLanes : 0, 0);
}

std::vector<uint64_t>
LaneGroup::toggleCounts(unsigned lane) const
{
    checkLane(lane);
    if (!countToggles_)
        panic("toggleCounts: enableToggles(true) first");
    size_t stride = size_t(words_) * kWordLanes;
    std::vector<uint64_t> out(s_->cells.size());
    for (size_t c = 0; c < out.size(); ++c)
        out[c] = toggles_[c * stride + lane];
    return out;
}

} // namespace flexi
