#include "lockstep.hh"

#include "common/logging.hh"
#include "isa/encoding.hh"
#include "sim/core_sim.hh"
#include "sim/environment.hh"

namespace flexi
{

namespace
{

/** Environment returning a value chosen by the harness per step. */
class HeldInputEnv : public Environment
{
  public:
    uint8_t readInput() override { return held; }
    void
    writeOutput(uint8_t value) override
    {
        outputs.push_back(value);
    }

    uint8_t held = 0;
    std::vector<uint8_t> outputs;
};

/** Does this instruction architecturally sample the input bus? */
bool
readsInput(const Instruction &inst)
{
    return inst.mode == Mode::Mem && inst.op != Op::Store &&
           inst.operand == kInputPortAddr;
}

} // namespace

LockstepResult
runLockstep(Netlist &netlist, IsaKind isa, const Program &prog,
            const std::vector<uint8_t> &inputs,
            uint64_t max_instructions)
{
    if (!netlist.elaborated())
        fatal("netlist must be elaborated");

    // The DSE single-cycle netlists have the wide 16-bit program
    // bus: both bytes of an instruction arrive at once and every
    // instruction takes one cycle. LoadStore4's PC counts words.
    bool wide_bus = isa == IsaKind::ExtAcc4 ||
                    isa == IsaKind::LoadStore4;
    bool word_pc = isa == IsaKind::LoadStore4;

    unsigned w = isaDataWidth(isa);
    const std::vector<uint8_t> &image = prog.page(0);
    auto fetch = [&](unsigned pc) -> uint8_t {
        return pc < image.size() ? image[pc] : 0;
    };

    // Resolve every pad bus once; the per-cycle loop below then
    // never touches a name map or builds a string.
    BusHandle pc_bus = netlist.outputBus("pc", 7);
    BusHandle instr_bus = netlist.inputBus("instr", wide_bus ? 16 : 8);
    BusHandle iport_bus = netlist.inputBus("iport", w);
    BusHandle oport_bus = netlist.outputBus("oport", w);

    HeldInputEnv env;
    TimingConfig cfg;
    cfg.isa = isa;
    CoreSim golden(cfg, prog, env);

    netlist.reset();

    LockstepResult res;
    size_t input_idx = 0;

    while (res.instructions < max_instructions && !golden.halted()) {
        // Decode at the *golden* PC to know whether this instruction
        // samples the input bus; both models then see the same value.
        DecodeResult dec = decodeAt(isa, image, golden.pc());
        if (readsInput(dec.inst) && input_idx < inputs.size())
            env.held = inputs[input_idx++] &
                       static_cast<uint8_t>((1u << w) - 1u);

        // Drive the die for as many cycles as the instruction takes,
        // fetching from the netlist's own PC pads.
        unsigned cycles = wide_bus ? 1 : dec.bytes;
        for (unsigned c = 0; c < cycles; ++c) {
            unsigned die_pc = netlist.bus(pc_bus);
            if (wide_bus) {
                unsigned base = word_pc ? die_pc * 2 : die_pc;
                netlist.setBus(instr_bus,
                               fetch(base) | (fetch(base + 1) << 8));
            } else {
                netlist.setBus(instr_bus, fetch(die_pc));
            }
            netlist.setBus(iport_bus, env.held);
            netlist.evaluate();
            netlist.clockEdge();
            netlist.evaluate();   // expose new state on the pads
            ++res.cycles;
        }

        golden.step();
        ++res.instructions;

        if (netlist.bus(pc_bus) != golden.pc())
            ++res.errors;
        if (netlist.bus(oport_bus) != golden.outputLatch())
            ++res.errors;
    }

    res.outputs = std::move(env.outputs);
    return res;
}

LockstepBatchResult
runLockstepBatch(LaneBatch &batch, const Netlist &golden_netlist,
                 IsaKind isa, const Program &prog,
                 const std::vector<uint8_t> &inputs,
                 uint64_t max_instructions, bool early_exit)
{
    if (!golden_netlist.elaborated())
        fatal("netlist must be elaborated");

    bool wide_bus = isa == IsaKind::ExtAcc4 ||
                    isa == IsaKind::LoadStore4;
    bool word_pc = isa == IsaKind::LoadStore4;

    unsigned w = isaDataWidth(isa);
    const std::vector<uint8_t> &image = prog.page(0);
    auto fetch = [&](unsigned pc) -> uint8_t {
        return pc < image.size() ? image[pc] : 0;
    };

    BusHandle pc_bus = golden_netlist.outputBus("pc", 7);
    BusHandle instr_bus =
        golden_netlist.inputBus("instr", wide_bus ? 16 : 8);
    BusHandle iport_bus = golden_netlist.inputBus("iport", w);
    BusHandle oport_bus = golden_netlist.outputBus("oport", w);

    HeldInputEnv env;
    TimingConfig cfg;
    cfg.isa = isa;
    CoreSim golden(cfg, prog, env);

    batch.reset();

    LockstepBatchResult res;
    res.activeMask = batch.laneMask();
    size_t input_idx = 0;
    unsigned lanes = batch.lanes();

    // Per-lane pad snapshots; freshly reset pads read 0.
    std::array<uint32_t, LaneBatch::kMaxLanes> die_pc{};
    std::array<uint32_t, LaneBatch::kMaxLanes> die_instr{};
    std::array<uint32_t, LaneBatch::kMaxLanes> die_oport{};

    while (res.instructions < max_instructions && !golden.halted()) {
        DecodeResult dec = decodeAt(isa, image, golden.pc());
        if (readsInput(dec.inst) && input_idx < inputs.size())
            env.held = inputs[input_idx++] &
                       static_cast<uint8_t>((1u << w) - 1u);

        unsigned cycles = wide_bus ? 1 : dec.bytes;
        for (unsigned c = 0; c < cycles; ++c) {
            for (unsigned lane = 0; lane < lanes; ++lane) {
                unsigned pcv = die_pc[lane];
                if (wide_bus) {
                    unsigned base = word_pc ? pcv * 2 : pcv;
                    die_instr[lane] =
                        fetch(base) |
                        static_cast<unsigned>(fetch(base + 1)) << 8;
                } else {
                    die_instr[lane] = fetch(pcv);
                }
            }
            batch.setBusLanes(instr_bus, die_instr.data());
            batch.setBus(iport_bus, env.held);
            batch.evaluate();
            batch.clockEdge();
            batch.evaluate();   // expose new state on the pads
            ++res.cycles;
            batch.gatherBus(pc_bus, die_pc.data());
        }

        golden.step();
        ++res.instructions;

        batch.gatherBus(oport_bus, die_oport.data());
        unsigned gpc = golden.pc();
        unsigned gout = golden.outputLatch();
        for (unsigned lane = 0; lane < lanes; ++lane) {
            if (early_exit && !((res.activeMask >> lane) & 1))
                continue;
            uint64_t e =
                static_cast<uint64_t>(die_pc[lane] != gpc) +
                static_cast<uint64_t>(die_oport[lane] != gout);
            res.errors[lane] += e;
            if (e)
                res.activeMask &= ~(1ull << lane);
        }
        if (early_exit && !res.activeMask)
            break;
    }
    return res;
}

} // namespace flexi
