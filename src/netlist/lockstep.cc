#include "lockstep.hh"

#include "common/logging.hh"
#include "isa/encoding.hh"
#include "sim/core_sim.hh"
#include "sim/environment.hh"

namespace flexi
{

namespace
{

/** Environment returning a value chosen by the harness per step. */
class HeldInputEnv : public Environment
{
  public:
    uint8_t readInput() override { return held; }
    void
    writeOutput(uint8_t value) override
    {
        outputs.push_back(value);
    }

    uint8_t held = 0;
    std::vector<uint8_t> outputs;
};

/** Does this instruction architecturally sample the input bus? */
bool
readsInput(const Instruction &inst)
{
    return inst.mode == Mode::Mem && inst.op != Op::Store &&
           inst.operand == kInputPortAddr;
}

} // namespace

LockstepResult
runLockstep(Netlist &netlist, IsaKind isa, const Program &prog,
            const std::vector<uint8_t> &inputs,
            uint64_t max_instructions)
{
    if (!netlist.elaborated())
        fatal("netlist must be elaborated");

    // The DSE single-cycle netlists have the wide 16-bit program
    // bus: both bytes of an instruction arrive at once and every
    // instruction takes one cycle. LoadStore4's PC counts words.
    bool wide_bus = isa == IsaKind::ExtAcc4 ||
                    isa == IsaKind::LoadStore4;
    bool word_pc = isa == IsaKind::LoadStore4;

    unsigned w = isaDataWidth(isa);
    const std::vector<uint8_t> &image = prog.page(0);
    auto fetch = [&](unsigned pc) -> uint8_t {
        return pc < image.size() ? image[pc] : 0;
    };

    // Resolve every pad bus once; the per-cycle loop below then
    // never touches a name map or builds a string.
    BusHandle pc_bus = netlist.outputBus("pc", 7);
    BusHandle instr_bus = netlist.inputBus("instr", wide_bus ? 16 : 8);
    BusHandle iport_bus = netlist.inputBus("iport", w);
    BusHandle oport_bus = netlist.outputBus("oport", w);

    HeldInputEnv env;
    TimingConfig cfg;
    cfg.isa = isa;
    CoreSim golden(cfg, prog, env);

    netlist.reset();

    LockstepResult res;
    size_t input_idx = 0;

    while (res.instructions < max_instructions && !golden.halted()) {
        // Decode at the *golden* PC to know whether this instruction
        // samples the input bus; both models then see the same value.
        DecodeResult dec = decodeAt(isa, image, golden.pc());
        if (readsInput(dec.inst) && input_idx < inputs.size())
            env.held = inputs[input_idx++] &
                       static_cast<uint8_t>((1u << w) - 1u);

        // Drive the die for as many cycles as the instruction takes,
        // fetching from the netlist's own PC pads.
        unsigned cycles = wide_bus ? 1 : dec.bytes;
        for (unsigned c = 0; c < cycles; ++c) {
            unsigned die_pc = netlist.bus(pc_bus);
            if (wide_bus) {
                unsigned base = word_pc ? die_pc * 2 : die_pc;
                netlist.setBus(instr_bus,
                               fetch(base) | (fetch(base + 1) << 8));
            } else {
                netlist.setBus(instr_bus, fetch(die_pc));
            }
            netlist.setBus(iport_bus, env.held);
            netlist.evaluate();
            netlist.clockEdge();
            netlist.evaluate();   // expose new state on the pads
            ++res.cycles;
        }

        golden.step();
        ++res.instructions;

        if (netlist.bus(pc_bus) != golden.pc())
            ++res.errors;
        if (netlist.bus(oport_bus) != golden.outputLatch())
            ++res.errors;
    }

    res.outputs = std::move(env.outputs);
    return res;
}

LockstepBatchResult
runLockstepBatch(LaneBatch &batch, const Netlist &golden_netlist,
                 IsaKind isa, const Program &prog,
                 const std::vector<uint8_t> &inputs,
                 uint64_t max_instructions, bool early_exit)
{
    if (!golden_netlist.elaborated())
        fatal("netlist must be elaborated");

    bool wide_bus = isa == IsaKind::ExtAcc4 ||
                    isa == IsaKind::LoadStore4;
    bool word_pc = isa == IsaKind::LoadStore4;

    unsigned w = isaDataWidth(isa);
    const std::vector<uint8_t> &image = prog.page(0);
    auto fetch = [&](unsigned pc) -> uint8_t {
        return pc < image.size() ? image[pc] : 0;
    };

    BusHandle pc_bus = golden_netlist.outputBus("pc", 7);
    BusHandle instr_bus =
        golden_netlist.inputBus("instr", wide_bus ? 16 : 8);
    BusHandle iport_bus = golden_netlist.inputBus("iport", w);
    BusHandle oport_bus = golden_netlist.outputBus("oport", w);

    HeldInputEnv env;
    TimingConfig cfg;
    cfg.isa = isa;
    CoreSim golden(cfg, prog, env);

    batch.reset();

    LockstepBatchResult res;
    res.activeMask = batch.laneMask();
    size_t input_idx = 0;
    unsigned lanes = batch.lanes();

    // Per-lane pad snapshots; freshly reset pads read 0.
    std::array<uint32_t, LaneBatch::kMaxLanes> die_pc{};
    std::array<uint32_t, LaneBatch::kMaxLanes> die_instr{};
    std::array<uint32_t, LaneBatch::kMaxLanes> die_oport{};

    while (res.instructions < max_instructions && !golden.halted()) {
        DecodeResult dec = decodeAt(isa, image, golden.pc());
        if (readsInput(dec.inst) && input_idx < inputs.size())
            env.held = inputs[input_idx++] &
                       static_cast<uint8_t>((1u << w) - 1u);

        unsigned cycles = wide_bus ? 1 : dec.bytes;
        for (unsigned c = 0; c < cycles; ++c) {
            for (unsigned lane = 0; lane < lanes; ++lane) {
                unsigned pcv = die_pc[lane];
                if (wide_bus) {
                    unsigned base = word_pc ? pcv * 2 : pcv;
                    die_instr[lane] =
                        fetch(base) |
                        static_cast<unsigned>(fetch(base + 1)) << 8;
                } else {
                    die_instr[lane] = fetch(pcv);
                }
            }
            batch.setBusLanes(instr_bus, die_instr.data());
            batch.setBus(iport_bus, env.held);
            batch.evaluate();
            batch.clockEdge();
            batch.evaluate();   // expose new state on the pads
            ++res.cycles;
            batch.gatherBus(pc_bus, die_pc.data());
        }

        golden.step();
        ++res.instructions;

        batch.gatherBus(oport_bus, die_oport.data());
        unsigned gpc = golden.pc();
        unsigned gout = golden.outputLatch();
        for (unsigned lane = 0; lane < lanes; ++lane) {
            if (early_exit && !((res.activeMask >> lane) & 1))
                continue;
            uint64_t e =
                static_cast<uint64_t>(die_pc[lane] != gpc) +
                static_cast<uint64_t>(die_oport[lane] != gout);
            res.errors[lane] += e;
            if (e)
                res.activeMask &= ~(1ull << lane);
        }
        if (early_exit && !res.activeMask)
            break;
    }
    return res;
}

LockstepGroupResult
runLockstepGroup(LaneGroup &group, const Netlist &golden_netlist,
                 IsaKind isa, const Program &prog,
                 const std::vector<uint8_t> &inputs,
                 uint64_t max_instructions, bool early_exit)
{
    if (!golden_netlist.elaborated())
        fatal("netlist must be elaborated");

    bool wide_bus = isa == IsaKind::ExtAcc4 ||
                    isa == IsaKind::LoadStore4;
    bool word_pc = isa == IsaKind::LoadStore4;

    unsigned w = isaDataWidth(isa);
    const std::vector<uint8_t> &image = prog.page(0);
    auto fetch = [&](unsigned pc) -> uint8_t {
        return pc < image.size() ? image[pc] : 0;
    };

    BusHandle pc_bus = golden_netlist.outputBus("pc", 7);
    BusHandle instr_bus =
        golden_netlist.inputBus("instr", wide_bus ? 16 : 8);
    BusHandle iport_bus = golden_netlist.inputBus("iport", w);
    BusHandle oport_bus = golden_netlist.outputBus("oport", w);

    // Between clockEdge() and the pad sample only the PC/OPORT pads
    // are read, so the post-edge evaluate is narrowed to their
    // fan-in cones — exact for those nets, and a fraction of the
    // full plan.
    LaneGroup::PadCone pad_cone =
        group.padCone({&pc_bus, &oport_bus});

    // The narrow-bus cores fetch one byte at the lane's own PC every
    // cycle: exactly LaneGroup's fused indexed drive. Pad the image
    // to the PC pads' full address space (out-of-image fetches read
    // 0, as the scalar fetch lambda) so no lane needs a bounds check.
    std::vector<uint8_t> fetch_table;
    if (!wide_bus) {
        fetch_table.assign(size_t(1)
                               << pc_bus.width(), 0);
        for (size_t a = 0;
             a < fetch_table.size() && a < image.size(); ++a)
            fetch_table[a] = image[a];
    }

    // Memoized per-address decode of the golden program: the driver
    // only consumes the instruction length and whether the input bus
    // is sampled, and the golden core revisits the same handful of
    // addresses for hundreds of instructions.
    struct DecodeMemo
    {
        uint8_t bytes = 0;
        bool readsIn = false;
        bool init = false;
    };
    std::vector<DecodeMemo> decode_memo(size_t(1) << pc_bus.width());

    HeldInputEnv env;
    TimingConfig cfg;
    cfg.isa = isa;
    CoreSim golden(cfg, prog, env);

    group.reset();

    LockstepGroupResult res;
    unsigned lanes = group.lanes();
    unsigned words = group.words();
    for (unsigned lane = 0; lane < lanes; ++lane)
        res.activeMask[lane / 64] |= 1ull << (lane % 64);
    size_t input_idx = 0;

    // Per-lane pad snapshots for the 16-bit program bus of the DSE
    // cores, whose two-byte fetch keeps the explicit gather + uint32
    // scatter; the narrow cores fetch through driveBusFromTable and
    // never leave the bit domain.
    std::array<uint8_t, LaneGroup::kMaxLanes> die_pc{};
    std::array<uint32_t, LaneGroup::kMaxLanes> die_instr16{};

    auto any_active = [&]() {
        for (uint64_t m : res.activeMask)
            if (m)
                return true;
        return false;
    };

    // Drive the input bus once up front and again only when the held
    // value changes: between changes the pads already carry it.
    uint8_t iport_prev = env.held;
    group.setBus(iport_bus, env.held);

    while (res.instructions < max_instructions && !golden.halted()) {
        DecodeMemo &memo =
            decode_memo[golden.pc() & (decode_memo.size() - 1)];
        if (!memo.init) {
            DecodeResult dec = decodeAt(isa, image, golden.pc());
            memo.bytes = static_cast<uint8_t>(dec.bytes);
            memo.readsIn = readsInput(dec.inst);
            memo.init = true;
        }
        if (memo.readsIn && input_idx < inputs.size())
            env.held = inputs[input_idx++] &
                       static_cast<uint8_t>((1u << w) - 1u);
        if (env.held != iport_prev) {
            group.setBus(iport_bus, env.held);
            iport_prev = env.held;
        }

        unsigned cycles = wide_bus ? 1 : memo.bytes;
        for (unsigned c = 0; c < cycles; ++c) {
            if (wide_bus) {
                group.gatherBusBytes(pc_bus, die_pc.data());
                for (unsigned lane = 0; lane < lanes; ++lane) {
                    unsigned base = word_pc ? die_pc[lane] * 2
                                            : die_pc[lane];
                    die_instr16[lane] =
                        fetch(base) |
                        static_cast<unsigned>(fetch(base + 1)) << 8;
                }
                group.setBusLanes(instr_bus, die_instr16.data());
            } else {
                group.driveBusFromTable(pc_bus, instr_bus,
                                        fetch_table.data());
            }
            group.evaluate();
            group.clockEdge();
            group.exposeState(pad_cone);
            ++res.cycles;
        }

        golden.step();
        ++res.instructions;

        // Compare both pads against the golden core in the bit
        // domain: a handful of XORs per bus bit replaces a per-lane
        // gather, and the mismatch masks drive the per-lane error
        // counts and the early-exit mask directly.
        std::array<uint64_t, LaneGroup::kMaxWords> pc_diff;
        std::array<uint64_t, LaneGroup::kMaxWords> op_diff;
        group.busMismatch(pc_bus, golden.pc(), pc_diff.data());
        group.busMismatch(oport_bus, golden.outputLatch(),
                          op_diff.data());
        for (unsigned wd = 0; wd < words; ++wd) {
            uint64_t live = early_exit ? res.activeMask[wd] : ~0ull;
            uint64_t pd = pc_diff[wd] & live;
            uint64_t od = op_diff[wd] & live;
            uint64_t any = pd | od;
            while (pd) {
                res.errors[wd * 64 + __builtin_ctzll(pd)] += 1;
                pd &= pd - 1;
            }
            while (od) {
                res.errors[wd * 64 + __builtin_ctzll(od)] += 1;
                od &= od - 1;
            }
            res.activeMask[wd] &= ~any;
        }
        if (early_exit && !any_active())
            break;
    }
    return res;
}

} // namespace flexi
