/**
 * @file
 * Structural gate-level models of the fabricated FlexiCore chips.
 *
 * Pin interface (matches the die pads, Section 4): the 8-bit
 * instruction bus INSTR and the input bus IPORT are primary inputs;
 * the 7-bit program counter PC and the output bus OPORT are primary
 * outputs. Program memory is off-chip: a test bench (or the real NI
 * pattern instrument) observes PC and drives INSTR.
 *
 * Bus naming: "instr0".."instr7", "iport0"..,"pc0".."pc6",
 * "oport0"... — LSB first.
 */

#ifndef FLEXI_NETLIST_FLEXICORE_NETLIST_HH
#define FLEXI_NETLIST_FLEXICORE_NETLIST_HH

#include <memory>

#include "netlist/netlist.hh"

namespace flexi
{

/** Build the FlexiCore4 netlist (Figure 3). */
std::unique_ptr<Netlist> buildFlexiCore4Netlist();

/** Build the FlexiCore8 netlist (adds the LOAD BYTE flag). */
std::unique_ptr<Netlist> buildFlexiCore8Netlist();

/**
 * Build the single-cycle ExtAcc4 netlist (wide 16-bit instruction
 * bus) — the gate-level realization of the Section 6.1 revised op
 * set (the FlexiCore4+ die family of Figure 4c).
 */
std::unique_ptr<Netlist> buildExtAcc4Netlist();

/**
 * Build the single-cycle LoadStore4 netlist (wide 16-bit bus,
 * dual-read-port register file, word-indexed PC) — the two-address
 * DSE machine of Section 6.2.
 */
std::unique_ptr<Netlist> buildLoadStore4Netlist();

} // namespace flexi

#endif // FLEXI_NETLIST_FLEXICORE_NETLIST_HH
