/**
 * @file
 * 64-lane bit-parallel netlist evaluator.
 *
 * A LaneBatch binds up to 64 independent fault configurations (die
 * defect sets, transient-fault schedules, latch upsets) to the bit
 * lanes of one word-level simulation of a shared netlist structure.
 * Net values become uint64_t words — bit L of word N is the value of
 * net N in lane L — and one pass over the compiled evaluation plan
 * simulates all lanes at once using branchless word ops (the WordOp
 * compiled per plan step at elaborate() time).
 *
 * The batch mirrors the scalar Netlist instance state exactly, at
 * bit granularity:
 *
 *  - stuck-at / transient force masks become per-lane mask and value
 *    words (`mask64[net]`, `fval64[net]`), blended with the same
 *    `v = (v & ~m) | (fval & m)` identity the scalar evaluator uses,
 *  - DFF state is one word per flip-flop, committed with the same
 *    force-masked blend on the Q net,
 *  - toggle accumulation (opt-in, off by default in the hot paths)
 *    counts per lane by iterating the set bits of the XOR between
 *    old and new output words, so per-lane toggle counts are
 *    bit-identical to a scalar run of the same faulted instance.
 *
 * Structure sharing follows clone(): the batch holds the same
 * shared_ptr<Structure> as the golden netlist it was built from and
 * allocates only per-batch state, so building a 64-die batch costs a
 * few vector fills, not a netlist rebuild.
 *
 * Lanes above lanes() exist physically (they are bits of the same
 * words) but are dead: their fault state can't be set, their values
 * are never read, and the lane mask keeps toggle counting away from
 * them. Differential tests pit this evaluator against both the
 * scalar compiled plan and evaluateReference().
 */

#ifndef FLEXI_NETLIST_LANE_BATCH_HH
#define FLEXI_NETLIST_LANE_BATCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hh"

namespace flexi
{

class LaneBatch
{
  public:
    static constexpr unsigned kMaxLanes = 64;

    /**
     * Build a batch of @p lanes lanes (1..64) over the structure of
     * @p golden, which must be elaborated. Fault state starts empty;
     * the batch is reset() to power-on values.
     */
    explicit LaneBatch(const Netlist &golden,
                       unsigned lanes = kMaxLanes);

    unsigned lanes() const { return lanes_; }
    /** Bit mask with one bit set per bound lane (LSB = lane 0). */
    uint64_t laneMask() const { return laneMask_; }
    /** Clock edges seen since construction (monotonic, as scalar). */
    uint64_t cycle() const { return cycle_; }
    size_t numNets() const { return s_->nextNet; }
    size_t numDffs() const { return s_->dffCells.size(); }

    /** @name Per-lane fault state (mirrors Netlist exactly) */
    ///@{
    void injectFault(unsigned lane, const StuckFault &fault);
    void clearFaults();
    void injectTransient(unsigned lane, const TransientFault &fault);
    void clearTransients();
    /** Flip the stored state bit of DFF @p index in one lane. */
    void flipDff(unsigned lane, size_t index);
    ///@}

    /** @name Per-lane state snapshot (mirrors Netlist exactly) */
    ///@{
    /**
     * Snapshot / restore one lane's architectural state (all DFF
     * bits) in the scalar saveDffState() layout — one byte per DFF,
     * commit order — so a lane snapshot restores into a scalar clone
     * and vice versa. restoreDffState() leaves the lane's
     * combinational nets stale (drive inputs and evaluate() before
     * sampling); faults, toggle counters, and cycle() are not part
     * of the snapshot, exactly as in the scalar API.
     */
    std::vector<uint8_t> saveDffState(unsigned lane) const;
    void restoreDffState(unsigned lane,
                         const std::vector<uint8_t> &state);
    ///@}

    /** @name Simulation */
    ///@{
    /** All lanes back to power-on state; cycle() keeps counting. */
    void reset();
    void evaluate();
    void clockEdge();
    ///@}

    /** @name Bus drive / sample */
    ///@{
    /** Drive the same value into an input bus on every lane. */
    void setBus(const BusHandle &bus, unsigned value);
    /**
     * Drive one named primary input with a different bit per lane
     * (bit L of @p lane_bits = lane L's value). Name-map lookup per
     * call — differential-test convenience, not a hot path.
     */
    void setInputLanes(const std::string &name, uint64_t lane_bits);
    /**
     * Drive a different value per lane (values[0..lanes()-1]); dead
     * lanes are driven with 0.
     */
    void setBusLanes(const BusHandle &bus, const uint32_t *values);
    /** Sample a bus in one lane. */
    unsigned bus(const BusHandle &bus, unsigned lane) const;
    /** Sample a bus across all lanes into out[0..lanes()-1]. */
    void gatherBus(const BusHandle &bus, uint32_t *out) const;
    bool netValue(NetId net, unsigned lane) const;
    ///@}

    /** @name Per-lane toggle counting (opt-in) */
    ///@{
    /**
     * Enable/disable per-lane toggle accumulation. Off by default:
     * the population studies don't consume per-die activity, and
     * counting costs a popcount loop per toggled cell. Enabling
     * (re)zeroes the counters.
     */
    void enableToggles(bool on);
    /**
     * Toggle counts of one lane, per cell, in the same layout as
     * Netlist::toggleCounts(). Requires enableToggles(true).
     */
    std::vector<uint64_t> toggleCounts(unsigned lane) const;
    ///@}

  private:
    template <bool kToggles> void evaluateImpl();
    void applyFaultForces();
    void checkLane(unsigned lane) const;

    /** One lane's stuck-at / transient fault record. */
    struct LaneFault
    {
        unsigned lane;
        StuckFault f;
    };
    struct LaneTransient
    {
        unsigned lane;
        TransientFault f;
    };

    std::shared_ptr<const Netlist::Structure> s_;
    unsigned lanes_;
    uint64_t laneMask_;

    std::vector<uint64_t> val64_;    ///< per net + trailing scratch 0
    std::vector<uint64_t> dffState64_;
    std::vector<uint64_t> mask64_;   ///< lane bit set where forced
    std::vector<uint64_t> fval64_;
    std::vector<LaneFault> faults_;
    std::vector<LaneTransient> transients_;
    uint64_t cycle_ = 0;
    bool countToggles_ = false;
    std::vector<uint64_t> toggles64_;   ///< [cell * 64 + lane]
};

} // namespace flexi

#endif // FLEXI_NETLIST_LANE_BATCH_HH
