/**
 * @file
 * Gate-level netlist container and cycle-accurate evaluator.
 *
 * A Netlist is a flat collection of standard cells (from the 13-cell
 * IGZO library) connected by nets, with named primary inputs and
 * outputs and a single implicit clock. It supports:
 *
 *  - levelized evaluation, one clock cycle at a time (combinational
 *    propagate, then DFF commit),
 *  - per-cell toggle counting (the paper reports gates toggling
 *    24,060 times on average over the >100k test-vector cycles),
 *  - stuck-at fault injection for the yield test bench,
 *  - static analysis: per-module area / device / power rollups and
 *    the critical combinational path in delay units.
 *
 * Internally a netlist is split into a *shared immutable structure*
 * (cells, connectivity, the compiled evaluation plan) and cheap
 * *per-instance state* (net values, DFF state, fault forces, toggle
 * counters). elaborate() freezes the structure and compiles the
 * evaluation plan:
 *
 *  - combinational cells are flattened, in topological order, into
 *    contiguous input-index / output-index / truth-table arrays
 *    (three padded input slots per cell — unused slots point at a
 *    dedicated always-zero scratch net),
 *  - each cell evaluates branchlessly as one 8-bit truth-table
 *    lookup indexed by its (up to three) input bits,
 *  - net values are byte-packed (one byte per net, strictly 0/1),
 *  - stuck-at faults become per-net force masks applied with
 *    bitwise blends instead of branches.
 *
 * clone() then produces an independent simulation instance in a few
 * memcpys: the structure is shared by reference, only the mutable
 * state is copied. This is what lets the Monte-Carlo wafer study
 * fault-simulate hundreds of defective dies without rebuilding the
 * core netlist per die. evaluateReference() retains the original
 * cell-by-cell interpreter as a differential-testing oracle.
 */

#ifndef FLEXI_NETLIST_NETLIST_HH
#define FLEXI_NETLIST_NETLIST_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tech/cell_library.hh"

namespace flexi
{

class LaneBatch;
class LaneGroup;

using NetId = uint32_t;
constexpr NetId kNoNet = ~0u;

/**
 * Word-parallel opcode of one compiled plan step. elaborate()
 * assigns each combinational cell the op matching its boolean
 * function so the 64-lane evaluator (LaneBatch) can compute all 64
 * lanes of a step in a handful of bitwise word instructions instead
 * of 64 truth-table lookups. Lut is the generic fallback: expand the
 * step's 8-bit truth table as a sum of minterms over the three input
 * words (padded slots read the always-zero scratch word, exactly
 * like the scalar index bits).
 */
enum class WordOp : uint8_t
{
    Buf,
    Inv,
    Nand2,
    Nand3,
    Nor2,
    Nor3,
    Xor2,
    Xnor2,
    Mux2,   ///< inputs {a, b, sel} -> sel ? b : a
    Lut,
};

/** Number of WordOp codes (Lut is last). */
constexpr unsigned kNumWordOps =
    static_cast<unsigned>(WordOp::Lut) + 1;

/** A standard-cell instance. */
struct CellInst
{
    CellType type;
    /** Input nets; DFF uses inputs[0] = D. */
    std::vector<NetId> inputs;
    NetId output = kNoNet;
    /** Hierarchical module tag, e.g. "mem", "pc", "alu". */
    std::string module;
};

/** A stuck-at fault on a net. */
struct StuckFault
{
    NetId net = kNoNet;
    bool value = false;
};

/**
 * A transient fault on a net: the net is forced to @p value for the
 * half-open cycle window [fromCycle, untilCycle), measured on the
 * instance's cycle() counter, then released. Used by the in-field
 * fault-injection campaigns to model single-cycle upsets and
 * timing-marginal glitches; outside its window the fault has no
 * effect at all.
 */
struct TransientFault
{
    NetId net = kNoNet;
    bool value = false;
    uint64_t fromCycle = 0;
    uint64_t untilCycle = 0;
};

/** Per-module rollup of area / power / devices (Tables 2 and 3). */
struct ModuleStats
{
    unsigned cells = 0;
    unsigned devices = 0;
    double nand2Area = 0.0;
    double nand2AreaSeq = 0.0;   ///< sequential (DFF) share
    double staticCurrentUa = 0.0;
};

/**
 * A named bus resolved to net ids once, so the per-cycle drive /
 * sample of instruction, port, and PC buses stops concatenating
 * strings and probing name maps. Obtain from Netlist::inputBus() /
 * Netlist::outputBus(); valid for the netlist that produced it and
 * any of its clone()s (they share the same net numbering).
 */
class BusHandle
{
  public:
    BusHandle() = default;
    unsigned width() const { return nets_.size(); }
    bool valid() const { return !nets_.empty(); }

  private:
    friend class Netlist;
    friend class LaneBatch;
    friend class LaneGroup;
    std::vector<NetId> nets_;   ///< LSB first
    bool input_ = false;
};

/**
 * Combinational semantics of a cell as the 8-bit truth table the
 * evaluation plan executes: the output for inputs (i0, i1, i2) is
 * bit (i0 | i1<<1 | i2<<2). Inputs beyond the cell's arity are
 * don't-cares padded with 0 (matching the scratch-net convention).
 * Fatal on sequential cell types.
 */
uint8_t cellTruthTable(CellType type);

class Netlist
{
  public:
    explicit Netlist(std::string name);

    // The structure is shared between clones by reference; copying a
    // Netlist wholesale is never what callers want (use clone()).
    Netlist(const Netlist &) = delete;
    Netlist &operator=(const Netlist &) = delete;
    Netlist(Netlist &&) = default;
    Netlist &operator=(Netlist &&) = default;

    const std::string &name() const;

    /** @name Construction */
    ///@{
    NetId newNet();
    /** Constant-0 / constant-1 nets. */
    NetId zero() const;
    NetId one() const;

    /** Add a primary input and return its net. */
    NetId addInput(const std::string &name);
    /** Mark a net as the named primary output. */
    void addOutput(const std::string &name, NetId net);

    /** Add a combinational cell; returns its output net. */
    NetId addCell(CellType type, const std::vector<NetId> &inputs,
                  const std::string &module);
    /**
     * Add a D flip-flop; returns the Q net. @p init is the power-on
     * value (the fabricated parts reset via an external sequence; we
     * model a defined power-on state).
     */
    NetId addDff(NetId d, const std::string &module, bool init = false,
                 bool x2 = false);
    /** Re-wire a DFF's D input (for feedback loops built late). */
    void setDffInput(NetId q, NetId d);

    /**
     * Attach a stable label to a net. Builders label architectural
     * state (accumulator, PC, memory words, flags) and other nets of
     * interest; labels feed netName(), the lint reports, and the
     * formal checker's state correspondence, and survive clone()
     * (the table lives in the shared structure). One label per net,
     * one net per label.
     */
    void nameNet(NetId net, const std::string &name);
    /**
     * Net carrying the given name — a label, primary input, or
     * primary output — or kNoNet when nothing matches.
     */
    NetId findNet(const std::string &name) const;

    /**
     * Netlist surgery: repoint one input (or the output) of an
     * existing cell at an arbitrary net. Used by rewiring studies and
     * by lint fixtures to produce electrically broken netlists that
     * the normal construction API refuses to build (combinational
     * loops, multiply-driven nets). No invariant checking beyond
     * range checks — run the lint pass afterwards.
     */
    void rewireCellInput(size_t cell, size_t input, NetId net);
    void rewireCellOutput(size_t cell, NetId net);
    ///@}

    /** @name Simulation */
    ///@{
    /**
     * Finalize: levelize and compile the flat evaluation plan. Must
     * be called before evaluation; freezes the structure.
     */
    void elaborate();
    bool elaborated() const { return elaborated_; }

    /**
     * Independent simulation instance sharing this netlist's
     * immutable structure. O(state), not O(structure): only net
     * values, DFF state, fault forces, and toggle counters are
     * copied (including any currently injected faults). Requires an
     * elaborated netlist. Safe to call concurrently from multiple
     * threads, and clones can be simulated concurrently.
     */
    std::unique_ptr<Netlist> clone() const;

    void setInput(const std::string &name, bool value);
    /** Set a multi-bit input bus name0..name{n-1}, LSB first. */
    void setBus(const std::string &prefix, unsigned width,
                unsigned value);

    /** Resolve an input bus prefix0..prefix{width-1} once. */
    BusHandle inputBus(const std::string &prefix,
                       unsigned width) const;
    /** Resolve an output bus prefix0..prefix{width-1} once. */
    BusHandle outputBus(const std::string &prefix,
                        unsigned width) const;
    /** Drive a pre-resolved input bus (hot-path setBus). */
    void setBus(const BusHandle &bus, unsigned value);
    /** Sample a pre-resolved bus (hot-path bus()). */
    unsigned bus(const BusHandle &bus) const;

    /** Propagate combinational logic (call after setting inputs). */
    void evaluate();
    /**
     * Reference implementation of evaluate(): the original
     * cell-by-cell interpreter walking CellInst records. Kept as the
     * differential-testing oracle for the compiled plan; bit-exact
     * in outputs and toggle counts.
     */
    void evaluateReference();
    /** Clock edge: commit DFFs (call after evaluate()). */
    void clockEdge();

    bool output(const std::string &name) const;
    unsigned bus(const std::string &prefix, unsigned width) const;
    bool netValue(NetId net) const;

    /**
     * Reset all state bits to their power-on values. The experiment
     * clock (cycle()) keeps counting and transient-fault windows are
     * not re-armed: a reset models the field runtime power-cycling /
     * re-paging the part, not rewinding wall-clock time, so an upset
     * whose window has passed cannot strike again on the retry.
     */
    void reset();

    void injectFault(const StuckFault &fault);
    void clearFaults();
    /** Faults currently forced on this instance. */
    const std::vector<StuckFault> &faults() const { return faults_; }

    /**
     * Clock edges seen by this instance since elaborate()/clone()
     * (monotonic; survives reset(), see above).
     */
    uint64_t cycle() const { return cycle_; }

    /**
     * Arm a transient fault. Activation and release happen inside
     * evaluate() based on cycle(); stuck-at faults on the same net
     * reassert themselves once the window closes.
     */
    void injectTransient(const TransientFault &fault);
    void clearTransients();
    const std::vector<TransientFault> &transients() const
    {
        return transients_;
    }

    /** Number of DFFs (state bits), in commit order. */
    size_t numDffs() const { return s_->dffCells.size(); }
    /** Stored state bit of DFF @p index (commit order). */
    bool dffValue(size_t index) const;
    /**
     * Flip the stored state bit of DFF @p index — a single-event
     * upset of the latch itself, independent of its D cone. Call
     * evaluate() afterwards to propagate the corrupted state.
     */
    void flipDff(size_t index);

    /**
     * Snapshot / restore the architectural state (all DFF bits) for
     * checkpoint-rollback recovery. restoreDffState() leaves the
     * combinational nets stale; drive inputs and evaluate() before
     * sampling any pad. Faults, toggle counters, and cycle() are
     * deliberately not part of the snapshot.
     */
    std::vector<uint8_t> saveDffState() const;
    void restoreDffState(const std::vector<uint8_t> &state);
    ///@}

    /** @name Analysis */
    ///@{
    size_t numCells() const;
    size_t numNets() const;

    /** Named primary inputs / outputs (name -> net). */
    const std::map<std::string, NetId> &primaryInputs() const;
    const std::map<std::string, NetId> &primaryOutputs() const;

    /**
     * Nets consumed by combinational cells but driven by nothing
     * (no cell output, primary input, or constant).
     */
    std::vector<NetId> undrivenNets() const;

    /**
     * One combinational cycle, as the cell indices along the cycle
     * (each cell's output feeds the next cell; the last feeds the
     * first). Empty when the combinational logic is acyclic. Shared
     * by elaborate()'s failure diagnostics and the lint pass.
     */
    std::vector<size_t> findCombCycle() const;

    /**
     * Human-readable name for a net: a primary input/output name,
     * "const0"/"const1", or "n<id>".
     */
    std::string netName(NetId net) const;
    unsigned totalDevices() const;
    double totalNand2Area() const;
    double totalStaticCurrentUa() const;
    std::map<std::string, ModuleStats> moduleBreakdown() const;

    /** Longest input/Q -> output/D path, in delay units. */
    double criticalPathDelayUnits() const;

    /**
     * One step of the compiled evaluation plan. Unused input slots
     * hold scratchNet(), which always reads 0; the truth-table bit
     * for inputs (i0, i1, i2) is bit (i0 | i1<<1 | i2<<2) of lut.
     */
    struct PlanStep
    {
        std::array<NetId, 3> in;
        NetId out;
        uint8_t lut;
        uint32_t cell;   ///< original cell index
    };
    /**
     * The compiled combinational plan in execution order. Valid only
     * after elaborate(). This is the artifact the formal checker
     * proves equivalent to the CellInst-level reference semantics.
     */
    std::vector<PlanStep> planSteps() const;
    /** The always-zero scratch net padding unused plan slots. */
    NetId scratchNet() const;

    /**
     * One fused run of the compiled plan: plan steps
     * [begin, end) share the same WordOp, so the word-parallel
     * evaluator dispatches once per run and executes the steps as a
     * straight-line loop. Runs partition the plan exactly: the first
     * run starts at step 0, each run starts where the previous one
     * ended, and the last run ends at planSteps().size(). The formal
     * checker's word-plan encoding walks this exact program, so the
     * fusion itself is inside the proof.
     */
    struct PlanRun
    {
        uint32_t begin;
        uint32_t end;
        WordOp op;
    };
    /** The fused-run program, in execution order (post-elaborate). */
    std::vector<PlanRun> planRuns() const;

    /** One DFF, in commit (construction) order. */
    struct DffInfo
    {
        NetId d;
        NetId q;
        uint32_t cell;   ///< cell index
        bool init;       ///< power-on value
    };
    std::vector<DffInfo> dffs() const;

    /** Total output toggles per cell since last resetToggles(). */
    const std::vector<uint64_t> &toggleCounts() const;
    void resetToggles();
    uint64_t minCellToggles() const;
    double meanCellToggles() const;

    const std::vector<CellInst> &cells() const;
    ///@}

  private:
    /// The word-parallel evaluators share the structure and mirror
    /// the per-instance state at bit granularity: LaneBatch packs 64
    /// lanes into single words, LaneGroup generalizes to
    /// structure-of-arrays lane groups of several words per net.
    friend class LaneBatch;
    friend class LaneGroup;

    /**
     * The compiled flat evaluation plan: combinational cells in
     * topological order with padded three-slot input indices, one
     * 8-bit truth table per cell, plus flattened DFF D/Q indices.
     * Unused input slots point at the scratch net (index numNets()),
     * which always reads 0 and is unreachable by fault injection.
     */
    struct EvalPlan
    {
        std::vector<NetId> in;        ///< 3 slots per comb cell
        std::vector<NetId> out;       ///< output net per comb cell
        std::vector<uint8_t> lut;     ///< truth table per comb cell
        std::vector<uint8_t> wop;     ///< WordOp per comb cell
        std::vector<uint32_t> cell;   ///< original cell index
        /**
         * Adjacent same-op steps fused into straight-line runs: run r
         * covers steps [runBegin[r], runBegin[r+1]) and executes op
         * runOp[r]. runBegin has runOp.size() + 1 entries; the runs
         * partition [0, out.size()) exactly.
         */
        std::vector<uint32_t> runBegin;
        std::vector<uint8_t> runOp;
        std::vector<NetId> dffD;
        std::vector<NetId> dffQ;
        std::vector<uint32_t> dffCell;
    };

    /** Immutable (once elaborated) shared structure. */
    struct Structure
    {
        std::string name;
        std::vector<CellInst> cells;
        NetId nextNet = 0;
        NetId zero = kNoNet;
        NetId one = kNoNet;
        std::map<std::string, NetId> inputs;
        std::map<std::string, NetId> outputs;
        /** Stable net labels (see nameNet()). */
        std::map<NetId, std::string> netLabels;
        std::map<std::string, NetId> labelToNet;
        /** DFF bookkeeping: cell index and power-on value. */
        std::vector<size_t> dffCells;
        std::vector<uint8_t> dffInit;
        std::vector<size_t> evalOrder;   ///< comb cells in topo order
        EvalPlan plan;
    };

    /** clone(): share structure, copy instance state. */
    Netlist(const Netlist &other, bool);

    void checkElaborated(bool want) const;
    void compilePlan();
    void applyFaultForces();

    std::shared_ptr<Structure> s_;
    bool elaborated_ = false;

    /**
     * Per-instance state. All value vectors hold strictly 0/1 bytes
     * (the evaluator composes truth-table indices from them);
     * netVal_ has one extra trailing scratch byte that stays 0.
     */
    std::vector<uint8_t> netVal_;
    std::vector<uint8_t> dffState_;
    std::vector<StuckFault> faults_;
    std::vector<TransientFault> transients_;
    uint64_t cycle_ = 0;
    std::vector<uint8_t> forceMask_;   ///< 0xFF where a fault forces
    std::vector<uint8_t> forceVal_;
    std::vector<uint64_t> toggles_;
};

} // namespace flexi

#endif // FLEXI_NETLIST_NETLIST_HH
