/**
 * @file
 * Gate-level netlist container and cycle-accurate evaluator.
 *
 * A Netlist is a flat collection of standard cells (from the 13-cell
 * IGZO library) connected by nets, with named primary inputs and
 * outputs and a single implicit clock. It supports:
 *
 *  - levelized evaluation, one clock cycle at a time (combinational
 *    propagate, then DFF commit),
 *  - per-cell toggle counting (the paper reports gates toggling
 *    24,060 times on average over the >100k test-vector cycles),
 *  - stuck-at fault injection for the yield test bench,
 *  - static analysis: per-module area / device / power rollups and
 *    the critical combinational path in delay units.
 */

#ifndef FLEXI_NETLIST_NETLIST_HH
#define FLEXI_NETLIST_NETLIST_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tech/cell_library.hh"

namespace flexi
{

using NetId = uint32_t;
constexpr NetId kNoNet = ~0u;

/** A standard-cell instance. */
struct CellInst
{
    CellType type;
    /** Input nets; DFF uses inputs[0] = D. */
    std::vector<NetId> inputs;
    NetId output = kNoNet;
    /** Hierarchical module tag, e.g. "mem", "pc", "alu". */
    std::string module;
};

/** A stuck-at fault on a net. */
struct StuckFault
{
    NetId net = kNoNet;
    bool value = false;
};

/** Per-module rollup of area / power / devices (Tables 2 and 3). */
struct ModuleStats
{
    unsigned cells = 0;
    unsigned devices = 0;
    double nand2Area = 0.0;
    double nand2AreaSeq = 0.0;   ///< sequential (DFF) share
    double staticCurrentUa = 0.0;
};

class Netlist
{
  public:
    explicit Netlist(std::string name);

    const std::string &name() const { return name_; }

    /** @name Construction */
    ///@{
    NetId newNet();
    /** Constant-0 / constant-1 nets. */
    NetId zero() const { return zero_; }
    NetId one() const { return one_; }

    /** Add a primary input and return its net. */
    NetId addInput(const std::string &name);
    /** Mark a net as the named primary output. */
    void addOutput(const std::string &name, NetId net);

    /** Add a combinational cell; returns its output net. */
    NetId addCell(CellType type, const std::vector<NetId> &inputs,
                  const std::string &module);
    /**
     * Add a D flip-flop; returns the Q net. @p init is the power-on
     * value (the fabricated parts reset via an external sequence; we
     * model a defined power-on state).
     */
    NetId addDff(NetId d, const std::string &module, bool init = false,
                 bool x2 = false);
    /** Re-wire a DFF's D input (for feedback loops built late). */
    void setDffInput(NetId q, NetId d);

    /**
     * Netlist surgery: repoint one input (or the output) of an
     * existing cell at an arbitrary net. Used by rewiring studies and
     * by lint fixtures to produce electrically broken netlists that
     * the normal construction API refuses to build (combinational
     * loops, multiply-driven nets). No invariant checking beyond
     * range checks — run the lint pass afterwards.
     */
    void rewireCellInput(size_t cell, size_t input, NetId net);
    void rewireCellOutput(size_t cell, NetId net);
    ///@}

    /** @name Simulation */
    ///@{
    /** Finalize: levelize. Must be called before evaluation. */
    void elaborate();
    bool elaborated() const { return elaborated_; }

    void setInput(const std::string &name, bool value);
    /** Set a multi-bit input bus name0..name{n-1}, LSB first. */
    void setBus(const std::string &prefix, unsigned width,
                unsigned value);

    /** Propagate combinational logic (call after setting inputs). */
    void evaluate();
    /** Clock edge: commit DFFs (call after evaluate()). */
    void clockEdge();

    bool output(const std::string &name) const;
    unsigned bus(const std::string &prefix, unsigned width) const;
    bool netValue(NetId net) const;

    /** Reset all state bits to their power-on values. */
    void reset();

    void injectFault(const StuckFault &fault);
    void clearFaults();
    ///@}

    /** @name Analysis */
    ///@{
    size_t numCells() const { return cells_.size(); }
    size_t numNets() const { return nextNet_; }

    /** Named primary inputs / outputs (name -> net). */
    const std::map<std::string, NetId> &primaryInputs() const
    {
        return inputs_;
    }
    const std::map<std::string, NetId> &primaryOutputs() const
    {
        return outputs_;
    }

    /**
     * Nets consumed by combinational cells but driven by nothing
     * (no cell output, primary input, or constant).
     */
    std::vector<NetId> undrivenNets() const;

    /**
     * One combinational cycle, as the cell indices along the cycle
     * (each cell's output feeds the next cell; the last feeds the
     * first). Empty when the combinational logic is acyclic. Shared
     * by elaborate()'s failure diagnostics and the lint pass.
     */
    std::vector<size_t> findCombCycle() const;

    /**
     * Human-readable name for a net: a primary input/output name,
     * "const0"/"const1", or "n<id>".
     */
    std::string netName(NetId net) const;
    unsigned totalDevices() const;
    double totalNand2Area() const;
    double totalStaticCurrentUa() const;
    std::map<std::string, ModuleStats> moduleBreakdown() const;

    /** Longest input/Q -> output/D path, in delay units. */
    double criticalPathDelayUnits() const;

    /** Total output toggles per cell since last resetToggles(). */
    const std::vector<uint64_t> &toggleCounts() const;
    void resetToggles();
    uint64_t minCellToggles() const;
    double meanCellToggles() const;

    const std::vector<CellInst> &cells() const { return cells_; }
    ///@}

  private:
    void checkElaborated(bool want) const;

    std::string name_;
    std::vector<CellInst> cells_;
    NetId nextNet_ = 0;
    NetId zero_ = kNoNet;
    NetId one_ = kNoNet;

    std::map<std::string, NetId> inputs_;
    std::map<std::string, NetId> outputs_;

    /** DFF bookkeeping: cell index -> state. */
    std::vector<size_t> dffCells_;
    std::vector<bool> dffState_;
    std::vector<bool> dffInit_;

    std::vector<bool> netVal_;
    std::vector<size_t> evalOrder_;   ///< comb cells in topo order
    bool elaborated_ = false;

    std::vector<StuckFault> faults_;
    std::vector<bool> forced_;        ///< per-net fault mask
    std::vector<bool> forcedVal_;

    std::vector<uint64_t> toggles_;
};

} // namespace flexi

#endif // FLEXI_NETLIST_NETLIST_HH
