#include "netlist.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace flexi
{

namespace
{

/** Cell semantics as an 8-bit truth table over (in0, in1, in2). */
bool
combValue(CellType type, bool a, bool b, bool c)
{
    switch (type) {
      case CellType::INV_X1:
      case CellType::INV_X2:
        return !a;
      case CellType::BUF_X1:
      case CellType::BUF_X2:
        return a;
      case CellType::NAND2:
        return !(a && b);
      case CellType::NAND3:
        return !(a && b && c);
      case CellType::NOR2:
        return !(a || b);
      case CellType::NOR3:
        return !(a || b || c);
      case CellType::XOR2:
        return a != b;
      case CellType::XNOR2:
        return a == b;
      case CellType::MUX2:
        // inputs: {a, b, sel} -> sel ? b : a
        return c ? b : a;
      default:
        panic("combValue: unexpected cell type");
    }
}

uint8_t
lutFor(CellType type)
{
    uint8_t lut = 0;
    for (unsigned idx = 0; idx < 8; ++idx) {
        if (combValue(type, idx & 1, idx & 2, idx & 4))
            lut |= static_cast<uint8_t>(1u << idx);
    }
    return lut;
}

} // namespace

uint8_t
cellTruthTable(CellType type)
{
    if (isSequential(type))
        panic("cellTruthTable: sequential cell has no truth table");
    return lutFor(type);
}

namespace
{

/** Word-parallel opcode matching the cell's boolean function. */
WordOp
wordOpFor(CellType type)
{
    switch (type) {
      case CellType::INV_X1:
      case CellType::INV_X2:
        return WordOp::Inv;
      case CellType::BUF_X1:
      case CellType::BUF_X2:
        return WordOp::Buf;
      case CellType::NAND2:
        return WordOp::Nand2;
      case CellType::NAND3:
        return WordOp::Nand3;
      case CellType::NOR2:
        return WordOp::Nor2;
      case CellType::NOR3:
        return WordOp::Nor3;
      case CellType::XOR2:
        return WordOp::Xor2;
      case CellType::XNOR2:
        return WordOp::Xnor2;
      case CellType::MUX2:
        return WordOp::Mux2;
      default:
        return WordOp::Lut;
    }
}

} // namespace

Netlist::Netlist(std::string name)
    : s_(std::make_shared<Structure>())
{
    s_->name = std::move(name);
    s_->zero = newNet();
    s_->one = newNet();
}

Netlist::Netlist(const Netlist &other, bool)
    : s_(other.s_), elaborated_(other.elaborated_),
      netVal_(other.netVal_), dffState_(other.dffState_),
      faults_(other.faults_), transients_(other.transients_),
      cycle_(other.cycle_), forceMask_(other.forceMask_),
      forceVal_(other.forceVal_), toggles_(other.toggles_)
{
}

std::unique_ptr<Netlist>
Netlist::clone() const
{
    checkElaborated(true);
    return std::unique_ptr<Netlist>(new Netlist(*this, true));
}

const std::string &
Netlist::name() const
{
    return s_->name;
}

NetId
Netlist::zero() const
{
    return s_->zero;
}

NetId
Netlist::one() const
{
    return s_->one;
}

size_t
Netlist::numCells() const
{
    return s_->cells.size();
}

size_t
Netlist::numNets() const
{
    return s_->nextNet;
}

const std::map<std::string, NetId> &
Netlist::primaryInputs() const
{
    return s_->inputs;
}

const std::map<std::string, NetId> &
Netlist::primaryOutputs() const
{
    return s_->outputs;
}

const std::vector<CellInst> &
Netlist::cells() const
{
    return s_->cells;
}

NetId
Netlist::newNet()
{
    return s_->nextNet++;
}

NetId
Netlist::addInput(const std::string &name)
{
    checkElaborated(false);
    auto [it, inserted] = s_->inputs.emplace(name, kNoNet);
    if (!inserted)
        panic("duplicate input '%s'", name.c_str());
    it->second = newNet();
    return it->second;
}

void
Netlist::addOutput(const std::string &name, NetId net)
{
    checkElaborated(false);
    if (!s_->outputs.emplace(name, net).second)
        panic("duplicate output '%s'", name.c_str());
}

NetId
Netlist::addCell(CellType type, const std::vector<NetId> &inputs,
                 const std::string &module)
{
    checkElaborated(false);
    if (isSequential(type))
        panic("use addDff for sequential cells");
    const CellInfo &info = cellInfo(type);
    if (inputs.size() != info.numInputs)
        panic("%s expects %u inputs, got %zu", info.name,
              info.numInputs, inputs.size());
    CellInst cell;
    cell.type = type;
    cell.inputs = inputs;
    cell.output = newNet();
    cell.module = module;
    s_->cells.push_back(std::move(cell));
    return s_->cells.back().output;
}

NetId
Netlist::addDff(NetId d, const std::string &module, bool init, bool x2)
{
    checkElaborated(false);
    CellInst cell;
    cell.type = x2 ? CellType::DFF_X2 : CellType::DFF_X1;
    cell.inputs = {d, kNoNet};   // D, (implicit clock slot)
    cell.output = newNet();
    cell.module = module;
    s_->cells.push_back(std::move(cell));
    s_->dffCells.push_back(s_->cells.size() - 1);
    s_->dffInit.push_back(init);
    return s_->cells.back().output;
}

void
Netlist::setDffInput(NetId q, NetId d)
{
    checkElaborated(false);
    for (size_t idx : s_->dffCells) {
        if (s_->cells[idx].output == q) {
            s_->cells[idx].inputs[0] = d;
            return;
        }
    }
    panic("setDffInput: net %u is not a DFF output", q);
}

void
Netlist::rewireCellInput(size_t cell, size_t input, NetId net)
{
    checkElaborated(false);
    if (cell >= s_->cells.size())
        panic("rewireCellInput: bad cell %zu", cell);
    if (input >= s_->cells[cell].inputs.size())
        panic("rewireCellInput: cell %zu has no input %zu", cell,
              input);
    if (net != kNoNet && net >= s_->nextNet)
        panic("rewireCellInput: bad net %u", net);
    s_->cells[cell].inputs[input] = net;
}

void
Netlist::rewireCellOutput(size_t cell, NetId net)
{
    checkElaborated(false);
    if (cell >= s_->cells.size())
        panic("rewireCellOutput: bad cell %zu", cell);
    if (net >= s_->nextNet)
        panic("rewireCellOutput: bad net %u", net);
    s_->cells[cell].output = net;
}

void
Netlist::nameNet(NetId net, const std::string &name)
{
    checkElaborated(false);
    if (net >= s_->nextNet)
        panic("nameNet: bad net %u", net);
    auto [it, inserted] = s_->labelToNet.emplace(name, net);
    if (!inserted)
        panic("duplicate net label '%s'", name.c_str());
    if (!s_->netLabels.emplace(net, name).second)
        panic("net %u already labeled '%s'", net,
              s_->netLabels.at(net).c_str());
}

NetId
Netlist::findNet(const std::string &name) const
{
    if (auto it = s_->labelToNet.find(name);
        it != s_->labelToNet.end())
        return it->second;
    if (auto it = s_->inputs.find(name); it != s_->inputs.end())
        return it->second;
    if (auto it = s_->outputs.find(name); it != s_->outputs.end())
        return it->second;
    return kNoNet;
}

std::string
Netlist::netName(NetId net) const
{
    if (net == kNoNet)
        return "<unconnected>";
    if (net == s_->zero)
        return "const0";
    if (net == s_->one)
        return "const1";
    for (const auto &[name, n] : s_->inputs)
        if (n == net)
            return name;
    for (const auto &[name, n] : s_->outputs)
        if (n == net)
            return name;
    if (auto it = s_->netLabels.find(net); it != s_->netLabels.end())
        return it->second;
    return strfmt("n%u", net);
}

std::vector<Netlist::PlanStep>
Netlist::planSteps() const
{
    checkElaborated(true);
    const EvalPlan &plan = s_->plan;
    std::vector<PlanStep> steps(plan.out.size());
    for (size_t i = 0; i < steps.size(); ++i) {
        steps[i].in = {plan.in[3 * i], plan.in[3 * i + 1],
                       plan.in[3 * i + 2]};
        steps[i].out = plan.out[i];
        steps[i].lut = plan.lut[i];
        steps[i].cell = plan.cell[i];
    }
    return steps;
}

std::vector<Netlist::PlanRun>
Netlist::planRuns() const
{
    checkElaborated(true);
    const EvalPlan &plan = s_->plan;
    std::vector<PlanRun> runs(plan.runOp.size());
    for (size_t r = 0; r < runs.size(); ++r) {
        runs[r].begin = plan.runBegin[r];
        runs[r].end = plan.runBegin[r + 1];
        runs[r].op = static_cast<WordOp>(plan.runOp[r]);
    }
    return runs;
}

NetId
Netlist::scratchNet() const
{
    return s_->nextNet;
}

std::vector<Netlist::DffInfo>
Netlist::dffs() const
{
    std::vector<DffInfo> out(s_->dffCells.size());
    for (size_t i = 0; i < out.size(); ++i) {
        size_t idx = s_->dffCells[i];
        out[i].d = s_->cells[idx].inputs[0];
        out[i].q = s_->cells[idx].output;
        out[i].cell = static_cast<uint32_t>(idx);
        out[i].init = s_->dffInit[i] != 0;
    }
    return out;
}

std::vector<NetId>
Netlist::undrivenNets() const
{
    std::vector<bool> driven(s_->nextNet, false);
    driven[s_->zero] = driven[s_->one] = true;
    for (const auto &[name, net] : s_->inputs)
        driven[net] = true;
    for (const auto &cell : s_->cells)
        if (cell.output != kNoNet && cell.output < s_->nextNet)
            driven[cell.output] = true;

    std::vector<bool> seen(s_->nextNet, false);
    std::vector<NetId> undriven;
    auto note = [&](NetId in) {
        if (in == kNoNet || in >= s_->nextNet)
            return;
        if (!driven[in] && !seen[in]) {
            seen[in] = true;
            undriven.push_back(in);
        }
    };
    for (const auto &cell : s_->cells) {
        // inputs[1] of a DFF is the implicit clock slot.
        size_t nin = isSequential(cell.type) ? 1 : cell.inputs.size();
        for (size_t k = 0; k < nin; ++k)
            note(cell.inputs[k]);
    }
    for (const auto &[name, net] : s_->outputs)
        note(net);
    return undriven;
}

std::vector<size_t>
Netlist::findCombCycle() const
{
    const auto &cells = s_->cells;
    // Producer cell for each net; DFF Q outputs are cycle breakers
    // (state, not combinational flow), so only comb cells count.
    std::vector<int64_t> producer(s_->nextNet, -1);
    for (size_t i = 0; i < cells.size(); ++i)
        if (!isSequential(cells[i].type) &&
            cells[i].output != kNoNet && cells[i].output < s_->nextNet)
            producer[cells[i].output] = static_cast<int64_t>(i);

    // Iterative DFS over consumer -> producer edges.
    // color: 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<uint8_t> color(cells.size(), 0);
    for (size_t root = 0; root < cells.size(); ++root) {
        if (color[root] || isSequential(cells[root].type))
            continue;
        std::vector<std::pair<size_t, size_t>> frames;
        std::vector<size_t> path;
        frames.emplace_back(root, 0);
        color[root] = 1;
        path.push_back(root);
        while (!frames.empty()) {
            auto &[c, k] = frames.back();
            if (k < cells[c].inputs.size()) {
                NetId in = cells[c].inputs[k++];
                if (in == kNoNet || in >= s_->nextNet ||
                    producer[in] < 0)
                    continue;
                auto p = static_cast<size_t>(producer[in]);
                if (color[p] == 1) {
                    // Back edge: the cycle is path[p..end], found in
                    // consumer->producer order; reverse it so each
                    // cell's output feeds the next one in the list.
                    auto it = std::find(path.begin(), path.end(), p);
                    std::vector<size_t> cycle(it, path.end());
                    std::reverse(cycle.begin(), cycle.end());
                    return cycle;
                }
                if (color[p] == 0) {
                    color[p] = 1;
                    frames.emplace_back(p, 0);
                    path.push_back(p);
                }
            } else {
                color[c] = 2;
                frames.pop_back();
                path.pop_back();
            }
        }
    }
    return {};
}

void
Netlist::compilePlan()
{
    EvalPlan &plan = s_->plan;
    const auto &cells = s_->cells;
    // Unused input slots point at the scratch net one past the last
    // real net: always 0 and unreachable by injectFault, so a stuck
    // fault on const0/const1 cannot leak into padded truth-table
    // index bits.
    const NetId scratch = s_->nextNet;

    size_t n = s_->evalOrder.size();
    plan.in.assign(3 * n, scratch);
    plan.out.resize(n);
    plan.lut.resize(n);
    plan.wop.resize(n);
    plan.cell.resize(n);
    for (size_t i = 0; i < n; ++i) {
        size_t idx = s_->evalOrder[i];
        const CellInst &cell = cells[idx];
        for (size_t k = 0; k < cell.inputs.size(); ++k)
            plan.in[3 * i + k] = cell.inputs[k];
        plan.out[i] = cell.output;
        plan.lut[i] = lutFor(cell.type);
        plan.wop[i] = static_cast<uint8_t>(wordOpFor(cell.type));
        plan.cell[i] = static_cast<uint32_t>(idx);
    }

    // Fuse adjacent same-op steps into straight-line runs. The
    // word-parallel evaluator dispatches once per run (threaded
    // dispatch) instead of classifying every step; the runs must
    // partition the plan exactly — planRuns() and the formal
    // word-plan encoding both rely on it.
    plan.runBegin.clear();
    plan.runOp.clear();
    for (size_t i = 0; i < n; ++i) {
        if (i == 0 || plan.wop[i] != plan.wop[i - 1]) {
            plan.runBegin.push_back(static_cast<uint32_t>(i));
            plan.runOp.push_back(plan.wop[i]);
        }
    }
    plan.runBegin.push_back(static_cast<uint32_t>(n));

    size_t nd = s_->dffCells.size();
    plan.dffD.resize(nd);
    plan.dffQ.resize(nd);
    plan.dffCell.resize(nd);
    for (size_t i = 0; i < nd; ++i) {
        size_t idx = s_->dffCells[i];
        plan.dffD[i] = cells[idx].inputs[0];
        plan.dffQ[i] = cells[idx].output;
        plan.dffCell[i] = static_cast<uint32_t>(idx);
    }
}

void
Netlist::elaborate()
{
    checkElaborated(false);
    const auto &cells = s_->cells;

    // Topological sort of combinational cells: a cell is ready once
    // all of its input nets are known (inputs, constants, DFF Q
    // outputs, or outputs of already-ordered cells).
    std::vector<bool> known(s_->nextNet, false);
    known[s_->zero] = known[s_->one] = true;
    for (const auto &[name, net] : s_->inputs)
        known[net] = true;
    for (size_t idx : s_->dffCells)
        known[cells[idx].output] = true;

    // Map net -> consuming comb cells, and count unresolved inputs.
    std::vector<std::vector<size_t>> consumers(s_->nextNet);
    std::vector<unsigned> pendingIn(cells.size(), 0);
    std::queue<size_t> ready;

    for (size_t i = 0; i < cells.size(); ++i) {
        if (isSequential(cells[i].type))
            continue;
        unsigned pending = 0;
        for (NetId in : cells[i].inputs) {
            if (in == kNoNet)
                panic("cell %zu has an unconnected input", i);
            if (!known[in]) {
                consumers[in].push_back(i);
                ++pending;
            }
        }
        pendingIn[i] = pending;
        if (!pending)
            ready.push(i);
    }

    s_->evalOrder.clear();
    while (!ready.empty()) {
        size_t i = ready.front();
        ready.pop();
        s_->evalOrder.push_back(i);
        NetId out = cells[i].output;
        known[out] = true;
        for (size_t c : consumers[out])
            if (--pendingIn[c] == 0)
                ready.push(c);
    }

    size_t comb = 0;
    for (const auto &cell : cells)
        if (!isSequential(cell.type))
            ++comb;
    if (s_->evalOrder.size() != comb) {
        // Name the culprits instead of just counting un-levelized
        // cells: either some nets are driven by nothing (so their
        // consumers never become ready) or there is a real
        // combinational cycle — report the actual path.
        auto cellDesc = [&](size_t i) {
            return strfmt("%s #%zu @%s (%s)",
                          cellInfo(cells[i].type).name, i,
                          cells[i].module.c_str(),
                          netName(cells[i].output).c_str());
        };
        std::vector<NetId> undriven = undrivenNets();
        if (!undriven.empty()) {
            std::string list;
            for (size_t k = 0; k < undriven.size() && k < 8; ++k)
                list += (k ? ", " : "") + netName(undriven[k]);
            if (undriven.size() > 8)
                list += ", ...";
            panic("netlist '%s': %zu net(s) consumed but never "
                  "driven: %s", s_->name.c_str(), undriven.size(),
                  list.c_str());
        }
        std::vector<size_t> cycle = findCombCycle();
        if (!cycle.empty()) {
            std::string path;
            for (size_t i : cycle)
                path += cellDesc(i) + " -> ";
            path += cellDesc(cycle.front());
            panic("netlist '%s' has a combinational loop: %s",
                  s_->name.c_str(), path.c_str());
        }
        panic("netlist '%s' has a combinational loop (%zu of %zu "
              "cells ordered)", s_->name.c_str(),
              s_->evalOrder.size(), comb);
    }

    // Check DFF D inputs are wired.
    for (size_t idx : s_->dffCells)
        if (cells[idx].inputs[0] == kNoNet)
            panic("DFF (net %u) has an unconnected D input",
                  cells[idx].output);

    compilePlan();

    // One extra trailing byte: the always-0 scratch net backing the
    // padded input slots of the plan.
    netVal_.assign(s_->nextNet + 1, 0);
    netVal_[s_->one] = 1;
    dffState_.assign(s_->dffCells.size(), 0);
    forceMask_.assign(s_->nextNet, 0);
    forceVal_.assign(s_->nextNet, 0);
    toggles_.assign(cells.size(), 0);
    elaborated_ = true;
    reset();
}

void
Netlist::checkElaborated(bool want) const
{
    if (elaborated_ != want)
        panic("netlist '%s': %s", s_->name.c_str(),
              want ? "not elaborated yet" : "already elaborated");
}

void
Netlist::setInput(const std::string &name, bool value)
{
    checkElaborated(true);
    auto it = s_->inputs.find(name);
    if (it == s_->inputs.end())
        panic("no input named '%s'", name.c_str());
    netVal_[it->second] = value;
}

void
Netlist::setBus(const std::string &prefix, unsigned width,
                unsigned value)
{
    for (unsigned i = 0; i < width; ++i)
        setInput(prefix + std::to_string(i), (value >> i) & 1u);
}

BusHandle
Netlist::inputBus(const std::string &prefix, unsigned width) const
{
    BusHandle handle;
    handle.input_ = true;
    handle.nets_.reserve(width);
    for (unsigned i = 0; i < width; ++i) {
        auto it = s_->inputs.find(prefix + std::to_string(i));
        if (it == s_->inputs.end())
            panic("no input named '%s%u'", prefix.c_str(), i);
        handle.nets_.push_back(it->second);
    }
    return handle;
}

BusHandle
Netlist::outputBus(const std::string &prefix, unsigned width) const
{
    BusHandle handle;
    handle.nets_.reserve(width);
    for (unsigned i = 0; i < width; ++i) {
        auto it = s_->outputs.find(prefix + std::to_string(i));
        if (it == s_->outputs.end())
            panic("no output named '%s%u'", prefix.c_str(), i);
        handle.nets_.push_back(it->second);
    }
    return handle;
}

void
Netlist::setBus(const BusHandle &bus, unsigned value)
{
    checkElaborated(true);
    if (!bus.input_)
        panic("setBus: handle does not name an input bus");
    for (unsigned i = 0; i < bus.nets_.size(); ++i)
        netVal_[bus.nets_[i]] = (value >> i) & 1u;
}

unsigned
Netlist::bus(const BusHandle &bus) const
{
    checkElaborated(true);
    unsigned v = 0;
    for (unsigned i = 0; i < bus.nets_.size(); ++i)
        v |= static_cast<unsigned>(netVal_[bus.nets_[i]]) << i;
    return v;
}

void
Netlist::applyFaultForces()
{
    // Transient windows open and close against the instance cycle
    // counter: rebuild the force state of every transient-touched
    // net each call (stuck-at faults reassert themselves once a
    // window closes). The rebuild is O(faults + transients), both
    // tiny, and skipped entirely on the fault-free fast path.
    if (!transients_.empty()) {
        for (const auto &t : transients_) {
            forceMask_[t.net] = 0;
            forceVal_[t.net] = 0;
        }
        for (const auto &f : faults_) {
            forceMask_[f.net] = 0xFF;
            forceVal_[f.net] = f.value;
        }
        for (const auto &t : transients_) {
            if (cycle_ >= t.fromCycle && cycle_ < t.untilCycle) {
                forceMask_[t.net] = 0xFF;
                forceVal_[t.net] = t.value;
            }
        }
    }

    // Apply fault forcing to primary/state nets (cell outputs and
    // DFF Q nets are handled by the force-mask blends).
    for (const auto &f : faults_)
        netVal_[f.net] = f.value;
    for (const auto &t : transients_)
        if (cycle_ >= t.fromCycle && cycle_ < t.untilCycle)
            netVal_[t.net] = t.value;
}

void
Netlist::evaluate()
{
    checkElaborated(true);

    applyFaultForces();

    // Expose DFF state on Q nets (force-masked blend).
    const EvalPlan &plan = s_->plan;
    size_t nd = plan.dffQ.size();
    for (size_t i = 0; i < nd; ++i) {
        NetId q = plan.dffQ[i];
        uint8_t m = forceMask_[q];
        netVal_[q] = (dffState_[i] & ~m) | (forceVal_[q] & m);
    }

    const NetId *in = plan.in.data();
    const NetId *out = plan.out.data();
    const uint8_t *lut = plan.lut.data();
    const uint32_t *cell = plan.cell.data();
    uint8_t *val = netVal_.data();
    const uint8_t *mask = forceMask_.data();
    const uint8_t *fval = forceVal_.data();
    uint64_t *toggles = toggles_.data();

    size_t n = plan.out.size();
    for (size_t i = 0; i < n; ++i) {
        unsigned idx = val[in[3 * i]] | (val[in[3 * i + 1]] << 1) |
                       (val[in[3 * i + 2]] << 2);
        uint8_t v = (lut[i] >> idx) & 1;
        NetId o = out[i];
        uint8_t m = mask[o];
        v = static_cast<uint8_t>((v & ~m) | (fval[o] & m));
        toggles[cell[i]] += val[o] ^ v;
        val[o] = v;
    }
}

void
Netlist::evaluateReference()
{
    checkElaborated(true);

    applyFaultForces();

    const auto &cells = s_->cells;
    const auto &dffCells = s_->dffCells;
    for (size_t i = 0; i < dffCells.size(); ++i) {
        NetId q = cells[dffCells[i]].output;
        if (!forceMask_[q])
            netVal_[q] = dffState_[i];
        else
            netVal_[q] = forceVal_[q];
    }

    for (size_t idx : s_->evalOrder) {
        const CellInst &cell = cells[idx];
        auto in = [&](size_t k) {
            return netVal_[cell.inputs[k]] != 0;
        };
        bool v = combValue(cell.type, in(0),
                           cell.inputs.size() > 1 && in(1),
                           cell.inputs.size() > 2 && in(2));
        NetId out = cell.output;
        if (forceMask_[out])
            v = forceVal_[out];
        if ((netVal_[out] != 0) != v)
            ++toggles_[idx];
        netVal_[out] = v;
    }
}

void
Netlist::clockEdge()
{
    checkElaborated(true);
    const EvalPlan &plan = s_->plan;
    size_t nd = plan.dffD.size();
    for (size_t i = 0; i < nd; ++i) {
        uint8_t d = netVal_[plan.dffD[i]];
        NetId q = plan.dffQ[i];
        uint8_t m = forceMask_[q];
        d = static_cast<uint8_t>((d & ~m) | (forceVal_[q] & m));
        toggles_[plan.dffCell[i]] += dffState_[i] ^ d;
        dffState_[i] = d;
    }
    ++cycle_;
}

bool
Netlist::output(const std::string &name) const
{
    auto it = s_->outputs.find(name);
    if (it == s_->outputs.end())
        panic("no output named '%s'", name.c_str());
    return netVal_[it->second];
}

unsigned
Netlist::bus(const std::string &prefix, unsigned width) const
{
    unsigned v = 0;
    for (unsigned i = 0; i < width; ++i)
        v |= static_cast<unsigned>(
                 output(prefix + std::to_string(i))) << i;
    return v;
}

bool
Netlist::netValue(NetId net) const
{
    checkElaborated(true);
    if (net >= s_->nextNet)
        panic("netValue: bad net %u", net);
    return netVal_[net];
}

void
Netlist::reset()
{
    checkElaborated(true);
    for (size_t i = 0; i < dffState_.size(); ++i)
        dffState_[i] = s_->dffInit[i];
    std::fill(netVal_.begin(), netVal_.end(), 0);
    netVal_[s_->one] = 1;
}

void
Netlist::injectFault(const StuckFault &fault)
{
    checkElaborated(true);
    if (fault.net >= s_->nextNet)
        panic("injectFault: bad net %u", fault.net);
    faults_.push_back(fault);
    forceMask_[fault.net] = 0xFF;
    forceVal_[fault.net] = fault.value;
}

void
Netlist::clearFaults()
{
    checkElaborated(true);
    for (const auto &f : faults_) {
        forceMask_[f.net] = 0;
        forceVal_[f.net] = 0;
    }
    faults_.clear();
}

void
Netlist::injectTransient(const TransientFault &fault)
{
    checkElaborated(true);
    if (fault.net >= s_->nextNet)
        panic("injectTransient: bad net %u", fault.net);
    if (fault.untilCycle <= fault.fromCycle)
        panic("injectTransient: empty window [%llu, %llu)",
              static_cast<unsigned long long>(fault.fromCycle),
              static_cast<unsigned long long>(fault.untilCycle));
    transients_.push_back(fault);
}

void
Netlist::clearTransients()
{
    checkElaborated(true);
    // Release any currently forced windows, then let the stuck-at
    // faults reassert their own force state.
    for (const auto &t : transients_) {
        forceMask_[t.net] = 0;
        forceVal_[t.net] = 0;
    }
    transients_.clear();
    for (const auto &f : faults_) {
        forceMask_[f.net] = 0xFF;
        forceVal_[f.net] = f.value;
    }
}

bool
Netlist::dffValue(size_t index) const
{
    checkElaborated(true);
    if (index >= dffState_.size())
        panic("dffValue: bad DFF %zu", index);
    return dffState_[index] != 0;
}

void
Netlist::flipDff(size_t index)
{
    checkElaborated(true);
    if (index >= dffState_.size())
        panic("flipDff: bad DFF %zu", index);
    dffState_[index] ^= 1;
}

std::vector<uint8_t>
Netlist::saveDffState() const
{
    checkElaborated(true);
    return dffState_;
}

void
Netlist::restoreDffState(const std::vector<uint8_t> &state)
{
    checkElaborated(true);
    if (state.size() != dffState_.size())
        panic("restoreDffState: %zu bits, netlist has %zu",
              state.size(), dffState_.size());
    dffState_ = state;
}

unsigned
Netlist::totalDevices() const
{
    unsigned n = 0;
    for (const auto &cell : s_->cells)
        n += cellInfo(cell.type).deviceCount;
    return n;
}

double
Netlist::totalNand2Area() const
{
    double a = 0.0;
    for (const auto &cell : s_->cells)
        a += cellInfo(cell.type).nand2Area;
    return a;
}

double
Netlist::totalStaticCurrentUa() const
{
    double c = 0.0;
    for (const auto &cell : s_->cells)
        c += cellInfo(cell.type).staticCurrentUa;
    return c;
}

std::map<std::string, ModuleStats>
Netlist::moduleBreakdown() const
{
    std::map<std::string, ModuleStats> out;
    for (const auto &cell : s_->cells) {
        const CellInfo &info = cellInfo(cell.type);
        ModuleStats &m = out[cell.module];
        ++m.cells;
        m.devices += info.deviceCount;
        m.nand2Area += info.nand2Area;
        if (isSequential(cell.type))
            m.nand2AreaSeq += info.nand2Area;
        m.staticCurrentUa += info.staticCurrentUa;
    }
    return out;
}

double
Netlist::criticalPathDelayUnits() const
{
    // Longest-path DP in evaluation (topological) order; sources
    // (inputs, constants, DFF Q) start at zero arrival.
    std::vector<double> arrival(s_->nextNet, 0.0);
    double worst = 0.0;
    for (size_t idx : s_->evalOrder) {
        const CellInst &cell = s_->cells[idx];
        double in_max = 0.0;
        for (NetId in : cell.inputs)
            if (in != kNoNet)
                in_max = std::max(in_max, arrival[in]);
        double t = in_max + cellInfo(cell.type).delayUnits;
        arrival[cell.output] = t;
        worst = std::max(worst, t);
    }
    // Include DFF setup path (D arrival + DFF delay weight).
    for (size_t idx : s_->dffCells) {
        const CellInst &cell = s_->cells[idx];
        worst = std::max(worst, arrival[cell.inputs[0]] +
                                cellInfo(cell.type).delayUnits);
    }
    return worst;
}

const std::vector<uint64_t> &
Netlist::toggleCounts() const
{
    return toggles_;
}

void
Netlist::resetToggles()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
}

uint64_t
Netlist::minCellToggles() const
{
    uint64_t m = ~0ull;
    for (uint64_t t : toggles_)
        m = std::min(m, t);
    return toggles_.empty() ? 0 : m;
}

double
Netlist::meanCellToggles() const
{
    if (toggles_.empty())
        return 0.0;
    double sum = 0.0;
    for (uint64_t t : toggles_)
        sum += static_cast<double>(t);
    return sum / static_cast<double>(toggles_.size());
}

} // namespace flexi
