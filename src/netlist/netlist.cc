#include "netlist.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace flexi
{

Netlist::Netlist(std::string name)
    : name_(std::move(name))
{
    zero_ = newNet();
    one_ = newNet();
}

NetId
Netlist::newNet()
{
    return nextNet_++;
}

NetId
Netlist::addInput(const std::string &name)
{
    checkElaborated(false);
    auto [it, inserted] = inputs_.emplace(name, kNoNet);
    if (!inserted)
        panic("duplicate input '%s'", name.c_str());
    it->second = newNet();
    return it->second;
}

void
Netlist::addOutput(const std::string &name, NetId net)
{
    checkElaborated(false);
    if (!outputs_.emplace(name, net).second)
        panic("duplicate output '%s'", name.c_str());
}

NetId
Netlist::addCell(CellType type, const std::vector<NetId> &inputs,
                 const std::string &module)
{
    checkElaborated(false);
    if (isSequential(type))
        panic("use addDff for sequential cells");
    const CellInfo &info = cellInfo(type);
    if (inputs.size() != info.numInputs)
        panic("%s expects %u inputs, got %zu", info.name,
              info.numInputs, inputs.size());
    CellInst cell;
    cell.type = type;
    cell.inputs = inputs;
    cell.output = newNet();
    cell.module = module;
    cells_.push_back(std::move(cell));
    return cells_.back().output;
}

NetId
Netlist::addDff(NetId d, const std::string &module, bool init, bool x2)
{
    checkElaborated(false);
    CellInst cell;
    cell.type = x2 ? CellType::DFF_X2 : CellType::DFF_X1;
    cell.inputs = {d, kNoNet};   // D, (implicit clock slot)
    cell.output = newNet();
    cell.module = module;
    cells_.push_back(std::move(cell));
    dffCells_.push_back(cells_.size() - 1);
    dffState_.push_back(init);
    dffInit_.push_back(init);
    return cells_.back().output;
}

void
Netlist::setDffInput(NetId q, NetId d)
{
    checkElaborated(false);
    for (size_t idx : dffCells_) {
        if (cells_[idx].output == q) {
            cells_[idx].inputs[0] = d;
            return;
        }
    }
    panic("setDffInput: net %u is not a DFF output", q);
}

void
Netlist::rewireCellInput(size_t cell, size_t input, NetId net)
{
    checkElaborated(false);
    if (cell >= cells_.size())
        panic("rewireCellInput: bad cell %zu", cell);
    if (input >= cells_[cell].inputs.size())
        panic("rewireCellInput: cell %zu has no input %zu", cell,
              input);
    if (net != kNoNet && net >= nextNet_)
        panic("rewireCellInput: bad net %u", net);
    cells_[cell].inputs[input] = net;
}

void
Netlist::rewireCellOutput(size_t cell, NetId net)
{
    checkElaborated(false);
    if (cell >= cells_.size())
        panic("rewireCellOutput: bad cell %zu", cell);
    if (net >= nextNet_)
        panic("rewireCellOutput: bad net %u", net);
    cells_[cell].output = net;
}

std::string
Netlist::netName(NetId net) const
{
    if (net == kNoNet)
        return "<unconnected>";
    if (net == zero_)
        return "const0";
    if (net == one_)
        return "const1";
    for (const auto &[name, n] : inputs_)
        if (n == net)
            return name;
    for (const auto &[name, n] : outputs_)
        if (n == net)
            return name;
    return strfmt("n%u", net);
}

std::vector<NetId>
Netlist::undrivenNets() const
{
    std::vector<bool> driven(nextNet_, false);
    driven[zero_] = driven[one_] = true;
    for (const auto &[name, net] : inputs_)
        driven[net] = true;
    for (const auto &cell : cells_)
        if (cell.output != kNoNet && cell.output < nextNet_)
            driven[cell.output] = true;

    std::vector<bool> seen(nextNet_, false);
    std::vector<NetId> undriven;
    auto note = [&](NetId in) {
        if (in == kNoNet || in >= nextNet_)
            return;
        if (!driven[in] && !seen[in]) {
            seen[in] = true;
            undriven.push_back(in);
        }
    };
    for (const auto &cell : cells_) {
        // inputs[1] of a DFF is the implicit clock slot.
        size_t nin = isSequential(cell.type) ? 1 : cell.inputs.size();
        for (size_t k = 0; k < nin; ++k)
            note(cell.inputs[k]);
    }
    for (const auto &[name, net] : outputs_)
        note(net);
    return undriven;
}

std::vector<size_t>
Netlist::findCombCycle() const
{
    // Producer cell for each net; DFF Q outputs are cycle breakers
    // (state, not combinational flow), so only comb cells count.
    std::vector<int64_t> producer(nextNet_, -1);
    for (size_t i = 0; i < cells_.size(); ++i)
        if (!isSequential(cells_[i].type) &&
            cells_[i].output != kNoNet && cells_[i].output < nextNet_)
            producer[cells_[i].output] = static_cast<int64_t>(i);

    // Iterative DFS over consumer -> producer edges.
    // color: 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<uint8_t> color(cells_.size(), 0);
    for (size_t root = 0; root < cells_.size(); ++root) {
        if (color[root] || isSequential(cells_[root].type))
            continue;
        std::vector<std::pair<size_t, size_t>> frames;
        std::vector<size_t> path;
        frames.emplace_back(root, 0);
        color[root] = 1;
        path.push_back(root);
        while (!frames.empty()) {
            auto &[c, k] = frames.back();
            if (k < cells_[c].inputs.size()) {
                NetId in = cells_[c].inputs[k++];
                if (in == kNoNet || in >= nextNet_ ||
                    producer[in] < 0)
                    continue;
                auto p = static_cast<size_t>(producer[in]);
                if (color[p] == 1) {
                    // Back edge: the cycle is path[p..end], found in
                    // consumer->producer order; reverse it so each
                    // cell's output feeds the next one in the list.
                    auto it = std::find(path.begin(), path.end(), p);
                    std::vector<size_t> cycle(it, path.end());
                    std::reverse(cycle.begin(), cycle.end());
                    return cycle;
                }
                if (color[p] == 0) {
                    color[p] = 1;
                    frames.emplace_back(p, 0);
                    path.push_back(p);
                }
            } else {
                color[c] = 2;
                frames.pop_back();
                path.pop_back();
            }
        }
    }
    return {};
}

void
Netlist::elaborate()
{
    checkElaborated(false);

    // Topological sort of combinational cells: a cell is ready once
    // all of its input nets are known (inputs, constants, DFF Q
    // outputs, or outputs of already-ordered cells).
    std::vector<bool> known(nextNet_, false);
    known[zero_] = known[one_] = true;
    for (const auto &[name, net] : inputs_)
        known[net] = true;
    for (size_t idx : dffCells_)
        known[cells_[idx].output] = true;

    // Map net -> consuming comb cells, and count unresolved inputs.
    std::vector<std::vector<size_t>> consumers(nextNet_);
    std::vector<unsigned> pendingIn(cells_.size(), 0);
    std::queue<size_t> ready;

    for (size_t i = 0; i < cells_.size(); ++i) {
        if (isSequential(cells_[i].type))
            continue;
        unsigned pending = 0;
        for (NetId in : cells_[i].inputs) {
            if (in == kNoNet)
                panic("cell %zu has an unconnected input", i);
            if (!known[in]) {
                consumers[in].push_back(i);
                ++pending;
            }
        }
        pendingIn[i] = pending;
        if (!pending)
            ready.push(i);
    }

    evalOrder_.clear();
    while (!ready.empty()) {
        size_t i = ready.front();
        ready.pop();
        evalOrder_.push_back(i);
        NetId out = cells_[i].output;
        known[out] = true;
        for (size_t c : consumers[out])
            if (--pendingIn[c] == 0)
                ready.push(c);
    }

    size_t comb = 0;
    for (const auto &cell : cells_)
        if (!isSequential(cell.type))
            ++comb;
    if (evalOrder_.size() != comb) {
        // Name the culprits instead of just counting un-levelized
        // cells: either some nets are driven by nothing (so their
        // consumers never become ready) or there is a real
        // combinational cycle — report the actual path.
        auto cellDesc = [&](size_t i) {
            return strfmt("%s #%zu @%s (%s)",
                          cellInfo(cells_[i].type).name, i,
                          cells_[i].module.c_str(),
                          netName(cells_[i].output).c_str());
        };
        std::vector<NetId> undriven = undrivenNets();
        if (!undriven.empty()) {
            std::string list;
            for (size_t k = 0; k < undriven.size() && k < 8; ++k)
                list += (k ? ", " : "") + netName(undriven[k]);
            if (undriven.size() > 8)
                list += ", ...";
            panic("netlist '%s': %zu net(s) consumed but never "
                  "driven: %s", name_.c_str(), undriven.size(),
                  list.c_str());
        }
        std::vector<size_t> cycle = findCombCycle();
        if (!cycle.empty()) {
            std::string path;
            for (size_t i : cycle)
                path += cellDesc(i) + " -> ";
            path += cellDesc(cycle.front());
            panic("netlist '%s' has a combinational loop: %s",
                  name_.c_str(), path.c_str());
        }
        panic("netlist '%s' has a combinational loop (%zu of %zu "
              "cells ordered)", name_.c_str(), evalOrder_.size(),
              comb);
    }

    // Check DFF D inputs are wired.
    for (size_t idx : dffCells_)
        if (cells_[idx].inputs[0] == kNoNet)
            panic("DFF (net %u) has an unconnected D input",
                  cells_[idx].output);

    netVal_.assign(nextNet_, false);
    netVal_[one_] = true;
    forced_.assign(nextNet_, false);
    forcedVal_.assign(nextNet_, false);
    toggles_.assign(cells_.size(), 0);
    elaborated_ = true;
    reset();
}

void
Netlist::checkElaborated(bool want) const
{
    if (elaborated_ != want)
        panic("netlist '%s': %s", name_.c_str(),
              want ? "not elaborated yet" : "already elaborated");
}

void
Netlist::setInput(const std::string &name, bool value)
{
    checkElaborated(true);
    auto it = inputs_.find(name);
    if (it == inputs_.end())
        panic("no input named '%s'", name.c_str());
    netVal_[it->second] = value;
}

void
Netlist::setBus(const std::string &prefix, unsigned width,
                unsigned value)
{
    for (unsigned i = 0; i < width; ++i)
        setInput(prefix + std::to_string(i), (value >> i) & 1u);
}

void
Netlist::evaluate()
{
    checkElaborated(true);

    // Apply fault forcing to primary/state nets first.
    for (const auto &f : faults_)
        netVal_[f.net] = f.value;

    // Expose DFF state on Q nets.
    for (size_t i = 0; i < dffCells_.size(); ++i) {
        NetId q = cells_[dffCells_[i]].output;
        if (!forced_[q])
            netVal_[q] = dffState_[i];
    }

    for (size_t idx : evalOrder_) {
        const CellInst &cell = cells_[idx];
        auto in = [&](size_t k) { return netVal_[cell.inputs[k]]; };
        bool v = false;
        switch (cell.type) {
          case CellType::INV_X1:
          case CellType::INV_X2:
            v = !in(0);
            break;
          case CellType::BUF_X1:
          case CellType::BUF_X2:
            v = in(0);
            break;
          case CellType::NAND2:
            v = !(in(0) && in(1));
            break;
          case CellType::NAND3:
            v = !(in(0) && in(1) && in(2));
            break;
          case CellType::NOR2:
            v = !(in(0) || in(1));
            break;
          case CellType::NOR3:
            v = !(in(0) || in(1) || in(2));
            break;
          case CellType::XOR2:
            v = in(0) != in(1);
            break;
          case CellType::XNOR2:
            v = in(0) == in(1);
            break;
          case CellType::MUX2:
            // inputs: {a, b, sel} -> sel ? b : a
            v = in(2) ? in(1) : in(0);
            break;
          default:
            panic("evaluate: unexpected cell type");
        }
        NetId out = cell.output;
        if (forced_[out])
            v = forcedVal_[out];
        if (netVal_[out] != v)
            ++toggles_[idx];
        netVal_[out] = v;
    }
}

void
Netlist::clockEdge()
{
    checkElaborated(true);
    for (size_t i = 0; i < dffCells_.size(); ++i) {
        size_t idx = dffCells_[i];
        bool d = netVal_[cells_[idx].inputs[0]];
        NetId q = cells_[idx].output;
        if (forced_[q])
            d = forcedVal_[q];
        if (dffState_[i] != d)
            ++toggles_[idx];
        dffState_[i] = d;
    }
}

bool
Netlist::output(const std::string &name) const
{
    auto it = outputs_.find(name);
    if (it == outputs_.end())
        panic("no output named '%s'", name.c_str());
    return netVal_[it->second];
}

unsigned
Netlist::bus(const std::string &prefix, unsigned width) const
{
    unsigned v = 0;
    for (unsigned i = 0; i < width; ++i)
        v |= static_cast<unsigned>(
                 output(prefix + std::to_string(i))) << i;
    return v;
}

bool
Netlist::netValue(NetId net) const
{
    checkElaborated(true);
    if (net >= netVal_.size())
        panic("netValue: bad net %u", net);
    return netVal_[net];
}

void
Netlist::reset()
{
    checkElaborated(true);
    for (size_t i = 0; i < dffState_.size(); ++i)
        dffState_[i] = dffInit_[i];
    std::fill(netVal_.begin(), netVal_.end(), false);
    netVal_[one_] = true;
}

void
Netlist::injectFault(const StuckFault &fault)
{
    checkElaborated(true);
    if (fault.net >= nextNet_)
        panic("injectFault: bad net %u", fault.net);
    faults_.push_back(fault);
    forced_[fault.net] = true;
    forcedVal_[fault.net] = fault.value;
}

void
Netlist::clearFaults()
{
    checkElaborated(true);
    for (const auto &f : faults_) {
        forced_[f.net] = false;
        forcedVal_[f.net] = false;
    }
    faults_.clear();
}

unsigned
Netlist::totalDevices() const
{
    unsigned n = 0;
    for (const auto &cell : cells_)
        n += cellInfo(cell.type).deviceCount;
    return n;
}

double
Netlist::totalNand2Area() const
{
    double a = 0.0;
    for (const auto &cell : cells_)
        a += cellInfo(cell.type).nand2Area;
    return a;
}

double
Netlist::totalStaticCurrentUa() const
{
    double c = 0.0;
    for (const auto &cell : cells_)
        c += cellInfo(cell.type).staticCurrentUa;
    return c;
}

std::map<std::string, ModuleStats>
Netlist::moduleBreakdown() const
{
    std::map<std::string, ModuleStats> out;
    for (const auto &cell : cells_) {
        const CellInfo &info = cellInfo(cell.type);
        ModuleStats &m = out[cell.module];
        ++m.cells;
        m.devices += info.deviceCount;
        m.nand2Area += info.nand2Area;
        if (isSequential(cell.type))
            m.nand2AreaSeq += info.nand2Area;
        m.staticCurrentUa += info.staticCurrentUa;
    }
    return out;
}

double
Netlist::criticalPathDelayUnits() const
{
    // Longest-path DP in evaluation (topological) order; sources
    // (inputs, constants, DFF Q) start at zero arrival.
    std::vector<double> arrival(nextNet_, 0.0);
    double worst = 0.0;
    for (size_t idx : evalOrder_) {
        const CellInst &cell = cells_[idx];
        double in_max = 0.0;
        for (NetId in : cell.inputs)
            if (in != kNoNet)
                in_max = std::max(in_max, arrival[in]);
        double t = in_max + cellInfo(cell.type).delayUnits;
        arrival[cell.output] = t;
        worst = std::max(worst, t);
    }
    // Include DFF setup path (D arrival + DFF delay weight).
    for (size_t idx : dffCells_) {
        const CellInst &cell = cells_[idx];
        worst = std::max(worst, arrival[cell.inputs[0]] +
                                cellInfo(cell.type).delayUnits);
    }
    return worst;
}

const std::vector<uint64_t> &
Netlist::toggleCounts() const
{
    return toggles_;
}

void
Netlist::resetToggles()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
}

uint64_t
Netlist::minCellToggles() const
{
    uint64_t m = ~0ull;
    for (uint64_t t : toggles_)
        m = std::min(m, t);
    return toggles_.empty() ? 0 : m;
}

double
Netlist::meanCellToggles() const
{
    if (toggles_.empty())
        return 0.0;
    double sum = 0.0;
    for (uint64_t t : toggles_)
        sum += static_cast<double>(t);
    return sum / static_cast<double>(toggles_.size());
}

} // namespace flexi
