#include "lane_batch.hh"

#include "common/logging.hh"

namespace flexi
{

LaneBatch::LaneBatch(const Netlist &golden, unsigned lanes)
    : s_(golden.s_), lanes_(lanes)
{
    if (!golden.elaborated())
        panic("LaneBatch: netlist '%s' must be elaborated",
              s_->name.c_str());
    if (lanes_ == 0 || lanes_ > kMaxLanes)
        panic("LaneBatch: bad lane count %u", lanes_);
    laneMask_ = lanes_ == kMaxLanes ? ~0ull
                                    : ((1ull << lanes_) - 1);
    // One extra trailing word: the always-0 scratch net backing the
    // padded input slots of the plan (same layout as the scalar
    // evaluator's trailing scratch byte).
    val64_.assign(s_->nextNet + 1, 0);
    dffState64_.assign(s_->dffCells.size(), 0);
    mask64_.assign(s_->nextNet, 0);
    fval64_.assign(s_->nextNet, 0);
    reset();
}

void
LaneBatch::checkLane(unsigned lane) const
{
    if (lane >= lanes_)
        panic("LaneBatch: lane %u out of range (%u lanes)", lane,
              lanes_);
}

void
LaneBatch::injectFault(unsigned lane, const StuckFault &fault)
{
    checkLane(lane);
    if (fault.net >= s_->nextNet)
        panic("injectFault: bad net %u", fault.net);
    faults_.push_back({lane, fault});
    uint64_t bit = 1ull << lane;
    mask64_[fault.net] |= bit;
    fval64_[fault.net] = (fval64_[fault.net] & ~bit) |
                         (fault.value ? bit : 0);
}

void
LaneBatch::clearFaults()
{
    for (const auto &f : faults_) {
        uint64_t bit = 1ull << f.lane;
        mask64_[f.f.net] &= ~bit;
        fval64_[f.f.net] &= ~bit;
    }
    faults_.clear();
}

void
LaneBatch::injectTransient(unsigned lane, const TransientFault &fault)
{
    checkLane(lane);
    if (fault.net >= s_->nextNet)
        panic("injectTransient: bad net %u", fault.net);
    if (fault.untilCycle <= fault.fromCycle)
        panic("injectTransient: empty window [%llu, %llu)",
              static_cast<unsigned long long>(fault.fromCycle),
              static_cast<unsigned long long>(fault.untilCycle));
    transients_.push_back({lane, fault});
}

void
LaneBatch::clearTransients()
{
    // Release any currently forced windows, then let the stuck-at
    // faults reassert their own force bits (mirrors the scalar
    // clearTransients at bit granularity).
    for (const auto &t : transients_) {
        uint64_t bit = 1ull << t.lane;
        mask64_[t.f.net] &= ~bit;
        fval64_[t.f.net] &= ~bit;
    }
    transients_.clear();
    for (const auto &f : faults_) {
        uint64_t bit = 1ull << f.lane;
        mask64_[f.f.net] |= bit;
        fval64_[f.f.net] = (fval64_[f.f.net] & ~bit) |
                           (f.f.value ? bit : 0);
    }
}

void
LaneBatch::flipDff(unsigned lane, size_t index)
{
    checkLane(lane);
    if (index >= dffState64_.size())
        panic("flipDff: bad DFF %zu", index);
    dffState64_[index] ^= 1ull << lane;
}

std::vector<uint8_t>
LaneBatch::saveDffState(unsigned lane) const
{
    checkLane(lane);
    std::vector<uint8_t> state(dffState64_.size());
    for (size_t i = 0; i < dffState64_.size(); ++i)
        state[i] = (dffState64_[i] >> lane) & 1;
    return state;
}

void
LaneBatch::restoreDffState(unsigned lane,
                           const std::vector<uint8_t> &state)
{
    checkLane(lane);
    if (state.size() != dffState64_.size())
        panic("restoreDffState: %zu bits, netlist has %zu",
              state.size(), dffState64_.size());
    uint64_t bit = 1ull << lane;
    for (size_t i = 0; i < dffState64_.size(); ++i)
        dffState64_[i] = state[i] ? dffState64_[i] | bit
                                  : dffState64_[i] & ~bit;
}

void
LaneBatch::reset()
{
    for (size_t i = 0; i < dffState64_.size(); ++i)
        dffState64_[i] = s_->dffInit[i] ? ~0ull : 0;
    std::fill(val64_.begin(), val64_.end(), 0);
    val64_[s_->one] = ~0ull;
}

void
LaneBatch::applyFaultForces()
{
    // Per-lane mirror of the scalar force rebuild: transient windows
    // open and close against the batch cycle counter; stuck-at bits
    // reassert themselves once a lane's window closes.
    if (!transients_.empty()) {
        for (const auto &t : transients_) {
            uint64_t bit = 1ull << t.lane;
            mask64_[t.f.net] &= ~bit;
            fval64_[t.f.net] &= ~bit;
        }
        for (const auto &f : faults_) {
            uint64_t bit = 1ull << f.lane;
            mask64_[f.f.net] |= bit;
            fval64_[f.f.net] = (fval64_[f.f.net] & ~bit) |
                               (f.f.value ? bit : 0);
        }
        for (const auto &t : transients_) {
            if (cycle_ >= t.f.fromCycle && cycle_ < t.f.untilCycle) {
                uint64_t bit = 1ull << t.lane;
                mask64_[t.f.net] |= bit;
                fval64_[t.f.net] = (fval64_[t.f.net] & ~bit) |
                                   (t.f.value ? bit : 0);
            }
        }
    }

    // Apply fault forcing to primary/state nets (cell outputs and
    // DFF Q nets are handled by the force-mask blends).
    for (const auto &f : faults_) {
        uint64_t bit = 1ull << f.lane;
        val64_[f.f.net] = (val64_[f.f.net] & ~bit) |
                          (f.f.value ? bit : 0);
    }
    for (const auto &t : transients_) {
        if (cycle_ >= t.f.fromCycle && cycle_ < t.f.untilCycle) {
            uint64_t bit = 1ull << t.lane;
            val64_[t.f.net] = (val64_[t.f.net] & ~bit) |
                              (t.f.value ? bit : 0);
        }
    }
}

template <bool kToggles>
void
LaneBatch::evaluateImpl()
{
    applyFaultForces();

    // Expose DFF state on Q nets (force-masked blend, all lanes).
    const Netlist::EvalPlan &plan = s_->plan;
    size_t nd = plan.dffQ.size();
    for (size_t i = 0; i < nd; ++i) {
        NetId q = plan.dffQ[i];
        uint64_t m = mask64_[q];
        val64_[q] = (dffState64_[i] & ~m) | (fval64_[q] & m);
    }

    const NetId *in = plan.in.data();
    const NetId *out = plan.out.data();
    const uint8_t *lut = plan.lut.data();
    const uint8_t *wop = plan.wop.data();
    const uint32_t *cell = plan.cell.data();
    uint64_t *val = val64_.data();
    const uint64_t *mask = mask64_.data();
    const uint64_t *fval = fval64_.data();

    size_t n = plan.out.size();
    for (size_t i = 0; i < n; ++i) {
        uint64_t a = val[in[3 * i]];
        uint64_t b = val[in[3 * i + 1]];
        uint64_t c = val[in[3 * i + 2]];
        uint64_t v = 0;
        switch (static_cast<WordOp>(wop[i])) {
          case WordOp::Buf:
            v = a;
            break;
          case WordOp::Inv:
            v = ~a;
            break;
          case WordOp::Nand2:
            v = ~(a & b);
            break;
          case WordOp::Nand3:
            v = ~(a & b & c);
            break;
          case WordOp::Nor2:
            v = ~(a | b);
            break;
          case WordOp::Nor3:
            v = ~(a | b | c);
            break;
          case WordOp::Xor2:
            v = a ^ b;
            break;
          case WordOp::Xnor2:
            v = ~(a ^ b);
            break;
          case WordOp::Mux2:
            // {a, b, sel}: sel ? b : a, as one blend.
            v = a ^ ((a ^ b) & c);
            break;
          case WordOp::Lut:
            // Generic fallback: minterm expansion of the 8-bit truth
            // table. Padded slots read the always-zero scratch word,
            // whose complemented literal is all-ones — exactly the
            // scalar semantics of a padded index bit.
            for (unsigned t = 0; t < 8; ++t) {
                if (!((lut[i] >> t) & 1))
                    continue;
                v |= ((t & 1) ? a : ~a) & ((t & 2) ? b : ~b) &
                     ((t & 4) ? c : ~c);
            }
            break;
        }
        NetId o = out[i];
        uint64_t m = mask[o];
        v = (v & ~m) | (fval[o] & m);
        if constexpr (kToggles) {
            uint64_t diff = (val[o] ^ v) & laneMask_;
            uint64_t *tg =
                toggles64_.data() +
                static_cast<size_t>(cell[i]) * kMaxLanes;
            while (diff) {
                ++tg[__builtin_ctzll(diff)];
                diff &= diff - 1;
            }
        }
        val[o] = v;
    }
}

void
LaneBatch::evaluate()
{
    if (countToggles_)
        evaluateImpl<true>();
    else
        evaluateImpl<false>();
}

void
LaneBatch::clockEdge()
{
    const Netlist::EvalPlan &plan = s_->plan;
    size_t nd = plan.dffD.size();
    for (size_t i = 0; i < nd; ++i) {
        uint64_t d = val64_[plan.dffD[i]];
        NetId q = plan.dffQ[i];
        uint64_t m = mask64_[q];
        d = (d & ~m) | (fval64_[q] & m);
        if (countToggles_) {
            uint64_t diff = (dffState64_[i] ^ d) & laneMask_;
            uint64_t *tg =
                toggles64_.data() +
                static_cast<size_t>(plan.dffCell[i]) * kMaxLanes;
            while (diff) {
                ++tg[__builtin_ctzll(diff)];
                diff &= diff - 1;
            }
        }
        dffState64_[i] = d;
    }
    ++cycle_;
}

void
LaneBatch::setBus(const BusHandle &bus, unsigned value)
{
    if (!bus.input_)
        panic("setBus: handle does not name an input bus");
    for (unsigned i = 0; i < bus.nets_.size(); ++i)
        val64_[bus.nets_[i]] = ((value >> i) & 1u) ? ~0ull : 0;
}

void
LaneBatch::setInputLanes(const std::string &name, uint64_t lane_bits)
{
    auto it = s_->inputs.find(name);
    if (it == s_->inputs.end())
        panic("no input named '%s'", name.c_str());
    val64_[it->second] = lane_bits & laneMask_;
}

void
LaneBatch::setBusLanes(const BusHandle &bus, const uint32_t *values)
{
    if (!bus.input_)
        panic("setBusLanes: handle does not name an input bus");
    for (unsigned i = 0; i < bus.nets_.size(); ++i) {
        uint64_t w = 0;
        for (unsigned lane = 0; lane < lanes_; ++lane)
            w |= static_cast<uint64_t>((values[lane] >> i) & 1u)
                 << lane;
        val64_[bus.nets_[i]] = w;
    }
}

unsigned
LaneBatch::bus(const BusHandle &bus, unsigned lane) const
{
    checkLane(lane);
    unsigned v = 0;
    for (unsigned i = 0; i < bus.nets_.size(); ++i)
        v |= static_cast<unsigned>(
                 (val64_[bus.nets_[i]] >> lane) & 1ull) << i;
    return v;
}

void
LaneBatch::gatherBus(const BusHandle &bus, uint32_t *out) const
{
    for (unsigned lane = 0; lane < lanes_; ++lane)
        out[lane] = 0;
    for (unsigned i = 0; i < bus.nets_.size(); ++i) {
        uint64_t w = val64_[bus.nets_[i]];
        for (unsigned lane = 0; lane < lanes_; ++lane)
            out[lane] |= static_cast<uint32_t>((w >> lane) & 1ull)
                         << i;
    }
}

bool
LaneBatch::netValue(NetId net, unsigned lane) const
{
    checkLane(lane);
    if (net >= s_->nextNet)
        panic("netValue: bad net %u", net);
    return (val64_[net] >> lane) & 1ull;
}

void
LaneBatch::enableToggles(bool on)
{
    countToggles_ = on;
    toggles64_.assign(on ? s_->cells.size() * kMaxLanes : 0, 0);
}

std::vector<uint64_t>
LaneBatch::toggleCounts(unsigned lane) const
{
    checkLane(lane);
    if (!countToggles_)
        panic("toggleCounts: enableToggles(true) first");
    std::vector<uint64_t> out(s_->cells.size());
    for (size_t c = 0; c < out.size(); ++c)
        out[c] = toggles64_[c * kMaxLanes + lane];
    return out;
}

} // namespace flexi
