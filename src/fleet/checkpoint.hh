/**
 * @file
 * Versioned, checksummed fleet-campaign checkpoint files.
 *
 * The fleet engine writes its whole FleetState — campaign
 * configuration, per-die lifecycle records with their bit-packed
 * end-of-mission DFF states, histograms and digests — after every
 * epoch, so a killed campaign resumes bit-identically from disk.
 *
 * On-disk layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic "FLFT"
 *   4       4     format version (kFleetCheckpointVersion)
 *   8       ...   campaign configuration (fixed field order)
 *   ...     ...   epochsDone, deaths, per-die records, epoch and
 *                 bin outcome histograms
 *   end-4   4     CRC-32 (poly 0xEDB88320, reflected) over every
 *                 preceding byte
 *
 * Resume invariants:
 *  - loadFleetCheckpoint() fails closed (FatalError) on a short
 *    file, bad magic, unknown version, trailing garbage, any
 *    truncated record, out-of-range enum value, or CRC mismatch —
 *    a corrupt checkpoint can never silently yield a fresh state.
 *  - The configuration is authoritative: resume rebuilds the
 *    engine (wafer + salvage studies, population pool) from the
 *    stored config, so only the path needs to be remembered.
 *  - Writes are atomic (tmp file + rename): a crash mid-write
 *    leaves the previous checkpoint intact.
 *  - Everything that feeds the campaign's remaining epochs lives in
 *    the file (the per-(die, epoch) RNG streams are counter-keyed,
 *    so epochsDone *is* the RNG cursor); a resumed run is therefore
 *    bit-identical to an uninterrupted one at any thread count.
 */

#ifndef FLEXI_FLEET_CHECKPOINT_HH
#define FLEXI_FLEET_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hh"

namespace flexi
{

constexpr uint32_t kFleetCheckpointVersion = 1;

/** CRC-32 (IEEE, poly 0xEDB88320), @p crc seeded with 0. */
uint32_t crc32(uint32_t crc, const uint8_t *bytes, size_t n);

/** Serialize @p state to the checkpoint byte format. */
std::vector<uint8_t> encodeFleetState(const FleetState &state);

/** Parse a checkpoint image; FatalError on any validation failure. */
FleetState decodeFleetState(const std::vector<uint8_t> &bytes);

/** Atomically write @p state to @p path (tmp file + rename). */
void saveFleetCheckpoint(const FleetState &state,
                         const std::string &path);

/** Load a checkpoint; FatalError on I/O or validation failure. */
FleetState loadFleetCheckpoint(const std::string &path);

} // namespace flexi

#endif // FLEXI_FLEET_CHECKPOINT_HH
