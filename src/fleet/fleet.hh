/**
 * @file
 * Field-fleet lifecycle engine: population-scale fault/recovery
 * campaigns over the wafer model's binned parts.
 *
 * The paper's repair story (Section 5) — detect a misbehaving part,
 * roll it back, re-page its firmware through the off-chip MMU, and
 * only then scrap it — is an economics argument about a *population*:
 * salvage binning only pays off if the recovered parts hold up in the
 * field. This engine closes the loop. It draws a deployed fleet from
 * the wafer study's per-die variation records (Functional parts plus
 * Salvaged parts qualified for the deployed kernel via passedMask),
 * then runs every die through a sequence of *epochs* — full missions
 * of the deployed kernel — under a per-die in-field fault arrival
 * process: environmental transient upsets and DFF flips arrive as
 * Poisson-distributed events on the mission's cycle clock, and
 * timing-marginal salvaged parts additionally glitch at the die
 * model's supply-dependent rate. Each mission runs under the checked
 * runtime (detectors + bounded checkpoint-rollback recovery); the
 * engine layers the fleet-level escalation ladder on top:
 *
 *   recover (rollback/restart inside the mission)
 *     → firmware re-page (a Degraded mission burns one of the die's
 *       maxRepages MMU re-page budget; the part retries next epoch)
 *       → fail-stop (budget exhausted: the die is pulled from the
 *         fleet and every later epoch counts it unavailable).
 *
 * Throughput comes from the 512-lane compiled backend: every epoch,
 * live dies are packed into LaneGroup words — each lane carrying its
 * own manufacturing defects and in-field schedule — and the word-
 * parallel prescreen proves most lanes fault-free; only dirty lanes
 * re-run through the scalar authoritative runChecked(). Results are
 * bit-identical for any thread count and any batchLanes, and the
 * whole campaign checkpoints to a versioned, checksummed file after
 * every epoch, so a killed run resumed from its checkpoint is
 * bit-identical to an uninterrupted one (see checkpoint.hh).
 */

#ifndef FLEXI_FLEET_FLEET_HH
#define FLEXI_FLEET_FLEET_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernels/kernels.hh"
#include "resilience/fault_campaign.hh"
#include "resilience/salvage.hh"

namespace flexi
{

/** Configuration of one fleet lifecycle campaign. */
struct FleetConfig
{
    IsaKind isa = IsaKind::FlexiCore4;
    /** Base seed: wafer study, population draw and every per-die
     *  per-epoch fault stream derive from it. */
    uint64_t seed = 1;
    /** Deployed population size (dies drawn with replacement from
     *  the binned supply). */
    uint32_t numDies = 512;
    /** Missions (full kernel runs) per die over the campaign. */
    uint32_t epochs = 4;
    /** Deployed kernel (FlexiCore4-family ISAs). */
    KernelId kernel = KernelId::Thresholding;
    /** Deployed program index when isa == FlexiCore8. */
    unsigned fc8Program = 0;
    /** Units of work per mission. */
    size_t workUnits = 2;
    /** Mean environmental transient upsets per mission per die. */
    double transientsPerEpoch = 0.25;
    /** Mean one-shot DFF flips per mission per die. */
    double flipsPerEpoch = 0.05;
    /** Detector choice for the checked runtime (CRC / watchdog /
     *  lockstep), shared by salvage qualification and the field. */
    DetectorConfig detectors;
    /** In-mission recovery: bounded checkpoint-rollback retries and
     *  the in-mission restart escalation. */
    RecoveryPolicy recovery;
    /** Fleet-level escalation: firmware re-pages (MMU re-page of the
     *  program image) a die may burn on Degraded missions before it
     *  is pulled from the fleet. */
    unsigned maxRepages = 1;
    uint64_t maxInstructions = 60000;
    /** 0 = auto; results are bit-identical for any value. */
    unsigned threads = 0;
    /** Lanes per prescreen word-pack (1 forces all-scalar; results
     *  are bit-identical for any value). */
    unsigned batchLanes = 512;
    /** Salvage deployment: binning voltage and qualification bar. */
    double vdd = 4.5;
    unsigned minKernels = 1;
};

/** Lifecycle record of one deployed die. */
struct FleetDie
{
    /** Index into the salvage report's die table (the part's wafer
     *  identity: defect list, glitch rate, bin). */
    uint32_t poolIndex = 0;
    /** Functional or Salvaged (Dead parts are never deployed). */
    DieBin bin = DieBin::Functional;
    /** Still in the fleet (false = fail-stopped, pulled). */
    bool alive = true;
    /** Firmware re-pages burned on Degraded missions. */
    uint32_t repages = 0;
    /** Missions actually run (stops growing once pulled). */
    uint32_t epochsRun = 0;
    /** Per-outcome mission counts for this die. */
    std::array<uint32_t, kNumFaultOutcomes> outcomes{};
    /** Total die cycles across all missions (incl. replays). */
    uint64_t lifeCycles = 0;
    /** Rolling FNV-1a digest of (epoch, outcome, cycles, end-of-
     *  mission DFF state) — the determinism witness the kill/resume
     *  tests compare. */
    uint64_t digest = 0;
    /** End-of-mission DFF state, bit-packed (bit i = DFF i of
     *  saveDffState() order); the state the part powered down with. */
    std::vector<uint8_t> dffBits;
    /** Unpacked DFF count behind dffBits (0 until the first run). */
    uint32_t dffCount = 0;
};

/** Full campaign state — everything the checkpoint file persists. */
struct FleetState
{
    FleetConfig config;
    /** Epochs fully merged into the records below. */
    uint32_t epochsDone = 0;
    std::vector<FleetDie> dies;
    /** Outcome histogram per epoch (row e sums to the dies alive at
     *  epoch e: dead dies stop contributing — that is the
     *  availability loss). */
    std::vector<std::array<uint64_t, kNumFaultOutcomes>> epochOutcomes;
    /** Outcome histogram per deployment bin (Functional, Salvaged). */
    std::array<std::array<uint64_t, kNumFaultOutcomes>, 2> binOutcomes{};
    /** Dies pulled from the fleet so far. */
    uint64_t deaths = 0;

    /** Dies alive right now. */
    uint64_t aliveDies() const;
    /** Missions at epoch @p e that delivered correct output
     *  (Masked + Recovered) as a fraction of the whole fleet —
     *  dead and hung dies drag it down. */
    double availability(uint32_t e) const;
    /** Silent-data-corruption missions at epoch @p e / fleet size. */
    double sdcRate(uint32_t e) const;
};

/**
 * Order-independent digest of the whole campaign: per-die digests,
 * liveness and re-page counts folded in die order. Two runs of the
 * same config agree on this iff they agree on every die's full
 * lifecycle, end-of-mission DFF state included.
 */
uint64_t fleetDigest(const FleetState &state);

/**
 * The fleet lifecycle engine. Construction is the expensive part —
 * it runs the wafer + salvage studies that define the binned supply
 * and assembles the deployed workload; init() and run() share it.
 */
class FleetEngine
{
  public:
    explicit FleetEngine(const FleetConfig &config);
    ~FleetEngine();

    /** The salvage study backing the population draw. */
    const SalvageReport &salvage() const;

    /** Draw a fresh (epoch-0) deployed population. */
    FleetState init() const;

    /**
     * Advance @p state to epoch min(config.epochs, stopAfter) (0 =
     * run to the end), checkpointing to @p checkpointPath after
     * every epoch when non-empty (atomic tmp+rename writes). The
     * state must come from init() or a checkpoint of the same
     * config. Killing the process between epochs and resuming from
     * the checkpoint is bit-identical to never stopping.
     */
    void run(FleetState &state, uint32_t stopAfter = 0,
             const std::string &checkpointPath = {}) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace flexi

#endif // FLEXI_FLEET_FLEET_HH
