#include "checkpoint.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace flexi
{

namespace
{

constexpr uint8_t kMagic[4] = {'F', 'L', 'F', 'T'};

/** Little-endian byte-stream writer. */
struct Writer
{
    std::vector<uint8_t> bytes;

    void u8(uint8_t v) { bytes.push_back(v); }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    f64(double v)
    {
        uint64_t b;
        static_assert(sizeof(b) == sizeof(v), "double is 64-bit");
        std::memcpy(&b, &v, sizeof(b));
        u64(b);
    }
    void
    blob(const std::vector<uint8_t> &v)
    {
        u32(static_cast<uint32_t>(v.size()));
        bytes.insert(bytes.end(), v.begin(), v.end());
    }
};

/** Fail-closed little-endian reader. */
struct Reader
{
    const uint8_t *p;
    size_t left;

    void
    need(size_t n) const
    {
        if (left < n)
            fatal("fleet checkpoint: truncated (needed %zu more "
                  "bytes, %zu left)", n, left);
    }
    uint8_t
    u8()
    {
        need(1);
        --left;
        return *p++;
    }
    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(*p++) << (8 * i);
        left -= 4;
        return v;
    }
    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(*p++) << (8 * i);
        left -= 8;
        return v;
    }
    double
    f64()
    {
        uint64_t b = u64();
        double v;
        std::memcpy(&v, &b, sizeof(v));
        return v;
    }
    std::vector<uint8_t>
    blob(size_t maxSize)
    {
        uint32_t n = u32();
        if (n > maxSize)
            fatal("fleet checkpoint: blob of %u bytes exceeds the "
                  "%zu-byte bound", n, maxSize);
        need(n);
        std::vector<uint8_t> v(p, p + n);
        p += n;
        left -= n;
        return v;
    }
};

void
encodeConfig(Writer &w, const FleetConfig &c)
{
    w.u8(static_cast<uint8_t>(c.isa));
    w.u64(c.seed);
    w.u32(c.numDies);
    w.u32(c.epochs);
    w.u8(static_cast<uint8_t>(c.kernel));
    w.u32(c.fc8Program);
    w.u64(c.workUnits);
    w.f64(c.transientsPerEpoch);
    w.f64(c.flipsPerEpoch);
    w.u8(c.detectors.lockstep);
    w.u8(c.detectors.outputCrc);
    w.u8(c.detectors.watchdog);
    w.u64(c.detectors.watchdogCycles);
    w.u8(c.recovery.enabled);
    w.u32(c.recovery.checkpointInstructions);
    w.u32(c.recovery.maxRetries);
    w.u8(c.recovery.allowRestart);
    w.u32(c.maxRepages);
    w.u64(c.maxInstructions);
    w.u32(c.threads);
    w.u32(c.batchLanes);
    w.f64(c.vdd);
    w.u32(c.minKernels);
}

FleetConfig
decodeConfig(Reader &r)
{
    FleetConfig c;
    uint8_t isa = r.u8();
    if (isa != static_cast<uint8_t>(IsaKind::FlexiCore4) &&
        isa != static_cast<uint8_t>(IsaKind::FlexiCore8))
        fatal("fleet checkpoint: bad ISA tag %u", isa);
    c.isa = static_cast<IsaKind>(isa);
    c.seed = r.u64();
    c.numDies = r.u32();
    c.epochs = r.u32();
    uint8_t kernel = r.u8();
    if (kernel >= static_cast<uint8_t>(KernelId::NumKernels))
        fatal("fleet checkpoint: bad kernel tag %u", kernel);
    c.kernel = static_cast<KernelId>(kernel);
    c.fc8Program = r.u32();
    c.workUnits = r.u64();
    c.transientsPerEpoch = r.f64();
    c.flipsPerEpoch = r.f64();
    c.detectors.lockstep = r.u8();
    c.detectors.outputCrc = r.u8();
    c.detectors.watchdog = r.u8();
    c.detectors.watchdogCycles = r.u64();
    c.recovery.enabled = r.u8();
    c.recovery.checkpointInstructions = r.u32();
    c.recovery.maxRetries = r.u32();
    c.recovery.allowRestart = r.u8();
    c.maxRepages = r.u32();
    c.maxInstructions = r.u64();
    c.threads = r.u32();
    c.batchLanes = r.u32();
    c.vdd = r.f64();
    c.minKernels = r.u32();
    return c;
}

} // namespace

uint32_t
crc32(uint32_t crc, const uint8_t *bytes, size_t n)
{
    crc = ~crc;
    for (size_t i = 0; i < n; ++i) {
        crc ^= bytes[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

std::vector<uint8_t>
encodeFleetState(const FleetState &state)
{
    Writer w;
    w.bytes.insert(w.bytes.end(), kMagic, kMagic + 4);
    w.u32(kFleetCheckpointVersion);
    encodeConfig(w, state.config);

    w.u32(state.epochsDone);
    w.u64(state.deaths);

    w.u32(static_cast<uint32_t>(state.dies.size()));
    for (const FleetDie &d : state.dies) {
        w.u32(d.poolIndex);
        w.u8(static_cast<uint8_t>(d.bin));
        w.u8(d.alive);
        w.u32(d.repages);
        w.u32(d.epochsRun);
        for (uint32_t n : d.outcomes)
            w.u32(n);
        w.u64(d.lifeCycles);
        w.u64(d.digest);
        w.u32(d.dffCount);
        w.blob(d.dffBits);
    }

    w.u32(static_cast<uint32_t>(state.epochOutcomes.size()));
    for (const auto &row : state.epochOutcomes)
        for (uint64_t n : row)
            w.u64(n);
    for (const auto &row : state.binOutcomes)
        for (uint64_t n : row)
            w.u64(n);

    uint32_t crc = crc32(0, w.bytes.data(), w.bytes.size());
    w.u32(crc);
    return w.bytes;
}

FleetState
decodeFleetState(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < 12)
        fatal("fleet checkpoint: file too short (%zu bytes)",
              bytes.size());
    uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= static_cast<uint32_t>(bytes[bytes.size() - 4 + i])
                  << (8 * i);
    uint32_t actual = crc32(0, bytes.data(), bytes.size() - 4);
    if (stored != actual)
        fatal("fleet checkpoint: CRC mismatch (stored %08x, "
              "computed %08x) — the file is corrupt", stored,
              actual);

    Reader r{bytes.data(), bytes.size() - 4};
    uint8_t magic[4];
    for (auto &m : magic)
        m = r.u8();
    if (std::memcmp(magic, kMagic, 4) != 0)
        fatal("fleet checkpoint: bad magic (not a FLFT file)");
    uint32_t version = r.u32();
    if (version != kFleetCheckpointVersion)
        fatal("fleet checkpoint: unsupported format version %u "
              "(this build reads version %u)", version,
              kFleetCheckpointVersion);

    FleetState state;
    state.config = decodeConfig(r);
    state.epochsDone = r.u32();
    state.deaths = r.u64();

    uint32_t numDies = r.u32();
    if (numDies != state.config.numDies)
        fatal("fleet checkpoint: %u die records for a %u-die "
              "campaign", numDies, state.config.numDies);
    if (state.epochsDone > state.config.epochs)
        fatal("fleet checkpoint: epochsDone %u exceeds the %u-epoch "
              "campaign", state.epochsDone, state.config.epochs);
    state.dies.resize(numDies);
    for (FleetDie &d : state.dies) {
        d.poolIndex = r.u32();
        uint8_t bin = r.u8();
        if (bin > static_cast<uint8_t>(DieBin::Dead))
            fatal("fleet checkpoint: bad die bin %u", bin);
        d.bin = static_cast<DieBin>(bin);
        d.alive = r.u8() != 0;
        d.repages = r.u32();
        d.epochsRun = r.u32();
        for (uint32_t &n : d.outcomes)
            n = r.u32();
        d.lifeCycles = r.u64();
        d.digest = r.u64();
        d.dffCount = r.u32();
        d.dffBits = r.blob((d.dffCount + 7) / 8);
        if (d.dffBits.size() != (d.dffCount + 7) / 8)
            fatal("fleet checkpoint: die state holds %zu bytes for "
                  "%u DFFs", d.dffBits.size(), d.dffCount);
    }

    uint32_t epochs = r.u32();
    if (epochs != state.config.epochs)
        fatal("fleet checkpoint: %u histogram rows for a %u-epoch "
              "campaign", epochs, state.config.epochs);
    state.epochOutcomes.resize(epochs);
    for (auto &row : state.epochOutcomes)
        for (uint64_t &n : row)
            n = r.u64();
    for (auto &row : state.binOutcomes)
        for (uint64_t &n : row)
            n = r.u64();

    if (r.left != 0)
        fatal("fleet checkpoint: %zu bytes of trailing garbage",
              r.left);
    return state;
}

void
saveFleetCheckpoint(const FleetState &state, const std::string &path)
{
    std::vector<uint8_t> bytes = encodeFleetState(state);
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal("fleet checkpoint: cannot write '%s'", tmp.c_str());
    size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        fatal("fleet checkpoint: short write to '%s'", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("fleet checkpoint: cannot rename '%s' into place",
              tmp.c_str());
    }
}

FleetState
loadFleetCheckpoint(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("fleet checkpoint: cannot open '%s'", path.c_str());
    std::vector<uint8_t> bytes;
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool readError = std::ferror(f);
    std::fclose(f);
    if (readError)
        fatal("fleet checkpoint: read error on '%s'", path.c_str());
    return decodeFleetState(bytes);
}

} // namespace flexi
