#include "fleet.hh"

#include <algorithm>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "fleet/checkpoint.hh"
#include "kernels/fc8_programs.hh"
#include "kernels/inputs.hh"
#include "netlist/flexicore_netlist.hh"
#include "yield/die_model.hh"

namespace flexi
{

namespace
{

constexpr uint64_t kPopSalt = 0xF1EE7010ull;
constexpr uint64_t kFaultSalt = 0xF1EE7F17ull;
constexpr uint64_t kInputSalt = 0xF1EE71B0ull;
/** Per-epoch sub-stream stride within one die's fault stream. */
constexpr uint64_t kEpochStride = 1ull << 20;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnv1a(uint64_t h, const uint8_t *bytes, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fnvU64(uint64_t h, uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<uint8_t>(v >> (8 * i));
    return fnv1a(h, b, 8);
}

std::vector<uint8_t>
packBits(const std::vector<uint8_t> &bits)
{
    std::vector<uint8_t> packed((bits.size() + 7) / 8, 0);
    for (size_t i = 0; i < bits.size(); ++i)
        if (bits[i])
            packed[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    return packed;
}

std::unique_ptr<Netlist>
fleetGolden(IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4: return buildFlexiCore4Netlist();
      case IsaKind::FlexiCore8: return buildFlexiCore8Netlist();
      default:
        fatal("the fleet engine deploys the fabricated cores, not %s",
              isaName(isa));
    }
}

bool
configsMatch(const FleetConfig &a, const FleetConfig &b)
{
    // threads and batchLanes are execution knobs, not semantics —
    // the determinism contract makes results identical across them,
    // so a resumed campaign may change either.
    return a.isa == b.isa && a.seed == b.seed &&
           a.numDies == b.numDies && a.epochs == b.epochs &&
           a.kernel == b.kernel && a.fc8Program == b.fc8Program &&
           a.workUnits == b.workUnits &&
           a.transientsPerEpoch == b.transientsPerEpoch &&
           a.flipsPerEpoch == b.flipsPerEpoch &&
           a.detectors.lockstep == b.detectors.lockstep &&
           a.detectors.outputCrc == b.detectors.outputCrc &&
           a.detectors.watchdog == b.detectors.watchdog &&
           a.detectors.watchdogCycles == b.detectors.watchdogCycles &&
           a.recovery.enabled == b.recovery.enabled &&
           a.recovery.checkpointInstructions ==
               b.recovery.checkpointInstructions &&
           a.recovery.maxRetries == b.recovery.maxRetries &&
           a.recovery.allowRestart == b.recovery.allowRestart &&
           a.maxRepages == b.maxRepages &&
           a.maxInstructions == b.maxInstructions &&
           a.vdd == b.vdd && a.minKernels == b.minKernels;
}

} // namespace

uint64_t
FleetState::aliveDies() const
{
    uint64_t n = 0;
    for (const FleetDie &d : dies)
        n += d.alive;
    return n;
}

double
FleetState::availability(uint32_t e) const
{
    if (e >= epochOutcomes.size() || dies.empty())
        return 0.0;
    const auto &row = epochOutcomes[e];
    uint64_t good = row[static_cast<size_t>(FaultOutcome::Masked)] +
                    row[static_cast<size_t>(FaultOutcome::Recovered)];
    return static_cast<double>(good) / dies.size();
}

double
FleetState::sdcRate(uint32_t e) const
{
    if (e >= epochOutcomes.size() || dies.empty())
        return 0.0;
    uint64_t sdc =
        epochOutcomes[e][static_cast<size_t>(FaultOutcome::Sdc)];
    return static_cast<double>(sdc) / dies.size();
}

uint64_t
fleetDigest(const FleetState &state)
{
    uint64_t h = kFnvOffset;
    h = fnvU64(h, state.epochsDone);
    for (const FleetDie &d : state.dies) {
        h = fnvU64(h, d.digest);
        h = fnvU64(h, (static_cast<uint64_t>(d.alive) << 32) |
                          d.repages);
        h = fnvU64(h, d.epochsRun);
    }
    return h;
}

struct FleetEngine::Impl
{
    FleetConfig cfg;
    std::unique_ptr<Netlist> golden;
    std::unique_ptr<Program> prog;
    SalvageReport report;
    /** Study-die indices deployable for the configured kernel. */
    std::vector<uint32_t> pool;
    /** Per-study-die field glitch rate at the deployment supply. */
    std::vector<double> glitchRates;
    size_t targetOutputs = 0;

    std::vector<uint8_t> epochInputs(uint32_t epoch) const;
    FaultSchedule makeSchedule(uint32_t die, uint32_t epoch,
                               uint64_t horizon,
                               double glitchRate) const;
};

std::vector<uint8_t>
FleetEngine::Impl::epochInputs(uint32_t epoch) const
{
    uint64_t s = deriveSeed(cfg.seed ^ kInputSalt, epoch);
    if (cfg.isa == IsaKind::FlexiCore8) {
        auto id = static_cast<Fc8Program>(cfg.fc8Program %
                                          kNumFc8Programs);
        return fc8ProgramInputs(id, cfg.workUnits, s);
    }
    return kernelInputs(cfg.kernel, cfg.workUnits, s);
}

FaultSchedule
FleetEngine::Impl::makeSchedule(uint32_t die, uint32_t epoch,
                                uint64_t horizon,
                                double glitchRate) const
{
    Rng rng(deriveSeed(cfg.seed ^ kFaultSalt,
                       die * kEpochStride + epoch));
    size_t nets = golden->numNets();
    size_t dffs = golden->numDffs() ? golden->numDffs() : 1;

    FaultSchedule sched;
    // Environmental upsets: Poisson arrivals on the mission clock.
    uint64_t nT = rng.poisson(cfg.transientsPerEpoch);
    for (uint64_t i = 0; i < nT; ++i) {
        NetId net = static_cast<NetId>(rng.below(nets));
        bool value = rng.chance(0.5);
        uint64_t at = rng.below(horizon);
        sched.transients.push_back({net, value, at, at + 1});
    }
    // Timing marginality of the part itself (salvaged-die physics).
    if (glitchRate > 0) {
        uint64_t nG = rng.poisson(glitchRate *
                                  static_cast<double>(horizon));
        for (uint64_t i = 0; i < nG; ++i) {
            NetId net = static_cast<NetId>(rng.below(nets));
            bool value = rng.chance(0.5);
            uint64_t at = rng.below(horizon);
            sched.transients.push_back({net, value, at, at + 1});
        }
    }
    uint64_t nF = rng.poisson(cfg.flipsPerEpoch);
    for (uint64_t i = 0; i < nF; ++i) {
        uint64_t at = rng.below(horizon);
        sched.flips.push_back({at, rng.below(dffs)});
    }
    return sched;
}

FleetEngine::FleetEngine(const FleetConfig &config)
    : impl_(new Impl)
{
    Impl &im = *impl_;
    im.cfg = config;
    if (!config.numDies)
        fatal("fleet: numDies must be > 0");
    if (!config.epochs || config.epochs >= kEpochStride)
        fatal("fleet: epochs must be in [1, %llu)",
              static_cast<unsigned long long>(kEpochStride));
    im.golden = fleetGolden(config.isa);

    size_t kernelIdx;
    if (config.isa == IsaKind::FlexiCore8) {
        auto id = static_cast<Fc8Program>(config.fc8Program %
                                          kNumFc8Programs);
        im.prog.reset(new Program(
            assemble(config.isa, fc8ProgramSource(id))));
        im.targetOutputs = config.workUnits;
        kernelIdx = static_cast<size_t>(id);
    } else {
        im.prog.reset(new Program(assemble(
            config.isa, kernelSource(config.kernel, config.isa))));
        im.targetOutputs =
            config.workUnits * kernelOutputsPerWork(config.kernel);
        kernelIdx = static_cast<size_t>(config.kernel);
    }

    // The binned supply the deployment draws from.
    SalvageConfig sc;
    sc.study.isa = config.isa;
    sc.study.seed = config.seed;
    sc.study.threads = config.threads;
    sc.vdd = config.vdd;
    sc.detectors = config.detectors;
    sc.recovery = config.recovery;
    sc.minKernels = config.minKernels;
    im.report = runSalvageStudy(sc);

    DieModel model(im.report.study.spec, sc.study.params);
    im.glitchRates.resize(im.report.study.dies.size(), 0.0);
    for (size_t i = 0; i < im.report.study.dies.size(); ++i) {
        const DieResult &die = im.report.study.dies[i];
        const DieSalvage &verdict = im.report.dies[i];
        im.glitchRates[i] =
            model.glitchRate(die.sample, config.vdd);
        if (!die.site.inInclusionZone)
            continue;
        // Functional parts ship into any bin; salvaged parts only
        // into application bins they qualified for.
        bool deployable =
            verdict.bin == DieBin::Functional ||
            (verdict.bin == DieBin::Salvaged &&
             (verdict.passedMask >> kernelIdx) & 1u);
        if (deployable)
            im.pool.push_back(static_cast<uint32_t>(i));
    }
    if (im.pool.empty())
        fatal("fleet: no deployable dies for %s (wafer seed %llu)",
              config.isa == IsaKind::FlexiCore8
                  ? fc8ProgramName(static_cast<Fc8Program>(
                        config.fc8Program % kNumFc8Programs))
                  : kernelName(config.kernel),
              static_cast<unsigned long long>(config.seed));
}

FleetEngine::~FleetEngine() = default;

const SalvageReport &
FleetEngine::salvage() const
{
    return impl_->report;
}

FleetState
FleetEngine::init() const
{
    const Impl &im = *impl_;
    FleetState state;
    state.config = im.cfg;
    state.dies.resize(im.cfg.numDies);
    state.epochOutcomes.assign(im.cfg.epochs, {});
    for (uint32_t d = 0; d < im.cfg.numDies; ++d) {
        Rng rng(deriveSeed(im.cfg.seed ^ kPopSalt, d));
        uint32_t poolIndex = im.pool[rng.below(im.pool.size())];
        state.dies[d].poolIndex = poolIndex;
        state.dies[d].bin = im.report.dies[poolIndex].bin;
    }
    return state;
}

void
FleetEngine::run(FleetState &state, uint32_t stopAfter,
                 const std::string &checkpointPath) const
{
    const Impl &im = *impl_;
    if (!configsMatch(state.config, im.cfg))
        fatal("fleet: state was produced by a different campaign "
              "configuration");
    if (state.dies.size() != im.cfg.numDies ||
        state.epochOutcomes.size() != im.cfg.epochs)
        fatal("fleet: state shape does not match its configuration");

    uint32_t last = im.cfg.epochs;
    if (stopAfter && stopAfter < last)
        last = stopAfter;

    unsigned lanesMax = std::max(1u, std::min(im.cfg.batchLanes,
                                              LaneGroup::kMaxLanes));

    CheckedRunConfig runCfg;
    runCfg.isa = im.cfg.isa;
    runCfg.detectors = im.cfg.detectors;
    runCfg.recovery = im.cfg.recovery;
    runCfg.targetOutputs = im.targetOutputs;
    runCfg.maxInstructions = im.cfg.maxInstructions;

    for (uint32_t epoch = state.epochsDone; epoch < last; ++epoch) {
        std::vector<uint8_t> inputs = im.epochInputs(epoch);

        // Fault-free golden mission: the horizon the per-die fault
        // arrivals are drawn over, and the clean-lane cycle count.
        std::unique_ptr<Netlist> ref = im.golden->clone();
        CheckedRunConfig baseCfg = runCfg;
        baseCfg.detectors = DetectorConfig{false, false, false, 192};
        baseCfg.recovery.enabled = false;
        CheckedRunResult base =
            runChecked(*ref, *im.prog, inputs, baseCfg);
        if (base.outcome != CheckedOutcome::Completed ||
            !base.outputsCorrect)
            panic("fleet: golden mission failed at epoch %u", epoch);
        uint64_t horizon = 2 * base.cycles + 64;

        std::vector<uint32_t> live;
        live.reserve(state.dies.size());
        for (uint32_t d = 0; d < state.dies.size(); ++d)
            if (state.dies[d].alive)
                live.push_back(d);

        // Per-die mission results, written only by the owning lane.
        std::vector<uint8_t> outcome(state.dies.size(), 0);
        std::vector<uint8_t> degraded(state.dies.size(), 0);
        std::vector<uint64_t> cycles(state.dies.size(), 0);
        std::vector<std::vector<uint8_t>> endDff(state.dies.size());
        std::vector<uint32_t> dirty;

        if (lanesMax >= 2) {
            // Phase 1: word-parallel prescreen, one LaneGroup block
            // at a time, each lane carrying its part's manufacturing
            // defects plus its in-field schedule.
            size_t blocks = (live.size() + lanesMax - 1) / lanesMax;
            std::vector<std::vector<uint32_t>> blockDirty(blocks);
            parallelFor(blocks, im.cfg.threads, [&](size_t b) {
                size_t begin = b * lanesMax;
                unsigned lanes = static_cast<unsigned>(
                    std::min<size_t>(lanesMax,
                                     live.size() - begin));
                std::vector<FaultSchedule> scheds(lanes);
                std::vector<const FaultSchedule *> schedPtrs(lanes);
                std::vector<const std::vector<StuckFault> *>
                    faults(lanes);
                for (unsigned l = 0; l < lanes; ++l) {
                    uint32_t d = live[begin + l];
                    uint32_t pi = state.dies[d].poolIndex;
                    scheds[l] = im.makeSchedule(
                        d, epoch, horizon, im.glitchRates[pi]);
                    schedPtrs[l] = &scheds[l];
                    faults[l] = &im.report.study.dies[pi].faults;
                }
                PrescreenResult pres = prescreenSchedules(
                    *im.golden, *im.prog, inputs, runCfg, schedPtrs,
                    &faults, true);
                for (unsigned l = 0; l < lanes; ++l) {
                    uint32_t d = live[begin + l];
                    if (pres.completed && pres.clean(l)) {
                        outcome[d] = static_cast<uint8_t>(
                            FaultOutcome::Masked);
                        cycles[d] = pres.cycles;
                        endDff[d] = std::move(pres.endDff[l]);
                    } else {
                        blockDirty[b].push_back(d);
                    }
                }
            });
            for (const auto &bd : blockDirty)
                dirty.insert(dirty.end(), bd.begin(), bd.end());
        } else {
            dirty = live;
        }

        // Phase 2: authoritative scalar checked runs for every lane
        // the prescreen could not prove clean.
        parallelFor(dirty.size(), im.cfg.threads, [&](size_t k) {
            uint32_t d = dirty[k];
            uint32_t pi = state.dies[d].poolIndex;
            std::unique_ptr<Netlist> die = im.golden->clone();
            for (const StuckFault &f :
                 im.report.study.dies[pi].faults)
                die->injectFault(f);
            FaultSchedule sched = im.makeSchedule(
                d, epoch, horizon, im.glitchRates[pi]);
            CheckedRunResult run = runChecked(*die, *im.prog, inputs,
                                              runCfg, sched);
            outcome[d] = static_cast<uint8_t>(
                classifyCheckedRun(run, im.cfg.detectors));
            degraded[d] = run.outcome == CheckedOutcome::Degraded;
            cycles[d] = run.cycles;
            endDff[d] = std::move(run.endDff);
        });

        // Merge in die order — single-threaded, so histograms,
        // digests and the escalation ladder are thread-invariant.
        for (uint32_t d : live) {
            FleetDie &die = state.dies[d];
            ++die.epochsRun;
            ++die.outcomes[outcome[d]];
            die.lifeCycles += cycles[d];
            ++state.epochOutcomes[epoch][outcome[d]];
            size_t binIdx = die.bin == DieBin::Functional ? 0 : 1;
            ++state.binOutcomes[binIdx][outcome[d]];

            uint64_t h = die.epochsRun == 1 ? kFnvOffset : die.digest;
            h = fnvU64(h, epoch);
            h = fnvU64(h, outcome[d]);
            h = fnvU64(h, cycles[d]);
            h = fnv1a(h, endDff[d].data(), endDff[d].size());
            die.digest = h;
            die.dffCount = static_cast<uint32_t>(endDff[d].size());
            die.dffBits = packBits(endDff[d]);

            // Fleet-level escalation: a Degraded mission burns one
            // firmware re-page; past the budget the die fail-stops.
            if (degraded[d] && ++die.repages > im.cfg.maxRepages) {
                die.alive = false;
                ++state.deaths;
            }
        }

        state.epochsDone = epoch + 1;
        if (!checkpointPath.empty())
            saveFleetCheckpoint(state, checkpointPath);
    }
}

} // namespace flexi
