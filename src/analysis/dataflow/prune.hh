/**
 * @file
 * SAT-certified netlist pruning on top of the dataflow engine.
 *
 * prune() rebuilds a netlist with every provably-dead cell removed
 * and every proven-constant net folded onto a rail, keeping the pad
 * interface (all primary inputs and outputs) intact. The licenses
 * come from analyzeDataflow(): a cell outside every observable cone
 * cannot affect an output; a net constant in every reachable state
 * (under the tie environment) can be replaced by its rail; a DFF
 * whose Q is constant can be deleted outright.
 *
 * None of that is taken on faith. certifyPrune() discharges every
 * transformation with the PR-3 SAT machinery:
 *
 *  1. Inductive invariant — with the tie environment asserted and
 *     the constant DFFs pinned to their proven values, each constant
 *     DFF's *next* state is proven equal to its constant and each
 *     folded combinational net is proven equal to its rail (UNSAT of
 *     the negation, hardened incrementally). Together with the
 *     matching power-on values this makes "constant in every
 *     reachable state" an induction, not a heuristic.
 *
 *  2. Observable equivalence — a miter between the original and the
 *     pruned netlist (primary inputs shared by name, surviving
 *     state bits shared by the prune's DFF map) proves every primary
 *     output and every surviving DFF's captured next-state equal.
 *     The interior is swept in topological order with incremental
 *     hardening, the same engine checkPlanEquivalence() uses.
 *
 * A failed proof returns a *replayable* counterexample: a complete
 * named input-and-state assignment. replayPruneCex() drives both
 * netlists (scalar simulation) with it and reports the divergence,
 * closing the loop between the solver and the simulator.
 */

#ifndef FLEXI_ANALYSIS_DATAFLOW_PRUNE_HH
#define FLEXI_ANALYSIS_DATAFLOW_PRUNE_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/dataflow/dataflow.hh"
#include "analysis/equiv.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** dffMap / netMap entry for state or nets the prune deleted. */
constexpr size_t kPrunedAway = ~size_t{0};

/** What the prune removed, for reports and the area model. */
struct PruneStats
{
    size_t cellsBefore = 0;
    size_t cellsAfter = 0;
    size_t dffsBefore = 0;
    size_t dffsAfter = 0;
    size_t deadCells = 0;    ///< removed: outside every cone
    size_t constCells = 0;   ///< removed: output folded to a rail
    size_t constDffs = 0;    ///< state bits folded to constants
    double nand2AreaBefore = 0.0;
    double nand2AreaAfter = 0.0;

    double nand2AreaSaved() const
    {
        return nand2AreaBefore - nand2AreaAfter;
    }
};

struct PruneResult
{
    /** A pruned netlist was produced (see detail otherwise). */
    bool ok = false;
    std::string detail;
    /** The pruned, elaborated netlist (same pad interface). */
    std::unique_ptr<Netlist> netlist;
    PruneStats stats;
    /** The analysis the prune acted on. */
    DataflowResult dataflow;
    /** Original DFF index (commit order) -> pruned index. */
    std::vector<size_t> dffMap;
    /** Original net -> pruned net (folded nets map to rails). */
    std::vector<NetId> netMap;

    /** Certification ran and proved every transformation. */
    bool certified = false;
    EquivResult certification;
};

/**
 * Prune @p nl (must be elaborated) under the tie environment of
 * @p opts. With @p certify (the default), the result is SAT-proven
 * equivalent before being returned; an uncertified result carries
 * the counterexample in `certification`.
 */
PruneResult prune(const Netlist &nl, const DataflowOptions &opts = {},
                  bool certify = true);

/**
 * Discharge a prune: inductive constant invariant plus observable
 * miter (see file comment). Exposed separately so tests can certify
 * tampered netlists and exercise the counterexample path. @p netMap
 * may be empty (skips the interior sweep, pure observable proof).
 */
EquivResult certifyPrune(const Netlist &orig, const Netlist &pruned,
                         const DataflowResult &df,
                         const std::vector<size_t> &dffMap,
                         const std::vector<NetId> &netMap,
                         const DataflowOptions &opts = {});

/**
 * Replay a certification counterexample on both simulators: restore
 * the named state bits, drive the named inputs, evaluate, clock.
 * Returns true iff the two netlists observably diverge (a primary
 * output before the edge or a shared state bit after it); the
 * divergence is described in @p what when given.
 */
bool replayPruneCex(const Netlist &orig, const Netlist &pruned,
                    const std::vector<size_t> &dffMap,
                    const EquivCounterexample &cex,
                    std::string *what = nullptr);

} // namespace flexi

#endif // FLEXI_ANALYSIS_DATAFLOW_PRUNE_HH
