#include "dataflow.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "common/logging.hh"
#include "tech/cell_library.hh"

namespace flexi
{

namespace
{

constexpr size_t kNoCell = ~size_t{0};

/** Number of meaningful inputs (the DFF clock slot is implicit). */
size_t
realInputs(const CellInst &cell)
{
    return isSequential(cell.type) ? 1 : cell.inputs.size();
}

/**
 * Combinational cells in topological order (Kahn over the
 * cell-to-cell dependency edges; DFF outputs, primary inputs, and
 * rails are sources). Returns false on a combinational cycle.
 */
bool
combTopoOrder(const Netlist &nl, std::vector<size_t> &order)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();

    std::vector<size_t> driver(num_nets, kNoCell);
    for (size_t i = 0; i < cells.size(); ++i) {
        const CellInst &cell = cells[i];
        if (!isSequential(cell.type) && cell.output < num_nets)
            driver[cell.output] = i;
    }

    std::vector<unsigned> indeg(cells.size(), 0);
    std::vector<std::vector<size_t>> consumers(cells.size());
    size_t num_comb = 0;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (isSequential(cells[i].type))
            continue;
        ++num_comb;
        for (size_t k = 0; k < realInputs(cells[i]); ++k) {
            NetId in = cells[i].inputs[k];
            if (in == kNoNet || in >= num_nets)
                continue;
            size_t d = driver[in];
            if (d != kNoCell) {
                consumers[d].push_back(i);
                ++indeg[i];
            }
        }
    }

    std::deque<size_t> ready;
    for (size_t i = 0; i < cells.size(); ++i)
        if (!isSequential(cells[i].type) && indeg[i] == 0)
            ready.push_back(i);

    order.clear();
    order.reserve(num_comb);
    while (!ready.empty()) {
        size_t i = ready.front();
        ready.pop_front();
        order.push_back(i);
        for (size_t c : consumers[i])
            if (--indeg[c] == 0)
                ready.push_back(c);
    }
    return order.size() == num_comb;
}

/** One forward pass over the combinational logic. */
void
evalComb(const Netlist &nl, const std::vector<size_t> &order,
         std::vector<Ternary> &vals)
{
    const auto &cells = nl.cells();
    for (size_t i : order) {
        const CellInst &cell = cells[i];
        Ternary in[3] = {Ternary::Zero, Ternary::Zero, Ternary::Zero};
        for (size_t k = 0; k < cell.inputs.size() && k < 3; ++k) {
            NetId n = cell.inputs[k];
            in[k] = (n != kNoNet && n < vals.size()) ? vals[n]
                                                     : Ternary::X;
        }
        if (cell.output < vals.size())
            vals[cell.output] =
                ternaryEval(cell.type, in[0], in[1], in[2]);
    }
}

std::string
cellDesc(const Netlist &nl, size_t i)
{
    const CellInst &cell = nl.cells()[i];
    return strfmt("%s #%zu @%s (%s)", cellInfo(cell.type).name, i,
                  cell.module.c_str(),
                  nl.netName(cell.output).c_str());
}

} // namespace

const char *
ternaryName(Ternary t)
{
    switch (t) {
      case Ternary::Zero: return "0";
      case Ternary::One: return "1";
      case Ternary::X: return "X";
    }
    return "?";
}

Ternary
ternaryEval(CellType type, Ternary a, Ternary b, Ternary c)
{
    uint8_t lut = cellTruthTable(type);
    const Ternary in[3] = {a, b, c};
    bool can0 = false, can1 = false;
    for (unsigned idx = 0; idx < 8; ++idx) {
        bool possible = true;
        for (unsigned k = 0; k < 3; ++k) {
            bool bit = (idx >> k) & 1u;
            if (in[k] != Ternary::X &&
                bit != (in[k] == Ternary::One)) {
                possible = false;
                break;
            }
        }
        if (!possible)
            continue;
        if ((lut >> idx) & 1u)
            can1 = true;
        else
            can0 = true;
        if (can0 && can1)
            return Ternary::X;
    }
    return can1 ? Ternary::One : Ternary::Zero;
}

size_t
DataflowResult::numConstNets() const
{
    size_t n = 0;
    for (Ternary t : constVal)
        if (t != Ternary::X)
            ++n;
    // Never count the two constant rails themselves.
    return n >= 2 ? n - 2 : 0;
}

size_t
DataflowResult::numDeadCells() const
{
    size_t n = 0;
    for (uint8_t live : liveCell)
        if (!live)
            ++n;
    return n;
}

size_t
DataflowResult::numUninitDffs() const
{
    size_t n = 0;
    for (Ternary t : resetVal)
        if (t == Ternary::X)
            ++n;
    return n;
}

DataflowResult
analyzeDataflow(const Netlist &nl, const DataflowOptions &opts)
{
    DataflowResult res;
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();

    std::vector<size_t> order;
    if (!combTopoOrder(nl, order)) {
        res.detail = "combinational cycle: no topological order";
        return res;
    }

    // Base abstraction: rails defined, tied pads defined, everything
    // else (free inputs, undriven nets) starts X.
    std::vector<Ternary> base(num_nets, Ternary::X);
    base[nl.zero()] = Ternary::Zero;
    base[nl.one()] = Ternary::One;
    for (const PadTie &tie : opts.ties) {
        auto it = nl.primaryInputs().find(tie.input);
        if (it == nl.primaryInputs().end()) {
            res.detail =
                strfmt("tie names unknown input '%s'",
                       tie.input.c_str());
            return res;
        }
        base[it->second] = ternaryOf(tie.value);
    }

    auto dffs = nl.dffs();

    // Constant propagation: ascend from the power-on state, joining
    // each DFF's captured next-state into its abstraction. Each
    // iteration degrades at least one DFF toward X or converges, so
    // numDffs()+1 rounds always suffice.
    std::vector<Ternary> q(dffs.size());
    for (size_t i = 0; i < dffs.size(); ++i)
        q[i] = ternaryOf(dffs[i].init);
    std::vector<Ternary> vals;
    for (size_t round = 0; round <= dffs.size() + 1; ++round) {
        ++res.constIterations;
        vals = base;
        for (size_t i = 0; i < dffs.size(); ++i)
            vals[dffs[i].q] = q[i];
        evalComb(nl, order, vals);
        bool changed = false;
        for (size_t i = 0; i < dffs.size(); ++i) {
            Ternary d = dffs[i].d != kNoNet && dffs[i].d < num_nets
                ? vals[dffs[i].d] : Ternary::X;
            Ternary next = ternaryJoin(q[i], d);
            if (next != q[i]) {
                q[i] = next;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    res.constVal = vals;

    // X / reset coverage: the same machine iterated from an
    // undefined power-on state. Values only move X -> defined
    // (gates are monotone on the Kleene order), so this is an
    // ascending chain too.
    std::vector<Ternary> xq(dffs.size(), Ternary::X);
    for (size_t round = 0; round <= dffs.size() + 1; ++round) {
        ++res.resetIterations;
        vals = base;
        for (size_t i = 0; i < dffs.size(); ++i)
            vals[dffs[i].q] = xq[i];
        evalComb(nl, order, vals);
        bool changed = false;
        for (size_t i = 0; i < dffs.size(); ++i) {
            Ternary d = dffs[i].d != kNoNet && dffs[i].d < num_nets
                ? vals[dffs[i].d] : Ternary::X;
            if (d != xq[i]) {
                xq[i] = d;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    res.resetVal = std::move(xq);

    // Cone-of-influence liveness from the primary outputs, cut at
    // proven constants: a constant net needs no driver (prune folds
    // it to a rail), so its cone contributes to no observable.
    res.liveCell.assign(cells.size(), 0);
    res.liveNet.assign(num_nets, 0);
    std::vector<size_t> driver(num_nets, kNoCell);
    for (size_t i = 0; i < cells.size(); ++i)
        if (cells[i].output < num_nets)
            driver[cells[i].output] = i;

    std::deque<NetId> work;
    auto visit = [&](NetId net) {
        if (net == kNoNet || net >= num_nets || res.liveNet[net])
            return;
        if (res.constVal[net] != Ternary::X)
            return;
        res.liveNet[net] = 1;
        work.push_back(net);
    };
    for (const auto &[name, net] : nl.primaryOutputs())
        visit(net);
    while (!work.empty()) {
        NetId net = work.front();
        work.pop_front();
        size_t i = driver[net];
        if (i == kNoCell || res.liveCell[i])
            continue;
        res.liveCell[i] = 1;
        for (size_t k = 0; k < realInputs(cells[i]); ++k)
            visit(cells[i].inputs[k]);
    }

    res.ok = true;
    return res;
}

LintReport
dataflowLint(const Netlist &nl, const DataflowOptions &opts)
{
    LintReport rep;
    DataflowResult df = analyzeDataflow(nl, opts);
    if (!df.ok) {
        rep.add({Severity::Note, "dataflow-skipped", "core", {}, -1,
                 -1,
                 strfmt("dataflow analysis skipped: %s",
                        df.detail.c_str())});
        return rep;
    }

    const auto &cells = nl.cells();
    auto dffs = nl.dffs();

    // dead-gate: cells in no observable cone (and not explained by a
    // constant output, which constant-output reports instead).
    std::map<std::string, std::vector<size_t>> dead;
    for (size_t i = 0; i < cells.size(); ++i)
        if (!df.liveCell[i] &&
            df.constVal[cells[i].output] == Ternary::X)
            dead[cells[i].module].push_back(i);
    for (const auto &[module, idxs] : dead) {
        std::string list;
        std::vector<NetId> nets;
        for (size_t k = 0; k < idxs.size(); ++k) {
            if (k < 6)
                list += (k ? ", " : "") + cellDesc(nl, idxs[k]);
            nets.push_back(cells[idxs[k]].output);
        }
        if (idxs.size() > 6)
            list += ", ...";
        rep.add({Severity::Warning, "dead-gate", module, nets, -1,
                 -1,
                 strfmt("%zu cell(s) in no observable cone (dataflow "
                        "reachability): %s",
                        idxs.size(), list.c_str())});
    }

    // constant-output: cell outputs with a proven constant value in
    // every reachable state (sequential-aware, unlike const-output).
    std::map<std::string, std::vector<size_t>> constant;
    for (size_t i = 0; i < cells.size(); ++i)
        if (df.constVal[cells[i].output] != Ternary::X)
            constant[cells[i].module].push_back(i);
    for (const auto &[module, idxs] : constant) {
        std::string list;
        std::vector<NetId> nets;
        for (size_t k = 0; k < idxs.size(); ++k) {
            NetId out = cells[idxs[k]].output;
            if (k < 6)
                list += strfmt("%s%s=%s", k ? ", " : "",
                               nl.netName(out).c_str(),
                               ternaryName(df.constVal[out]));
            nets.push_back(out);
        }
        if (idxs.size() > 6)
            list += ", ...";
        rep.add({Severity::Warning, "constant-output", module, nets,
                 -1, -1,
                 strfmt("%zu cell output(s) provably constant in "
                        "every reachable state: %s",
                        idxs.size(), list.c_str())});
    }

    // x-after-reset: state bits never re-initialized by the logic.
    std::map<std::string, std::vector<size_t>> uninit;
    for (size_t i = 0; i < dffs.size(); ++i)
        if (df.resetVal[i] == Ternary::X)
            uninit[cells[dffs[i].cell].module].push_back(i);
    for (const auto &[module, idxs] : uninit) {
        std::string list;
        std::vector<NetId> nets;
        for (size_t k = 0; k < idxs.size(); ++k) {
            if (k < 6)
                list += (k ? ", " : "") +
                        nl.netName(dffs[idxs[k]].q);
            nets.push_back(dffs[idxs[k]].q);
        }
        if (idxs.size() > 6)
            list += ", ...";
        rep.add({Severity::Warning, "x-after-reset", module, nets,
                 -1, -1,
                 strfmt("%zu state bit(s) rely on the power-on "
                        "value (X-pessimistic simulation from an "
                        "undefined start never re-initializes "
                        "them): %s",
                        idxs.size(), list.c_str())});
    }

    rep.resolveNetNames(nl);
    return rep;
}

} // namespace flexi
