#include "bespoke.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace flexi
{

namespace
{

/** Page byte at @p idx; past the image the idle bus reads zeros. */
uint8_t
byteAt(const std::vector<uint8_t> &image, size_t idx)
{
    return idx < image.size() ? image[idx] : 0;
}

/**
 * Every word the instruction bus can carry while executing the
 * reachable point @p pt, matching how the runners drive the pads.
 */
void
busWordsAt(IsaKind isa, const std::vector<uint8_t> &image,
           const ProgramFactPoint &pt, std::set<unsigned> &words)
{
    switch (isa) {
      case IsaKind::FlexiCore4:
        words.insert(byteAt(image, pt.addr));
        break;
      case IsaKind::FlexiCore8:
        // A two-byte ldb fetches its immediate over the same 8-bit
        // bus on the next cycle.
        words.insert(byteAt(image, pt.addr));
        if (pt.bytes == 2)
            words.insert(byteAt(image, pt.addr + 1));
        break;
      case IsaKind::ExtAcc4:
        // Wide bus: both bytes arrive at once; for a one-byte
        // instruction the high byte is the next program byte.
        words.insert(byteAt(image, pt.addr) |
                     (byteAt(image, pt.addr + 1) << 8));
        break;
      case IsaKind::LoadStore4:
        words.insert(
            byteAt(image, static_cast<size_t>(pt.addr) * 2) |
            (byteAt(image, static_cast<size_t>(pt.addr) * 2 + 1)
             << 8));
        break;
    }
}

} // namespace

size_t
BespokeFacts::numTiedBits() const
{
    size_t n = 0;
    for (Ternary t : instrBits)
        if (t != Ternary::X)
            ++n;
    return n;
}

BespokeFacts
bespokeInstrFacts(IsaKind isa, const std::vector<Program> &progs)
{
    BespokeFacts facts;
    facts.isa = isa;
    facts.busWidth =
        (isa == IsaKind::ExtAcc4 || isa == IsaKind::LoadStore4)
            ? 16 : 8;

    std::set<unsigned> words;
    std::set<std::string> ops;
    for (const Program &prog : progs) {
        ProgramFacts pf = programFacts(prog);
        if (!pf.report.clean())
            continue;
        for (const ProgramFactPoint &pt : pf.points) {
            if (pt.page >= prog.numPages())
                continue;
            busWordsAt(isa, prog.page(pt.page), pt, words);
            ops.insert(opName(pt.inst.op));
        }
    }
    facts.words = words.size();
    facts.reachableOps.assign(ops.begin(), ops.end());

    // Per-bit fold: a bit is tied iff every reachable word agrees.
    facts.instrBits.assign(facts.busWidth, Ternary::X);
    bool first = true;
    for (unsigned w : words) {
        for (unsigned k = 0; k < facts.busWidth; ++k) {
            Ternary bit = ternaryOf((w >> k) & 1u);
            facts.instrBits[k] = first
                ? bit : ternaryJoin(facts.instrBits[k], bit);
        }
        first = false;
    }
    if (words.empty())
        facts.instrBits.assign(facts.busWidth, Ternary::X);
    return facts;
}

BespokeResult
bespokePrune(const Netlist &core, IsaKind isa,
             const std::vector<Program> &progs, bool certify)
{
    BespokeResult res;
    for (const Program &prog : progs) {
        if (prog.isa() != isa) {
            res.detail = "program assembled for a different ISA";
            return res;
        }
        if (!lintProgram(prog).clean()) {
            res.detail =
                "refusing to specialize: a program has lint errors "
                "(its reachable set is not trustworthy)";
            return res;
        }
    }

    res.facts = bespokeInstrFacts(isa, progs);
    if (res.facts.words == 0) {
        res.detail = "no reachable instruction words";
        return res;
    }
    if (res.facts.numTiedBits() == 0) {
        res.detail = "no instruction-bus bit is constant across the "
                     "reachable encodings; nothing to specialize";
        return res;
    }

    for (unsigned k = 0; k < res.facts.busWidth; ++k)
        if (res.facts.instrBits[k] != Ternary::X)
            res.ties.push_back(
                {strfmt("instr%u", k),
                 res.facts.instrBits[k] == Ternary::One});

    DataflowOptions opts;
    opts.ties = res.ties;
    res.prune = prune(core, opts, certify);
    if (!res.prune.ok) {
        res.detail = res.prune.detail;
        return res;
    }
    res.ok = true;
    return res;
}

} // namespace flexi
