/**
 * @file
 * Fixed-point ternary dataflow analysis over a gate-level netlist.
 *
 * Three coupled analyses, all running on the 0/1/X lattice with the
 * cell truth tables as transfer functions:
 *
 *  - Constant propagation: an ascending Kleene iteration from the
 *    power-on state (DFFs at their init values, primary inputs at X
 *    unless tied by DataflowOptions), joining each DFF's next-state
 *    into its current abstraction until nothing changes. A net whose
 *    fixpoint value is 0 or 1 provably holds that value in *every*
 *    reachable state under the tie environment — the license prune()
 *    needs to fold it to a rail.
 *
 *  - X / reset coverage: the dual iteration from an *undefined*
 *    power-on state (all DFFs at X). A DFF that converges to 0/1
 *    re-initializes itself from the logic alone; a DFF still X at
 *    the fixpoint relies on the modeled power-on value (the
 *    fabricated parts reset via an external sequence), which is
 *    exactly the smell the uninit-* program rules flag at the
 *    software level.
 *
 *  - Cone-of-influence reachability: backward liveness from the
 *    primary outputs, cut at proven-constant nets. Cells and DFFs
 *    outside every observable cone are dead: removing them cannot
 *    change any output in any reachable state.
 *
 * Results feed dataflowLint() (rules dead-gate, x-after-reset,
 * constant-output — docs/LINT.md), the prune() optimization pass,
 * and the bespoke-core derivation, which expresses a kernel's
 * reachable instruction encodings as input ties.
 */

#ifndef FLEXI_ANALYSIS_DATAFLOW_DATAFLOW_HH
#define FLEXI_ANALYSIS_DATAFLOW_DATAFLOW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/** One point of the constant lattice: defined 0/1 or unknown. */
enum class Ternary : uint8_t
{
    Zero,
    One,
    X,
};

/** "0", "1", or "X". */
const char *ternaryName(Ternary t);

inline Ternary
ternaryOf(bool b)
{
    return b ? Ternary::One : Ternary::Zero;
}

/** Value join: 0 v 0 = 0, 1 v 1 = 1, anything else X. */
inline Ternary
ternaryJoin(Ternary a, Ternary b)
{
    return a == b ? a : Ternary::X;
}

/**
 * Ternary evaluation of one combinational cell: the result is
 * defined iff every resolution of the X inputs agrees (exhaustive
 * over the cell's 8-entry truth table, so X-dominance like
 * NAND(0, X) = 1 falls out for free).
 */
Ternary ternaryEval(CellType type, Ternary a, Ternary b, Ternary c);

/** A primary input pinned to a constant for the analysis. */
struct PadTie
{
    std::string input;   ///< primary-input name
    bool value = false;
};

struct DataflowOptions
{
    /**
     * Environment assumption: these pads hold these constants in
     * every analyzed state. The bespoke-core flow derives ties from
     * a kernel's reachable instruction encodings; an empty list
     * analyzes the open netlist.
     */
    std::vector<PadTie> ties;
};

/** Everything the fixed-point engine learned about one netlist. */
struct DataflowResult
{
    /** Analysis ran (false: combinational cycle; see detail). */
    bool ok = false;
    std::string detail;

    /**
     * Per-net constant abstraction at the fixpoint: Zero/One means
     * the net provably holds that value in every reachable state
     * under the ties.
     */
    std::vector<Ternary> constVal;
    /**
     * Per-DFF (commit order) fixpoint of the undefined-start
     * iteration: X means the DFF's value is never provably restored
     * by the logic and relies on the power-on initialization.
     */
    std::vector<Ternary> resetVal;

    /** Per-cell / per-net membership in some observable cone. */
    std::vector<uint8_t> liveCell;
    std::vector<uint8_t> liveNet;

    /** Iterations to convergence (diagnostics / tests). */
    size_t constIterations = 0;
    size_t resetIterations = 0;

    bool netConst(NetId net) const
    {
        return net < constVal.size() && constVal[net] != Ternary::X;
    }
    bool netConstValue(NetId net) const
    {
        return constVal[net] == Ternary::One;
    }

    size_t numConstNets() const;
    size_t numDeadCells() const;
    size_t numUninitDffs() const;
};

/**
 * Run the fixed-point engine over @p nl (elaborated or not; the
 * analysis builds its own topological order). Undriven nets read X.
 */
DataflowResult analyzeDataflow(const Netlist &nl,
                               const DataflowOptions &opts = {});

/**
 * Render an analysis as diagnostics: dead-gate and constant-output
 * (Warning, aggregated per module) and x-after-reset (Warning, one
 * per module listing the affected state bits). An analysis that
 * could not run emits a dataflow-skipped Note.
 */
LintReport dataflowLint(const Netlist &nl,
                        const DataflowOptions &opts = {});

} // namespace flexi

#endif // FLEXI_ANALYSIS_DATAFLOW_DATAFLOW_HH
