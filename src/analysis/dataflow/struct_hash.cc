#include "struct_hash.hh"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "tech/cell_library.hh"

namespace flexi
{

namespace
{

constexpr size_t kNoCell = ~size_t{0};
/**
 * Refinement rounds. Each round propagates one full combinational
 * depth plus one register boundary, so 8 rounds digest the state
 * feedback structure to depth 8 — far past what separating the
 * shipped cores needs, cheap enough to hash in microseconds.
 */
constexpr unsigned kRounds = 8;
/** Jacobi rounds used when the graph is (degenerately) cyclic. */
constexpr unsigned kCyclicRounds = 64;

/** splitmix64 finalizer: the 64-bit mixing primitive. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

uint64_t
mix2(uint64_t h, uint64_t v)
{
    return mix64(h ^ mix64(v));
}

/** FNV-1a over a string (for pad names). */
uint64_t
fnv64(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Domain-separation tags for the different node kinds. */
constexpr uint64_t kTagInput = 0x11;
constexpr uint64_t kTagRail0 = 0x22;
constexpr uint64_t kTagRail1 = 0x33;
constexpr uint64_t kTagDff = 0x44;
constexpr uint64_t kTagFree = 0x55;
constexpr uint64_t kTagCell = 0x66;
constexpr uint64_t kTagFinal = 0x77;

/** All inputs interchangeable (sorting their hashes is sound)? */
bool
symmetricInputs(CellType type)
{
    switch (type) {
      case CellType::NAND2:
      case CellType::NAND3:
      case CellType::NOR2:
      case CellType::NOR3:
      case CellType::XOR2:
      case CellType::XNOR2:
        return true;
      default:
        return false;
    }
}

/**
 * Combinational cells in topological order; false on a cycle (the
 * caller falls back to order-independent Jacobi iteration).
 */
bool
combTopo(const Netlist &nl, std::vector<size_t> &order)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();
    std::vector<size_t> driver(num_nets, kNoCell);
    for (size_t i = 0; i < cells.size(); ++i)
        if (!isSequential(cells[i].type) &&
            cells[i].output < num_nets)
            driver[cells[i].output] = i;

    std::vector<unsigned> indeg(cells.size(), 0);
    std::vector<std::vector<size_t>> consumers(cells.size());
    size_t num_comb = 0;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (isSequential(cells[i].type))
            continue;
        ++num_comb;
        for (NetId in : cells[i].inputs) {
            if (in == kNoNet || in >= num_nets)
                continue;
            size_t d = driver[in];
            if (d != kNoCell) {
                consumers[d].push_back(i);
                ++indeg[i];
            }
        }
    }
    std::deque<size_t> ready;
    for (size_t i = 0; i < cells.size(); ++i)
        if (!isSequential(cells[i].type) && indeg[i] == 0)
            ready.push_back(i);
    order.clear();
    while (!ready.empty()) {
        size_t i = ready.front();
        ready.pop_front();
        order.push_back(i);
        for (size_t c : consumers[i])
            if (--indeg[c] == 0)
                ready.push_back(c);
    }
    return order.size() == num_comb;
}

uint64_t
hashCellFrom(const CellInst &cell, const std::vector<uint64_t> &h)
{
    uint64_t ins[3];
    size_t arity = std::min<size_t>(cell.inputs.size(), 3);
    for (size_t k = 0; k < arity; ++k) {
        NetId n = cell.inputs[k];
        ins[k] = (n != kNoNet && n < h.size()) ? h[n]
                                               : mix64(kTagFree);
    }
    if (symmetricInputs(cell.type))
        std::sort(ins, ins + arity);
    uint64_t v = mix2(kTagCell,
                      static_cast<uint64_t>(cell.type) * 251 + arity);
    for (size_t k = 0; k < arity; ++k)
        v = mix2(v, ins[k]);
    return v;
}

/** Fold a multiset of hashes order-independently (sort, then mix). */
uint64_t
foldSorted(uint64_t acc, std::vector<uint64_t> items)
{
    std::sort(items.begin(), items.end());
    acc = mix2(acc, items.size());
    for (uint64_t v : items)
        acc = mix2(acc, v);
    return acc;
}

} // namespace

uint64_t
canonicalNetlistHash(const Netlist &nl)
{
    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();
    auto dffs = nl.dffs();

    // Round-0 labels: local structure only.
    std::vector<uint64_t> h(num_nets, mix64(kTagFree));
    h[nl.zero()] = mix64(kTagRail0);
    h[nl.one()] = mix64(kTagRail1);
    for (const auto &[name, net] : nl.primaryInputs())
        h[net] = mix2(kTagInput, fnv64(name));
    for (const auto &dff : dffs)
        h[dff.q] = mix2(kTagDff, dff.init ? 1 : 0);

    std::vector<size_t> order;
    bool acyclic = combTopo(nl, order);
    unsigned rounds = acyclic ? kRounds : kCyclicRounds;

    for (unsigned r = 0; r < rounds; ++r) {
        if (acyclic) {
            // Gauss-Seidel within the round: every comb fanin is
            // already refreshed when a cell rehashes, so one round
            // digests the full combinational depth regardless of
            // which valid topological order was found.
            for (size_t i : order)
                h[cells[i].output] = hashCellFrom(cells[i], h);
        } else {
            // Cyclic fallback: order-independent Jacobi update.
            std::vector<uint64_t> next = h;
            for (size_t i = 0; i < cells.size(); ++i)
                if (!isSequential(cells[i].type) &&
                    cells[i].output < num_nets)
                    next[cells[i].output] =
                        hashCellFrom(cells[i], h);
            h = std::move(next);
        }
        // Register boundary: Q picks up its D cone's digest.
        std::vector<uint64_t> nextq(dffs.size());
        for (size_t i = 0; i < dffs.size(); ++i) {
            uint64_t d = dffs[i].d != kNoNet && dffs[i].d < num_nets
                ? h[dffs[i].d] : mix64(kTagFree);
            nextq[i] = mix2(mix2(kTagDff, dffs[i].init ? 1 : 0), d);
        }
        for (size_t i = 0; i < dffs.size(); ++i)
            h[dffs[i].q] = nextq[i];
    }

    // Final digest: sorted multisets only, so neither net numbering
    // nor cell insertion order can reach the result.
    uint64_t acc = mix2(kTagFinal, fnv64("flexi-canonical-v1"));

    std::vector<uint64_t> items;
    for (const auto &[name, net] : nl.primaryOutputs())
        items.push_back(mix2(fnv64(name), h[net]));
    acc = foldSorted(acc, std::move(items));

    items.clear();
    for (const auto &[name, net] : nl.primaryInputs())
        items.push_back(fnv64(name));
    acc = foldSorted(acc, std::move(items));

    items.clear();
    for (const auto &dff : dffs)
        items.push_back(h[dff.q]);
    acc = foldSorted(acc, std::move(items));

    items.clear();
    for (const auto &cell : cells)
        if (!isSequential(cell.type))
            items.push_back(
                mix2(static_cast<uint64_t>(cell.type),
                     h[cell.output]));
    acc = foldSorted(acc, std::move(items));

    return mix2(acc, cells.size());
}

std::string
canonicalNetlistHashHex(const Netlist &nl)
{
    return strfmt("%016llx",
                  static_cast<unsigned long long>(
                      canonicalNetlistHash(nl)));
}

} // namespace flexi
