/**
 * @file
 * Bespoke-core derivation: prune a core netlist down to what one
 * kernel (or kernel suite) can actually put on its instruction bus.
 *
 * The program linter's abstract interpreter proves which execution
 * points a program can reach from power-on. From those points this
 * pass enumerates every word the instruction bus can carry — per
 * ISA: FlexiCore4 one byte per point; FlexiCore8 both bytes of a
 * two-byte ldb (the immediate crosses the same bus); ExtAcc4 the
 * 16-bit wide-bus word (whose high byte is the *next* program byte,
 * exactly as the lockstep runner fetches it); LoadStore4 the 16-bit
 * instruction word — and folds them into a per-bit constancy mask.
 * Bits constant across every reachable word become PadTie
 * assumptions, and prune() removes the decode and datapath logic
 * those pins make dead or constant, SAT-certified under the same
 * assumptions.
 *
 * This is the RISP-style specialization the related work applies to
 * bespoke health-monitoring co-processors: the part only ever runs
 * this kernel, so logic only other instruction encodings can
 * exercise is yield-free weight. Savings are reported in NAND2
 * equivalents; src/dse/bespoke_report.* prices them against the DSE
 * area model.
 */

#ifndef FLEXI_ANALYSIS_DATAFLOW_BESPOKE_HH
#define FLEXI_ANALYSIS_DATAFLOW_BESPOKE_HH

#include <string>
#include <vector>

#include "analysis/dataflow/dataflow.hh"
#include "analysis/dataflow/prune.hh"
#include "analysis/program_lint.hh"
#include "assembler/program.hh"

namespace flexi
{

/** What the kernel suite can drive onto the instruction bus. */
struct BespokeFacts
{
    IsaKind isa = IsaKind::FlexiCore4;
    /** Instruction-bus width (8, or 16 for the wide-bus cores). */
    unsigned busWidth = 8;
    /** Per-bus-bit constancy over every reachable word. */
    std::vector<Ternary> instrBits;
    /** Distinct reachable bus words. */
    size_t words = 0;
    /** Sorted unique mnemonics on some reachable path. */
    std::vector<std::string> reachableOps;

    size_t numTiedBits() const;
};

/**
 * Fold the reachable instruction encodings of @p progs (all
 * assembled for @p isa) into bus-bit facts. Programs with lint
 * *errors* contribute nothing (their control flow is broken, so
 * their reachable set is not trustworthy) and are reported in the
 * result of bespokePrune() instead.
 */
BespokeFacts bespokeInstrFacts(IsaKind isa,
                               const std::vector<Program> &progs);

struct BespokeResult
{
    bool ok = false;
    std::string detail;
    BespokeFacts facts;
    /** The tie environment handed to prune(). */
    std::vector<PadTie> ties;
    /** The certified prune under those ties. */
    PruneResult prune;
};

/**
 * Specialize @p core (an elaborated netlist whose instruction bus
 * pads are named instr0..instrN-1) to the given kernel programs.
 * Refuses when any program has lint errors or when no bus bit is
 * constant (nothing to specialize).
 */
BespokeResult bespokePrune(const Netlist &core, IsaKind isa,
                           const std::vector<Program> &progs,
                           bool certify = true);

} // namespace flexi

#endif // FLEXI_ANALYSIS_DATAFLOW_BESPOKE_HH
