#include "prune.hh"

#include <algorithm>
#include <map>

#include "analysis/cnf_encoder.hh"
#include "common/logging.hh"
#include "tech/cell_library.hh"

namespace flexi
{

namespace
{

using Result = SatSolver::Result;

/** Full named input + state assignment from the last Sat model. */
EquivCounterexample
extractCex(const SatSolver &solver, const Netlist &nl,
           const NetlistEncoding &enc)
{
    EquivCounterexample cex;
    for (const auto &[name, net] : nl.primaryInputs())
        if (enc.hasLit(net))
            cex.assignment.emplace_back(
                name, solver.modelValue(enc.lit(net)));
    auto dffs = nl.dffs();
    for (size_t i = 0; i < dffs.size(); ++i)
        cex.assignment.emplace_back(nl.netName(dffs[i].q),
                                    solver.modelValue(enc.dffQ[i]));
    return cex;
}

/** Two-solve equality proof with incremental hardening. */
bool
proveEqual(CnfBuilder &cnf, SatLit a, SatLit b, uint64_t &solves)
{
    if (a == b)
        return true;
    SatSolver &solver = cnf.solver();
    ++solves;
    if (solver.solve({a, ~b}) == Result::Sat)
        return false;
    ++solves;
    if (solver.solve({~a, b}) == Result::Sat)
        return false;
    solver.addClause({~a, b});
    solver.addClause({a, ~b});
    return true;
}

/** Prove @p l equals constant @p value; harden on success. */
bool
proveConst(CnfBuilder &cnf, SatLit l, bool value, uint64_t &solves)
{
    SatSolver &solver = cnf.solver();
    SatLit want = value ? l : ~l;
    ++solves;
    if (solver.solve({~want}) == Result::Sat)
        return false;
    solver.addClause({want});
    return true;
}

} // namespace

PruneResult
prune(const Netlist &nl, const DataflowOptions &opts, bool certify)
{
    PruneResult res;
    if (!nl.elaborated()) {
        res.detail = "prune requires an elaborated netlist";
        return res;
    }

    res.dataflow = analyzeDataflow(nl, opts);
    const DataflowResult &df = res.dataflow;
    if (!df.ok) {
        res.detail = strfmt("dataflow analysis failed: %s",
                            df.detail.c_str());
        return res;
    }

    const auto &cells = nl.cells();
    size_t num_nets = nl.numNets();
    auto dffs = nl.dffs();

    auto out = std::make_unique<Netlist>(nl.name() + "-pruned");
    std::vector<NetId> net_map(num_nets, kNoNet);
    net_map[nl.zero()] = out->zero();
    net_map[nl.one()] = out->one();

    // The pad interface survives verbatim; a tied pad's consumers
    // read the rail instead (the pad itself stays, dangling).
    for (const auto &[name, net] : nl.primaryInputs())
        net_map[net] = out->addInput(name);
    for (NetId n = 0; n < num_nets; ++n)
        if (df.constVal[n] != Ternary::X)
            net_map[n] = df.constVal[n] == Ternary::One
                ? out->one() : out->zero();

    // Surviving DFFs first (D wired after the comb cells exist).
    // The ascending analysis starts at the power-on state, so a
    // constant DFF's value necessarily equals its init.
    res.dffMap.assign(dffs.size(), kPrunedAway);
    size_t next_dff = 0;
    for (size_t i = 0; i < dffs.size(); ++i) {
        bool is_const = df.constVal[dffs[i].q] != Ternary::X;
        if (is_const &&
            (df.constVal[dffs[i].q] == Ternary::One) !=
                dffs[i].init)
            panic("prune: constant DFF disagrees with its init");
        if (is_const) {
            ++res.stats.constDffs;
            continue;
        }
        if (!df.liveCell[dffs[i].cell])
            continue;
        bool x2 = cells[dffs[i].cell].type == CellType::DFF_X2;
        NetId q = out->addDff(out->zero(),
                              cells[dffs[i].cell].module,
                              dffs[i].init, x2);
        net_map[dffs[i].q] = q;
        res.dffMap[i] = next_dff++;
    }

    // Surviving combinational cells, in plan (topological) order so
    // every mapped input already exists.
    for (const auto &step : nl.planSteps()) {
        size_t i = step.cell;
        const CellInst &cell = cells[i];
        if (df.constVal[cell.output] != Ternary::X) {
            ++res.stats.constCells;
            continue;
        }
        if (!df.liveCell[i]) {
            ++res.stats.deadCells;
            continue;
        }
        std::vector<NetId> ins;
        ins.reserve(cell.inputs.size());
        for (NetId in : cell.inputs) {
            if (in == kNoNet || net_map[in] == kNoNet) {
                res.detail = strfmt(
                    "live cell #%zu reads an unmapped net", i);
                return res;
            }
            ins.push_back(net_map[in]);
        }
        net_map[cell.output] =
            out->addCell(cell.type, ins, cell.module);
    }

    // Close the sequential feedback and the pad interface.
    for (size_t i = 0; i < dffs.size(); ++i) {
        if (res.dffMap[i] == kPrunedAway)
            continue;
        NetId d = net_map[dffs[i].d];
        if (d == kNoNet) {
            res.detail = strfmt(
                "surviving DFF %zu has an unmapped D cone", i);
            return res;
        }
        out->setDffInput(net_map[dffs[i].q], d);
    }
    for (const auto &[name, net] : nl.primaryOutputs()) {
        if (net_map[net] == kNoNet) {
            res.detail = strfmt("output '%s' has an unmapped net",
                                name.c_str());
            return res;
        }
        out->addOutput(name, net_map[net]);
    }

    out->elaborate();

    res.stats.cellsBefore = nl.numCells();
    res.stats.cellsAfter = out->numCells();
    res.stats.dffsBefore = dffs.size();
    res.stats.dffsAfter = next_dff;
    res.stats.nand2AreaBefore = nl.totalNand2Area();
    res.stats.nand2AreaAfter = out->totalNand2Area();

    res.netlist = std::move(out);
    res.netMap = std::move(net_map);
    res.ok = true;

    if (certify) {
        res.certification = certifyPrune(nl, *res.netlist, df,
                                         res.dffMap, res.netMap,
                                         opts);
        res.certified = res.certification.proven;
    }
    return res;
}

EquivResult
certifyPrune(const Netlist &orig, const Netlist &pruned,
             const DataflowResult &df,
             const std::vector<size_t> &dffMap,
             const std::vector<NetId> &netMap,
             const DataflowOptions &opts)
{
    EquivResult res;
    if (!orig.elaborated() || !pruned.elaborated()) {
        res.detail = "certifyPrune requires elaborated netlists";
        return res;
    }
    auto odffs = orig.dffs();
    auto pdffs = pruned.dffs();
    if (dffMap.size() != odffs.size()) {
        res.detail = "dffMap does not cover the original state";
        return res;
    }

    SatSolver solver;
    CnfBuilder cnf(solver);
    NetlistEncodeOptions enc_opts;
    enc_opts.mode = NetlistEncodeMode::Reference;
    NetlistEncoding eo = encodeNetlist(cnf, orig, enc_opts);

    auto fail = [&](const std::string &who) {
        res.hasCex = true;
        res.cex = extractCex(solver, orig, eo);
        res.cex.mismatched.push_back(who);
    };

    // Environment: the tie assumptions hold on both sides (pads are
    // shared below, so asserting them once on the original pins the
    // pruned pads too).
    for (const PadTie &tie : opts.ties) {
        auto it = orig.primaryInputs().find(tie.input);
        if (it == orig.primaryInputs().end()) {
            res.detail = strfmt("tie names unknown input '%s'",
                                tie.input.c_str());
            return res;
        }
        SatLit l = eo.lit(it->second);
        cnf.assertLit(tie.value ? l : ~l);
    }

    // Step 1a: pin the constant DFFs (the induction hypothesis) and
    // check the base case against the power-on values.
    for (size_t i = 0; i < odffs.size(); ++i) {
        if (df.constVal[odffs[i].q] == Ternary::X)
            continue;
        bool v = df.constVal[odffs[i].q] == Ternary::One;
        if (v != odffs[i].init) {
            res.detail = strfmt(
                "constant state bit %s disagrees with its power-on "
                "value (base case)",
                orig.netName(odffs[i].q).c_str());
            return res;
        }
        cnf.assertLit(v ? eo.dffQ[i] : ~eo.dffQ[i]);
    }

    // Step 1b: the inductive step — every constant DFF's captured
    // next-state equals its constant under the pins.
    for (size_t i = 0; i < odffs.size(); ++i) {
        if (df.constVal[odffs[i].q] == Ternary::X)
            continue;
        bool v = df.constVal[odffs[i].q] == Ternary::One;
        if (!proveConst(cnf, eo.dffD[i], v, res.solves)) {
            fail(orig.netName(odffs[i].q) + " (constant induction)");
            res.conflicts = solver.stats().conflicts;
            return res;
        }
    }

    // Step 1c: every folded combinational net is proven equal to its
    // rail, in topological order (each proof hardens into a unit
    // clause the later cones reuse).
    for (const auto &step : orig.planSteps()) {
        NetId net = orig.cells()[step.cell].output;
        if (df.constVal[net] == Ternary::X || !eo.hasLit(net))
            continue;
        bool v = df.constVal[net] == Ternary::One;
        if (!proveConst(cnf, eo.lit(net), v, res.solves)) {
            fail(orig.netName(net) + " (constant fold)");
            res.conflicts = solver.stats().conflicts;
            return res;
        }
    }

    // Step 2: the observable miter. Pads shared by name, surviving
    // state shared through the prune's DFF map.
    NetlistEncoding ep = encodeNetlist(cnf, pruned, enc_opts);
    for (const auto &[name, onet] : orig.primaryInputs()) {
        auto it = pruned.primaryInputs().find(name);
        if (it == pruned.primaryInputs().end()) {
            res.detail = strfmt("pruned netlist lost input '%s'",
                                name.c_str());
            return res;
        }
        SatLit a = eo.lit(onet), b = ep.lit(it->second);
        solver.addClause({~a, b});
        solver.addClause({a, ~b});
    }
    for (size_t i = 0; i < odffs.size(); ++i) {
        if (dffMap[i] == kPrunedAway)
            continue;
        if (dffMap[i] >= pdffs.size()) {
            res.detail = "dffMap points past the pruned state";
            return res;
        }
        SatLit a = eo.dffQ[i], b = ep.dffQ[dffMap[i]];
        solver.addClause({~a, b});
        solver.addClause({a, ~b});
    }

    // Interior sweep: prove original nets equal to their pruned
    // counterparts cone by cone, hardening as we go, so the
    // observable proofs below are effectively local.
    if (!netMap.empty()) {
        for (const auto &step : orig.planSteps()) {
            NetId onet = orig.cells()[step.cell].output;
            if (onet >= netMap.size() || netMap[onet] == kNoNet)
                continue;
            NetId pnet = netMap[onet];
            if (!eo.hasLit(onet) || !ep.hasLit(pnet))
                continue;
            // Best effort: a failed interior proof is not itself a
            // certification failure (only observables are), it just
            // forfeits the hardening.
            proveEqual(cnf, eo.lit(onet), ep.lit(pnet), res.solves);
        }
    }

    for (const auto &[name, onet] : orig.primaryOutputs()) {
        auto it = pruned.primaryOutputs().find(name);
        if (it == pruned.primaryOutputs().end()) {
            res.detail = strfmt("pruned netlist lost output '%s'",
                                name.c_str());
            return res;
        }
        if (!proveEqual(cnf, eo.lit(onet), ep.lit(it->second),
                        res.solves)) {
            fail(name);
            res.conflicts = solver.stats().conflicts;
            return res;
        }
    }
    for (size_t i = 0; i < odffs.size(); ++i) {
        if (dffMap[i] == kPrunedAway)
            continue;
        if (!proveEqual(cnf, eo.dffD[i], ep.dffD[dffMap[i]],
                        res.solves)) {
            fail(orig.netName(odffs[i].q) + " (next-state)");
            res.conflicts = solver.stats().conflicts;
            return res;
        }
    }

    res.proven = true;
    res.conflicts = solver.stats().conflicts;
    return res;
}

bool
replayPruneCex(const Netlist &orig, const Netlist &pruned,
               const std::vector<size_t> &dffMap,
               const EquivCounterexample &cex, std::string *what)
{
    auto a = orig.clone();
    auto b = pruned.clone();

    std::map<std::string, bool> bits;
    for (const auto &[name, v] : cex.assignment)
        bits[name] = v;

    // State: original bits by name, pruned bits through the map.
    auto odffs = orig.dffs();
    std::vector<uint8_t> sa = a->saveDffState();
    std::vector<uint8_t> sb = b->saveDffState();
    for (size_t i = 0; i < odffs.size(); ++i) {
        auto it = bits.find(orig.netName(odffs[i].q));
        if (it != bits.end())
            sa[i] = it->second ? 1 : 0;
        if (i < dffMap.size() && dffMap[i] != kPrunedAway &&
            dffMap[i] < sb.size())
            sb[dffMap[i]] = sa[i];
    }
    a->restoreDffState(sa);
    b->restoreDffState(sb);

    for (const auto &[name, net] : orig.primaryInputs()) {
        auto it = bits.find(name);
        bool v = it != bits.end() && it->second;
        a->setInput(name, v);
        b->setInput(name, v);
    }

    a->evaluate();
    b->evaluate();
    for (const auto &[name, net] : orig.primaryOutputs()) {
        if (a->output(name) != b->output(name)) {
            if (what)
                *what = strfmt("output %s: %d vs %d", name.c_str(),
                               a->output(name) ? 1 : 0,
                               b->output(name) ? 1 : 0);
            return true;
        }
    }

    a->clockEdge();
    b->clockEdge();
    for (size_t i = 0; i < odffs.size(); ++i) {
        if (i >= dffMap.size() || dffMap[i] == kPrunedAway)
            continue;
        if (a->dffValue(i) != b->dffValue(dffMap[i])) {
            if (what)
                *what = strfmt("state %s: %d vs %d",
                               orig.netName(odffs[i].q).c_str(),
                               a->dffValue(i) ? 1 : 0,
                               b->dffValue(dffMap[i]) ? 1 : 0);
            return true;
        }
    }
    return false;
}

} // namespace flexi
