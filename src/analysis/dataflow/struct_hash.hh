/**
 * @file
 * Canonical structural hashing of netlists.
 *
 * canonicalNetlistHash() digests a netlist into 64 bits that depend
 * only on its *structure* — the shape of the gate graph, the cell
 * types, the DFF power-on values, and the primary-pad names — and
 * not on any construction artifact: net ids, cell insertion order,
 * module tags, and intermediate net labels are all invisible to the
 * hash. Two netlists built in different orders (or a clone and its
 * template) therefore hash identically, while structurally distinct
 * cores separate.
 *
 * The scheme is Weisfeiler-Leman-style iterative refinement: every
 * net starts from a local seed (pad name, rail constant, DFF init),
 * then a fixed number of rounds propagates hashes through the gate
 * graph — combinational nets rehash from their fanin hashes in
 * topological order (inputs of fully-symmetric cells sorted by hash
 * so commutative input order cannot leak in), DFF outputs rehash
 * from their D-cone hash at each round boundary. The final digest
 * folds the *sorted multisets* of per-output, per-DFF, and per-cell
 * hashes, so no iteration order survives into the result.
 *
 * This is the cache key runSweep()'s incremental mode uses: a design
 * point re-evaluated against an unchanged core structure is a cache
 * hit no matter how the netlist was rebuilt.
 */

#ifndef FLEXI_ANALYSIS_DATAFLOW_STRUCT_HASH_HH
#define FLEXI_ANALYSIS_DATAFLOW_STRUCT_HASH_HH

#include <cstdint>
#include <string>

#include "netlist/netlist.hh"

namespace flexi
{

/** 64-bit canonical structural hash (deterministic across runs). */
uint64_t canonicalNetlistHash(const Netlist &nl);

/** The hash rendered as a fixed-width lowercase hex string. */
std::string canonicalNetlistHashHex(const Netlist &nl);

} // namespace flexi

#endif // FLEXI_ANALYSIS_DATAFLOW_STRUCT_HASH_HH
