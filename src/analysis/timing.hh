/**
 * @file
 * Path-level static timing analysis.
 *
 * Netlist::criticalPathDelayUnits() answers "how slow"; this pass
 * answers "why": it enumerates the top-K critical paths as named net
 * sequences with per-cell delay contributions, classifies every
 * endpoint (DFF setup, primary output, or a floating sinkless cone),
 * and converts delay units into slack against the 12.5 kHz system
 * clock at a chosen supply voltage through the technology model.
 *
 * The arrival computation walks the compiled plan in the same order
 * and with the same arithmetic as criticalPathDelayUnits(), so the
 * worst path here equals that number exactly (not approximately).
 *
 * This is the structural explanation of the paper's Section 4.1
 * observation that FlexiCore8 yield collapses at 3 V: its worst
 * register-to-register path (through the LOAD BYTE squash logic and
 * the 8-bit ripple ALU) is ~10 delay units longer than FlexiCore4's,
 * which puts it past the 80 us clock period once the unit delay
 * stretches to 2.77 us at 3 V — negative slack, while the same path
 * has ~9 us of margin at 4.5 V.
 */

#ifndef FLEXI_ANALYSIS_TIMING_HH
#define FLEXI_ANALYSIS_TIMING_HH

#include <string>
#include <vector>

#include "analysis/diagnostics.hh"
#include "netlist/netlist.hh"
#include "tech/technology.hh"

namespace flexi
{

/** What terminates a timing path. */
enum class EndpointKind
{
    DffSetup,        ///< D input of a flip-flop (plus its capture delay)
    PrimaryOutput,   ///< an output pad
    Floating,        ///< a sinkless combinational cone (unconstrained)
};

const char *endpointKindName(EndpointKind kind);

/** One cell hop along a path. */
struct TimingStep
{
    NetId net = kNoNet;     ///< the cell's output net
    std::string name;       ///< stable net name
    std::string module;
    double cellDelay = 0.0;
    double arrival = 0.0;   ///< cumulative, in delay units
};

/** One register-to-register / register-to-output path. */
struct TimingPath
{
    double delayUnits = 0.0;
    EndpointKind endpoint = EndpointKind::DffSetup;
    std::string startName;   ///< launching input / state bit
    std::string endName;     ///< capturing state bit / output
    /** Hops from the first cell after the start to the endpoint. */
    std::vector<TimingStep> steps;

    /** "pc_q2 -> ... -> pc_q3 (37.00 units via 14 cells)". */
    std::string text() const;
};

struct TimingReport
{
    std::string netlist;
    /** Worst-first, at most the requested K. */
    std::vector<TimingPath> paths;

    double worstDelayUnits() const
    {
        return paths.empty() ? 0.0 : paths.front().delayUnits;
    }
};

/**
 * Enumerate the @p top_k worst paths of an elaborated netlist. Each
 * timed endpoint (DFF, primary output) contributes its single worst
 * path; floating cones are reported so they can be flagged as
 * unconstrained.
 */
TimingReport analyzeTiming(const Netlist &nl, unsigned top_k = 8);

/**
 * Render a timing report as diagnostics against the system clock:
 *  - "timing-violation" (Error): a timed path's delay at @p vdd
 *    exceeds the clock period (negative slack);
 *  - "critical-path" (Note): a timed path with non-negative slack;
 *  - "unconstrained-path" (Warning): a floating endpoint among the
 *    top-K — logic whose delay no clock constraint checks.
 */
LintReport timingLint(const Netlist &nl, const Technology &tech,
                      double vdd, unsigned top_k = 8,
                      double clock_hz = kClockHz);

} // namespace flexi

#endif // FLEXI_ANALYSIS_TIMING_HH
