/**
 * @file
 * Static analysis over an assembled Program, for all four ISAs.
 *
 * The pass builds the control-flow graph by abstract interpretation
 * from the power-on entry point (page 0, address 0): it tracks
 * constant values of the accumulator / registers / data memory, the
 * carry flag, the return register, and — crucially — the off-chip
 * MMU's escape FST, so that the software page-switch idiom
 * (emit {0xA, 0x5, page}, then branch) is followed across pages
 * exactly like the hardware follows it. On top of that CFG it checks
 * (docs/LINT.md has the catalogue):
 *
 *  - target-beyond-code / fall-off-code (error): control transfers
 *    into (or execution runs into) the uninitialized remainder of a
 *    128-entry page, where the idle bus reads as zeros;
 *  - misaligned-target (error): a branch/call lands mid-way into a
 *    two-byte instruction (FlexiCore8 ldb, ExtAcc4 br/call);
 *  - write-to-input-port (error): a store to the read-only input
 *    address (a silent no-op on the fabricated parts);
 *  - ret-without-call (error) / nested-call (warning): ExtAcc4 /
 *    LoadStore4 return-register discipline;
 *  - page-indeterminate (warning): a taken branch whose pending MMU
 *    page cannot be determined statically;
 *  - unreachable-code (warning): assembled bytes no execution path
 *    reaches;
 *  - uninit-acc-read / uninit-mem-read (warning): reads that rely on
 *    the power-on register state rather than a program write;
 *  - invalid-opcode (warning): reserved encodings (architected
 *    no-ops) on an execution path.
 *
 * Static assumption (same as the paper's MMU contract): ordinary
 * output data never forms the exact escape triple, so only literal
 * constant stores advance the modeled FST.
 */

#ifndef FLEXI_ANALYSIS_PROGRAM_LINT_HH
#define FLEXI_ANALYSIS_PROGRAM_LINT_HH

#include "analysis/diagnostics.hh"
#include "assembler/program.hh"

namespace flexi
{

/** Run all program lint rules over @p prog. */
LintReport lintProgram(const Program &prog);

/**
 * One execution point the abstract interpreter proved reachable
 * from the power-on entry, with its decoded instruction. `addr` is
 * in PC units (bytes; words for LoadStore4), `bytes` the encoded
 * length.
 */
struct ProgramFactPoint
{
    unsigned page = 0;
    unsigned addr = 0;
    Instruction inst;
    unsigned bytes = 0;
};

/**
 * Reachability facts extracted from the lint pass's CFG — the input
 * the bespoke-core derivation consumes. `report` carries the full
 * lint findings so callers can refuse to specialize against a
 * program whose control flow the linter flagged as broken.
 */
struct ProgramFacts
{
    IsaKind isa = IsaKind::FlexiCore4;
    std::vector<ProgramFactPoint> points;
    LintReport report;
};

/** Run the lint CFG construction and return its reachability facts. */
ProgramFacts programFacts(const Program &prog);

} // namespace flexi

#endif // FLEXI_ANALYSIS_PROGRAM_LINT_HH
