#include "atpg.hh"

#include <memory>

#include "analysis/equiv.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "netlist/flexicore_netlist.hh"
#include "netlist/lockstep.hh"

namespace flexi
{

namespace
{

std::unique_ptr<Netlist>
atpgGolden(IsaKind isa)
{
    switch (isa) {
      case IsaKind::FlexiCore4: return buildFlexiCore4Netlist();
      case IsaKind::FlexiCore8: return buildFlexiCore8Netlist();
      default:
        fatal("ATPG targets the fabricated cores, not %s",
              isaName(isa));
    }
}

} // namespace

double
AtpgReport::simCoverage() const
{
    return faults ? static_cast<double>(simDetected) / faults : 0.0;
}

double
AtpgReport::testableCoverage() const
{
    size_t denom = faults - redundant;
    return denom ? static_cast<double>(simDetected) / denom : 0.0;
}

AtpgReport
runAtpg(const AtpgConfig &config, const Program &prog,
        const std::vector<uint8_t> &inputs)
{
    std::unique_ptr<Netlist> golden = atpgGolden(config.isa);
    const std::vector<CellInst> &cells = golden->cells();

    // The fault universe: every cell output, stuck at 0 and at 1.
    // A cap samples evenly over the cell list so every module stays
    // represented (strided, deterministic — no RNG involved).
    size_t universe = cells.size() * 2;
    size_t count = config.maxFaults && config.maxFaults < universe
                       ? config.maxFaults : universe;
    std::vector<size_t> picks(count);
    for (size_t i = 0; i < count; ++i)
        picks[i] = i * universe / count;

    std::vector<AtpgFault> verdicts(count);
    std::vector<uint64_t> solves(count, 0), conflicts(count, 0);
    parallelFor(count, config.threads, [&](size_t i) {
        size_t idx = picks[i];
        const CellInst &cell = cells[idx / 2];
        AtpgFault &v = verdicts[i];
        v.fault = StuckFault{cell.output, (idx & 1) != 0};
        v.net = golden->netName(cell.output);
        v.module = cell.module;

        std::unique_ptr<Netlist> faulty = golden->clone();
        faulty->injectFault(v.fault);
        LockstepResult sim = runLockstep(*faulty, config.isa, prog,
                                         inputs, config.simCycles);
        v.simDetected = sim.errors > 0;
        if (v.simDetected)
            return;

        // Simulation escape: ask the SAT miter whether *any* input
        // and state assignment distinguishes the faulty die.
        faulty->reset();
        EquivResult eq = checkNetlistEquivalence(*golden, *faulty);
        solves[i] = eq.solves;
        conflicts[i] = eq.conflicts;
        if (eq.proven) {
            v.redundant = true;
        } else if (eq.hasCex) {
            v.testable = true;
            v.pattern = eq.cex.text();
        }
        // (Neither: encoder limitation — counted as neither testable
        // nor redundant, keeping the coverage claims conservative.)
    });

    AtpgReport report;
    report.faults = count;
    for (size_t i = 0; i < count; ++i)
        report.solves += solves[i], report.conflicts += conflicts[i];
    for (AtpgFault &v : verdicts) {
        if (v.simDetected) {
            ++report.simDetected;
            continue;
        }
        report.testable += v.testable;
        report.redundant += v.redundant;
        report.escapes.push_back(std::move(v));
    }
    return report;
}

} // namespace flexi
