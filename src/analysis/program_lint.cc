#include "program_lint.hh"

#include <array>
#include <deque>
#include <map>
#include <set>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "isa/disassembler.hh"
#include "isa/encoding.hh"
#include "sim/mmu.hh"

namespace flexi
{

namespace
{

/** Unknown constant. */
constexpr int16_t kTopVal = -1;

/** Abstract register/memory value: definitely-written + constant. */
struct AVal
{
    bool written = false;   ///< written on every path to here
    int16_t val = 0;        ///< power-on state is all-zero

    bool operator==(const AVal &other) const = default;
};

AVal
joinVal(const AVal &a, const AVal &b)
{
    return {a.written && b.written,
            a.val == b.val ? a.val : kTopVal};
}

AVal
top()
{
    return {true, kTopVal};
}

AVal
constant(unsigned v)
{
    return {true, static_cast<int16_t>(v)};
}

/** Pending MMU page: none, a page number, or statically unknown. */
constexpr int16_t kNoPend = -1;
constexpr int16_t kTopPend = -2;

/** MMU escape-FST progress (mirrors Mmu::State). */
enum : uint8_t { kEscIdle = 0, kEscGot0 = 1, kEscGot1 = 2 };

/** Return-register discipline. */
enum : uint8_t { kRetNo = 0, kRetYes = 1, kRetMaybe = 2 };

/** The dataflow state at one program point. */
struct AbsState
{
    AVal acc;
    AVal carry;               ///< val in {0, 1}
    AVal flags;               ///< LoadStore4 branch-condition source
    AVal ret;                 ///< return register (page-local addr)
    std::array<AVal, 8> mem;  ///< data memory / register file
    uint8_t esc = kEscIdle;
    int16_t pend = kNoPend;
    uint8_t retLive = kRetNo;

    bool operator==(const AbsState &other) const = default;
};

AbsState
joinState(const AbsState &a, const AbsState &b)
{
    AbsState out;
    out.acc = joinVal(a.acc, b.acc);
    out.carry = joinVal(a.carry, b.carry);
    out.flags = joinVal(a.flags, b.flags);
    out.ret = joinVal(a.ret, b.ret);
    for (size_t i = 0; i < out.mem.size(); ++i)
        out.mem[i] = joinVal(a.mem[i], b.mem[i]);
    // Paths meeting mid-escape: assume ordinary data does not form
    // the triple (the paper's MMU contract), so disagreement resets
    // the modeled FST.
    out.esc = a.esc == b.esc ? a.esc : uint8_t{kEscIdle};
    out.pend = a.pend == b.pend ? a.pend : kTopPend;
    out.retLive = a.retLive == b.retLive ? a.retLive
                                         : uint8_t{kRetMaybe};
    return out;
}

class ProgramLinter
{
  public:
    /** Reachable points with their decodes (run() must have run). */
    std::vector<ProgramFactPoint> reachablePoints() const
    {
        std::vector<ProgramFactPoint> pts;
        for (const auto &[k, st] : in_) {
            auto it = decoded_.find(k);
            if (it == decoded_.end())
                continue;
            pts.push_back({k >> kPcBits, k & (kPageSize - 1),
                           it->second.inst, it->second.bytes});
        }
        return pts;
    }

    explicit ProgramLinter(const Program &prog)
        : prog_(prog), isa_(prog.isa()),
          dataWidth_(isaDataWidth(isa_)),
          dataMask_(static_cast<uint8_t>((1u << dataWidth_) - 1u)),
          memWords_(isaMemWords(isa_))
    {}

    LintReport run();

  private:
    static unsigned key(unsigned page, unsigned addr)
    {
        return (page << kPcBits) | addr;
    }

    /** Page fill in PC units (bytes; words for LoadStore4). */
    unsigned fill(unsigned page) const
    {
        return prog_.pageFill(page);
    }

    DecodeResult decode(unsigned page, unsigned addr);
    unsigned unitSpan(const DecodeResult &dec) const
    {
        return isa_ == IsaKind::LoadStore4 ? 1 : dec.bytes;
    }

    void diag(Severity severity, const std::string &rule,
              unsigned page, unsigned addr,
              const std::string &message);

    AVal readMem(AbsState &st, unsigned addr, unsigned page,
                 unsigned pc, const char *what);
    void writeMem(AbsState &st, unsigned addr, const AVal &v,
                  unsigned page, unsigned pc);
    AVal readAcc(AbsState &st, unsigned page, unsigned pc,
                 const Instruction &inst);
    AVal operandVal(AbsState &st, const Instruction &inst,
                    unsigned page, unsigned pc);
    void execute(AbsState &st, const Instruction &inst,
                 unsigned page, unsigned pc);

    /** Post a CFG edge; validates the target and joins the state. */
    void edge(unsigned from_page, unsigned from_addr, unsigned page,
              unsigned addr, const AbsState &st, bool is_branch);

    /** Taken-transfer edge: applies any pending MMU page switch. */
    void takenEdge(unsigned page, unsigned addr, unsigned target,
                   AbsState st, bool allow_halt);

    void checkMisaligned();
    void checkUnreachable();

    const Program &prog_;
    IsaKind isa_;
    unsigned dataWidth_;
    uint8_t dataMask_;
    unsigned memWords_;

    LintReport rep_;
    std::map<unsigned, AbsState> in_;
    std::map<unsigned, DecodeResult> decoded_;
    std::deque<unsigned> work_;
    std::set<std::pair<std::string, unsigned>> posted_;
};

DecodeResult
ProgramLinter::decode(unsigned page, unsigned addr)
{
    auto it = decoded_.find(key(page, addr));
    if (it != decoded_.end())
        return it->second;
    static const std::vector<uint8_t> empty;
    const std::vector<uint8_t> &image =
        page < prog_.numPages() ? prog_.page(page) : empty;
    DecodeResult dec = decodeAt(isa_, image, addr);
    decoded_.emplace(key(page, addr), dec);
    return dec;
}

void
ProgramLinter::diag(Severity severity, const std::string &rule,
                    unsigned page, unsigned addr,
                    const std::string &message)
{
    if (!posted_.emplace(rule, key(page, addr)).second)
        return;
    rep_.add({severity, rule, strfmt("page%u", page), {},
              static_cast<int>(page), static_cast<int>(addr),
              message});
}

AVal
ProgramLinter::readMem(AbsState &st, unsigned addr, unsigned page,
                       unsigned pc, const char *what)
{
    addr %= memWords_;
    if (addr == kInputPortAddr || addr == kOutputPortAddr)
        return top();   // input bus / output latch: always driven
    AVal v = st.mem[addr];
    if (!v.written) {
        diag(Severity::Warning, "uninit-mem-read", page, pc,
             strfmt("%s reads r%u before any store (relies on the "
                    "power-on value)", what, addr));
        // The flexible parts make no power-on guarantee, so never
        // let the zero-reset simulator value drive branch pruning.
        v.val = kTopVal;
    }
    return v;
}

void
ProgramLinter::writeMem(AbsState &st, unsigned addr, const AVal &v,
                        unsigned page, unsigned pc)
{
    addr %= memWords_;
    if (addr == kInputPortAddr) {
        diag(Severity::Error, "write-to-input-port", page, pc,
             strfmt("write to the read-only input address r%u is a "
                    "silent no-op", kInputPortAddr));
        return;
    }
    if (addr == kOutputPortAddr) {
        // Advance the modeled MMU escape FST (Mmu::onOutput).
        if (v.val == kTopVal) {
            if (st.esc == kEscGot1)
                st.pend = kTopPend;   // 0xA, 0x5, <unknown page>
            st.esc = kEscIdle;
            return;
        }
        auto b = static_cast<uint8_t>(v.val);
        switch (st.esc) {
          case kEscIdle:
            st.esc = b == kMmuEscape0 ? kEscGot0 : kEscIdle;
            break;
          case kEscGot0:
            st.esc = b == kMmuEscape1 ? kEscGot1
                   : b == kMmuEscape0 ? kEscGot0 : kEscIdle;
            break;
          case kEscGot1:
            st.pend = static_cast<int16_t>(b & 0xF);
            st.esc = kEscIdle;
            break;
        }
        return;
    }
    st.mem[addr] = {true, v.val};
}

AVal
ProgramLinter::readAcc(AbsState &st, unsigned page, unsigned pc,
                       const Instruction &inst)
{
    AVal v = st.acc;
    if (!v.written) {
        diag(Severity::Warning, "uninit-acc-read", page, pc,
             strfmt("'%s' reads ACC before any write (relies on the "
                    "power-on value)",
                    disassemble(isa_, inst).c_str()));
        v.val = kTopVal;   // no power-on guarantee on real parts
    }
    return v;
}

AVal
ProgramLinter::operandVal(AbsState &st, const Instruction &inst,
                          unsigned page, unsigned pc)
{
    if (inst.mode == Mode::Mem)
        return readMem(st, inst.operand, page, pc,
                       disassemble(isa_, inst).c_str());
    if (inst.mode == Mode::Imm) {
        uint8_t raw = inst.operand;
        switch (isa_) {
          case IsaKind::FlexiCore4:
            return constant(raw & 0x0F);
          case IsaKind::FlexiCore8:
            if (inst.op == Op::Ldb)
                return constant(raw);
            return constant(
                static_cast<uint8_t>(signExtend(raw, 4)) & 0xFF);
          case IsaKind::ExtAcc4:
            if (inst.op == Op::Add || inst.op == Op::Adc)
                return constant(
                    static_cast<uint8_t>(signExtend(raw, 3)) &
                    dataMask_);
            return constant(raw & 0x07);
          case IsaKind::LoadStore4:
            return constant(raw & dataMask_);
        }
    }
    return constant(0);
}

void
ProgramLinter::execute(AbsState &st, const Instruction &inst,
                       unsigned page, unsigned pc)
{
    bool load_store = isa_ == IsaKind::LoadStore4;
    unsigned w = dataWidth_;
    uint8_t m = dataMask_;

    auto readFirst = [&]() -> AVal {
        if (load_store)
            return readMem(st, inst.rd, page, pc,
                           disassemble(isa_, inst).c_str());
        return readAcc(st, page, pc, inst);
    };
    auto writeResult = [&](const AVal &v) {
        AVal masked = v;
        if (masked.val != kTopVal)
            masked.val &= m;
        if (load_store) {
            writeMem(st, inst.rd, masked, page, pc);
            st.flags = masked;
        } else {
            st.acc = masked;
        }
    };
    // cin: 0 / 1 / kTopVal.
    auto addLike = [&](const AVal &b, int16_t cin, bool invert) {
        AVal a = readFirst();
        if (a.val == kTopVal || b.val == kTopVal ||
            cin == kTopVal) {
            writeResult(top());
            st.carry = top();
            return;
        }
        unsigned bb = invert
            ? static_cast<uint8_t>(~b.val) & m
            : static_cast<unsigned>(b.val) & m;
        unsigned sum = (static_cast<unsigned>(a.val) & m) + bb +
                       static_cast<unsigned>(cin);
        st.carry = constant((sum >> w) & 1u);
        writeResult(constant(sum));
    };
    // dom: operand value that makes the first input irrelevant (0
    // for NAND/AND, all-ones for OR; -2 = none). When it hits, skip
    // the read entirely -- `nandi 0` is the canonical "ignore ACC"
    // idiom and must not draw an uninit-acc-read warning.
    auto bitwise = [&](auto fn, int16_t dom) {
        AVal b = operandVal(st, inst, page, pc);
        AVal a = b.val == dom ? constant(0) : readFirst();
        writeResult(fn(a, b));
    };

    switch (inst.op) {
      case Op::Add:
        addLike(operandVal(st, inst, page, pc), 0, false);
        break;
      case Op::Adc:
        addLike(operandVal(st, inst, page, pc),
                st.carry.written ? st.carry.val : kTopVal, false);
        break;
      case Op::Sub:
        addLike(operandVal(st, inst, page, pc), 1, true);
        break;
      case Op::Swb:
        addLike(operandVal(st, inst, page, pc),
                st.carry.written ? st.carry.val : kTopVal, true);
        break;
      case Op::Nand:
        bitwise([&](AVal a, AVal b) -> AVal {
            // Dominance: x NAND 0 is all-ones whatever x is — the
            // ubr idiom (`nandi 0` then br) depends on this fold.
            if (a.val == 0 || b.val == 0)
                return constant(m);
            if (a.val == kTopVal || b.val == kTopVal)
                return top();
            return constant(~(a.val & b.val) & m);
        }, 0);
        break;
      case Op::And:
        bitwise([&](AVal a, AVal b) -> AVal {
            if (a.val == 0 || b.val == 0)
                return constant(0);
            if (a.val == kTopVal || b.val == kTopVal)
                return top();
            return constant(a.val & b.val);
        }, 0);
        break;
      case Op::Or:
        bitwise([&](AVal a, AVal b) -> AVal {
            if (a.val == m || b.val == m)
                return constant(m);
            if (a.val == kTopVal || b.val == kTopVal)
                return top();
            return constant(a.val | b.val);
        }, m);
        break;
      case Op::Xor:
        bitwise([&](AVal a, AVal b) -> AVal {
            if (a.val == kTopVal || b.val == kTopVal)
                return top();
            return constant(a.val ^ b.val);
        }, -2);
        break;
      case Op::Neg: {
        AVal a = readFirst();
        if (a.val == kTopVal) {
            writeResult(top());
            st.carry = top();
        } else {
            st.carry = constant(a.val == 0);
            writeResult(constant(
                static_cast<unsigned>(-a.val) & m));
        }
        break;
      }
      case Op::Asr:
      case Op::Lsr: {
        AVal a = readFirst();
        AVal amt = inst.mode == Mode::None
            ? constant(1) : operandVal(st, inst, page, pc);
        if (a.val == kTopVal || amt.val == kTopVal) {
            writeResult(top());
            st.carry = top();
            break;
        }
        unsigned amount = static_cast<unsigned>(amt.val) & 0x7;
        bool sign = bit(static_cast<unsigned>(a.val), w - 1);
        unsigned v = static_cast<unsigned>(a.val) & m;
        AVal cy = st.carry;
        for (unsigned i = 0; i < amount; ++i) {
            cy = constant(v & 1u);
            v >>= 1;
            if (inst.op == Op::Asr && sign)
                v |= 1u << (w - 1);
        }
        st.carry = cy;
        writeResult(constant(v));
        break;
      }
      case Op::Li:
        writeResult(operandVal(st, inst, page, pc));
        break;
      case Op::Ldb:
        st.acc = constant(inst.operand);
        break;
      case Op::Load:
        st.acc = readMem(st, inst.operand, page, pc,
                         disassemble(isa_, inst).c_str());
        if (st.acc.val != kTopVal)
            st.acc.val &= m;
        st.acc.written = true;
        break;
      case Op::Store:
        writeMem(st, inst.operand, readAcc(st, page, pc, inst),
                 page, pc);
        break;
      case Op::Xch: {
        AVal v = readMem(st, inst.operand, page, pc,
                         disassemble(isa_, inst).c_str());
        writeMem(st, inst.operand, readAcc(st, page, pc, inst),
                 page, pc);
        if (v.val != kTopVal)
            v.val &= m;
        v.written = true;
        st.acc = v;
        break;
      }
      case Op::Mov:
        writeResult(operandVal(st, inst, page, pc));
        break;
      case Op::Invalid:
        diag(Severity::Warning, "invalid-opcode", page, pc,
             "reserved encoding on an execution path (architected "
             "no-op)");
        break;
      case Op::Br:
      case Op::Call:
      case Op::Ret:
        panic("program lint: control flow handled by caller");
    }
}

void
ProgramLinter::edge(unsigned from_page, unsigned from_addr,
                    unsigned page, unsigned addr, const AbsState &st,
                    bool is_branch)
{
    if (addr >= fill(page)) {
        diag(Severity::Error,
             is_branch ? "target-beyond-code" : "fall-off-code",
             from_page, from_addr,
             strfmt("%s addr %u on page %u, past the %u assembled "
                    "%s (the idle bus reads as zeros there)",
                    is_branch ? "control transfer to" : "falls into",
                    addr, page, fill(page),
                    isa_ == IsaKind::LoadStore4 ? "words" : "bytes"));
        return;
    }
    unsigned k = key(page, addr);
    auto it = in_.find(k);
    if (it == in_.end()) {
        in_.emplace(k, st);
        work_.push_back(k);
        return;
    }
    AbsState joined = joinState(it->second, st);
    if (!(joined == it->second)) {
        it->second = joined;
        work_.push_back(k);
    }
}

void
ProgramLinter::takenEdge(unsigned page, unsigned addr,
                         unsigned target, AbsState st,
                         bool allow_halt)
{
    unsigned dest_page = page;
    if (st.pend == kTopPend) {
        diag(Severity::Warning, "page-indeterminate", page, addr,
             "taken branch with a statically unknown pending MMU "
             "page; assuming no page switch");
        st.pend = kNoPend;
    } else if (st.pend != kNoPend) {
        dest_page = static_cast<unsigned>(st.pend);
        st.pend = kNoPend;
    } else if (allow_halt && target == addr) {
        // Taken branch to itself with no pending switch: the halt
        // idiom. Terminal — no successor.
        return;
    }
    edge(page, addr, dest_page, target & (kPageSize - 1), st, true);
}

void
ProgramLinter::checkMisaligned()
{
    for (const auto &[k, dec] : decoded_) {
        if (!in_.count(k))
            continue;
        unsigned page = k >> kPcBits;
        unsigned addr = k & (kPageSize - 1);
        for (unsigned u = 1; u < unitSpan(dec); ++u) {
            unsigned mid = key(page, addr + u);
            if (in_.count(mid))
                diag(Severity::Error, "misaligned-target", page,
                     addr + u,
                     strfmt("control transfer lands inside the "
                            "%u-byte instruction at addr %u ('%s')",
                            dec.bytes, addr,
                            disassemble(isa_, dec.inst).c_str()));
        }
    }
}

void
ProgramLinter::checkUnreachable()
{
    for (unsigned page = 0; page < prog_.numPages(); ++page) {
        std::vector<bool> covered(fill(page), false);
        for (const auto &[k, dec] : decoded_) {
            if (!in_.count(k) || (k >> kPcBits) != page)
                continue;
            unsigned addr = k & (kPageSize - 1);
            for (unsigned u = 0; u < unitSpan(dec); ++u)
                if (addr + u < covered.size())
                    covered[addr + u] = true;
        }
        for (unsigned a = 0; a < covered.size();) {
            if (covered[a]) {
                ++a;
                continue;
            }
            unsigned b = a;
            while (b < covered.size() && !covered[b])
                ++b;
            diag(Severity::Warning, "unreachable-code", page, a,
                 strfmt("addrs %u..%u (%u %s) are never reached "
                        "from the entry point", a, b - 1, b - a,
                        isa_ == IsaKind::LoadStore4 ? "words"
                                                    : "bytes"));
            a = b;
        }
    }
}

LintReport
ProgramLinter::run()
{
    if (prog_.numPages() == 0 || fill(0) == 0) {
        rep_.add({Severity::Warning, "empty-program", "page0", {},
                  0, 0, "program has no content on page 0"});
        return rep_;
    }

    in_.emplace(key(0, 0), AbsState{});
    work_.push_back(key(0, 0));

    while (!work_.empty()) {
        unsigned k = work_.front();
        work_.pop_front();
        unsigned page = k >> kPcBits;
        unsigned addr = k & (kPageSize - 1);
        AbsState st = in_.at(k);

        DecodeResult dec = decode(page, addr);
        const Instruction &inst = dec.inst;

        if (addr + unitSpan(dec) > kPageSize) {
            diag(Severity::Error, "fall-off-code", page, addr,
                 "two-byte instruction truncated at the end of the "
                 "128-entry page");
            continue;
        }

        unsigned next = isa_ == IsaKind::LoadStore4
            ? (addr + 1) & (kPageSize - 1)
            : (addr + dec.bytes) & (kPageSize - 1);

        switch (inst.op) {
          case Op::Br: {
            AVal test = isa_ == IsaKind::LoadStore4
                ? st.flags : readAcc(st, page, addr, inst);
            if (!test.written)
                test.val = kTopVal;   // power-on flags/ACC unknown
            // Resolve the condition when the tested value (or the
            // mask itself) decides it statically.
            int taken = -1;   // -1 unknown, 0 never, 1 always
            if ((inst.cond & kCondAlways) == kCondAlways) {
                taken = 1;
            } else if (inst.cond == 0) {
                taken = 0;   // all-zero mask never fires
            } else if (test.val != kTopVal) {
                auto v = static_cast<uint8_t>(test.val);
                bool n = bit(v, dataWidth_ - 1);
                bool z = (v & dataMask_) == 0;
                bool p = !n && !z;
                taken = (((inst.cond & kCondN) && n) ||
                         ((inst.cond & kCondZ) && z) ||
                         ((inst.cond & kCondP) && p)) ? 1 : 0;
            }
            if (taken != 0)
                takenEdge(page, addr, inst.target, st, taken == 1);
            if (taken != 1)
                edge(page, addr, page, next, st, false);
            break;
          }
          case Op::Call: {
            if (st.retLive != kRetNo)
                diag(Severity::Warning, "nested-call", page, addr,
                     "call while the single return register is "
                     "already live clobbers the outer return "
                     "address");
            AbsState succ = st;
            succ.ret = constant(next);
            succ.retLive = kRetYes;
            takenEdge(page, addr, inst.target, succ, false);
            break;
          }
          case Op::Ret: {
            if (st.retLive == kRetNo)
                diag(Severity::Error, "ret-without-call", page, addr,
                     "ret executes with no live call: jumps to the "
                     "power-on return register");
            else if (st.retLive == kRetMaybe)
                diag(Severity::Warning, "ret-without-call", page,
                     addr,
                     "ret may execute without a prior call on some "
                     "paths");
            AbsState succ = st;
            succ.retLive = kRetNo;
            if (st.retLive == kRetNo) {
                // Already an error above; no meaningful successor.
            } else if (st.ret.val == kTopVal) {
                diag(Severity::Note, "ret-target-unknown", page,
                     addr,
                     "return target is statically unknown; paths "
                     "beyond this ret are not followed");
            } else {
                takenEdge(page, addr,
                          static_cast<unsigned>(st.ret.val), succ,
                          false);
            }
            break;
          }
          default:
            execute(st, inst, page, addr);
            edge(page, addr, page, next, st, false);
            break;
        }
    }

    checkMisaligned();
    checkUnreachable();
    return rep_;
}

} // namespace

LintReport
lintProgram(const Program &prog)
{
    return ProgramLinter(prog).run();
}

ProgramFacts
programFacts(const Program &prog)
{
    ProgramLinter linter(prog);
    ProgramFacts facts;
    facts.isa = prog.isa();
    facts.report = linter.run();
    facts.points = linter.reachablePoints();
    return facts;
}

} // namespace flexi
