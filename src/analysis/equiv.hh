/**
 * @file
 * Miter-based combinational equivalence checking.
 *
 * Three checkers, all built on the CNF encoder and the CDCL solver:
 *
 *  - checkPlanEquivalence(): proves the compiled evaluation plan
 *    (what evaluate() executes) AND the fused-run word-op program
 *    (what the wide-lane compiled backend dispatches) bit-equal to
 *    the CellInst reference semantics (what evaluateReference()
 *    interprets), one cell cone at a time. The sweep runs in plan
 *    order and hardens each proven equality into the CNF, so every
 *    cone check is effectively local.
 *
 *  - checkNetlistEquivalence(): proves two netlist instances (e.g. a
 *    cloned die against its template) produce identical primary
 *    outputs and next-state for every input and state, honoring any
 *    injected stuck-at faults on either side.
 *
 *  - checkIsaEquivalence(): proves a core netlist's next-state
 *    function (the D cones of its architectural DFFs, matched by net
 *    label) equivalent to the behavioral ISA specification of
 *    src/analysis/isa_spec.cc, one instruction class at a time.
 *
 * A failed proof comes back as a concrete counterexample: a full
 * input and state assignment plus the state bits that disagree.
 */

#ifndef FLEXI_ANALYSIS_EQUIV_HH
#define FLEXI_ANALYSIS_EQUIV_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/sat.hh"
#include "isa/isa.hh"
#include "netlist/netlist.hh"

namespace flexi
{

/**
 * Compact rendering of a named bit assignment: groups sharing a
 * name prefix ("acc0".."acc3") are packed into hex bus values.
 * Shared by the combinational counterexamples and the sequential
 * checker's multi-cycle traces.
 */
std::string packedAssignmentText(
    const std::vector<std::pair<std::string, bool>> &assignment);

/** A satisfying assignment that separates the two sides of a miter. */
struct EquivCounterexample
{
    /** Every primary input and state bit, by name. */
    std::vector<std::pair<std::string, bool>> assignment;
    /** Names of the nets / state bits that disagree. */
    std::vector<std::string> mismatched;

    /**
     * Compact human-readable rendering: bit groups sharing a name
     * prefix ("acc0".."acc3") are packed into bus values, e.g.
     * "acc=0x5 carry=1 instr=0x9f -> mismatch on acc1, acc3".
     */
    std::string text() const;
};

/** Outcome of one equivalence proof. */
struct EquivResult
{
    bool proven = false;
    /** Failure explanation when no counterexample applies. */
    std::string detail;
    bool hasCex = false;
    EquivCounterexample cex;
    /** Solver effort for the whole check. */
    uint64_t solves = 0;
    uint64_t conflicts = 0;
};

/** Per-instruction-class outcome of an ISA proof. */
struct IsaClassCheck
{
    std::string name;
    bool proven = false;
    EquivCounterexample cex;   ///< valid iff !proven
};

struct IsaEquivResult
{
    bool proven = false;
    std::string detail;
    std::vector<IsaClassCheck> classes;
    uint64_t solves = 0;
    uint64_t conflicts = 0;
};

/**
 * Prove the compiled evaluation plan of @p nl — both the scalar
 * truth-table artifact and the fused-run WordOp program the
 * wide-lane backend dispatches — equivalent to its reference cell
 * semantics (a SAT sweep over every cell cone and every DFF's
 * effective captured value).
 */
EquivResult checkPlanEquivalence(const Netlist &nl);

/**
 * Prove netlists @p a and @p b (same interface; typically a clone
 * and its template) equivalent: identical primary outputs (matched
 * by name) and identical effective next-state (matched by DFF commit
 * order) for every shared input and state assignment. Stuck-at
 * faults injected on either instance are part of its semantics.
 */
EquivResult checkNetlistEquivalence(const Netlist &a,
                                    const Netlist &b);

/**
 * Prove core netlist @p nl implements the behavioral next-state
 * specification of @p kind, one instruction class at a time. Every
 * architectural DFF must carry a net label (nameNet()) matching the
 * specification's state names. Injected stuck-at faults count as
 * part of the instance's semantics, so a defective die fails the
 * proof with a counterexample naming the corrupted state.
 */
IsaEquivResult checkIsaEquivalence(const Netlist &nl, IsaKind kind);

/**
 * Run the plan proof and the ISA proof on a core netlist and render
 * the outcomes as diagnostics: rule "equiv-proven" (Note) per
 * successful proof, "equiv-mismatch" (Error) with the rendered
 * counterexample per failure.
 */
LintReport equivLint(const Netlist &nl, IsaKind kind);

} // namespace flexi

#endif // FLEXI_ANALYSIS_EQUIV_HH
